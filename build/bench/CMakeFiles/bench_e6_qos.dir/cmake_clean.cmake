file(REMOVE_RECURSE
  "CMakeFiles/bench_e6_qos.dir/bench_e6_qos.cpp.o"
  "CMakeFiles/bench_e6_qos.dir/bench_e6_qos.cpp.o.d"
  "bench_e6_qos"
  "bench_e6_qos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e6_qos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
