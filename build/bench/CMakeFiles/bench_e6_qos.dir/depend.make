# Empty dependencies file for bench_e6_qos.
# This may be replaced when dependencies are built.
