# Empty compiler generated dependencies file for bench_e11_transparent_vs_aware.
# This may be replaced when dependencies are built.
