file(REMOVE_RECURSE
  "CMakeFiles/bench_e11_transparent_vs_aware.dir/bench_e11_transparent_vs_aware.cpp.o"
  "CMakeFiles/bench_e11_transparent_vs_aware.dir/bench_e11_transparent_vs_aware.cpp.o.d"
  "bench_e11_transparent_vs_aware"
  "bench_e11_transparent_vs_aware.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e11_transparent_vs_aware.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
