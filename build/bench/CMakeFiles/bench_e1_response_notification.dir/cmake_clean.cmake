file(REMOVE_RECURSE
  "CMakeFiles/bench_e1_response_notification.dir/bench_e1_response_notification.cpp.o"
  "CMakeFiles/bench_e1_response_notification.dir/bench_e1_response_notification.cpp.o.d"
  "bench_e1_response_notification"
  "bench_e1_response_notification.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e1_response_notification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
