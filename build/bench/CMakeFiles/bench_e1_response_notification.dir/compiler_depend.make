# Empty compiler generated dependencies file for bench_e1_response_notification.
# This may be replaced when dependencies are built.
