# Empty dependencies file for bench_f2_walls_vs_awareness.
# This may be replaced when dependencies are built.
