file(REMOVE_RECURSE
  "CMakeFiles/bench_f2_walls_vs_awareness.dir/bench_f2_walls_vs_awareness.cpp.o"
  "CMakeFiles/bench_f2_walls_vs_awareness.dir/bench_f2_walls_vs_awareness.cpp.o.d"
  "bench_f2_walls_vs_awareness"
  "bench_f2_walls_vs_awareness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f2_walls_vs_awareness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
