# Empty dependencies file for bench_e10_workflow.
# This may be replaced when dependencies are built.
