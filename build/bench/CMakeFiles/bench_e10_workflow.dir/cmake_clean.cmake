file(REMOVE_RECURSE
  "CMakeFiles/bench_e10_workflow.dir/bench_e10_workflow.cpp.o"
  "CMakeFiles/bench_e10_workflow.dir/bench_e10_workflow.cpp.o.d"
  "bench_e10_workflow"
  "bench_e10_workflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e10_workflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
