# Empty dependencies file for bench_e3_transaction_groups.
# This may be replaced when dependencies are built.
