file(REMOVE_RECURSE
  "CMakeFiles/bench_e3_transaction_groups.dir/bench_e3_transaction_groups.cpp.o"
  "CMakeFiles/bench_e3_transaction_groups.dir/bench_e3_transaction_groups.cpp.o.d"
  "bench_e3_transaction_groups"
  "bench_e3_transaction_groups.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e3_transaction_groups.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
