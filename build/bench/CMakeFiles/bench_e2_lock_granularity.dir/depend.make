# Empty dependencies file for bench_e2_lock_granularity.
# This may be replaced when dependencies are built.
