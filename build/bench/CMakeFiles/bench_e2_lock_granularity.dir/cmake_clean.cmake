file(REMOVE_RECURSE
  "CMakeFiles/bench_e2_lock_granularity.dir/bench_e2_lock_granularity.cpp.o"
  "CMakeFiles/bench_e2_lock_granularity.dir/bench_e2_lock_granularity.cpp.o.d"
  "bench_e2_lock_granularity"
  "bench_e2_lock_granularity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e2_lock_granularity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
