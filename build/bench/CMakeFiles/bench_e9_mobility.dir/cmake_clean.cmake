file(REMOVE_RECURSE
  "CMakeFiles/bench_e9_mobility.dir/bench_e9_mobility.cpp.o"
  "CMakeFiles/bench_e9_mobility.dir/bench_e9_mobility.cpp.o.d"
  "bench_e9_mobility"
  "bench_e9_mobility.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e9_mobility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
