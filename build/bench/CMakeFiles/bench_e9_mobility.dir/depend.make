# Empty dependencies file for bench_e9_mobility.
# This may be replaced when dependencies are built.
