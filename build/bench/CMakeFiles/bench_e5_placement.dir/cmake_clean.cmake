file(REMOVE_RECURSE
  "CMakeFiles/bench_e5_placement.dir/bench_e5_placement.cpp.o"
  "CMakeFiles/bench_e5_placement.dir/bench_e5_placement.cpp.o.d"
  "bench_e5_placement"
  "bench_e5_placement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e5_placement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
