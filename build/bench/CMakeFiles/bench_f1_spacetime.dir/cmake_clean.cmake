file(REMOVE_RECURSE
  "CMakeFiles/bench_f1_spacetime.dir/bench_f1_spacetime.cpp.o"
  "CMakeFiles/bench_f1_spacetime.dir/bench_f1_spacetime.cpp.o.d"
  "bench_f1_spacetime"
  "bench_f1_spacetime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f1_spacetime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
