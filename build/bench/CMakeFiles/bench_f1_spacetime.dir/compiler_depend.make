# Empty compiler generated dependencies file for bench_f1_spacetime.
# This may be replaced when dependencies are built.
