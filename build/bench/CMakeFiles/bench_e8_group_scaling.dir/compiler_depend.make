# Empty compiler generated dependencies file for bench_e8_group_scaling.
# This may be replaced when dependencies are built.
