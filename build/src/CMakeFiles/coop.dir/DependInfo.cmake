
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/access/negotiation.cpp" "src/CMakeFiles/coop.dir/access/negotiation.cpp.o" "gcc" "src/CMakeFiles/coop.dir/access/negotiation.cpp.o.d"
  "/root/repo/src/access/roles.cpp" "src/CMakeFiles/coop.dir/access/roles.cpp.o" "gcc" "src/CMakeFiles/coop.dir/access/roles.cpp.o.d"
  "/root/repo/src/awareness/engine.cpp" "src/CMakeFiles/coop.dir/awareness/engine.cpp.o" "gcc" "src/CMakeFiles/coop.dir/awareness/engine.cpp.o.d"
  "/root/repo/src/ccontrol/floor.cpp" "src/CMakeFiles/coop.dir/ccontrol/floor.cpp.o" "gcc" "src/CMakeFiles/coop.dir/ccontrol/floor.cpp.o.d"
  "/root/repo/src/ccontrol/locks.cpp" "src/CMakeFiles/coop.dir/ccontrol/locks.cpp.o" "gcc" "src/CMakeFiles/coop.dir/ccontrol/locks.cpp.o.d"
  "/root/repo/src/ccontrol/ot.cpp" "src/CMakeFiles/coop.dir/ccontrol/ot.cpp.o" "gcc" "src/CMakeFiles/coop.dir/ccontrol/ot.cpp.o.d"
  "/root/repo/src/ccontrol/transactions.cpp" "src/CMakeFiles/coop.dir/ccontrol/transactions.cpp.o" "gcc" "src/CMakeFiles/coop.dir/ccontrol/transactions.cpp.o.d"
  "/root/repo/src/ccontrol/txgroup.cpp" "src/CMakeFiles/coop.dir/ccontrol/txgroup.cpp.o" "gcc" "src/CMakeFiles/coop.dir/ccontrol/txgroup.cpp.o.d"
  "/root/repo/src/groups/group_channel.cpp" "src/CMakeFiles/coop.dir/groups/group_channel.cpp.o" "gcc" "src/CMakeFiles/coop.dir/groups/group_channel.cpp.o.d"
  "/root/repo/src/groups/membership.cpp" "src/CMakeFiles/coop.dir/groups/membership.cpp.o" "gcc" "src/CMakeFiles/coop.dir/groups/membership.cpp.o.d"
  "/root/repo/src/groupware/conference.cpp" "src/CMakeFiles/coop.dir/groupware/conference.cpp.o" "gcc" "src/CMakeFiles/coop.dir/groupware/conference.cpp.o.d"
  "/root/repo/src/groupware/document.cpp" "src/CMakeFiles/coop.dir/groupware/document.cpp.o" "gcc" "src/CMakeFiles/coop.dir/groupware/document.cpp.o.d"
  "/root/repo/src/groupware/editor.cpp" "src/CMakeFiles/coop.dir/groupware/editor.cpp.o" "gcc" "src/CMakeFiles/coop.dir/groupware/editor.cpp.o.d"
  "/root/repo/src/groupware/flightstrips.cpp" "src/CMakeFiles/coop.dir/groupware/flightstrips.cpp.o" "gcc" "src/CMakeFiles/coop.dir/groupware/flightstrips.cpp.o.d"
  "/root/repo/src/groupware/mediaspace.cpp" "src/CMakeFiles/coop.dir/groupware/mediaspace.cpp.o" "gcc" "src/CMakeFiles/coop.dir/groupware/mediaspace.cpp.o.d"
  "/root/repo/src/mgmt/placement.cpp" "src/CMakeFiles/coop.dir/mgmt/placement.cpp.o" "gcc" "src/CMakeFiles/coop.dir/mgmt/placement.cpp.o.d"
  "/root/repo/src/mobile/host.cpp" "src/CMakeFiles/coop.dir/mobile/host.cpp.o" "gcc" "src/CMakeFiles/coop.dir/mobile/host.cpp.o.d"
  "/root/repo/src/mobile/share_server.cpp" "src/CMakeFiles/coop.dir/mobile/share_server.cpp.o" "gcc" "src/CMakeFiles/coop.dir/mobile/share_server.cpp.o.d"
  "/root/repo/src/net/fifo_channel.cpp" "src/CMakeFiles/coop.dir/net/fifo_channel.cpp.o" "gcc" "src/CMakeFiles/coop.dir/net/fifo_channel.cpp.o.d"
  "/root/repo/src/net/network.cpp" "src/CMakeFiles/coop.dir/net/network.cpp.o" "gcc" "src/CMakeFiles/coop.dir/net/network.cpp.o.d"
  "/root/repo/src/rpc/group_rpc.cpp" "src/CMakeFiles/coop.dir/rpc/group_rpc.cpp.o" "gcc" "src/CMakeFiles/coop.dir/rpc/group_rpc.cpp.o.d"
  "/root/repo/src/rpc/rpc.cpp" "src/CMakeFiles/coop.dir/rpc/rpc.cpp.o" "gcc" "src/CMakeFiles/coop.dir/rpc/rpc.cpp.o.d"
  "/root/repo/src/rpc/trader.cpp" "src/CMakeFiles/coop.dir/rpc/trader.cpp.o" "gcc" "src/CMakeFiles/coop.dir/rpc/trader.cpp.o.d"
  "/root/repo/src/sim/simulator.cpp" "src/CMakeFiles/coop.dir/sim/simulator.cpp.o" "gcc" "src/CMakeFiles/coop.dir/sim/simulator.cpp.o.d"
  "/root/repo/src/streams/stream.cpp" "src/CMakeFiles/coop.dir/streams/stream.cpp.o" "gcc" "src/CMakeFiles/coop.dir/streams/stream.cpp.o.d"
  "/root/repo/src/streams/sync.cpp" "src/CMakeFiles/coop.dir/streams/sync.cpp.o" "gcc" "src/CMakeFiles/coop.dir/streams/sync.cpp.o.d"
  "/root/repo/src/workflow/procedure.cpp" "src/CMakeFiles/coop.dir/workflow/procedure.cpp.o" "gcc" "src/CMakeFiles/coop.dir/workflow/procedure.cpp.o.d"
  "/root/repo/src/workflow/speech_acts.cpp" "src/CMakeFiles/coop.dir/workflow/speech_acts.cpp.o" "gcc" "src/CMakeFiles/coop.dir/workflow/speech_acts.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
