file(REMOVE_RECURSE
  "libcoop.a"
)
