# Empty compiler generated dependencies file for coop_tests.
# This may be replaced when dependencies are built.
