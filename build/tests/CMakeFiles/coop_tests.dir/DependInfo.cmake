
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/access_test.cpp" "tests/CMakeFiles/coop_tests.dir/access_test.cpp.o" "gcc" "tests/CMakeFiles/coop_tests.dir/access_test.cpp.o.d"
  "/root/repo/tests/awareness_test.cpp" "tests/CMakeFiles/coop_tests.dir/awareness_test.cpp.o" "gcc" "tests/CMakeFiles/coop_tests.dir/awareness_test.cpp.o.d"
  "/root/repo/tests/fifo_channel_test.cpp" "tests/CMakeFiles/coop_tests.dir/fifo_channel_test.cpp.o" "gcc" "tests/CMakeFiles/coop_tests.dir/fifo_channel_test.cpp.o.d"
  "/root/repo/tests/group_channel_test.cpp" "tests/CMakeFiles/coop_tests.dir/group_channel_test.cpp.o" "gcc" "tests/CMakeFiles/coop_tests.dir/group_channel_test.cpp.o.d"
  "/root/repo/tests/groupware_test.cpp" "tests/CMakeFiles/coop_tests.dir/groupware_test.cpp.o" "gcc" "tests/CMakeFiles/coop_tests.dir/groupware_test.cpp.o.d"
  "/root/repo/tests/integration_coauthoring_test.cpp" "tests/CMakeFiles/coop_tests.dir/integration_coauthoring_test.cpp.o" "gcc" "tests/CMakeFiles/coop_tests.dir/integration_coauthoring_test.cpp.o.d"
  "/root/repo/tests/integration_session_test.cpp" "tests/CMakeFiles/coop_tests.dir/integration_session_test.cpp.o" "gcc" "tests/CMakeFiles/coop_tests.dir/integration_session_test.cpp.o.d"
  "/root/repo/tests/locks_test.cpp" "tests/CMakeFiles/coop_tests.dir/locks_test.cpp.o" "gcc" "tests/CMakeFiles/coop_tests.dir/locks_test.cpp.o.d"
  "/root/repo/tests/lockstyle_sweep_test.cpp" "tests/CMakeFiles/coop_tests.dir/lockstyle_sweep_test.cpp.o" "gcc" "tests/CMakeFiles/coop_tests.dir/lockstyle_sweep_test.cpp.o.d"
  "/root/repo/tests/logical_clocks_test.cpp" "tests/CMakeFiles/coop_tests.dir/logical_clocks_test.cpp.o" "gcc" "tests/CMakeFiles/coop_tests.dir/logical_clocks_test.cpp.o.d"
  "/root/repo/tests/mediaspace_test.cpp" "tests/CMakeFiles/coop_tests.dir/mediaspace_test.cpp.o" "gcc" "tests/CMakeFiles/coop_tests.dir/mediaspace_test.cpp.o.d"
  "/root/repo/tests/membership_test.cpp" "tests/CMakeFiles/coop_tests.dir/membership_test.cpp.o" "gcc" "tests/CMakeFiles/coop_tests.dir/membership_test.cpp.o.d"
  "/root/repo/tests/mgmt_workflow_test.cpp" "tests/CMakeFiles/coop_tests.dir/mgmt_workflow_test.cpp.o" "gcc" "tests/CMakeFiles/coop_tests.dir/mgmt_workflow_test.cpp.o.d"
  "/root/repo/tests/mobile_test.cpp" "tests/CMakeFiles/coop_tests.dir/mobile_test.cpp.o" "gcc" "tests/CMakeFiles/coop_tests.dir/mobile_test.cpp.o.d"
  "/root/repo/tests/network_test.cpp" "tests/CMakeFiles/coop_tests.dir/network_test.cpp.o" "gcc" "tests/CMakeFiles/coop_tests.dir/network_test.cpp.o.d"
  "/root/repo/tests/ot_test.cpp" "tests/CMakeFiles/coop_tests.dir/ot_test.cpp.o" "gcc" "tests/CMakeFiles/coop_tests.dir/ot_test.cpp.o.d"
  "/root/repo/tests/property_test.cpp" "tests/CMakeFiles/coop_tests.dir/property_test.cpp.o" "gcc" "tests/CMakeFiles/coop_tests.dir/property_test.cpp.o.d"
  "/root/repo/tests/rpc_test.cpp" "tests/CMakeFiles/coop_tests.dir/rpc_test.cpp.o" "gcc" "tests/CMakeFiles/coop_tests.dir/rpc_test.cpp.o.d"
  "/root/repo/tests/sim_test.cpp" "tests/CMakeFiles/coop_tests.dir/sim_test.cpp.o" "gcc" "tests/CMakeFiles/coop_tests.dir/sim_test.cpp.o.d"
  "/root/repo/tests/store_misc_test.cpp" "tests/CMakeFiles/coop_tests.dir/store_misc_test.cpp.o" "gcc" "tests/CMakeFiles/coop_tests.dir/store_misc_test.cpp.o.d"
  "/root/repo/tests/streams_test.cpp" "tests/CMakeFiles/coop_tests.dir/streams_test.cpp.o" "gcc" "tests/CMakeFiles/coop_tests.dir/streams_test.cpp.o.d"
  "/root/repo/tests/transactions_test.cpp" "tests/CMakeFiles/coop_tests.dir/transactions_test.cpp.o" "gcc" "tests/CMakeFiles/coop_tests.dir/transactions_test.cpp.o.d"
  "/root/repo/tests/txgroup_floor_test.cpp" "tests/CMakeFiles/coop_tests.dir/txgroup_floor_test.cpp.o" "gcc" "tests/CMakeFiles/coop_tests.dir/txgroup_floor_test.cpp.o.d"
  "/root/repo/tests/util_test.cpp" "tests/CMakeFiles/coop_tests.dir/util_test.cpp.o" "gcc" "tests/CMakeFiles/coop_tests.dir/util_test.cpp.o.d"
  "/root/repo/tests/views_test.cpp" "tests/CMakeFiles/coop_tests.dir/views_test.cpp.o" "gcc" "tests/CMakeFiles/coop_tests.dir/views_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/coop.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
