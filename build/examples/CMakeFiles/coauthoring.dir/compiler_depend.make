# Empty compiler generated dependencies file for coauthoring.
# This may be replaced when dependencies are built.
