file(REMOVE_RECURSE
  "CMakeFiles/coauthoring.dir/coauthoring.cpp.o"
  "CMakeFiles/coauthoring.dir/coauthoring.cpp.o.d"
  "coauthoring"
  "coauthoring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coauthoring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
