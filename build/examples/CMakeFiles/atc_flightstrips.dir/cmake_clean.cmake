file(REMOVE_RECURSE
  "CMakeFiles/atc_flightstrips.dir/atc_flightstrips.cpp.o"
  "CMakeFiles/atc_flightstrips.dir/atc_flightstrips.cpp.o.d"
  "atc_flightstrips"
  "atc_flightstrips.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atc_flightstrips.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
