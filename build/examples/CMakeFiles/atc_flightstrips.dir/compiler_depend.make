# Empty compiler generated dependencies file for atc_flightstrips.
# This may be replaced when dependencies are built.
