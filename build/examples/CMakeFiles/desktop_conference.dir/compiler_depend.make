# Empty compiler generated dependencies file for desktop_conference.
# This may be replaced when dependencies are built.
