file(REMOVE_RECURSE
  "CMakeFiles/desktop_conference.dir/desktop_conference.cpp.o"
  "CMakeFiles/desktop_conference.dir/desktop_conference.cpp.o.d"
  "desktop_conference"
  "desktop_conference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/desktop_conference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
