file(REMOVE_RECURSE
  "CMakeFiles/media_space.dir/media_space.cpp.o"
  "CMakeFiles/media_space.dir/media_space.cpp.o.d"
  "media_space"
  "media_space.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/media_space.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
