# Empty compiler generated dependencies file for media_space.
# This may be replaced when dependencies are built.
