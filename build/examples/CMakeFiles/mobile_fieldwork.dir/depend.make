# Empty dependencies file for mobile_fieldwork.
# This may be replaced when dependencies are built.
