file(REMOVE_RECURSE
  "CMakeFiles/mobile_fieldwork.dir/mobile_fieldwork.cpp.o"
  "CMakeFiles/mobile_fieldwork.dir/mobile_fieldwork.cpp.o.d"
  "mobile_fieldwork"
  "mobile_fieldwork.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mobile_fieldwork.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
