// Mobile fieldwork: the MOST-project scenario from §3.3.3 / §4.2.2.
//
// A utilities field engineer hoards the day's job sheets before leaving
// the depot, loses connectivity in the field, keeps reading and updating
// the cached sheets (disconnected operation), passes through a town with
// packet-radio coverage (partial connectivity), and finally returns to
// the depot where the operation log reintegrates in one bulk update —
// colliding with an office edit made meanwhile.
//
// Build & run:  ./mobile_fieldwork
#include <cstdio>
#include <string>
#include <vector>

#include "core/coop.hpp"

using namespace coop;

int main() {
  Platform platform(/*seed=*/5);
  auto& sim = platform.simulator();
  auto& net = platform.network();
  net.set_default_link(net::LinkModel::lan());
  net.set_radio_model(net::LinkModel::radio());

  mobile::ShareServer depot(net, {100, 1});
  depot.store().write("job/117", "inspect transformer, substation A");
  depot.store().write("job/118", "replace fuse, pole 22");
  depot.store().write("job/119", "meter reading, plant 9");
  depot.store().write("map/sector4", "grid reference data...");

  mobile::MobileHost engineer(net, {1, 1}, {100, 1},
                              mobile::ConflictPolicy::kManual);
  engineer.on_conflict([&](const mobile::Conflict& c) {
    std::printf("[%6.1f s] CONFLICT on %s\n    field copy:  \"%s\"\n"
                "    office copy: \"%s\"\n    (manual policy: office copy "
                "kept; field note queued for the engineer)\n",
                sim::to_sec(sim.now()), c.key.c_str(),
                c.local_value.c_str(), c.server_value.c_str());
  });

  auto log = [&](const char* msg) {
    std::printf("[%6.1f s] %s\n", sim::to_sec(sim.now()), msg);
  };

  // 08:00 — at the depot: hoard the day's work.
  sim.schedule_at(sim::sec(1), [&] {
    log("at depot: hoarding job sheets over the LAN");
    engineer.hoard({"job/117", "job/118", "job/119", "map/sector4"},
                   [&](std::size_t n) {
                     std::printf("[%6.1f s] hoarded %zu objects\n",
                                 sim::to_sec(sim.now()), n);
                   });
  });

  // 08:30 — driving out: fully disconnected.
  sim.schedule_at(sim::sec(10), [&] {
    log("leaving coverage: DISCONNECTED");
    engineer.set_connectivity(net::Connectivity::kDisconnected);
  });

  // Field work against the cache.
  sim.schedule_at(sim::sec(20), [&] {
    engineer.read("job/117", [&](bool ok, auto v) {
      std::printf("[%6.1f s] read job/117 from cache: %s (\"%s\")\n",
                  sim::to_sec(sim.now()), ok ? "hit" : "MISS",
                  v.value_or("-").c_str());
    });
    engineer.write("job/117", "inspect transformer — DONE, minor corrosion",
                   [](bool) {});
    log("logged completion of job/117 (offline)");
  });
  sim.schedule_at(sim::sec(30), [&] {
    engineer.write("job/118", "replace fuse — DONE", [](bool) {});
    log("logged completion of job/118 (offline)");
    // An unhoarded object is a honest miss in the field.
    engineer.read("job/999", [&](bool ok, auto) {
      std::printf("[%6.1f s] read job/999: %s (not hoarded)\n",
                  sim::to_sec(sim.now()), ok ? "hit?!" : "miss, as expected");
    });
  });

  // Meanwhile, the office amends job/119 — the future conflict.
  sim.schedule_at(sim::sec(35), [&] {
    depot.store().write("job/119", "meter reading CANCELLED by customer");
    log("(office) job/119 amended on the depot server");
  });
  sim.schedule_at(sim::sec(40), [&] {
    engineer.write("job/119", "meter reading — DONE, 48213 kWh",
                   [](bool) {});
    log("logged completion of job/119 (offline) — office change unknown");
  });

  // 12:00 — passing through town: packet radio (partial connectivity).
  sim.schedule_at(sim::sec(50), [&] {
    log("entering town: PARTIAL connectivity (packet radio)");
    engineer.set_connectivity(net::Connectivity::kPartial);
    // Reads now reach the server, slowly, over the radio.
    engineer.read("job/117", [&](bool ok, auto v) {
      std::printf("[%6.1f s] radio read of job/117: %s \"%s\"\n",
                  sim::to_sec(sim.now()), ok ? "ok" : "fail",
                  v.value_or("-").c_str());
    });
  });

  // 17:00 — back at the depot: full connectivity, bulk reintegration.
  sim.schedule_at(sim::sec(70), [&] {
    log("back at depot: FULL connectivity, reintegrating");
    engineer.set_connectivity(net::Connectivity::kFull);
    engineer.reintegrate([&](std::size_t applied,
                             const std::vector<mobile::Conflict>& conflicts) {
      std::printf("[%6.1f s] reintegration: %zu applied, %zu conflict(s)\n",
                  sim::to_sec(sim.now()), applied, conflicts.size());
    });
  });

  platform.run_until(sim::sec(120));

  std::printf("\nfinal depot state:\n");
  for (const auto& key : depot.store().keys()) {
    std::printf("  %-12s = \"%s\"\n", key.c_str(),
                depot.store().read(key).value_or("").c_str());
  }
  const auto& st = engineer.stats();
  std::printf("\nengineer stats: %llu cache hits, %llu misses, "
              "%llu logged writes, %llu reintegrated, %llu conflicts\n",
              static_cast<unsigned long long>(st.cache_hits),
              static_cast<unsigned long long>(st.cache_misses),
              static_cast<unsigned long long>(st.logged_writes),
              static_cast<unsigned long long>(st.reintegrated),
              static_cast<unsigned long long>(st.conflicts));
  return 0;
}
