// Desktop conferencing: §3.2.2 + §4.2.2 in one program.
//
// Three participants share an unmodified single-user application
// (collaboration-transparent, floor-controlled) while audio and video
// streams run between them with QoS contracts.  Midway, a bulk file
// transfer congests the video path: the QoS monitor detects the
// degradation and re-negotiates the stream down (media scaling); when the
// transfer ends the stream creeps back up.  A lip-sync regulator keeps
// audio and video aligned throughout.
//
// Build & run:  ./desktop_conference
#include <cstdio>
#include <memory>
#include <string>

#include "core/coop.hpp"

using namespace coop;

namespace {
constexpr ccontrol::ClientId kAmy = 1;
constexpr ccontrol::ClientId kBen = 2;
constexpr ccontrol::ClientId kCho = 3;
}  // namespace

int main() {
  Platform platform(/*seed=*/99);
  auto& sim = platform.simulator();
  auto& net = platform.network();
  net.set_default_link({.latency = sim::msec(10), .jitter = sim::msec(2),
                        .bandwidth_bps = 2e6, .loss = 0.001});

  // --- the shared application with floor control -----------------------------
  groupware::ConferenceServer app_server(
      net, {10, 1}, std::make_unique<groupware::TerminalApp>(),
      {.policy = ccontrol::FloorPolicy::kNegotiation,
       .negotiation_timeout = sim::sec(2)});
  groupware::ConferenceClient amy(net, {1, 1}, {10, 1}, kAmy);
  groupware::ConferenceClient ben(net, {2, 1}, {10, 1}, kBen);
  groupware::ConferenceClient cho(net, {3, 1}, {10, 1}, kCho);
  amy.join();
  ben.join();
  cho.join();

  sim.schedule_at(sim::msec(50), [&] { amy.request_floor(); });
  sim.schedule_at(sim::msec(100), [&] {
    amy.send_input("agenda: 1. QoS demo  2. AOB");
  });
  sim.schedule_at(sim::msec(200), [&] { ben.request_floor(); });
  // Amy stays silent; after the negotiation timeout Ben gets the floor.
  sim.schedule_at(sim::sec(3), [&] {
    ben.send_input("ben: can everyone see my notes?");
  });

  // --- continuous media with QoS ----------------------------------------------
  streams::QosSpec video{.fps = 25, .frame_bytes = 4000,
                         .latency_bound = sim::msec(200),
                         .jitter_bound = sim::msec(40), .min_fps = 5};
  streams::QosSpec audio{.fps = 50, .frame_bytes = 320,
                         .latency_bound = sim::msec(150),
                         .jitter_bound = sim::msec(30), .min_fps = 50};

  // Admission against the 2 Mbps path budget.
  streams::QosManager qos_mgr(1.5e6);
  const auto video_adm = qos_mgr.admit(video);
  const auto audio_adm = qos_mgr.admit(audio);
  std::printf("admission: video %s at %.1f fps, audio %s at %.1f fps\n",
              video_adm.admitted ? "ok" : "REJECTED", video_adm.granted.fps,
              audio_adm.admitted ? "ok" : "REJECTED", audio_adm.granted.fps);

  streams::MediaSource video_src(sim, 1, video);
  streams::MediaSource audio_src(sim, 2, audio);
  streams::StreamBinding video_bind(net, video_src, {1, 20},
                                    net::Address{2, 20});
  streams::StreamBinding audio_bind(net, audio_src, {1, 21},
                                    net::Address{2, 21});
  streams::MediaSink video_sink(net, {2, 20});
  streams::MediaSink audio_sink(net, {2, 21});
  streams::QosMonitor video_mon(sim, video_sink, video);
  streams::QosAdaptor video_adapt(video_mon, qos_mgr, video_src, video);
  video_adapt.on_window([&](const streams::QosReport& r,
                            streams::QosVerdict v, double fps) {
    const char* verdict =
        v == streams::QosVerdict::kHealthy
            ? "healthy"
            : (v == streams::QosVerdict::kDegraded ? "DEGRADED"
                                                   : "UNACCEPTABLE");
    std::printf("[%5.1f s] video window: %.1f fps, lat %.0f ms, %s -> "
                "operating at %.1f fps\n",
                sim::to_sec(sim.now()), r.achieved_fps,
                r.mean_latency_us / 1000.0, verdict, fps);
  });

  streams::ContinuousSync lipsync(sim, audio_sink, video_sink,
                                  {.check_period = sim::msec(100),
                                   .skew_bound = sim::msec(80),
                                   .correction_gain = 0.5});
  lipsync.start();
  video_src.start();
  audio_src.start();

  // --- the conference directory under overload --------------------------------
  // A small admission-controlled RPC service answers roster lookups (core)
  // and awareness pings (background).  During the bulk transfer the ping
  // rate spikes well past the service rate; the overload plane sheds the
  // awareness traffic at the door while roster lookups keep their deadline.
  rpc::RpcServer directory(net, {10, 2});
  directory.set_processing_time(sim::msec(5));
  directory.set_admission({.queue_capacity = 16, .control_watermark = 12,
                           .background_watermark = 6, .drop_expired = true});
  directory.register_method("roster", [](const std::string&) {
    return rpc::HandlerResult::success("amy,ben,cho");
  });
  directory.register_method("presence", [](const std::string&) {
    return rpc::HandlerResult::success("ok");
  });
  rpc::RpcClient dir_client(
      net, {3, 2},
      {.budget = {.enabled = true}, .breaker = {.enabled = true}});
  std::uint64_t roster_ok = 0, roster_fail = 0, pings_refused = 0;
  // Awareness pings at 250/s for 2 s against a 200/s service rate: the
  // ping storm saturates the directory and gets shed at the door.
  for (int i = 0; i < 500; ++i) {
    sim.schedule_at(sim::sec(5) + i * sim::msec(4), [&] {
      rpc::CallOptions opts;
      opts.priority = net::Priority::kBackground;
      opts.retries = 0;
      dir_client.call({10, 2}, "presence", "cho", [&](const rpc::RpcResult& r) {
        if (r.status == rpc::Status::kRejected) ++pings_refused;
      }, opts);
    });
  }
  for (int i = 0; i < 8; ++i) {  // roster lookups ride through the storm
    sim.schedule_at(sim::sec(5) + i * sim::msec(500), [&] {
      rpc::CallOptions opts;
      opts.deadline = sim.now() + sim::msec(250);
      dir_client.call({10, 2}, "roster", "", [&](const rpc::RpcResult& r) {
        r.ok() ? ++roster_ok : ++roster_fail;
      }, opts);
    });
  }

  // --- the disturbance: a bulk transfer on the same 1->2 path -----------------
  sim.schedule_at(sim::sec(4), [&] {
    std::printf("[%5.1f s] bulk file transfer begins on the video path\n",
                sim::to_sec(sim.now()));
  });
  // 10 s of 200 kB/s cross-traffic in 20 kB chunks.
  for (int i = 0; i < 100; ++i) {
    sim.schedule_at(sim::sec(4) + i * sim::msec(100), [&net, i] {
      net::Message chunk{.src = {1, 30}, .dst = {2, 30}, .payload = {}};
      chunk.wire_size = 20'000;
      net.send(std::move(chunk));
      (void)i;
    });
  }
  sim.schedule_at(sim::sec(14), [&] {
    std::printf("[%5.1f s] bulk transfer done\n", sim::to_sec(sim.now()));
  });

  platform.run_until(sim::sec(25));

  std::printf("\nshared app display at the end:\n%s\n",
              app_server.app().display().c_str());
  std::printf("\nconference stats: %llu inputs accepted, %llu rejected "
              "(non-holders), floor auto-grants %llu\n",
              static_cast<unsigned long long>(
                  app_server.stats().inputs_accepted),
              static_cast<unsigned long long>(
                  app_server.stats().inputs_rejected),
              static_cast<unsigned long long>(
                  app_server.floor().stats().auto_grants));
  std::printf("video: final rate %.1f fps, monitor violations %llu\n",
              video_src.fps(),
              static_cast<unsigned long long>(video_mon.violations()));
  std::printf("lip-sync: %llu corrections, residual skew %.1f ms "
              "(bound 80 ms)\n",
              static_cast<unsigned long long>(lipsync.corrections()),
              lipsync.skew().samples().empty()
                  ? 0.0
                  : lipsync.skew().samples().back() / 1000.0);
  std::printf("directory under overload: roster %llu ok / %llu failed; "
              "shed background %llu, control %llu, core %llu; "
              "expired drops %llu; pings refused %llu, client rejected "
              "%llu, retries denied %llu\n",
              static_cast<unsigned long long>(roster_ok),
              static_cast<unsigned long long>(roster_fail),
              static_cast<unsigned long long>(
                  directory.shed(net::Priority::kBackground)),
              static_cast<unsigned long long>(
                  directory.shed(net::Priority::kControl)),
              static_cast<unsigned long long>(
                  directory.shed(net::Priority::kCore)),
              static_cast<unsigned long long>(directory.expired_drops()),
              static_cast<unsigned long long>(pings_refused),
              static_cast<unsigned long long>(dir_client.rejected()),
              static_cast<unsigned long long>(dir_client.retries_denied()));
  return 0;
}
