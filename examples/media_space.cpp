// Media space: §3.3.2 — "embed multimedia communication technology within
// the workplace to provide an augmented reality".
//
// Three researchers at two sites share a media space.  Doors control
// social accessibility (open / knock / closed), glances support Cruiser-
// style social browsing, Portholes snapshots give everyone background
// awareness of the community, and a knock negotiation escalates a glance
// into a sustained conversation — which then carries real audio with a
// QoS contract.
//
// Build & run:  ./media_space
#include <cstdio>
#include <string>

#include "core/coop.hpp"

using namespace coop;

namespace {
constexpr ccontrol::ClientId kDai = 1;   // London
constexpr ccontrol::ClientId kEve = 2;   // London
constexpr ccontrol::ClientId kFay = 3;   // Lancaster
}  // namespace

int main() {
  Platform platform(123);
  auto& sim = platform.simulator();
  auto& net = platform.network();
  net.set_default_link(net::LinkModel::lan());
  net.set_symmetric_link(1, 3, net::LinkModel::wan());
  net.set_symmetric_link(2, 3, net::LinkModel::wan());

  // Awareness ties the media space into the rest of the workspace.
  awareness::SpatialModel suite;
  suite.place(kDai, {0, 0});
  suite.place(kEve, {2, 0});
  suite.place(kFay, {6, 0});
  awareness::AwarenessEngine engine(sim, suite);
  engine.subscribe(kEve, [&](const awareness::ActivityEvent& e, double,
                             bool) {
    std::printf("  (eve notices: user %u %s %s)\n", e.actor,
                e.verb.c_str(), e.object.c_str());
  });

  groupware::MediaSpace space(sim, net, &engine,
                              {.knock_timeout = sim::sec(10),
                               .snapshot_period = sim::sec(30),
                               .snapshot_bytes = 6000});
  space.add_office(kDai, 1);
  space.add_office(kEve, 2);
  space.add_office(kFay, 3);

  space.on_knock([&](ccontrol::ClientId occupant, ccontrol::ClientId from) {
    std::printf("[%5.0f s] user %u's door: knock knock (user %u)\n",
                sim::to_sec(sim.now()), occupant, from);
  });
  space.on_snapshot([&](ccontrol::ClientId viewer, ccontrol::ClientId office,
                        sim::TimePoint) {
    std::printf("[%5.0f s] portholes: user %u sees a fresh snapshot of "
                "user %u's office\n",
                sim::to_sec(sim.now()), viewer, office);
  });

  // Everyone watches the community via Portholes.
  space.subscribe_portholes(kDai);
  space.subscribe_portholes(kEve);
  space.subscribe_portholes(kFay);
  space.start_portholes();

  auto at = [&](sim::Duration t, auto fn) { sim.schedule_at(t, fn); };

  at(sim::sec(5), [&] {
    std::printf("[%5.0f s] dai glances into eve's (open) office: %s\n",
                sim::to_sec(sim.now()),
                space.glance(kDai, kEve) ==
                        groupware::AttemptResult::kAccepted
                    ? "accepted"
                    : "not accepted");
  });
  at(sim::sec(10), [&] {
    std::printf("[%5.0f s] fay needs focus: door to KNOCK\n",
                sim::to_sec(sim.now()));
    space.set_door(kFay, groupware::DoorState::kKnock);
  });
  at(sim::sec(15), [&] {
    std::printf("[%5.0f s] dai tries to connect to fay...\n",
                sim::to_sec(sim.now()));
    space.connect(kDai, kFay);
  });
  at(sim::sec(18), [&] {
    std::printf("[%5.0f s] fay accepts the knock\n", sim::to_sec(sim.now()));
    space.answer(kFay, kDai, true);
    std::printf("          dai<->fay connected: %s\n",
                space.connected(kDai, kFay) ? "yes" : "no");
  });

  // The accepted connection carries audio with a QoS contract over the WAN.
  streams::QosSpec audio{.fps = 50, .frame_bytes = 320,
                         .latency_bound = sim::msec(150),
                         .jitter_bound = sim::msec(40), .min_fps = 25};
  streams::MediaSource dai_mic(sim, 1, audio);
  streams::StreamBinding audio_bind(net, dai_mic, {1, 40},
                                    net::Address{3, 40});
  streams::MediaSink fay_speaker(net, {3, 40});
  streams::QosMonitor audio_mon(sim, fay_speaker, audio);
  // Count QoS violations only while the conversation is live (a monitor
  // watching a stopped stream reports empty windows).
  bool mic_on = false;
  std::uint64_t live_violations = 0;
  audio_mon.on_report([&](const streams::QosReport&, streams::QosVerdict v) {
    if (mic_on && v != streams::QosVerdict::kHealthy) ++live_violations;
  });
  at(sim::sec(19), [&] {
    dai_mic.start();
    mic_on = true;
  });
  at(sim::sec(40), [&] {
    mic_on = false;
    dai_mic.stop();
    space.disconnect(kDai, kFay);
    std::printf("[%5.0f s] conversation over; link torn down\n",
                sim::to_sec(sim.now()));
  });

  at(sim::sec(45), [&] {
    std::printf("[%5.0f s] fay goes heads-down: door CLOSED\n",
                sim::to_sec(sim.now()));
    space.set_door(kFay, groupware::DoorState::kClosed);
  });
  at(sim::sec(50), [&] {
    std::printf("[%5.0f s] eve glances at fay: %s (closed doors refuse "
                "and publish no snapshots)\n",
                sim::to_sec(sim.now()),
                space.glance(kEve, kFay) ==
                        groupware::AttemptResult::kRefused
                    ? "refused"
                    : "?!");
  });

  platform.run_until(sim::sec(70));

  const auto& st = space.stats();
  std::printf("\nmedia space stats: %llu glances (%llu refused), %llu "
              "knocks (%llu expired), %llu connections, %llu snapshots\n",
              static_cast<unsigned long long>(st.glances),
              static_cast<unsigned long long>(st.glances_refused),
              static_cast<unsigned long long>(st.knocks),
              static_cast<unsigned long long>(st.knock_timeouts),
              static_cast<unsigned long long>(st.connections),
              static_cast<unsigned long long>(st.snapshots_delivered));
  std::printf("audio while connected: %llu frames, %llu QoS violations\n",
              static_cast<unsigned long long>(fay_speaker.frames_received()),
              static_cast<unsigned long long>(live_violations));
  return 0;
}
