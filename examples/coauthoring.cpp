// Co-authoring: the paper's running §4.2.1 scenario, end to end.
//
// Three authors on three sites (two on a LAN, one across a WAN) work on a
// Quilt-style document:
//   * the live abstract is edited concurrently through the OT editor
//     (GROVE-style — zero response time, transformed remote ops);
//   * comments and suggestions hang off the base as hypertext nodes;
//   * a dynamic role policy controls who may edit which region, and a
//     rights change is *negotiated* mid-session;
//   * the awareness engine tells authors about each other's activity
//     instead of locking them out (Figure 2b).
//
// Build & run:  ./coauthoring
#include <cstdio>
#include <string>

#include "core/coop.hpp"

using namespace coop;

namespace {
constexpr ccontrol::ClientId kAlice = 1;
constexpr ccontrol::ClientId kBob = 2;
constexpr ccontrol::ClientId kCarol = 3;
}  // namespace

int main() {
  Platform platform(/*seed=*/42);
  auto& sim = platform.simulator();
  auto& net = platform.network();

  // Alice and Bob share a LAN; Carol is at a partner organisation.
  net.set_default_link(net::LinkModel::lan());
  net.set_symmetric_link(1, 10, net::LinkModel::lan());
  net.set_symmetric_link(3, 10, net::LinkModel::wan());
  net.set_symmetric_link(3, 1, net::LinkModel::wan());
  net.set_symmetric_link(3, 2, net::LinkModel::wan());

  // --- access control: roles, fine-grained regions, negotiation ------------
  access::RolePolicy policy;
  policy.define_role("reader");
  policy.define_role("author", "reader");
  policy.grant_role("reader", "abstract", access::kRead);
  policy.grant_role("author", "abstract",
                    access::kRead | access::kWrite | access::kAnnotate);
  policy.assign(kAlice, "author");
  policy.assign(kBob, "author");
  policy.assign(kCarol, "reader");  // external reviewer, read-only for now
  policy.on_change([&](const std::string& d) {
    std::printf("[policy] %s\n", d.c_str());
  });

  // --- the document ----------------------------------------------------------
  const std::string initial = "CSCW challenges ODP. Discuss.";
  groupware::EditorServer server(net, {10, 1}, initial);
  groupware::EditorClient alice(net, {1, 1}, {10, 1}, kAlice, initial);
  groupware::EditorClient bob(net, {2, 1}, {10, 1}, kBob, initial);
  groupware::EditorClient carol(net, {3, 1}, {10, 1}, kCarol, initial);
  alice.connect();
  bob.connect();
  carol.connect();

  groupware::HyperDocument doc("position-paper");
  const auto abstract_node = doc.add_base(kAlice, initial);

  // --- awareness instead of walls ---------------------------------------------
  awareness::SpatialModel space;
  space.place(kAlice, {0, 0});
  space.place(kBob, {2, 0});
  space.place(kCarol, {50, 0});  // far away — peripheral by default
  awareness::AwarenessEngine engine(sim, space,
                                    {.full_threshold = 0.4,
                                     .digest_period = sim::sec(2),
                                     .interest_decay = sim::sec(120)});
  for (auto who : {kAlice, kBob, kCarol}) {
    engine.subscribe(who, [&, who](const awareness::ActivityEvent& e,
                                   double w, bool digest) {
      std::printf("[%7.1f ms] user %u aware: user %u %s %s (w=%.2f%s)\n",
                  sim::to_ms(sim.now()), who, e.actor, e.verb.c_str(),
                  e.object.c_str(), w, digest ? ", digested" : "");
    });
  }

  // --- the work ----------------------------------------------------------------
  sim.schedule_at(sim::msec(5), [&] {
    if (policy.check(kAlice, "abstract", access::kWrite)) {
      alice.insert(0, "The user-centred philosophy of ");
      engine.publish({kAlice, "abstract", "edits", sim.now()});
    }
  });
  sim.schedule_at(sim::msec(8), [&] {
    if (policy.check(kBob, "abstract", access::kWrite)) {
      // Position computed from Bob's CURRENT replica — remote ops may
      // already have shifted the text.
      const auto pos = bob.doc().find(" Discuss.");
      if (pos != std::string::npos) bob.erase(pos, 9);
      engine.publish({kBob, "abstract", "edits", sim.now()});
    }
  });
  sim.schedule_at(sim::msec(12), [&] {
    // Carol may not write — but can annotate?  Not yet: reader lacks it.
    const bool can = policy.check(kCarol, "abstract", access::kWrite);
    std::printf("[%7.1f ms] carol write check: %s\n",
                sim::to_ms(sim.now()), can ? "allowed" : "denied");
    doc.attach(kCarol, abstract_node, groupware::NodeKind::kComment,
               "Should cite the ODP viewpoints here.");
    engine.publish({kCarol, "abstract", "comments on", sim.now()});
  });

  // --- negotiation: promote Carol to author mid-session ------------------------
  access::RightsNegotiator negotiator(
      sim, policy,
      {.policy = access::VotePolicy::kMajority,
       .voting_window = sim::sec(10)});
  negotiator.set_approvers({kAlice, kBob});
  // Start after Carol's join snapshot has crossed the WAN.
  sim.schedule_at(sim::msec(200), [&] {
    std::printf("[%7.1f ms] carol requests author rights...\n",
                sim::to_ms(sim.now()));
    const auto id = negotiator.propose(
        kCarol,
        {.kind = access::ProposedChange::Kind::kAssignRole,
         .role = "author",
         .client = kCarol,
         .object = {},
         .region = {},
         .rights = 0},
        [&](bool accepted) {
          std::printf("[%7.1f ms] negotiation outcome: %s\n",
                      sim::to_ms(sim.now()),
                      accepted ? "accepted" : "rejected");
          if (accepted) {
            carol.insert(0, "[rev] ");
            engine.publish({kCarol, "abstract", "edits", sim.now()});
          }
        });
    // Colleagues vote promptly.
    sim.schedule_after(sim::msec(10),
                       [&negotiator, id] { negotiator.vote(id, kAlice, true); });
    sim.schedule_after(sim::msec(20),
                       [&negotiator, id] { negotiator.vote(id, kBob, true); });
  });

  platform.run_until(sim::sec(5));

  std::printf("\nconverged abstract (server): \"%s\"\n",
              server.doc().c_str());
  std::printf("alice: \"%s\"\nbob:   \"%s\"\ncarol: \"%s\"\n",
              alice.doc().c_str(), bob.doc().c_str(), carol.doc().c_str());
  const bool converged = alice.doc() == server.doc() &&
                         bob.doc() == server.doc() &&
                         carol.doc() == server.doc();
  std::printf("replicas converged: %s\n", converged ? "yes" : "NO");
  std::printf("comments attached: %zu; alice's notification p95: %.1f ms "
              "(carol is %zu WAN hops away)\n",
              doc.children(abstract_node).size(),
              alice.notification_time().p95() / 1000.0,
              static_cast<std::size_t>(2));

  const char* trace_path = "coauthoring.trace.json";
  if (obs::write_trace_json(platform.tracer(), trace_path)) {
    std::printf("trace written to %s (open in Perfetto)\n", trace_path);
  } else {
    std::fprintf(stderr, "warning: failed to write %s\n", trace_path);
  }
  return converged ? 0 : 1;
}
