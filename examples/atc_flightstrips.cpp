// Air traffic control flight strips: the Lancaster study from §2.3.
//
// Two controllers and a chief work a sector's flight progress board.  The
// board is the "publicly available workspace": every strip manipulation
// feeds the awareness engine so colleagues can monitor the sector 'at a
// glance', and the audit trail provides the public history /
// accountability the ethnography identified.  The example also shows why
// the fielded design kept strip placement MANUAL: the automatic mode
// silently absorbs a new arrival that the manual mode forces a controller
// to consciously place (and notice).
//
// Build & run:  ./atc_flightstrips
#include <cstdio>
#include <string>

#include "core/coop.hpp"

using namespace coop;

namespace {
constexpr ccontrol::ClientId kController1 = 1;
constexpr ccontrol::ClientId kController2 = 2;
constexpr ccontrol::ClientId kChief = 3;

const char* kind_name(groupware::BoardEvent::Kind k) {
  using K = groupware::BoardEvent::Kind;
  switch (k) {
    case K::kAdd: return "adds strip";
    case K::kMove: return "re-orders strip";
    case K::kAmend: return "amends strip";
    case K::kCock: return "cocks strip";
    case K::kUncock: return "straightens strip";
    case K::kRemove: return "hands off strip";
  }
  return "?";
}
}  // namespace

int main() {
  Platform platform(/*seed=*/3);
  auto& sim = platform.simulator();

  // The sector suite: both controllers sit at the same board (same
  // place / same time — face-to-face on the space-time matrix), the
  // chief supervises from across the room.
  groupware::Session session(
      "sector-DCS", {groupware::Place::kSame, groupware::Tempo::kSame});
  std::printf("session: %s (%s)\n\n", session.name().c_str(),
              session.classification().quadrant());

  awareness::SpatialModel suite;
  suite.place(kController1, {0, 0});
  suite.place(kController2, {1, 0});
  suite.place(kChief, {6, 0});
  for (auto c : {kController1, kController2, kChief}) {
    suite.set_focus(c, 10);
    suite.set_nimbus(c, 10);
  }
  awareness::AwarenessEngine engine(sim, suite,
                                    {.full_threshold = 0.4,
                                     .digest_period = sim::sec(10),
                                     .interest_decay = sim::minutes(5)});
  engine.subscribe(kController2, [&](const awareness::ActivityEvent& e,
                                     double, bool) {
    std::printf("    (controller 2 notices: user %u %s %s)\n", e.actor,
                e.verb.c_str(), e.object.c_str());
  });

  groupware::FlightProgressBoard board(groupware::StripPlacement::kManual);
  board.on_event([&](const groupware::BoardEvent& e) {
    engine.publish({e.controller, "strip/" + e.callsign, kind_name(e.kind),
                    e.at});
  });

  auto at = [&](sim::Duration when, auto fn) { sim.schedule_at(when, fn); };

  at(sim::sec(1), [&] {
    std::printf("[%5.0f s] controller 1 places BA123 at the top (manual)\n",
                sim::to_sec(sim.now()));
    board.add_strip("DCS",
                    {.callsign = "BA123", .origin = "EGLL",
                     .destination = "EGCC", .eta = sim::minutes(12),
                     .flight_level = 310},
                    0, kController1, sim.now());
  });
  at(sim::sec(3), [&] {
    board.add_strip("DCS",
                    {.callsign = "AF456", .origin = "LFPG",
                     .destination = "EGPH", .eta = sim::minutes(8),
                     .flight_level = 350},
                    0, kController1, sim.now());
    std::printf("[%5.0f s] controller 1 places AF456 ABOVE BA123 — the "
                "ordering encodes 'AF456 first'\n",
                sim::to_sec(sim.now()));
  });
  at(sim::sec(10), [&] {
    std::printf("[%5.0f s] controller 1 issues a clearance to AF456\n",
                sim::to_sec(sim.now()));
    board.amend("AF456", "descend FL280", kController1, sim.now());
  });
  at(sim::sec(20), [&] {
    std::printf("[%5.0f s] controller 2 cocks BA123 — level conflict "
                "brewing, needs attention\n",
                sim::to_sec(sim.now()));
    board.set_cocked("BA123", true, kController2, sim.now());
  });
  at(sim::sec(30), [&] {
    std::printf("[%5.0f s] controller 1 resolves it and straightens the "
                "strip\n",
                sim::to_sec(sim.now()));
    board.amend("BA123", "climb FL330", kController1, sim.now());
    board.set_cocked("BA123", false, kController1, sim.now());
  });
  at(sim::sec(40), [&] {
    std::printf("[%5.0f s] AF456 leaves the sector (handoff)\n",
                sim::to_sec(sim.now()));
    board.remove("AF456", kController1, sim.now());
  });

  platform.run_until(sim::sec(60));

  // 'At a glance' readings from the board.
  std::printf("\nboard state: %zu strip(s) in rack DCS, anticipated load "
              "next 15 min: %zu\n",
              board.rack("DCS").size(),
              board.anticipated_load("DCS", 0, sim::minutes(15)));

  // The naive automation for contrast: automatic insertion never makes
  // anyone look at the new arrival.
  groupware::FlightProgressBoard autoboard(
      groupware::StripPlacement::kAutomatic);
  autoboard.add_strip("DCS", {.callsign = "XX1", .eta = sim::minutes(20)},
                      std::nullopt, kController1);
  autoboard.add_strip("DCS", {.callsign = "XX2", .eta = sim::minutes(5)},
                      std::nullopt, kController1);
  std::printf("\nautomatic board for contrast: positions chosen silently "
              "(%s first) — no controller attention drawn\n",
              autoboard.rack("DCS")[0].callsign.c_str());
  const bool manual_needs_slot =
      !board.add_strip("DCS", {.callsign = "XX3"}, std::nullopt,
                       kController1);
  std::printf("manual board refuses a strip without an explicit slot: %s\n",
              manual_needs_slot ? "yes (the designed friction)" : "NO");

  // Accountability: the public history.
  std::printf("\naudit trail (public history of the sector):\n");
  for (const auto& e : board.audit()) {
    std::printf("  [%5.0f s] controller %u %s %s\n", sim::to_sec(e.at),
                e.controller, kind_name(e.kind), e.callsign.c_str());
  }
  return 0;
}
