// Quickstart: the smallest complete coop program.
//
// Two users on different hosts join a session, share a whiteboard object
// through a totally-ordered group channel, and receive awareness of each
// other's activity.  Everything runs on the deterministic simulator: the
// program prints the same trace on every machine.
//
// Build & run:  ./quickstart
#include <cstdio>
#include <string>
#include <vector>

#include "core/coop.hpp"

using namespace coop;

int main() {
  Platform platform(/*seed=*/7);
  auto& sim = platform.simulator();
  auto& net = platform.network();

  // A campus network: sub-millisecond latency between the two hosts.
  net.set_default_link(net::LinkModel::lan());

  // --- 1. A session classified on the space-time matrix -------------------
  groupware::Session session(
      "whiteboard", {groupware::Place::kDifferent, groupware::Tempo::kSame});
  std::printf("session '%s' is: %s\n", session.name().c_str(),
              session.classification().quadrant());

  // --- 2. Reliable, totally-ordered group communication --------------------
  const net::McastId group = 1;
  const std::vector<net::Address> members = {{1, 10}, {2, 10}};
  groups::ChannelConfig config;
  config.ordering = session.classification().recommended_ordering();

  groups::GroupChannel alice(net, members[0], group, config);
  groups::GroupChannel bob(net, members[1], group, config);
  alice.set_members(members);
  bob.set_members(members);

  std::vector<std::string> alice_sees, bob_sees;
  alice.on_deliver([&](const groups::Delivery& d) {
    alice_sees.push_back(d.payload);
  });
  bob.on_deliver([&](const groups::Delivery& d) {
    bob_sees.push_back(d.payload);
  });

  // --- 3. Awareness: who is doing what, weighted by proximity -------------
  awareness::SpatialModel space;
  space.place(/*alice=*/1, {0, 0});
  space.place(/*bob=*/2, {3, 0});
  awareness::AwarenessEngine engine(sim, space);
  engine.subscribe(2, [&](const awareness::ActivityEvent& e, double w,
                          bool digest) {
    std::printf("[%6.1f ms] bob's awareness: user %u %s %s (weight %.2f%s)\n",
                sim::to_ms(sim.now()), e.actor, e.verb.c_str(),
                e.object.c_str(), w, digest ? ", digest" : "");
  });

  // --- 4. Drive the session ------------------------------------------------
  sim.schedule_at(sim::msec(10), [&] {
    alice.broadcast("draw circle at (2,3)");
    engine.publish({1, "whiteboard", "draws on", sim.now()});
  });
  sim.schedule_at(sim::msec(25), [&] {
    bob.broadcast("label the circle 'server'");
    engine.publish({2, "whiteboard", "annotates", sim.now()});
  });

  platform.run_until(sim::sec(1));

  // --- 5. Both replicas saw the same totally-ordered stream ----------------
  std::printf("\nalice's whiteboard log:\n");
  for (const auto& s : alice_sees) std::printf("  %s\n", s.c_str());
  std::printf("bob's whiteboard log:\n");
  for (const auto& s : bob_sees) std::printf("  %s\n", s.c_str());
  std::printf("replicas agree: %s\n",
              alice_sees == bob_sees ? "yes" : "NO (bug!)");

  // --- 6. Leave the causal trace behind ------------------------------------
  const char* trace_path = "quickstart.trace.json";
  if (obs::write_trace_json(platform.tracer(), trace_path)) {
    std::printf("trace written to %s (open in Perfetto)\n", trace_path);
  } else {
    std::fprintf(stderr, "warning: failed to write %s\n", trace_path);
  }
  return alice_sees == bob_sees ? 0 : 1;
}
