// F2 — Figure 2a vs Figure 2b: transaction walls vs awareness-mediated
// sharing.
//
// One contended co-authoring workload (4 users, 6 shared sections,
// zipf-skewed access, exponential think times, 60 virtual minutes) run
// under the two architectures the figure contrasts:
//
//   walls      — serializable transactions (strict 2PL + wait-die): users
//                block behind each other and learn nothing about who they
//                collided with.
//   awareness  — soft locks + the awareness engine: nobody blocks;
//                overlaps produce conflict awareness and activity flows
//                between users (the social protocol's raw material).
//
// Expected shape: walls shows substantial blocked time and aborts with
// zero information flow; awareness shows zero blocking with a stream of
// awareness events and flagged overlaps.
#include <benchmark/benchmark.h>

#include <functional>
#include <memory>
#include <string>

#include "core/coop.hpp"

using namespace coop;

namespace {

constexpr int kUsers = 4;
constexpr int kSections = 6;
constexpr sim::Duration kSession = sim::minutes(60);
constexpr double kThinkMeanMs = 800.0;
constexpr sim::Duration kEditHold = sim::msec(500);

std::string section_of(sim::Rng& rng) {
  return "sec" + std::to_string(rng.zipf(kSections, 1.1));
}

void BM_Walls_Transactions(benchmark::State& state) {
  double blocked_ms = 0, aborts = 0, commits = 0;
  for (auto _ : state) {
    Platform platform(77);
    auto& sim = platform.simulator();
    ccontrol::ObjectStore store;
    ccontrol::TransactionManager tm(sim, store);

    // Each user loops: begin, edit one section, then cross-reference a
    // second section (two-op transactions create genuine waits under
    // wait-die: the older party blocks behind the younger), commit,
    // think.
    std::function<void(int)> user_loop = [&](int user) {
      if (sim.now() >= kSession) return;
      auto later = [&, user](sim::Duration extra) {
        sim.schedule_after(
            extra + static_cast<sim::Duration>(
                        sim.rng().exponential(kThinkMeanMs) * 1000),
            [&, user] { user_loop(user); });
      };
      const auto txn = tm.begin();
      const std::string first = section_of(sim.rng());
      const std::string second = section_of(sim.rng());
      tm.write(txn, first, "edit by " + std::to_string(user),
               [&, txn, user, second, later](bool ok) {
                 if (!ok) {
                   later(0);  // died under wait-die: back off, retry
                   return;
                 }
                 sim.schedule_after(kEditHold, [&, txn, user, second,
                                                later] {
                   tm.write(txn, second, "xref by " + std::to_string(user),
                            [&, txn, later](bool ok2) {
                              if (!ok2) {
                                later(0);
                                return;
                              }
                              sim.schedule_after(kEditHold, [&, txn,
                                                             later] {
                                tm.commit(txn);
                                later(0);
                              });
                            });
                 });
               });
    };
    for (int u = 0; u < kUsers; ++u) user_loop(u);
    sim.run_until(kSession + sim::sec(30));

    blocked_ms = tm.stats().block_time.sum() / 1000.0;
    aborts = static_cast<double>(tm.stats().aborts);
    commits = static_cast<double>(tm.stats().commits);
  }
  state.counters["blocked_ms_total"] = blocked_ms;
  state.counters["aborted_txns"] = aborts;
  state.counters["committed_edits"] = commits;
  state.counters["awareness_events"] = 0;  // walls tell users nothing
  state.counters["overlaps_flagged"] = 0;
}

void BM_Awareness_SoftLocks(benchmark::State& state) {
  double edits = 0, conflicts = 0, events = 0, waits = 0;
  for (auto _ : state) {
    Platform platform(77);
    auto& sim = platform.simulator();
    ccontrol::ObjectStore store;
    ccontrol::LockManager locks(sim, {.style = ccontrol::LockStyle::kSoft});

    awareness::SpatialModel space;
    awareness::AwarenessEngine engine(sim, space,
                                      {.full_threshold = 0.4,
                                       .digest_period = sim::sec(5),
                                       .interest_decay = sim::minutes(5)});
    for (int u = 0; u < kUsers; ++u) {
      space.place(static_cast<ccontrol::ClientId>(u + 1),
                  {static_cast<double>(u), 0});
      space.set_focus(static_cast<ccontrol::ClientId>(u + 1), 10);
      space.set_nimbus(static_cast<ccontrol::ClientId>(u + 1), 10);
      engine.subscribe(static_cast<ccontrol::ClientId>(u + 1),
                       [&](const awareness::ActivityEvent&, double, bool) {
                         events += 1;
                       });
    }

    std::function<void(int)> user_loop = [&](int user) {
      if (sim.now() >= kSession) return;
      const auto id = static_cast<ccontrol::ClientId>(user + 1);
      const std::string section = section_of(sim.rng());
      locks.acquire(section, id, ccontrol::LockMode::kExclusive,
                    [&, id, section](const ccontrol::LockGrant& g) {
                      conflicts += static_cast<double>(g.conflicts.size());
                      store.write(section, "edit by " + std::to_string(id));
                      engine.publish({id, section, "edits", sim.now()});
                      edits += 1;
                      sim.schedule_after(kEditHold, [&, id, section] {
                        locks.release(section, id);
                      });
                    });
      sim.schedule_after(static_cast<sim::Duration>(
                             sim.rng().exponential(kThinkMeanMs) * 1000),
                         [&, user] { user_loop(user); });
    };
    for (int u = 0; u < kUsers; ++u) user_loop(u);
    sim.run_until(kSession + sim::sec(30));
    waits = static_cast<double>(locks.stats().waits);
  }
  state.counters["blocked_ms_total"] = 0.0;  // soft locks never block
  state.counters["aborted_txns"] = 0;
  state.counters["committed_edits"] = edits;
  state.counters["awareness_events"] = events;
  state.counters["overlaps_flagged"] = conflicts;
  state.counters["waits_check"] = waits;  // must be 0
}

BENCHMARK(BM_Walls_Transactions)->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Awareness_SoftLocks)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

#include "bench_harness.hpp"
COOP_BENCH_MAIN("f2")
