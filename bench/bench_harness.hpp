// Shared main() for the experiment benchmarks.
//
// COOP_BENCH_MAIN replaces BENCHMARK_MAIN so every bench binary (a) runs
// with one process-wide Obs installed as the ambient default — the many
// short-lived Platforms a benchmark constructs all aggregate into it —
// and (b) dumps that Obs on exit as BENCH_<tag>.json (run metadata,
// critical-path latency breakdown, metrics snapshot) plus
// BENCH_<tag>.trace.json (Chrome trace_event; open in about:tracing or
// Perfetto) in the working directory.
#pragma once

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "obs/obs.hpp"

#define COOP_BENCH_MAIN(exp_tag)                                     \
  int main(int argc, char** argv) {                                  \
    coop::obs::Obs obs;                                              \
    coop::obs::ScopedDefaultObs ambient(&obs);                       \
    obs.meta.knobs["tag"] = exp_tag;                                 \
    obs.meta.knobs["trace_cap"] =                                    \
        std::to_string(obs.tracer.capacity());                       \
    if (const char* cap = std::getenv("COOP_TRACE_CAP"))             \
      obs.meta.knobs["COOP_TRACE_CAP"] = cap;                        \
    if (const char* tr = std::getenv("COOP_TRACE"))                  \
      obs.meta.knobs["COOP_TRACE"] = tr;                             \
    if (const char* sr = std::getenv("COOP_TRACE_SAMPLE"))           \
      obs.meta.knobs["COOP_TRACE_SAMPLE"] = sr;                      \
    if (const char* ss = std::getenv("COOP_TRACE_SAMPLE_SEED"))      \
      obs.meta.knobs["COOP_TRACE_SAMPLE_SEED"] = ss;                 \
    if (const char* tw = std::getenv("COOP_TS_WINDOW_US"))           \
      obs.meta.knobs["COOP_TS_WINDOW_US"] = tw;                      \
    if (coop::obs::Profiler::env_enabled())                          \
      obs.meta.knobs["COOP_PROFILE"] = "1";                          \
    {                                                                \
      std::string args;                                              \
      for (int i = 1; i < argc; ++i) {                               \
        if (i > 1) args += ' ';                                      \
        args += argv[i];                                             \
      }                                                              \
      if (!args.empty()) obs.meta.knobs["argv"] = args;              \
    }                                                                \
    const auto wall_start = std::chrono::steady_clock::now();        \
    ::benchmark::Initialize(&argc, argv);                            \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv))        \
      return 1;                                                      \
    ::benchmark::RunSpecifiedBenchmarks();                           \
    ::benchmark::Shutdown();                                         \
    obs.meta.wall_ms =                                               \
        std::chrono::duration<double, std::milli>(                   \
            std::chrono::steady_clock::now() - wall_start)           \
            .count();                                                \
    if (!coop::obs::write_bench_artifacts(obs, exp_tag)) {           \
      std::fprintf(stderr, "warning: failed to write BENCH_%s.*\n",  \
                   exp_tag);                                         \
    }                                                                \
    return 0;                                                        \
  }
