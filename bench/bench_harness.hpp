// Shared main() for the experiment benchmarks.
//
// COOP_BENCH_MAIN replaces BENCHMARK_MAIN so every bench binary (a) runs
// with one process-wide Obs installed as the ambient default — the many
// short-lived Platforms a benchmark constructs all aggregate into it —
// and (b) dumps that Obs on exit as BENCH_<tag>.json (metrics snapshot)
// plus BENCH_<tag>.trace.json (Chrome trace_event; open in about:tracing
// or Perfetto) in the working directory.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>

#include "obs/obs.hpp"

#define COOP_BENCH_MAIN(exp_tag)                                     \
  int main(int argc, char** argv) {                                  \
    coop::obs::Obs obs;                                              \
    coop::obs::ScopedDefaultObs ambient(&obs);                       \
    ::benchmark::Initialize(&argc, argv);                            \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv))        \
      return 1;                                                      \
    ::benchmark::RunSpecifiedBenchmarks();                           \
    ::benchmark::Shutdown();                                         \
    if (!coop::obs::write_bench_artifacts(obs, exp_tag)) {           \
      std::fprintf(stderr, "warning: failed to write BENCH_%s.*\n",  \
                   exp_tag);                                         \
    }                                                                \
    return 0;                                                        \
  }
