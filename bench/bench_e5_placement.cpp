// E5 — management (§4.2.1): object placement for geographically dispersed
// groups.
//
// A session cluster is created at the London site of a three-site domain
// (London + Manchester on fast national links, San Francisco across an
// intercontinental path).  The access pattern is measured, then each
// placement policy proposes a home for the cluster; we report the mean
// and worst usage-weighted access RTT the group experiences before and
// after migration.
//
// Two scenarios:
//   balanced  — all sites access equally ("each site requiring similar
//               real-time response");
//   sf_heavy  — the San Francisco site dominates the access pattern.
//
// Expected shape: static leaves the worst site with the full
// intercontinental RTT; load-balancing is blind to the group and can even
// pick a bad node; group-aware(kWorstCase) minimizes the slowest member's
// RTT and group-aware(kMean) follows the traffic — the "group aware
// policies" the paper calls for.
#include <benchmark/benchmark.h>

#include <memory>
#include <string>

#include "core/coop.hpp"

using namespace coop;

namespace {

constexpr net::NodeId kLondon = 1;
constexpr net::NodeId kManchester = 2;
constexpr net::NodeId kSanFrancisco = 3;
/// A mid-Atlantic hub no user sits at — the node only a worst-case-aware
/// policy would ever pick.
constexpr net::NodeId kNewYork = 4;

struct Setup {
  Platform platform{9};
  mgmt::Domain domain{platform.network()};
  mgmt::UsageMonitor usage;

  Setup() {
    auto& net = platform.network();
    net.set_default_link(net::LinkModel::lan());
    net.set_symmetric_link(kLondon, kManchester, net::LinkModel::wan());
    net.set_symmetric_link(kLondon, kSanFrancisco,
                           net::LinkModel::intercontinental());
    net.set_symmetric_link(kManchester, kSanFrancisco,
                           net::LinkModel::intercontinental());
    const net::LinkModel atlantic{.latency = sim::msec(70),
                                  .jitter = sim::msec(10),
                                  .bandwidth_bps = 2e6,
                                  .loss = 0.005};
    net.set_symmetric_link(kNewYork, kLondon, atlantic);
    net.set_symmetric_link(kNewYork, kManchester, atlantic);
    net.set_symmetric_link(kNewYork, kSanFrancisco, atlantic);
    domain.add_node(kLondon);
    domain.add_node(kManchester);
    domain.add_node(kSanFrancisco);
    domain.add_node(kNewYork);
    domain.create_cluster("session", kLondon);
  }
};

void record_pattern(mgmt::UsageMonitor& usage, bool sf_heavy) {
  if (sf_heavy) {
    usage.record("session", kLondon, 10);
    usage.record("session", kManchester, 10);
    usage.record("session", kSanFrancisco, 80);
  } else {
    usage.record("session", kLondon, 33);
    usage.record("session", kManchester, 33);
    usage.record("session", kSanFrancisco, 34);
  }
}

struct Rtts {
  double mean_ms = 0;
  double worst_ms = 0;
};

Rtts group_rtts(const mgmt::Domain& domain, const mgmt::UsageMonitor& usage,
                const std::string& cluster) {
  const auto home = domain.location(cluster);
  Rtts out;
  double total = 0, weight = 0;
  for (const auto& [node, count] : usage.pattern(cluster)) {
    const double rtt =
        2.0 * sim::to_ms(domain.latency(*home, node));
    out.worst_ms = std::max(out.worst_ms, rtt);
    total += rtt * static_cast<double>(count);
    weight += static_cast<double>(count);
  }
  out.mean_ms = weight > 0 ? total / weight : 0;
  return out;
}

using PolicyFactory = std::unique_ptr<mgmt::PlacementPolicy> (*)();

void run(benchmark::State& state, PolicyFactory make_policy, bool sf_heavy) {
  Rtts before, after;
  double migrations = 0;
  for (auto _ : state) {
    Setup setup;
    record_pattern(setup.usage, sf_heavy);
    before = group_rtts(setup.domain, setup.usage, "session");
    mgmt::MigrationManager mgr(setup.domain, setup.usage, make_policy());
    mgr.evaluate("session");
    after = group_rtts(setup.domain, setup.usage, "session");
    migrations = static_cast<double>(mgr.migrations());
  }
  state.counters["rtt_mean_ms_before"] = before.mean_ms;
  state.counters["rtt_mean_ms_after"] = after.mean_ms;
  state.counters["rtt_worst_ms_before"] = before.worst_ms;
  state.counters["rtt_worst_ms_after"] = after.worst_ms;
  state.counters["migrations"] = migrations;
}

std::unique_ptr<mgmt::PlacementPolicy> make_static() {
  return std::make_unique<mgmt::StaticPolicy>();
}
std::unique_ptr<mgmt::PlacementPolicy> make_load_balance() {
  return std::make_unique<mgmt::LoadBalancingPolicy>();
}
std::unique_ptr<mgmt::PlacementPolicy> make_group_worst() {
  return std::make_unique<mgmt::GroupAwarePolicy>(
      mgmt::GroupAwarePolicy::Metric::kWorstCase);
}
std::unique_ptr<mgmt::PlacementPolicy> make_group_mean() {
  return std::make_unique<mgmt::GroupAwarePolicy>(
      mgmt::GroupAwarePolicy::Metric::kMean);
}

void BM_Static_Balanced(benchmark::State& s) { run(s, make_static, false); }
void BM_LoadBalance_Balanced(benchmark::State& s) {
  run(s, make_load_balance, false);
}
void BM_GroupAwareWorst_Balanced(benchmark::State& s) {
  run(s, make_group_worst, false);
}
void BM_GroupAwareMean_Balanced(benchmark::State& s) {
  run(s, make_group_mean, false);
}
void BM_Static_SfHeavy(benchmark::State& s) { run(s, make_static, true); }
void BM_LoadBalance_SfHeavy(benchmark::State& s) {
  run(s, make_load_balance, true);
}
void BM_GroupAwareWorst_SfHeavy(benchmark::State& s) {
  run(s, make_group_worst, true);
}
void BM_GroupAwareMean_SfHeavy(benchmark::State& s) {
  run(s, make_group_mean, true);
}

BENCHMARK(BM_Static_Balanced)->Iterations(1);
BENCHMARK(BM_LoadBalance_Balanced)->Iterations(1);
BENCHMARK(BM_GroupAwareWorst_Balanced)->Iterations(1);
BENCHMARK(BM_GroupAwareMean_Balanced)->Iterations(1);
BENCHMARK(BM_Static_SfHeavy)->Iterations(1);
BENCHMARK(BM_LoadBalance_SfHeavy)->Iterations(1);
BENCHMARK(BM_GroupAwareWorst_SfHeavy)->Iterations(1);
BENCHMARK(BM_GroupAwareMean_SfHeavy)->Iterations(1);

}  // namespace

#include "bench_harness.hpp"
COOP_BENCH_MAIN("e5")
