// A1 — ablations of coop's own design choices (DESIGN.md §7 / README
// design notes).  Not a paper experiment: these sweeps justify the
// defaults the other benches run with.
//
//   1. Reliable-multicast retransmission timeout vs the path RTT: a
//      timeout below the RTT re-sends every datagram while its ack is in
//      flight (traffic amplification ~2x for zero latency benefit).
//   2. Awareness digest period: the freshness-vs-load dial — longer
//      periods coalesce more (fewer deliveries) at the price of staler
//      peripheral awareness.
//   3. Media sink prebuffer: a longer jitter buffer absorbs arrival
//      variance (fewer playout underruns modelled as late-vs-position
//      frames) at the price of added start-up latency.
#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <vector>

#include "core/coop.hpp"

using namespace coop;

namespace {

// --- 1. retransmission timeout vs RTT ---------------------------------------

void BM_RetransmitTimeout(benchmark::State& state) {
  const auto timeout = sim::msec(state.range(0));
  double msgs_per_update = 0, deliver_ms = 0, retransmits = 0;
  for (auto _ : state) {
    Platform platform(61);
    auto& sim = platform.simulator();
    auto& net = platform.network();
    net.set_default_link(net::LinkModel::wan());  // RTT ~80 ms

    const std::vector<net::Address> members = {{1, 10}, {2, 10}, {3, 10}};
    groups::ChannelConfig config{.ordering = groups::Ordering::kFifo,
                                 .retransmit_timeout = timeout,
                                 .max_retransmits = 30,
                                 .local_echo = true};
    std::vector<std::unique_ptr<groups::GroupChannel>> chans;
    for (const auto& a : members)
      chans.push_back(
          std::make_unique<groups::GroupChannel>(net, a, 3, config));
    util::Summary latency;
    for (auto& c : chans) {
      c->set_members(members);
      c->on_deliver([&](const groups::Delivery& d) {
        latency.add(static_cast<double>(sim.now() - d.sent_at));
      });
    }
    const int kUpdates = 100;
    for (int i = 0; i < kUpdates; ++i) {
      sim.schedule_at(i * sim::msec(50), [&chans, i] {
        chans[0]->broadcast("u" + std::to_string(i));
      });
    }
    sim.run();
    msgs_per_update = static_cast<double>(net.stats().sent) / kUpdates;
    deliver_ms = latency.mean() / 1000.0;
    retransmits = static_cast<double>(chans[0]->stats().retransmits);
  }
  state.counters["timeout_ms"] = static_cast<double>(state.range(0));
  state.counters["msgs_per_update"] = msgs_per_update;
  state.counters["deliver_ms_mean"] = deliver_ms;
  state.counters["retransmits"] = retransmits;
}

// --- 2. awareness digest period ----------------------------------------------

void BM_DigestPeriod(benchmark::State& state) {
  const auto period = sim::sec(state.range(0));
  double deliveries = 0, p95_s = 0, coalesced = 0;
  for (auto _ : state) {
    Platform platform(62);
    auto& sim = platform.simulator();
    awareness::SpatialModel space;
    space.place(1, {0, 0});
    space.place(2, {8, 0});  // peripheral distance
    awareness::AwarenessEngine engine(sim, space,
                                      {.full_threshold = 0.4,
                                       .digest_period = period,
                                       .interest_decay = sim::sec(60)});
    util::Summary delay;
    engine.subscribe(2, [&](const awareness::ActivityEvent& e, double,
                            bool) {
      delay.add(static_cast<double>(sim.now() - e.at));
    });
    // 200 activity events with exponential gaps, mean 10 s.
    sim::TimePoint when = 0;
    for (int i = 0; i < 200; ++i) {
      when += static_cast<sim::Duration>(sim.rng().exponential(10e6));
      sim.schedule_at(when, [&engine, &sim] {
        engine.publish({1, "workspace", "edits", sim.now()});
      });
    }
    sim.run_until(when + 2 * period);
    deliveries = static_cast<double>(delay.count());
    p95_s = delay.p95() / 1e6;
    coalesced = static_cast<double>(engine.stats().coalesced);
  }
  state.counters["digest_s"] = static_cast<double>(state.range(0));
  state.counters["deliveries"] = deliveries;
  state.counters["staleness_s_p95"] = p95_s;
  state.counters["coalesced"] = coalesced;
}

// --- 3. media sink prebuffer ---------------------------------------------------

void BM_Prebuffer(benchmark::State& state) {
  const auto prebuffer = sim::msec(state.range(0));
  double underruns = 0, startup_ms = 0;
  for (auto _ : state) {
    Platform platform(63);
    auto& sim = platform.simulator();
    auto& net = platform.network();
    net.set_default_link({.latency = sim::msec(40), .jitter = sim::msec(25),
                          .bandwidth_bps = 10e6, .loss = 0.0});
    streams::QosSpec video{.fps = 25, .frame_bytes = 4000,
                           .latency_bound = sim::msec(500),
                           .jitter_bound = sim::msec(100), .min_fps = 5};
    streams::MediaSource src(sim, 1, video);
    streams::StreamBinding binding(net, src, {1, 1}, net::Address{2, 1});
    streams::MediaSink sink(net, {2, 1}, prebuffer);
    // An underrun: a frame arrives after the playout clock has already
    // passed its presentation time (seq / fps into the stream).
    double late = 0;
    sink.on_frame([&](const streams::Frame& f, sim::Duration) {
      const auto present_at =
          static_cast<std::int64_t>(static_cast<double>(f.seq) * 1e6 / 25.0);
      const auto pos = sink.playout_position();
      if (pos >= 0 && pos > present_at) late += 1;
    });
    src.start();
    sim.run_until(sim::sec(20));
    underruns = late;
    startup_ms = sim::to_ms(prebuffer);
  }
  state.counters["prebuffer_ms"] = static_cast<double>(state.range(0));
  state.counters["underruns"] = underruns;
  state.counters["startup_delay_ms"] = startup_ms;
}

BENCHMARK(BM_RetransmitTimeout)
    ->Arg(20)->Arg(50)->Arg(100)->Arg(200)
    ->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_DigestPeriod)
    ->Arg(1)->Arg(5)->Arg(30)->Arg(120)
    ->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Prebuffer)
    ->Arg(0)->Arg(40)->Arg(120)->Arg(300)
    ->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace

#include "bench_harness.hpp"
COOP_BENCH_MAIN("a1")
