// E1 — Ellis's two real-time requirements (§4.2.1): response time and
// notification time, compared across five concurrency-control schemes on
// the same two-author editing workload over a WAN-ish network.
//
//   strict_lock   — exclusive server-side lock per edit (the transaction
//                   wall): response = RPC + queueing behind the peer.
//   tickle_lock   — same, but a fifth of holders wander off without
//                   releasing; tickling transfers idle holders' locks.
//   soft_lock     — advisory: response = one RPC; overlaps are flagged,
//                   never blocked.
//   floor_control — explicit-release floor passing (reservation).
//   ot            — operational transformation (GROVE): response is
//                   local (≈0); consistency restored by transformation.
//
// Notification time is uniform in mechanism (server push to the peer) so
// the schemes differ exactly where the paper says they do: response.
//
// Expected shape: ot ≈ 0 ms response; soft ≈ one RTT; strict/floor grow
// with contention; tickle beats strict when holders abandon locks.
#include <benchmark/benchmark.h>

#include <functional>
#include <memory>
#include <string>

#include "core/coop.hpp"

using namespace coop;

namespace {

constexpr int kEditsPerUser = 120;
constexpr sim::Duration kEditHold = sim::msec(400);
constexpr double kThinkMeanMs = 600.0;
constexpr double kAbandonProb = 0.2;  // forget to release (tickle's case)

struct Metrics {
  util::Summary response_us;
  util::Summary notify_us;
  double flagged_overlaps = 0;
};

// A document server owning a LockManager (or FloorControl), exported via
// async RPC; "write" pushes the update to the other user (notification).
class LockedDocServer {
 public:
  LockedDocServer(Platform& p, ccontrol::LockStyle style)
      : net_(p.network()),
        server_(p.network(), {100, 1}),
        locks_(p.simulator(),
               {.style = style, .tickle_idle_timeout = sim::sec(2)}) {
    server_.register_async_method(
        "acquire",
        [this](const std::string& body,
               std::function<void(rpc::HandlerResult)> reply) {
          util::Reader r(body);
          const auto client = r.get<ccontrol::ClientId>();
          locks_.acquire("doc", client, ccontrol::LockMode::kExclusive,
                         [reply = std::move(reply)](
                             const ccontrol::LockGrant& g) {
                           util::Writer w;
                           w.put(g.granted).put(
                               static_cast<std::uint32_t>(
                                   g.conflicts.size()));
                           reply(rpc::HandlerResult::success(w.take()));
                         });
        });
    server_.register_method("release", [this](const std::string& body) {
      util::Reader r(body);
      const auto client = r.get<ccontrol::ClientId>();
      locks_.release("doc", client);
      return rpc::HandlerResult::success("");
    });
    server_.register_method("write", [this](const std::string& body) {
      util::Reader r(body);
      const auto author = r.get<ccontrol::ClientId>();
      const auto stamped = r.get<sim::TimePoint>();
      // Push the change to the other author (notification path).
      util::Writer w;
      w.put(author).put(stamped);
      const net::Address peer =
          author == 1 ? net::Address{2, 2} : net::Address{1, 2};
      net_.send({.src = {100, 1}, .dst = peer, .payload = w.take()});
      return rpc::HandlerResult::success("");
    });
  }

  [[nodiscard]] net::Address address() const { return server_.address(); }

 private:
  net::Network& net_;
  rpc::RpcServer server_;
  ccontrol::LockManager locks_;
};

// Receives change pushes and records notification time.
class NotifySink : public net::Endpoint {
 public:
  NotifySink(net::Network& net, net::Address self, Metrics& m)
      : net_(net), m_(m) {
    net_.attach(self, *this);
  }
  void on_message(const net::Message& msg) override {
    util::Reader r(msg.payload);
    r.get<ccontrol::ClientId>();
    const auto stamped = r.get<sim::TimePoint>();
    if (!r.failed())
      m_.notify_us.add(static_cast<double>(net_.simulator().now() - stamped));
  }

 private:
  net::Network& net_;
  Metrics& m_;
};

Metrics run_lock_scheme(ccontrol::LockStyle style, bool abandons) {
  Platform platform(55);
  auto& sim = platform.simulator();
  auto& net = platform.network();
  net.set_default_link(net::LinkModel::wan());

  Metrics m;
  LockedDocServer server(platform, style);
  NotifySink sink1(net, {1, 2}, m);
  NotifySink sink2(net, {2, 2}, m);
  rpc::RpcClient rpc1(net, {1, 1});
  rpc::RpcClient rpc2(net, {2, 1});

  std::function<void(int, int)> edit = [&](int user, int remaining) {
    if (remaining == 0) return;
    auto& rpc = user == 1 ? rpc1 : rpc2;
    const auto id = static_cast<ccontrol::ClientId>(user);
    const sim::TimePoint wanted = sim.now();
    util::Writer w;
    w.put(id);
    rpc.call(
        server.address(), "acquire", w.take(),
        [&, user, remaining, wanted, id](const rpc::RpcResult& res) {
          if (!res.ok()) {  // datagram loss etc.: retry the whole edit
            sim.schedule_after(sim::sec(1),
                               [&, user, remaining] { edit(user, remaining); });
            return;
          }
          m.response_us.add(static_cast<double>(sim.now() - wanted));
          util::Reader r(res.reply);
          r.get<bool>();
          m.flagged_overlaps += r.get<std::uint32_t>();
          // Edit for a while, publish, then (usually) release.
          sim.schedule_after(kEditHold, [&, user, remaining, id] {
            util::Writer ww;
            ww.put(id).put(sim.now());
            auto& rr = user == 1 ? rpc1 : rpc2;
            rr.call(server.address(), "write", ww.take(),
                    [](const rpc::RpcResult&) {},
                    {.timeout = sim::msec(500), .retries = 6, .backoff = 1.5});
            // Abandoners wander off for 10 s still holding the lock and
            // resume (release, then think, then edit) when they return;
            // strict waiters pay the whole absence, tickle transfers the
            // lock after the 2 s idle timeout.
            const bool abandon = abandons && sim.rng().bernoulli(kAbandonProb);
            const sim::Duration away = abandon ? sim::sec(10) : 0;
            sim.schedule_after(away, [&, user, remaining, id] {
              auto& r2 = user == 1 ? rpc1 : rpc2;
              util::Writer rw;
              rw.put(id);
              r2.call(server.address(), "release", rw.take(),
                      [](const rpc::RpcResult&) {},
                      {.timeout = sim::msec(500), .retries = 6,
                       .backoff = 1.5});
              sim.schedule_after(
                  static_cast<sim::Duration>(
                      sim.rng().exponential(kThinkMeanMs) * 1000),
                  [&, user, remaining] { edit(user, remaining - 1); });
            });
          });
        },
        {.timeout = sim::sec(3), .retries = 12, .backoff = 1.3});
  };
  edit(1, kEditsPerUser);
  edit(2, kEditsPerUser);
  sim.run_until(sim::minutes(60));
  return m;
}

Metrics run_floor_scheme() {
  Platform platform(55);
  auto& sim = platform.simulator();
  auto& net = platform.network();
  net.set_default_link(net::LinkModel::wan());

  Metrics m;
  NotifySink sink1(net, {1, 2}, m);
  NotifySink sink2(net, {2, 2}, m);
  // Floor control lives at the conference server; requests ride RPC.
  ccontrol::FloorControl floor(
      sim, {.policy = ccontrol::FloorPolicy::kExplicitRelease});
  rpc::RpcServer server(net, {100, 1});
  server.register_async_method(
      "floor", [&](const std::string& body,
                   std::function<void(rpc::HandlerResult)> reply) {
        util::Reader r(body);
        const auto client = r.get<ccontrol::ClientId>();
        floor.request(client, [reply = std::move(reply)](bool ok) {
          util::Writer w;
          w.put(ok);
          reply(rpc::HandlerResult::success(w.take()));
        });
      });
  server.register_method("release", [&](const std::string& body) {
    util::Reader r(body);
    floor.release(r.get<ccontrol::ClientId>());
    return rpc::HandlerResult::success("");
  });
  server.register_method("write", [&](const std::string& body) {
    util::Reader r(body);
    const auto author = r.get<ccontrol::ClientId>();
    const auto stamped = r.get<sim::TimePoint>();
    util::Writer w;
    w.put(author).put(stamped);
    const net::Address peer =
        author == 1 ? net::Address{2, 2} : net::Address{1, 2};
    net.send({.src = {100, 1}, .dst = peer, .payload = w.take()});
    return rpc::HandlerResult::success("");
  });
  rpc::RpcClient rpc1(net, {1, 1});
  rpc::RpcClient rpc2(net, {2, 1});

  std::function<void(int, int)> edit = [&](int user, int remaining) {
    if (remaining == 0) return;
    auto& rpc = user == 1 ? rpc1 : rpc2;
    const auto id = static_cast<ccontrol::ClientId>(user);
    const sim::TimePoint wanted = sim.now();
    util::Writer w;
    w.put(id);
    rpc.call(
        net::Address{100, 1}, "floor", w.take(),
        [&, user, remaining, wanted, id](const rpc::RpcResult& res) {
          if (!res.ok()) {
            sim.schedule_after(sim::sec(1),
                               [&, user, remaining] { edit(user, remaining); });
            return;
          }
          m.response_us.add(static_cast<double>(sim.now() - wanted));
          sim.schedule_after(kEditHold, [&, user, remaining, id] {
            auto& rr = user == 1 ? rpc1 : rpc2;
            util::Writer ww;
            ww.put(id).put(sim.now());
            rr.call(net::Address{100, 1}, "write", ww.take(),
                    [](const rpc::RpcResult&) {},
                    {.timeout = sim::msec(500), .retries = 6, .backoff = 1.5});
            util::Writer rw;
            rw.put(id);
            rr.call(net::Address{100, 1}, "release", rw.take(),
                    [](const rpc::RpcResult&) {},
                    {.timeout = sim::msec(500), .retries = 6, .backoff = 1.5});
            sim.schedule_after(
                static_cast<sim::Duration>(
                    sim.rng().exponential(kThinkMeanMs) * 1000),
                [&, user, remaining] { edit(user, remaining - 1); });
          });
        },
        {.timeout = sim::sec(3), .retries = 12, .backoff = 1.3});
  };
  edit(1, kEditsPerUser);
  edit(2, kEditsPerUser);
  sim.run_until(sim::minutes(60));
  return m;
}

Metrics run_ot_scheme() {
  Platform platform(55);
  auto& sim = platform.simulator();
  auto& net = platform.network();
  net.set_default_link(net::LinkModel::wan());

  Metrics m;
  groupware::EditorServer server(net, {100, 1}, std::string(400, 'x'));
  groupware::EditorClient u1(net, {1, 1}, {100, 1}, 1,
                             std::string(400, 'x'));
  groupware::EditorClient u2(net, {2, 1}, {100, 1}, 2,
                             std::string(400, 'x'));
  u1.connect();
  u2.connect();

  std::function<void(int, int)> edit = [&](int user, int remaining) {
    if (remaining == 0) return;
    auto& client = user == 1 ? u1 : u2;
    const sim::TimePoint wanted = sim.now();
    const auto pos = static_cast<std::size_t>(sim.rng().uniform_int(
        0, static_cast<std::int64_t>(client.doc().size())));
    client.insert(pos, "y");  // applies immediately
    m.response_us.add(static_cast<double>(sim.now() - wanted));  // == 0
    sim.schedule_after(
        static_cast<sim::Duration>(sim.rng().exponential(kThinkMeanMs) *
                                   1000) +
            kEditHold,
        [&, user, remaining] { edit(user, remaining - 1); });
  };
  sim.schedule_at(sim::msec(500), [&] {  // after join snapshots land
    edit(1, kEditsPerUser);
    edit(2, kEditsPerUser);
  });
  sim.run_until(sim::minutes(60));
  m.notify_us = u1.notification_time();
  for (double s : u2.notification_time().samples()) m.notify_us.add(s);
  return m;
}

void report(benchmark::State& state, const Metrics& m) {
  state.counters["response_ms_mean"] = m.response_us.mean() / 1000.0;
  state.counters["response_ms_p95"] = m.response_us.p95() / 1000.0;
  state.counters["notify_ms_mean"] = m.notify_us.mean() / 1000.0;
  state.counters["edits"] = static_cast<double>(m.response_us.count());
  state.counters["overlaps_flagged"] = m.flagged_overlaps;
}

void BM_StrictLock(benchmark::State& state) {
  Metrics m;
  for (auto _ : state)
    m = run_lock_scheme(ccontrol::LockStyle::kStrict, /*abandons=*/true);
  report(state, m);
}
void BM_TickleLock(benchmark::State& state) {
  Metrics m;
  for (auto _ : state)
    m = run_lock_scheme(ccontrol::LockStyle::kTickle, /*abandons=*/true);
  report(state, m);
}
void BM_SoftLock(benchmark::State& state) {
  Metrics m;
  for (auto _ : state)
    m = run_lock_scheme(ccontrol::LockStyle::kSoft, /*abandons=*/false);
  report(state, m);
}
void BM_FloorControl(benchmark::State& state) {
  Metrics m;
  for (auto _ : state) m = run_floor_scheme();
  report(state, m);
}
void BM_OperationalTransformation(benchmark::State& state) {
  Metrics m;
  for (auto _ : state) m = run_ot_scheme();
  report(state, m);
}

BENCHMARK(BM_StrictLock)->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_TickleLock)->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SoftLock)->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_FloorControl)->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_OperationalTransformation)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

#include "bench_harness.hpp"
COOP_BENCH_MAIN("e1")
