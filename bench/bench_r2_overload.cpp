// R2 — overload sweep: goodput under saturation with the overload control
// plane disabled vs. enabled (§4.2.2 graceful degradation).
//
// One serial RPC server (1 ms service time => 1000 ops/s capacity) takes
// three open-loop arrival streams for two virtual seconds: core ops at
// 250/s, control ops at 150/s, and background (awareness) traffic at
// m x 500/s for a load multiplier m in {1,2,3,4}.  At m=1 the server has
// headroom; at m=4 the offered load is 2.4x capacity.
//
//   disabled — unbounded run queue, no deadlines honoured anywhere, no
//              budgets/breakers: the classic metastable shape.  Queue
//              delay grows without bound and core goodput (acks within
//              the 100 ms deadline budget) collapses as m rises.
//   enabled  — bounded queue with priority watermarks (background shed
//              first, control second), deadlines propagated in message
//              headers and honoured on dequeue, retry budgets + circuit
//              breakers on every client: background is refused at the
//              door, and core goodput stays flat across the sweep.
//
// Every run feeds a fault::Invariants collector (at-most-once per call,
// and the new no-acked-shed check: no op that only ever got pushback was
// reported successful) and the binary exits non-zero if any run violates
// one.  A representative enabled run traces into the ambient Obs so
// BENCH_r2_overload.json carries critical-path buckets (queue/link/
// service/retry).  Same seed => byte-identical artifacts modulo wall_ms.
#include <benchmark/benchmark.h>

#include <array>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/coop.hpp"

using namespace coop;

namespace {

constexpr sim::Duration kServiceTime = sim::msec(1);   // => 1000 ops/s
constexpr sim::Duration kDeadlineBudget = sim::msec(100);
constexpr sim::Duration kTrafficWindow = sim::sec(2);
constexpr sim::Duration kDrainWindow = sim::sec(6);
constexpr sim::Duration kCorePeriod = sim::usec(4000);     // 250/s
constexpr sim::Duration kControlPeriod = sim::usec(6667);  // ~150/s
constexpr sim::Duration kBackgroundBase = sim::usec(2000); // 500/s per m

std::uint64_t g_total_violations = 0;

struct ClassStats {
  std::uint64_t offered = 0;
  std::uint64_t goodput = 0;  ///< acked within the deadline budget
  std::uint64_t rejected = 0;
  std::uint64_t timeouts = 0;
};

struct RunOutcome {
  std::array<ClassStats, net::kPriorityCount> cls;
  std::uint64_t shed_background = 0;
  std::uint64_t shed_control = 0;
  std::uint64_t shed_core = 0;
  std::uint64_t expired_drops = 0;
  std::uint64_t retries_denied = 0;
  std::size_t final_queue_depth = 0;
  std::vector<std::string> violations;
  util::Summary core_rtt_us;
};

/// One full offered-load run.  @p use_ambient routes traces/metrics into
/// the bench harness Obs (for the artifact's critical-path buckets)
/// instead of a throwaway per-run sink.
RunOutcome run_overload(bool enabled, int multiplier, std::uint64_t seed,
                        bool use_ambient) {
  obs::Obs local;
  Platform platform(seed, use_ambient ? nullptr : &local);
  auto& sim = platform.simulator();
  auto& net = platform.network();
  // Clean fast LAN: every shed is answered, every deadline miss is the
  // queue's fault, not the wire's — the collapse is pure overload.
  net.set_default_link({.latency = sim::msec(1), .jitter = 0,
                        .bandwidth_bps = 100e6, .loss = 0.0});

  fault::Invariants inv;
  rpc::RpcServer server(net, {1, 1});
  server.set_processing_time(kServiceTime);
  if (enabled) {
    server.set_admission({.queue_capacity = 64, .control_watermark = 44,
                          .background_watermark = 24, .drop_expired = true});
  } else {
    // The metastable baseline: still a serial worker (capacity is the
    // same), but the queue is effectively unbounded global FIFO, nothing
    // sheds, and expired work is serviced anyway.
    server.set_admission({.queue_capacity = 1u << 20,
                          .control_watermark = 1u << 20,
                          .background_watermark = 1u << 20,
                          .drop_expired = false,
                          .priority_dequeue = false});
  }
  server.register_method("op", [&inv](const std::string& req) {
    inv.record_execution(req);
    return rpc::HandlerResult::success("");
  });

  const rpc::ClientOverloadConfig guards =
      enabled ? rpc::ClientOverloadConfig{
                    .budget = {.enabled = true, .ratio = 0.1,
                               .initial = 10.0, .cap = 100.0},
                    .breaker = {.enabled = true, .failure_threshold = 5,
                                .open_duration = sim::msec(200)}}
              : rpc::ClientOverloadConfig{};
  // One client per traffic class (distinct nodes, so each class has its
  // own budget/breaker toward the server, as separate apps would).
  std::array<std::unique_ptr<rpc::RpcClient>, 3> clients;
  for (std::size_t i = 0; i < 3; ++i) {
    clients[i] = std::make_unique<rpc::RpcClient>(
        net, net::Address{static_cast<net::NodeId>(10 + i), 1}, guards);
  }

  RunOutcome out;
  std::uint64_t next_op = 0;

  const auto issue = [&](net::Priority prio) {
    const auto pi = static_cast<std::size_t>(prio);
    const std::uint64_t op_id = next_op++;
    const std::string op =
        std::string(net::priority_name(prio)) + ":" + std::to_string(op_id);
    ++out.cls[pi].offered;
    rpc::CallOptions opts;
    opts.timeout = sim::msec(50);
    opts.retries = 3;
    opts.backoff = enabled ? 2.0 : 1.0;  // disabled: aggressive retries
    opts.backoff_jitter = 0.1;
    opts.priority = prio;
    if (enabled) opts.deadline = sim.now() + kDeadlineBudget;
    const sim::TimePoint issued = sim.now();
    clients[pi]->call(
        {1, 1}, "op", op,
        [&out, &inv, &sim, pi, op, issued](const rpc::RpcResult& r) {
          if (r.ok()) {
            inv.record_acknowledged(op);
            const sim::Duration latency = sim.now() - issued;
            if (latency <= kDeadlineBudget) ++out.cls[pi].goodput;
            if (pi == 0)
              out.core_rtt_us.add(static_cast<double>(latency));
          } else if (r.status == rpc::Status::kRejected) {
            ++out.cls[pi].rejected;
            inv.record_shed(op);
          } else {
            ++out.cls[pi].timeouts;
          }
        },
        opts);
  };

  // Open-loop arrivals with fixed phase offsets (no lock-step between
  // classes); everything below is a pure function of (enabled, m, seed).
  for (sim::TimePoint t = 0; t < kTrafficWindow; t += kCorePeriod) {
    sim.schedule_at(t, [&] { issue(net::Priority::kCore); });
  }
  for (sim::TimePoint t = sim::usec(1300); t < kTrafficWindow;
       t += kControlPeriod) {
    sim.schedule_at(t, [&] { issue(net::Priority::kControl); });
  }
  const auto bg_period = kBackgroundBase / multiplier;
  for (sim::TimePoint t = sim::usec(700); t < kTrafficWindow;
       t += bg_period) {
    sim.schedule_at(t, [&] { issue(net::Priority::kBackground); });
  }

  sim.run_until(kDrainWindow);

  inv.check_at_most_once();
  inv.check_no_acked_shed();
  out.violations = inv.violations();
  out.shed_background = server.shed(net::Priority::kBackground);
  out.shed_control = server.shed(net::Priority::kControl);
  out.shed_core = server.shed(net::Priority::kCore);
  out.expired_drops = server.expired_drops();
  out.final_queue_depth = server.queue_depth();
  for (const auto& c : clients) out.retries_denied += c->retries_denied();
  return out;
}

void BM_OverloadSweep(benchmark::State& state) {
  const bool enabled = state.range(0) != 0;
  const int multiplier = static_cast<int>(state.range(1));
  const auto seed = static_cast<std::uint64_t>(state.range(2));
  // Trace one representative saturated enabled run into the ambient Obs
  // so the artifact's critical-path buckets show where admitted core ops
  // spend their latency (runq wait vs. link vs. service vs. retry).
  const bool use_ambient = enabled && multiplier == 4 && seed == 1;
  RunOutcome out;
  for (auto _ : state)
    out = run_overload(enabled, multiplier, seed, use_ambient);

  obs::Obs& ambient = *obs::default_obs();
  const std::string key = std::string("r2.") +
                          (enabled ? "enabled" : "disabled") + ".x" +
                          std::to_string(multiplier) + ".";
  const char* cls_name[] = {"core", "control", "background"};
  for (std::size_t pi = 0; pi < net::kPriorityCount; ++pi) {
    ambient.metrics.counter(key + cls_name[pi] + "_offered")
        .inc(out.cls[pi].offered);
    ambient.metrics.counter(key + cls_name[pi] + "_goodput")
        .inc(out.cls[pi].goodput);
    ambient.metrics.counter(key + cls_name[pi] + "_rejected")
        .inc(out.cls[pi].rejected);
    ambient.metrics.counter(key + cls_name[pi] + "_timeouts")
        .inc(out.cls[pi].timeouts);
  }
  ambient.metrics.counter(key + "shed_background").inc(out.shed_background);
  ambient.metrics.counter(key + "shed_control").inc(out.shed_control);
  ambient.metrics.counter(key + "shed_core").inc(out.shed_core);
  ambient.metrics.counter(key + "expired_drops").inc(out.expired_drops);
  ambient.metrics.counter(key + "retries_denied").inc(out.retries_denied);
  auto& rtt = ambient.metrics.summary(key + "core_rtt_us");
  // Re-add the run's core latencies so the artifact has percentiles per
  // (mode, multiplier) cell across all seeds.
  for (double v : out.core_rtt_us.samples()) rtt.add(v);

  if (!out.violations.empty()) {
    ambient.metrics.counter("r2.invariant_violations")
        .inc(out.violations.size());
    g_total_violations += out.violations.size();
    for (const std::string& v : out.violations) {
      std::fprintf(stderr, "[%s x%d seed %llu] INVARIANT VIOLATION: %s\n",
                   enabled ? "enabled" : "disabled", multiplier,
                   static_cast<unsigned long long>(seed), v.c_str());
    }
  }

  const auto& core = out.cls[0];
  state.counters["core_goodput"] = static_cast<double>(core.goodput);
  state.counters["core_offered"] = static_cast<double>(core.offered);
  state.counters["bg_shed"] = static_cast<double>(out.shed_background);
  state.counters["expired"] = static_cast<double>(out.expired_drops);
  state.counters["violations"] =
      static_cast<double>(out.violations.size());
  state.SetLabel(std::string(enabled ? "enabled" : "disabled") + "/x" +
                 std::to_string(multiplier));
}

BENCHMARK(BM_OverloadSweep)
    ->ArgsProduct({{0, 1},
                   {1, 2, 3, 4},
                   benchmark::CreateDenseRange(1, 10, 1)})
    ->Iterations(1);

}  // namespace

// COOP_BENCH_MAIN with two additions: a non-zero exit code when any run
// violated an invariant (so CI fails on the soak itself, not on a diff),
// and an SLO watchdog over the representative traced run — with
// COOP_SLO_STRICT set, an overspent objective also fails the soak.
int main(int argc, char** argv) {
  coop::obs::Obs obs;
  coop::obs::ScopedDefaultObs ambient(&obs);
  obs.meta.knobs["tag"] = "r2_overload";
  obs.meta.knobs["trace_cap"] = std::to_string(obs.tracer.capacity());
  if (const char* cap = std::getenv("COOP_TRACE_CAP"))
    obs.meta.knobs["COOP_TRACE_CAP"] = cap;
  // Objectives for the representative enabled x4 run (the only one that
  // feeds the ambient timeseries).  Bounds skip warm-up and the drain
  // tail, where a goodput floor would fire on intentional silence.
  obs.slo.add_rule({.name = "core_rtt_p99",
                    .series = "rpc.latency_us",
                    .kind = obs::SloRule::Kind::kP99Ceiling,
                    .threshold = 120000.0,  // 120 ms, vs the 100 ms budget
                    .trip_windows = 2,
                    .recover_windows = 2,
                    .active_until = kTrafficWindow,
                    .allowed_breach_windows = 2});
  obs.slo.add_rule({.name = "goodput_floor",
                    .series = "rpc.ok",
                    .kind = obs::SloRule::Kind::kRateFloor,
                    .threshold = 100.0,  // acks/sec; core alone offers 250/s
                    .trip_windows = 2,
                    .recover_windows = 1,
                    .active_from = sim::msec(200),
                    .active_until = kTrafficWindow - sim::msec(200),
                    .allowed_breach_windows = 1});
  obs.slo.add_rule({.name = "net_drop_ceiling",
                    .series = "net.dropped",
                    .kind = obs::SloRule::Kind::kRateCeiling,
                    .threshold = 50.0,  // clean LAN: the wire drops nothing
                    .allowed_breach_windows = 0});
  // Pressure indicator, not a pass/fail gate: sustained shedding above
  // 500/s marks the overload plateau.  At x4 the plateau is ~1400/s for
  // the whole 2 s traffic window, so this rule trips at the first window
  // and recovers when arrivals stop — the health trajectory in the
  // artifact shows the overload as a (breach, recover) transition pair.
  // The budget covers the plateau; what must hold is ending healthy.
  obs.slo.add_rule({.name = "shed_pressure",
                    .series = "rpc.shed",
                    .kind = obs::SloRule::Kind::kRateCeiling,
                    .threshold = 500.0,
                    .allowed_breach_windows = 25});
  {
    std::string args;
    for (int i = 1; i < argc; ++i) {
      if (i > 1) args += ' ';
      args += argv[i];
    }
    if (!args.empty()) obs.meta.knobs["argv"] = args;
  }
  const auto wall_start = std::chrono::steady_clock::now();
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  obs.meta.wall_ms = std::chrono::duration<double, std::milli>(
                         std::chrono::steady_clock::now() - wall_start)
                         .count();
  if (!coop::obs::write_bench_artifacts(obs, "r2_overload")) {
    std::fprintf(stderr, "warning: failed to write BENCH_r2_overload.*\n");
  }
  if (g_total_violations > 0) {
    std::fprintf(stderr,
                 "overload soak FAILED: %llu invariant violation(s)\n",
                 static_cast<unsigned long long>(g_total_violations));
    return 2;
  }
  // write_bench_artifacts() sealed the tail window, so the watchdog has
  // seen every window.  Report always; fail only in strict mode.
  if (obs.slo.violations() > 0) {
    for (const std::string& msg : obs.slo.violation_messages())
      std::fprintf(stderr, "SLO VIOLATION: %s\n", msg.c_str());
    if (std::getenv("COOP_SLO_STRICT") != nullptr) {
      std::fprintf(stderr, "overload soak FAILED: %zu SLO violation(s)\n",
                   obs.slo.violations());
      return 3;
    }
  }
  return 0;
}
