// T1 — wall-clock throughput of the hot message path.
//
// Every other bench in this suite reports *virtual-time* quality metrics
// (latencies, miss rates, fairness).  T1 measures the one thing those hide:
// how many kernel events and simulated datagrams the platform pushes
// through per wall-clock second.  That number caps experiment scale — E12
// tops out near 10k participants not because the model breaks but because
// the host runs out of patience — so it is tracked as a first-class,
// regression-guarded metric (scripts/bench_t1_gate.sh).
//
// Three drivers, shaped after the experiments that stress each hot path:
//
//   group     (E8 shape)  — reliable FIFO multicast storm: fan-out copies,
//                           ack implosion, retransmit timers.
//   rpc       (R2 shape)  — unicast request/response against a serial,
//                           admission-controlled server: the steady-state
//                           two-datagram round trip.
//   awareness (E12 shape) — thousands of tiny timer events (heartbeats,
//                           digest flushes) around an indexed awareness
//                           engine: pure kernel scheduling pressure.
//   sharded   (E13 shape)  — the sharded parallel kernel driving a
//                           space-time-matrix tick/message workload across
//                           8 shards with conservative lookahead; its hash
//                           pins the cross-shard merge order.
//
// Each driver is a pure function of its seed in virtual time: it folds an
// FNV-1a hash over its delivery sequence and final counters.  The hashes
// land in the BENCH artifact knobs, so the artifact diff (and the recorded
// baseline in bench/baselines/) catches any change to simulated behaviour;
// only the wall-clock figures may move.  A fixed CPU-bound calibration loop
// is timed alongside the drivers so the regression gate can compare
// machine-normalized throughput rather than raw events/sec.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "awareness/engine.hpp"
#include "awareness/spatial.hpp"
#include "core/coop.hpp"

using namespace coop;

namespace {

// --- outcome bookkeeping ---------------------------------------------------

struct Outcome {
  std::uint64_t hash = 1469598103934665603ULL;  ///< FNV-1a offset basis
  std::uint64_t kernel_events = 0;   ///< sim events executed by the driver
  std::uint64_t messages = 0;        ///< datagrams transmitted
  std::uint64_t deliveries = 0;      ///< application-level deliveries
  std::int64_t sim_span_us = 0;      ///< virtual time the driver covered
  double wall_s = 0;                 ///< wall-clock seconds (nondeterministic)
};

void fnv_mix(std::uint64_t& h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xffULL;
    h *= 1099511628211ULL;
  }
}

char hex_digit(std::uint64_t v) {
  return static_cast<char>(v < 10 ? '0' + v : 'a' + (v - 10));
}

std::string hex64(std::uint64_t v) {
  std::string s(16, '0');
  for (int i = 15; i >= 0; --i, v >>= 4)
    s[static_cast<std::size_t>(i)] = hex_digit(v & 0xf);
  return s;
}

struct DriverReport {
  const char* name = nullptr;
  Outcome out;
};

DriverReport g_reports[4];
double g_calib_mhps = 0;  ///< calibration: FNV MB hashed per wall second

// --- drivers ---------------------------------------------------------------

/// E8 shape: a 16-member reliable FIFO group, every member broadcasting in
/// lockstep rounds.  Each broadcast fans out to 15 copies, each delivery
/// acks back — the multicast payload-sharing path and the retransmit
/// machinery under full load.
Outcome run_group_storm(std::uint64_t seed) {
  constexpr int kMembers = 16;
  constexpr int kRounds = 400;
  Platform p(seed);
  sim::Simulator& sim = p.simulator();

  std::vector<net::Address> addrs;
  for (int i = 0; i < kMembers; ++i)
    addrs.push_back({static_cast<net::NodeId>(i + 1), 9});

  groups::ChannelConfig cfg;
  cfg.ordering = groups::Ordering::kFifo;
  Outcome out;
  std::vector<std::unique_ptr<groups::GroupChannel>> chans;
  for (int i = 0; i < kMembers; ++i) {
    chans.push_back(std::make_unique<groups::GroupChannel>(
        p.network(), addrs[static_cast<std::size_t>(i)], /*group=*/77, cfg));
    chans.back()->on_deliver([&out, &sim, i](const groups::Delivery& d) {
      ++out.deliveries;
      fnv_mix(out.hash, static_cast<std::uint64_t>(i));
      fnv_mix(out.hash, static_cast<std::uint64_t>(d.sender));
      fnv_mix(out.hash, d.seq);
      fnv_mix(out.hash, static_cast<std::uint64_t>(sim.now()));
      fnv_mix(out.hash, net::frame_checksum(d.payload));
    });
  }
  for (auto& ch : chans) ch->set_members(addrs);

  // The ambient registry aggregates across drivers in this process, so
  // message totals are deltas from here.
  const std::uint64_t sent0 = p.network().stats().sent;
  for (int r = 0; r < kRounds; ++r) {
    sim.schedule_at(sim::msec(2) * r, [&chans, r] {
      for (std::size_t m = 0; m < chans.size(); ++m) {
        chans[m]->broadcast("update/" + std::to_string(r) + "/" +
                            std::to_string(m) + "/payload-body-64-bytes");
      }
    });
  }

  const auto t0 = std::chrono::steady_clock::now();
  sim.run();
  out.wall_s = std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - t0)
                   .count();
  out.kernel_events = sim.events_processed();
  out.messages = p.network().stats().sent - sent0;
  out.sim_span_us = sim.now();
  for (const auto& ch : chans) {
    fnv_mix(out.hash, ch->stats().delivered);
    fnv_mix(out.hash, ch->stats().retransmits);
  }
  fnv_mix(out.hash, p.network().stats().delivered);
  fnv_mix(out.hash, static_cast<std::uint64_t>(sim.now()));
  fnv_mix(out.hash, out.kernel_events);
  return out;
}

/// R2 shape: eight clients hammering one serial, admission-controlled
/// server with small echo calls — the steady-state unicast round trip
/// (request out, reply back, timers armed and cancelled per call).
Outcome run_rpc_storm(std::uint64_t seed) {
  constexpr int kClients = 8;
  constexpr int kCallsPerClient = 2000;
  Platform p(seed);
  sim::Simulator& sim = p.simulator();

  rpc::RpcServer server(p.network(), {1, 1});
  server.set_processing_time(sim::usec(50));
  server.set_admission(rpc::AdmissionConfig{});
  server.register_method("echo", [](const std::string& b) {
    return rpc::HandlerResult::success(b);
  });

  Outcome out;
  const std::uint64_t sent0 = p.network().stats().sent;
  std::vector<std::unique_ptr<rpc::RpcClient>> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.push_back(std::make_unique<rpc::RpcClient>(
        p.network(),
        net::Address{static_cast<net::NodeId>(c + 2), 7}));
  }
  for (int c = 0; c < kClients; ++c) {
    rpc::RpcClient* cl = clients[static_cast<std::size_t>(c)].get();
    for (int k = 0; k < kCallsPerClient; ++k) {
      sim.schedule_at(sim::usec(500) * k + sim::usec(60) * c,
                      [cl, &out, &sim, c, k] {
                        cl->call({1, 1}, "echo",
                                 "req/" + std::to_string(c) + "/" +
                                     std::to_string(k),
                                 [&out, &sim](const rpc::RpcResult& r) {
                                   ++out.deliveries;
                                   fnv_mix(out.hash,
                                           static_cast<std::uint64_t>(
                                               r.status));
                                   fnv_mix(out.hash,
                                           static_cast<std::uint64_t>(
                                               sim.now()));
                                   fnv_mix(out.hash,
                                           static_cast<std::uint64_t>(r.rtt));
                                 });
                      });
    }
  }

  const auto t0 = std::chrono::steady_clock::now();
  sim.run();
  out.wall_s = std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - t0)
                   .count();
  out.kernel_events = sim.events_processed();
  out.messages = p.network().stats().sent - sent0;
  out.sim_span_us = sim.now();
  fnv_mix(out.hash, server.requests_handled());
  fnv_mix(out.hash, server.shed_total());
  fnv_mix(out.hash, p.network().stats().delivered);
  fnv_mix(out.hash, static_cast<std::uint64_t>(sim.now()));
  fnv_mix(out.hash, out.kernel_events);
  return out;
}

/// E12 shape: an indexed awareness engine under a publish storm, plus one
/// 2 ms heartbeat timer per participant — more than a million tiny kernel
/// events whose callbacks do almost nothing, isolating the cost of
/// scheduling itself (callable storage, live-set upkeep, queue churn).
Outcome run_awareness_churn(std::uint64_t seed) {
  constexpr int kParticipants = 2000;
  constexpr int kPublishes = 6000;
  sim::Simulator sim(seed);
  awareness::SpatialModel space;
  awareness::EngineConfig cfg;
  cfg.digest_period = sim::msec(50);
  awareness::AwarenessEngine engine(sim, space, cfg, obs::default_obs());

  Outcome out;
  const double world = 450.0;
  sim::Rng place_rng(seed * 1000003ULL);
  for (awareness::ClientId id = 1; id <= kParticipants; ++id) {
    space.place(id, {place_rng.uniform(0, world), place_rng.uniform(0, world)});
    space.set_focus(id, 12.0);
    space.set_nimbus(id, 12.0);
    engine.subscribe(id, [&out, &sim, id](const awareness::ActivityEvent& e,
                                          double w, bool digest) {
      ++out.deliveries;
      fnv_mix(out.hash, static_cast<std::uint64_t>(id));
      fnv_mix(out.hash, static_cast<std::uint64_t>(sim.now()));
      fnv_mix(out.hash, static_cast<std::uint64_t>(e.actor));
      std::uint64_t bits;
      std::memcpy(&bits, &w, sizeof(bits));
      fnv_mix(out.hash, bits);
      fnv_mix(out.hash, digest ? 1 : 0);
    });
  }

  // Heartbeats: the kernel-pressure component.  Each tick folds its id
  // into the hash so cross-timer ordering is part of the contract.
  std::vector<std::unique_ptr<sim::PeriodicTimer>> beats;
  for (int i = 0; i < kParticipants; ++i) {
    beats.push_back(std::make_unique<sim::PeriodicTimer>(
        sim, sim::msec(2), [&out, i] {
          fnv_mix(out.hash, static_cast<std::uint64_t>(i) * 2654435761ULL);
        }));
    beats.back()->start(sim::usec(i));
  }

  constexpr int kHotObjects = kParticipants / 8;
  for (int n = 0; n < kPublishes; ++n) {
    sim.schedule_at(sim::usec(250) * n, [&engine, &space, &sim, n] {
      sim::Rng& rng = sim.rng();
      const auto actor = static_cast<awareness::ClientId>(
          rng.uniform_int(1, kParticipants));
      if (auto at = space.position(actor)) {
        space.place(actor, {at->x + rng.uniform(-5, 5),
                            at->y + rng.uniform(-5, 5)});
      }
      engine.publish({actor,
                      "doc/" + std::to_string(rng.uniform_int(
                                   0, kHotObjects - 1)),
                      "edit", sim.now()});
      (void)n;
    });
  }
  const sim::TimePoint horizon = sim::usec(250) * kPublishes + sim::msec(100);

  const auto t0 = std::chrono::steady_clock::now();
  // run_until, not run(): the engine's digest flush timer re-arms forever,
  // so the awareness world never quiesces on its own.
  sim.run_until(horizon);
  for (auto& b : beats) b->stop();
  sim.run_until(horizon + sim::msec(200));
  out.wall_s = std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - t0)
                   .count();
  out.kernel_events = sim.events_processed();
  out.messages = 0;
  out.sim_span_us = sim.now();
  fnv_mix(out.hash, engine.stats().published);
  fnv_mix(out.hash, out.deliveries);
  fnv_mix(out.hash, static_cast<std::uint64_t>(sim.now()));
  fnv_mix(out.hash, out.kernel_events);
  return out;
}

/// E13 shape: the sharded parallel kernel under a space-time-matrix
/// workload — participants in rooms, each ticking and sending one
/// intra-room (same-shard) and one cross-room (cross-shard, WAN-latency)
/// datagram per tick.  All stochastic choices draw from per-participant
/// rngs, so the outcome hash is a pure function of the seed and pins the
/// deterministic cross-shard merge.  (bench_e13_million_users runs the
/// same shape at 10k-1M participants with a serial differential oracle;
/// this driver is the small, gate-tracked sentinel.)
Outcome run_sharded_storm(std::uint64_t seed) {
  constexpr std::uint32_t kParticipants = 2048;
  constexpr std::uint32_t kRoom = 16;
  constexpr std::uint32_t kRooms = kParticipants / kRoom;
  constexpr std::uint32_t kShards = 8;
  const sim::Duration lookahead = sim::msec(32);
  const sim::TimePoint horizon = sim::sec(2);

  sim::ShardedConfig cfg;
  cfg.shards = kShards;
  cfg.lookahead = lookahead;
  cfg.seed = seed;
  sim::ShardedEngine eng(cfg);

  struct P {
    sim::Rng rng{0};
    std::uint64_t acc = 0;
    std::uint64_t msg_seq = 0;
  };
  struct World {
    std::vector<P> ps;
    sim::ShardedEngine* eng = nullptr;
    Outcome* out = nullptr;
    static std::uint16_t shard_of(std::uint32_t p) {
      return static_cast<std::uint16_t>((p / kRoom) * kShards / kRooms);
    }
    void tick(std::uint32_t p, sim::TimePoint t) {
      P& me = ps[p];
      me.acc = me.acc * 6364136223846793005ULL + me.rng.next();
      const std::uint32_t room = p / kRoom;
      const std::uint32_t partner =
          ((room + kRooms / 2) % kRooms) * kRoom + p % kRoom;
      const std::uint32_t neighbour = room * kRoom + (p + 1) % kRoom;
      const auto rd = static_cast<sim::Duration>(
          static_cast<std::uint64_t>(sim::msec(32)) + me.rng.next() % 8000);
      const std::uint64_t rpay = me.rng.next();
      const auto ld = static_cast<sim::Duration>(
          static_cast<std::uint64_t>(sim::usec(300)) + me.rng.next() % 100);
      const std::uint64_t lpay = me.rng.next();
      eng->send({t + rd, p, partner, shard_of(p), shard_of(partner),
                 static_cast<std::uint32_t>(me.msg_seq++), rpay});
      eng->send({t + ld, p, neighbour, shard_of(p), shard_of(neighbour),
                 static_cast<std::uint32_t>(me.msg_seq++), lpay});
      const sim::TimePoint next = t + sim::msec(room % 2 == 0 ? 20 : 100);
      World* w = this;
      eng->schedule_at(shard_of(p), next, [w, p, next] { w->tick(p, next); });
    }
  };

  Outcome out;
  World world;
  world.ps.resize(kParticipants);
  world.eng = &eng;
  world.out = &out;
  for (std::uint32_t p = 0; p < kParticipants; ++p)
    world.ps[p].rng = sim::Rng(seed ^ (0x9e3779b97f4a7c15ULL * (p + 1)));
  eng.set_msg_handler(
      [](void* ctx, const sim::ShardMsg& m) {
        auto* w = static_cast<World*>(ctx);
        ++w->out->deliveries;
        fnv_mix(w->out->hash, static_cast<std::uint64_t>(m.dst));
        fnv_mix(w->out->hash, static_cast<std::uint64_t>(m.at));
        fnv_mix(w->out->hash, m.payload);
      },
      &world);
  for (std::uint32_t p = 0; p < kParticipants; ++p) {
    const sim::TimePoint first =
        sim::msec(1) + sim::usec((p % 97) * 11);
    World* w = &world;
    eng.schedule_at(World::shard_of(p), first,
                    [w, p, first] { w->tick(p, first); });
  }

  const auto t0 = std::chrono::steady_clock::now();
  eng.run_until(horizon);
  out.wall_s = std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - t0)
                   .count();
  out.kernel_events = eng.events_processed();
  out.messages = eng.cross_shard_messages();
  out.sim_span_us = eng.now();
  for (const P& p : world.ps) fnv_mix(out.hash, p.acc);
  fnv_mix(out.hash, eng.epochs() != 0 ? 1 : 0);
  fnv_mix(out.hash, eng.lookahead_violations());
  fnv_mix(out.hash, out.kernel_events);
  return out;
}

/// Fixed CPU-bound work (FNV over 64 MiB), timed: a machine-speed score so
/// the regression gate compares events/sec *per unit of host speed* and a
/// slower CI box does not read as a platform regression.
double run_calibration() {
  std::vector<std::uint8_t> buf(1 << 20);
  for (std::size_t i = 0; i < buf.size(); ++i)
    buf[i] = static_cast<std::uint8_t>(i * 131 + 7);
  const auto t0 = std::chrono::steady_clock::now();
  std::uint64_t h = 1469598103934665603ULL;
  for (int pass = 0; pass < 64; ++pass) {
    for (const std::uint8_t b : buf) {
      h ^= b;
      h *= 1099511628211ULL;
    }
  }
  const double secs = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
  benchmark::DoNotOptimize(h);
  return 64.0 / secs;  // MiB hashed per second
}

// --- registration ----------------------------------------------------------

void report(benchmark::State& state, const Outcome& out) {
  state.counters["events_per_sec"] =
      static_cast<double>(out.kernel_events) / out.wall_s;
  state.counters["messages_per_sec"] =
      static_cast<double>(out.messages) / out.wall_s;
  state.counters["deliveries"] = static_cast<double>(out.deliveries);
  state.counters["kernel_events"] = static_cast<double>(out.kernel_events);
}

void BM_T1_Group(benchmark::State& state) {
  Outcome out;
  for (auto _ : state) out = run_group_storm(/*seed=*/101);
  g_reports[0] = {"group", out};
  report(state, out);
}

void BM_T1_Rpc(benchmark::State& state) {
  Outcome out;
  for (auto _ : state) out = run_rpc_storm(/*seed=*/102);
  g_reports[1] = {"rpc", out};
  report(state, out);
}

void BM_T1_Awareness(benchmark::State& state) {
  Outcome out;
  for (auto _ : state) out = run_awareness_churn(/*seed=*/103);
  g_reports[2] = {"awareness", out};
  report(state, out);
}

void BM_T1_Sharded(benchmark::State& state) {
  Outcome out;
  for (auto _ : state) out = run_sharded_storm(/*seed=*/104);
  g_reports[3] = {"sharded", out};
  report(state, out);
}

BENCHMARK(BM_T1_Group)->Iterations(1);
BENCHMARK(BM_T1_Rpc)->Iterations(1);
BENCHMARK(BM_T1_Awareness)->Iterations(1);
BENCHMARK(BM_T1_Sharded)->Iterations(1);

/// Machine-readable report for scripts/bench_t1_gate.sh.  Wall-clock
/// figures are nondeterministic by nature, so they live here rather than
/// in the BENCH artifact (which must stay byte-stable modulo wall_ms).
bool write_t1_report(const char* path) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) return false;
  std::fprintf(f, "{\n  \"calibration_mbps\": %.1f,\n", g_calib_mhps);
  std::fprintf(f, "  \"drivers\": {\n");
  for (int i = 0; i < 4; ++i) {
    const DriverReport& r = g_reports[i];
    const double eps = static_cast<double>(r.out.kernel_events) / r.out.wall_s;
    const double mps = static_cast<double>(r.out.messages) / r.out.wall_s;
    std::fprintf(f,
                 "    \"%s\": {\"hash\": \"%s\", \"kernel_events\": %llu, "
                 "\"messages\": %llu, \"deliveries\": %llu, "
                 "\"sim_span_us\": %lld, \"wall_s\": %.6f, "
                 "\"events_per_sec\": %.0f, \"messages_per_sec\": %.0f, "
                 "\"events_per_sec_normalized\": %.3f}%s\n",
                 r.name, hex64(r.out.hash).c_str(),
                 static_cast<unsigned long long>(r.out.kernel_events),
                 static_cast<unsigned long long>(r.out.messages),
                 static_cast<unsigned long long>(r.out.deliveries),
                 static_cast<long long>(r.out.sim_span_us), r.out.wall_s, eps,
                 mps, eps / g_calib_mhps, i + 1 < 4 ? "," : "");
  }
  std::fprintf(f, "  }\n}\n");
  std::fclose(f);
  return true;
}

}  // namespace

// COOP_BENCH_MAIN with two additions: the calibration loop, and the
// T1_report.json dump the regression gate consumes.  The deterministic
// outcome hashes are also copied into the artifact knobs so the recorded
// artifact baseline pins simulated behaviour.
int main(int argc, char** argv) {
  coop::obs::Obs obs;
  coop::obs::ScopedDefaultObs ambient(&obs);
  obs.meta.knobs["tag"] = "t1_throughput";
  obs.meta.knobs["trace_cap"] = std::to_string(obs.tracer.capacity());
  if (const char* cap = std::getenv("COOP_TRACE_CAP"))
    obs.meta.knobs["COOP_TRACE_CAP"] = cap;
  {
    std::string args;
    for (int i = 1; i < argc; ++i) {
      if (i > 1) args += ' ';
      args += argv[i];
    }
    if (!args.empty()) obs.meta.knobs["argv"] = args;
  }
  const auto wall_start = std::chrono::steady_clock::now();
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  g_calib_mhps = run_calibration();
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  obs.meta.wall_ms = std::chrono::duration<double, std::milli>(
                         std::chrono::steady_clock::now() - wall_start)
                         .count();
  for (const auto& r : g_reports) {
    if (r.name != nullptr)
      obs.meta.knobs[std::string("t1.") + r.name + ".hash"] =
          hex64(r.out.hash);
  }
  if (!coop::obs::write_bench_artifacts(obs, "t1_throughput")) {
    std::fprintf(stderr, "warning: failed to write BENCH_t1_throughput.*\n");
  }
  if (!write_t1_report("T1_report.json")) {
    std::fprintf(stderr, "warning: failed to write T1_report.json\n");
    return 2;
  }
  return 0;
}
