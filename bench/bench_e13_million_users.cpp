// E13 — a million participants across the space-time matrix: the sharded
// parallel kernel versus the serial differential oracle.
//
// The paper frames CSCW systems along the space-time matrix — co-located
// vs remote, synchronous vs asynchronous (PAPER.md) — and argues ODP
// platforms must scale to organization-wide populations.  E12 stopped
// near 10^4 participants because one event heap serializes everything;
// E13 is the scale experiment that the sharded kernel (sim/shard.hpp)
// exists for.
//
// Scenario: N participants in rooms of 16.  Rooms alternate matrix
// quadrants: even rooms are synchronous (20 ms interaction cadence),
// odd rooms asynchronous (100 ms).  Every tick a participant sends one
// co-located datagram to a room neighbour (LAN delay, same shard — rooms
// never straddle shards) and one remote datagram to its counterpart in
// the opposite room (WAN delay, cross-shard), then re-arms.  A rare
// payload residue makes the receiver cancel its pending tick —
// exercising cancellation through the epoch machinery at scale.
//
// Every stochastic choice draws from a per-participant rng owned by the
// scenario, and all state is commutative under same-timestamp
// cross-participant interleaving — the only ordering freedom either
// kernel has.  Both kernels therefore produce the same outcome hash,
// delivery count and kernel-event count; every cell — including the 1M
// one — checks this in-binary, and main() exits non-zero on any
// mismatch.  The per-cell horizons shrink as N grows so the serial
// oracle stays affordable even at a million participants.
//
// A seed x topology parity matrix (including a zero-lookahead topology,
// which forces barrier-synchronized epochs) runs at small N across shard
// counts — the same guarantee scripts/shard_parity_gate.sh re-checks
// under sanitizers in CI.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "obs/obs.hpp"
#include "sim/shard.hpp"
#include "sim/simulator.hpp"

using namespace coop;

namespace {

int g_parity_failures = 0;

void fnv_mix(std::uint64_t& h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xffULL;
    h *= 1099511628211ULL;
  }
}

char hex_digit(std::uint64_t v) {
  return static_cast<char>(v < 10 ? '0' + v : 'a' + (v - 10));
}

std::string hex64(std::uint64_t v) {
  std::string s(16, '0');
  for (int i = 15; i >= 0; --i, v >>= 4)
    s[static_cast<std::size_t>(i)] = hex_digit(v & 0xf);
  return s;
}

void knob(const std::string& key, const std::string& value) {
  if (obs::Obs* o = obs::default_obs()) o->meta.knobs[key] = value;
}

// --- the kernel-independent scenario ----------------------------------------

struct Topology {
  sim::Duration min_latency;    // cross-room floor = engine lookahead
  sim::Duration local_jitter;   // co-located extra delay range
  sim::Duration remote_jitter;  // remote extra delay range
};

// WAN quadrant boundary: LinkModel::wan().min_latency() = 40ms - 8ms.
const Topology kWanTopology{sim::msec(32), sim::usec(100), sim::msec(8)};
// Jitter-only links: zero lookahead, barrier-synchronized epochs.
const Topology kZeroLookahead{0, sim::usec(100), sim::usec(300)};

constexpr std::uint32_t kRoom = 16;

struct Participant {
  sim::Rng rng{0};
  std::uint64_t acc = 0;
  std::uint64_t sum = 0;
  std::uint64_t xr = 0;
  std::uint64_t deliveries = 0;
  std::uint64_t arrival_sum = 0;
  std::uint64_t msg_seq = 0;
  sim::TimePoint next_tick = 0;
  std::uint64_t tick_handle = 0;
};

/// Adapter concept: schedule(p, when, fn)->handle, cancel(p, handle),
/// send(src, dst, at, payload, seq).  Tick timestamps stay even and
/// delivery arrivals odd so the cancel decision never depends on
/// same-timestamp ordering (the freedom the kernels exercise differently).
template <typename Adapter>
class SpaceTimeScenario {
 public:
  SpaceTimeScenario(std::uint32_t participants, std::uint64_t seed,
                    Topology topo, Adapter& a)
      : topo_(topo), adapter_(a), ps_(participants) {
    for (std::size_t p = 0; p < ps_.size(); ++p)
      ps_[p].rng = sim::Rng(seed ^ (0x9e3779b97f4a7c15ULL * (p + 1)));
  }

  void start() {
    for (std::uint32_t p = 0; p < ps_.size(); ++p)
      arm_tick(p, cadence(p) + sim::usec((p % 97) * 22));
  }

  void on_delivery(std::uint32_t dst, sim::TimePoint at,
                   std::uint64_t payload) {
    Participant& q = ps_[dst];
    q.sum += payload;
    q.xr ^= payload * 0x2545f4914f6cdd1dULL;
    ++q.deliveries;
    q.arrival_sum += static_cast<std::uint64_t>(at);
    if (payload % 8191 == 0 && q.next_tick > at) {
      adapter_.cancel(dst, q.tick_handle);
      q.next_tick = 0;  // this participant's chain ends here
    }
  }

  [[nodiscard]] std::uint64_t outcome_hash() const {
    std::uint64_t h = 1469598103934665603ULL;
    for (const Participant& p : ps_) {
      fnv_mix(h, p.acc);
      fnv_mix(h, p.sum);
      fnv_mix(h, p.xr);
      fnv_mix(h, p.deliveries);
      fnv_mix(h, p.arrival_sum);
    }
    return h;
  }

  [[nodiscard]] std::uint64_t total_deliveries() const {
    std::uint64_t n = 0;
    for (const Participant& p : ps_) n += p.deliveries;
    return n;
  }

 private:
  [[nodiscard]] sim::Duration cadence(std::uint32_t p) const {
    // Synchronous rooms interact at 20 ms, asynchronous at 100 ms.
    return (p / kRoom) % 2 == 0 ? sim::msec(20) : sim::msec(100);
  }

  void arm_tick(std::uint32_t p, sim::TimePoint when) {
    ps_[p].next_tick = when;
    ps_[p].tick_handle = adapter_.schedule(p, when, [this, p] { tick(p); });
  }

  void tick(std::uint32_t p) {
    Participant& me = ps_[p];
    const sim::TimePoint t = me.next_tick;
    me.acc = me.acc * 6364136223846793005ULL + me.rng.next();

    const std::uint32_t nrooms = static_cast<std::uint32_t>(ps_.size()) / kRoom;
    const std::uint32_t room = p / kRoom;
    const std::uint32_t partner =
        ((room + nrooms / 2) % nrooms) * kRoom + p % kRoom;
    const std::uint32_t neighbour = room * kRoom + (p + 1) % kRoom;

    const auto rj = static_cast<std::uint64_t>(topo_.remote_jitter);
    const auto lj = static_cast<std::uint64_t>(topo_.local_jitter);
    const auto rd = topo_.min_latency +
                    static_cast<sim::Duration>(me.rng.next() % (rj + 1) | 1);
    const std::uint64_t rpay = me.rng.next();
    const auto ld =
        static_cast<sim::Duration>(me.rng.next() % (lj + 1) | 1);
    const std::uint64_t lpay = me.rng.next();
    adapter_.send(p, partner, t + rd, rpay, me.msg_seq++);
    adapter_.send(p, neighbour, t + ld, lpay, me.msg_seq++);

    arm_tick(p, t + cadence(p));
  }

  Topology topo_;
  Adapter& adapter_;
  std::vector<Participant> ps_;
};

class SerialAdapter {
 public:
  explicit SerialAdapter(sim::Simulator& sim) : sim_(sim) {}

  template <typename F>
  std::uint64_t schedule(std::uint32_t, sim::TimePoint when, F&& fn) {
    return sim_.schedule_at(when, std::forward<F>(fn));
  }
  void cancel(std::uint32_t, std::uint64_t handle) { sim_.cancel(handle); }
  void send(std::uint32_t, std::uint32_t dst, sim::TimePoint at,
            std::uint64_t payload, std::uint64_t) {
    auto* self = this;
    sim_.schedule_at(at, [self, dst, at, payload] {
      self->deliver_(self->ctx_, dst, at, payload);
    });
  }

  void (*deliver_)(void*, std::uint32_t, sim::TimePoint,
                   std::uint64_t) = nullptr;
  void* ctx_ = nullptr;

 private:
  sim::Simulator& sim_;
};

class ShardedAdapter {
 public:
  ShardedAdapter(sim::ShardedEngine& eng, std::uint32_t participants)
      : eng_(eng), nrooms_(participants / kRoom) {}

  [[nodiscard]] std::uint16_t shard_of(std::uint32_t p) const {
    // Block assignment: contiguous room ranges, rooms never straddle.
    return static_cast<std::uint16_t>(
        static_cast<std::uint64_t>(p / kRoom) * eng_.shards() / nrooms_);
  }

  template <typename F>
  std::uint64_t schedule(std::uint32_t p, sim::TimePoint when, F&& fn) {
    return eng_.schedule_at(shard_of(p), when, std::forward<F>(fn));
  }
  void cancel(std::uint32_t p, std::uint64_t handle) {
    eng_.cancel(shard_of(p), handle);
  }
  void send(std::uint32_t src, std::uint32_t dst, sim::TimePoint at,
            std::uint64_t payload, std::uint64_t seq) {
    eng_.send(sim::ShardMsg{at, src, dst, shard_of(src), shard_of(dst),
                            static_cast<std::uint32_t>(seq), payload});
  }

 private:
  sim::ShardedEngine& eng_;
  std::uint32_t nrooms_;
};

struct CellResult {
  std::uint64_t hash = 0;
  std::uint64_t deliveries = 0;
  std::uint64_t events = 0;
  double wall_s = 0;
};

CellResult run_serial(std::uint32_t participants, std::uint64_t seed,
                      Topology topo, sim::TimePoint horizon) {
  sim::Simulator sim;
  SerialAdapter adapter(sim);
  SpaceTimeScenario<SerialAdapter> scen(participants, seed, topo, adapter);
  adapter.ctx_ = &scen;
  adapter.deliver_ = [](void* ctx, std::uint32_t dst, sim::TimePoint at,
                        std::uint64_t payload) {
    static_cast<SpaceTimeScenario<SerialAdapter>*>(ctx)->on_delivery(
        dst, at, payload);
  };
  scen.start();
  const auto t0 = std::chrono::steady_clock::now();
  sim.run_until(horizon);
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return {scen.outcome_hash(), scen.total_deliveries(), sim.events_processed(),
          wall};
}

CellResult run_sharded(std::uint32_t participants, std::uint64_t seed,
                       Topology topo, sim::TimePoint horizon,
                       std::uint32_t shards, std::uint32_t threads = 1) {
  sim::ShardedConfig cfg;
  cfg.shards = shards;
  cfg.threads = threads;
  cfg.lookahead = topo.min_latency;
  cfg.seed = seed;
  sim::ShardedEngine eng(cfg);
  ShardedAdapter adapter(eng, participants);
  SpaceTimeScenario<ShardedAdapter> scen(participants, seed, topo, adapter);
  struct Ctx {
    SpaceTimeScenario<ShardedAdapter>* scen;
  } ctx{&scen};
  eng.set_msg_handler(
      [](void* c, const sim::ShardMsg& m) {
        static_cast<Ctx*>(c)->scen->on_delivery(m.dst, m.at, m.payload);
      },
      &ctx);
  scen.start();
  const auto t0 = std::chrono::steady_clock::now();
  eng.run_until(horizon);
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  if (eng.lookahead_violations() != 0) {
    std::fprintf(stderr, "E13: %llu lookahead violations (N=%u)\n",
                 static_cast<unsigned long long>(eng.lookahead_violations()),
                 participants);
    ++g_parity_failures;
  }
  return {scen.outcome_hash(), scen.total_deliveries(), eng.events_processed(),
          wall};
}

void check_parity(const char* what, const CellResult& serial,
                  const CellResult& sharded) {
  if (serial.hash != sharded.hash || serial.deliveries != sharded.deliveries ||
      serial.events != sharded.events) {
    std::fprintf(stderr,
                 "E13 PARITY FAILURE [%s]: serial {hash %s, deliveries %llu, "
                 "events %llu} vs sharded {hash %s, deliveries %llu, "
                 "events %llu}\n",
                 what, hex64(serial.hash).c_str(),
                 static_cast<unsigned long long>(serial.deliveries),
                 static_cast<unsigned long long>(serial.events),
                 hex64(sharded.hash).c_str(),
                 static_cast<unsigned long long>(sharded.deliveries),
                 static_cast<unsigned long long>(sharded.events));
    ++g_parity_failures;
  }
}

// --- benchmark cells --------------------------------------------------------

/// One space-time cell: serial oracle and sharded kernel over the same
/// seed and horizon, parity-checked, both rates reported.  Horizons
/// shrink as N grows so each cell stays within a CI-friendly budget
/// while still covering multiple cadence periods of both quadrants.
void BM_E13_SpaceTime(benchmark::State& state) {
  const auto participants = static_cast<std::uint32_t>(state.range(0));
  const sim::TimePoint horizon = participants >= 1'000'000  ? sim::msec(250)
                                 : participants >= 100'000 ? sim::msec(500)
                                                           : sim::sec(2);
  constexpr std::uint64_t kSeed = 1301;
  constexpr std::uint32_t kShards = 8;

  CellResult serial, sharded;
  for (auto _ : state) {
    serial = run_serial(participants, kSeed, kWanTopology, horizon);
    sharded =
        run_sharded(participants, kSeed, kWanTopology, horizon, kShards);
  }
  const std::string tag = "N=" + std::to_string(participants);
  check_parity(tag.c_str(), serial, sharded);

  const std::string prefix = "e13." + std::to_string(participants);
  knob(prefix + ".sharded.hash", hex64(sharded.hash));
  knob(prefix + ".serial.hash", hex64(serial.hash));
  knob(prefix + ".events", std::to_string(sharded.events));

  state.counters["participants"] = static_cast<double>(participants);
  state.counters["sharded_events_per_sec"] =
      static_cast<double>(sharded.events) / sharded.wall_s;
  state.counters["serial_events_per_sec"] =
      static_cast<double>(serial.events) / serial.wall_s;
  state.counters["speedup"] = serial.wall_s / sharded.wall_s;
  state.counters["deliveries"] = static_cast<double>(sharded.deliveries);
}

/// The full parity seed matrix at small N: seeds x topologies x shard
/// counts (including shards=1 and the zero-lookahead barrier mode), each
/// cell checked against the serial oracle.
void BM_E13_ParityMatrix(benchmark::State& state) {
  constexpr std::uint32_t kParticipants = 512;  // 32 rooms
  const sim::TimePoint horizon = sim::msec(600);
  std::uint64_t cells = 0;
  for (auto _ : state) {
    for (const std::uint64_t seed : {11ULL, 12ULL, 13ULL}) {
      int topo_idx = 0;
      for (const Topology& topo : {kWanTopology, kZeroLookahead}) {
        const CellResult serial =
            run_serial(kParticipants, seed, topo, horizon);
        for (const std::uint32_t shards : {1u, 2u, 4u, 8u}) {
          const CellResult sharded =
              run_sharded(kParticipants, seed, topo, horizon, shards);
          const std::string tag = "seed=" + std::to_string(seed) +
                                  " topo=" + std::to_string(topo_idx) +
                                  " shards=" + std::to_string(shards);
          check_parity(tag.c_str(), serial, sharded);
          ++cells;
        }
        ++topo_idx;
      }
    }
  }
  knob("e13.parity_cells", std::to_string(cells));
  knob("e13.parity_failures", std::to_string(g_parity_failures));
  state.counters["cells"] = static_cast<double>(cells);
  state.counters["failures"] = static_cast<double>(g_parity_failures);
}

BENCHMARK(BM_E13_ParityMatrix)->Iterations(1);
BENCHMARK(BM_E13_SpaceTime)
    ->Arg(10'000)
    ->Arg(100'000)
    ->Arg(1'000'000)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

// COOP_BENCH_MAIN plus the in-binary parity verdict: any oracle mismatch
// fails the binary (and with it the shard-parity CI job), not just a
// counter in the artifact.
int main(int argc, char** argv) {
  coop::obs::Obs obs;
  coop::obs::ScopedDefaultObs ambient(&obs);
  obs.meta.knobs["tag"] = "e13_million_users";
  obs.meta.knobs["trace_cap"] = std::to_string(obs.tracer.capacity());
  if (const char* cap = std::getenv("COOP_TRACE_CAP"))
    obs.meta.knobs["COOP_TRACE_CAP"] = cap;
  {
    std::string args;
    for (int i = 1; i < argc; ++i) {
      if (i > 1) args += ' ';
      args += argv[i];
    }
    if (!args.empty()) obs.meta.knobs["argv"] = args;
  }
  const auto wall_start = std::chrono::steady_clock::now();
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  obs.meta.wall_ms = std::chrono::duration<double, std::milli>(
                         std::chrono::steady_clock::now() - wall_start)
                         .count();
  obs.meta.knobs["e13.parity_failures"] = std::to_string(g_parity_failures);
  if (!coop::obs::write_bench_artifacts(obs, "e13_million_users")) {
    std::fprintf(stderr, "warning: failed to write BENCH_e13_million_users.*\n");
  }
  if (g_parity_failures != 0) {
    std::fprintf(stderr, "E13: %d parity failure(s) — sharded kernel diverged "
                 "from the serial oracle\n", g_parity_failures);
    return 3;
  }
  return 0;
}
