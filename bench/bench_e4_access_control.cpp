// E4 — access control (§4.2.1 Security): the classic mechanisms vs the
// dynamic fine-grained role-based scheme.
//
// Two measurements:
//
//   1. Check cost (real CPU time — these are genuine micro-benchmarks):
//      ACL and matrix checks vs role-policy checks as the rule base grows
//      (sweep over rule counts).  This quantifies the "potential added
//      complexity" the paper worries about.
//
//   2. Policy-change latency (virtual time): how long until a rights
//      change takes effect —
//        admin ACL edit (instant, single administrator),
//        negotiated change with prompt voters,
//        negotiated change decided by the voting-window deadline.
//
// Expected shape: role checks cost more than ACL checks and grow with
// rule count (the price of expressiveness); negotiated changes trade
// seconds of latency for multi-party consent.
#include <benchmark/benchmark.h>

#include <string>

#include "core/coop.hpp"

using namespace coop;

namespace {

access::RolePolicy build_policy(int n_rules) {
  access::RolePolicy policy;
  policy.define_role("reader");
  policy.define_role("commenter", "reader");
  policy.define_role("editor", "commenter");
  for (int i = 0; i < n_rules; ++i) {
    const std::string object = "doc" + std::to_string(i % 16);
    const access::Region region{static_cast<std::size_t>(i) * 10,
                                static_cast<std::size_t>(i) * 10 + 100};
    switch (i % 3) {
      case 0:
        policy.grant_role("reader", object, access::kRead, region);
        break;
      case 1:
        policy.grant_role("editor", object, access::kWrite, region);
        break;
      default:
        policy.deny_role("commenter", object, access::kWrite, region);
        break;
    }
  }
  policy.assign(1, "editor");
  return policy;
}

void BM_AclCheck(benchmark::State& state) {
  access::AccessControlList acl;
  const auto n = static_cast<int>(state.range(0));
  for (int i = 0; i < n; ++i)
    acl.grant("doc" + std::to_string(i % 16),
              static_cast<access::ClientId>(i % 8 + 1),
              access::kRead | access::kWrite);
  std::size_t hits = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        hits += acl.check(1, "doc3", access::kWrite) ? 1 : 0);
  }
  state.counters["entries"] = static_cast<double>(n);
}

void BM_MatrixCheck(benchmark::State& state) {
  access::AccessMatrix matrix;
  const auto n = static_cast<int>(state.range(0));
  for (int i = 0; i < n; ++i)
    matrix.add(static_cast<access::ClientId>(i % 8 + 1),
               "doc" + std::to_string(i % 16), access::kRead);
  std::size_t hits = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        hits += matrix.check(1, "doc3", access::kRead) ? 1 : 0);
  }
  state.counters["entries"] = static_cast<double>(n);
}

void BM_RolePolicyCheck(benchmark::State& state) {
  const auto policy = build_policy(static_cast<int>(state.range(0)));
  std::size_t hits = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        hits += policy.check(1, "doc3", access::kWrite, 350) ? 1 : 0);
  }
  state.counters["rules"] = static_cast<double>(state.range(0));
}

// --- policy-change propagation latency (virtual time) ---------------------

void BM_ChangeLatency_AdminAcl(benchmark::State& state) {
  double latency_ms = 0;
  for (auto _ : state) {
    Platform platform(7);
    access::AccessControlList acl;
    const auto before = platform.simulator().now();
    acl.grant("doc", 3, access::kWrite);  // single administrator, instant
    latency_ms = sim::to_ms(platform.simulator().now() - before);
  }
  state.counters["change_latency_ms"] = latency_ms;
  state.counters["parties_consulted"] = 0;
}

void BM_ChangeLatency_NegotiatedPromptVotes(benchmark::State& state) {
  double latency_ms = 0;
  for (auto _ : state) {
    Platform platform(7);
    auto& sim = platform.simulator();
    access::RolePolicy policy;
    policy.define_role("editor");
    access::RightsNegotiator negotiator(
        sim, policy,
        {.policy = access::VotePolicy::kMajority,
         .voting_window = sim::sec(30)});
    negotiator.set_approvers({1, 2, 3});
    const auto start = sim.now();
    sim::TimePoint decided = 0;
    const auto id = negotiator.propose(
        3,
        {.kind = access::ProposedChange::Kind::kAssignRole,
         .role = "editor",
         .client = 3,
         .object = {},
         .region = {},
         .rights = 0},
        [&](bool) { decided = sim.now(); });
    // Approvers read the ballot and respond after human-scale delays.
    sim.schedule_after(sim::sec(2), [&] { negotiator.vote(id, 1, true); });
    sim.schedule_after(sim::sec(5), [&] { negotiator.vote(id, 2, true); });
    sim.run();
    latency_ms = sim::to_ms(decided - start);
  }
  state.counters["change_latency_ms"] = latency_ms;
  state.counters["parties_consulted"] = 3;
}

void BM_ChangeLatency_NegotiatedDeadline(benchmark::State& state) {
  double latency_ms = 0;
  for (auto _ : state) {
    Platform platform(7);
    auto& sim = platform.simulator();
    access::RolePolicy policy;
    policy.define_role("editor");
    access::RightsNegotiator negotiator(
        sim, policy,
        {.policy = access::VotePolicy::kMajority,
         .voting_window = sim::sec(30)});
    negotiator.set_approvers({1, 2, 3});
    const auto start = sim.now();
    sim::TimePoint decided = 0;
    const auto id = negotiator.propose(
        3,
        {.kind = access::ProposedChange::Kind::kAssignRole,
         .role = "editor",
         .client = 3,
         .object = {},
         .region = {},
         .rights = 0},
        [&](bool) { decided = sim.now(); });
    sim.schedule_after(sim::sec(2), [&] { negotiator.vote(id, 1, true); });
    // The other approvers never answer: the window decides.
    sim.run();
    latency_ms = sim::to_ms(decided - start);
  }
  state.counters["change_latency_ms"] = latency_ms;
  state.counters["parties_consulted"] = 3;
}

BENCHMARK(BM_AclCheck)->Arg(8)->Arg(64)->Arg(512);
BENCHMARK(BM_MatrixCheck)->Arg(8)->Arg(64)->Arg(512);
BENCHMARK(BM_RolePolicyCheck)->Arg(8)->Arg(64)->Arg(512);
BENCHMARK(BM_ChangeLatency_AdminAcl)->Iterations(1);
BENCHMARK(BM_ChangeLatency_NegotiatedPromptVotes)->Iterations(1);
BENCHMARK(BM_ChangeLatency_NegotiatedDeadline)->Iterations(1);

}  // namespace

#include "bench_harness.hpp"
COOP_BENCH_MAIN("e4")
