// E9 — mobility (§3.3.3, §4.2.2): disconnected operation in numbers.
//
// Part 1: availability — fraction of a field worker's reads served while
// fully disconnected, as a function of how much of the working set was
// hoarded (sweep hoard fraction).  Working set: 100 job objects; reads
// zipf-skewed.
//
// Part 2: reintegration — cost of returning with an operation log of N
// entries: virtual time and wire bytes for one bulk RPC vs replaying the
// writes one RPC each over the same link (the "bulk updates" claim).
//
// Part 3: conflicts — fraction of reintegrated entries conflicting as a
// function of how much the office mutated the shared set meanwhile.
//
// Expected shape: availability tracks the hoard fraction (with zipf skew
// it beats the fraction itself); bulk reintegration beats per-op replay
// on both time and bytes, and the gap widens with log size; conflicts
// scale with office write rate.
#include <benchmark/benchmark.h>

#include <functional>
#include <string>
#include <vector>

#include "core/coop.hpp"

using namespace coop;

namespace {

constexpr int kObjects = 250;

std::vector<std::string> all_keys() {
  std::vector<std::string> keys;
  keys.reserve(kObjects);
  for (int i = 0; i < kObjects; ++i)
    keys.push_back("job/" + std::to_string(i));
  return keys;
}

void BM_Availability_vs_HoardFraction(benchmark::State& state) {
  const double fraction = static_cast<double>(state.range(0)) / 100.0;
  double availability = 0;
  for (auto _ : state) {
    Platform platform(41);
    auto& sim = platform.simulator();
    auto& net = platform.network();
    net.set_default_link(net::LinkModel::lan());
    mobile::ShareServer server(net, {100, 1});
    const auto keys = all_keys();
    for (const auto& k : keys) server.store().write(k, "content of " + k);

    mobile::MobileHost host(net, {1, 1}, {100, 1});
    // Hoard the hottest prefix (the worker knows today's jobs).
    std::vector<std::string> hoard(
        keys.begin(),
        keys.begin() + static_cast<long>(fraction * kObjects));
    if (!hoard.empty()) host.hoard(hoard, nullptr);
    sim.run();
    host.set_connectivity(net::Connectivity::kDisconnected);

    int served = 0;
    const int kReads = 1000;
    for (int i = 0; i < kReads; ++i) {
      const auto idx = sim.rng().zipf(kObjects, 1.1);
      host.read(keys[idx], [&](bool ok, auto) { served += ok ? 1 : 0; });
    }
    availability = static_cast<double>(served) / kReads;
  }
  state.counters["hoard_pct"] = static_cast<double>(state.range(0));
  state.counters["availability"] = availability;
}

void BM_Reintegration_Bulk(benchmark::State& state) {
  const auto log_size = static_cast<int>(state.range(0));
  double reintegration_ms = 0, wire_bytes = 0;
  for (auto _ : state) {
    Platform platform(43);
    auto& sim = platform.simulator();
    auto& net = platform.network();
    net.set_default_link(net::LinkModel::lan());  // hoard at the depot
    mobile::ShareServer server(net, {100, 1});
    const auto keys = all_keys();
    for (const auto& k : keys) server.store().write(k, "v0");
    mobile::MobileHost host(net, {1, 1}, {100, 1});
    host.set_call_options({.timeout = sim::sec(30), .retries = 4,
                           .backoff = 2.0});
    host.hoard(keys, nullptr);
    sim.run();
    host.set_connectivity(net::Connectivity::kDisconnected);
    for (int i = 0; i < log_size; ++i)
      host.write(keys[static_cast<std::size_t>(i)], "field edit",
                 [](bool) {});
    // The worker reconnects over packet radio (still in the field).
    net.set_default_link(net::LinkModel::radio());
    host.set_connectivity(net::Connectivity::kFull);
    const auto bytes_before = net.stats().bytes_sent;
    const auto t0 = sim.now();
    sim::TimePoint done_at = 0;
    host.reintegrate([&](std::size_t, const auto&) { done_at = sim.now(); });
    sim.run();
    reintegration_ms = sim::to_ms(done_at - t0);
    wire_bytes = static_cast<double>(net.stats().bytes_sent - bytes_before);
  }
  state.counters["log_entries"] = static_cast<double>(log_size);
  state.counters["reintegration_ms"] = reintegration_ms;
  state.counters["wire_bytes"] = wire_bytes;
}

void BM_Reintegration_PerOpReplay(benchmark::State& state) {
  const auto log_size = static_cast<int>(state.range(0));
  double reintegration_ms = 0, wire_bytes = 0;
  for (auto _ : state) {
    Platform platform(43);
    auto& sim = platform.simulator();
    auto& net = platform.network();
    net.set_default_link(net::LinkModel::radio());
    mobile::ShareServer server(net, {100, 1});
    const auto keys = all_keys();
    for (const auto& k : keys) server.store().write(k, "v0");
    mobile::MobileHost host(net, {1, 1}, {100, 1});
    // Sane per-op budget for small writes over radio (the 30 s bulk
    // budget would make every lost datagram cost half a minute).
    host.set_call_options({.timeout = sim::sec(1), .retries = 8,
                           .backoff = 1.5});
    sim.run();
    // The naive return: one "write" RPC per logged operation, replayed
    // serially (as a replay agent would).
    const auto bytes_before = net.stats().bytes_sent;
    const auto t0 = sim.now();
    sim::TimePoint done_at = 0;
    std::function<void(int)> replay = [&](int i) {
      if (i == log_size) {
        done_at = sim.now();
        return;
      }
      host.write(keys[static_cast<std::size_t>(i)], "field edit",
                 [&replay, i](bool) { replay(i + 1); });
    };
    replay(0);
    sim.run();
    reintegration_ms = sim::to_ms(done_at - t0);
    wire_bytes = static_cast<double>(net.stats().bytes_sent - bytes_before);
  }
  state.counters["log_entries"] = static_cast<double>(log_size);
  state.counters["reintegration_ms"] = reintegration_ms;
  state.counters["wire_bytes"] = wire_bytes;
}

void BM_Conflicts_vs_OfficeWrites(benchmark::State& state) {
  const double office_rate = static_cast<double>(state.range(0)) / 100.0;
  double conflict_fraction = 0;
  for (auto _ : state) {
    Platform platform(47);
    auto& sim = platform.simulator();
    auto& net = platform.network();
    net.set_default_link(net::LinkModel::lan());
    mobile::ShareServer server(net, {100, 1});
    const auto keys = all_keys();
    for (const auto& k : keys) server.store().write(k, "v0");
    mobile::MobileHost host(net, {1, 1}, {100, 1});
    host.hoard(keys, nullptr);
    sim.run();
    host.set_connectivity(net::Connectivity::kDisconnected);
    const int kEdits = 50;
    for (int i = 0; i < kEdits; ++i)
      host.write(keys[static_cast<std::size_t>(i)], "field edit",
                 [](bool) {});
    // The office touches a random subset while the worker is away.
    for (int i = 0; i < kEdits; ++i) {
      if (sim.rng().bernoulli(office_rate))
        server.store().write(keys[static_cast<std::size_t>(i)],
                             "office edit");
    }
    host.set_connectivity(net::Connectivity::kFull);
    std::size_t conflicts = 0;
    host.reintegrate([&](std::size_t, const auto& c) {
      conflicts = c.size();
    });
    sim.run();
    conflict_fraction = static_cast<double>(conflicts) / kEdits;
  }
  state.counters["office_write_pct"] = static_cast<double>(state.range(0));
  state.counters["conflict_fraction"] = conflict_fraction;
}

BENCHMARK(BM_Availability_vs_HoardFraction)
    ->Arg(0)->Arg(25)->Arg(50)->Arg(75)->Arg(100)
    ->Iterations(1);
BENCHMARK(BM_Reintegration_Bulk)
    ->Arg(10)->Arg(50)->Arg(200)
    ->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Reintegration_PerOpReplay)
    ->Arg(10)->Arg(50)->Arg(200)
    ->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Conflicts_vs_OfficeWrites)
    ->Arg(0)->Arg(20)->Arg(50)->Arg(100)
    ->Iterations(1);

}  // namespace

#include "bench_harness.hpp"
COOP_BENCH_MAIN("e9")
