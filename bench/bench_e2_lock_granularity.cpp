// E2 — the lock-granularity question (§4.2.1): "it is not clear in joint
// authoring applications whether locks should be applied at the
// granularity of sections, paragraphs, sentences or even words."
//
// Four authors edit one synthetic document (8 sections x 5 paragraphs x 4
// sentences x 8 words) for 30 virtual minutes; edit positions are
// zipf-skewed toward the document's hot front.  The same workload runs
// once per granularity; each edit exclusively locks the region containing
// its position.
//
// Reported series (one row per granularity):
//   wait_ms_mean / waits      — blocking caused by false sharing
//   regions                   — lock-table size (management overhead)
//   edits_done                — throughput over the session
//
// Expected shape: waits collapse as granularity refines (document >>
// section > paragraph > sentence > word) while the region count — the
// overhead axis — explodes in the same direction; the practical optimum
// sits in the middle, which is exactly why the paper calls it unclear.
#include <benchmark/benchmark.h>

#include <functional>
#include <string>

#include "core/coop.hpp"

using namespace coop;

namespace {

constexpr int kUsers = 4;
constexpr sim::Duration kSession = sim::minutes(30);
constexpr sim::Duration kEditHold = sim::msec(400);
constexpr double kThinkMeanMs = 500.0;

std::string make_document() {
  std::string text;
  for (int s = 0; s < 8; ++s) {
    if (s > 0) text += "\n\n";
    text += "# Section " + std::to_string(s);
    for (int p = 0; p < 5; ++p) {
      text += "\n\n";
      for (int sent = 0; sent < 4; ++sent) {
        for (int w = 0; w < 8; ++w) {
          text += "w" + std::to_string(s) + std::to_string(p) +
                  std::to_string(sent) + std::to_string(w);
          text += w + 1 < 8 ? " " : "";
        }
        text += sent + 1 < 4 ? ". " : ".";
      }
    }
  }
  return text;
}

struct Result {
  util::Summary wait_us;
  double waits = 0;
  double regions = 0;
  double edits = 0;
};

Result run_granularity(groupware::Granularity g) {
  Platform platform(88);
  auto& sim = platform.simulator();
  const std::string text = make_document();
  const auto regions = groupware::split_regions("doc", text, g);

  ccontrol::LockManager locks(sim, {.style = ccontrol::LockStyle::kStrict});
  Result result;
  result.regions = static_cast<double>(regions.size());

  // Hot spots are WORDS (people fight over the same phrases), so the
  // contended positions nest cleanly: hot word c hot sentence c hot
  // paragraph c hot section.
  const auto words =
      groupware::split_regions("doc", text, groupware::Granularity::kWord);

  std::function<void(int)> user_loop = [&](int user) {
    if (sim.now() >= kSession) return;
    const auto id = static_cast<ccontrol::ClientId>(user + 1);
    // Hot-spot position: zipf over word ranks.
    const auto pos = words[sim.rng().zipf(words.size(), 1.05)].begin;
    const std::string region = groupware::region_at("doc", text, g, pos);
    locks.acquire(region, id, ccontrol::LockMode::kExclusive,
                  [&, id, region](const ccontrol::LockGrant& grant) {
                    if (!grant.granted) return;
                    result.wait_us.add(static_cast<double>(grant.waited));
                    result.edits += 1;
                    sim.schedule_after(kEditHold, [&, id, region] {
                      locks.release(region, id);
                    });
                  });
    sim.schedule_after(
        static_cast<sim::Duration>(sim.rng().exponential(kThinkMeanMs) *
                                   1000) +
            kEditHold,
        [&, user] { user_loop(user); });
  };
  for (int u = 0; u < kUsers; ++u) user_loop(u);
  sim.run_until(kSession + sim::sec(30));
  result.waits = static_cast<double>(locks.stats().waits);
  return result;
}

void run(benchmark::State& state, groupware::Granularity g) {
  Result r;
  for (auto _ : state) r = run_granularity(g);
  state.counters["wait_ms_mean"] = r.wait_us.mean() / 1000.0;
  state.counters["wait_ms_p95"] = r.wait_us.p95() / 1000.0;
  state.counters["waits"] = r.waits;
  state.counters["regions"] = r.regions;
  state.counters["edits_done"] = r.edits;
}

void BM_Document(benchmark::State& s) {
  run(s, groupware::Granularity::kDocument);
}
void BM_Section(benchmark::State& s) {
  run(s, groupware::Granularity::kSection);
}
void BM_Paragraph(benchmark::State& s) {
  run(s, groupware::Granularity::kParagraph);
}
void BM_Sentence(benchmark::State& s) {
  run(s, groupware::Granularity::kSentence);
}
void BM_Word(benchmark::State& s) { run(s, groupware::Granularity::kWord); }

BENCHMARK(BM_Document)->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Section)->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Paragraph)->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Sentence)->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Word)->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace

#include "bench_harness.hpp"
COOP_BENCH_MAIN("e2")
