// E7 — real-time synchronization (§4.2.2-iii): continuous (lip sync) and
// event-driven synchronization quality.
//
// Continuous: 50 fps audio on a fast path, 25 fps video on a slow jittery
// path; the regulator slides the video playout clock toward the audio.
// Sweep over the regulator state (off / on) and the video path's extra
// latency.  Reported: mean and max |skew| after convergence (samples from
// the second half of the run), corrections issued.
//
// Event-driven: cue points registered on a stream's timeline; sweep the
// poll period.  Reported: firing error p95 — the cost of coarser polling.
//
// Expected shape: regulator off leaves |skew| equal to the path offset
// (well past the 80 ms lip-sync bound); regulator on pulls it inside the
// bound at every offset.  Event-sync error grows linearly with the poll
// period.
#include <benchmark/benchmark.h>

#include <cmath>
#include <memory>

#include "core/coop.hpp"

using namespace coop;

namespace {

struct LipSyncResult {
  double mean_abs_skew_ms = 0;
  double max_abs_skew_ms = 0;
  double corrections = 0;
};

LipSyncResult run_lipsync(bool regulator_on, sim::Duration video_delay) {
  Platform platform(19);
  auto& sim = platform.simulator();
  auto& net = platform.network();
  net.set_link(1, 2, {.latency = sim::msec(5), .jitter = sim::msec(1),
                      .bandwidth_bps = 10e6, .loss = 0});
  net.set_link(1, 3, {.latency = video_delay, .jitter = sim::msec(10),
                      .bandwidth_bps = 10e6, .loss = 0});

  streams::QosSpec audio{.fps = 50, .frame_bytes = 320,
                         .latency_bound = sim::msec(150),
                         .jitter_bound = sim::msec(30), .min_fps = 50};
  streams::QosSpec video{.fps = 25, .frame_bytes = 4000,
                         .latency_bound = sim::msec(300),
                         .jitter_bound = sim::msec(60), .min_fps = 5};
  streams::MediaSource audio_src(sim, 1, audio);
  streams::MediaSource video_src(sim, 2, video);
  streams::StreamBinding ab(net, audio_src, {1, 1}, net::Address{2, 1});
  streams::StreamBinding vb(net, video_src, {1, 2}, net::Address{3, 1});
  streams::MediaSink audio_sink(net, {2, 1});
  streams::MediaSink video_sink(net, {3, 1});
  streams::ContinuousSync sync(sim, audio_sink, video_sink,
                               {.check_period = sim::msec(100),
                                .skew_bound = sim::msec(80),
                                .correction_gain = 0.5});
  if (regulator_on) sync.start();
  audio_src.start();
  video_src.start();

  // Steady-state skew sampling over the second half of a 20 s run.
  util::Summary abs_skew;
  sim::PeriodicTimer sampler(sim, sim::msec(100), [&] {
    if (sim.now() < sim::sec(10)) return;
    const auto a = audio_sink.playout_position();
    const auto v = video_sink.playout_position();
    if (a >= 0 && v >= 0)
      abs_skew.add(std::abs(static_cast<double>(a - v)));
  });
  sampler.start();
  sim.run_until(sim::sec(20));

  return {abs_skew.mean() / 1000.0, abs_skew.max() / 1000.0,
          static_cast<double>(sync.corrections())};
}

void run_lip(benchmark::State& state, bool on) {
  const auto delay = sim::msec(state.range(0));
  LipSyncResult r;
  for (auto _ : state) r = run_lipsync(on, delay);
  state.counters["video_path_ms"] = static_cast<double>(state.range(0));
  state.counters["abs_skew_ms_mean"] = r.mean_abs_skew_ms;
  state.counters["abs_skew_ms_max"] = r.max_abs_skew_ms;
  state.counters["corrections"] = r.corrections;
}

void BM_LipSync_RegulatorOff(benchmark::State& s) { run_lip(s, false); }
void BM_LipSync_RegulatorOn(benchmark::State& s) { run_lip(s, true); }

// --- event-driven synchronization ----------------------------------------

void BM_EventSync_FiringError(benchmark::State& state) {
  const auto poll = sim::msec(state.range(0));
  double p95 = 0, fired = 0;
  for (auto _ : state) {
    Platform platform(19);
    auto& sim = platform.simulator();
    auto& net = platform.network();
    streams::QosSpec video{.fps = 25, .frame_bytes = 4000,
                           .latency_bound = sim::msec(300),
                           .jitter_bound = sim::msec(60), .min_fps = 5};
    streams::MediaSource src(sim, 1, video);
    streams::StreamBinding binding(net, src, {1, 1}, net::Address{2, 1});
    streams::MediaSink sink(net, {2, 1});
    streams::EventSync cues(sim, sink, poll);
    int count = 0;
    for (int i = 1; i <= 50; ++i)
      cues.at(i * sim::msec(97), [&count](std::int64_t) { ++count; });
    src.start();
    sim.run_until(sim::sec(10));
    p95 = cues.firing_error().p95() / 1000.0;
    fired = count;
  }
  state.counters["poll_ms"] = static_cast<double>(state.range(0));
  state.counters["firing_error_ms_p95"] = p95;
  state.counters["cues_fired"] = fired;
}

BENCHMARK(BM_LipSync_RegulatorOff)
    ->Arg(100)
    ->Arg(200)
    ->Arg(400)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_LipSync_RegulatorOn)
    ->Arg(100)
    ->Arg(200)
    ->Arg(400)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_EventSync_FiringError)
    ->Arg(1)
    ->Arg(10)
    ->Arg(50)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

#include "bench_harness.hpp"
COOP_BENCH_MAIN("e7")
