// R1 — chaos soak: the full stack under a seeded fault schedule (§4.2.2).
//
// A seed x scenario matrix drives the deterministic chaos plane against a
// small but complete deployment: a membership group (coordinator + three
// members), a replicated RPC store (two servers with harness-durable
// state, one retrying client), and a reliable FIFO stream crossing the
// crashable nodes.  Four scenarios: crash-restart, partition-heal,
// degraded-link and corruption-storm.
//
// Every run feeds a fault::Invariants collector and the binary exits
// non-zero if ANY run violates a safety invariant — at-most-once per
// call per incarnation, no acknowledged op lost, replica convergence,
// view agreement after quiesce, corruption containment, FIFO order.
// Recovery latencies (outage end -> first healthy client op) are mined
// from each run's trace and aggregated into the fault.recovery_us
// summary of BENCH_r1_chaos.json.  Same seed => byte-identical artifacts
// (the wall_ms line excluded).
//
// Expected shape: zero violations on every seed; recovery latency is
// dominated by the client's retry backoff for crash/partition scenarios
// and near-zero for degraded-link/corruption (requests ride through).
#include <benchmark/benchmark.h>

#include <array>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/coop.hpp"

using namespace coop;

namespace {

constexpr const char* kScenarioNames[] = {"crash_restart", "partition_heal",
                                          "degraded_link",
                                          "corruption_storm"};

std::uint64_t g_total_violations = 0;
std::uint64_t g_slo_violations = 0;
bool g_durable = false;  // --durable: replicas recover from WAL+checkpoint

struct RunOutcome {
  std::vector<std::string> violations;
  std::vector<std::string> slo_violations;
  std::uint64_t slo_transitions = 0;
  std::vector<sim::Duration> recovery;
  std::uint64_t ops_acked = 0;
  std::uint64_t injected_corrupt = 0;
  std::uint64_t dropped_corrupt = 0;
  std::uint64_t fifo_delivered = 0;
  // Durable-mode evidence (zero in the classic harness-map mode).
  std::uint64_t wal_replays = 0;
  std::uint64_t wal_replayed_records = 0;
  std::uint64_t wal_truncated_tails = 0;
  std::uint64_t checkpoints = 0;
  std::uint64_t ae_keys_pulled = 0;
  std::size_t peak_log_bytes = 0;
  std::vector<double> recovery_us;  ///< modeled replay cost per recovery
};

RunOutcome run_chaos(int scenario, std::uint64_t seed) {
  obs::Obs local;  // per-run sink so trace mining never crosses runs
  // Health objectives for the chaos window.  Outages legitimately stall
  // acks, so the breach budgets cover the ~2.4 s fault horizon (24
  // 100 ms windows) plus retry drain — what strict mode checks is that
  // the stall is bounded and the run ends healthy, i.e. it *recovered*.
  local.slo.add_rule({.name = "ack_rate_floor",
                      .series = "rpc.ok",
                      .kind = obs::SloRule::Kind::kRateFloor,
                      .threshold = 5.0,  // acks/sec; nominal is ~27/s
                      .trip_windows = 2,
                      .recover_windows = 1,
                      .active_from = sim::msec(200),
                      .active_until = sim::msec(2900),
                      .allowed_breach_windows = 30});
  local.slo.add_rule({.name = "rpc_rtt_p99",
                      .series = "rpc.latency_us",
                      .kind = obs::SloRule::Kind::kP99Ceiling,
                      .threshold = 400000.0,  // 400 ms: 100 ms timeout x
                                              // retries + backoff
                      .trip_windows = 2,
                      .recover_windows = 2,
                      .allowed_breach_windows = 30});
  Platform platform(seed, &local);
  auto& sim = platform.simulator();
  auto& net = platform.network();
  net.set_default_link({.latency = sim::msec(5), .jitter = sim::msec(2),
                        .bandwidth_bps = 10e6, .loss = 0.005});

  fault::Invariants inv;

  // --- membership plane: coordinator (node 100) + members on nodes 1-3.
  groups::MembershipConfig mcfg;
  mcfg.failure_timeout = sim::msec(500);
  groups::MembershipCoordinator coord(net, {100, 1}, mcfg);
  std::array<std::unique_ptr<groups::MembershipMember>, 3> members;
  const auto start_member = [&](int idx) {
    // Destroy any previous incarnation *before* constructing the new one:
    // assignment order would otherwise let the old destructor detach the
    // new object's freshly registered endpoint.
    members[static_cast<std::size_t>(idx)].reset();
    members[static_cast<std::size_t>(idx)] =
        std::make_unique<groups::MembershipMember>(
            net, net::Address{static_cast<net::NodeId>(idx + 1), 1},
            net::Address{100, 1}, mcfg);
    members[static_cast<std::size_t>(idx)]->join();
  };
  for (int i = 0; i < 3; ++i) start_member(i);

  // --- replicated RPC store: servers on nodes 1-2 (port 2).  The maps
  // are harness-owned, i.e. durable across the process restarts; the
  // replay cache is not — exactly the platform's restart contract.
  std::array<std::map<std::string, std::string>, 2> durable;
  std::array<int, 2> incarnation{1, 1};
  std::array<std::unique_ptr<rpc::RpcServer>, 2> servers;
  const auto start_server = [&](int s) {
    auto& server = servers[static_cast<std::size_t>(s)];
    server.reset();  // old incarnation must detach before the new attaches
    server = std::make_unique<rpc::RpcServer>(
        net, net::Address{static_cast<net::NodeId>(s + 1), 2});
    server->register_method(
        "set",
        [&inv, &durable, s,
         inc = incarnation[static_cast<std::size_t>(s)]](
            const std::string& req) {
          // req = "<op>|<call nonce>|<value>".  Executions are keyed by
          // (server, incarnation, op, nonce): the replay cache promises
          // at-most-once per *call* per incarnation — a fresh call for
          // the same op, or a retry spanning a restart, may re-execute.
          const auto bar1 = req.find('|');
          const auto bar2 = req.rfind('|');
          const std::string op = req.substr(0, bar1);
          inv.record_execution("s" + std::to_string(s) + "#" +
                               std::to_string(inc) + ":" + op + ":" +
                               req.substr(bar1 + 1, bar2 - bar1 - 1));
          durable[static_cast<std::size_t>(s)][op] = req.substr(bar2 + 1);
          return rpc::HandlerResult::success("ok");
        });
  };
  start_server(0);
  start_server(1);

  rpc::RpcClient client(net, {10, 1});
  RunOutcome out;
  std::uint64_t nonce = 0;
  bool failed_since_success = false;
  // Each logical op is issued to both replicas and re-issued until acked:
  // idempotent writes to op-unique keys, so re-execution converges.
  std::function<void(int, int)> issue = [&](int s, int opi) {
    const std::string op = "op" + std::to_string(opi);
    const std::string req =
        op + "|n" + std::to_string(++nonce) + "|v" + std::to_string(opi);
    client.call(
        {static_cast<net::NodeId>(s + 1), 2}, "set", req,
        [&, s, opi, op](const rpc::RpcResult& r) {
          if (r.ok()) {
            inv.record_acknowledged("s" + std::to_string(s) + ":" + op);
            ++out.ops_acked;
            if (failed_since_success) {
              failed_since_success = false;
              local.tracer.event(sim.now(), obs::Category::kFault,
                                 "recovered",
                                 {{"op", static_cast<double>(opi)}});
            }
          } else {
            failed_since_success = true;
            sim.schedule_after(sim::msec(100),
                               [&issue, s, opi] { issue(s, opi); });
          }
        },
        {.timeout = sim::msec(100), .retries = 2, .backoff_jitter = 0.2});
  };
  constexpr int kOps = 40;
  for (int i = 0; i < kOps; ++i) {
    sim.schedule_at(sim::msec(75) * i, [&issue, i] {
      issue(0, i);
      issue(1, i);
    });
  }

  // --- reliable FIFO stream across the crashable nodes: 2 -> 3, port 3.
  std::vector<int> fifo_log;
  std::uint32_t tx_epoch = 1, rx_epoch = 1;
  std::unique_ptr<net::FifoChannel> fifo_tx, fifo_rx;
  const auto start_fifo_tx = [&](std::uint32_t epoch) {
    fifo_tx.reset();
    fifo_tx = std::make_unique<net::FifoChannel>(
        net, net::Address{2, 3},
        net::FifoConfig{.retransmit_timeout = sim::msec(30),
                        .backoff_jitter = 0.2, .epoch = epoch});
  };
  const auto start_fifo_rx = [&](std::uint32_t epoch) {
    fifo_rx.reset();
    fifo_rx = std::make_unique<net::FifoChannel>(
        net, net::Address{3, 3},
        net::FifoConfig{.retransmit_timeout = sim::msec(30), .epoch = epoch});
    fifo_rx->on_receive([&](const net::Address&, const std::string& p) {
      fifo_log.push_back(std::stoi(p.substr(1)));
    });
  };
  start_fifo_tx(tx_epoch);
  start_fifo_rx(rx_epoch);
  constexpr int kTokens = 50;
  for (int i = 0; i < kTokens; ++i) {
    // Tokens falling into a sender outage are lost at the app layer
    // (gaps are legal); order and no-duplication are not negotiable.
    sim.schedule_at(sim::msec(50) * i, [&fifo_tx, i] {
      if (fifo_tx) fifo_tx->send({3, 3}, "t" + std::to_string(i));
    });
  }

  // --- the chaos schedule itself.
  fault::FaultPlan plan(net);
  fault::ChaosProfile profile;
  profile.nodes = {1, 2, 3};
  profile.horizon = sim::sec(2);
  switch (scenario) {
    case 0:
      profile.crashes = 3;
      break;
    case 1:
      profile.partitions = 3;
      break;
    case 2:
      profile.degrade_windows = 3;
      profile.disturbance = {.extra_loss = 0.15,
                             .extra_latency = sim::msec(10),
                             .extra_jitter = sim::msec(5)};
      break;
    case 3:
      profile.corrupt_windows = 3;
      profile.corrupt_prob = 0.25;
      profile.duplicate_windows = 2;
      profile.delay_windows = 2;
      break;
    default:
      break;
  }
  plan.on_crash([&](net::NodeId n) {
    // Fail-stop: the node's protocol objects die with the process.
    const int idx = static_cast<int>(n) - 1;
    if (idx >= 0 && idx < 3) members[static_cast<std::size_t>(idx)].reset();
    if (idx >= 0 && idx < 2) servers[static_cast<std::size_t>(idx)].reset();
    if (n == 2) fifo_tx.reset();
    if (n == 3) fifo_rx.reset();
  });
  plan.on_restart([&](net::NodeId n) {
    // A fresh incarnation: endpoints re-register, members rejoin via the
    // join protocol, FIFO channels come back with a bumped epoch and
    // resynchronize, the replay cache starts empty.
    const int idx = static_cast<int>(n) - 1;
    if (idx >= 0 && idx < 3) start_member(idx);
    if (idx >= 0 && idx < 2) {
      ++incarnation[static_cast<std::size_t>(idx)];
      start_server(idx);
    }
    if (n == 2) {
      start_fifo_tx(++tx_epoch);
      fifo_tx->resync({3, 3});
    }
    if (n == 3) {
      start_fifo_rx(++rx_epoch);
      fifo_rx->resync({2, 3});
    }
  });
  fault::ChaosEngine engine(seed * 1000 + static_cast<std::uint64_t>(scenario));
  engine.populate(plan, profile);
  plan.arm();

  // Faults end by ~2.4s, the workload by 3s; the tail is retry drain.
  sim.run_until(sim::sec(8));

  // --- evidence + checks.
  for (int s = 0; s < 2; ++s) {
    std::string digest;
    for (const auto& [k, v] : durable[static_cast<std::size_t>(s)]) {
      digest += k + "=" + v + ";";
      inv.record_applied("s" + std::to_string(s) + ":" + k);
    }
    inv.record_state("srv" + std::to_string(s), digest);
  }
  inv.record_view("coord", coord.view().id, coord.view().members.size());
  for (int i = 0; i < 3; ++i) {
    const auto& m = members[static_cast<std::size_t>(i)];
    if (m && m->view().has_value()) {
      inv.record_view("m" + std::to_string(i), m->view()->id,
                      m->view()->members.size());
    }
  }
  for (std::size_t i = 1; i < fifo_log.size(); ++i) {
    if (fifo_log[i] <= fifo_log[i - 1]) {
      inv.report_violation(
          "fifo order: token t" + std::to_string(fifo_log[i]) +
          " delivered after t" + std::to_string(fifo_log[i - 1]));
    }
  }
  if (out.ops_acked < 2 * kOps) {
    inv.report_violation("liveness: only " + std::to_string(out.ops_acked) +
                         "/" + std::to_string(2 * kOps) +
                         " ops acknowledged by quiesce");
  }
  inv.check_all();
  inv.check_corruption_contained(net.stats(), plan.injected().corrupt_frames);

  out.violations = inv.violations();
  local.series.finish();  // seal the tail window before the verdict
  out.slo_violations = local.slo.violation_messages();
  out.slo_transitions = local.slo.transitions_total();
  out.recovery = fault::recovery_latencies(local.tracer.snapshot());
  out.injected_corrupt = plan.injected().corrupt_frames;
  out.dropped_corrupt = net.stats().dropped_corrupt;
  out.fifo_delivered = fifo_log.size();
  return out;
}

// Durable variant of the soak: the two replicas keep their state in real
// durable::DurableStore instances over harness-owned StableMedia.  A crash
// kills every volatile object — store, WAL buffer, RPC server, replay
// cache, anti-entropy puller — and may tear the in-flight WAL frame; the
// restart seam reconstructs the replica solely from checkpoint + log
// replay.  Each logical op targets ONE replica (unlike the classic mode's
// write-both), so replica convergence genuinely requires anti-entropy, and
// a tmp-key write-then-delete exercise proves tombstones replicate instead
// of resurrecting.  At quiesce both replicas are torn down and rebuilt
// from their media once more: every invariant is checked against state
// that demonstrably came off the platter.
RunOutcome run_durable_chaos(int scenario, std::uint64_t seed) {
  obs::Obs local;  // per-run sink so trace mining never crosses runs
  local.slo.add_rule({.name = "ack_rate_floor",
                      .series = "rpc.ok",
                      .kind = obs::SloRule::Kind::kRateFloor,
                      .threshold = 5.0,
                      .trip_windows = 2,
                      .recover_windows = 1,
                      .active_from = sim::msec(200),
                      .active_until = sim::msec(2900),
                      .allowed_breach_windows = 30});
  local.slo.add_rule({.name = "rpc_rtt_p99",
                      .series = "rpc.latency_us",
                      .kind = obs::SloRule::Kind::kP99Ceiling,
                      .threshold = 400000.0,
                      .trip_windows = 2,
                      .recover_windows = 2,
                      .allowed_breach_windows = 30});
  Platform platform(seed, &local);
  auto& sim = platform.simulator();
  auto& net = platform.network();
  net.set_default_link({.latency = sim::msec(5), .jitter = sim::msec(2),
                        .bandwidth_bps = 10e6, .loss = 0.005});

  fault::Invariants inv;
  RunOutcome out;

  // --- membership plane: identical to the classic mode.
  groups::MembershipConfig mcfg;
  mcfg.failure_timeout = sim::msec(500);
  groups::MembershipCoordinator coord(net, {100, 1}, mcfg);
  std::array<std::unique_ptr<groups::MembershipMember>, 3> members;
  const auto start_member = [&](int idx) {
    members[static_cast<std::size_t>(idx)].reset();
    members[static_cast<std::size_t>(idx)] =
        std::make_unique<groups::MembershipMember>(
            net, net::Address{static_cast<net::NodeId>(idx + 1), 1},
            net::Address{100, 1}, mcfg);
    members[static_cast<std::size_t>(idx)]->join();
  };
  for (int i = 0; i < 3; ++i) start_member(i);

  // --- durable replicas on nodes 1-2.  The StableMedia is the harness's
  // only cross-incarnation state: everything else is rebuilt by recovery.
  const auto durable_cfg = [](int s) {
    durable::DurableConfig dc;
    dc.name = "r" + std::to_string(s);
    dc.sync_interval = sim::msec(5);
    dc.checkpoint_log_bytes = 2048;  // several compactions per run
    dc.tombstone_ttl = sim::sec(60);  // outlives the run: no GC races
    dc.tombstone_cap = 1024;
    return dc;
  };
  struct Replica {
    // Declaration order is teardown-safety: the AE puller (owns an rpc
    // client) and server (handlers reference the store) die before it.
    std::unique_ptr<durable::DurableStore> store;
    std::unique_ptr<rpc::RpcServer> server;
    std::unique_ptr<durable::AntiEntropy> ae;
  };
  std::array<durable::StableMedia, 2> media;
  std::array<Replica, 2> replicas;
  std::array<int, 2> incarnation{1, 1};
  std::array<std::size_t, 2> peak_log{0, 0};
  const auto start_replica = [&](int s) {
    auto& r = replicas[static_cast<std::size_t>(s)];
    r.ae.reset();
    r.server.reset();
    r.store.reset();  // old endpoints/timers down before recovery
    r.store = std::make_unique<durable::DurableStore>(
        sim, local, media[static_cast<std::size_t>(s)], durable_cfg(s));
    out.recovery_us.push_back(0.05 * static_cast<double>(
                                         r.store->recovery().scanned_bytes));
    durable::DurableStore* st = r.store.get();
    r.server = std::make_unique<rpc::RpcServer>(
        net, net::Address{static_cast<net::NodeId>(s + 1), 2});
    const int inc = incarnation[static_cast<std::size_t>(s)];
    // "set"/"del" ack only once the mutation's WAL record is synced: the
    // reply closure rides the group-commit waiter, so a crash before sync
    // drops the op AND its ack together — acks never lie.
    r.server->register_async_method(
        "set", [&inv, st, s, inc](const std::string& req, auto reply) {
          // req = "<op>|<value>|<call nonce>"; executions keyed by
          // (server, incarnation, op, nonce) as in the classic mode.
          const auto bar1 = req.find('|');
          const auto bar2 = req.rfind('|');
          const std::string op = req.substr(0, bar1);
          inv.record_execution("s" + std::to_string(s) + "#" +
                               std::to_string(inc) + ":" + op + ":" +
                               req.substr(bar2 + 1));
          st->put(op, req.substr(bar1 + 1, bar2 - bar1 - 1), [reply] {
            reply(rpc::HandlerResult::success("ok"));
          });
        });
    r.server->register_async_method(
        "del", [&inv, st, s, inc](const std::string& req, auto reply) {
          const auto bar = req.find('|');
          const std::string op = req.substr(0, bar);
          inv.record_execution("s" + std::to_string(s) + "#" +
                               std::to_string(inc) + ":del:" + op + ":" +
                               req.substr(bar + 1));
          st->erase(op, [reply] {
            reply(rpc::HandlerResult::success("ok"));
          });
        });
    durable::AntiEntropy::serve(*r.server, *st);
    durable::AeConfig ac;
    ac.name = durable_cfg(s).name;
    ac.period = sim::msec(250);
    r.ae = std::make_unique<durable::AntiEntropy>(
        net, net::Address{static_cast<net::NodeId>(s + 1), 11},
        net::Address{static_cast<net::NodeId>(2 - s), 2}, *st, ac);
  };
  start_replica(0);
  start_replica(1);

  // --- workload: each op targets ONE replica (op i -> replica i%2), so
  // the other replica can only learn it via anti-entropy.  Re-issued
  // until acked; values are op-keyed so re-execution converges.
  rpc::RpcClient client(net, {10, 1});
  std::uint64_t nonce = 0;
  bool failed_since_success = false;
  const std::string pad(48, 'x');  // log volume: force real compaction work
  std::function<void(int, const std::string&, const std::string&,
                     const std::function<void()>&)>
      issue_to = [&](int s, const std::string& method, const std::string& req,
                     const std::function<void()>& on_ack) {
        client.call(
            {static_cast<net::NodeId>(s + 1), 2}, method,
            req + "|n" + std::to_string(++nonce),
            [&, s, method, req, on_ack](const rpc::RpcResult& r) {
              if (r.ok()) {
                ++out.ops_acked;
                if (failed_since_success) {
                  failed_since_success = false;
                  local.tracer.event(sim.now(), obs::Category::kFault,
                                     "recovered", {});
                }
                if (on_ack) on_ack();
              } else {
                failed_since_success = true;
                sim.schedule_after(sim::msec(100), [&issue_to, s, method, req,
                                                    on_ack] {
                  issue_to(s, method, req, on_ack);
                });
              }
            },
            {.timeout = sim::msec(100), .retries = 2, .backoff_jitter = 0.2});
      };
  constexpr int kOps = 40;
  for (int i = 0; i < kOps; ++i) {
    sim.schedule_at(sim::msec(75) * i, [&, i] {
      const int s = i % 2;
      const std::string op = "op" + std::to_string(i);
      issue_to(s, "set", op + "|v" + std::to_string(i) + pad, [&inv, s, op] {
        inv.record_acknowledged("s" + std::to_string(s) + ":" + op);
      });
    });
  }
  // Tombstone exercise: write tmp keys, then delete them once the write
  // is acked.  An acked delete must survive every later crash-restart and
  // must not resurrect via anti-entropy on either replica.
  constexpr int kTmp = 5;
  for (int j = 0; j < kTmp; ++j) {
    sim.schedule_at(sim::sec(3) + sim::msec(60) * j, [&, j] {
      const int s = j % 2;
      const std::string op = "tmp" + std::to_string(j);
      issue_to(s, "set", op + "|v" + pad, [&issue_to, s, op] {
        issue_to(s, "del", op, nullptr);
      });
    });
  }

  // --- the chaos schedule: same profiles as the classic mode.
  fault::FaultPlan plan(net);
  fault::ChaosProfile profile;
  profile.nodes = {1, 2, 3};
  profile.horizon = sim::sec(2);
  switch (scenario) {
    case 0:
      profile.crashes = 3;
      break;
    case 1:
      profile.partitions = 3;
      break;
    case 2:
      profile.degrade_windows = 3;
      profile.disturbance = {.extra_loss = 0.15,
                             .extra_latency = sim::msec(10),
                             .extra_jitter = sim::msec(5)};
      break;
    case 3:
      profile.corrupt_windows = 3;
      profile.corrupt_prob = 0.25;
      profile.duplicate_windows = 2;
      profile.delay_windows = 2;
      break;
    default:
      break;
  }
  // Deterministic torn-tail draw, independent of the chaos engine's and
  // the simulator's streams so it perturbs neither.
  sim::Rng torn_rng(seed * 7919 + static_cast<std::uint64_t>(scenario));
  plan.on_crash([&](net::NodeId n) {
    const int idx = static_cast<int>(n) - 1;
    if (idx >= 0 && idx < 3) members[static_cast<std::size_t>(idx)].reset();
    if (idx >= 0 && idx < 2) {
      auto& r = replicas[static_cast<std::size_t>(idx)];
      peak_log[static_cast<std::size_t>(idx)] =
          std::max(peak_log[static_cast<std::size_t>(idx)],
                   r.store->max_log_bytes());
      // Model a write caught mid-flight: appended but never synced, so
      // the crash can tear its frame.  The record is never acked and its
      // garbage prefix must be discarded (unparsed) by recovery.
      r.store->put("inflight", std::string(16, 'x'));
      // Fail-stop with a possibly-torn tail: pending acks drop unfired,
      // the unsynced suffix dies, a garbage prefix of it may land.
      r.store->crash(
          static_cast<std::size_t>(torn_rng.uniform_int(0, 24)));
      r.ae.reset();
      r.server.reset();
      r.store.reset();  // in-memory state is GONE; only the media remains
    }
  });
  plan.on_restart([&](net::NodeId n) {
    const int idx = static_cast<int>(n) - 1;
    if (idx >= 0 && idx < 3) start_member(idx);
    if (idx >= 0 && idx < 2) {
      ++incarnation[static_cast<std::size_t>(idx)];
      start_replica(idx);  // recovery: checkpoint + WAL replay
    }
  });
  fault::ChaosEngine engine(seed * 1000 +
                            static_cast<std::uint64_t>(scenario));
  engine.populate(plan, profile);
  plan.arm();

  sim.run_until(sim::sec(8));

  // --- quiesce proof: rebuild both replicas from their media one final
  // time and run every check against the RECOVERED state.
  for (int s = 0; s < 2; ++s) {
    auto& r = replicas[static_cast<std::size_t>(s)];
    r.store->sync();  // flush the tail so adopted AE entries are on disk
    peak_log[static_cast<std::size_t>(s)] = std::max(
        peak_log[static_cast<std::size_t>(s)], r.store->max_log_bytes());
    const ccontrol::ObjectStore before = r.store->store();
    r.ae.reset();
    r.server.reset();
    r.store->crash();
    r.store.reset();
    durable::DurableStore recovered(
        sim, local, media[static_cast<std::size_t>(s)], durable_cfg(s));
    if (!(recovered.store() == before)) {
      inv.report_violation("replica r" + std::to_string(s) +
                           ": state recovered from WAL+checkpoint differs "
                           "from the synced pre-teardown state");
    }
    std::string digest;
    for (const auto& k : recovered.store().keys()) {
      digest += k + "=" + *recovered.store().read(k) + "@" +
                std::to_string(recovered.store().version(k)) + ";";
      inv.record_applied("s" + std::to_string(s) + ":" + k);
      // An op acked on the *other* replica that anti-entropy carried here
      // is durable on this side too; recording it is harmless (the check
      // only requires acked ops to be present somewhere they were acked).
    }
    inv.record_state("r" + std::to_string(s), digest);
    for (int j = 0; j < kTmp; ++j) {
      if (recovered.read("tmp" + std::to_string(j)).has_value()) {
        inv.report_violation("tombstone lost: acked delete of tmp" +
                             std::to_string(j) + " resurrected on r" +
                             std::to_string(s));
      }
    }
    inv.check_log_bounded("r" + std::to_string(s),
                          peak_log[static_cast<std::size_t>(s)],
                          2048 + 4096);  // threshold + one commit batch
  }
  inv.record_view("coord", coord.view().id, coord.view().members.size());
  for (int i = 0; i < 3; ++i) {
    const auto& m = members[static_cast<std::size_t>(i)];
    if (m && m->view().has_value()) {
      inv.record_view("m" + std::to_string(i), m->view()->id,
                      m->view()->members.size());
    }
  }
  if (out.ops_acked < kOps + 2 * kTmp) {
    inv.report_violation("liveness: only " + std::to_string(out.ops_acked) +
                         "/" + std::to_string(kOps + 2 * kTmp) +
                         " ops acknowledged by quiesce");
  }
  inv.check_all();
  inv.check_corruption_contained(net.stats(), plan.injected().corrupt_frames);

  out.violations = inv.violations();
  local.series.finish();
  out.slo_violations = local.slo.violation_messages();
  out.slo_transitions = local.slo.transitions_total();
  out.recovery = fault::recovery_latencies(local.tracer.snapshot());
  out.injected_corrupt = plan.injected().corrupt_frames;
  out.dropped_corrupt = net.stats().dropped_corrupt;
  const auto sum2 = [&local](const char* leaf) {
    return local.metrics.counter("durable.r0." + std::string(leaf)).value() +
           local.metrics.counter("durable.r1." + std::string(leaf)).value();
  };
  out.wal_replays = sum2("replays");
  out.wal_replayed_records = sum2("replayed_records");
  out.wal_truncated_tails = sum2("truncated_tail");
  out.checkpoints = sum2("checkpoints");
  out.ae_keys_pulled = sum2("ae_keys_pulled");
  out.peak_log_bytes = std::max(peak_log[0], peak_log[1]);
  return out;
}

void BM_ChaosSoak(benchmark::State& state) {
  const int scenario = static_cast<int>(state.range(0));
  const auto seed = static_cast<std::uint64_t>(state.range(1));
  RunOutcome out;
  for (auto _ : state) {
    out = g_durable ? run_durable_chaos(scenario, seed)
                    : run_chaos(scenario, seed);
  }

  obs::Obs& ambient = *obs::default_obs();
  auto& recovery = ambient.metrics.summary("fault.recovery_us");
  for (const sim::Duration d : out.recovery)
    recovery.add(static_cast<double>(d));
  ambient.metrics.counter("fault.soak.runs").inc();
  ambient.metrics.counter("fault.soak.ops_acked").inc(out.ops_acked);
  ambient.metrics.counter("fault.soak.fifo_delivered")
      .inc(out.fifo_delivered);
  ambient.metrics.counter("fault.soak.injected_corrupt")
      .inc(out.injected_corrupt);
  ambient.metrics.counter("fault.soak.dropped_corrupt")
      .inc(out.dropped_corrupt);
  if (g_durable) {
    ambient.metrics.counter("durable.soak.replays").inc(out.wal_replays);
    ambient.metrics.counter("durable.soak.replayed_records")
        .inc(out.wal_replayed_records);
    ambient.metrics.counter("durable.soak.truncated_tails")
        .inc(out.wal_truncated_tails);
    ambient.metrics.counter("durable.soak.checkpoints").inc(out.checkpoints);
    ambient.metrics.counter("durable.soak.ae_keys_pulled")
        .inc(out.ae_keys_pulled);
    auto& rec_us = ambient.metrics.summary("durable.recovery_us");
    for (const double v : out.recovery_us) rec_us.add(v);
  }
  if (!out.violations.empty()) {
    ambient.metrics.counter("fault.invariant_violations")
        .inc(out.violations.size());
    g_total_violations += out.violations.size();
    for (const std::string& v : out.violations) {
      std::fprintf(stderr, "[%s seed %llu] INVARIANT VIOLATION: %s\n",
                   kScenarioNames[scenario],
                   static_cast<unsigned long long>(seed), v.c_str());
    }
  }
  // Health-trajectory evidence: how often objectives flipped under this
  // scenario, and whether any overspent its breach budget.
  ambient.metrics.counter("fault.slo_transitions").inc(out.slo_transitions);
  if (!out.slo_violations.empty()) {
    ambient.metrics.counter("fault.slo_violations")
        .inc(out.slo_violations.size());
    g_slo_violations += out.slo_violations.size();
    for (const std::string& v : out.slo_violations) {
      std::fprintf(stderr, "[%s seed %llu] SLO VIOLATION: %s\n",
                   kScenarioNames[scenario],
                   static_cast<unsigned long long>(seed), v.c_str());
    }
  }
  state.counters["violations"] = static_cast<double>(out.violations.size());
  state.counters["recoveries"] = static_cast<double>(out.recovery.size());
  state.counters["ops_acked"] = static_cast<double>(out.ops_acked);
  if (g_durable) {
    state.counters["wal_replays"] = static_cast<double>(out.wal_replays);
    state.counters["checkpoints"] = static_cast<double>(out.checkpoints);
    state.counters["ae_pulled"] = static_cast<double>(out.ae_keys_pulled);
    state.counters["peak_log"] = static_cast<double>(out.peak_log_bytes);
    state.SetLabel(std::string(kScenarioNames[scenario]) + "_durable");
  } else {
    state.counters["fifo_delivered"] =
        static_cast<double>(out.fifo_delivered);
    state.SetLabel(kScenarioNames[scenario]);
  }
}

BENCHMARK(BM_ChaosSoak)
    ->ArgsProduct({{0, 1, 2, 3}, benchmark::CreateDenseRange(1, 20, 1)})
    ->Iterations(1);

}  // namespace

// COOP_BENCH_MAIN with one addition: a non-zero exit code when any run
// violated an invariant, so CI fails on the soak, not on a diff.
int main(int argc, char** argv) {
  // --durable (stripped before benchmark::Initialize): run the soak
  // against real WAL+checkpoint replicas instead of harness-owned maps.
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--durable") {
      g_durable = true;
      for (int j = i; j + 1 < argc; ++j) argv[j] = argv[j + 1];
      --argc;
      break;
    }
  }
  const char* tag = g_durable ? "r1_durable" : "r1_chaos";
  coop::obs::Obs obs;
  coop::obs::ScopedDefaultObs ambient(&obs);
  obs.meta.knobs["tag"] = tag;
  obs.meta.knobs["trace_cap"] = std::to_string(obs.tracer.capacity());
  if (const char* cap = std::getenv("COOP_TRACE_CAP"))
    obs.meta.knobs["COOP_TRACE_CAP"] = cap;
  {
    std::string args;
    for (int i = 1; i < argc; ++i) {
      if (i > 1) args += ' ';
      args += argv[i];
    }
    if (!args.empty()) obs.meta.knobs["argv"] = args;
  }
  const auto wall_start = std::chrono::steady_clock::now();
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  obs.meta.wall_ms = std::chrono::duration<double, std::milli>(
                         std::chrono::steady_clock::now() - wall_start)
                         .count();
  if (!coop::obs::write_bench_artifacts(obs, tag)) {
    std::fprintf(stderr, "warning: failed to write BENCH_%s.*\n", tag);
  }
  if (g_total_violations > 0) {
    std::fprintf(stderr, "chaos soak FAILED: %llu invariant violation(s)\n",
                 static_cast<unsigned long long>(g_total_violations));
    return 2;
  }
  // Opt-in SLO-checked soak: breach budgets already tolerate the fault
  // horizon, so a violation here means a run failed to *recover*.
  if (g_slo_violations > 0 && std::getenv("COOP_SLO_STRICT") != nullptr) {
    std::fprintf(stderr, "chaos soak FAILED: %llu SLO violation(s)\n",
                 static_cast<unsigned long long>(g_slo_violations));
    return 3;
  }
  return 0;
}
