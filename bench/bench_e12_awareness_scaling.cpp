// E12 — awareness fan-out at scale: indexed candidate sets vs the
// brute-force all-observer walk (§4.2.1 awareness weightings over the
// §3.3.2 spatial model, which was designed for "large unbounded space").
//
// Sweep: 100 -> 10 000 participants at constant spatial density (world
// side grows with sqrt(N)), each under the same seeded workload of random
// walks plus edit storms against a hot object set, with periodic digest
// flushes and interest GC in the loop.  Published events per run is held
// constant, so per-publish cost isolates the fan-out mechanism:
//
//   brute   — every publish walks all N observers (the pre-index engine);
//             candidate-set size == N-1 and wall cost grows linearly.
//   indexed — the uniform-grid spatial index plus the inverted interest
//             index yield a candidate set that tracks local density, not
//             N; candidate size and per-publish cost stay flat.
//
// Parity mode is the differential contract: the same (N, seed) workload
// is replayed through both engines and the FNV-1a hash over the exact
// delivery sequence (observer, sim time, actor, object, weight bits,
// path) plus every EngineStats field must match bit-for-bit.  Any
// divergence makes the binary exit non-zero, so scripts/check.sh and CI
// fail on the mechanism itself, not on a downstream diff.  Same seed =>
// byte-identical BENCH_e12_awareness.json modulo wall_ms.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "awareness/engine.hpp"
#include "awareness/spatial.hpp"
#include "obs/obs.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"

using namespace coop;
using awareness::ActivityEvent;
using awareness::AwarenessEngine;
using awareness::ClientId;

namespace {

constexpr int kPublishesPerRun = 2000;

std::uint64_t g_parity_failures = 0;

struct Outcome {
  std::uint64_t delivery_hash = 1469598103934665603ULL;  // FNV-1a offset
  std::uint64_t deliveries = 0;
  awareness::EngineStats stats;
  double candidate_mean = 0;
  std::size_t interest_table_final = 0;
  double publish_wall_ns = 0;  ///< wall time inside publish() only
};

void fnv_mix(std::uint64_t& h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xffULL;
    h *= 1099511628211ULL;
  }
}

void fnv_mix_str(std::uint64_t& h, const std::string& s) {
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ULL;
  }
}

/// One full seeded workload against one engine.  Everything is a pure
/// function of (participants, seed, use_index) except publish_wall_ns.
Outcome run_awareness(int participants, std::uint64_t seed, bool use_index,
                      obs::Obs* sink) {
  sim::Simulator sim(seed);
  awareness::SpatialModel space;
  awareness::EngineConfig cfg;
  cfg.full_threshold = 0.4;
  cfg.digest_period = sim::sec(5);
  cfg.interest_decay = sim::sec(10);
  cfg.interest_gc_factor = 5.0;  // horizon 50 s: GC fires mid-run
  cfg.use_index = use_index;
  AwarenessEngine engine(sim, space, cfg, sink);

  Outcome out;
  // Constant density: ~4.5 expected spatial neighbours per participant
  // regardless of N (world side 10 * sqrt(N), aura radius 12).
  const double world = 10.0 * std::sqrt(static_cast<double>(participants));
  sim::Rng rng(seed * 1000003ULL + static_cast<std::uint64_t>(participants));
  for (ClientId id = 1; id <= static_cast<ClientId>(participants); ++id) {
    space.place(id, {rng.uniform(0, world), rng.uniform(0, world)});
    space.set_focus(id, 12.0);
    space.set_nimbus(id, 12.0);
    engine.subscribe(id, [&out, &sim, id](const ActivityEvent& e, double w,
                                          bool digest) {
      ++out.deliveries;
      fnv_mix(out.delivery_hash, static_cast<std::uint64_t>(id));
      fnv_mix(out.delivery_hash, static_cast<std::uint64_t>(sim.now()));
      fnv_mix(out.delivery_hash, static_cast<std::uint64_t>(e.actor));
      fnv_mix_str(out.delivery_hash, e.object);
      std::uint64_t bits;
      static_assert(sizeof(bits) == sizeof(w));
      std::memcpy(&bits, &w, sizeof(bits));
      fnv_mix(out.delivery_hash, bits);
      fnv_mix(out.delivery_hash, digest ? 1 : 0);
    });
  }

  const int hot_objects = participants / 8 + 1;
  double candidate_sum = 0;
  int published = 0;
  std::chrono::steady_clock::duration publish_wall{};
  while (published < kPublishesPerRun) {
    // A burst of walks + edits, then 300 ms of sim time so digest
    // flushes (and interest GC) interleave with the storm.
    for (int b = 0; b < 8 && published < kPublishesPerRun; ++b) {
      const auto actor = static_cast<ClientId>(
          rng.uniform_int(1, participants));
      if (auto at = space.position(actor)) {
        space.place(actor, {at->x + rng.uniform(-5, 5),
                            at->y + rng.uniform(-5, 5)});
      }
      if (rng.uniform() < 0.1) {
        engine.mark_interest(
            static_cast<ClientId>(rng.uniform_int(1, participants)),
            "doc/" + std::to_string(rng.uniform_int(0, hot_objects - 1)));
      }
      const ActivityEvent e{
          actor,
          "doc/" + std::to_string(rng.uniform_int(0, hot_objects - 1)),
          "edit", sim.now()};
      const auto t0 = std::chrono::steady_clock::now();
      engine.publish(e);
      publish_wall += std::chrono::steady_clock::now() - t0;
      candidate_sum += static_cast<double>(engine.last_candidate_set());
      ++published;
    }
    sim.run_for(sim::msec(300));
  }
  sim.run_for(sim::sec(10));  // drain the last digests

  out.stats = engine.stats();
  out.candidate_mean = candidate_sum / kPublishesPerRun;
  out.interest_table_final = engine.interest_table_size();
  out.publish_wall_ns =
      std::chrono::duration<double, std::nano>(publish_wall).count();
  return out;
}

char hex_digit(std::uint64_t v) {
  return static_cast<char>(v < 10 ? '0' + v : 'a' + (v - 10));
}

std::string hex64(std::uint64_t v) {
  std::string s(16, '0');
  for (int i = 15; i >= 0; --i, v >>= 4) s[static_cast<std::size_t>(i)] =
      hex_digit(v & 0xf);
  return s;
}

void BM_E12Sweep(benchmark::State& state) {
  const bool use_index = state.range(0) != 0;
  const int participants = static_cast<int>(state.range(1));
  const auto seed = static_cast<std::uint64_t>(state.range(2));
  Outcome out;
  for (auto _ : state)
    out = run_awareness(participants, seed, use_index, /*sink=*/nullptr);

  obs::Obs& ambient = *obs::default_obs();
  const std::string key = std::string("e12.") +
                          (use_index ? "indexed" : "brute") + ".n" +
                          std::to_string(participants) + ".";
  ambient.metrics.counter(key + "published").inc(out.stats.published);
  ambient.metrics.counter(key + "immediate").inc(out.stats.immediate);
  ambient.metrics.counter(key + "digested").inc(out.stats.digested);
  ambient.metrics.counter(key + "coalesced").inc(out.stats.coalesced);
  ambient.metrics.counter(key + "suppressed").inc(out.stats.suppressed);
  ambient.metrics.counter(key + "interest_evicted")
      .inc(out.stats.interest_evicted);
  ambient.metrics.counter(key + "deliveries").inc(out.deliveries);
  ambient.metrics.gauge(key + "candidate_mean").set(out.candidate_mean);
  ambient.metrics.gauge(key + "interest_table_final")
      .set(static_cast<double>(out.interest_table_final));
  // The 64-bit sequence hash would lose bits as a double; keep it exact
  // as a provenance knob instead.
  ambient.meta.knobs[key + "hash"] = hex64(out.delivery_hash);

  state.counters["cand_mean"] = out.candidate_mean;
  state.counters["deliveries"] = static_cast<double>(out.deliveries);
  state.counters["ns_per_publish"] =
      out.publish_wall_ns / kPublishesPerRun;
  state.SetLabel(std::string(use_index ? "indexed" : "brute") + "/n" +
                 std::to_string(participants));
}

void BM_E12Parity(benchmark::State& state) {
  const int participants = static_cast<int>(state.range(0));
  const auto seed = static_cast<std::uint64_t>(state.range(1));
  Outcome brute, indexed;
  for (auto _ : state) {
    obs::Obs quiet;  // parity runs stay out of the shared artifact
    brute = run_awareness(participants, seed, /*use_index=*/false, &quiet);
    indexed = run_awareness(participants, seed, /*use_index=*/true, &quiet);
  }

  const awareness::EngineStats& b = brute.stats;
  const awareness::EngineStats& x = indexed.stats;
  const bool ok =
      brute.delivery_hash == indexed.delivery_hash &&
      brute.deliveries == indexed.deliveries &&
      b.published == x.published && b.immediate == x.immediate &&
      b.digested == x.digested && b.coalesced == x.coalesced &&
      b.suppressed == x.suppressed &&
      b.digests_dropped == x.digests_dropped &&
      b.interest_evicted == x.interest_evicted &&
      b.notification_time.count() == x.notification_time.count() &&
      brute.interest_table_final == indexed.interest_table_final;
  if (!ok) {
    ++g_parity_failures;
    std::fprintf(stderr,
                 "[n=%d seed %llu] PARITY VIOLATION: brute hash %s "
                 "(%llu deliveries) vs indexed hash %s (%llu deliveries)\n",
                 participants, static_cast<unsigned long long>(seed),
                 hex64(brute.delivery_hash).c_str(),
                 static_cast<unsigned long long>(brute.deliveries),
                 hex64(indexed.delivery_hash).c_str(),
                 static_cast<unsigned long long>(indexed.deliveries));
  }

  obs::Obs& ambient = *obs::default_obs();
  const std::string key = "e12.parity.n" + std::to_string(participants) +
                          ".s" + std::to_string(seed) + ".";
  ambient.metrics.counter(key + "ok").inc(ok ? 1 : 0);
  ambient.meta.knobs[key + "hash"] = hex64(indexed.delivery_hash);

  state.counters["ok"] = ok ? 1 : 0;
  state.counters["deliveries"] = static_cast<double>(indexed.deliveries);
  state.SetLabel("parity/n" + std::to_string(participants) + "/s" +
                 std::to_string(seed));
}

BENCHMARK(BM_E12Sweep)
    ->ArgsProduct({{0, 1}, {100, 300, 1000, 3000, 10000}, {1}})
    ->Iterations(1);

BENCHMARK(BM_E12Parity)
    ->ArgsProduct({{100, 300, 1000}, {1, 2, 3}})
    ->Iterations(1);

}  // namespace

// COOP_BENCH_MAIN with one addition: a non-zero exit code when any
// brute-vs-indexed replay diverged, so CI fails on the parity contract
// itself rather than on an artifact diff.
int main(int argc, char** argv) {
  coop::obs::Obs obs;
  coop::obs::ScopedDefaultObs ambient(&obs);
  obs.meta.knobs["tag"] = "e12_awareness";
  obs.meta.knobs["trace_cap"] = std::to_string(obs.tracer.capacity());
  if (const char* cap = std::getenv("COOP_TRACE_CAP"))
    obs.meta.knobs["COOP_TRACE_CAP"] = cap;
  {
    std::string args;
    for (int i = 1; i < argc; ++i) {
      if (i > 1) args += ' ';
      args += argv[i];
    }
    if (!args.empty()) obs.meta.knobs["argv"] = args;
  }
  const auto wall_start = std::chrono::steady_clock::now();
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  obs.meta.wall_ms = std::chrono::duration<double, std::milli>(
                         std::chrono::steady_clock::now() - wall_start)
                         .count();
  if (!coop::obs::write_bench_artifacts(obs, "e12_awareness")) {
    std::fprintf(stderr, "warning: failed to write BENCH_e12_awareness.*\n");
  }
  if (g_parity_failures > 0) {
    std::fprintf(stderr, "awareness parity FAILED: %llu divergent run(s)\n",
                 static_cast<unsigned long long>(g_parity_failures));
    return 2;
  }
  return 0;
}
