// E11 — collaboration-transparent vs collaboration-aware sharing
// (§3.2.2): the application-level consequence of the two architectures.
//
// The same three-author writing burst (each author wants to contribute 40
// inputs, arriving with ~1 s think times over a WAN) runs against:
//
//   transparent — an unmodified single-user app shared by multidrop +
//                 multicast with explicit-release floor control: input is
//                 serialized through the floor, so contributions queue
//                 behind the current speaker (inputs sent without the
//                 floor are discarded by the multidrop filter).
//   aware       — the collaboration-aware OT editor: everyone types
//                 concurrently; consistency is restored by
//                 transformation.
//
// Reported series: contributions accepted, contributions rejected,
// session length (first input -> last accepted), own-input response time.
//
// Expected shape: the transparent architecture rejects non-holder input
// and stretches the session (serialization through the floor); the aware
// architecture accepts everything concurrently with zero response time.
// The cost the paper notes for aware systems — building them from
// scratch — shows up as the OT machinery, not in these numbers.
#include <benchmark/benchmark.h>

#include <functional>
#include <memory>
#include <string>

#include "core/coop.hpp"

using namespace coop;

namespace {

constexpr int kAuthors = 5;
constexpr int kInputsPerAuthor = 40;
constexpr double kThinkMeanMs = 1000.0;
constexpr sim::Duration kSpeakHold = sim::msec(800);  // floor hold per input

void BM_CollaborationTransparent(benchmark::State& state) {
  double accepted = 0, rejected = 0, session_s = 0;
  for (auto _ : state) {
    Platform platform(83);
    auto& sim = platform.simulator();
    auto& net = platform.network();
    net.set_default_link(net::LinkModel::wan());

    groupware::ConferenceServer server(
        net, {10, 1}, std::make_unique<groupware::TerminalApp>(),
        {.policy = ccontrol::FloorPolicy::kExplicitRelease});
    std::vector<std::unique_ptr<groupware::ConferenceClient>> clients;
    for (int a = 0; a < kAuthors; ++a) {
      clients.push_back(std::make_unique<groupware::ConferenceClient>(
          net, net::Address{static_cast<net::NodeId>(a + 1), 1},
          net::Address{10, 1}, static_cast<groupware::ClientId>(a + 1)));
      clients.back()->join();
    }

    sim::TimePoint last_display = 0;
    for (auto& c : clients)
      c->on_display([&](const std::string&) { last_display = sim.now(); });

    // Each author: request floor, wait for it, speak, release, think.
    std::function<void(int, int)> author = [&](int a, int remaining) {
      if (remaining == 0) return;
      auto& client = *clients[static_cast<std::size_t>(a)];
      client.request_floor();
      // Poll the floor (the client learns it via FLOOR pushes) and
      // re-send the request every ~2 s in case the original datagram was
      // lost on the WAN.
      std::shared_ptr<std::function<void()>> poll =
          std::make_shared<std::function<void()>>();
      auto polls = std::make_shared<int>(0);
      *poll = [&, a, remaining, poll, polls] {
        auto& cl = *clients[static_cast<std::size_t>(a)];
        if (!cl.has_floor()) {
          if (++*polls % 20 == 0) cl.request_floor();
          sim.schedule_after(sim::msec(100), *poll);
          return;
        }
        cl.send_input("a" + std::to_string(a) + "." +
                      std::to_string(remaining));
        sim.schedule_after(kSpeakHold, [&, a, remaining] {
          clients[static_cast<std::size_t>(a)]->release_floor();
          sim.schedule_after(
              static_cast<sim::Duration>(
                  sim.rng().exponential(kThinkMeanMs) * 1000),
              [&, a, remaining] { author(a, remaining - 1); });
        });
      };
      sim.schedule_after(sim::msec(100), *poll);
    };
    for (int a = 0; a < kAuthors; ++a) author(a, kInputsPerAuthor);
    sim.run_until(sim::minutes(30));

    accepted = static_cast<double>(server.stats().inputs_accepted);
    rejected = static_cast<double>(server.stats().inputs_rejected);
    session_s = sim::to_sec(last_display);
  }
  state.counters["accepted"] = accepted;
  state.counters["rejected"] = rejected;
  state.counters["session_s"] = session_s;
  state.counters["response_ms"] = 0;  // holder's input is instant... once
                                      // the floor is held (see session_s)
}

void BM_CollaborationAware(benchmark::State& state) {
  double accepted = 0, session_s = 0;
  for (auto _ : state) {
    Platform platform(83);
    auto& sim = platform.simulator();
    auto& net = platform.network();
    net.set_default_link(net::LinkModel::wan());

    groupware::EditorServer server(net, {10, 1}, "");
    std::vector<std::unique_ptr<groupware::EditorClient>> clients;
    for (int a = 0; a < kAuthors; ++a) {
      clients.push_back(std::make_unique<groupware::EditorClient>(
          net, net::Address{static_cast<net::NodeId>(a + 1), 1},
          net::Address{10, 1}, static_cast<ccontrol::SiteId>(a + 1), ""));
      clients.back()->connect();
    }

    sim::TimePoint last_input = 0;
    int typed = 0;
    std::function<void(int, int)> author = [&](int a, int remaining) {
      if (remaining == 0) return;
      auto& client = *clients[static_cast<std::size_t>(a)];
      client.insert(client.doc().size(), "x");  // accepted immediately
      ++typed;
      last_input = sim.now();
      sim.schedule_after(
          static_cast<sim::Duration>(sim.rng().exponential(kThinkMeanMs) *
                                     1000) +
              kSpeakHold,
          [&, a, remaining] { author(a, remaining - 1); });
    };
    sim.schedule_at(sim::msec(500), [&] {  // after join snapshots
      for (int a = 0; a < kAuthors; ++a) author(a, kInputsPerAuthor);
    });
    sim.run_until(sim::minutes(30));

    accepted = typed;
    session_s = sim::to_sec(last_input);
  }
  state.counters["accepted"] = accepted;
  state.counters["rejected"] = 0;
  state.counters["session_s"] = session_s;
  state.counters["response_ms"] = 0;  // genuinely zero: local apply
}

BENCHMARK(BM_CollaborationTransparent)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_CollaborationAware)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

#include "bench_harness.hpp"
COOP_BENCH_MAIN("e11")
