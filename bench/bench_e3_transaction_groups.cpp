// E3 — transaction groups (Skarra & Zdonik, §4.2.1): serializability
// replaced by tailorable access rules.
//
// Four members of one transaction group work a six-section document for
// 30 virtual minutes under three cooperation policies:
//
//   serial       — overlap with any active writer/reader is denied
//                  (serializable-equivalent behaviour);
//   owner        — sections have owners; only owners write, others read
//                  with notification;
//   cooperative  — everything allowed, overlaps produce notifications
//                  (the fully social policy).
//
// Reported series: operations completed, denials, notifications.
//
// Expected shape: throughput rises monotonically as the policy is
// relaxed (serial < owner < cooperative); the information flow
// (notifications) rises in the same direction — structure traded for
// awareness, which is the paper's §4.2.1 point in one table.
#include <benchmark/benchmark.h>

#include <functional>
#include <map>
#include <string>

#include "core/coop.hpp"

using namespace coop;

namespace {

constexpr int kMembers = 4;
constexpr int kSections = 6;
constexpr sim::Duration kSession = sim::minutes(30);
constexpr sim::Duration kActivityHold = sim::msec(700);
constexpr double kThinkMeanMs = 400.0;

enum class Policy { kSerial, kOwner, kCooperative };

struct Result {
  double ops_done = 0;
  double denied = 0;
  double notifications = 0;
};

Result run_policy(Policy policy) {
  Platform platform(66);
  auto& sim = platform.simulator();
  ccontrol::ObjectStore store;
  ccontrol::TransactionGroup group(store);

  switch (policy) {
    case Policy::kSerial:
      group.set_rule(ccontrol::TransactionGroup::serial_rule());
      break;
    case Policy::kOwner: {
      std::map<std::string, ccontrol::ClientId> owners;
      for (int s = 0; s < kSections; ++s)
        owners["sec" + std::to_string(s)] =
            static_cast<ccontrol::ClientId>(s % kMembers + 1);
      group.set_rule(ccontrol::TransactionGroup::owner_rule(owners));
      break;
    }
    case Policy::kCooperative:
      group.set_rule(ccontrol::TransactionGroup::cooperative_rule());
      break;
  }

  Result result;
  group.on_notify([&](ccontrol::ClientId, const ccontrol::OpContext&) {});
  for (int m = 0; m < kMembers; ++m)
    group.join(static_cast<ccontrol::ClientId>(m + 1));

  std::function<void(int)> member_loop = [&](int member) {
    if (sim.now() >= kSession) return;
    const auto id = static_cast<ccontrol::ClientId>(member + 1);
    const std::string section =
        "sec" + std::to_string(sim.rng().zipf(kSections, 1.1));
    const bool writing = sim.rng().bernoulli(0.6);
    group.begin_activity(id, section, writing);
    bool ok;
    if (writing) {
      ok = group.write(id, section, "edit by " + std::to_string(id));
    } else {
      group.read(id, section);
      ok = true;  // reads denied under serial count via stats
    }
    (void)ok;
    result.ops_done += 1;
    sim.schedule_after(kActivityHold, [&, id] { group.end_activity(id); });
    sim.schedule_after(
        static_cast<sim::Duration>(sim.rng().exponential(kThinkMeanMs) *
                                   1000) +
            kActivityHold,
        [&, member] { member_loop(member); });
  };
  for (int m = 0; m < kMembers; ++m) member_loop(m);
  sim.run_until(kSession + sim::sec(10));

  result.ops_done = static_cast<double>(group.stats().reads +
                                        group.stats().writes);
  result.denied = static_cast<double>(group.stats().denied);
  result.notifications = static_cast<double>(group.stats().notifications);
  return result;
}

void run(benchmark::State& state, Policy policy) {
  Result r;
  for (auto _ : state) r = run_policy(policy);
  state.counters["ops_done"] = r.ops_done;
  state.counters["denied"] = r.denied;
  state.counters["notifications"] = r.notifications;
}

void BM_SerialRule(benchmark::State& s) { run(s, Policy::kSerial); }
void BM_OwnerRule(benchmark::State& s) { run(s, Policy::kOwner); }
void BM_CooperativeRule(benchmark::State& s) {
  run(s, Policy::kCooperative);
}

BENCHMARK(BM_SerialRule)->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_OwnerRule)->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_CooperativeRule)->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace

#include "bench_harness.hpp"
COOP_BENCH_MAIN("e3")
