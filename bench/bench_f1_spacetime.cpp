// F1 — Figure 1, the space-time matrix.
//
// Reproduces the paper's groupware classification as measurements: one
// session per quadrant, same workload (two participants exchanging 200
// shared-workspace updates), infrastructure chosen by the quadrant's
// recommendations (link regime, ordering, awareness digest cadence).
//
// Reported series (one row per quadrant):
//   interact_ms_mean / interact_ms_p95 — update propagation to the peer
//   awareness_ms_p95                   — activity event -> peer awareness
//   msgs_per_update                    — protocol overhead
//
// Expected shape: co-located quadrants are an order of magnitude faster
// than remote ones; synchronous quadrants deliver awareness immediately
// while asynchronous ones batch it into digests (larger awareness_ms but
// fewer deliveries).
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "core/coop.hpp"

using namespace coop;

namespace {

struct QuadrantResult {
  util::Summary interact_us;
  util::Summary awareness_us;
  double msgs_per_update = 0;
};

QuadrantResult run_quadrant(groupware::Place place, groupware::Tempo tempo) {
  Platform platform(1234);
  auto& sim = platform.simulator();
  auto& net = platform.network();

  const groupware::SpaceTimeClass klass{place, tempo};
  net.set_default_link(klass.recommended_link());

  const std::vector<net::Address> members = {{1, 10}, {2, 10}};
  groups::ChannelConfig config;
  config.ordering = klass.recommended_ordering();
  // Retransmission timeout must exceed the link RTT or every datagram is
  // resent while its ack is still in flight.
  config.retransmit_timeout =
      4 * klass.recommended_link().latency + sim::msec(20);
  groups::GroupChannel a(net, members[0], 1, config);
  groups::GroupChannel b(net, members[1], 1, config);
  a.set_members(members);
  b.set_members(members);

  QuadrantResult result;
  b.on_deliver([&](const groups::Delivery& d) {
    result.interact_us.add(static_cast<double>(sim.now() - d.sent_at));
  });
  a.on_deliver([](const groups::Delivery&) {});

  awareness::SpatialModel space;
  space.place(1, {0, 0});
  space.place(2, {2, 0});
  awareness::AwarenessEngine engine(
      sim, space,
      {.full_threshold = tempo == groupware::Tempo::kSame ? 0.4 : 0.99,
       .digest_period = klass.recommended_digest_period(),
       .interest_decay = sim::sec(60)});
  engine.subscribe(2, [&](const awareness::ActivityEvent& e, double, bool) {
    result.awareness_us.add(static_cast<double>(sim.now() - e.at));
  });

  const int kUpdates = 200;
  // Asynchronous work spreads updates out (think time); synchronous work
  // is bursty.  Inter-update gaps are exponential — real activity is
  // aperiodic, and a periodic workload would alias against the digest
  // timer and distort the notification measurements.
  const double mean_gap_us =
      tempo == groupware::Tempo::kSame ? 50e3 : 10e6;
  sim::TimePoint when = 0;
  for (int i = 0; i < kUpdates; ++i) {
    when += static_cast<sim::Duration>(
        sim.rng().exponential(mean_gap_us));
    sim.schedule_at(when, [&, i] {
      a.broadcast("update " + std::to_string(i));
      engine.publish({1, "workspace", "edits", sim.now()});
    });
  }
  sim.run_until(when + sim::sec(60));
  result.msgs_per_update =
      static_cast<double>(net.stats().sent) / kUpdates;
  return result;
}

void run(benchmark::State& state, groupware::Place place,
         groupware::Tempo tempo) {
  QuadrantResult result;
  for (auto _ : state) result = run_quadrant(place, tempo);
  state.counters["interact_ms_mean"] = result.interact_us.mean() / 1000.0;
  state.counters["interact_ms_p95"] = result.interact_us.p95() / 1000.0;
  state.counters["awareness_ms_p95"] = result.awareness_us.p95() / 1000.0;
  state.counters["awareness_deliveries"] =
      static_cast<double>(result.awareness_us.count());
  state.counters["msgs_per_update"] = result.msgs_per_update;
}

void BM_FaceToFace(benchmark::State& state) {
  run(state, groupware::Place::kSame, groupware::Tempo::kSame);
}
void BM_Asynchronous(benchmark::State& state) {
  run(state, groupware::Place::kSame, groupware::Tempo::kDifferent);
}
void BM_SynchronousDistributed(benchmark::State& state) {
  run(state, groupware::Place::kDifferent, groupware::Tempo::kSame);
}
void BM_AsynchronousDistributed(benchmark::State& state) {
  run(state, groupware::Place::kDifferent, groupware::Tempo::kDifferent);
}

BENCHMARK(BM_FaceToFace)->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Asynchronous)->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SynchronousDistributed)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_AsynchronousDistributed)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

#include "bench_harness.hpp"
COOP_BENCH_MAIN("f1")
