// E6 — continuous-media QoS under congestion (§4.2.2-ii): end-to-end
// monitoring and dynamic re-negotiation vs no QoS management.
//
// A 25 fps / 4000 B video stream crosses a 1 Mbps access link.  From t=10s
// to t=40s a bulk transfer injects 600 kbps of cross traffic; the stream's
// 800 kbps no longer fits.  Three managements:
//
//   none        — the source blasts 25 fps regardless (open loop);
//   monitor     — violations are detected and counted but nothing reacts
//                 (monitoring without management);
//   adaptive    — the full loop: monitor verdicts drive media scaling
//                 down during congestion and probe back up after;
//   managed     — the mgmt::QosManager control plane supervises the
//                 binding: same AIMD loop, but every transition is
//                 recorded in registry metrics (mgmt.qos.video.*) and
//                 kStream trace events.
//
// Reported series: mean latency during congestion, late frames, monitor
// violations, fps at the end.
//
// Expected shape: with no management latency grows unboundedly (queueing)
// and most frames are late; the adaptive loop holds latency near the
// bound by sacrificing frame rate, then recovers to 25 fps.
#include <benchmark/benchmark.h>

#include "core/coop.hpp"

using namespace coop;

namespace {

constexpr sim::Duration kRunTime = sim::sec(70);
constexpr sim::Duration kCongestStart = sim::sec(10);
constexpr sim::Duration kCongestEnd = sim::sec(40);

streams::QosSpec video() {
  return {.fps = 25, .frame_bytes = 4000,
          .latency_bound = sim::msec(200),
          .jitter_bound = sim::msec(50),
          .min_fps = 5};
}

struct Result {
  double mean_latency_congested_ms = 0;
  double late_frames = 0;
  double violations = 0;
  double final_fps = 0;
  double frames_delivered = 0;
};

enum class Management { kNone, kMonitorOnly, kAdaptive, kManaged };

Result run_qos(Management mgmt) {
  Platform platform(13);
  auto& sim = platform.simulator();
  auto& net = platform.network();
  net.set_default_link({.latency = sim::msec(20), .jitter = sim::msec(2),
                        .bandwidth_bps = 1e6, .loss = 0.0});

  streams::MediaSource src(sim, 1, video());
  streams::StreamBinding binding(net, src, {1, 1}, net::Address{2, 1});
  streams::MediaSink sink(net, {2, 1});

  streams::QosManager qos_mgr(10e6);
  std::unique_ptr<streams::QosMonitor> monitor;
  std::unique_ptr<streams::QosAdaptor> adaptor;
  std::unique_ptr<mgmt::QosManager> plane;
  if (mgmt != Management::kNone) {
    monitor = std::make_unique<streams::QosMonitor>(sim, sink, video());
    if (mgmt == Management::kAdaptive) {
      adaptor = std::make_unique<streams::QosAdaptor>(*monitor, qos_mgr,
                                                      src, video());
    } else if (mgmt == Management::kManaged) {
      plane = std::make_unique<mgmt::QosManager>(sim, platform.obs());
      plane->manage("video", *monitor, src, video());
    }
  }

  // Measure latency of frames arriving during the congestion window.
  util::Summary congested_latency;
  double late = 0;
  sink.on_frame([&](const streams::Frame&, sim::Duration latency) {
    if (sim.now() >= kCongestStart && sim.now() < kCongestEnd + sim::sec(5))
      congested_latency.add(static_cast<double>(latency));
    if (latency > video().latency_bound) late += 1;
  });

  // Cross traffic: 600 kbps in 15 kB bursts every 200 ms.
  const int bursts =
      static_cast<int>((kCongestEnd - kCongestStart) / sim::msec(200));
  for (int i = 0; i < bursts; ++i) {
    sim.schedule_at(kCongestStart + i * sim::msec(200), [&net] {
      net::Message chunk{.src = {1, 9}, .dst = {2, 9}, .payload = {}};
      chunk.wire_size = 15'000;
      net.send(std::move(chunk));
    });
  }

  src.start();
  sim.run_until(kRunTime);

  Result r;
  r.mean_latency_congested_ms = congested_latency.mean() / 1000.0;
  r.late_frames = late;
  r.violations =
      monitor ? static_cast<double>(monitor->violations()) : -1;
  r.final_fps = src.fps();
  r.frames_delivered = static_cast<double>(sink.frames_received());
  return r;
}

void run(benchmark::State& state, Management mgmt) {
  Result r;
  for (auto _ : state) r = run_qos(mgmt);
  state.counters["congested_latency_ms"] = r.mean_latency_congested_ms;
  state.counters["late_frames"] = r.late_frames;
  state.counters["violations"] = r.violations;
  state.counters["final_fps"] = r.final_fps;
  state.counters["frames_delivered"] = r.frames_delivered;
}

void BM_NoManagement(benchmark::State& s) { run(s, Management::kNone); }
void BM_MonitorOnly(benchmark::State& s) {
  run(s, Management::kMonitorOnly);
}
void BM_AdaptiveRenegotiation(benchmark::State& s) {
  run(s, Management::kAdaptive);
}
void BM_ManagedPlane(benchmark::State& s) { run(s, Management::kManaged); }

BENCHMARK(BM_NoManagement)->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_MonitorOnly)->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_AdaptiveRenegotiation)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ManagedPlane)->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace

#include "bench_harness.hpp"
COOP_BENCH_MAIN("e6")
