// E8 — group communication and group RPC at scale (§4.2.2-iv).
//
// Part 1: reliable multicast delivery latency vs group size for the three
// ordering guarantees (FIFO, causal, total), on a jittery LAN.  One
// member broadcasts 100 updates; we record the time until each *other*
// member delivers.
//
// Part 2: group RPC (camera-start style invocation) with the kAll policy
// and a 150 ms real-time deadline, sweeping group size: deadline miss
// rate and completion latency.
//
// Expected shape: total order pays the sequencer indirection (≈ one extra
// hop for non-sequencer senders) but stays flat-ish with size on
// multicast fabric; deadline misses grow with group size because the
// slowest of N replies decides (max-of-N distributions).
#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <vector>

#include "core/coop.hpp"

using namespace coop;

namespace {

struct McastResult {
  util::Summary latency_us;
  double msgs_per_delivery = 0;
};

McastResult run_mcast(groups::Ordering ordering, int n_members) {
  Platform platform(29);
  auto& sim = platform.simulator();
  auto& net = platform.network();
  net.set_default_link({.latency = sim::msec(2), .jitter = sim::msec(1),
                        .bandwidth_bps = 100e6, .loss = 0.01});

  std::vector<net::Address> addrs;
  for (int i = 0; i < n_members; ++i)
    addrs.push_back({static_cast<net::NodeId>(i + 1), 10});
  groups::ChannelConfig config{.ordering = ordering,
                               .retransmit_timeout = sim::msec(30),
                               .max_retransmits = 20,
                               .local_echo = true};
  std::vector<std::unique_ptr<groups::GroupChannel>> members;
  McastResult result;
  for (int i = 0; i < n_members; ++i) {
    members.push_back(std::make_unique<groups::GroupChannel>(
        net, addrs[static_cast<std::size_t>(i)], 5, config));
  }
  std::uint64_t deliveries = 0;
  for (int i = 0; i < n_members; ++i) {
    members[static_cast<std::size_t>(i)]->set_members(addrs);
    const bool is_sender = i == 1;  // non-sequencer sender (worst case)
    members[static_cast<std::size_t>(i)]->on_deliver(
        [&, is_sender](const groups::Delivery& d) {
          ++deliveries;
          if (!is_sender)
            result.latency_us.add(static_cast<double>(sim.now() - d.sent_at));
        });
  }
  const int kUpdates = 100;
  for (int u = 0; u < kUpdates; ++u) {
    sim.schedule_at(u * sim::msec(40), [&, u] {
      members[1]->broadcast("u" + std::to_string(u));
    });
  }
  sim.run();
  result.msgs_per_delivery =
      deliveries > 0
          ? static_cast<double>(net.stats().sent) /
                static_cast<double>(deliveries)
          : 0;
  return result;
}

void run_mcast_bm(benchmark::State& state, groups::Ordering ordering) {
  McastResult r;
  for (auto _ : state)
    r = run_mcast(ordering, static_cast<int>(state.range(0)));
  state.counters["members"] = static_cast<double>(state.range(0));
  state.counters["deliver_ms_mean"] = r.latency_us.mean() / 1000.0;
  state.counters["deliver_ms_p95"] = r.latency_us.p95() / 1000.0;
  state.counters["msgs_per_delivery"] = r.msgs_per_delivery;
}

void BM_Multicast_Fifo(benchmark::State& s) {
  run_mcast_bm(s, groups::Ordering::kFifo);
}
void BM_Multicast_Causal(benchmark::State& s) {
  run_mcast_bm(s, groups::Ordering::kCausal);
}
void BM_Multicast_Total(benchmark::State& s) {
  run_mcast_bm(s, groups::Ordering::kTotal);
}

// --- group RPC with deadline ------------------------------------------------

void BM_GroupRpc_DeadlineMissRate(benchmark::State& state) {
  const auto n = static_cast<int>(state.range(0));
  double miss_rate = 0, latency_ms = 0;
  for (auto _ : state) {
    Platform platform(31);
    auto& sim = platform.simulator();
    auto& net = platform.network();
    net.set_default_link({.latency = sim::msec(20), .jitter = sim::msec(15),
                          .bandwidth_bps = 10e6, .loss = 0.01});
    std::vector<std::unique_ptr<rpc::RpcServer>> cameras;
    std::vector<net::Address> targets;
    for (int i = 0; i < n; ++i) {
      cameras.push_back(std::make_unique<rpc::RpcServer>(
          net, net::Address{static_cast<net::NodeId>(i + 10), 1}));
      cameras.back()->register_method("start", [](const std::string&) {
        return rpc::HandlerResult::success("rolling");
      });
      targets.push_back({static_cast<net::NodeId>(i + 10), 1});
    }
    rpc::RpcClient client(net, {1, 1});
    rpc::GroupInvoker invoker(client);
    int misses = 0;
    util::Summary lat;
    const int kCalls = 200;
    for (int c = 0; c < kCalls; ++c) {
      sim.schedule_at(c * sim::msec(500), [&] {
        invoker.invoke(targets, "start", "",
                       [&](const rpc::GroupResult& r) {
                         if (r.deadline_hit || !r.satisfied) ++misses;
                         lat.add(static_cast<double>(r.latency));
                       },
                       {.policy = rpc::ReplyPolicy::kAll,
                        .deadline = sim::msec(150),
                        .per_call = {.timeout = sim::msec(120),
                                     .retries = 1}});
      });
    }
    sim.run();
    miss_rate = static_cast<double>(misses) / kCalls;
    latency_ms = lat.mean() / 1000.0;
  }
  state.counters["members"] = static_cast<double>(n);
  state.counters["miss_rate"] = miss_rate;
  state.counters["latency_ms_mean"] = latency_ms;
}

BENCHMARK(BM_Multicast_Fifo)
    ->Arg(2)->Arg(4)->Arg(8)->Arg(16)
    ->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Multicast_Causal)
    ->Arg(2)->Arg(4)->Arg(8)->Arg(16)
    ->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Multicast_Total)
    ->Arg(2)->Arg(4)->Arg(8)->Arg(16)
    ->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_GroupRpc_DeadlineMissRate)
    ->Arg(2)->Arg(4)->Arg(8)->Arg(16)
    ->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace

#include "bench_harness.hpp"
COOP_BENCH_MAIN("e8")
