// E10 — workflow (§3.2.1 vs §4.1): the speech-act conversation engine and
// Domino-style procedures, including the *rigidity* measurement behind
// the paper's Co-ordinator critique.
//
// Part 1: conversation engine throughput — 500 conversations for action
// with human-scale act delays; completion latency distribution.
//
// Part 2: rigidity — the same conversations driven by actors who deviate
// from the prescribed loop with probability p (answering out of turn,
// acting for the other party).  The engine rejects those acts; we report
// the rejected-act rate and the completion-rate degradation.  This is the
// cost of "overly prescriptive languages" made measurable.
//
// Part 3: procedure routing — a five-step office procedure with a
// parallel branch, 200 instances; completion latency vs an ad-hoc
// message-passing baseline (same steps, no engine: participants just
// mail each other, modelled as the sum of the same step delays without
// join bookkeeping).
//
// Expected shape: throughput is bounded by the prescribed loop length;
// rejected acts grow linearly with deviation probability while completed
// loops fall — structure and flexibility trade off exactly as §4.1 says.
#include <benchmark/benchmark.h>

#include <functional>
#include <string>

#include "core/coop.hpp"

using namespace coop;

namespace {

constexpr double kActDelayMeanMs = 2000.0;

void BM_ConversationThroughput(benchmark::State& state) {
  double completed = 0, latency_p95_ms = 0;
  for (auto _ : state) {
    Platform platform(51);
    auto& sim = platform.simulator();
    workflow::ConversationManager cm(sim);
    const int kLoops = 500;
    for (int i = 0; i < kLoops; ++i) {
      sim.schedule_at(i * sim::msec(100), [&] {
        const auto id = cm.begin(1, 2, "task");
        auto delay = [&] {
          return static_cast<sim::Duration>(
              sim.rng().exponential(kActDelayMeanMs) * 1000);
        };
        sim::TimePoint t = sim.now();
        t += delay();
        sim.schedule_at(t, [&cm, id] {
          cm.act(id, workflow::Act::kPromise, 2);
        });
        t += delay();
        sim.schedule_at(t, [&cm, id] {
          cm.act(id, workflow::Act::kReport, 2);
        });
        t += delay();
        sim.schedule_at(t, [&cm, id] {
          cm.act(id, workflow::Act::kAccept, 1);
        });
      });
    }
    sim.run();
    completed = static_cast<double>(cm.completed());
    latency_p95_ms = cm.completion_latency().p95() / 1000.0;
  }
  state.counters["completed"] = completed;
  state.counters["completion_p95_ms"] = latency_p95_ms;
}

void BM_Rigidity_DeviationCost(benchmark::State& state) {
  const double p_deviate = static_cast<double>(state.range(0)) / 100.0;
  double completed = 0, rejected = 0;
  for (auto _ : state) {
    Platform platform(53);
    auto& sim = platform.simulator();
    workflow::ConversationManager cm(sim);
    const int kLoops = 500;
    for (int i = 0; i < kLoops; ++i) {
      sim.schedule_at(i * sim::msec(100), [&] {
        const auto id = cm.begin(1, 2, "task");
        // Each step: with probability p the actor does something the
        // prescribed model forbids (and the engine rejects); the actor
        // then has to do it "properly" anyway.
        auto step = [&, id](workflow::Act act, workflow::ClientId actor,
                            sim::Duration at) {
          sim.schedule_at(at, [&cm, &sim, id, act, actor, p_deviate] {
            if (sim.rng().bernoulli(p_deviate)) {
              // Deviation: the WRONG party tries to drive the loop.
              cm.act(id, act, actor == 1 ? 2u : 1u);
            }
            cm.act(id, act, actor);
          });
        };
        const auto base = sim.now();
        step(workflow::Act::kPromise, 2, base + sim::sec(2));
        step(workflow::Act::kReport, 2, base + sim::sec(4));
        step(workflow::Act::kAccept, 1, base + sim::sec(6));
      });
    }
    sim.run();
    completed = static_cast<double>(cm.completed());
    rejected = static_cast<double>(cm.rejected_acts());
  }
  state.counters["deviate_pct"] = static_cast<double>(state.range(0));
  state.counters["completed"] = completed;
  state.counters["rejected_acts"] = rejected;
}

void BM_ProcedureRouting(benchmark::State& state) {
  double finished = 0, latency_p95_ms = 0;
  for (auto _ : state) {
    Platform platform(57);
    auto& sim = platform.simulator();
    workflow::ProcedureEngine engine(sim);
    engine.assign_role(1, "employee");
    engine.assign_role(2, "clerk");
    engine.assign_role(3, "manager");
    engine.assign_role(4, "finance");
    workflow::ProcedureDef def("expense-claim");
    def.add_step({"submit", "employee", {"check"}});
    def.add_step({"check", "clerk", {"approve", "audit"}});
    def.add_step({"approve", "manager", {"pay"}});
    def.add_step({"audit", "clerk", {"pay"}});
    def.add_step({"pay", "finance", {}});
    def.set_start({"submit"});

    // Whenever a step activates, its performer completes it after a
    // human-scale delay — the engine's activation callback IS the work
    // list that drives people.
    engine.on_activate([&](std::uint64_t instance, const std::string& step) {
      const workflow::ClientId actor =
          step == "submit" ? 1 : (step == "approve" ? 3
                                  : step == "pay" ? 4 : 2);
      sim.schedule_after(
          static_cast<sim::Duration>(
              sim.rng().exponential(kActDelayMeanMs) * 1000),
          [&engine, instance, step, actor] {
            engine.complete(instance, step, actor);
          });
    });

    const int kInstances = 200;
    for (int i = 0; i < kInstances; ++i) {
      sim.schedule_at(i * sim::msec(200), [&] { engine.start(def); });
    }
    sim.run();
    finished = static_cast<double>(engine.finished_count());
    latency_p95_ms = engine.completion_latency().p95() / 1000.0;
  }
  state.counters["finished"] = finished;
  state.counters["completion_p95_ms"] = latency_p95_ms;
}

BENCHMARK(BM_ConversationThroughput)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Rigidity_DeviationCost)
    ->Arg(0)->Arg(10)->Arg(30)->Arg(50)
    ->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ProcedureRouting)->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace

#include "bench_harness.hpp"
COOP_BENCH_MAIN("e10")
