// R4 — failover soak: no single point of failure in session membership
// and total order.
//
// A seed x scenario matrix drives a five-participant SessionGroup (total
// order, failover replay) plus its membership coordinator through the
// failure modes §4.2.2 warns about: the coordinator crashing, the
// coordinator crash-restarting and recovering from survivor summaries,
// the total-order sequencer crashing, both dying in the same incident,
// an asymmetric partition that strands the coordinator AND the sequencer
// in the minority, and a member flapping in and out of the group.
//
// Every run feeds a fault::Invariants collector and the binary exits
// non-zero if ANY run violates a safety invariant:
//   * zero acked-broadcast loss — a broadcast the originator saw
//     committed (delivered back to itself) reaches every core survivor,
//     even across a simultaneous sequencer+coordinator crash;
//   * total-order agreement — core survivors' delivery logs are
//     byte-identical at quiesce;
//   * exactly one active coordinator per primary partition — no split
//     brain, no headless group;
//   * strictly monotone view ids at every member across failover.
// Failover latency (fault injection -> last core member installs a
// higher view) is aggregated into failover.convergence_us.  Same seed =>
// byte-identical artifacts (the wall_ms line excluded).
//
// Expected shape: zero violations on every seed; convergence is
// dominated by the coordinator lease (700 ms) plus the claimant's rank
// stagger for crash scenarios, and by the failure detector (350 ms) when
// only the sequencer dies.
#include <benchmark/benchmark.h>

#include <array>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "core/coop.hpp"

using namespace coop;

namespace {

constexpr const char* kScenarioNames[] = {"coord_crash",    "coord_restart",
                                          "seq_crash",      "dual_crash",
                                          "partition_heal", "member_flap"};
constexpr int kScenarios = 6;
constexpr int kNodes = 5;

std::uint64_t g_total_violations = 0;

// Members that are never crashed or partitioned away in each scenario;
// agreement and zero-loss are asserted over exactly this set.
std::set<net::NodeId> core_of(int scenario) {
  switch (scenario) {
    case 2:  // seq_crash: node 1 dies
    case 3:  // dual_crash: nodes 100 + 1 die
    case 4:  // partition_heal: node 1 strands with the coordinator
      return {2, 3, 4, 5};
    case 5:  // member_flap: node 5 flaps
      return {1, 2, 3, 4};
    default:  // coordinator-only faults: every participant survives
      return {1, 2, 3, 4, 5};
  }
}

struct RunOutcome {
  std::vector<std::string> violations;
  double convergence_us = -1.0;  ///< fault -> all core on a higher view
  std::uint64_t acked = 0;
  std::uint64_t delivered = 0;
  std::uint64_t replayed = 0;
  std::uint64_t lost = 0;
  std::uint64_t phantoms = 0;
};

RunOutcome run_failover(int scenario, std::uint64_t seed) {
  obs::Obs local;  // per-run sink so nothing leaks across runs
  Platform platform(seed, &local);
  auto& sim = platform.simulator();
  auto& net = platform.network();
  net.set_default_link({.latency = sim::msec(3), .jitter = sim::msec(1),
                        .bandwidth_bps = 10e6, .loss = 0.0});

  fault::Invariants inv;
  RunOutcome out;
  const std::set<net::NodeId> core = core_of(scenario);

  groups::MembershipConfig mcfg;
  mcfg.enable_failover = true;
  mcfg.timer_jitter = 0.2;  // desynchronized timers, still seed-reproducible
  groups::ChannelConfig ccfg;
  ccfg.ordering = groups::Ordering::kTotal;
  ccfg.retransmit_timeout = sim::msec(50);
  ccfg.max_retransmits = 100;  // requests must outlive a ~1.5 s failover

  const net::Address coord_addr{100, 1};
  auto coord =
      std::make_unique<groups::MembershipCoordinator>(net, coord_addr, mcfg);

  struct Part {
    std::unique_ptr<groupware::SessionGroup> sg;
    std::vector<std::string> log;
    std::vector<std::pair<sim::TimePoint, std::uint64_t>> installed;
  };
  std::vector<net::NodeId> roster;
  for (net::NodeId n = 1; n <= kNodes; ++n) roster.push_back(n);
  std::array<Part, kNodes> parts;
  for (net::NodeId n = 1; n <= kNodes; ++n) {
    Part& p = parts[static_cast<std::size_t>(n - 1)];
    p.sg = std::make_unique<groupware::SessionGroup>(
        net, n, roster, coord_addr, /*group=*/42,
        groupware::SessionGroup::Ports(), mcfg, ccfg);
    const bool is_core = core.count(n) != 0;
    const std::string self_prefix = "m" + std::to_string(n) + "-";
    p.sg->on_deliver([&p, &inv, &out, n, is_core,
                      self_prefix](const groups::Delivery& d) {
      p.log.push_back(d.payload);
      if (!is_core) return;
      ++out.delivered;
      inv.record_broadcast_delivered("n" + std::to_string(n), d.payload);
      // Self-delivery of a core member's own broadcast == the group
      // committed it: from here on, losing it anywhere is a violation.
      if (d.payload.rfind(self_prefix, 0) == 0) {
        ++out.acked;
        inv.record_broadcast_acked(d.payload);
      }
    });
    p.sg->on_view([&p, &inv, &sim, n](const groups::View& v) {
      p.installed.emplace_back(sim.now(), v.id);
      inv.record_view_installed("n" + std::to_string(n), v.id);
    });
    p.sg->join();
  }

  // Workload: ten staggered rounds through the fault window, then a
  // post-failover liveness round — all five sites broadcasting.
  const auto round_at = [&](sim::TimePoint t, int i) {
    for (net::NodeId n = 1; n <= kNodes; ++n) {
      sim.schedule_at(t, [&parts, n, i] {
        Part& p = parts[static_cast<std::size_t>(n - 1)];
        if (p.sg) {
          p.sg->broadcast("m" + std::to_string(n) + "-" + std::to_string(i));
        }
      });
    }
  };
  for (int i = 0; i < 10; ++i) round_at(sim::msec(200 + 150 * i), i);
  round_at(sim::sec(6), 99);

  // Fault schedule: seed-jittered times, drawn up front from a stream
  // independent of the simulator's so the fabric is unperturbed.
  sim::Rng fault_rng(seed * 7919 + static_cast<std::uint64_t>(scenario));
  const sim::TimePoint t_fault =
      sim::msec(900 + fault_rng.uniform_int(0, 400));
  const sim::TimePoint t_heal =
      t_fault + sim::msec(1800 + fault_rng.uniform_int(0, 400));
  const auto kill_coord = [&] {
    net.crash(100);
    coord.reset();  // fail-stop: the process dies with its state
  };
  const auto kill_seq = [&] {
    net.crash(1);
    parts[0].sg.reset();
  };
  switch (scenario) {
    case 0:
      sim.schedule_at(t_fault, kill_coord);
      break;
    case 1:
      sim.schedule_at(t_fault, kill_coord);
      // Back before any member lease (700 ms) expires: the restarted
      // coordinator must recover the view from REJOIN summaries alone.
      sim.schedule_at(t_fault + sim::msec(250), [&] {
        net.recover(100);
        groups::MembershipConfig rcfg = mcfg;
        rcfg.recover_on_start = true;
        coord = std::make_unique<groups::MembershipCoordinator>(
            net, coord_addr, rcfg);
      });
      break;
    case 2:
      sim.schedule_at(t_fault, kill_seq);
      break;
    case 3:
      sim.schedule_at(t_fault, [&] {
        kill_coord();
        kill_seq();
      });
      break;
    case 4:
      sim.schedule_at(t_fault,
                      [&] { net.partition({100, 1}, {2, 3, 4, 5}); });
      sim.schedule_at(t_heal, [&] { net.heal_partition(); });
      break;
    case 5:
      for (int c = 0; c < 3; ++c) {
        sim.schedule_at(t_fault + sim::msec(800) * c,
                        [&net] { net.crash(5); });
        sim.schedule_at(t_fault + sim::msec(800) * c + sim::msec(350),
                        [&net] { net.recover(5); });
      }
      break;
    default:
      break;
  }

  sim.run_until(sim::sec(8));

  // --- evidence + checks.
  // Exactly one active coordinator per primary partition: feed every
  // instance that still exists — the original (or its restarted
  // incarnation) and every member-hosted promotion.
  if (coord) {
    inv.record_coordinator(scenario == 1 ? "restarted" : "orig",
                           coord->active());
  }
  for (net::NodeId n = 1; n <= kNodes; ++n) {
    const Part& p = parts[static_cast<std::size_t>(n - 1)];
    if (!p.sg) continue;
    if (auto* hosted = p.sg->member().hosted_coordinator()) {
      inv.record_coordinator("hosted_n" + std::to_string(n),
                             hosted->active());
    }
  }

  // Total-order agreement: core logs byte-identical at quiesce.
  const Part* ref = nullptr;
  for (const net::NodeId n : core) {
    const Part& p = parts[static_cast<std::size_t>(n - 1)];
    if (!ref) {
      ref = &p;
    } else if (p.log != ref->log) {
      inv.report_violation("total order divergence: core member n" +
                           std::to_string(n) + " delivered " +
                           std::to_string(p.log.size()) +
                           " messages, disagreeing with the reference log (" +
                           std::to_string(ref->log.size()) + ")");
    }
  }

  // Failover convergence: every core member must end up past its
  // pre-fault view; latency is until the LAST of them gets there.
  sim::TimePoint worst = t_fault;
  std::size_t advanced = 0;
  bool all_converged = true;
  for (const net::NodeId n : core) {
    const Part& p = parts[static_cast<std::size_t>(n - 1)];
    std::uint64_t before = 0;
    for (const auto& [t, id] : p.installed) {
      if (t <= t_fault) before = std::max(before, id);
    }
    bool converged = false;
    for (const auto& [t, id] : p.installed) {
      if (t > t_fault && id > before) {
        worst = std::max(worst, t);
        converged = true;
        ++advanced;
        break;
      }
    }
    if (!converged) {
      all_converged = false;
      // A flap the member recovers from inside the failure timeout never
      // triggers a view change at all — that is absorption, not a stall.
      // Partial advancement (some core members saw a new view, others
      // never did) is a stall in every scenario.
      if (scenario != 5) {
        inv.report_violation("stuck view: core member n" + std::to_string(n) +
                             " never installed a view past the fault");
      }
    }
  }
  if (scenario == 5 && !all_converged && advanced > 0) {
    inv.report_violation("stuck view: only " + std::to_string(advanced) +
                         "/" + std::to_string(core.size()) +
                         " core members installed the flap's view change");
  }
  if (all_converged) {
    out.convergence_us = static_cast<double>(worst - t_fault);
  }

  for (const net::NodeId n : core) {
    const auto& st =
        parts[static_cast<std::size_t>(n - 1)].sg->channel().stats();
    out.replayed += st.failover_replayed;
    out.lost += st.failover_lost;
    out.phantoms += st.phantom_commits;
  }
  if (out.lost > 0) {
    inv.report_violation("loss window open: " + std::to_string(out.lost) +
                         " acked broadcast(s) counted lost at core members "
                         "despite failover replay");
  }

  inv.check_all();
  out.violations = inv.violations();
  return out;
}

void BM_FailoverSoak(benchmark::State& state) {
  const int scenario = static_cast<int>(state.range(0));
  const auto seed = static_cast<std::uint64_t>(state.range(1));
  RunOutcome out;
  for (auto _ : state) out = run_failover(scenario, seed);

  obs::Obs& ambient = *obs::default_obs();
  if (out.convergence_us >= 0.0) {
    ambient.metrics.summary("failover.convergence_us")
        .add(out.convergence_us);
    ambient.metrics
        .summary(std::string("failover.convergence_us.") +
                 kScenarioNames[scenario])
        .add(out.convergence_us);
  }
  ambient.metrics.counter("failover.soak.runs").inc();
  ambient.metrics.counter("failover.soak.acked").inc(out.acked);
  ambient.metrics.counter("failover.soak.delivered").inc(out.delivered);
  ambient.metrics.counter("failover.soak.replayed").inc(out.replayed);
  ambient.metrics.counter("failover.soak.lost").inc(out.lost);
  ambient.metrics.counter("failover.soak.phantom_commits").inc(out.phantoms);
  if (!out.violations.empty()) {
    ambient.metrics.counter("fault.invariant_violations")
        .inc(out.violations.size());
    g_total_violations += out.violations.size();
    for (const std::string& v : out.violations) {
      std::fprintf(stderr, "[%s seed %llu] INVARIANT VIOLATION: %s\n",
                   kScenarioNames[scenario],
                   static_cast<unsigned long long>(seed), v.c_str());
    }
  }
  state.counters["violations"] = static_cast<double>(out.violations.size());
  state.counters["convergence_ms"] = out.convergence_us / 1000.0;
  state.counters["acked"] = static_cast<double>(out.acked);
  state.counters["replayed"] = static_cast<double>(out.replayed);
  state.counters["lost"] = static_cast<double>(out.lost);
  state.SetLabel(kScenarioNames[scenario]);
}

BENCHMARK(BM_FailoverSoak)
    ->ArgsProduct({benchmark::CreateDenseRange(0, kScenarios - 1, 1),
                   benchmark::CreateDenseRange(1, 20, 1)})
    ->Iterations(1);

}  // namespace

// COOP_BENCH_MAIN with one addition: a non-zero exit code when any run
// violated an invariant, so CI fails on the soak, not on a diff.
int main(int argc, char** argv) {
  coop::obs::Obs obs;
  coop::obs::ScopedDefaultObs ambient(&obs);
  obs.meta.knobs["tag"] = "r4_failover";
  obs.meta.knobs["trace_cap"] = std::to_string(obs.tracer.capacity());
  {
    std::string args;
    for (int i = 1; i < argc; ++i) {
      if (i > 1) args += ' ';
      args += argv[i];
    }
    if (!args.empty()) obs.meta.knobs["argv"] = args;
  }
  const auto wall_start = std::chrono::steady_clock::now();
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  obs.meta.wall_ms = std::chrono::duration<double, std::milli>(
                         std::chrono::steady_clock::now() - wall_start)
                         .count();
  if (!coop::obs::write_bench_artifacts(obs, "r4_failover")) {
    std::fprintf(stderr, "warning: failed to write BENCH_r4_failover.*\n");
  }
  if (g_total_violations > 0) {
    std::fprintf(stderr,
                 "failover soak FAILED: %llu invariant violation(s)\n",
                 static_cast<unsigned long long>(g_total_violations));
    return 2;
  }
  return 0;
}
