#!/usr/bin/env bash
# Shard-parity gate: the sharded kernel must be indistinguishable from the
# serial differential oracle.
#
# Runs bench_e13_million_users's parity seed matrix (seeds x topologies —
# including a zero-lookahead topology that forces barrier-synchronized
# epochs — x shard counts {1,2,4,8}, each cell hashed against a serial
# run of the same scenario) plus the 10k space-time cell.  The binary
# exits non-zero on any hash/count divergence or lookahead violation, so
# the matrix itself is the assertion; on top of that the gate requires
# the BENCH artifact to reproduce byte-for-byte (modulo wall_ms) across
# two runs — the same determinism contract every other soak obeys.
#
# Usage:
#   scripts/shard_parity_gate.sh [--full] [build-dir]
#
#   --full     also run the 100k and 1M cells (several minutes; the
#              default keeps the gate CI-sized).
#   build-dir  tree containing bench/bench_e13_million_users
#              (default: build)
set -euo pipefail

cd "$(dirname "$0")/.."

FULL=0
BUILD_DIR="build"
for arg in "$@"; do
  case "${arg}" in
    --full) FULL=1 ;;
    *) BUILD_DIR="${arg}" ;;
  esac
done

BIN="$(pwd)/${BUILD_DIR}/bench/bench_e13_million_users"
if [[ ! -x "${BIN}" ]]; then
  echo "shard_parity_gate: ${BIN} not built" >&2
  exit 2
fi

FILTER="ParityMatrix|SpaceTime/10000$"
[[ "${FULL}" == "1" ]] && FILTER=".*"

run_a="$(mktemp -d)"
run_b="$(mktemp -d)"
trap 'rm -rf "${run_a}" "${run_b}"' EXIT

echo "shard_parity_gate: oracle matrix (filter: ${FILTER})"
(cd "${run_a}" && "${BIN}" --benchmark_filter="${FILTER}" >/dev/null)
(cd "${run_b}" && "${BIN}" --benchmark_filter="${FILTER}" >/dev/null)

if ! diff <(grep -v wall_ms "${run_a}/BENCH_e13_million_users.json") \
          <(grep -v wall_ms "${run_b}/BENCH_e13_million_users.json"); then
  echo "shard_parity_gate: artifact is not reproducible across runs" >&2
  exit 1
fi
# Keep one artifact where CI can pick it up.
cp "${run_a}"/BENCH_e13_million_users* "${BUILD_DIR}/" 2>/dev/null || true
echo "shard_parity_gate: sharded == serial across the matrix," \
     "artifact reproducible"
