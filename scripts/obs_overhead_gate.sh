#!/usr/bin/env bash
# Observability overhead gate.
#
# The obs plane's contract is "always on, never felt": with tracing
# compiled in and the sampler dropping everything (COOP_TRACE_SAMPLE=0,
# i.e. every record pays the hash-and-count path but nothing is stored),
# hot-path throughput must stay within OVERHEAD_MAX (default 3%) of the
# tracer-disabled baseline (COOP_TRACE=0, one predicted branch per
# record).
#
# Method: REPS (default 3) interleaved baseline/instrumented pairs of
# bench_t1_throughput on the same machine, best events/sec per driver on
# each side — best-of compares the least-perturbed run of each mode, and
# interleaving keeps thermal/CPU drift from biasing one side.  Outcome
# hashes must agree across every run of both modes: observability must
# never change simulated behaviour, only wall-clock cost.
#
# Usage:
#   scripts/obs_overhead_gate.sh [build-dir]   (default: build)
#
# Environment: OVERHEAD_MAX (fraction, default 0.03), REPS (default 3).
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
BIN="$(pwd)/${BUILD_DIR}/bench/bench_t1_throughput"
OVERHEAD_MAX="${OVERHEAD_MAX:-0.03}"
REPS="${REPS:-3}"

if [[ ! -x "${BIN}" ]]; then
  echo "obs_overhead_gate: ${BIN} not built" >&2
  exit 2
fi

workdir="$(mktemp -d)"
trap 'rm -rf "${workdir}"' EXIT

for rep in $(seq 1 "${REPS}"); do
  off="${workdir}/off_${rep}"
  on="${workdir}/on_${rep}"
  mkdir -p "${off}" "${on}"
  (cd "${off}" && COOP_TRACE=0 "${BIN}" >/dev/null)
  (cd "${on}" && COOP_TRACE_SAMPLE=0 "${BIN}" >/dev/null)
  echo "obs_overhead_gate: rep ${rep}/${REPS} done"
done

python3 - "${workdir}" "${REPS}" "${OVERHEAD_MAX}" <<'EOF'
import json, sys

workdir, reps, max_overhead = sys.argv[1], int(sys.argv[2]), float(sys.argv[3])

def load(mode):
    return [json.load(open(f"{workdir}/{mode}_{r}/T1_report.json"))
            for r in range(1, reps + 1)]

off_runs, on_runs = load("off"), load("on")
drivers = sorted(off_runs[0]["drivers"])
failed = False
for name in drivers:
    hashes = {r["drivers"][name]["hash"] for r in off_runs + on_runs}
    if len(hashes) != 1:
        print(f"FAIL {name}: outcome hashes diverge across modes/reps "
              f"({sorted(hashes)}) — instrumentation changed simulated "
              f"behaviour")
        failed = True
        continue
    best_off = max(r["drivers"][name]["events_per_sec"] for r in off_runs)
    best_on = max(r["drivers"][name]["events_per_sec"] for r in on_runs)
    overhead = 1.0 - best_on / best_off
    status = "ok" if overhead <= max_overhead else "FAIL"
    print(f"{status:4s} {name}: tracer-off {best_off:.0f} ev/s, "
          f"sampling-off {best_on:.0f} ev/s, overhead {overhead * 100:.2f}% "
          f"(max {max_overhead * 100:.1f}%)")
    if overhead > max_overhead:
        failed = True
sys.exit(1 if failed else 0)
EOF
