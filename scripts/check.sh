#!/usr/bin/env bash
# Tier-1 gate: the checks a change must pass before review.
#
#   1. Release-ish build + full ctest suite (the determinism and
#      correctness contract).
#   2. AddressSanitizer/UBSan build + tests (COOP_SANITIZE=ON), because
#      the ring tracer, hold-back queues and timer wheels are exactly the
#      kind of code that hides lifetime bugs.
#   3. Chaos soak: bench_r1_chaos runs the full seed x scenario matrix
#      (20 seeds x 4 scenarios) and exits non-zero on any invariant
#      violation; a second run must reproduce the artifact byte-for-byte
#      (wall-clock line excluded) or determinism has regressed.
#
# Usage: scripts/check.sh [--skip-sanitize]
#
# Build trees land in build-check/ and build-asan/ so the developer's
# own build/ directory is left alone.
set -euo pipefail

cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc 2>/dev/null || echo 2)}"
SKIP_SANITIZE=0
[[ "${1:-}" == "--skip-sanitize" ]] && SKIP_SANITIZE=1

run() {
  echo "+ $*"
  "$@"
}

echo "== tier-1: build + tests =="
run cmake -B build-check -S . -DCMAKE_BUILD_TYPE=Release
run cmake --build build-check -j "${JOBS}"
run ctest --test-dir build-check --output-on-failure -j "${JOBS}"

echo "== chaos soak: invariants + SLO rules across the seed matrix =="
# COOP_SLO_STRICT=1 upgrades the soak: rules (ack-rate floor, RTT p99
# ceiling) are evaluated per virtual-time window and any rule that
# overspends its breach budget or never recovers fails the run.
soak_a="$(mktemp -d)"
soak_b="$(mktemp -d)"
trap 'rm -rf "${soak_a}" "${soak_b}"' EXIT
bench_bin="$(pwd)/build-check/bench/bench_r1_chaos"
(cd "${soak_a}" && COOP_SLO_STRICT=1 run "${bench_bin}" >/dev/null)
(cd "${soak_b}" && COOP_SLO_STRICT=1 run "${bench_bin}" >/dev/null)
if ! diff <(grep -v wall_ms "${soak_a}/BENCH_r1_chaos.json") \
          <(grep -v wall_ms "${soak_b}/BENCH_r1_chaos.json"); then
  echo "chaos soak artifact is not reproducible across identical runs" >&2
  exit 1
fi
echo "chaos soak: clean, artifact reproducible"

echo "== durable soak: WAL + checkpoint recovery + anti-entropy =="
# --durable swaps the replicas for durable::DurableStore instances:
# crashes drop the unsynced tail (plus seeded torn garbage), restarts
# recover solely from checkpoint + log replay, and on top of the R1
# invariants the run proves a quiesce-and-recover identity, zero
# acked-op loss and a bounded WAL.  Same determinism contract.
(cd "${soak_a}" && COOP_SLO_STRICT=1 run "${bench_bin}" --durable >/dev/null)
(cd "${soak_b}" && COOP_SLO_STRICT=1 run "${bench_bin}" --durable >/dev/null)
if ! diff <(grep -v wall_ms "${soak_a}/BENCH_r1_durable.json") \
          <(grep -v wall_ms "${soak_b}/BENCH_r1_durable.json"); then
  echo "durable soak artifact is not reproducible across identical runs" >&2
  exit 1
fi
echo "durable soak: clean, artifact reproducible"

echo "== failover soak: coordinator/sequencer crash matrix + partitions =="
# bench_r4_failover drives a five-participant total-order session through
# six failure modes (coordinator crash, crash-restart recovery, sequencer
# crash, both at once, asymmetric partition + heal, flapping member) over
# 20 seeds each.  Every run asserts zero acked-broadcast loss, identical
# core delivery logs, exactly one active coordinator per primary
# partition, and strictly monotone view ids; the binary exits non-zero on
# any violation.  Same determinism contract as the other soaks.
failover_bin="$(pwd)/build-check/bench/bench_r4_failover"
(cd "${soak_a}" && run "${failover_bin}" >/dev/null)
(cd "${soak_b}" && run "${failover_bin}" >/dev/null)
if ! diff <(grep -v wall_ms "${soak_a}/BENCH_r4_failover.json") \
          <(grep -v wall_ms "${soak_b}/BENCH_r4_failover.json"); then
  echo "failover soak artifact is not reproducible across identical runs" >&2
  exit 1
fi
echo "failover soak: clean, artifact reproducible"

echo "== overload soak: goodput sweep + no-acked-shed + SLO rules =="
overload_bin="$(pwd)/build-check/bench/bench_r2_overload"
(cd "${soak_a}" && COOP_SLO_STRICT=1 run "${overload_bin}" >/dev/null)
(cd "${soak_b}" && COOP_SLO_STRICT=1 run "${overload_bin}" >/dev/null)
if ! diff <(grep -v wall_ms "${soak_a}/BENCH_r2_overload.json") \
          <(grep -v wall_ms "${soak_b}/BENCH_r2_overload.json"); then
  echo "overload soak artifact is not reproducible across identical runs" >&2
  exit 1
fi
echo "overload soak: clean, artifact reproducible"

echo "== awareness parity smoke: indexed fan-out == brute force =="
# bench_e12's parity mode replays the same seeded workload through the
# indexed and brute-force engines and exits non-zero if the delivery
# sequences or stats diverge; the artifact must also reproduce.
awareness_bin="$(pwd)/build-check/bench/bench_e12_awareness_scaling"
(cd "${soak_a}" && run "${awareness_bin}" \
    --benchmark_filter=Parity >/dev/null)
(cd "${soak_b}" && run "${awareness_bin}" \
    --benchmark_filter=Parity >/dev/null)
if ! diff <(grep -v wall_ms "${soak_a}/BENCH_e12_awareness.json") \
          <(grep -v wall_ms "${soak_b}/BENCH_e12_awareness.json"); then
  echo "awareness parity artifact is not reproducible across identical runs" >&2
  exit 1
fi
echo "awareness parity: deliveries identical, artifact reproducible"

echo "== shard parity: sharded kernel == serial differential oracle =="
# bench_e13_million_users replays the space-time-matrix workload through
# the sharded kernel (shard counts x seeds x topologies, including the
# zero-lookahead barrier mode) and the serial oracle; the binary exits
# non-zero on any divergence, and the gate additionally requires the
# artifact to reproduce byte-for-byte modulo wall_ms.
run scripts/shard_parity_gate.sh build-check

echo "== T1 throughput gate: hot-path speed + behaviour pin =="
# bench_t1_throughput re-runs the three hot-path drivers and the gate
# compares (a) their outcome hashes — any drift means simulated behaviour
# changed — and (b) machine-normalized events/sec against the recorded
# baseline (>20% regression fails).
run scripts/bench_t1_gate.sh build-check

echo "== obs overhead gate: instrumentation must stay under 3% =="
# Interleaved tracer-off vs sampling-off runs of the same drivers: the
# always-on observability plane may not cost more than 3% events/sec,
# and its outcome hashes must match the baseline's exactly.  5 reps
# because best-of needs a few samples to escape machine noise.
REPS="${OBS_GATE_REPS:-5}" run scripts/obs_overhead_gate.sh build-check

if [[ "${SKIP_SANITIZE}" == "1" ]]; then
  echo "== sanitizer pass skipped (--skip-sanitize) =="
  exit 0
fi

echo "== tier-2: ASan/UBSan build + tests =="
run cmake -B build-asan -S . -DCMAKE_BUILD_TYPE=Debug -DCOOP_SANITIZE=ON
run cmake --build build-asan -j "${JOBS}"
run ctest --test-dir build-asan --output-on-failure -j "${JOBS}"
asan_bench="$(pwd)/build-asan/bench/bench_r1_chaos"
(cd "${soak_a}" && run "${asan_bench}" >/dev/null)
(cd "${soak_a}" && run "${asan_bench}" --durable >/dev/null)
asan_failover="$(pwd)/build-asan/bench/bench_r4_failover"
(cd "${soak_a}" && run "${asan_failover}" >/dev/null)
asan_overload="$(pwd)/build-asan/bench/bench_r2_overload"
(cd "${soak_a}" && run "${asan_overload}" >/dev/null)
asan_awareness="$(pwd)/build-asan/bench/bench_e12_awareness_scaling"
(cd "${soak_a}" && run "${asan_awareness}" --benchmark_filter=Parity \
    >/dev/null)
run scripts/shard_parity_gate.sh build-asan

echo "== all checks passed =="
