#!/usr/bin/env bash
# T1 throughput regression gate.
#
# Runs bench_t1_throughput and enforces two invariants against the
# recorded baseline (bench/baselines/t1_baseline.json):
#
#   1. Simulated behaviour is IDENTICAL: each driver's outcome hash (an
#      FNV-1a fold over its delivery sequence and final counters) must
#      equal the baseline hash exactly.  Any mismatch means a change
#      altered virtual-time behaviour, which is never acceptable from a
#      performance patch.
#   2. Wall-clock throughput has not regressed: each driver's
#      machine-normalized events/sec (events/sec divided by the run's own
#      CPU calibration score, making slow CI boxes comparable to fast
#      dev machines) must stay >= MIN_RATIO (default 0.8) of baseline.
#
# Usage:
#   scripts/bench_t1_gate.sh [--record] [build-dir]
#
#   --record   re-record the baseline from the current build instead of
#              gating (use after an intentional, reviewed change to the
#              drivers or to simulated behaviour).
#   build-dir  tree containing bench/bench_t1_throughput (default: build)
#
# Environment: MIN_RATIO overrides the normalized-throughput floor.
set -euo pipefail

cd "$(dirname "$0")/.."

RECORD=0
BUILD_DIR="build"
for arg in "$@"; do
  case "${arg}" in
    --record) RECORD=1 ;;
    *) BUILD_DIR="${arg}" ;;
  esac
done

BASELINE="bench/baselines/t1_baseline.json"
BIN="$(pwd)/${BUILD_DIR}/bench/bench_t1_throughput"
MIN_RATIO="${MIN_RATIO:-0.8}"

if [[ ! -x "${BIN}" ]]; then
  echo "bench_t1_gate: ${BIN} not built" >&2
  exit 2
fi

workdir="$(mktemp -d)"
trap 'rm -rf "${workdir}"' EXIT
(cd "${workdir}" && "${BIN}" >/dev/null)

if [[ "${RECORD}" == "1" ]]; then
  cp "${workdir}/T1_report.json" "${BASELINE}"
  echo "bench_t1_gate: baseline re-recorded at ${BASELINE}"
  exit 0
fi

if [[ ! -f "${BASELINE}" ]]; then
  echo "bench_t1_gate: no baseline at ${BASELINE}; run with --record" >&2
  exit 2
fi

python3 - "${workdir}/T1_report.json" "${BASELINE}" "${MIN_RATIO}" <<'EOF'
import json, sys

report = json.load(open(sys.argv[1]))
base = json.load(open(sys.argv[2]))
min_ratio = float(sys.argv[3])

calib = report["calibration_mbps"]
base_calib = base["calibration_mbps"]
failed = False
print(f"bench_t1_gate: calibration {calib:.1f} MB/s "
      f"(baseline machine {base_calib:.1f} MB/s)")
for name, b in base["drivers"].items():
    d = report["drivers"][name]
    if d["hash"] != b["hash"]:
        print(f"FAIL {name}: outcome hash {d['hash']} != baseline "
              f"{b['hash']} — simulated behaviour changed")
        failed = True
        continue
    norm = d["events_per_sec"] / calib
    base_norm = b["events_per_sec"] / base_calib
    ratio = norm / base_norm
    status = "ok" if ratio >= min_ratio else "FAIL"
    print(f"{status:4s} {name}: {d['events_per_sec']:.0f} ev/s "
          f"({d['messages_per_sec']:.0f} msg/s), normalized {ratio:.2f}x "
          f"baseline (floor {min_ratio}x)")
    if ratio < min_ratio:
        failed = True
sys.exit(1 if failed else 0)
EOF
