// Tests for the membership service: joins, leaves, failure detection and
// reliable view dissemination over lossy links.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "groups/membership.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"

namespace coop::groups {
namespace {

constexpr net::Address kCoord{100, 1};

class MembershipTest : public ::testing::Test {
 protected:
  MembershipTest() : sim(5), net(sim), coord(net, kCoord) {}

  std::unique_ptr<MembershipMember> make_member(net::NodeId node) {
    return std::make_unique<MembershipMember>(net, net::Address{node, 1},
                                              kCoord);
  }

  sim::Simulator sim;
  net::Network net;
  MembershipCoordinator coord;
};

TEST_F(MembershipTest, JoinProducesViewContainingMember) {
  auto m = make_member(1);
  int views = 0;
  m->on_view([&](const View& v) {
    ++views;
    EXPECT_TRUE(v.contains({1, 1}));
  });
  m->join();
  sim.run_until(sim::msec(50));
  EXPECT_EQ(views, 1);
  ASSERT_TRUE(m->view().has_value());
  EXPECT_EQ(m->view()->members.size(), 1u);
  EXPECT_TRUE(m->joined());
}

TEST_F(MembershipTest, SecondJoinNotifiesBothMembers) {
  auto a = make_member(1);
  auto b = make_member(2);
  a->join();
  sim.run_until(sim::msec(50));
  b->join();
  sim.run_until(sim::msec(100));
  ASSERT_TRUE(a->view().has_value());
  ASSERT_TRUE(b->view().has_value());
  EXPECT_EQ(a->view()->members.size(), 2u);
  EXPECT_EQ(a->view()->id, b->view()->id);
  EXPECT_TRUE(a->view()->contains({2, 1}));
}

TEST_F(MembershipTest, GracefulLeaveRemovesMember) {
  auto a = make_member(1);
  auto b = make_member(2);
  a->join();
  b->join();
  sim.run_until(sim::msec(100));
  b->leave();
  sim.run_until(sim::msec(200));
  ASSERT_TRUE(a->view().has_value());
  EXPECT_EQ(a->view()->members.size(), 1u);
  EXPECT_FALSE(a->view()->contains({2, 1}));
  EXPECT_FALSE(b->joined());
}

TEST_F(MembershipTest, CrashedMemberIsDetectedByHeartbeatTimeout) {
  auto a = make_member(1);
  auto b = make_member(2);
  a->join();
  b->join();
  sim.run_until(sim::msec(100));
  EXPECT_EQ(coord.view().members.size(), 2u);
  net.crash(2);
  sim.run_until(sim::sec(2));
  EXPECT_EQ(coord.view().members.size(), 1u);
  ASSERT_TRUE(a->view().has_value());
  EXPECT_FALSE(a->view()->contains({2, 1}));
}

TEST_F(MembershipTest, DisconnectedMobileMemberIsEvictedAndRejoins) {
  auto a = make_member(1);
  a->join();
  sim.run_until(sim::msec(100));
  net.set_connectivity(1, net::Connectivity::kDisconnected);
  sim.run_until(sim::sec(2));
  EXPECT_EQ(coord.view().members.size(), 0u);
  net.set_connectivity(1, net::Connectivity::kFull);
  a->join();  // explicit rejoin after reconnection
  sim.run_until(sim::sec(3));
  EXPECT_EQ(coord.view().members.size(), 1u);
}

TEST_F(MembershipTest, ViewSurvivesLossyLinks) {
  net.set_default_link({.latency = sim::msec(5), .jitter = sim::msec(2),
                        .bandwidth_bps = 10e6, .loss = 0.30});
  // A lossy WAN needs a laxer failure detector, or members flap.
  MembershipConfig cfg;
  cfg.failure_timeout = sim::msec(900);
  const net::Address coord2_addr{101, 1};
  MembershipCoordinator coord2(net, coord2_addr, cfg);
  MembershipMember a(net, {1, 1}, coord2_addr, cfg);
  MembershipMember b(net, {2, 1}, coord2_addr, cfg);
  MembershipMember c(net, {3, 1}, coord2_addr, cfg);
  a.join();
  b.join();
  c.join();
  // Join-retry plus sweep-based view re-send must converge despite 30%
  // loss on every datagram.
  sim.run_until(sim::sec(3));
  ASSERT_TRUE(a.view().has_value());
  ASSERT_TRUE(b.view().has_value());
  ASSERT_TRUE(c.view().has_value());
  EXPECT_EQ(coord2.view().members.size(), 3u);
  EXPECT_EQ(a.view()->id, coord2.view().id);
  EXPECT_EQ(b.view()->id, coord2.view().id);
  EXPECT_EQ(c.view()->id, coord2.view().id);
}

TEST_F(MembershipTest, LostJoinDatagramIsRetried) {
  // Force the very first JOIN to be lost: 100% loss initially, healed
  // shortly after; the join-retry timer must re-send.
  net.set_default_link({.latency = sim::msec(1), .jitter = 0,
                        .bandwidth_bps = 10e6, .loss = 1.0});
  auto a = make_member(1);
  a->join();
  sim.run_until(sim::msec(50));
  net.set_default_link({.latency = sim::msec(1), .jitter = 0,
                        .bandwidth_bps = 10e6, .loss = 0.0});
  sim.run_until(sim::sec(1));
  ASSERT_TRUE(a->view().has_value());
  EXPECT_TRUE(a->view()->contains({1, 1}));
}

TEST_F(MembershipTest, FalsePositiveEvictionSelfHeals) {
  auto a = make_member(1);
  a->join();
  sim.run_until(sim::msec(100));
  // Black-hole the member long enough to be evicted, then restore.
  net.set_connectivity(1, net::Connectivity::kDisconnected);
  sim.run_until(sim::sec(1));
  EXPECT_EQ(coord.view().members.size(), 0u);
  net.set_connectivity(1, net::Connectivity::kFull);
  // No explicit rejoin: the "you're out" view plus join-retry recovers.
  sim.run_until(sim::sec(3));
  EXPECT_EQ(coord.view().members.size(), 1u);
  ASSERT_TRUE(a->view().has_value());
  EXPECT_TRUE(a->view()->contains({1, 1}));
}

TEST_F(MembershipTest, PartitionEvictedMemberRejoinsAfterHeal) {
  auto a = make_member(1);
  auto b = make_member(2);
  a->join();
  b->join();
  sim.run_until(sim::msec(100));
  EXPECT_EQ(coord.view().members.size(), 2u);

  // Cut member 2 off from the coordinator's side: its heartbeats stop
  // arriving and the failure detector evicts it.
  net.partition({2}, {1, 100});
  sim.run_until(sim::sec(1));
  EXPECT_EQ(coord.view().members.size(), 1u);
  EXPECT_FALSE(coord.view().contains({2, 1}));
  const std::uint64_t evicted_view = coord.view().id;

  // After the heal, no explicit rejoin: member 2's next heartbeat makes
  // the coordinator re-send the current view, the member sees itself
  // absent, and join_retry_period drives it back in.
  net.heal_partition();
  sim.run_until(sim::sec(4));
  EXPECT_EQ(coord.view().members.size(), 2u);
  EXPECT_TRUE(coord.view().contains({2, 1}));
  ASSERT_TRUE(a->view().has_value());
  ASSERT_TRUE(b->view().has_value());
  EXPECT_EQ(a->view()->id, coord.view().id);
  EXPECT_EQ(b->view()->id, coord.view().id);
  EXPECT_GT(coord.view().id, evicted_view);
}

TEST_F(MembershipTest, AdministrativeEvictionChangesView) {
  auto a = make_member(1);
  auto b = make_member(2);
  a->join();
  b->join();
  sim.run_until(sim::msec(100));
  coord.evict({2, 1});
  EXPECT_EQ(coord.view().members.size(), 1u);
  // The evicted member keeps heartbeating but is simply not re-added
  // (heartbeats from unknown members are ignored).
  sim.run_until(sim::sec(1));
  EXPECT_EQ(coord.view().members.size(), 1u);
}

TEST_F(MembershipTest, ViewIdsAreMonotonic) {
  auto a = make_member(1);
  std::vector<std::uint64_t> ids;
  a->on_view([&](const View& v) { ids.push_back(v.id); });
  a->join();
  sim.run_until(sim::msec(50));
  auto b = make_member(2);
  b->join();
  sim.run_until(sim::msec(100));
  b->leave();
  sim.run_until(sim::msec(200));
  ASSERT_GE(ids.size(), 3u);
  for (std::size_t i = 1; i < ids.size(); ++i) EXPECT_GT(ids[i], ids[i - 1]);
}

TEST_F(MembershipTest, CoordinatorObserverFires) {
  int calls = 0;
  coord.on_view_change([&](const View&) { ++calls; });
  auto a = make_member(1);
  a->join();
  sim.run_until(sim::msec(50));
  EXPECT_EQ(calls, 1);
}

TEST_F(MembershipTest, ViewChangesCountsChangesNotViewId) {
  coord.view_changes();  // fresh coordinator: nothing published yet
  EXPECT_EQ(coord.view_changes(), 0u);
  int observed = 0;
  coord.on_view_change([&](const View&) { ++observed; });
  auto a = make_member(1);
  auto b = make_member(2);
  a->join();
  sim.run_until(sim::msec(50));
  b->join();
  sim.run_until(sim::msec(100));
  b->leave();
  sim.run_until(sim::msec(200));
  EXPECT_EQ(coord.view_changes(), 3u);  // join, join, leave
  EXPECT_EQ(coord.view_changes(), static_cast<std::uint64_t>(observed));
}

// --- coordinator failover ---------------------------------------------------

MembershipConfig failover_config() {
  MembershipConfig cfg;
  cfg.enable_failover = true;
  return cfg;
}

class FailoverTest : public ::testing::Test {
 protected:
  FailoverTest() : sim(17), net(sim) {
    coord = std::make_unique<MembershipCoordinator>(net, kCoord,
                                                    failover_config());
  }

  std::unique_ptr<MembershipMember> make_member(net::NodeId node) {
    auto m = std::make_unique<MembershipMember>(net, net::Address{node, 1},
                                                kCoord, failover_config());
    members.push_back(m.get());
    return m;
  }

  /// The promoted coordinator's well-known address for a member on @p node.
  static net::Address promoted(net::NodeId node) { return {node, 1001}; }

  sim::Simulator sim;
  net::Network net;
  std::unique_ptr<MembershipCoordinator> coord;
  std::vector<MembershipMember*> members;
};

TEST_F(FailoverTest, CoordinatorCrashPromotesLowestRankSurvivor) {
  auto a = make_member(1);
  auto b = make_member(2);
  auto c = make_member(3);
  a->join();
  b->join();
  c->join();
  sim.run_until(sim::msec(500));
  ASSERT_TRUE(a->view().has_value());
  const std::uint64_t pre_crash_id = a->view()->id;

  net.crash(100);
  sim.run_until(sim::sec(4));

  // The lowest-ranked survivor hosts the new coordinator; nobody else does.
  ASSERT_NE(a->hosted_coordinator(), nullptr);
  EXPECT_TRUE(a->hosted_coordinator()->active());
  EXPECT_EQ(b->hosted_coordinator(), nullptr);
  EXPECT_EQ(c->hosted_coordinator(), nullptr);

  // Everyone adopted it and converged on one richer, strictly newer view.
  for (MembershipMember* m : members) {
    EXPECT_EQ(m->coordinator(), promoted(1));
    ASSERT_TRUE(m->view().has_value());
    EXPECT_GT(m->view()->id, pre_crash_id);
    EXPECT_EQ(m->view()->id, a->hosted_coordinator()->view().id);
    EXPECT_EQ(m->view()->members.size(), 3u);
  }
}

TEST_F(FailoverTest, PromotedCoordinatorResumesIdsAboveSurvivorMax) {
  auto a = make_member(1);
  auto b = make_member(2);
  auto c = make_member(3);
  a->join();
  b->join();
  c->join();
  sim.run_until(sim::msec(500));
  const std::uint64_t floor = coord->view().id;

  net.crash(100);
  sim.run_until(sim::sec(4));
  ASSERT_NE(a->hosted_coordinator(), nullptr);
  // Ids resume strictly above the survivor max, so the change count and
  // the id legitimately diverge after a failover.
  EXPECT_GT(a->hosted_coordinator()->view().id, floor);
  EXPECT_LT(a->hosted_coordinator()->view_changes(),
            a->hosted_coordinator()->view().id);
}

TEST_F(FailoverTest, BannedMemberStaysOutAcrossFailover) {
  auto a = make_member(1);
  auto b = make_member(2);
  auto c = make_member(3);
  a->join();
  b->join();
  c->join();
  sim.run_until(sim::msec(500));
  coord->evict({3, 1});
  sim.run_until(sim::msec(700));
  ASSERT_TRUE(a->view().has_value());
  EXPECT_EQ(a->view()->members.size(), 2u);
  EXPECT_TRUE(a->view()->bans({3, 1}));

  net.crash(100);
  sim.run_until(sim::sec(4));
  ASSERT_NE(a->hosted_coordinator(), nullptr);
  // The ban travelled with the view into the takeover state.
  EXPECT_EQ(a->hosted_coordinator()->view().members.size(), 2u);
  EXPECT_TRUE(a->hosted_coordinator()->view().bans({3, 1}));

  // Even pointed straight at the successor, the banned member is refused.
  c->set_coordinator(promoted(1));
  sim.run_until(sim::sec(6));
  EXPECT_EQ(a->hosted_coordinator()->view().members.size(), 2u);
  EXPECT_FALSE(a->hosted_coordinator()->view().contains({3, 1}));
}

TEST_F(FailoverTest, MinorityPartitionNeverActivatesAndHealsClean) {
  auto a = make_member(1);
  auto b = make_member(2);
  auto c = make_member(3);
  auto d = make_member(4);
  auto e = make_member(5);
  for (MembershipMember* m : members) m->join();
  sim.run_until(sim::msec(800));
  ASSERT_TRUE(a->view().has_value());
  EXPECT_EQ(a->view()->members.size(), 5u);
  const std::uint64_t pre_partition_id = a->view()->id;

  std::map<const MembershipMember*, std::vector<std::uint64_t>> installed;
  for (MembershipMember* m : members)
    m->on_view([&installed, m](const View& v) { installed[m].push_back(v.id); });

  // Coordinator + member 1 become the minority side; 2-5 are the majority.
  net.partition({100, 1}, {2, 3, 4, 5});
  sim.run_until(sim::sec(5));

  // The majority elected the lowest surviving rank; the cut-off old
  // coordinator suspended (then retired) rather than shrinking the view,
  // and the minority member never won a majority.
  ASSERT_NE(b->hosted_coordinator(), nullptr);
  EXPECT_TRUE(b->hosted_coordinator()->active());
  EXPECT_EQ(coord->role(), MembershipCoordinator::Role::kRetired);
  EXPECT_EQ(a->hosted_coordinator(), nullptr);

  net.heal_partition();
  sim.run_until(sim::sec(12));

  // After the heal everyone — the stranded minority member included —
  // converges on the successor's view of all five members.
  const View& vw = b->hosted_coordinator()->view();
  EXPECT_EQ(vw.members.size(), 5u);
  EXPECT_GT(vw.id, pre_partition_id);
  for (MembershipMember* m : members) {
    EXPECT_EQ(m->coordinator(), promoted(2));
    ASSERT_TRUE(m->view().has_value());
    EXPECT_EQ(m->view()->id, vw.id);
  }
  // Exactly one coordinator ended active, and ids never rolled back.
  EXPECT_EQ(coord->active(), false);
  for (MembershipMember* m : members) {
    if (m != b.get()) EXPECT_EQ(m->hosted_coordinator(), nullptr);
    const auto& ids = installed[m];
    for (std::size_t i = 1; i < ids.size(); ++i)
      EXPECT_GT(ids[i], ids[i - 1]) << "member node rollback";
  }
}

TEST_F(FailoverTest, RestartedCoordinatorRecoversFromRejoins) {
  auto a = make_member(1);
  auto b = make_member(2);
  auto c = make_member(3);
  a->join();
  b->join();
  c->join();
  sim.run_until(sim::msec(500));
  const std::uint64_t pre_crash_id = coord->view().id;

  // Crash-restart the coordinator inside the members' lease window: the
  // new incarnation has no state and must reconstruct it from summaries.
  coord.reset();
  sim.run_until(sim::msec(600));
  MembershipConfig cfg = failover_config();
  cfg.recover_on_start = true;
  coord = std::make_unique<MembershipCoordinator>(net, kCoord, cfg);
  EXPECT_EQ(coord->role(), MembershipCoordinator::Role::kRecovering);

  sim.run_until(sim::sec(3));
  EXPECT_TRUE(coord->active());
  EXPECT_EQ(coord->view().members.size(), 3u);
  EXPECT_GT(coord->view().id, pre_crash_id);
  for (MembershipMember* m : members) {
    EXPECT_EQ(m->coordinator(), kCoord);  // nobody needed to take over
    EXPECT_EQ(m->hosted_coordinator(), nullptr);
    ASSERT_TRUE(m->view().has_value());
    EXPECT_EQ(m->view()->id, coord->view().id);
  }
}

TEST_F(FailoverTest, StaleRestartedCoordinatorStaysInert) {
  auto a = make_member(1);
  auto b = make_member(2);
  auto c = make_member(3);
  a->join();
  b->join();
  c->join();
  sim.run_until(sim::msec(500));

  // Crash long enough for the group to move on to a successor.
  net.crash(100);
  sim.run_until(sim::sec(4));
  ASSERT_NE(a->hosted_coordinator(), nullptr);
  const std::uint64_t successor_id = a->hosted_coordinator()->view().id;

  // The old node comes back and restarts its coordinator in recovery
  // mode.  Nobody talks to it any more, so it must never activate — one
  // active coordinator, no forked view history.
  coord.reset();
  net.recover(100);
  MembershipConfig cfg = failover_config();
  cfg.recover_on_start = true;
  coord = std::make_unique<MembershipCoordinator>(net, kCoord, cfg);
  sim.run_until(sim::sec(8));

  EXPECT_FALSE(coord->active());
  EXPECT_TRUE(a->hosted_coordinator()->active());
  EXPECT_GE(a->hosted_coordinator()->view().id, successor_id);
  for (MembershipMember* m : members) EXPECT_EQ(m->coordinator(), promoted(1));
}

TEST_F(FailoverTest, DeterministicAcrossIdenticalSeeds) {
  // Two runs with the same seed must produce byte-identical membership
  // outcomes even with timer jitter enabled — the jitter draws from the
  // simulator's seeded rng, never from wall clock.
  auto run = [](std::uint64_t seed) {
    sim::Simulator s(seed);
    net::Network n(s);
    MembershipConfig cfg = failover_config();
    cfg.timer_jitter = 0.2;
    MembershipCoordinator co(n, kCoord, cfg);
    std::vector<std::unique_ptr<MembershipMember>> ms;
    std::vector<std::uint64_t> installed;
    for (net::NodeId node = 1; node <= 3; ++node) {
      ms.push_back(std::make_unique<MembershipMember>(
          n, net::Address{node, 1}, kCoord, cfg));
      ms.back()->on_view([&](const View& v) { installed.push_back(v.id); });
      ms.back()->join();
    }
    s.run_until(sim::msec(500));
    n.crash(100);
    s.run_until(sim::sec(4));
    installed.push_back(ms[0]->hosted_coordinator() != nullptr ? 1u : 0u);
    return installed;
  };
  EXPECT_EQ(run(99), run(99));
  EXPECT_EQ(run(7), run(7));
}

}  // namespace
}  // namespace coop::groups
