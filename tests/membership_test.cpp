// Tests for the membership service: joins, leaves, failure detection and
// reliable view dissemination over lossy links.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "groups/membership.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"

namespace coop::groups {
namespace {

constexpr net::Address kCoord{100, 1};

class MembershipTest : public ::testing::Test {
 protected:
  MembershipTest() : sim(5), net(sim), coord(net, kCoord) {}

  std::unique_ptr<MembershipMember> make_member(net::NodeId node) {
    return std::make_unique<MembershipMember>(net, net::Address{node, 1},
                                              kCoord);
  }

  sim::Simulator sim;
  net::Network net;
  MembershipCoordinator coord;
};

TEST_F(MembershipTest, JoinProducesViewContainingMember) {
  auto m = make_member(1);
  int views = 0;
  m->on_view([&](const View& v) {
    ++views;
    EXPECT_TRUE(v.contains({1, 1}));
  });
  m->join();
  sim.run_until(sim::msec(50));
  EXPECT_EQ(views, 1);
  ASSERT_TRUE(m->view().has_value());
  EXPECT_EQ(m->view()->members.size(), 1u);
  EXPECT_TRUE(m->joined());
}

TEST_F(MembershipTest, SecondJoinNotifiesBothMembers) {
  auto a = make_member(1);
  auto b = make_member(2);
  a->join();
  sim.run_until(sim::msec(50));
  b->join();
  sim.run_until(sim::msec(100));
  ASSERT_TRUE(a->view().has_value());
  ASSERT_TRUE(b->view().has_value());
  EXPECT_EQ(a->view()->members.size(), 2u);
  EXPECT_EQ(a->view()->id, b->view()->id);
  EXPECT_TRUE(a->view()->contains({2, 1}));
}

TEST_F(MembershipTest, GracefulLeaveRemovesMember) {
  auto a = make_member(1);
  auto b = make_member(2);
  a->join();
  b->join();
  sim.run_until(sim::msec(100));
  b->leave();
  sim.run_until(sim::msec(200));
  ASSERT_TRUE(a->view().has_value());
  EXPECT_EQ(a->view()->members.size(), 1u);
  EXPECT_FALSE(a->view()->contains({2, 1}));
  EXPECT_FALSE(b->joined());
}

TEST_F(MembershipTest, CrashedMemberIsDetectedByHeartbeatTimeout) {
  auto a = make_member(1);
  auto b = make_member(2);
  a->join();
  b->join();
  sim.run_until(sim::msec(100));
  EXPECT_EQ(coord.view().members.size(), 2u);
  net.crash(2);
  sim.run_until(sim::sec(2));
  EXPECT_EQ(coord.view().members.size(), 1u);
  ASSERT_TRUE(a->view().has_value());
  EXPECT_FALSE(a->view()->contains({2, 1}));
}

TEST_F(MembershipTest, DisconnectedMobileMemberIsEvictedAndRejoins) {
  auto a = make_member(1);
  a->join();
  sim.run_until(sim::msec(100));
  net.set_connectivity(1, net::Connectivity::kDisconnected);
  sim.run_until(sim::sec(2));
  EXPECT_EQ(coord.view().members.size(), 0u);
  net.set_connectivity(1, net::Connectivity::kFull);
  a->join();  // explicit rejoin after reconnection
  sim.run_until(sim::sec(3));
  EXPECT_EQ(coord.view().members.size(), 1u);
}

TEST_F(MembershipTest, ViewSurvivesLossyLinks) {
  net.set_default_link({.latency = sim::msec(5), .jitter = sim::msec(2),
                        .bandwidth_bps = 10e6, .loss = 0.30});
  // A lossy WAN needs a laxer failure detector, or members flap.
  MembershipConfig cfg;
  cfg.failure_timeout = sim::msec(900);
  const net::Address coord2_addr{101, 1};
  MembershipCoordinator coord2(net, coord2_addr, cfg);
  MembershipMember a(net, {1, 1}, coord2_addr, cfg);
  MembershipMember b(net, {2, 1}, coord2_addr, cfg);
  MembershipMember c(net, {3, 1}, coord2_addr, cfg);
  a.join();
  b.join();
  c.join();
  // Join-retry plus sweep-based view re-send must converge despite 30%
  // loss on every datagram.
  sim.run_until(sim::sec(3));
  ASSERT_TRUE(a.view().has_value());
  ASSERT_TRUE(b.view().has_value());
  ASSERT_TRUE(c.view().has_value());
  EXPECT_EQ(coord2.view().members.size(), 3u);
  EXPECT_EQ(a.view()->id, coord2.view().id);
  EXPECT_EQ(b.view()->id, coord2.view().id);
  EXPECT_EQ(c.view()->id, coord2.view().id);
}

TEST_F(MembershipTest, LostJoinDatagramIsRetried) {
  // Force the very first JOIN to be lost: 100% loss initially, healed
  // shortly after; the join-retry timer must re-send.
  net.set_default_link({.latency = sim::msec(1), .jitter = 0,
                        .bandwidth_bps = 10e6, .loss = 1.0});
  auto a = make_member(1);
  a->join();
  sim.run_until(sim::msec(50));
  net.set_default_link({.latency = sim::msec(1), .jitter = 0,
                        .bandwidth_bps = 10e6, .loss = 0.0});
  sim.run_until(sim::sec(1));
  ASSERT_TRUE(a->view().has_value());
  EXPECT_TRUE(a->view()->contains({1, 1}));
}

TEST_F(MembershipTest, FalsePositiveEvictionSelfHeals) {
  auto a = make_member(1);
  a->join();
  sim.run_until(sim::msec(100));
  // Black-hole the member long enough to be evicted, then restore.
  net.set_connectivity(1, net::Connectivity::kDisconnected);
  sim.run_until(sim::sec(1));
  EXPECT_EQ(coord.view().members.size(), 0u);
  net.set_connectivity(1, net::Connectivity::kFull);
  // No explicit rejoin: the "you're out" view plus join-retry recovers.
  sim.run_until(sim::sec(3));
  EXPECT_EQ(coord.view().members.size(), 1u);
  ASSERT_TRUE(a->view().has_value());
  EXPECT_TRUE(a->view()->contains({1, 1}));
}

TEST_F(MembershipTest, PartitionEvictedMemberRejoinsAfterHeal) {
  auto a = make_member(1);
  auto b = make_member(2);
  a->join();
  b->join();
  sim.run_until(sim::msec(100));
  EXPECT_EQ(coord.view().members.size(), 2u);

  // Cut member 2 off from the coordinator's side: its heartbeats stop
  // arriving and the failure detector evicts it.
  net.partition({2}, {1, 100});
  sim.run_until(sim::sec(1));
  EXPECT_EQ(coord.view().members.size(), 1u);
  EXPECT_FALSE(coord.view().contains({2, 1}));
  const std::uint64_t evicted_view = coord.view().id;

  // After the heal, no explicit rejoin: member 2's next heartbeat makes
  // the coordinator re-send the current view, the member sees itself
  // absent, and join_retry_period drives it back in.
  net.heal_partition();
  sim.run_until(sim::sec(4));
  EXPECT_EQ(coord.view().members.size(), 2u);
  EXPECT_TRUE(coord.view().contains({2, 1}));
  ASSERT_TRUE(a->view().has_value());
  ASSERT_TRUE(b->view().has_value());
  EXPECT_EQ(a->view()->id, coord.view().id);
  EXPECT_EQ(b->view()->id, coord.view().id);
  EXPECT_GT(coord.view().id, evicted_view);
}

TEST_F(MembershipTest, AdministrativeEvictionChangesView) {
  auto a = make_member(1);
  auto b = make_member(2);
  a->join();
  b->join();
  sim.run_until(sim::msec(100));
  coord.evict({2, 1});
  EXPECT_EQ(coord.view().members.size(), 1u);
  // The evicted member keeps heartbeating but is simply not re-added
  // (heartbeats from unknown members are ignored).
  sim.run_until(sim::sec(1));
  EXPECT_EQ(coord.view().members.size(), 1u);
}

TEST_F(MembershipTest, ViewIdsAreMonotonic) {
  auto a = make_member(1);
  std::vector<std::uint64_t> ids;
  a->on_view([&](const View& v) { ids.push_back(v.id); });
  a->join();
  sim.run_until(sim::msec(50));
  auto b = make_member(2);
  b->join();
  sim.run_until(sim::msec(100));
  b->leave();
  sim.run_until(sim::msec(200));
  ASSERT_GE(ids.size(), 3u);
  for (std::size_t i = 1; i < ids.size(); ++i) EXPECT_GT(ids[i], ids[i - 1]);
}

TEST_F(MembershipTest, CoordinatorObserverFires) {
  int calls = 0;
  coord.on_view_change([&](const View&) { ++calls; });
  auto a = make_member(1);
  a->join();
  sim.run_until(sim::msec(50));
  EXPECT_EQ(calls, 1);
}

}  // namespace
}  // namespace coop::groups
