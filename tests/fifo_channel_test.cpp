// Tests for the reliable in-order point-to-point channel.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "net/fifo_channel.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"

namespace coop::net {
namespace {

class FifoTest : public ::testing::Test {
 protected:
  FifoTest()
      : sim(17), net(sim), a(net, {1, 1}), b(net, {2, 1}) {
    b.on_receive([this](const Address& from, const std::string& p) {
      from_b.push_back({from, p});
    });
    a.on_receive([this](const Address& from, const std::string& p) {
      from_a.push_back({from, p});
    });
  }

  sim::Simulator sim;
  Network net;
  FifoChannel a, b;
  std::vector<std::pair<Address, std::string>> from_a, from_b;
};

TEST_F(FifoTest, DeliversInOrderOnCleanLink) {
  for (int i = 0; i < 10; ++i) a.send({2, 1}, std::to_string(i));
  sim.run();
  ASSERT_EQ(from_b.size(), 10u);
  for (int i = 0; i < 10; ++i)
    EXPECT_EQ(from_b[static_cast<size_t>(i)].second, std::to_string(i));
}

TEST_F(FifoTest, RepairsReorderingFromJitter) {
  net.set_default_link({.latency = sim::msec(10), .jitter = sim::msec(9),
                        .bandwidth_bps = 0, .loss = 0});
  for (int i = 0; i < 50; ++i) a.send({2, 1}, std::to_string(i));
  sim.run();
  ASSERT_EQ(from_b.size(), 50u);
  for (int i = 0; i < 50; ++i)
    EXPECT_EQ(from_b[static_cast<size_t>(i)].second, std::to_string(i));
}

TEST_F(FifoTest, SurvivesHeavyLoss) {
  net.set_default_link({.latency = sim::msec(3), .jitter = sim::msec(1),
                        .bandwidth_bps = 10e6, .loss = 0.35});
  for (int i = 0; i < 30; ++i) a.send({2, 1}, std::to_string(i));
  sim.run();
  ASSERT_EQ(from_b.size(), 30u);
  for (int i = 0; i < 30; ++i)
    EXPECT_EQ(from_b[static_cast<size_t>(i)].second, std::to_string(i));
  EXPECT_GT(a.stats().retransmits, 0u);
  EXPECT_EQ(a.unacked({2, 1}), 0u);
}

TEST_F(FifoTest, BidirectionalTrafficIsIndependent) {
  a.send({2, 1}, "ping");
  b.send({1, 1}, "pong");
  sim.run();
  ASSERT_EQ(from_b.size(), 1u);
  ASSERT_EQ(from_a.size(), 1u);
  EXPECT_EQ(from_b[0].second, "ping");
  EXPECT_EQ(from_a[0].second, "pong");
}

TEST_F(FifoTest, MultiplexesSeveralPeers) {
  FifoChannel c(net, {3, 1});
  std::vector<std::string> at_c;
  c.on_receive([&](const Address&, const std::string& p) {
    at_c.push_back(p);
  });
  a.send({2, 1}, "to-b");
  a.send({3, 1}, "to-c");
  sim.run();
  ASSERT_EQ(from_b.size(), 1u);
  ASSERT_EQ(at_c.size(), 1u);
  EXPECT_EQ(at_c[0], "to-c");
}

TEST_F(FifoTest, DuplicatesAreDropped) {
  // Force retransmission by making the reverse (ack) path lossy.
  net.set_link(2, 1, {.latency = sim::msec(3), .jitter = 0,
                      .bandwidth_bps = 10e6, .loss = 0.9});
  a.send({2, 1}, "once");
  sim.run();
  EXPECT_EQ(from_b.size(), 1u);
  EXPECT_GT(b.stats().duplicates, 0u);
}

TEST_F(FifoTest, BoundedConfigGivesUpAgainstCrashedPeer) {
  FifoChannel bounded(net, {4, 1},
                      {.retransmit_timeout = sim::msec(20),
                       .max_retransmit_timeout = sim::msec(100),
                       .max_retransmits = 5});
  net.crash(2);
  bounded.send({2, 1}, "doomed");
  sim.run();
  EXPECT_EQ(bounded.stats().gave_up, 1u);
  EXPECT_EQ(bounded.unacked({2, 1}), 0u);
}

TEST_F(FifoTest, DefaultPersistsThroughLongPartitionAndRecovers) {
  // The default channel never gives up: a 30 s partition delays the
  // stream, it does not break it — and backoff keeps the retry chatter
  // bounded while the partition lasts.
  net.partition({1}, {2});
  a.send({2, 1}, "patient");
  a.send({2, 1}, "messages");
  sim.run_until(sim::sec(30));
  EXPECT_TRUE(from_b.empty());
  EXPECT_EQ(a.stats().gave_up, 0u);
  const auto chatter = a.stats().retransmits;
  EXPECT_LE(chatter, 60u);  // backoff keeps it ~1 per 3 s eventually
  net.heal_partition();
  sim.run_until(sim::sec(40));
  ASSERT_EQ(from_b.size(), 2u);
  EXPECT_EQ(from_b[0].second, "patient");
  EXPECT_EQ(from_b[1].second, "messages");
}

TEST_F(FifoTest, CrashRestartResynchronizesThroughEpochs) {
  net.set_default_link({.latency = sim::msec(5), .jitter = 0,
                        .bandwidth_bps = 10e6, .loss = 0});
  FifoChannel sender(net, {5, 1}, {.retransmit_timeout = sim::msec(20)});
  auto receiver = std::make_unique<FifoChannel>(net, net::Address{6, 1});
  std::vector<std::string> got;
  receiver->on_receive(
      [&](const Address&, const std::string& p) { got.push_back(p); });

  sender.send({6, 1}, "one");
  sender.send({6, 1}, "two");
  sim.run_until(sim::msec(100));
  EXPECT_EQ(got.size(), 2u);

  // Fail-stop the receiver process: its channel object dies with it, and
  // the sender keeps retransmitting into the void.
  net.crash(6);
  receiver.reset();
  sender.send({6, 1}, "three");
  sender.send({6, 1}, "four");
  sim.run_until(sim::msec(300));
  EXPECT_EQ(sender.unacked({6, 1}), 2u);

  // Restart: a fresh incarnation with a bumped epoch announces itself.
  net.restart(6);
  receiver = std::make_unique<FifoChannel>(net, net::Address{6, 1},
                                           FifoConfig{.epoch = 2});
  receiver->on_receive(
      [&](const Address&, const std::string& p) { got.push_back(p); });
  receiver->resync({5, 1});
  sim.run_until(sim::sec(2));

  // The sender renumbered its outstanding backlog from 1 under a fresh
  // epoch; the new incarnation received it in order, exactly once.
  ASSERT_EQ(got.size(), 4u);
  EXPECT_EQ(got[2], "three");
  EXPECT_EQ(got[3], "four");
  EXPECT_EQ(sender.unacked({6, 1}), 0u);

  // The resynchronized stream keeps working in both directions.
  std::vector<std::string> at_sender;
  sender.on_receive(
      [&](const Address&, const std::string& p) { at_sender.push_back(p); });
  sender.send({6, 1}, "five");
  receiver->send({5, 1}, "reply");
  sim.run_until(sim::sec(3));
  ASSERT_EQ(got.size(), 5u);
  EXPECT_EQ(got[4], "five");
  ASSERT_EQ(at_sender.size(), 1u);
  EXPECT_EQ(at_sender[0], "reply");
}

TEST_F(FifoTest, HelloRetriesThroughAPartition) {
  net.set_default_link({.latency = sim::msec(5), .jitter = 0,
                        .bandwidth_bps = 10e6, .loss = 0});
  FifoChannel sender(net, {5, 1}, {.retransmit_timeout = sim::msec(20)});
  auto receiver = std::make_unique<FifoChannel>(net, net::Address{6, 1});
  std::vector<std::string> got;
  sender.send({6, 1}, "backlog");
  sim.run_until(sim::msec(100));

  net.crash(6);
  receiver.reset();
  sender.send({6, 1}, "pending");
  sim.run_until(sim::msec(200));

  // The restarted incarnation comes back *inside* a partition: its hello
  // cannot get through until the heal, so it must be retried.
  net.restart(6);
  net.partition({5}, {6});
  receiver = std::make_unique<FifoChannel>(
      net, net::Address{6, 1},
      FifoConfig{.retransmit_timeout = sim::msec(20), .epoch = 2});
  receiver->on_receive(
      [&](const Address&, const std::string& p) { got.push_back(p); });
  receiver->resync({5, 1});
  sim.run_until(sim::msec(400));
  EXPECT_TRUE(got.empty());

  net.heal_partition();
  sim.run_until(sim::sec(3));
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], "pending");
  EXPECT_EQ(sender.unacked({6, 1}), 0u);
}

TEST_F(FifoTest, BackoffJitterDecorrelatesButStaysReliable) {
  const auto delivery_fingerprint = [](double jitter) {
    sim::Simulator s(23);
    Network n(s);
    n.set_default_link({.latency = sim::msec(3), .jitter = sim::msec(1),
                        .bandwidth_bps = 10e6, .loss = 0.35});
    FifoChannel tx(n, {1, 1},
                   {.retransmit_timeout = sim::msec(20),
                    .backoff_jitter = jitter});
    FifoChannel rv(n, {2, 1});
    std::string fp;
    rv.on_receive([&](const Address&, const std::string& p) {
      fp += p + "@" + std::to_string(s.now()) + ";";
    });
    for (int i = 0; i < 15; ++i) tx.send({2, 1}, std::to_string(i));
    s.run_until(sim::sec(10));
    return fp;
  };
  // Jittered retries still deliver everything in order...
  const std::string jittered = delivery_fingerprint(0.3);
  for (int i = 0; i < 15; ++i) {
    EXPECT_NE(jittered.find(std::to_string(i) + "@"), std::string::npos);
  }
  // ...deterministically (same seed, same schedule)...
  EXPECT_EQ(jittered, delivery_fingerprint(0.3));
  // ...and the knob actually changes the timings (opt-in, not a no-op).
  EXPECT_NE(jittered, delivery_fingerprint(0.0));
}

}  // namespace
}  // namespace coop::net
