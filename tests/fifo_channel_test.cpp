// Tests for the reliable in-order point-to-point channel.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "net/fifo_channel.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"

namespace coop::net {
namespace {

class FifoTest : public ::testing::Test {
 protected:
  FifoTest()
      : sim(17), net(sim), a(net, {1, 1}), b(net, {2, 1}) {
    b.on_receive([this](const Address& from, const std::string& p) {
      from_b.push_back({from, p});
    });
    a.on_receive([this](const Address& from, const std::string& p) {
      from_a.push_back({from, p});
    });
  }

  sim::Simulator sim;
  Network net;
  FifoChannel a, b;
  std::vector<std::pair<Address, std::string>> from_a, from_b;
};

TEST_F(FifoTest, DeliversInOrderOnCleanLink) {
  for (int i = 0; i < 10; ++i) a.send({2, 1}, std::to_string(i));
  sim.run();
  ASSERT_EQ(from_b.size(), 10u);
  for (int i = 0; i < 10; ++i)
    EXPECT_EQ(from_b[static_cast<size_t>(i)].second, std::to_string(i));
}

TEST_F(FifoTest, RepairsReorderingFromJitter) {
  net.set_default_link({.latency = sim::msec(10), .jitter = sim::msec(9),
                        .bandwidth_bps = 0, .loss = 0});
  for (int i = 0; i < 50; ++i) a.send({2, 1}, std::to_string(i));
  sim.run();
  ASSERT_EQ(from_b.size(), 50u);
  for (int i = 0; i < 50; ++i)
    EXPECT_EQ(from_b[static_cast<size_t>(i)].second, std::to_string(i));
}

TEST_F(FifoTest, SurvivesHeavyLoss) {
  net.set_default_link({.latency = sim::msec(3), .jitter = sim::msec(1),
                        .bandwidth_bps = 10e6, .loss = 0.35});
  for (int i = 0; i < 30; ++i) a.send({2, 1}, std::to_string(i));
  sim.run();
  ASSERT_EQ(from_b.size(), 30u);
  for (int i = 0; i < 30; ++i)
    EXPECT_EQ(from_b[static_cast<size_t>(i)].second, std::to_string(i));
  EXPECT_GT(a.stats().retransmits, 0u);
  EXPECT_EQ(a.unacked({2, 1}), 0u);
}

TEST_F(FifoTest, BidirectionalTrafficIsIndependent) {
  a.send({2, 1}, "ping");
  b.send({1, 1}, "pong");
  sim.run();
  ASSERT_EQ(from_b.size(), 1u);
  ASSERT_EQ(from_a.size(), 1u);
  EXPECT_EQ(from_b[0].second, "ping");
  EXPECT_EQ(from_a[0].second, "pong");
}

TEST_F(FifoTest, MultiplexesSeveralPeers) {
  FifoChannel c(net, {3, 1});
  std::vector<std::string> at_c;
  c.on_receive([&](const Address&, const std::string& p) {
    at_c.push_back(p);
  });
  a.send({2, 1}, "to-b");
  a.send({3, 1}, "to-c");
  sim.run();
  ASSERT_EQ(from_b.size(), 1u);
  ASSERT_EQ(at_c.size(), 1u);
  EXPECT_EQ(at_c[0], "to-c");
}

TEST_F(FifoTest, DuplicatesAreDropped) {
  // Force retransmission by making the reverse (ack) path lossy.
  net.set_link(2, 1, {.latency = sim::msec(3), .jitter = 0,
                      .bandwidth_bps = 10e6, .loss = 0.9});
  a.send({2, 1}, "once");
  sim.run();
  EXPECT_EQ(from_b.size(), 1u);
  EXPECT_GT(b.stats().duplicates, 0u);
}

TEST_F(FifoTest, BoundedConfigGivesUpAgainstCrashedPeer) {
  FifoChannel bounded(net, {4, 1},
                      {.retransmit_timeout = sim::msec(20),
                       .max_retransmit_timeout = sim::msec(100),
                       .max_retransmits = 5});
  net.crash(2);
  bounded.send({2, 1}, "doomed");
  sim.run();
  EXPECT_EQ(bounded.stats().gave_up, 1u);
  EXPECT_EQ(bounded.unacked({2, 1}), 0u);
}

TEST_F(FifoTest, DefaultPersistsThroughLongPartitionAndRecovers) {
  // The default channel never gives up: a 30 s partition delays the
  // stream, it does not break it — and backoff keeps the retry chatter
  // bounded while the partition lasts.
  net.partition({1}, {2});
  a.send({2, 1}, "patient");
  a.send({2, 1}, "messages");
  sim.run_until(sim::sec(30));
  EXPECT_TRUE(from_b.empty());
  EXPECT_EQ(a.stats().gave_up, 0u);
  const auto chatter = a.stats().retransmits;
  EXPECT_LE(chatter, 60u);  // backoff keeps it ~1 per 3 s eventually
  net.heal_partition();
  sim.run_until(sim::sec(40));
  ASSERT_EQ(from_b.size(), 2u);
  EXPECT_EQ(from_b[0].second, "patient");
  EXPECT_EQ(from_b[1].second, "messages");
}

}  // namespace
}  // namespace coop::net
