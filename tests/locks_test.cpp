// Tests for the four lock styles: strict, tickle, soft, notification.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "ccontrol/locks.hpp"
#include "sim/simulator.hpp"

namespace coop::ccontrol {
namespace {

constexpr ClientId kAlice = 1;
constexpr ClientId kBob = 2;
constexpr ClientId kCarol = 3;

TEST(StrictLocks, SharedLocksCoexist) {
  sim::Simulator sim;
  LockManager lm(sim, {.style = LockStyle::kStrict});
  bool a = false, b = false;
  lm.acquire("doc", kAlice, LockMode::kShared,
             [&](const LockGrant& g) { a = g.granted; });
  lm.acquire("doc", kBob, LockMode::kShared,
             [&](const LockGrant& g) { b = g.granted; });
  EXPECT_TRUE(a);
  EXPECT_TRUE(b);
  EXPECT_EQ(lm.holders("doc").size(), 2u);
}

TEST(StrictLocks, ExclusiveBlocksUntilRelease) {
  sim::Simulator sim;
  LockManager lm(sim, {.style = LockStyle::kStrict});
  lm.acquire("doc", kAlice, LockMode::kExclusive, nullptr);
  bool granted = false;
  sim::Duration waited = -1;
  lm.acquire("doc", kBob, LockMode::kExclusive, [&](const LockGrant& g) {
    granted = g.granted;
    waited = g.waited;
  });
  EXPECT_FALSE(granted);
  sim.run_until(sim::msec(500));
  lm.release("doc", kAlice);
  EXPECT_TRUE(granted);
  EXPECT_EQ(waited, sim::msec(500));
  EXPECT_TRUE(lm.holds("doc", kBob));
  EXPECT_FALSE(lm.holds("doc", kAlice));
}

TEST(StrictLocks, SharedBlocksExclusiveAndQueuesFifo) {
  sim::Simulator sim;
  LockManager lm(sim, {.style = LockStyle::kStrict});
  lm.acquire("doc", kAlice, LockMode::kShared, nullptr);
  std::vector<ClientId> grant_order;
  lm.acquire("doc", kBob, LockMode::kExclusive,
             [&](const LockGrant&) { grant_order.push_back(kBob); });
  lm.acquire("doc", kCarol, LockMode::kExclusive,
             [&](const LockGrant&) { grant_order.push_back(kCarol); });
  EXPECT_TRUE(grant_order.empty());
  lm.release("doc", kAlice);
  EXPECT_EQ(grant_order, (std::vector<ClientId>{kBob}));
  lm.release("doc", kBob);
  EXPECT_EQ(grant_order, (std::vector<ClientId>{kBob, kCarol}));
}

TEST(StrictLocks, WriterNotStarvedBehindReaders) {
  sim::Simulator sim;
  LockManager lm(sim, {.style = LockStyle::kStrict});
  lm.acquire("doc", kAlice, LockMode::kShared, nullptr);
  bool writer = false, reader2 = false;
  lm.acquire("doc", kBob, LockMode::kExclusive,
             [&](const LockGrant& g) { writer = g.granted; });
  // A later reader must queue behind the waiting writer, not sneak in.
  lm.acquire("doc", kCarol, LockMode::kShared,
             [&](const LockGrant& g) { reader2 = g.granted; });
  EXPECT_FALSE(writer);
  EXPECT_FALSE(reader2);
  lm.release("doc", kAlice);
  EXPECT_TRUE(writer);
  EXPECT_FALSE(reader2);
  lm.release("doc", kBob);
  EXPECT_TRUE(reader2);
}

TEST(StrictLocks, WaitTimeoutFailsTheAcquire) {
  sim::Simulator sim;
  LockManager lm(sim,
                 {.style = LockStyle::kStrict,
                  .wait_timeout = sim::msec(100)});
  lm.acquire("doc", kAlice, LockMode::kExclusive, nullptr);
  bool called = false, granted = true;
  lm.acquire("doc", kBob, LockMode::kExclusive, [&](const LockGrant& g) {
    called = true;
    granted = g.granted;
  });
  sim.run();
  EXPECT_TRUE(called);
  EXPECT_FALSE(granted);
  EXPECT_EQ(lm.stats().timeouts, 1u);
  // Alice still holds; a later release must not grant the dead waiter.
  lm.release("doc", kAlice);
  EXPECT_TRUE(lm.holders("doc").empty());
}

TEST(StrictLocks, ReentrantAcquireUpgrades) {
  sim::Simulator sim;
  LockManager lm(sim, {.style = LockStyle::kStrict});
  lm.acquire("doc", kAlice, LockMode::kShared, nullptr);
  bool ok = false;
  lm.acquire("doc", kAlice, LockMode::kExclusive,
             [&](const LockGrant& g) { ok = g.granted; });
  EXPECT_TRUE(ok);
  // Now exclusive: Bob's shared request must wait.
  bool bob = false;
  lm.acquire("doc", kBob, LockMode::kShared,
             [&](const LockGrant& g) { bob = g.granted; });
  EXPECT_FALSE(bob);
}

TEST(StrictLocks, DistinctResourcesAreIndependent) {
  sim::Simulator sim;
  LockManager lm(sim, {.style = LockStyle::kStrict});
  bool a = false, b = false;
  lm.acquire("sec1", kAlice, LockMode::kExclusive,
             [&](const LockGrant& g) { a = g.granted; });
  lm.acquire("sec2", kBob, LockMode::kExclusive,
             [&](const LockGrant& g) { b = g.granted; });
  EXPECT_TRUE(a);
  EXPECT_TRUE(b);
}

// --------------------------------------------------------------- tickle

TEST(TickleLocks, ActiveHolderKeepsLockButIsTickled) {
  sim::Simulator sim;
  LockManager lm(sim, {.style = LockStyle::kTickle,
                       .tickle_idle_timeout = sim::sec(10)});
  std::vector<std::pair<ClientId, ClientId>> tickles;
  LockObservers obs;
  obs.on_tickle = [&](const std::string&, ClientId holder, ClientId req) {
    tickles.emplace_back(holder, req);
  };
  lm.set_observers(std::move(obs));
  lm.acquire("doc", kAlice, LockMode::kExclusive, nullptr);
  sim.run_until(sim::sec(5));
  lm.touch("doc", kAlice);  // Alice is active
  bool granted = false;
  lm.acquire("doc", kBob, LockMode::kExclusive,
             [&](const LockGrant& g) { granted = g.granted; });
  EXPECT_FALSE(granted);  // Alice active: Bob waits
  ASSERT_EQ(tickles.size(), 1u);
  EXPECT_EQ(tickles[0], (std::pair<ClientId, ClientId>{kAlice, kBob}));
  EXPECT_EQ(lm.stats().tickles, 1u);
}

TEST(TickleLocks, IdleHolderLosesLockImmediately) {
  sim::Simulator sim;
  LockManager lm(sim, {.style = LockStyle::kTickle,
                       .tickle_idle_timeout = sim::sec(10)});
  ClientId revoked = 0;
  LockObservers obs;
  obs.on_revoked = [&](const std::string&, ClientId old) { revoked = old; };
  lm.set_observers(std::move(obs));
  lm.acquire("doc", kAlice, LockMode::kExclusive, nullptr);
  sim.run_until(sim::sec(20));  // Alice idles past the timeout
  bool granted = false;
  lm.acquire("doc", kBob, LockMode::kExclusive,
             [&](const LockGrant& g) { granted = g.granted; });
  EXPECT_TRUE(granted);
  EXPECT_EQ(revoked, kAlice);
  EXPECT_FALSE(lm.holds("doc", kAlice));
  EXPECT_TRUE(lm.holds("doc", kBob));
  EXPECT_EQ(lm.stats().transfers, 1u);
}

TEST(TickleLocks, TouchResetsIdleness) {
  sim::Simulator sim;
  LockManager lm(sim, {.style = LockStyle::kTickle,
                       .tickle_idle_timeout = sim::sec(10)});
  lm.acquire("doc", kAlice, LockMode::kExclusive, nullptr);
  sim.run_until(sim::sec(9));
  lm.touch("doc", kAlice);
  sim.run_until(sim::sec(15));  // only 6s since touch
  bool granted = false;
  lm.acquire("doc", kBob, LockMode::kExclusive,
             [&](const LockGrant& g) { granted = g.granted; });
  EXPECT_FALSE(granted);
  EXPECT_TRUE(lm.holds("doc", kAlice));
}

TEST(TickleLocks, QueuedWaiterGetsLockWhenHolderGoesIdle) {
  // The holder is active when the request arrives (so the waiter queues)
  // but then stops touching the lock: the periodic re-check must revoke
  // the idle holder and promote the waiter — without any new request.
  sim::Simulator sim;
  LockManager lm(sim, {.style = LockStyle::kTickle,
                       .tickle_idle_timeout = sim::sec(10)});
  lm.acquire("doc", kAlice, LockMode::kExclusive, nullptr);
  sim.run_until(sim::sec(5));
  lm.touch("doc", kAlice);  // active at...
  bool granted = false;
  sim::Duration waited = 0;
  lm.acquire("doc", kBob, LockMode::kExclusive, [&](const LockGrant& g) {
    granted = g.granted;
    waited = g.waited;
  });
  EXPECT_FALSE(granted);  // Alice was active 0s ago
  sim.run_until(sim::sec(30));
  EXPECT_TRUE(granted);  // revoked at ~15s (touch at 5s + 10s idle)
  EXPECT_TRUE(lm.holds("doc", kBob));
  EXPECT_FALSE(lm.holds("doc", kAlice));
  EXPECT_NEAR(static_cast<double>(waited),
              static_cast<double>(sim::sec(10)),
              static_cast<double>(sim::msec(10)));
  EXPECT_EQ(lm.stats().transfers, 1u);
}

TEST(TickleLocks, RecheckRearmsWhileHolderStaysActive) {
  sim::Simulator sim;
  LockManager lm(sim, {.style = LockStyle::kTickle,
                       .tickle_idle_timeout = sim::sec(10)});
  lm.acquire("doc", kAlice, LockMode::kExclusive, nullptr);
  bool granted = false;
  lm.acquire("doc", kBob, LockMode::kExclusive,
             [&](const LockGrant& g) { granted = g.granted; });
  // Alice keeps touching every 5s: never idle, Bob keeps waiting.
  sim::PeriodicTimer keepalive(sim, sim::sec(5),
                               [&] { lm.touch("doc", kAlice); });
  keepalive.start();
  sim.run_until(sim::minutes(2));
  EXPECT_FALSE(granted);
  keepalive.stop();
  sim.run_until(sim::minutes(3));  // idleness finally accrues
  EXPECT_TRUE(granted);
}

// ----------------------------------------------------------------- soft

TEST(SoftLocks, ConflictingAcquisitionsBothSucceedWithAwareness) {
  sim::Simulator sim;
  LockManager lm(sim, {.style = LockStyle::kSoft});
  std::vector<std::pair<ClientId, ClientId>> conflicts;  // (holder, intruder)
  LockObservers obs;
  obs.on_conflict = [&](const std::string&, ClientId holder,
                        ClientId intruder) {
    conflicts.emplace_back(holder, intruder);
  };
  lm.set_observers(std::move(obs));
  lm.acquire("doc", kAlice, LockMode::kExclusive, nullptr);
  LockGrant bob_grant;
  lm.acquire("doc", kBob, LockMode::kExclusive,
             [&](const LockGrant& g) { bob_grant = g; });
  EXPECT_TRUE(bob_grant.granted);
  ASSERT_EQ(bob_grant.conflicts.size(), 1u);
  EXPECT_EQ(bob_grant.conflicts[0], kAlice);
  ASSERT_EQ(conflicts.size(), 1u);
  EXPECT_EQ(conflicts[0], (std::pair<ClientId, ClientId>{kAlice, kBob}));
  EXPECT_EQ(lm.holders("doc").size(), 2u);
  EXPECT_EQ(lm.stats().conflicts, 1u);
  EXPECT_EQ(lm.stats().waits, 0u);  // soft locks never block
}

TEST(SoftLocks, NonOverlappingSharedAccessIsSilent) {
  sim::Simulator sim;
  LockManager lm(sim, {.style = LockStyle::kSoft});
  lm.acquire("doc", kAlice, LockMode::kShared, nullptr);
  LockGrant g;
  lm.acquire("doc", kBob, LockMode::kShared,
             [&](const LockGrant& r) { g = r; });
  EXPECT_TRUE(g.granted);
  EXPECT_TRUE(g.conflicts.empty());
  EXPECT_EQ(lm.stats().conflicts, 0u);
}

// --------------------------------------------------------------- notify

TEST(NotifyLocks, ReadersProceedWhileWriterHolds) {
  sim::Simulator sim;
  LockManager lm(sim, {.style = LockStyle::kNotify});
  lm.acquire("doc", kAlice, LockMode::kExclusive, nullptr);
  bool reader = false;
  lm.acquire("doc", kBob, LockMode::kShared,
             [&](const LockGrant& g) { reader = g.granted; });
  EXPECT_TRUE(reader);  // "read over the shoulder"
}

TEST(NotifyLocks, WritersStillExcludeWriters) {
  sim::Simulator sim;
  LockManager lm(sim, {.style = LockStyle::kNotify});
  lm.acquire("doc", kAlice, LockMode::kExclusive, nullptr);
  bool writer = false;
  lm.acquire("doc", kBob, LockMode::kExclusive,
             [&](const LockGrant& g) { writer = g.granted; });
  EXPECT_FALSE(writer);
  lm.release("doc", kAlice);
  EXPECT_TRUE(writer);
}

TEST(NotifyLocks, ChangeNotificationsReachRegisteredReaders) {
  sim::Simulator sim;
  LockManager lm(sim, {.style = LockStyle::kNotify});
  std::vector<ClientId> notified;
  LockObservers obs;
  obs.on_change = [&](const std::string&, ClientId reader, ClientId writer) {
    EXPECT_EQ(writer, kAlice);
    notified.push_back(reader);
  };
  lm.set_observers(std::move(obs));
  lm.register_interest("doc", kBob);
  lm.register_interest("doc", kCarol);
  lm.register_interest("doc", kAlice);  // the writer itself: skipped
  lm.acquire("doc", kAlice, LockMode::kExclusive, nullptr);
  lm.notify_change("doc", kAlice);
  EXPECT_EQ(notified, (std::vector<ClientId>{kBob, kCarol}));
  EXPECT_EQ(lm.stats().notifications, 2u);
  lm.unregister_interest("doc", kBob);
  notified.clear();
  lm.notify_change("doc", kAlice);
  EXPECT_EQ(notified, (std::vector<ClientId>{kCarol}));
}

// -------------------------------------------------------- comparative

// The paper's qualitative claim (E1 mechanism): under the same contended
// workload, strict locking blocks while soft locking proceeds with
// conflict awareness instead.
TEST(LockStyleComparison, SoftNeverWaitsStrictDoes) {
  sim::Simulator sim;
  LockManager strict(sim, {.style = LockStyle::kStrict});
  LockManager soft(sim, {.style = LockStyle::kSoft});
  for (auto* lm : {&strict, &soft}) {
    lm->acquire("p1", kAlice, LockMode::kExclusive, nullptr);
    lm->acquire("p1", kBob, LockMode::kExclusive, nullptr);
  }
  EXPECT_EQ(strict.stats().waits, 1u);
  EXPECT_EQ(soft.stats().waits, 0u);
  EXPECT_EQ(soft.stats().conflicts, 1u);
  EXPECT_EQ(strict.stats().conflicts, 0u);  // strict users are unaware
}

}  // namespace
}  // namespace coop::ccontrol
