// Unit and property tests for Lamport clocks, vector clocks and causality.
#include <gtest/gtest.h>

#include "sim/rng.hpp"
#include "time/logical_clocks.hpp"
#include "util/codec.hpp"

namespace coop::logical {
namespace {

TEST(LamportClock, TickIncrements) {
  LamportClock c;
  EXPECT_EQ(c.tick(), 1u);
  EXPECT_EQ(c.tick(), 2u);
  EXPECT_EQ(c.time(), 2u);
}

TEST(LamportClock, MergeJumpsPastReceived) {
  LamportClock c;
  c.tick();
  EXPECT_EQ(c.merge(10), 11u);
  EXPECT_EQ(c.merge(3), 12u);  // stale timestamps still advance locally
}

TEST(VectorClock, FreshClocksAreEqual) {
  VectorClock a(3), b(3);
  EXPECT_EQ(a.compare(b), Causality::kEqual);
  EXPECT_TRUE(a == b);
}

TEST(VectorClock, TickCreatesHappenedBefore) {
  VectorClock a(3), b(3);
  b.tick(1);
  EXPECT_EQ(a.compare(b), Causality::kBefore);
  EXPECT_EQ(b.compare(a), Causality::kAfter);
  EXPECT_TRUE(b.dominates(a));
  EXPECT_FALSE(a.dominates(b));
}

TEST(VectorClock, IndependentTicksAreConcurrent) {
  VectorClock a(3), b(3);
  a.tick(0);
  b.tick(1);
  EXPECT_EQ(a.compare(b), Causality::kConcurrent);
  EXPECT_TRUE(a.concurrent_with(b));
  EXPECT_FALSE(a.dominates(b));
  EXPECT_FALSE(b.dominates(a));
}

TEST(VectorClock, MergeTakesPointwiseMax) {
  VectorClock a(3), b(3);
  a.tick(0);
  a.tick(0);
  b.tick(1);
  a.merge(b);
  EXPECT_EQ(a.at(0), 2u);
  EXPECT_EQ(a.at(1), 1u);
  EXPECT_TRUE(a.dominates(b));
}

TEST(VectorClock, DifferentWidthsCompareCorrectly) {
  VectorClock a(2), b(4);
  a.tick(0);
  b.tick(0);
  EXPECT_EQ(a.compare(b), Causality::kEqual);
  b.tick(3);
  EXPECT_EQ(a.compare(b), Causality::kBefore);
}

TEST(VectorClock, DeliverableFromRequiresExactlyNextFromSender) {
  VectorClock local(3);
  // First message from sender 1: msg = [0,1,0].
  VectorClock msg(3);
  msg.tick(1);
  EXPECT_TRUE(local.deliverable_from(msg, 1));
  // Second message without first being reflected locally: not deliverable.
  VectorClock msg2(3);
  msg2.tick(1);
  msg2.tick(1);
  EXPECT_FALSE(local.deliverable_from(msg2, 1));
  // After merging msg, msg2 becomes deliverable.
  local.merge(msg);
  EXPECT_TRUE(local.deliverable_from(msg2, 1));
}

TEST(VectorClock, DeliverableFromBlocksMissingCausalDependency) {
  // Sender 1's message depends on an event from site 2 the receiver has
  // not seen: must be held back.
  VectorClock local(3);
  VectorClock msg(3);
  msg.tick(2);  // dependency on site 2
  msg.tick(1);  // the send itself
  EXPECT_FALSE(local.deliverable_from(msg, 1));
  VectorClock dep(3);
  dep.tick(2);
  local.merge(dep);
  EXPECT_TRUE(local.deliverable_from(msg, 1));
}

TEST(VectorClock, EncodeDecodeRoundTrip) {
  VectorClock a(4);
  a.tick(0);
  a.tick(2);
  a.tick(2);
  util::Writer w;
  a.encode(w);
  const std::string buf = w.take();
  util::Reader r(buf);
  const VectorClock b = VectorClock::decode(r);
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(r.failed());
}

TEST(VectorClock, ToStringIsReadable) {
  VectorClock a(3);
  a.tick(0);
  a.tick(2);
  EXPECT_EQ(a.to_string(), "[1,0,1]");
}

TEST(VectorClock, TotalSumsComponents) {
  VectorClock a(3);
  a.tick(0);
  a.tick(1);
  a.tick(1);
  EXPECT_EQ(a.total(), 3u);
}

// Property: compare() is antisymmetric and consistent with dominates().
TEST(VectorClockProperty, CompareAntisymmetricOnRandomClocks) {
  sim::Rng rng(99);
  for (int trial = 0; trial < 500; ++trial) {
    VectorClock a(4), b(4);
    for (int i = 0; i < 6; ++i) {
      a.set(static_cast<std::size_t>(rng.uniform_int(0, 3)),
            static_cast<std::uint64_t>(rng.uniform_int(0, 3)));
      b.set(static_cast<std::size_t>(rng.uniform_int(0, 3)),
            static_cast<std::uint64_t>(rng.uniform_int(0, 3)));
    }
    const Causality ab = a.compare(b);
    const Causality ba = b.compare(a);
    switch (ab) {
      case Causality::kEqual:
        EXPECT_EQ(ba, Causality::kEqual);
        break;
      case Causality::kBefore:
        EXPECT_EQ(ba, Causality::kAfter);
        break;
      case Causality::kAfter:
        EXPECT_EQ(ba, Causality::kBefore);
        break;
      case Causality::kConcurrent:
        EXPECT_EQ(ba, Causality::kConcurrent);
        break;
    }
  }
}

// Property: merge produces a clock dominating both inputs (least upper
// bound behaviour is what reintegration relies on).
TEST(VectorClockProperty, MergeDominatesBothInputs) {
  sim::Rng rng(123);
  for (int trial = 0; trial < 500; ++trial) {
    VectorClock a(5), b(5);
    for (std::size_t i = 0; i < 5; ++i) {
      a.set(i, static_cast<std::uint64_t>(rng.uniform_int(0, 4)));
      b.set(i, static_cast<std::uint64_t>(rng.uniform_int(0, 4)));
    }
    VectorClock m = a;
    m.merge(b);
    EXPECT_TRUE(m.dominates(a));
    EXPECT_TRUE(m.dominates(b));
  }
}

}  // namespace
}  // namespace coop::logical
