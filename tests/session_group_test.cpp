// Tests for SessionGroup: the membership->channel glue that makes a
// cooperative session survive member, sequencer and coordinator failures
// without harness-side wiring.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "groupware/session.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"

namespace coop::groupware {
namespace {

constexpr net::Address kCoord{100, 1};
constexpr net::McastId kGroup = 42;

groups::MembershipConfig member_cfg() {
  groups::MembershipConfig cfg;
  cfg.enable_failover = true;
  return cfg;
}

groups::ChannelConfig channel_cfg() {
  groups::ChannelConfig cfg;
  cfg.ordering = groups::Ordering::kTotal;
  cfg.retransmit_timeout = sim::msec(50);
  cfg.max_retransmits = 100;  // requests must outlive a ~1s failover
  return cfg;
}

struct Participant {
  std::unique_ptr<SessionGroup> sg;
  std::vector<std::string> log;
};

class SessionGroupTest : public ::testing::Test {
 protected:
  SessionGroupTest() : sim(23), net(sim) {
    coord = std::make_unique<groups::MembershipCoordinator>(net, kCoord,
                                                            member_cfg());
    for (net::NodeId n = 1; n <= 5; ++n) roster.push_back(n);
    for (net::NodeId n = 1; n <= 5; ++n) {
      auto p = std::make_unique<Participant>();
      p->sg = std::make_unique<SessionGroup>(net, n, roster, kCoord, kGroup,
                                             SessionGroup::Ports{},
                                             member_cfg(), channel_cfg());
      Participant* pp = p.get();
      p->sg->on_deliver(
          [pp](const groups::Delivery& d) { pp->log.push_back(d.payload); });
      parts.push_back(std::move(p));
    }
  }

  void join_all_and_settle() {
    for (auto& p : parts) p->sg->join();
    sim.run_until(sim::msec(800));
    for (auto& p : parts) {
      ASSERT_TRUE(p->sg->member().view().has_value());
      ASSERT_EQ(p->sg->member().view()->members.size(), 5u);
    }
  }

  sim::Simulator sim;
  net::Network net;
  std::unique_ptr<groups::MembershipCoordinator> coord;
  std::vector<net::NodeId> roster;
  std::vector<std::unique_ptr<Participant>> parts;
};

TEST_F(SessionGroupTest, BroadcastsDeliverIdenticallyToAllParticipants) {
  join_all_and_settle();
  for (std::size_t i = 0; i < parts.size(); ++i)
    parts[i]->sg->broadcast("hello" + std::to_string(i));
  sim.run_until(sim::sec(2));
  ASSERT_EQ(parts[0]->log.size(), 5u);
  for (auto& p : parts) EXPECT_EQ(p->log, parts[0]->log);
}

TEST_F(SessionGroupTest, MemberCrashIsWiredIntoChannelAutomatically) {
  join_all_and_settle();
  net.crash(5);
  // No harness-side mark_failed: the failure detector's view change must
  // reach the channel through SessionGroup.
  sim.run_until(sim::sec(3));
  for (std::size_t i = 0; i + 1 < parts.size(); ++i) {
    EXPECT_FALSE(parts[i]->sg->member().view()->contains({5, 1}));
  }
  parts[0]->sg->broadcast("after-crash");
  sim.run_until(sim::sec(5));
  for (std::size_t i = 0; i + 1 < parts.size(); ++i) {
    ASSERT_FALSE(parts[i]->log.empty());
    EXPECT_EQ(parts[i]->log.back(), "after-crash");
  }
}

TEST_F(SessionGroupTest, SurvivesCoordinatorAndSequencerCrashingTogether) {
  join_all_and_settle();
  std::map<std::size_t, std::vector<std::uint64_t>> installed;
  for (std::size_t i = 0; i < parts.size(); ++i)
    parts[i]->sg->on_view([&installed, i](const groups::View& v) {
      installed[i].push_back(v.id);
    });

  // Warm traffic, then node 1 — the total-order sequencer — and the
  // membership coordinator die in the same incident.
  for (auto& p : parts) p->sg->broadcast("pre");
  sim.run_until(sim::msec(1200));
  net.crash(100);
  net.crash(1);
  sim.run_until(sim::sec(6));

  // Node 2 is the lowest surviving rank: it must now host the membership
  // coordinator, and its channel slot must be the sequencer.
  ASSERT_NE(parts[1]->sg->member().hosted_coordinator(), nullptr);
  EXPECT_TRUE(parts[1]->sg->member().hosted_coordinator()->active());
  EXPECT_TRUE(parts[1]->sg->channel().is_sequencer());
  for (std::size_t i = 1; i < parts.size(); ++i) {
    ASSERT_TRUE(parts[i]->sg->member().view().has_value());
    EXPECT_EQ(parts[i]->sg->member().view()->members.size(), 4u);
    EXPECT_FALSE(parts[i]->sg->excluded());
  }

  // Post-failover traffic still totally ordered, and nothing a survivor
  // sent was lost across the double crash.
  for (std::size_t i = 1; i < parts.size(); ++i)
    parts[i]->sg->broadcast("post" + std::to_string(i));
  sim.run_until(sim::sec(10));
  const auto& ref = parts[1]->log;
  for (std::size_t i = 2; i < parts.size(); ++i) {
    EXPECT_EQ(parts[i]->log, ref) << "participant " << i << " diverged";
  }
  int posts = 0;
  for (const auto& p : ref)
    if (p.rfind("post", 0) == 0) ++posts;
  EXPECT_EQ(posts, 4);
  for (std::size_t i = 1; i < parts.size(); ++i)
    EXPECT_EQ(parts[i]->sg->channel().stats().failover_lost, 0u);

  // View ids stayed strictly monotone at every survivor.
  for (std::size_t i = 1; i < parts.size(); ++i) {
    const auto& ids = installed[i];
    for (std::size_t k = 1; k < ids.size(); ++k) EXPECT_GT(ids[k], ids[k - 1]);
  }
}

TEST_F(SessionGroupTest, EvictedParticipantIsSilencedOnceItLearns) {
  join_all_and_settle();
  coord->evict({5, 1});
  // The evictee learns the hard way: its lease expires, its takeover
  // claim is refused with "coordinator alive", and the re-join it then
  // sends is answered with a view that no longer contains it.
  sim.run_until(sim::sec(4));
  EXPECT_TRUE(parts[4]->sg->excluded());
  const std::size_t before = parts[4]->log.size();
  parts[0]->sg->broadcast("members-only");
  sim.run_until(sim::sec(6));
  // Delivered to the four members, suppressed at the evictee.
  for (std::size_t i = 0; i < 4; ++i)
    EXPECT_EQ(parts[i]->log.back(), "members-only");
  EXPECT_EQ(parts[4]->log.size(), before);
}

}  // namespace
}  // namespace coop::groupware
