// Causal-tracing tests: context derivation, end-to-end propagation through
// RPC retries and group retransmissions, ring wrap-around export, the
// COOP_TRACE_CAP override, and the critical-path analyzer's bucketing.
#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>
#include <string_view>
#include <vector>

#include "core/coop.hpp"
#include "obs/critical_path.hpp"

namespace coop {
namespace {

using obs::Category;
using obs::CausalContext;
using obs::TraceEvent;

/// All retained records belonging to one trace.
std::vector<TraceEvent> of_trace(const obs::Tracer& t, std::uint64_t trace) {
  std::vector<TraceEvent> out;
  for (const TraceEvent& e : t.snapshot()) {
    if (e.ctx.valid() && e.ctx.trace_id == trace) out.push_back(e);
  }
  return out;
}

/// First retained record with the given category and name, or nullopt.
std::optional<TraceEvent> find_event(const obs::Tracer& t, Category c,
                                     std::string_view name) {
  for (const TraceEvent& e : t.snapshot()) {
    if (e.category == c && std::string_view(e.name) == name) return e;
  }
  return std::nullopt;
}

bool trace_has(const std::vector<TraceEvent>& events, Category c,
               std::string_view name) {
  for (const TraceEvent& e : events) {
    if (e.category == c && std::string_view(e.name) == name) return true;
  }
  return false;
}

TEST(CausalContext, ChildKeepsTraceAndChainsParent) {
  const CausalContext root{7, 7, 0};
  ASSERT_TRUE(root.valid());
  const CausalContext child = root.child(12);
  EXPECT_EQ(child.trace_id, 7u);
  EXPECT_EQ(child.span_id, 12u);
  EXPECT_EQ(child.parent_span, 7u);
  EXPECT_FALSE(CausalContext{}.valid());
}

TEST(CausalContext, TracerMintsDeterministically) {
  obs::Tracer a(8);
  obs::Tracer b(8);
  EXPECT_EQ(a.mint_id(), b.mint_id());
  const CausalContext ra = a.begin_trace();
  const CausalContext rb = b.begin_trace();
  EXPECT_EQ(ra.trace_id, rb.trace_id);
  EXPECT_EQ(ra.span_id, ra.trace_id);
  EXPECT_EQ(ra.parent_span, 0u);
}

TEST(Causal, RpcCallHopsAndHandlingShareOneTrace) {
  Platform p(/*seed=*/11);
  auto& net = p.network();
  net.set_default_link(net::LinkModel::lan());
  rpc::RpcServer server(net, {2, 1});
  server.register_method("echo", [](const std::string& req) {
    return rpc::HandlerResult::success(req);
  });
  rpc::RpcClient client(net, {1, 1});
  rpc::RpcResult result;
  client.call({2, 1}, "echo", "hi", [&](const rpc::RpcResult& r) {
    result = r;
  });
  p.run();
  ASSERT_TRUE(result.ok());

  const auto call = find_event(p.tracer(), Category::kRpc, "call");
  ASSERT_TRUE(call.has_value());
  ASSERT_TRUE(call->ctx.valid());
  const auto events = of_trace(p.tracer(), call->ctx.trace_id);
  // The whole round trip is one trace: call, request hop, server handling,
  // reply hop, completion.
  EXPECT_TRUE(trace_has(events, Category::kRpc, "handle"));
  EXPECT_TRUE(trace_has(events, Category::kRpc, "rpc"));
  int delivers = 0;
  for (const TraceEvent& e : events) {
    if (e.category == Category::kNet && std::string_view(e.name) == "deliver")
      ++delivers;
  }
  EXPECT_GE(delivers, 2);  // request + reply

  // Every non-root record's parent is another span of the same trace.
  for (const TraceEvent& e : events) {
    if (e.ctx.parent_span == 0) continue;
    bool found = false;
    for (const TraceEvent& other : events) {
      if (other.ctx.span_id == e.ctx.parent_span) found = true;
    }
    EXPECT_TRUE(found) << e.name << " parent " << e.ctx.parent_span;
  }
}

TEST(Causal, RpcRetrySurvivesInCallTrace) {
  Platform p(/*seed=*/12);
  auto& sim = p.simulator();
  auto& net = p.network();
  net.set_default_link(net::LinkModel::lan());
  rpc::RpcServer server(net, {2, 1});
  server.register_method("echo", [](const std::string& req) {
    return rpc::HandlerResult::success(req);
  });
  rpc::RpcClient client(net, {1, 1});

  // First attempt (t=0) and first retry (t=50ms) die in the partition;
  // the second retry (t=150ms) goes through after the heal.
  net.partition({1}, {2});
  sim.schedule_at(sim::msec(75), [&net] { net.heal_partition(); });
  rpc::RpcResult result;
  client.call({2, 1}, "echo", "again", [&](const rpc::RpcResult& r) {
    result = r;
  }, {.timeout = sim::msec(50), .retries = 3, .backoff = 2.0});
  p.run();
  ASSERT_TRUE(result.ok());

  const auto call = find_event(p.tracer(), Category::kRpc, "call");
  ASSERT_TRUE(call.has_value());
  const auto events = of_trace(p.tracer(), call->ctx.trace_id);
  // Retries are children inside the call's trace, carrying the timeout
  // that lapsed ("waited") for the critical-path retry bucket.
  int retries = 0;
  for (const TraceEvent& e : events) {
    if (e.category != Category::kRpc || std::string_view(e.name) != "retry")
      continue;
    ++retries;
    EXPECT_EQ(e.ctx.parent_span, call->ctx.span_id);
    bool waited = false;
    for (std::uint8_t i = 0; i < e.attr_count; ++i) {
      if (std::string_view(e.attrs[i].key) == "waited" &&
          e.attrs[i].value > 0)
        waited = true;
    }
    EXPECT_TRUE(waited);
  }
  EXPECT_GE(retries, 2);
  // The server's handling and the completion still land in the same trace
  // even though the successful attempt was a retransmission.
  EXPECT_TRUE(trace_has(events, Category::kRpc, "handle"));
  EXPECT_TRUE(trace_has(events, Category::kRpc, "rpc"));
}

TEST(Causal, GroupRetransmissionKeepsBroadcastTrace) {
  Platform p(/*seed=*/13);
  auto& sim = p.simulator();
  auto& net = p.network();
  net.set_default_link(net::LinkModel::lan());
  const std::vector<net::Address> members = {{1, 10}, {2, 10}};
  groups::GroupChannel alice(net, members[0], 1, {});
  groups::GroupChannel bob(net, members[1], 1, {});
  alice.set_members(members);
  bob.set_members(members);
  std::optional<CausalContext> bob_ctx;
  bob.on_deliver([&](const groups::Delivery& d) { bob_ctx = d.ctx; });

  // The first multicast copy and the first retransmit (t~51ms) die in the
  // partition; a later retransmit reaches bob after the heal.
  net.partition({1}, {2});
  sim.schedule_at(sim::msec(60), [&net] { net.heal_partition(); });
  std::uint64_t trace = 0;
  sim.schedule_at(sim::msec(1), [&] {
    alice.broadcast("hello");
    const auto b = find_event(p.tracer(), Category::kGroup, "broadcast");
    ASSERT_TRUE(b.has_value());
    trace = b->ctx.trace_id;
  });
  p.run();

  ASSERT_NE(trace, 0u);
  EXPECT_GE(alice.stats().retransmits, 1u);
  // Bob received the payload, and his delivery context is part of the
  // broadcast's trace even though it arrived via a retransmission.
  ASSERT_TRUE(bob_ctx.has_value());
  EXPECT_EQ(bob_ctx->trace_id, trace);

  const auto events = of_trace(p.tracer(), trace);
  bool retransmit_waited = false;
  for (const TraceEvent& e : events) {
    if (e.category != Category::kGroup ||
        std::string_view(e.name) != "retransmit")
      continue;
    for (std::uint8_t i = 0; i < e.attr_count; ++i) {
      if (std::string_view(e.attrs[i].key) == "waited" &&
          e.attrs[i].value > 0)
        retransmit_waited = true;
    }
  }
  EXPECT_TRUE(retransmit_waited);
  // Two delivery spans in the one trace: alice's local echo and bob's.
  int delivers = 0;
  for (const TraceEvent& e : events) {
    if (e.category == Category::kGroup &&
        std::string_view(e.name) == "deliver")
      ++delivers;
  }
  EXPECT_EQ(delivers, 2);
}

TEST(Causal, StreamFrameLinksEmitToSinkSpan) {
  Platform p(/*seed=*/14);
  auto& net = p.network();
  net.set_default_link(net::LinkModel::lan());
  streams::MediaSource src(p.simulator(), 1, {.fps = 25});
  streams::StreamBinding binding(net, src, {1, 1}, net::Address{2, 1});
  streams::MediaSink sink(net, {2, 1});
  src.start();
  p.run_until(sim::msec(200));
  src.stop();
  ASSERT_GT(sink.frames_received(), 0u);

  const auto emit = find_event(p.tracer(), Category::kStream, "emit");
  ASSERT_TRUE(emit.has_value());
  const auto events = of_trace(p.tracer(), emit->ctx.trace_id);
  // emit -> network hops -> sink frame span, all one trace per frame.
  EXPECT_TRUE(trace_has(events, Category::kNet, "deliver"));
  EXPECT_TRUE(trace_has(events, Category::kStream, "frame"));
}

TEST(Tracer, WrapAroundExportsSurvivingTailInOrder) {
  obs::Tracer t(4);
  for (int i = 0; i < 11; ++i)
    t.event(i * 10, Category::kApp, "e", {{"i", static_cast<double>(i)}});
  std::ostringstream out;
  t.export_jsonl(out);
  // Only the newest four records survive, exported oldest-first.
  std::vector<std::string> lines;
  std::istringstream in(out.str());
  for (std::string line; std::getline(in, line);) lines.push_back(line);
  ASSERT_EQ(lines.size(), 4u);
  EXPECT_NE(lines[0].find("\"ts\":70"), std::string::npos);
  EXPECT_NE(lines[3].find("\"ts\":100"), std::string::npos);
}

TEST(Tracer, WrappedChromeExportDropsFlowsToEvictedParents) {
  obs::Tracer t(2);
  const CausalContext root = t.begin_trace();
  t.event(10, Category::kApp, "root", root);
  const CausalContext c1 = root.child(t.mint_id());
  t.event(20, Category::kApp, "hop1", c1);
  const CausalContext c2 = c1.child(t.mint_id());
  t.event(30, Category::kApp, "hop2", c2);  // evicts "root"
  std::ostringstream out;
  t.export_chrome(out);
  const std::string json = out.str();
  // hop1 -> hop2 is linkable (both retained); the arrow into hop1 from the
  // evicted root must not be emitted (no dangling flow starts).
  EXPECT_NE(json.find("\"ph\":\"s\""), std::string::npos);
  const auto count = [&json](std::string_view needle) {
    std::size_t n = 0;
    for (std::size_t pos = json.find(needle); pos != std::string::npos;
         pos = json.find(needle, pos + 1))
      ++n;
    return n;
  };
  EXPECT_EQ(count("\"ph\":\"s\""), 1u);
  EXPECT_EQ(count("\"ph\":\"f\""), 1u);
}

TEST(Tracer, PerCategoryDropCountsAttributeEvictions) {
  obs::Tracer t(2);
  t.event(1, Category::kNet, "a");
  t.event(2, Category::kNet, "b");
  t.event(3, Category::kRpc, "c");  // evicts kNet "a"
  t.event(4, Category::kRpc, "d");  // evicts kNet "b"
  t.event(5, Category::kRpc, "e");  // evicts kRpc "c"
  EXPECT_EQ(t.dropped(), 3u);
  EXPECT_EQ(t.dropped_of(Category::kNet), 2u);
  EXPECT_EQ(t.dropped_of(Category::kRpc), 1u);
  EXPECT_EQ(t.dropped_of(Category::kStream), 0u);
  t.clear();
  EXPECT_EQ(t.dropped_of(Category::kNet), 0u);
}

TEST(Tracer, CapacityOverridableThroughEnvironment) {
  ASSERT_EQ(::setenv("COOP_TRACE_CAP", "32", 1), 0);
  EXPECT_EQ(obs::Tracer().capacity(), 32u);
  ASSERT_EQ(::setenv("COOP_TRACE_CAP", "not-a-number", 1), 0);
  EXPECT_EQ(obs::Tracer().capacity(), obs::Tracer::kDefaultCapacity);
  ASSERT_EQ(::setenv("COOP_TRACE_CAP", "0", 1), 0);
  EXPECT_EQ(obs::Tracer().capacity(), obs::Tracer::kDefaultCapacity);
  ASSERT_EQ(::unsetenv("COOP_TRACE_CAP"), 0);
  EXPECT_EQ(obs::Tracer().capacity(), obs::Tracer::kDefaultCapacity);
  // An explicit capacity always wins over the environment.
  ASSERT_EQ(::setenv("COOP_TRACE_CAP", "32", 1), 0);
  EXPECT_EQ(obs::Tracer(7).capacity(), 7u);
  ASSERT_EQ(::unsetenv("COOP_TRACE_CAP"), 0);
}

TEST(CriticalPath, BucketsQueueLinkServiceRetry) {
  obs::Tracer t(16);
  // One synthetic trace: a hop with 30us of queueing inside a 100us
  // delivery, 40us of server handling, and a 200us retry timeout.
  t.span(0, 100, Category::kNet, "deliver", {1, 2, 1}, {{"queue", 30}});
  t.span(100, 140, Category::kRpc, "handle", {1, 3, 2});
  t.event(140, Category::kRpc, "retry", {1, 4, 2}, {{"waited", 200}});
  const obs::CriticalPath cp(t);
  ASSERT_EQ(cp.traces().size(), 1u);
  const obs::TraceBreakdown& tb = cp.traces()[0];
  EXPECT_EQ(tb.trace_id, 1u);
  EXPECT_EQ(tb.buckets[static_cast<std::size_t>(obs::PathBucket::kQueue)],
            30);
  EXPECT_EQ(tb.buckets[static_cast<std::size_t>(obs::PathBucket::kLink)],
            70);
  EXPECT_EQ(tb.buckets[static_cast<std::size_t>(obs::PathBucket::kService)],
            40);
  EXPECT_EQ(tb.buckets[static_cast<std::size_t>(obs::PathBucket::kRetry)],
            200);
  EXPECT_EQ(tb.span(), 140);
  EXPECT_EQ(cp.total_us(obs::PathBucket::kRetry), 200);
  EXPECT_DOUBLE_EQ(cp.end_to_end_us().max(), 140.0);

  std::ostringstream out;
  cp.write_json(out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"traces\":1"), std::string::npos);
  EXPECT_NE(json.find("\"queue\":{\"total_us\":30"), std::string::npos);
  EXPECT_NE(json.find("\"link\":{\"total_us\":70"), std::string::npos);
  EXPECT_NE(json.find("\"service\":{\"total_us\":40"), std::string::npos);
  EXPECT_NE(json.find("\"retry\":{\"total_us\":200"), std::string::npos);
}

TEST(CriticalPath, GroupsMultipleTracesAndIgnoresContextFreeRecords) {
  obs::Tracer t(16);
  t.event(5, Category::kSim, "step");  // no ctx: ignored
  t.span(0, 50, Category::kNet, "deliver", {1, 2, 1}, {{"queue", 10}});
  t.span(10, 90, Category::kNet, "deliver", {2, 3, 2}, {{"queue", 0}});
  const obs::CriticalPath cp(t);
  ASSERT_EQ(cp.traces().size(), 2u);
  EXPECT_EQ(cp.total_us(obs::PathBucket::kQueue), 10);
  EXPECT_EQ(cp.total_us(obs::PathBucket::kLink), 120);
  EXPECT_EQ(cp.end_to_end_us().count(), 2u);
}

TEST(CriticalPath, RealRpcRunAccountsServiceTime) {
  Platform p(/*seed=*/15);
  auto& net = p.network();
  net.set_default_link(net::LinkModel::lan());
  rpc::RpcServer server(net, {2, 1});
  server.set_processing_time(sim::msec(3));
  server.register_method("work", [](const std::string&) {
    return rpc::HandlerResult::success("done");
  });
  rpc::RpcClient client(net, {1, 1});
  for (int i = 0; i < 5; ++i) {
    client.call({2, 1}, "work", "x", [](const rpc::RpcResult&) {});
  }
  p.run();
  const obs::CriticalPath cp(p.tracer());
  EXPECT_GE(cp.traces().size(), 5u);
  // 5 calls x 3ms modelled processing show up in the service bucket.
  EXPECT_GE(cp.total_us(obs::PathBucket::kService), 5 * 3000);
  EXPECT_GT(cp.total_us(obs::PathBucket::kLink), 0);
}

}  // namespace
}  // namespace coop
