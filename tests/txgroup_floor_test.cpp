// Tests for transaction groups (tailorable access rules) and floor control
// policies.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "ccontrol/floor.hpp"
#include "ccontrol/store.hpp"
#include "ccontrol/txgroup.hpp"
#include "sim/simulator.hpp"

namespace coop::ccontrol {
namespace {

constexpr ClientId kAlice = 1;
constexpr ClientId kBob = 2;
constexpr ClientId kCarol = 3;

// ------------------------------------------------------ transaction groups

TEST(TxGroup, NonMembersAreRejected) {
  ObjectStore store;
  TransactionGroup g(store);
  EXPECT_FALSE(g.write(kAlice, "k", "v"));
  g.join(kAlice);
  EXPECT_TRUE(g.write(kAlice, "k", "v"));
  g.leave(kAlice);
  EXPECT_FALSE(g.write(kAlice, "k", "v2"));
}

TEST(TxGroup, SerialRuleDeniesOverlappingWrite) {
  ObjectStore store;
  TransactionGroup g(store);
  g.set_rule(TransactionGroup::serial_rule());
  g.join(kAlice);
  g.join(kBob);
  g.begin_activity(kAlice, "sec1", /*writing=*/true);
  EXPECT_TRUE(g.write(kAlice, "sec1", "a"));
  EXPECT_FALSE(g.write(kBob, "sec1", "b"));  // denied: active writer
  EXPECT_EQ(g.stats().denied, 1u);
  EXPECT_EQ(store.read("sec1"), "a");
  // Alice finishes; Bob may now write.
  g.end_activity(kAlice);
  EXPECT_TRUE(g.write(kBob, "sec1", "b"));
}

TEST(TxGroup, SerialRuleDeniesWriteOverActiveReaders) {
  ObjectStore store;
  TransactionGroup g(store);
  g.set_rule(TransactionGroup::serial_rule());
  g.join(kAlice);
  g.join(kBob);
  g.begin_activity(kAlice, "sec1", /*writing=*/false);
  EXPECT_FALSE(g.write(kBob, "sec1", "b"));
  EXPECT_TRUE(g.read(kBob, "sec1").has_value() == false);  // key absent
}

TEST(TxGroup, CooperativeRuleAllowsOverlapWithNotification) {
  ObjectStore store;
  TransactionGroup g(store);
  g.set_rule(TransactionGroup::cooperative_rule());
  std::vector<std::pair<ClientId, ClientId>> notices;  // (notified, actor)
  g.on_notify([&](ClientId notified, const OpContext& ctx) {
    notices.emplace_back(notified, ctx.member);
  });
  g.join(kAlice);
  g.join(kBob);
  g.begin_activity(kAlice, "sec1", /*writing=*/true);
  EXPECT_TRUE(g.write(kBob, "sec1", "b"));  // allowed despite overlap
  ASSERT_EQ(notices.size(), 1u);
  EXPECT_EQ(notices[0], (std::pair<ClientId, ClientId>{kAlice, kBob}));
  EXPECT_EQ(g.stats().notifications, 1u);
  EXPECT_EQ(g.stats().denied, 0u);
}

TEST(TxGroup, TailoringSwapsPolicyAtRuntime) {
  ObjectStore store;
  TransactionGroup g(store);
  g.join(kAlice);
  g.join(kBob);
  g.begin_activity(kAlice, "sec1", /*writing=*/true);
  g.set_rule(TransactionGroup::serial_rule());
  EXPECT_FALSE(g.write(kBob, "sec1", "x"));
  g.set_rule(TransactionGroup::cooperative_rule());
  EXPECT_TRUE(g.write(kBob, "sec1", "x"));  // same situation, new policy
}

TEST(TxGroup, OwnerRuleRestrictsWrites) {
  ObjectStore store;
  TransactionGroup g(store);
  g.set_rule(TransactionGroup::owner_rule({{"intro", kAlice}}));
  g.join(kAlice);
  g.join(kBob);
  EXPECT_TRUE(g.write(kAlice, "intro", "by alice"));
  EXPECT_FALSE(g.write(kBob, "intro", "by bob"));
  EXPECT_TRUE(g.write(kBob, "body", "unowned section"));
  EXPECT_EQ(store.read("intro"), "by alice");
}

TEST(TxGroup, LeaveEndsActivity) {
  ObjectStore store;
  TransactionGroup g(store);
  g.set_rule(TransactionGroup::serial_rule());
  g.join(kAlice);
  g.join(kBob);
  g.begin_activity(kAlice, "sec1", /*writing=*/true);
  EXPECT_FALSE(g.write(kBob, "sec1", "x"));
  g.leave(kAlice);  // implicit end_activity
  EXPECT_TRUE(g.write(kBob, "sec1", "x"));
}

// -------------------------------------------------------------- floor

TEST(Floor, FirstRequesterGetsFloorImmediately) {
  sim::Simulator sim;
  FloorControl fc(sim, {.policy = FloorPolicy::kExplicitRelease});
  bool got = false;
  fc.request(kAlice, [&](bool g) { got = g; });
  EXPECT_TRUE(got);
  EXPECT_EQ(fc.holder(), kAlice);
}

TEST(Floor, ExplicitReleasePassesFifo) {
  sim::Simulator sim;
  FloorControl fc(sim, {.policy = FloorPolicy::kExplicitRelease});
  std::vector<ClientId> order;
  fc.request(kAlice, [&](bool) { order.push_back(kAlice); });
  fc.request(kBob, [&](bool) { order.push_back(kBob); });
  fc.request(kCarol, [&](bool) { order.push_back(kCarol); });
  EXPECT_EQ(order, (std::vector<ClientId>{kAlice}));
  EXPECT_EQ(fc.queue_length(), 2u);
  fc.release(kAlice);
  EXPECT_EQ(fc.holder(), kBob);
  fc.release(kBob);
  EXPECT_EQ(order, (std::vector<ClientId>{kAlice, kBob, kCarol}));
}

TEST(Floor, ReleaseByNonHolderRetractsQueuedRequest) {
  sim::Simulator sim;
  FloorControl fc(sim, {.policy = FloorPolicy::kExplicitRelease});
  fc.request(kAlice, nullptr);
  fc.request(kBob, nullptr);
  fc.release(kBob);  // Bob changes his mind
  EXPECT_EQ(fc.queue_length(), 0u);
  fc.release(kAlice);
  EXPECT_FALSE(fc.holder().has_value());
}

TEST(Floor, PreemptiveTransfersImmediately) {
  sim::Simulator sim;
  FloorControl fc(sim, {.policy = FloorPolicy::kPreemptive});
  std::vector<std::pair<std::optional<ClientId>, std::optional<ClientId>>>
      changes;
  fc.on_floor_change([&](auto prev, auto next) {
    changes.emplace_back(prev, next);
  });
  fc.request(kAlice, nullptr);
  fc.request(kBob, nullptr);
  EXPECT_EQ(fc.holder(), kBob);
  EXPECT_EQ(fc.stats().preemptions, 1u);
  ASSERT_EQ(changes.size(), 2u);
  EXPECT_EQ(changes[1].first, kAlice);
  EXPECT_EQ(changes[1].second, kBob);
}

TEST(Floor, RoundRobinRotatesOnTimer) {
  sim::Simulator sim;
  FloorControl fc(sim, {.policy = FloorPolicy::kRoundRobin,
                        .rotation_period = sim::sec(5)});
  fc.request(kAlice, nullptr);
  fc.request(kBob, nullptr);
  fc.request(kCarol, nullptr);
  EXPECT_EQ(fc.holder(), kAlice);
  sim.run_until(sim::sec(6));
  EXPECT_EQ(fc.holder(), kBob);
  sim.run_until(sim::sec(11));
  EXPECT_EQ(fc.holder(), kCarol);
}

TEST(Floor, RoundRobinHolderKeepsFloorWhenQueueEmpty) {
  sim::Simulator sim;
  FloorControl fc(sim, {.policy = FloorPolicy::kRoundRobin,
                        .rotation_period = sim::sec(5)});
  fc.request(kAlice, nullptr);
  sim.run_until(sim::sec(30));
  EXPECT_EQ(fc.holder(), kAlice);
}

TEST(Floor, NegotiationGrantPassesFloor) {
  sim::Simulator sim;
  FloorControl fc(sim, {.policy = FloorPolicy::kNegotiation,
                        .negotiation_timeout = sim::sec(3)});
  std::vector<std::pair<ClientId, ClientId>> asks;
  fc.on_negotiate([&](ClientId holder, ClientId asker) {
    asks.emplace_back(holder, asker);
  });
  fc.request(kAlice, nullptr);
  bool bob_got = false;
  fc.request(kBob, [&](bool g) { bob_got = g; });
  ASSERT_EQ(asks.size(), 1u);
  EXPECT_EQ(asks[0], (std::pair<ClientId, ClientId>{kAlice, kBob}));
  fc.respond(kAlice, true);
  EXPECT_TRUE(bob_got);
  EXPECT_EQ(fc.holder(), kBob);
}

TEST(Floor, NegotiationRefusalDeniesRequest) {
  sim::Simulator sim;
  FloorControl fc(sim, {.policy = FloorPolicy::kNegotiation});
  fc.request(kAlice, nullptr);
  bool called = false, granted = true;
  fc.request(kBob, [&](bool g) {
    called = true;
    granted = g;
  });
  fc.respond(kAlice, false);
  EXPECT_TRUE(called);
  EXPECT_FALSE(granted);
  EXPECT_EQ(fc.holder(), kAlice);
  EXPECT_EQ(fc.stats().refusals, 1u);
  // The refused request is gone; the timeout must not fire later.
  sim.run();
  EXPECT_EQ(fc.holder(), kAlice);
}

TEST(Floor, NegotiationSilenceIsConsent) {
  sim::Simulator sim;
  FloorControl fc(sim, {.policy = FloorPolicy::kNegotiation,
                        .negotiation_timeout = sim::sec(3)});
  fc.request(kAlice, nullptr);
  bool bob_got = false;
  fc.request(kBob, [&](bool g) { bob_got = g; });
  sim.run_until(sim::sec(2));
  EXPECT_FALSE(bob_got);
  sim.run_until(sim::sec(4));  // holder stayed silent
  EXPECT_TRUE(bob_got);
  EXPECT_EQ(fc.holder(), kBob);
  EXPECT_EQ(fc.stats().auto_grants, 1u);
}

TEST(Floor, ReRequestWhileQueuedIsIdempotent) {
  sim::Simulator sim;
  FloorControl fc(sim, {.policy = FloorPolicy::kExplicitRelease});
  fc.request(kAlice, nullptr);
  int grants = 0;
  fc.request(kBob, [&](bool) { ++grants; });
  fc.request(kBob, [&](bool) { ++grants; });  // impatient re-request
  fc.request(kBob, nullptr);
  EXPECT_EQ(fc.queue_length(), 1u);
  fc.release(kAlice);
  EXPECT_EQ(fc.holder(), kBob);
  EXPECT_EQ(grants, 1);
  // No stale queue entry remains to wedge the floor later.
  fc.release(kBob);
  EXPECT_FALSE(fc.holder().has_value());
}

TEST(Floor, ReRequestByHolderIsIdempotent) {
  sim::Simulator sim;
  FloorControl fc(sim, {.policy = FloorPolicy::kExplicitRelease});
  fc.request(kAlice, nullptr);
  bool again = false;
  fc.request(kAlice, [&](bool g) { again = g; });
  EXPECT_TRUE(again);
  EXPECT_EQ(fc.stats().grants, 1u);  // no double grant
}

TEST(Floor, PolicyTailoringMidSession) {
  sim::Simulator sim;
  FloorControl fc(sim, {.policy = FloorPolicy::kExplicitRelease});
  fc.request(kAlice, nullptr);
  bool bob = false;
  fc.request(kBob, [&](bool g) { bob = g; });
  EXPECT_FALSE(bob);  // explicit release: Bob queues
  // The session tailors to preemptive: the NEXT request preempts, but
  // Bob's queued request keeps waiting for a release.
  fc.set_policy(FloorPolicy::kPreemptive);
  EXPECT_EQ(fc.policy(), FloorPolicy::kPreemptive);
  fc.request(kCarol, nullptr);
  EXPECT_EQ(fc.holder(), kCarol);
  EXPECT_FALSE(bob);
  fc.release(kCarol);
  EXPECT_TRUE(bob);  // queue drains on release as usual
}

TEST(Floor, LeavingNegotiationDisarmsConsentTimers) {
  sim::Simulator sim;
  FloorControl fc(sim, {.policy = FloorPolicy::kNegotiation,
                        .negotiation_timeout = sim::sec(3)});
  fc.request(kAlice, nullptr);
  bool bob = false;
  fc.request(kBob, [&](bool g) { bob = g; });
  fc.set_policy(FloorPolicy::kExplicitRelease);
  sim.run_until(sim::sec(10));  // the old silence-is-consent must NOT fire
  EXPECT_FALSE(bob);
  EXPECT_EQ(fc.stats().auto_grants, 0u);
  fc.release(kAlice);
  EXPECT_TRUE(bob);
}

TEST(Floor, SwitchingToRoundRobinStartsRotation) {
  sim::Simulator sim;
  FloorControl fc(sim, {.policy = FloorPolicy::kExplicitRelease,
                        .rotation_period = sim::sec(5)});
  fc.request(kAlice, nullptr);
  fc.request(kBob, nullptr);
  fc.set_policy(FloorPolicy::kRoundRobin);
  sim.run_until(sim::sec(6));
  EXPECT_EQ(fc.holder(), kBob);  // rotation kicked in
}

TEST(Floor, WaitTimesAreRecorded) {
  sim::Simulator sim;
  FloorControl fc(sim, {.policy = FloorPolicy::kExplicitRelease});
  fc.request(kAlice, nullptr);
  fc.request(kBob, nullptr);
  sim.run_until(sim::sec(7));
  fc.release(kAlice);
  EXPECT_DOUBLE_EQ(fc.stats().wait_time.max(),
                   static_cast<double>(sim::sec(7)));
}

}  // namespace
}  // namespace coop::ccontrol
