// Tests for management (placement/migration) and workflow (speech acts,
// office procedures).
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "mgmt/placement.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"
#include "workflow/procedure.hpp"
#include "workflow/speech_acts.hpp"

namespace coop {
namespace {

// ------------------------------------------------------------------- mgmt

class MgmtTest : public ::testing::Test {
 protected:
  MgmtTest() : sim(31), net(sim), domain(net) {
    // Three sites: 1 and 2 are close (LAN), 3 is across a WAN.
    net.set_default_link(net::LinkModel::lan());
    net.set_symmetric_link(1, 3, net::LinkModel::wan());
    net.set_symmetric_link(2, 3, net::LinkModel::wan());
    domain.add_node(1, 1.0);
    domain.add_node(2, 1.0);
    domain.add_node(3, 1.0);
  }

  sim::Simulator sim;
  net::Network net;
  mgmt::Domain domain;
  mgmt::UsageMonitor usage;
};

TEST_F(MgmtTest, ClusterCreationAndLoadAccounting) {
  domain.create_cluster("session", 1, 0.3);
  EXPECT_EQ(domain.location("session"), 1u);
  EXPECT_DOUBLE_EQ(domain.nodes().at(1).load, 0.3);
  EXPECT_TRUE(domain.move_cluster("session", 2));
  EXPECT_DOUBLE_EQ(domain.nodes().at(1).load, 0.0);
  EXPECT_DOUBLE_EQ(domain.nodes().at(2).load, 0.3);
  EXPECT_FALSE(domain.move_cluster("nope", 2));
  EXPECT_FALSE(domain.move_cluster("session", 99));
}

TEST_F(MgmtTest, StaticPolicyHasNoOpinion) {
  domain.create_cluster("session", 1);
  mgmt::StaticPolicy policy;
  EXPECT_FALSE(policy.place("session", domain, usage).has_value());
}

TEST_F(MgmtTest, LoadBalancingPicksLeastLoaded) {
  domain.create_cluster("a", 1, 0.8);
  domain.create_cluster("b", 2, 0.4);
  mgmt::LoadBalancingPolicy policy;
  const auto target = policy.place("whatever", domain, usage);
  EXPECT_EQ(target, 3u);  // node 3 is empty
}

TEST_F(MgmtTest, GroupAwareWorstCasePicksCentralNode) {
  domain.create_cluster("session", 1);
  // Accessors on nodes 1 and 3: placing at 1 or 3 gives one party a WAN
  // hop; worst-case at either end is the WAN latency; no strictly
  // central node exists, so any of the tied nodes minimizing the metric
  // is fine — but with usage ONLY from node 3, node 3 wins outright.
  usage.record("session", 3, 10);
  mgmt::GroupAwarePolicy policy(mgmt::GroupAwarePolicy::Metric::kWorstCase);
  EXPECT_EQ(policy.place("session", domain, usage), 3u);
}

TEST_F(MgmtTest, GroupAwareMeanWeighsUsage) {
  domain.create_cluster("session", 1);
  // Heavy use from node 3, light from node 1: mean metric moves the
  // cluster to 3; the light user pays the WAN, the heavy one does not.
  usage.record("session", 3, 90);
  usage.record("session", 1, 10);
  mgmt::GroupAwarePolicy policy(mgmt::GroupAwarePolicy::Metric::kMean);
  EXPECT_EQ(policy.place("session", domain, usage), 3u);
}

TEST_F(MgmtTest, GroupAwareWithNoUsageHasNoOpinion) {
  domain.create_cluster("session", 1);
  mgmt::GroupAwarePolicy policy;
  EXPECT_FALSE(policy.place("session", domain, usage).has_value());
}

TEST_F(MgmtTest, MigrationManagerMovesAndNotifies) {
  domain.create_cluster("session", 1);
  usage.record("session", 3, 100);
  mgmt::MigrationManager mgr(
      domain, usage,
      std::make_unique<mgmt::GroupAwarePolicy>());
  std::vector<std::string> events;
  mgr.on_migrate([&](const std::string& c, net::NodeId from,
                     net::NodeId to) {
    events.push_back(c + ":" + std::to_string(from) + "->" +
                     std::to_string(to));
  });
  const auto moved = mgr.evaluate("session");
  EXPECT_EQ(moved, 3u);
  EXPECT_EQ(domain.location("session"), 3u);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0], "session:1->3");
  // Second evaluation: already optimal, no move.
  EXPECT_FALSE(mgr.evaluate("session").has_value());
  EXPECT_EQ(mgr.migrations(), 1u);
}

TEST_F(MgmtTest, CapsulesMoveTheirClustersTogether) {
  EXPECT_TRUE(domain.create_capsule("session-proc", 1));
  EXPECT_FALSE(domain.create_capsule("session-proc", 1));  // duplicate
  EXPECT_FALSE(domain.create_capsule("ghost", 99));        // unknown node
  domain.create_cluster("docs", 1, 0.2, "session-proc");
  domain.create_cluster("awareness", 1, 0.1, "session-proc");
  domain.create_cluster("standalone", 1, 0.1);
  EXPECT_EQ(domain.capsule_clusters("session-proc").size(), 2u);

  EXPECT_TRUE(domain.move_capsule("session-proc", 3));
  EXPECT_EQ(domain.capsule_node("session-proc"), 3u);
  EXPECT_EQ(domain.location("docs"), 3u);
  EXPECT_EQ(domain.location("awareness"), 3u);
  EXPECT_EQ(domain.location("standalone"), 1u);  // not in the capsule
  EXPECT_NEAR(domain.nodes().at(3).load, 0.3, 1e-9);
  EXPECT_NEAR(domain.nodes().at(1).load, 0.1, 1e-9);
}

TEST_F(MgmtTest, IndependentClusterMoveLeavesItsCapsule) {
  domain.create_capsule("proc", 1);
  domain.create_cluster("docs", 1, 0.2, "proc");
  EXPECT_TRUE(domain.move_cluster("docs", 2));
  EXPECT_TRUE(domain.capsule_clusters("proc").empty());
  // Later capsule migration no longer drags the departed cluster.
  domain.move_capsule("proc", 3);
  EXPECT_EQ(domain.location("docs"), 2u);
}

TEST_F(MgmtTest, MoveCapsuleValidatesArguments) {
  EXPECT_FALSE(domain.move_capsule("nope", 1));
  domain.create_capsule("p", 1);
  EXPECT_FALSE(domain.move_capsule("p", 99));
  EXPECT_FALSE(domain.capsule_node("nope").has_value());
}

TEST_F(MgmtTest, UsageDecayLetsPatternShift) {
  domain.create_cluster("session", 1);
  usage.record("session", 1, 64);
  for (int i = 0; i < 8; ++i) usage.decay();
  usage.record("session", 3, 10);
  mgmt::GroupAwarePolicy policy(mgmt::GroupAwarePolicy::Metric::kMean);
  EXPECT_EQ(policy.place("session", domain, usage), 3u);
}

// ----------------------------------------------------------- speech acts

class SpeechActTest : public ::testing::Test {
 protected:
  sim::Simulator sim;
  workflow::ConversationManager cm{sim};
  static constexpr workflow::ClientId kCustomer = 1;
  static constexpr workflow::ClientId kPerformer = 2;
};

TEST_F(SpeechActTest, HappyPathLoop) {
  const auto id = cm.begin(kCustomer, kPerformer, "review chapter 3");
  EXPECT_EQ(cm.state(id), workflow::ConvState::kRequested);
  EXPECT_TRUE(cm.act(id, workflow::Act::kPromise, kPerformer));
  EXPECT_EQ(cm.state(id), workflow::ConvState::kPromised);
  sim.run_until(sim::sec(60));
  EXPECT_TRUE(cm.act(id, workflow::Act::kReport, kPerformer));
  EXPECT_TRUE(cm.act(id, workflow::Act::kAccept, kCustomer));
  EXPECT_EQ(cm.state(id), workflow::ConvState::kAccepted);
  EXPECT_EQ(cm.completed(), 1u);
  EXPECT_GE(cm.completion_latency().max(),
            static_cast<double>(sim::sec(60)));
  EXPECT_EQ(cm.open_count(), 0u);
}

TEST_F(SpeechActTest, CounterNegotiation) {
  const auto id = cm.begin(kCustomer, kPerformer, "big task");
  EXPECT_TRUE(cm.act(id, workflow::Act::kCounter, kPerformer));
  EXPECT_EQ(cm.state(id), workflow::ConvState::kCountered);
  EXPECT_TRUE(cm.act(id, workflow::Act::kAgree, kCustomer));
  EXPECT_EQ(cm.state(id), workflow::ConvState::kPromised);
}

TEST_F(SpeechActTest, DeclineTerminates) {
  const auto id = cm.begin(kCustomer, kPerformer, "impossible task");
  EXPECT_TRUE(cm.act(id, workflow::Act::kDecline, kPerformer));
  EXPECT_EQ(cm.state(id), workflow::ConvState::kDeclined);
  EXPECT_FALSE(cm.act(id, workflow::Act::kPromise, kPerformer));
}

TEST_F(SpeechActTest, RejectReopensPerformance) {
  const auto id = cm.begin(kCustomer, kPerformer, "report");
  cm.act(id, workflow::Act::kPromise, kPerformer);
  cm.act(id, workflow::Act::kReport, kPerformer);
  EXPECT_TRUE(cm.act(id, workflow::Act::kReject, kCustomer));
  EXPECT_EQ(cm.state(id), workflow::ConvState::kPromised);
  cm.act(id, workflow::Act::kReport, kPerformer);
  EXPECT_TRUE(cm.act(id, workflow::Act::kAccept, kCustomer));
}

TEST_F(SpeechActTest, WrongActorIsRejected) {
  const auto id = cm.begin(kCustomer, kPerformer, "task");
  // The customer cannot promise on the performer's behalf.
  EXPECT_FALSE(cm.act(id, workflow::Act::kPromise, kCustomer));
  cm.act(id, workflow::Act::kPromise, kPerformer);
  cm.act(id, workflow::Act::kReport, kPerformer);
  // The performer cannot accept their own work.
  EXPECT_FALSE(cm.act(id, workflow::Act::kAccept, kPerformer));
  EXPECT_EQ(cm.rejected_acts(), 2u);
}

TEST_F(SpeechActTest, EitherPartyMayCancel) {
  const auto a = cm.begin(kCustomer, kPerformer, "t1");
  EXPECT_TRUE(cm.act(a, workflow::Act::kCancel, kCustomer));
  const auto b = cm.begin(kCustomer, kPerformer, "t2");
  cm.act(b, workflow::Act::kPromise, kPerformer);
  EXPECT_TRUE(cm.act(b, workflow::Act::kCancel, kPerformer));
  // A third party cannot.
  const auto c = cm.begin(kCustomer, kPerformer, "t3");
  EXPECT_FALSE(cm.act(c, workflow::Act::kCancel, 99));
}

TEST_F(SpeechActTest, HistoryRecordsTheLoop) {
  const auto id = cm.begin(kCustomer, kPerformer, "task");
  cm.act(id, workflow::Act::kPromise, kPerformer);
  cm.act(id, workflow::Act::kReport, kPerformer);
  cm.act(id, workflow::Act::kAccept, kCustomer);
  const auto h = cm.history(id);
  ASSERT_EQ(h.size(), 4u);
  EXPECT_EQ(h[0].act, workflow::Act::kRequest);
  EXPECT_EQ(h[3].act, workflow::Act::kAccept);
}

TEST_F(SpeechActTest, TransitionsAreObservable) {
  int transitions = 0;
  cm.on_transition([&](workflow::ConversationId, workflow::ConvState,
                       const workflow::ActRecord&) { ++transitions; });
  const auto id = cm.begin(kCustomer, kPerformer, "task");
  cm.act(id, workflow::Act::kPromise, kPerformer);
  EXPECT_EQ(transitions, 2);  // begin + promise
}

// ------------------------------------------------------------- procedures

workflow::ProcedureDef expense_claim() {
  workflow::ProcedureDef def("expense-claim");
  def.add_step({"submit", "employee", {"check"}});
  def.add_step({"check", "clerk", {"approve", "audit"}});
  def.add_step({"approve", "manager", {"pay"}});
  def.add_step({"audit", "clerk", {"pay"}});
  def.add_step({"pay", "finance", {}});
  def.set_start({"submit"});
  return def;
}

class ProcedureTest : public ::testing::Test {
 protected:
  ProcedureTest() : engine(sim) {
    engine.assign_role(1, "employee");
    engine.assign_role(2, "clerk");
    engine.assign_role(3, "manager");
    engine.assign_role(4, "finance");
  }
  sim::Simulator sim;
  workflow::ProcedureEngine engine;
};

TEST_F(ProcedureTest, ValidationCatchesBadGraphs) {
  workflow::ProcedureDef ok = expense_claim();
  EXPECT_TRUE(ok.validate());

  workflow::ProcedureDef no_start("x");
  no_start.add_step({"a", "r", {}});
  EXPECT_FALSE(no_start.validate());

  workflow::ProcedureDef dangling("x");
  dangling.add_step({"a", "r", {"ghost"}});
  dangling.set_start({"a"});
  EXPECT_FALSE(dangling.validate());

  workflow::ProcedureDef cyclic("x");
  cyclic.add_step({"a", "r", {"b"}});
  cyclic.add_step({"b", "r", {"a"}});
  cyclic.set_start({"a"});
  EXPECT_FALSE(cyclic.validate());

  EXPECT_FALSE(ok.add_step({"submit", "dup", {}}));  // duplicate name
}

TEST_F(ProcedureTest, RoutesThroughParallelBranchesWithJoin) {
  const auto def = expense_claim();
  const auto id = engine.start(def);
  ASSERT_TRUE(id.has_value());
  const auto* inst = engine.instance(*id);
  EXPECT_EQ(inst->active(), std::vector<std::string>{"submit"});

  EXPECT_TRUE(engine.complete(*id, "submit", 1));
  EXPECT_TRUE(engine.complete(*id, "check", 2));
  // Both branches are now active in parallel.
  EXPECT_EQ(engine.instance(*id)->active().size(), 2u);
  EXPECT_TRUE(engine.complete(*id, "approve", 3));
  // Join: "pay" must wait for "audit" too.
  EXPECT_FALSE(engine.complete(*id, "pay", 4));
  EXPECT_TRUE(engine.complete(*id, "audit", 2));
  EXPECT_TRUE(engine.complete(*id, "pay", 4));
  EXPECT_TRUE(engine.instance(*id)->finished());
  EXPECT_EQ(engine.finished_count(), 1u);
}

TEST_F(ProcedureTest, RoleIsEnforcedPerStep) {
  const auto def = expense_claim();
  const auto id = engine.start(def);
  // The manager cannot perform the employee's submission.
  EXPECT_FALSE(engine.complete(*id, "submit", 3));
  EXPECT_TRUE(engine.complete(*id, "submit", 1));
}

TEST_F(ProcedureTest, InactiveStepCannotBeCompleted) {
  const auto def = expense_claim();
  const auto id = engine.start(def);
  EXPECT_FALSE(engine.complete(*id, "pay", 4));
  EXPECT_FALSE(engine.complete(*id, "nonexistent", 1));
  EXPECT_FALSE(engine.complete(999, "submit", 1));
}

TEST_F(ProcedureTest, ActivationCallbackBuildsWorkLists) {
  const auto def = expense_claim();
  std::vector<std::string> activations;
  engine.on_activate([&](std::uint64_t, const std::string& s) {
    activations.push_back(s);
  });
  const auto id = engine.start(def);
  engine.complete(*id, "submit", 1);
  engine.complete(*id, "check", 2);
  ASSERT_GE(activations.size(), 4u);
  EXPECT_EQ(activations[0], "submit");
  EXPECT_EQ(activations[1], "check");
  // approve + audit activated together after check.
  EXPECT_TRUE((activations[2] == "approve" && activations[3] == "audit") ||
              (activations[2] == "audit" && activations[3] == "approve"));
}

TEST_F(ProcedureTest, AuditTrailRecordsActorsAndTimes) {
  const auto def = expense_claim();
  const auto id = engine.start(def);
  engine.complete(*id, "submit", 1);
  sim.run_until(sim::sec(30));
  engine.complete(*id, "check", 2);
  const auto& audit = engine.instance(*id)->audit();
  ASSERT_EQ(audit.size(), 2u);
  EXPECT_EQ(audit[0].step, "submit");
  EXPECT_EQ(audit[0].actor, 1u);
  EXPECT_EQ(audit[1].at, sim::sec(30));
}

TEST_F(ProcedureTest, InvalidDefinitionDoesNotStart) {
  workflow::ProcedureDef bad("bad");
  bad.add_step({"a", "r", {"ghost"}});
  bad.set_start({"a"});
  EXPECT_FALSE(engine.start(bad).has_value());
}

TEST_F(ProcedureTest, CompletionLatencyIsMeasured) {
  const auto def = expense_claim();
  const auto id = engine.start(def);
  engine.complete(*id, "submit", 1);
  engine.complete(*id, "check", 2);
  engine.complete(*id, "approve", 3);
  engine.complete(*id, "audit", 2);
  sim.run_until(sim::minutes(5));
  engine.complete(*id, "pay", 4);
  EXPECT_DOUBLE_EQ(engine.completion_latency().max(),
                   static_cast<double>(sim::minutes(5)));
}

}  // namespace
}  // namespace coop
