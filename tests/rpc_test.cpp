// Tests for RPC (timeout/retry/at-most-once), the trader, and group RPC
// reply policies with real-time deadlines.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "net/network.hpp"
#include "rpc/group_rpc.hpp"
#include "rpc/rpc.hpp"
#include "rpc/trader.hpp"
#include "sim/simulator.hpp"

namespace coop::rpc {
namespace {

class RpcTest : public ::testing::Test {
 protected:
  RpcTest() : sim(9), net(sim), server(net, {2, 1}), client(net, {1, 1}) {
    server.register_method("echo", [](const std::string& req) {
      return HandlerResult::success(req);
    });
    server.register_method("fail", [](const std::string&) {
      return HandlerResult::error("nope");
    });
  }

  sim::Simulator sim;
  net::Network net;
  RpcServer server;
  RpcClient client;
};

TEST_F(RpcTest, EchoRoundTrip) {
  RpcResult got;
  client.call({2, 1}, "echo", "ping", [&](const RpcResult& r) { got = r; });
  sim.run();
  EXPECT_TRUE(got.ok());
  EXPECT_EQ(got.reply, "ping");
  EXPECT_GT(got.rtt, 0);
  EXPECT_EQ(server.requests_handled(), 1u);
}

TEST_F(RpcTest, UnknownMethodReportsNoSuchMethod) {
  RpcResult got;
  client.call({2, 1}, "nope", "", [&](const RpcResult& r) { got = r; });
  sim.run();
  EXPECT_EQ(got.status, Status::kNoSuchMethod);
}

TEST_F(RpcTest, ApplicationErrorPropagates) {
  RpcResult got;
  client.call({2, 1}, "fail", "", [&](const RpcResult& r) { got = r; });
  sim.run();
  EXPECT_EQ(got.status, Status::kAppError);
  EXPECT_EQ(got.reply, "nope");
}

TEST_F(RpcTest, TimesOutAgainstCrashedServer) {
  net.crash(2);
  RpcResult got;
  client.call({2, 1}, "echo", "x", [&](const RpcResult& r) { got = r; },
              {.timeout = sim::msec(50), .retries = 2, .backoff = 2.0});
  sim.run();
  EXPECT_EQ(got.status, Status::kTimeout);
  EXPECT_EQ(client.timeouts(), 1u);
  // Total time: 50 + 100 + 200 ms of backoff.
  EXPECT_EQ(sim.now(), sim::msec(350));
}

TEST_F(RpcTest, RetriesSucceedOverLossyLink) {
  net.set_default_link({.latency = sim::msec(2), .jitter = sim::msec(1),
                        .bandwidth_bps = 10e6, .loss = 0.40});
  int ok = 0, bad = 0;
  for (int i = 0; i < 50; ++i) {
    client.call({2, 1}, "echo", std::to_string(i),
                [&](const RpcResult& r) { r.ok() ? ++ok : ++bad; },
                {.timeout = sim::msec(30), .retries = 20, .backoff = 1.2});
  }
  sim.run();
  EXPECT_EQ(ok, 50);
  EXPECT_EQ(bad, 0);
}

TEST_F(RpcTest, AtMostOnceExecutionUnderRetries) {
  // Drop every reply (but not requests) by making the server->client
  // direction lossy: the client retries, the server must not re-execute.
  int executions = 0;
  server.register_method("count", [&](const std::string&) {
    ++executions;
    return HandlerResult::success("done");
  });
  net.set_link(2, 1, {.latency = sim::msec(2), .jitter = 0,
                      .bandwidth_bps = 10e6, .loss = 1.0});
  RpcResult got;
  client.call({1 + 1, 1}, "count", "", [&](const RpcResult& r) { got = r; },
              {.timeout = sim::msec(20), .retries = 5, .backoff = 1.0});
  sim.run_until(sim::msec(80));
  net.set_link(2, 1, {.latency = sim::msec(2), .jitter = 0,
                      .bandwidth_bps = 10e6, .loss = 0.0});
  sim.run();
  EXPECT_TRUE(got.ok());
  EXPECT_EQ(executions, 1);
  EXPECT_GT(server.replays_served(), 0u);
}

TEST_F(RpcTest, ProcessingTimeDelaysReply) {
  server.set_processing_time(sim::msec(100));
  RpcResult got;
  client.call({2, 1}, "echo", "x", [&](const RpcResult& r) { got = r; },
              {.timeout = sim::msec(500), .retries = 0});
  sim.run();
  EXPECT_TRUE(got.ok());
  EXPECT_GE(got.rtt, sim::msec(100));
}

TEST_F(RpcTest, ConcurrentCallsMatchTheirReplies) {
  std::map<int, std::string> replies;
  for (int i = 0; i < 10; ++i)
    client.call({2, 1}, "echo", "v" + std::to_string(i),
                [&replies, i](const RpcResult& r) { replies[i] = r.reply; });
  sim.run();
  ASSERT_EQ(replies.size(), 10u);
  for (int i = 0; i < 10; ++i)
    EXPECT_EQ(replies[i], "v" + std::to_string(i));
}

TEST_F(RpcTest, RttSummaryAccumulates) {
  for (int i = 0; i < 5; ++i)
    client.call({2, 1}, "echo", "x", [](const RpcResult&) {});
  sim.run();
  EXPECT_EQ(client.rtt_summary().count(), 5u);
  EXPECT_GT(client.rtt_summary().mean(), 0.0);
}

TEST_F(RpcTest, AsyncMethodRepliesAfterVirtualTime) {
  server.register_async_method(
      "slow", [this](const std::string& req,
                     std::function<void(HandlerResult)> reply) {
        sim.schedule_after(sim::msec(300), [req, reply = std::move(reply)] {
          reply(HandlerResult::success("done:" + req));
        });
      });
  RpcResult got;
  client.call({2, 1}, "slow", "x", [&](const RpcResult& r) { got = r; },
              {.timeout = sim::sec(1), .retries = 0});
  sim.run();
  EXPECT_TRUE(got.ok());
  EXPECT_EQ(got.reply, "done:x");
  EXPECT_GE(got.rtt, sim::msec(300));
}

TEST_F(RpcTest, AsyncMethodAbsorbsRetriesWhileInProgress) {
  int executions = 0;
  server.register_async_method(
      "slow", [&, this](const std::string&,
                        std::function<void(HandlerResult)> reply) {
        ++executions;
        sim.schedule_after(sim::msec(200), [reply = std::move(reply)] {
          reply(HandlerResult::success("ok"));
        });
      });
  RpcResult got;
  // Per-attempt timeout shorter than the handler: the client retries
  // while the first execution is still running.
  client.call({2, 1}, "slow", "x", [&](const RpcResult& r) { got = r; },
              {.timeout = sim::msec(50), .retries = 8, .backoff = 1.0});
  sim.run();
  EXPECT_TRUE(got.ok());
  EXPECT_EQ(executions, 1);
}

// ---------------------------------------------------------------- trader

TEST(TraderTest, ExportImportWithdrawLifecycle) {
  sim::Simulator sim(4);
  net::Network net(sim);
  Trader trader(net, {50, 1});
  RpcClient rpc(net, {1, 1});
  TraderClient tc(rpc, {50, 1});

  std::uint64_t id_a = 0, id_b = 0;
  tc.export_offer({.service_type = "session.whiteboard",
                   .provider = {10, 5},
                   .properties = {{"room", "ops"}}},
                  [&](std::uint64_t id) { id_a = id; });
  tc.export_offer({.service_type = "session.whiteboard",
                   .provider = {11, 5},
                   .properties = {{"room", "dev"}}},
                  [&](std::uint64_t id) { id_b = id; });
  sim.run();
  EXPECT_NE(id_a, 0u);
  EXPECT_NE(id_b, 0u);
  EXPECT_EQ(trader.offer_count(), 2u);

  std::vector<Offer> all, ops_only;
  tc.import("session.whiteboard", {}, [&](std::vector<Offer> o) {
    all = std::move(o);
  });
  tc.import("session.whiteboard", {{"room", "ops"}},
            [&](std::vector<Offer> o) { ops_only = std::move(o); });
  sim.run();
  EXPECT_EQ(all.size(), 2u);
  ASSERT_EQ(ops_only.size(), 1u);
  EXPECT_EQ(ops_only[0].provider, (net::Address{10, 5}));

  bool withdrawn = false;
  tc.withdraw(id_a, [&](bool ok) { withdrawn = ok; });
  sim.run();
  EXPECT_TRUE(withdrawn);
  EXPECT_EQ(trader.offer_count(), 1u);

  std::vector<Offer> after;
  tc.import("session.whiteboard", {}, [&](std::vector<Offer> o) {
    after = std::move(o);
  });
  sim.run();
  ASSERT_EQ(after.size(), 1u);
  EXPECT_EQ(after[0].provider, (net::Address{11, 5}));
}

TEST(TraderTest, ImportOfUnknownTypeReturnsEmpty) {
  sim::Simulator sim(4);
  net::Network net(sim);
  Trader trader(net, {50, 1});
  RpcClient rpc(net, {1, 1});
  TraderClient tc(rpc, {50, 1});
  std::vector<Offer> got{{}};  // non-empty sentinel
  tc.import("nothing.like.this", {}, [&](std::vector<Offer> o) {
    got = std::move(o);
  });
  sim.run();
  EXPECT_TRUE(got.empty());
}

TEST(TraderTest, WithdrawUnknownOfferFails) {
  sim::Simulator sim(4);
  net::Network net(sim);
  Trader trader(net, {50, 1});
  RpcClient rpc(net, {1, 1});
  TraderClient tc(rpc, {50, 1});
  bool result = true;
  tc.withdraw(999, [&](bool ok) { result = ok; });
  sim.run();
  EXPECT_FALSE(result);
}

// -------------------------------------------------------------- group RPC

class GroupRpcTest : public ::testing::Test {
 protected:
  GroupRpcTest() : sim(6), net(sim), client(net, {1, 1}), invoker(client) {
    for (net::NodeId n = 10; n < 14; ++n) {
      servers.push_back(std::make_unique<RpcServer>(
          net, net::Address{n, 1}));
      servers.back()->register_method("ping", [n](const std::string&) {
        return HandlerResult::success("pong" + std::to_string(n));
      });
      targets.push_back({n, 1});
    }
  }

  sim::Simulator sim;
  net::Network net;
  RpcClient client;
  GroupInvoker invoker;
  std::vector<std::unique_ptr<RpcServer>> servers;
  std::vector<net::Address> targets;
};

TEST_F(GroupRpcTest, AllPolicyWaitsForEveryReply) {
  GroupResult got;
  int calls = 0;
  invoker.invoke(targets, "ping", "", [&](const GroupResult& r) {
    got = r;
    ++calls;
  });
  sim.run();
  EXPECT_EQ(calls, 1);
  EXPECT_TRUE(got.satisfied);
  EXPECT_EQ(got.ok_count, 4u);
  EXPECT_FALSE(got.deadline_hit);
  ASSERT_EQ(got.replies.size(), 4u);
  EXPECT_EQ(got.replies[0].reply, "pong10");
  EXPECT_EQ(got.replies[3].reply, "pong13");
}

TEST_F(GroupRpcTest, FirstPolicyCompletesOnFastestServer) {
  // Make server 12 much faster than the rest.
  net.set_default_link({.latency = sim::msec(50), .jitter = 0,
                        .bandwidth_bps = 10e6, .loss = 0});
  net.set_symmetric_link(1, 12, {.latency = sim::msec(1), .jitter = 0,
                                 .bandwidth_bps = 10e6, .loss = 0});
  GroupResult got;
  invoker.invoke(targets, "ping", "",
                 [&](const GroupResult& r) { got = r; },
                 {.policy = ReplyPolicy::kFirst});
  sim.run_until(sim::msec(10));
  EXPECT_TRUE(got.satisfied);
  EXPECT_EQ(got.ok_count, 1u);
  EXPECT_LT(got.latency, sim::msec(10));
}

TEST_F(GroupRpcTest, QuorumPolicyNeedsK) {
  net.crash(13);
  GroupResult got;
  invoker.invoke(targets, "ping", "",
                 [&](const GroupResult& r) { got = r; },
                 {.policy = ReplyPolicy::kQuorum, .quorum = 3,
                  .per_call = {.timeout = sim::msec(50), .retries = 1}});
  sim.run();
  EXPECT_TRUE(got.satisfied);
  EXPECT_EQ(got.ok_count, 3u);
}

TEST_F(GroupRpcTest, QuorumUnreachableReportsUnsatisfied) {
  net.crash(11);
  net.crash(12);
  net.crash(13);
  GroupResult got;
  invoker.invoke(targets, "ping", "",
                 [&](const GroupResult& r) { got = r; },
                 {.policy = ReplyPolicy::kQuorum, .quorum = 3,
                  .per_call = {.timeout = sim::msec(20), .retries = 0}});
  sim.run();
  EXPECT_FALSE(got.satisfied);
  EXPECT_EQ(got.ok_count, 1u);
}

TEST_F(GroupRpcTest, DeadlineBoundsCompletionTime) {
  // One server is slow; the deadline must fire before its reply.
  servers[3]->set_processing_time(sim::msec(500));
  GroupResult got;
  bool fired = false;
  invoker.invoke(targets, "ping", "",
                 [&](const GroupResult& r) {
                   got = r;
                   fired = true;
                 },
                 {.policy = ReplyPolicy::kAll, .deadline = sim::msec(100),
                  .per_call = {.timeout = sim::sec(1), .retries = 0}});
  sim.run_until(sim::msec(150));
  ASSERT_TRUE(fired);
  EXPECT_TRUE(got.deadline_hit);
  EXPECT_FALSE(got.satisfied);
  EXPECT_EQ(got.ok_count, 3u);  // the three fast servers made it
  EXPECT_EQ(got.latency, sim::msec(100));
  // The straggler's late reply must not re-fire the callback.
  int extra = 0;
  sim.run();
  (void)extra;
}

TEST_F(GroupRpcTest, EmptyTargetListCompletesImmediately) {
  GroupResult got;
  int calls = 0;
  invoker.invoke({}, "ping", "", [&](const GroupResult& r) {
    got = r;
    ++calls;
  });
  sim.run();
  EXPECT_EQ(calls, 1);
  EXPECT_TRUE(got.satisfied);
  EXPECT_EQ(got.ok_count, 0u);
}

TEST_F(GroupRpcTest, DeadlineMissRateGrowsWithGroupSizeUnderJitter) {
  // Sanity check of the E8 experiment's mechanism: with jittery links, a
  // fixed deadline is missed more often by larger groups.
  net.set_default_link({.latency = sim::msec(10), .jitter = sim::msec(8),
                        .bandwidth_bps = 10e6, .loss = 0});
  auto miss_rate = [&](std::size_t n_targets) {
    int misses = 0;
    const int trials = 60;
    for (int t = 0; t < trials; ++t) {
      invoker.invoke(std::vector<net::Address>(targets.begin(),
                                               targets.begin() +
                                                   static_cast<long>(
                                                       n_targets)),
                     "ping", "",
                     [&](const GroupResult& r) {
                       if (r.deadline_hit) ++misses;
                     },
                     {.policy = ReplyPolicy::kAll,
                      .deadline = sim::msec(33),
                      .per_call = {.timeout = sim::msec(100), .retries = 0}});
      sim.run();
    }
    return static_cast<double>(misses) / trials;
  };
  const double small = miss_rate(1);
  const double large = miss_rate(4);
  EXPECT_GE(large, small);
}

TEST_F(GroupRpcTest, ReplyInSameStepAsDeadlineWins) {
  // Zero jitter, infinite bandwidth, 10ms each way: every reply lands at
  // exactly t=20ms.  A deadline of exactly 20ms was scheduled at invoke
  // time, so the step's FIFO tie-break runs it *before* the deliveries —
  // the deadline must defer to them, not expire the call.
  net.set_default_link({.latency = sim::msec(10), .jitter = 0,
                        .bandwidth_bps = 0 /* infinite */, .loss = 0});
  GroupResult got;
  int calls = 0;
  invoker.invoke(targets, "ping", "",
                 [&](const GroupResult& r) {
                   got = r;
                   ++calls;
                 },
                 {.policy = ReplyPolicy::kAll, .deadline = sim::msec(20),
                  .per_call = {.timeout = sim::sec(1), .retries = 0}});
  sim.run();
  EXPECT_EQ(calls, 1);
  EXPECT_TRUE(got.satisfied);
  EXPECT_FALSE(got.deadline_hit);
  EXPECT_EQ(got.ok_count, 4u);
  EXPECT_EQ(got.latency, sim::msec(20));
}

// ------------------------------------------------- robustness satellites

TEST(RpcJitterTest, BackoffJitterIsDeterministicAndOptIn) {
  const auto fingerprint = [](double jitter) {
    sim::Simulator sim(31);
    net::Network net(sim);
    net.set_default_link({.latency = sim::msec(5), .jitter = sim::msec(2),
                          .bandwidth_bps = 10e6, .loss = 0.4});
    RpcServer server(net, {2, 1});
    server.register_method("echo", [](const std::string& req) {
      return HandlerResult::success(req);
    });
    RpcClient client(net, {1, 1});
    std::string fp;
    for (int i = 0; i < 8; ++i) {
      client.call({2, 1}, "echo", std::to_string(i),
                  [&fp, i](const RpcResult& r) {
                    fp += std::to_string(i) + ":" +
                          std::to_string(static_cast<int>(r.status)) + "@" +
                          std::to_string(r.rtt) + ";";
                  },
                  {.timeout = sim::msec(30), .retries = 6,
                   .backoff_jitter = jitter});
    }
    sim.run();
    return fp;
  };
  // Same seed + same knob => byte-identical outcomes...
  EXPECT_EQ(fingerprint(0.3), fingerprint(0.3));
  // ...and the jitter draw genuinely moves the retry schedule.
  EXPECT_NE(fingerprint(0.3), fingerprint(0.0));
}

TEST(RpcJitterTest, RetryEventRecordsTheJitteredWait) {
  sim::Simulator sim(5);
  net::Network net(sim);
  RpcClient client(net, {1, 1});
  // No server attached: every attempt times out, producing retry events.
  const sim::Duration nominal = sim::msec(100);
  client.call({9, 1}, "void", "", [](const RpcResult&) {},
              {.timeout = nominal, .retries = 1, .backoff = 1.0,
               .backoff_jitter = 0.5});
  sim.run();
  bool saw_retry = false;
  for (const obs::TraceEvent& e : net.obs().tracer.snapshot()) {
    if (e.category != obs::Category::kRpc ||
        std::string_view(e.name) != "retry") {
      continue;
    }
    saw_retry = true;
    for (std::uint8_t i = 0; i < e.attr_count; ++i) {
      if (std::string_view(e.attrs[i].key) != "waited") continue;
      const auto waited = static_cast<sim::Duration>(e.attrs[i].value);
      // The recorded wait is the jittered one: inside [50ms, 150ms] and
      // (with this seed) not the nominal value.
      EXPECT_GE(waited, nominal / 2);
      EXPECT_LE(waited, nominal + nominal / 2);
      EXPECT_NE(waited, nominal);
    }
  }
  EXPECT_TRUE(saw_retry);
}

TEST(RpcRestartTest, ReplayCacheIsPerIncarnation) {
  sim::Simulator sim(13);
  net::Network net(sim);
  net.set_default_link({.latency = sim::msec(10), .jitter = 0,
                        .bandwidth_bps = 0, .loss = 0});
  int executions = 0;
  const auto make_server = [&]() {
    auto s = std::make_unique<RpcServer>(net, net::Address{2, 1});
    s->register_method("bump", [&executions](const std::string&) {
      ++executions;
      return HandlerResult::success("done");
    });
    return s;
  };
  auto server = make_server();
  server->set_processing_time(sim::msec(20));

  RpcClient client(net, {1, 1});
  RpcResult got;
  client.call({2, 1}, "bump", "", [&](const RpcResult& r) { got = r; },
              {.timeout = sim::msec(100), .retries = 3});

  // The request arrives at 10ms and executes; the reply would leave at
  // 30ms — but the server fail-stops at 15ms, taking the replay cache
  // with it.  The client's retry reaches the restarted incarnation,
  // whose empty cache legitimately re-executes the operation.
  sim.schedule_at(sim::msec(15), [&] {
    net.crash(2);
    server.reset();
  });
  sim.schedule_at(sim::msec(50), [&] {
    net.restart(2);
    server = make_server();
  });
  sim.run();

  EXPECT_TRUE(got.ok());
  EXPECT_EQ(executions, 2);  // once per incarnation: at-most-once held twice
}

}  // namespace
}  // namespace coop::rpc
