// Integration tests: conference sessions under failures (membership +
// group channel + floor + streams together), and the mobile
// disconnect/edit/reconnect cycle against a live session.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/coop.hpp"

namespace coop {
namespace {

TEST(SessionIntegration, ConferenceSurvivesMemberCrash) {
  Platform platform(2002);
  auto& sim = platform.simulator();
  auto& net = platform.network();
  net.set_default_link(net::LinkModel::lan());

  // Membership tracks the roster; the group channel carries the talk.
  groups::MembershipCoordinator coord(net, {100, 1});
  std::vector<std::unique_ptr<groups::MembershipMember>> members;
  std::vector<std::unique_ptr<groups::GroupChannel>> channels;
  std::vector<net::Address> chan_addrs = {{1, 10}, {2, 10}, {3, 10}};
  for (net::NodeId n = 1; n <= 3; ++n) {
    members.push_back(std::make_unique<groups::MembershipMember>(
        net, net::Address{n, 1}, net::Address{100, 1}));
    channels.push_back(std::make_unique<groups::GroupChannel>(
        net, chan_addrs[n - 1], 7,
        groups::ChannelConfig{.ordering = groups::Ordering::kTotal,
                              .retransmit_timeout = sim::msec(30),
                              .max_retransmits = 10,
                              .local_echo = true}));
  }
  for (auto& c : channels) c->set_members(chan_addrs);
  std::vector<std::vector<std::string>> logs(3);
  for (std::size_t i = 0; i < 3; ++i) {
    channels[i]->on_deliver([&logs, i](const groups::Delivery& d) {
      logs[i].push_back(d.payload);
    });
  }
  for (auto& m : members) m->join();
  sim.run_until(sim::msec(300));
  EXPECT_EQ(coord.view().members.size(), 3u);

  channels[0]->broadcast("agenda item 1");
  sim.run_until(sim::msec(500));

  // Node 3 crashes.  Membership notices; survivors mark it failed in the
  // channel and keep talking without retransmission storms.
  net.crash(3);
  coord.on_view_change([&](const groups::View& v) {
    if (!v.contains({3, 1})) {
      channels[0]->mark_failed({3, 10});
      channels[1]->mark_failed({3, 10});
    }
  });
  sim.run_until(sim::sec(3));
  EXPECT_EQ(coord.view().members.size(), 2u);

  channels[1]->broadcast("agenda item 2 after the crash");
  sim.run_until(sim::sec(5));
  ASSERT_EQ(logs[0].size(), 2u);
  ASSERT_EQ(logs[1].size(), 2u);
  EXPECT_EQ(logs[0], logs[1]);  // total order among survivors
  EXPECT_EQ(channels[0]->stats().gave_up + channels[1]->stats().gave_up, 0u)
      << "survivors should stop retransmitting to the dead member";
}

TEST(SessionIntegration, FloorAndStreamsShareTheSession) {
  Platform platform(2003);
  auto& sim = platform.simulator();
  auto& net = platform.network();
  net.set_default_link({.latency = sim::msec(8), .jitter = sim::msec(2),
                        .bandwidth_bps = 4e6, .loss = 0.001});

  groupware::ConferenceServer conf(
      net, {10, 1}, std::make_unique<groupware::TerminalApp>(),
      {.policy = ccontrol::FloorPolicy::kExplicitRelease});
  groupware::ConferenceClient a(net, {1, 1}, {10, 1}, 1);
  groupware::ConferenceClient b(net, {2, 1}, {10, 1}, 2);
  a.join();
  b.join();

  streams::QosSpec audio{.fps = 50, .frame_bytes = 320,
                         .latency_bound = sim::msec(150),
                         .jitter_bound = sim::msec(40), .min_fps = 25};
  streams::MediaSource src(sim, 1, audio);
  streams::StreamBinding bind(net, src, {1, 20}, net::Address{2, 20});
  streams::MediaSink sink(net, {2, 20});
  streams::QosMonitor monitor(sim, sink, audio);
  src.start();

  sim.schedule_at(sim::msec(100), [&] { a.request_floor(); });
  sim.schedule_at(sim::msec(300), [&] { a.send_input("hello"); });
  sim.schedule_at(sim::msec(500), [&] {
    a.release_floor();
    b.request_floor();
  });
  sim.schedule_at(sim::sec(1), [&] { b.send_input("hi back"); });
  sim.run_until(sim::sec(5));

  EXPECT_EQ(a.display(), "hello\nhi back");
  EXPECT_EQ(b.display(), "hello\nhi back");
  EXPECT_EQ(monitor.violations(), 0u);  // audio unharmed by the app traffic
  EXPECT_GT(sink.frames_received(), 200u);
}

TEST(SessionIntegration, MobileMemberRoundTripAgainstSharedStore) {
  Platform platform(2004);
  auto& sim = platform.simulator();
  auto& net = platform.network();
  net.set_default_link(net::LinkModel::lan());
  net.set_radio_model(net::LinkModel::radio());

  mobile::ShareServer store_server(net, {100, 1});
  store_server.store().write("minutes", "v1 by the office");

  mobile::MobileHost laptop(net, {5, 1}, {100, 1},
                            mobile::ConflictPolicy::kServerWins);
  // A desk colleague keeps using the store directly while the laptop
  // roams.
  rpc::RpcClient desk(net, {6, 1});

  laptop.hoard({"minutes"}, nullptr);
  sim.run_until(sim::msec(200));

  laptop.set_connectivity(net::Connectivity::kDisconnected);
  laptop.write("minutes", "v2 from the train", [](bool ok) {
    EXPECT_TRUE(ok);
  });

  // Office edit while the laptop is away -> reintegration conflict.
  sim.schedule_at(sim::sec(1), [&] {
    util::Writer w;
    w.put_string("minutes");
    w.put_string("v2 by the office");
    desk.call({100, 1}, "write", w.take(), [](const rpc::RpcResult& r) {
      EXPECT_TRUE(r.ok());
    });
  });

  std::size_t applied = 99;
  std::vector<mobile::Conflict> conflicts;
  sim.schedule_at(sim::sec(2), [&] {
    laptop.set_connectivity(net::Connectivity::kFull);
    laptop.reintegrate([&](std::size_t a,
                           const std::vector<mobile::Conflict>& c) {
      applied = a;
      conflicts = c;
    });
  });
  sim.run_until(sim::sec(10));

  EXPECT_EQ(applied, 0u);
  ASSERT_EQ(conflicts.size(), 1u);
  EXPECT_EQ(conflicts[0].server_value, "v2 by the office");
  // Server-wins: office version stands; the laptop's cache was updated.
  EXPECT_EQ(store_server.store().read("minutes"), "v2 by the office");
  laptop.read("minutes", [](bool ok, auto v) {
    EXPECT_TRUE(ok);
    EXPECT_EQ(v, "v2 by the office");
  });
  sim.run_until(sim::sec(12));
}

TEST(SessionIntegration, SeamlessQuadrantTransitionRetunesTheSession) {
  // The paper's "seamless transitions": an asynchronous co-authoring
  // session goes synchronous for a review meeting.  The session object
  // carries the classification; the infrastructure recommendations
  // change with it.
  Platform platform(2005);
  groupware::Session session(
      "review", {groupware::Place::kDifferent, groupware::Tempo::kDifferent});
  const auto before_digest =
      session.classification().recommended_digest_period();
  EXPECT_EQ(session.classification().recommended_ordering(),
            groups::Ordering::kCausal);

  EXPECT_TRUE(session.reclassify(
      {groupware::Place::kDifferent, groupware::Tempo::kSame}));
  EXPECT_EQ(session.classification().recommended_ordering(),
            groups::Ordering::kTotal);
  EXPECT_LT(session.classification().recommended_digest_period(),
            before_digest);
  EXPECT_EQ(session.transitions(), 1u);
}

}  // namespace
}  // namespace coop
