// Tests for the groupware toolkit: hyperdocuments & regions, the shared
// editor end-to-end, conferencing, flight strips, and sessions.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "groupware/conference.hpp"
#include "groupware/document.hpp"
#include "groupware/editor.hpp"
#include "groupware/flightstrips.hpp"
#include "groupware/session.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"

namespace coop::groupware {
namespace {

constexpr ClientId kAlice = 1;
constexpr ClientId kBob = 2;
constexpr ClientId kCarol = 3;

// ------------------------------------------------------------ documents

TEST(HyperDocument, BaseNodesFormTheText) {
  HyperDocument doc("paper");
  doc.add_base(kAlice, "Introduction.");
  doc.add_base(kAlice, "Conclusion.");
  EXPECT_EQ(doc.text(), "Introduction.\n\nConclusion.");
  EXPECT_EQ(doc.base_nodes().size(), 2u);
}

TEST(HyperDocument, AttachCommentsAndThreads) {
  HyperDocument doc("paper");
  const auto base = doc.add_base(kAlice, "Introduction.");
  const auto comment = doc.attach(kBob, base, NodeKind::kComment,
                                  "too short?");
  const auto reply = doc.attach(kAlice, comment, NodeKind::kComment,
                                "will expand");
  ASSERT_NE(comment, 0u);
  ASSERT_NE(reply, 0u);
  EXPECT_EQ(doc.children(base), std::vector<DocNodeId>{comment});
  EXPECT_EQ(doc.children(comment), std::vector<DocNodeId>{reply});
  EXPECT_EQ(doc.node(reply)->author, kAlice);
}

TEST(HyperDocument, AttachValidation) {
  HyperDocument doc("paper");
  const auto base = doc.add_base(kAlice, "x");
  EXPECT_EQ(doc.attach(kBob, 999, NodeKind::kComment, "y"), 0u);
  EXPECT_EQ(doc.attach(kBob, base, NodeKind::kBase, "y"), 0u);
}

TEST(HyperDocument, SuggestionLifecycle) {
  HyperDocument doc("paper");
  const auto base = doc.add_base(kAlice, "Teh introduction.");
  const auto fix = doc.attach(kBob, base, NodeKind::kSuggestion,
                              "The introduction.");
  const auto alt = doc.attach(kCarol, base, NodeKind::kSuggestion,
                              "An introduction.");
  EXPECT_EQ(doc.open_suggestions().size(), 2u);
  EXPECT_TRUE(doc.accept_suggestion(fix));
  EXPECT_EQ(doc.node(base)->content, "The introduction.");
  EXPECT_FALSE(doc.accept_suggestion(fix));  // already resolved
  EXPECT_TRUE(doc.reject_suggestion(alt));
  EXPECT_TRUE(doc.open_suggestions().empty());
  // Comments cannot be "accepted".
  const auto c = doc.attach(kBob, base, NodeKind::kComment, "nice");
  EXPECT_FALSE(doc.accept_suggestion(c));
}

TEST(HyperDocument, ChangeObserverFires) {
  HyperDocument doc("paper");
  std::vector<DocNodeId> changed;
  doc.on_change([&](const DocNode& n) { changed.push_back(n.id); });
  const auto base = doc.add_base(kAlice, "x");
  doc.attach(kBob, base, NodeKind::kAnnotation, "margin note");
  EXPECT_EQ(changed.size(), 2u);
}

// ------------------------------------------------------------- regions

TEST(Regions, GranularitiesProduceNestedCounts) {
  const std::string text =
      "# One\n\nFirst para here. Second sentence. Third.\n\nSecond para.";
  const auto doc = split_regions("d", text, Granularity::kDocument);
  const auto paras = split_regions("d", text, Granularity::kParagraph);
  const auto sents = split_regions("d", text, Granularity::kSentence);
  const auto words = split_regions("d", text, Granularity::kWord);
  EXPECT_EQ(doc.size(), 1u);
  EXPECT_EQ(paras.size(), 3u);
  EXPECT_GT(sents.size(), paras.size());
  EXPECT_GT(words.size(), sents.size());
}

TEST(Regions, SpansAreContiguousAndCover) {
  const std::string text = "Alpha beta gamma.\n\nDelta epsilon.";
  for (auto g : {Granularity::kDocument, Granularity::kParagraph,
                 Granularity::kSentence, Granularity::kWord}) {
    const auto regions = split_regions("d", text, g);
    ASSERT_FALSE(regions.empty());
    EXPECT_EQ(regions.front().begin, 0u);
    EXPECT_EQ(regions.back().end, text.size());
    for (std::size_t i = 1; i < regions.size(); ++i)
      EXPECT_EQ(regions[i].begin, regions[i - 1].end);
  }
}

TEST(Regions, RegionAtMapsPositions) {
  const std::string text = "One two.\n\nThree four.";
  EXPECT_EQ(region_at("d", text, Granularity::kDocument, 5), "d/doc/0");
  EXPECT_EQ(region_at("d", text, Granularity::kParagraph, 0), "d/para/0");
  EXPECT_EQ(region_at("d", text, Granularity::kParagraph, 15), "d/para/1");
  // Distinct words map to distinct resources.
  EXPECT_NE(region_at("d", text, Granularity::kWord, 0),
            region_at("d", text, Granularity::kWord, 5));
  // End-of-text append maps to the last region.
  EXPECT_EQ(region_at("d", text, Granularity::kParagraph, text.size()),
            "d/para/1");
}

// -------------------------------------------------------------- editor

class EditorTest : public ::testing::Test {
 protected:
  EditorTest() : sim(23), net(sim) {
    net.set_default_link({.latency = sim::msec(15), .jitter = sim::msec(5),
                          .bandwidth_bps = 10e6, .loss = 0.02});
  }
  sim::Simulator sim;
  net::Network net;
};

TEST_F(EditorTest, TwoAuthorsConvergeOverLossyNetwork) {
  EditorServer server(net, {10, 1}, "The  draft.");
  EditorClient alice(net, {1, 1}, {10, 1}, 1, "The  draft.");
  EditorClient bob(net, {2, 1}, {10, 1}, 2, "The  draft.");
  alice.connect();
  bob.connect();
  sim.run();
  alice.insert(4, "first ");
  bob.insert(11, " by Bob");  // "The  draft." pos 11 = end
  sim.run();
  EXPECT_EQ(alice.doc(), bob.doc());
  EXPECT_EQ(alice.doc(), server.doc());
  EXPECT_NE(alice.doc().find("first"), std::string::npos);
  EXPECT_NE(alice.doc().find("by Bob"), std::string::npos);
}

TEST_F(EditorTest, LocalEditIsImmediateRemoteCarriesNotificationTime) {
  EditorServer server(net, {10, 1}, "abc");
  EditorClient alice(net, {1, 1}, {10, 1}, 1, "abc");
  EditorClient bob(net, {2, 1}, {10, 1}, 2, "abc");
  alice.connect();
  bob.connect();
  sim.run();
  alice.insert(0, "X");
  EXPECT_EQ(alice.doc(), "Xabc");  // response time zero
  sim.run();
  EXPECT_EQ(bob.doc(), "Xabc");
  ASSERT_EQ(bob.notification_time().count(), 1u);
  // Two hops (client->server->client), each >= 10ms latency.
  EXPECT_GE(bob.notification_time().mean(),
            static_cast<double>(sim::msec(20)));
}

TEST_F(EditorTest, ConcurrentBurstsConvergeAcrossThreeAuthors) {
  EditorServer server(net, {10, 1}, "0123456789");
  EditorClient a(net, {1, 1}, {10, 1}, 1, "0123456789");
  EditorClient b(net, {2, 1}, {10, 1}, 2, "0123456789");
  EditorClient c(net, {3, 1}, {10, 1}, 3, "0123456789");
  a.connect();
  b.connect();
  c.connect();
  sim.run();
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(sim::msec(i * 7), [&, i] {
      a.insert(static_cast<std::size_t>(i), "a");
      b.erase(0);
      c.insert(0, "c");
    });
  }
  sim.run();
  EXPECT_EQ(a.doc(), server.doc());
  EXPECT_EQ(b.doc(), server.doc());
  EXPECT_EQ(c.doc(), server.doc());
}

TEST_F(EditorTest, RangeDeleteWorksRemotely) {
  EditorServer server(net, {10, 1}, "delete me please");
  EditorClient a(net, {1, 1}, {10, 1}, 1, "delete me please");
  EditorClient b(net, {2, 1}, {10, 1}, 2, "delete me please");
  a.connect();
  b.connect();
  sim.run();
  a.erase(6, 3);  // remove " me"
  EXPECT_EQ(a.doc(), "delete please");
  sim.run();
  EXPECT_EQ(b.doc(), "delete please");
}

// ----------------------------------------------------------- conference

class ConferenceTest : public ::testing::Test {
 protected:
  ConferenceTest()
      : sim(29),
        net(sim),
        server(net, {10, 1}, std::make_unique<TerminalApp>(),
               {.policy = ccontrol::FloorPolicy::kExplicitRelease}),
        alice(net, {1, 1}, {10, 1}, kAlice),
        bob(net, {2, 1}, {10, 1}, kBob) {}

  sim::Simulator sim;
  net::Network net;
  ConferenceServer server;
  ConferenceClient alice, bob;
};

TEST_F(ConferenceTest, FloorHolderInputUpdatesEveryDisplay) {
  alice.join();
  bob.join();
  sim.run_until(sim.now() + sim::sec(2));
  alice.request_floor();
  sim.run_until(sim.now() + sim::sec(2));
  EXPECT_TRUE(alice.has_floor());
  EXPECT_EQ(bob.floor_holder(), kAlice);
  alice.send_input("hello group");
  sim.run_until(sim.now() + sim::sec(2));
  EXPECT_EQ(alice.display(), "hello group");
  EXPECT_EQ(bob.display(), "hello group");
  EXPECT_EQ(server.stats().inputs_accepted, 1u);
}

TEST_F(ConferenceTest, NonHolderInputIsRejected) {
  alice.join();
  bob.join();
  sim.run_until(sim.now() + sim::sec(2));
  alice.request_floor();
  sim.run_until(sim.now() + sim::sec(2));
  bob.send_input("barge in");
  sim.run_until(sim.now() + sim::sec(2));
  EXPECT_EQ(bob.display(), "");  // nothing reached the app
  EXPECT_EQ(server.stats().inputs_rejected, 1u);
}

TEST_F(ConferenceTest, FloorPassesOnRelease) {
  alice.join();
  bob.join();
  sim.run_until(sim.now() + sim::sec(2));
  alice.request_floor();
  bob.request_floor();
  sim.run_until(sim.now() + sim::sec(2));
  EXPECT_TRUE(alice.has_floor());
  alice.release_floor();
  sim.run_until(sim.now() + sim::sec(2));
  EXPECT_TRUE(bob.has_floor());
  bob.send_input("my turn");
  sim.run_until(sim.now() + sim::sec(2));
  EXPECT_EQ(alice.display(), "my turn");
}

TEST_F(ConferenceTest, LateJoinerReceivesCurrentState) {
  alice.join();
  sim.run_until(sim.now() + sim::sec(2));
  alice.request_floor();
  sim.run_until(sim.now() + sim::sec(2));
  alice.send_input("early line");
  sim.run_until(sim.now() + sim::sec(2));
  bob.join();
  sim.run_until(sim.now() + sim::sec(2));
  EXPECT_EQ(bob.display(), "early line");
  EXPECT_EQ(bob.floor_holder(), kAlice);
}

// ---------------------------------------------------------- flight strips

TEST(FlightStrips, ManualModeRequiresExplicitPosition) {
  FlightProgressBoard board(StripPlacement::kManual);
  FlightStrip ba123{.callsign = "BA123", .origin = "EGLL",
                    .destination = "EGCC", .eta = sim::minutes(10),
                    .flight_level = 310};
  // The naive call without a position fails: the friction is the design.
  EXPECT_FALSE(board.add_strip("DCS", ba123, std::nullopt, kAlice));
  EXPECT_TRUE(board.add_strip("DCS", ba123, 0, kAlice));
  EXPECT_EQ(board.rack("DCS").size(), 1u);
}

TEST(FlightStrips, AutomaticModeOrdersByEta) {
  FlightProgressBoard board(StripPlacement::kAutomatic);
  board.add_strip("DCS", {.callsign = "LATE", .eta = sim::minutes(30)},
                  std::nullopt, kAlice);
  board.add_strip("DCS", {.callsign = "SOON", .eta = sim::minutes(5)},
                  std::nullopt, kAlice);
  board.add_strip("DCS", {.callsign = "MID", .eta = sim::minutes(15)},
                  std::nullopt, kAlice);
  const auto rack = board.rack("DCS");
  ASSERT_EQ(rack.size(), 3u);
  EXPECT_EQ(rack[0].callsign, "SOON");
  EXPECT_EQ(rack[1].callsign, "MID");
  EXPECT_EQ(rack[2].callsign, "LATE");
}

TEST(FlightStrips, ManualReorderEncodesControllerIntent) {
  FlightProgressBoard board(StripPlacement::kManual);
  board.add_strip("DCS", {.callsign = "A"}, 0, kAlice);
  board.add_strip("DCS", {.callsign = "B"}, 1, kAlice);
  board.add_strip("DCS", {.callsign = "C"}, 2, kAlice);
  EXPECT_TRUE(board.move_strip("DCS", "C", 0, kBob));
  const auto rack = board.rack("DCS");
  EXPECT_EQ(rack[0].callsign, "C");
  EXPECT_EQ(rack[1].callsign, "A");
  EXPECT_FALSE(board.move_strip("DCS", "ZZ", 0, kBob));
}

TEST(FlightStrips, AmendAccumulatesInstructions) {
  FlightProgressBoard board(StripPlacement::kManual);
  board.add_strip("DCS", {.callsign = "BA123"}, 0, kAlice);
  EXPECT_TRUE(board.amend("BA123", "descend FL240", kAlice));
  EXPECT_TRUE(board.amend("BA123", "reduce 250kt", kBob));
  EXPECT_EQ(board.strip("BA123")->instructions,
            "descend FL240; reduce 250kt");
}

TEST(FlightStrips, CockedStripsFlagAttention) {
  FlightProgressBoard board(StripPlacement::kManual);
  board.add_strip("DCS", {.callsign = "BA123"}, 0, kAlice);
  board.add_strip("DCS", {.callsign = "AF456"}, 1, kAlice);
  EXPECT_TRUE(board.set_cocked("AF456", true, kBob));
  EXPECT_EQ(board.cocked_strips(), std::vector<std::string>{"AF456"});
  EXPECT_TRUE(board.set_cocked("AF456", false, kBob));
  EXPECT_TRUE(board.cocked_strips().empty());
}

TEST(FlightStrips, AnticipatedLoadReadsTheBoard) {
  FlightProgressBoard board(StripPlacement::kAutomatic);
  for (int i = 0; i < 6; ++i) {
    board.add_strip("DCS",
                    {.callsign = "F" + std::to_string(i),
                     .eta = sim::minutes(i * 10)},
                    std::nullopt, kAlice);
  }
  EXPECT_EQ(board.anticipated_load("DCS", 0, sim::minutes(30)), 3u);
  EXPECT_EQ(board.anticipated_load("DCS", sim::minutes(30),
                                   sim::minutes(100)),
            3u);
  EXPECT_EQ(board.anticipated_load("XYZ", 0, sim::minutes(100)), 0u);
}

TEST(FlightStrips, AuditTrailProvidesAccountability) {
  FlightProgressBoard board(StripPlacement::kManual);
  std::vector<BoardEvent> live;
  board.on_event([&](const BoardEvent& e) { live.push_back(e); });
  board.add_strip("DCS", {.callsign = "BA123"}, 0, kAlice, sim::sec(1));
  board.amend("BA123", "climb FL350", kBob, sim::sec(2));
  board.remove("BA123", kCarol, sim::sec(3));
  ASSERT_EQ(board.audit().size(), 3u);
  EXPECT_EQ(board.audit()[0].kind, BoardEvent::Kind::kAdd);
  EXPECT_EQ(board.audit()[1].controller, kBob);
  EXPECT_EQ(board.audit()[2].at, sim::sec(3));
  EXPECT_EQ(live.size(), 3u);
}

TEST(FlightStrips, DuplicateCallsignRejected) {
  FlightProgressBoard board(StripPlacement::kManual);
  board.add_strip("DCS", {.callsign = "BA123"}, 0, kAlice);
  EXPECT_FALSE(board.add_strip("OCK", {.callsign = "BA123"}, 0, kAlice));
}

// -------------------------------------------------------------- session

TEST(Session, QuadrantNamesMatchTheMatrix) {
  EXPECT_STREQ((SpaceTimeClass{Place::kSame, Tempo::kSame}.quadrant()),
               "face-to-face interaction");
  EXPECT_STREQ((SpaceTimeClass{Place::kSame, Tempo::kDifferent}.quadrant()),
               "asynchronous interaction");
  EXPECT_STREQ((SpaceTimeClass{Place::kDifferent, Tempo::kSame}.quadrant()),
               "synchronous distributed interaction");
  EXPECT_STREQ(
      (SpaceTimeClass{Place::kDifferent, Tempo::kDifferent}.quadrant()),
      "asynchronous distributed interaction");
}

TEST(Session, RecommendationsFollowTheQuadrant) {
  const SpaceTimeClass colocated{Place::kSame, Tempo::kSame};
  const SpaceTimeClass remote_async{Place::kDifferent, Tempo::kDifferent};
  EXPECT_LT(colocated.recommended_link().latency,
            remote_async.recommended_link().latency);
  EXPECT_EQ(colocated.recommended_ordering(), groups::Ordering::kTotal);
  EXPECT_EQ(remote_async.recommended_ordering(),
            groups::Ordering::kCausal);
  EXPECT_LT(colocated.recommended_digest_period(),
            remote_async.recommended_digest_period());
}

TEST(Session, SeamlessReclassification) {
  Session s("co-authoring", {Place::kDifferent, Tempo::kDifferent});
  EXPECT_FALSE(s.reclassify({Place::kDifferent, Tempo::kDifferent}));
  EXPECT_TRUE(s.reclassify({Place::kDifferent, Tempo::kSame}));
  EXPECT_EQ(s.transitions(), 1u);
  EXPECT_STREQ(s.classification().quadrant(),
               "synchronous distributed interaction");
}

}  // namespace
}  // namespace coop::groupware
