// Unit tests for the discrete-event kernel: ordering, determinism, timers.
#include <gtest/gtest.h>

#include <vector>

#include "sim/rng.hpp"
#include "sim/simulator.hpp"

namespace coop::sim {
namespace {

TEST(Simulator, StartsAtTimeZero) {
  Simulator sim;
  EXPECT_EQ(sim.now(), 0);
  EXPECT_EQ(sim.pending(), 0u);
}

TEST(Simulator, ExecutesEventsInTimestampOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(msec(30), [&] { order.push_back(3); });
  sim.schedule_at(msec(10), [&] { order.push_back(1); });
  sim.schedule_at(msec(20), [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), msec(30));
}

TEST(Simulator, BreaksTimestampTiesFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i)
    sim.schedule_at(msec(5), [&order, i] { order.push_back(i); });
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Simulator, ScheduleAfterUsesCurrentTime) {
  Simulator sim;
  TimePoint fired = -1;
  sim.schedule_at(msec(10), [&] {
    sim.schedule_after(msec(5), [&] { fired = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(fired, msec(15));
}

TEST(Simulator, PastEventsClampToNow) {
  Simulator sim;
  sim.schedule_at(msec(10), [] {});
  sim.run();
  TimePoint fired = -1;
  sim.schedule_at(msec(1), [&] { fired = sim.now(); });  // in the past
  sim.run();
  EXPECT_EQ(fired, msec(10));
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  bool ran = false;
  const EventId id = sim.schedule_at(msec(1), [&] { ran = true; });
  EXPECT_TRUE(sim.cancel(id));
  sim.run();
  EXPECT_FALSE(ran);
}

TEST(Simulator, CancelReturnsFalseForUnknownOrDoubleCancel) {
  Simulator sim;
  const EventId id = sim.schedule_at(msec(1), [] {});
  EXPECT_TRUE(sim.cancel(id));
  EXPECT_FALSE(sim.cancel(id));
  EXPECT_FALSE(sim.cancel(kInvalidEvent));
  EXPECT_FALSE(sim.cancel(9999));
}

TEST(Simulator, CancelAfterFireReturnsFalse) {
  Simulator sim;
  const EventId id = sim.schedule_at(msec(1), [] {});
  sim.run();
  // The event already executed; cancelling its id must fail and must not
  // poison the pending() accounting.
  EXPECT_FALSE(sim.cancel(id));
  EXPECT_EQ(sim.pending(), 0u);
}

TEST(Simulator, PendingNeverUnderflowsAfterStaleCancels) {
  Simulator sim;
  std::vector<EventId> ids;
  for (int i = 0; i < 5; ++i)
    ids.push_back(sim.schedule_at(msec(i + 1), [] {}));
  sim.run();
  for (const EventId id : ids) EXPECT_FALSE(sim.cancel(id));
  // With the old tombstone accounting these stale cancels made
  // pending() wrap around to ~2^64.
  EXPECT_EQ(sim.pending(), 0u);
  sim.schedule_at(sim.now() + msec(1), [] {});
  EXPECT_EQ(sim.pending(), 1u);
}

TEST(Simulator, PendingExactWithLazyCancelledEntriesInQueue) {
  Simulator sim;
  const EventId a = sim.schedule_at(msec(10), [] {});
  sim.schedule_at(msec(20), [] {});
  EXPECT_EQ(sim.pending(), 2u);
  EXPECT_TRUE(sim.cancel(a));
  // The cancelled entry still sits in the queue (lazy deletion) but must
  // not be counted.
  EXPECT_EQ(sim.pending(), 1u);
  EXPECT_FALSE(sim.cancel(a));  // double cancel
  EXPECT_EQ(sim.pending(), 1u);
  EXPECT_EQ(sim.run(), 1u);
  EXPECT_EQ(sim.pending(), 0u);
}

TEST(Simulator, PeriodicStartStopCyclesKeepPendingExact) {
  // Regression for the cancel-accounting bug: 10k start/stop cycles of a
  // periodic timer used to leave the kernel's pending() permanently
  // skewed (stale tombstones / size_t underflow).
  Simulator sim;
  int ticks = 0;
  PeriodicTimer timer(sim, msec(10), [&] { ++ticks; });
  for (int i = 0; i < 10000; ++i) {
    timer.start();
    if (i % 2 == 0) sim.run_for(msec(15));  // let one tick fire
    timer.stop();
    EXPECT_EQ(sim.pending(), 0u) << "cycle " << i;
  }
  EXPECT_EQ(ticks, 5000);
  sim.schedule_after(msec(1), [] {});
  EXPECT_EQ(sim.pending(), 1u);
  EXPECT_EQ(sim.run(), 1u);
}

TEST(Simulator, StepHookSeesEveryExecutedEvent) {
  Simulator sim;
  struct HookState {
    Simulator* sim;
    std::vector<EventId> hooked;
    std::vector<TimePoint> times;
  } state{&sim, {}, {}};
  // The hook is a raw fn ptr + context (hot-seam discipline): no captures.
  sim.set_step_hook(
      [](void* ctx, EventId id, TimePoint when, std::size_t pending) {
        auto* s = static_cast<HookState*>(ctx);
        s->hooked.push_back(id);
        s->times.push_back(when);
        EXPECT_EQ(pending, s->sim->pending());
      },
      &state);
  std::vector<EventId>& hooked = state.hooked;
  std::vector<TimePoint>& times = state.times;
  const EventId a = sim.schedule_at(msec(1), [] {});
  const EventId b = sim.schedule_at(msec(2), [] {});
  const EventId c = sim.schedule_at(msec(3), [] {});
  sim.cancel(b);  // cancelled events must not reach the hook
  sim.run();
  EXPECT_EQ(hooked, (std::vector<EventId>{a, c}));
  EXPECT_EQ(times, (std::vector<TimePoint>{msec(1), msec(3)}));
}

TEST(Simulator, RunUntilStopsAtBoundaryAndAdvancesClock) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(msec(5), [&] { ++fired; });
  sim.schedule_at(msec(10), [&] { ++fired; });
  sim.schedule_at(msec(15), [&] { ++fired; });
  sim.run_until(msec(10));
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.now(), msec(10));
  sim.run();
  EXPECT_EQ(fired, 3);
}

TEST(Simulator, RunForAdvancesRelativeToNow) {
  Simulator sim;
  sim.run_until(msec(100));
  int fired = 0;
  sim.schedule_after(msec(50), [&] { ++fired; });
  sim.schedule_after(msec(150), [&] { ++fired; });
  sim.run_for(msec(60));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), msec(160));
}

TEST(Simulator, RunHonoursMaxEvents) {
  Simulator sim;
  // A self-perpetuating event chain would never terminate without the cap.
  std::function<void()> chain = [&] { sim.schedule_after(1, chain); };
  sim.schedule_after(1, chain);
  const std::size_t n = sim.run(1000);
  EXPECT_EQ(n, 1000u);
}

TEST(Simulator, EventsProcessedCounts) {
  Simulator sim;
  for (int i = 0; i < 7; ++i) sim.schedule_after(i, [] {});
  sim.run();
  EXPECT_EQ(sim.events_processed(), 7u);
}

TEST(Simulator, DeterministicAcrossRunsWithSameSeed) {
  auto trace = [](std::uint64_t seed) {
    Simulator sim(seed);
    std::vector<std::int64_t> times;
    for (int i = 0; i < 50; ++i) {
      sim.schedule_after(
          static_cast<Duration>(sim.rng().uniform_int(1, 1000)),
          [&times, &sim] { times.push_back(sim.now()); });
    }
    sim.run();
    return times;
  };
  EXPECT_EQ(trace(7), trace(7));
  EXPECT_NE(trace(7), trace(8));
}

TEST(PeriodicTimer, TicksAtFixedPeriod) {
  Simulator sim;
  std::vector<TimePoint> ticks;
  PeriodicTimer timer(sim, msec(10), [&] { ticks.push_back(sim.now()); });
  timer.start();
  sim.run_until(msec(35));
  EXPECT_EQ(ticks, (std::vector<TimePoint>{msec(10), msec(20), msec(30)}));
}

TEST(PeriodicTimer, StopCancelsPendingTick) {
  Simulator sim;
  int ticks = 0;
  PeriodicTimer timer(sim, msec(10), [&] { ++ticks; });
  timer.start();
  sim.run_until(msec(15));
  timer.stop();
  sim.run_until(msec(100));
  EXPECT_EQ(ticks, 1);
  EXPECT_FALSE(timer.running());
}

TEST(PeriodicTimer, CanStopItselfFromCallback) {
  Simulator sim;
  int ticks = 0;
  PeriodicTimer timer(sim, msec(10), [&] {
    ++ticks;
    // stop() from inside on_tick must not re-arm.
  });
  PeriodicTimer* tp = &timer;
  PeriodicTimer outer(sim, msec(10), [&, tp] {
    ++ticks;
    tp->stop();
  });
  (void)outer;
  timer.start();
  sim.run_until(msec(50));
  EXPECT_GE(ticks, 1);
}

TEST(PeriodicTimer, InitialDelayOverride) {
  Simulator sim;
  std::vector<TimePoint> ticks;
  PeriodicTimer timer(sim, msec(10), [&] { ticks.push_back(sim.now()); });
  timer.start(msec(3));
  sim.run_until(msec(25));
  EXPECT_EQ(ticks, (std::vector<TimePoint>{msec(3), msec(13), msec(23)}));
}

TEST(PeriodicTimer, SetPeriodAppliesWhenTimerNextRearms) {
  Simulator sim;
  std::vector<TimePoint> ticks;
  PeriodicTimer timer(sim, msec(10), [&] { ticks.push_back(sim.now()); });
  timer.start();
  sim.run_until(msec(10));
  // The tick at 20ms is already armed with the old period; the new period
  // governs every re-arm after it fires.
  timer.set_period(msec(20));
  sim.run_until(msec(60));
  EXPECT_EQ(ticks, (std::vector<TimePoint>{msec(10), msec(20), msec(40),
                                           msec(60)}));
}

TEST(Rng, DeterministicStream) {
  Rng a(42), b(42), c(43);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
  bool differs = false;
  Rng a2(42);
  for (int i = 0; i < 100; ++i)
    if (a2.next() != c.next()) differs = true;
  EXPECT_TRUE(differs);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(1);
  for (int i = 0; i < 10'000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformIntInclusiveRange) {
  Rng rng(2);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10'000; ++i) {
    const auto v = rng.uniform_int(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    saw_lo |= v == 3;
    saw_hi |= v == 7;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
  EXPECT_EQ(rng.uniform_int(5, 5), 5);
  EXPECT_EQ(rng.uniform_int(9, 2), 9);  // degenerate: returns lo
}

TEST(Rng, ExponentialMeanApproximatelyCorrect) {
  Rng rng(3);
  double acc = 0;
  const int n = 50'000;
  for (int i = 0; i < n; ++i) acc += rng.exponential(10.0);
  EXPECT_NEAR(acc / n, 10.0, 0.3);
}

TEST(Rng, NormalMomentsApproximatelyCorrect) {
  Rng rng(4);
  double sum = 0, sum2 = 0;
  const int n = 50'000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(5.0, 2.0);
    sum += x;
    sum2 += x * x;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.2);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(5);
  int hits = 0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ZipfSkewsTowardLowRanks) {
  Rng rng(6);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 50'000; ++i) ++counts[rng.zipf(10, 1.2)];
  EXPECT_GT(counts[0], counts[5]);
  EXPECT_GT(counts[0], counts[9]);
  for (int c : counts) EXPECT_GE(c, 0);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent(7);
  Rng child = parent.fork();
  bool differs = false;
  for (int i = 0; i < 50; ++i)
    if (parent.next() != child.next()) differs = true;
  EXPECT_TRUE(differs);
}

TEST(PeriodicTimer, SeededJitterIsDeterministicAndBounded) {
  auto run = [](std::uint64_t seed) {
    Simulator s(seed);
    std::vector<TimePoint> ticks;
    PeriodicTimer t(s, msec(100), [&] { ticks.push_back(s.now()); });
    t.set_jitter(0.2, &s.rng());
    t.start();
    s.run_until(sec(2));
    return ticks;
  };
  const auto a = run(5);
  const auto b = run(5);
  const auto c = run(6);
  // Same seed, same schedule — jitter draws only from the seeded rng.
  EXPECT_EQ(a, b);
  // Different seed, different phase.
  EXPECT_NE(a, c);
  // Every gap stays inside the +/-20% band around the nominal period.
  ASSERT_GE(a.size(), 2u);
  for (std::size_t i = 1; i < a.size(); ++i) {
    const Duration gap = a[i] - a[i - 1];
    EXPECT_GE(gap, msec(80));
    EXPECT_LE(gap, msec(120));
  }
  bool uneven = false;
  for (std::size_t i = 1; i < a.size(); ++i) {
    if (a[i] - a[i - 1] != msec(100)) uneven = true;
  }
  EXPECT_TRUE(uneven);  // the jitter actually moved the ticks
}

TEST(PeriodicTimer, ZeroJitterKeepsLockstep) {
  Simulator s(3);
  std::vector<TimePoint> ticks;
  PeriodicTimer t(s, msec(100), [&] { ticks.push_back(s.now()); });
  t.start();
  s.run_until(msec(500));
  EXPECT_EQ(ticks, (std::vector<TimePoint>{msec(100), msec(200), msec(300),
                                           msec(400), msec(500)}));
}

// Regression: scheduling a "never" sentinel delay used to wrap the sum
// now + delay negative, trip the past-event clamp, and fire the event
// immediately.  The saturating add parks it at kTimeMax instead.
TEST(Simulator, HugeDelaySaturatesInsteadOfFiringImmediately) {
  Simulator sim;
  sim.schedule_at(msec(1), [] {});
  sim.run();  // move the clock off zero so the old wrap was negative
  ASSERT_EQ(sim.now(), msec(1));
  bool fired = false;
  sim.schedule_after(kTimeMax, [&] { fired = true; });
  sim.run_until(sec(3600));
  EXPECT_FALSE(fired);
  EXPECT_EQ(sim.pending(), 1u);
  // The event is real, not lost: running to the end of time fires it.
  sim.run_until(kTimeMax);
  EXPECT_TRUE(fired);
}

TEST(Simulator, RunForSaturatesAtEndOfTime) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(msec(5), [&] { ++fired; });
  sim.run_for(kTimeMax);  // must not wrap into the past and run nothing
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), kTimeMax);
}

// Regression: a non-positive period used to re-arm with delay 0, spinning
// an unbounded same-timestamp event storm run() could never get past.
TEST(PeriodicTimer, NonPositivePeriodDegradesToOneMicrosecond) {
  Simulator s;
  std::uint64_t ticks = 0;
  PeriodicTimer t(s, 0, [&] { ++ticks; });
  t.start();
  s.run_until(usec(100));
  EXPECT_EQ(ticks, 100u);  // one per microsecond, clock always advancing
  EXPECT_EQ(s.now(), usec(100));
}

TEST(PeriodicTimer, SetPeriodZeroMidFlightStillAdvancesClock) {
  Simulator s;
  std::uint64_t ticks = 0;
  PeriodicTimer t(s, msec(1), [&] { ++ticks; });
  t.start();
  s.run_until(msec(2));
  EXPECT_EQ(ticks, 2u);
  t.set_period(-5);
  t.start();  // re-arm now: the non-positive period clamps to 1us per tick
  s.run_until(msec(2) + usec(50));
  EXPECT_EQ(ticks, 2u + 50u);
  // The event cap is a backstop, not the terminator: the run above ended
  // because virtual time reached the bound.
  EXPECT_EQ(s.now(), msec(2) + usec(50));
}

TEST(PeriodicTimer, JitterNeverRoundsDelayToZero) {
  Simulator s(11);
  std::uint64_t ticks = 0;
  PeriodicTimer t(s, usec(1), [&] { ++ticks; });
  t.set_jitter(0.9, &s.rng());  // scale can reach 0.1 => floor at 1us
  t.start();
  s.run_until(usec(500));
  EXPECT_LE(ticks, 500u);  // impossible unless every gap is >= 1us
  EXPECT_GT(ticks, 0u);
}

// Regression: re-inserting an already-live id used to double-increment
// size(), skewing pending() forever.
TEST(LiveBits, InsertIsIdempotent) {
  LiveBits bits;
  EXPECT_TRUE(bits.insert(7));
  EXPECT_EQ(bits.size(), 1u);
  EXPECT_FALSE(bits.insert(7));  // no-op, reported as such
  EXPECT_EQ(bits.size(), 1u);
  EXPECT_TRUE(bits.erase(7));
  EXPECT_EQ(bits.size(), 0u);
  EXPECT_FALSE(bits.erase(7));  // really gone after one erase
  EXPECT_TRUE(bits.insert(7));  // and re-insertable afterwards
  EXPECT_EQ(bits.size(), 1u);
}

}  // namespace
}  // namespace coop::sim
