// Tests for relaxed-WYSIWIS shared views: per-user presentation policies
// over one shared state, visible and tailorable at runtime.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "groupware/views.hpp"

namespace coop::groupware {
namespace {

constexpr ccontrol::ClientId kAlice = 1;
constexpr ccontrol::ClientId kBob = 2;

class ViewsTest : public ::testing::Test {
 protected:
  ViewsTest() {
    space.put(kAlice, "agenda", "1. QoS  2. AOB", sim::sec(1));
    space.put(kBob, "minutes", "draft in progress", sim::sec(2));
    space.put(kAlice, "actions", "Bob: send figures", sim::sec(3));
  }
  SharedViewSpace space;
};

TEST_F(ViewsTest, DefaultViewShowsEverythingByKey) {
  const auto view = space.render(kAlice);
  ASSERT_EQ(view.size(), 3u);
  EXPECT_EQ(view[0], "actions: Bob: send figures");
  EXPECT_EQ(view[1], "agenda: 1. QoS  2. AOB");
  EXPECT_EQ(view[2], "minutes: draft in progress");
}

TEST_F(ViewsTest, SameStateDifferentPresentations) {
  // The relaxed-WYSIWIS point: identical shared state, per-user views.
  space.set_view(kBob, ViewSpec::headlines());
  const auto alice_view = space.render(kAlice);
  const auto bob_view = space.render(kBob);
  ASSERT_EQ(bob_view.size(), 3u);
  EXPECT_EQ(bob_view[0], "actions");  // keys only
  EXPECT_NE(alice_view[0], bob_view[0]);
  EXPECT_EQ(alice_view.size(), bob_view.size());  // same underlying items
}

TEST_F(ViewsTest, FilterViewsSelectSubsets) {
  space.set_view(kAlice, ViewSpec::by_author(kBob));
  const auto view = space.render(kAlice);
  ASSERT_EQ(view.size(), 1u);
  EXPECT_EQ(view[0], "minutes: draft in progress");
}

TEST_F(ViewsTest, RecencyViewOrdersNewestFirst) {
  space.set_view(kAlice, ViewSpec::recent(sim::sec(2)));
  const auto view = space.render(kAlice);
  ASSERT_EQ(view.size(), 2u);
  EXPECT_EQ(view[0], "actions: Bob: send figures");   // t=3
  EXPECT_EQ(view[1], "minutes: draft in progress");   // t=2
}

TEST_F(ViewsTest, PoliciesAreVisibleToOthers) {
  EXPECT_EQ(space.describe_view(kBob), "full detail");
  space.set_view(kBob, ViewSpec::by_author(kAlice));
  EXPECT_EQ(space.describe_view(kBob), "items by user 1");
}

TEST_F(ViewsTest, TailoringFiresObserver) {
  std::vector<std::pair<ccontrol::ClientId, std::string>> changes;
  space.on_view_changed([&](ccontrol::ClientId who, const std::string& n) {
    changes.emplace_back(who, n);
  });
  space.set_view(kBob, ViewSpec::headlines());
  space.set_view(kBob, ViewSpec::full_detail());
  ASSERT_EQ(changes.size(), 2u);
  EXPECT_EQ(changes[0], (std::pair<ccontrol::ClientId, std::string>{
                            kBob, "headlines"}));
  EXPECT_EQ(changes[1].second, "full detail");
}

TEST_F(ViewsTest, UpdatesFlowThroughToViews) {
  int updates = 0;
  space.on_update([&](const ViewItem& item) {
    EXPECT_EQ(item.key, "agenda");
    ++updates;
  });
  space.put(kBob, "agenda", "1. QoS  2. AOB  3. dates", sim::sec(4));
  EXPECT_EQ(updates, 1);
  const auto view = space.render(kAlice);
  EXPECT_EQ(view[1], "agenda: 1. QoS  2. AOB  3. dates");
  // Provenance updated too.
  EXPECT_EQ(space.get("agenda")->author, kBob);
}

TEST_F(ViewsTest, EraseRemovesFromAllViews) {
  EXPECT_TRUE(space.erase("minutes"));
  EXPECT_FALSE(space.erase("minutes"));
  EXPECT_EQ(space.render(kAlice).size(), 2u);
  EXPECT_FALSE(space.get("minutes").has_value());
}

TEST_F(ViewsTest, CustomSpecCombinesFilterPresentOrder) {
  ViewSpec spec;
  spec.name = "alice's headlines, newest first";
  spec.filter = [](const ViewItem& i) { return i.author == kAlice; };
  spec.present = [](const ViewItem& i) { return "* " + i.key; };
  spec.order = ViewSpec::Order::kByRecency;
  space.set_view(kBob, std::move(spec));
  const auto view = space.render(kBob);
  ASSERT_EQ(view.size(), 2u);
  EXPECT_EQ(view[0], "* actions");
  EXPECT_EQ(view[1], "* agenda");
}

}  // namespace
}  // namespace coop::groupware
