// Tests for relaxed-WYSIWIS shared views: per-user presentation policies
// over one shared state, visible and tailorable at runtime — including
// view agreement when the state is replicated over a failing session.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "groupware/session.hpp"
#include "groupware/views.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"

namespace coop::groupware {
namespace {

constexpr ccontrol::ClientId kAlice = 1;
constexpr ccontrol::ClientId kBob = 2;

class ViewsTest : public ::testing::Test {
 protected:
  ViewsTest() {
    space.put(kAlice, "agenda", "1. QoS  2. AOB", sim::sec(1));
    space.put(kBob, "minutes", "draft in progress", sim::sec(2));
    space.put(kAlice, "actions", "Bob: send figures", sim::sec(3));
  }
  SharedViewSpace space;
};

TEST_F(ViewsTest, DefaultViewShowsEverythingByKey) {
  const auto view = space.render(kAlice);
  ASSERT_EQ(view.size(), 3u);
  EXPECT_EQ(view[0], "actions: Bob: send figures");
  EXPECT_EQ(view[1], "agenda: 1. QoS  2. AOB");
  EXPECT_EQ(view[2], "minutes: draft in progress");
}

TEST_F(ViewsTest, SameStateDifferentPresentations) {
  // The relaxed-WYSIWIS point: identical shared state, per-user views.
  space.set_view(kBob, ViewSpec::headlines());
  const auto alice_view = space.render(kAlice);
  const auto bob_view = space.render(kBob);
  ASSERT_EQ(bob_view.size(), 3u);
  EXPECT_EQ(bob_view[0], "actions");  // keys only
  EXPECT_NE(alice_view[0], bob_view[0]);
  EXPECT_EQ(alice_view.size(), bob_view.size());  // same underlying items
}

TEST_F(ViewsTest, FilterViewsSelectSubsets) {
  space.set_view(kAlice, ViewSpec::by_author(kBob));
  const auto view = space.render(kAlice);
  ASSERT_EQ(view.size(), 1u);
  EXPECT_EQ(view[0], "minutes: draft in progress");
}

TEST_F(ViewsTest, RecencyViewOrdersNewestFirst) {
  space.set_view(kAlice, ViewSpec::recent(sim::sec(2)));
  const auto view = space.render(kAlice);
  ASSERT_EQ(view.size(), 2u);
  EXPECT_EQ(view[0], "actions: Bob: send figures");   // t=3
  EXPECT_EQ(view[1], "minutes: draft in progress");   // t=2
}

TEST_F(ViewsTest, PoliciesAreVisibleToOthers) {
  EXPECT_EQ(space.describe_view(kBob), "full detail");
  space.set_view(kBob, ViewSpec::by_author(kAlice));
  EXPECT_EQ(space.describe_view(kBob), "items by user 1");
}

TEST_F(ViewsTest, TailoringFiresObserver) {
  std::vector<std::pair<ccontrol::ClientId, std::string>> changes;
  space.on_view_changed([&](ccontrol::ClientId who, const std::string& n) {
    changes.emplace_back(who, n);
  });
  space.set_view(kBob, ViewSpec::headlines());
  space.set_view(kBob, ViewSpec::full_detail());
  ASSERT_EQ(changes.size(), 2u);
  EXPECT_EQ(changes[0], (std::pair<ccontrol::ClientId, std::string>{
                            kBob, "headlines"}));
  EXPECT_EQ(changes[1].second, "full detail");
}

TEST_F(ViewsTest, UpdatesFlowThroughToViews) {
  int updates = 0;
  space.on_update([&](const ViewItem& item) {
    EXPECT_EQ(item.key, "agenda");
    ++updates;
  });
  space.put(kBob, "agenda", "1. QoS  2. AOB  3. dates", sim::sec(4));
  EXPECT_EQ(updates, 1);
  const auto view = space.render(kAlice);
  EXPECT_EQ(view[1], "agenda: 1. QoS  2. AOB  3. dates");
  // Provenance updated too.
  EXPECT_EQ(space.get("agenda")->author, kBob);
}

TEST_F(ViewsTest, EraseRemovesFromAllViews) {
  EXPECT_TRUE(space.erase("minutes"));
  EXPECT_FALSE(space.erase("minutes"));
  EXPECT_EQ(space.render(kAlice).size(), 2u);
  EXPECT_FALSE(space.get("minutes").has_value());
}

// The membership sense of "view" meets the WYSIWIS sense: each
// participant replicates one SharedViewSpace through a totally ordered
// SessionGroup, the coordinator and the sequencer crash together, and the
// survivors' rendered views must still agree after the partition of
// authority heals.
TEST(SharedViewAgreement, SurvivesCoordinatorAndSequencerCrash) {
  sim::Simulator sim(29);
  net::Network net(sim);
  const net::Address coord_addr{100, 1};
  groups::MembershipConfig mcfg;
  mcfg.enable_failover = true;
  groups::ChannelConfig ccfg;
  ccfg.ordering = groups::Ordering::kTotal;
  ccfg.retransmit_timeout = sim::msec(50);
  ccfg.max_retransmits = 100;
  auto coord = std::make_unique<groups::MembershipCoordinator>(net, coord_addr,
                                                               mcfg);
  struct Part {
    std::unique_ptr<SessionGroup> sg;
    SharedViewSpace space;
  };
  std::vector<std::unique_ptr<Part>> parts;
  const std::vector<net::NodeId> roster{1, 2, 3};
  for (const net::NodeId n : roster) {
    auto p = std::make_unique<Part>();
    p->sg = std::make_unique<SessionGroup>(net, n, roster, coord_addr, 7,
                                           SessionGroup::Ports(), mcfg, ccfg);
    Part* pp = p.get();
    p->sg->on_deliver([pp, &sim](const groups::Delivery& d) {
      // Payload is "key|value"; the author is the sending site.
      const auto bar = d.payload.find('|');
      pp->space.put(static_cast<ccontrol::ClientId>(d.sender + 1),
                    d.payload.substr(0, bar), d.payload.substr(bar + 1),
                    sim.now());
    });
    p->sg->join();
    parts.push_back(std::move(p));
  }
  sim.run_until(sim::msec(800));

  parts[0]->sg->broadcast("agenda|1. QoS  2. AOB");
  parts[1]->sg->broadcast("minutes|draft");
  sim.run_until(sim::msec(1200));

  net.crash(100);  // membership coordinator
  net.crash(1);    // total-order sequencer (and participant 0)
  sim.run_until(sim::sec(5));

  parts[1]->sg->broadcast("minutes|approved");
  parts[2]->sg->broadcast("actions|send figures");
  sim.run_until(sim::sec(9));

  // Same shared state at both survivors, whatever their local policies.
  const auto v1 = parts[1]->space.render(1);
  const auto v2 = parts[2]->space.render(1);
  EXPECT_EQ(v1, v2);
  ASSERT_EQ(v1.size(), 3u);  // agenda, minutes (updated in place), actions
  EXPECT_EQ(parts[1]->space.get("minutes")->value, "approved");
  EXPECT_EQ(parts[2]->space.get("minutes")->value, "approved");
}

TEST_F(ViewsTest, CustomSpecCombinesFilterPresentOrder) {
  ViewSpec spec;
  spec.name = "alice's headlines, newest first";
  spec.filter = [](const ViewItem& i) { return i.author == kAlice; };
  spec.present = [](const ViewItem& i) { return "* " + i.key; };
  spec.order = ViewSpec::Order::kByRecency;
  space.set_view(kBob, std::move(spec));
  const auto view = space.render(kBob);
  ASSERT_EQ(view.size(), 2u);
  EXPECT_EQ(view[0], "* actions");
  EXPECT_EQ(view[1], "* agenda");
}

}  // namespace
}  // namespace coop::groupware
