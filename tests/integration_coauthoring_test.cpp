// Integration test: a full co-authoring session across three simulated
// sites — OT editor + hyperdocument + role policy + negotiation +
// awareness, all running together over a lossy WAN, with failure
// injection (partition during editing).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/coop.hpp"

namespace coop {
namespace {

constexpr ccontrol::ClientId kAlice = 1;
constexpr ccontrol::ClientId kBob = 2;
constexpr ccontrol::ClientId kCarol = 3;

class CoauthoringIntegration : public ::testing::Test {
 protected:
  CoauthoringIntegration()
      : platform(1001),
        sim(platform.simulator()),
        net(platform.network()),
        server(net, {10, 1}, kInitial),
        alice(net, {1, 1}, {10, 1}, kAlice, kInitial),
        bob(net, {2, 1}, {10, 1}, kBob, kInitial),
        carol(net, {3, 1}, {10, 1}, kCarol, kInitial) {
    net.set_default_link({.latency = sim::msec(20), .jitter = sim::msec(8),
                          .bandwidth_bps = 2e6, .loss = 0.03});
    alice.connect();
    bob.connect();
    carol.connect();
    sim.run_until(sim::sec(1));  // join snapshots land
  }

  bool converged() const {
    return alice.doc() == server.doc() && bob.doc() == server.doc() &&
           carol.doc() == server.doc();
  }

  static constexpr const char* kInitial = "Abstract. Body. Conclusion.";
  Platform platform;
  sim::Simulator& sim;
  net::Network& net;
  groupware::EditorServer server;
  groupware::EditorClient alice, bob, carol;
};

TEST_F(CoauthoringIntegration, ThreeSitesConvergeUnderLossyWan) {
  for (int i = 0; i < 20; ++i) {
    sim.schedule_at(sim::sec(1) + i * sim::msec(120), [this, i] {
      alice.insert(static_cast<std::size_t>(i % 5), "a");
      if (!bob.doc().empty()) bob.erase(bob.doc().size() - 1);
      carol.insert(carol.doc().size(), "c");
    });
  }
  sim.run_until(sim::sec(30));
  EXPECT_TRUE(converged()) << "server: " << server.doc();
}

TEST_F(CoauthoringIntegration, EditorRecoversAfterPartition) {
  // Carol's site is cut off mid-edit; her edits queue in the FIFO
  // channel's retransmission machinery and flow after the heal.
  sim.schedule_at(sim::sec(1), [this] { carol.insert(0, "X"); });
  sim.schedule_at(sim::sec(1) + sim::msec(1), [this] {
    net.partition({3});
    alice.insert(0, "Y");  // the connected side keeps working
  });
  sim.schedule_at(sim::sec(3), [this] { carol.insert(1, "Z"); });
  sim.schedule_at(sim::sec(5), [this] { net.heal_partition(); });
  sim.run_until(sim::sec(60));
  EXPECT_TRUE(converged()) << "server: " << server.doc();
  EXPECT_NE(server.doc().find("X"), std::string::npos);
  EXPECT_NE(server.doc().find("Y"), std::string::npos);
  EXPECT_NE(server.doc().find("Z"), std::string::npos);
}

TEST_F(CoauthoringIntegration, PolicyGatesEditsAndNegotiationOpensThem) {
  access::RolePolicy policy;
  policy.define_role("author");
  policy.grant_role("author", "doc", access::kWrite);
  policy.assign(kAlice, "author");

  access::RightsNegotiator negotiator(
      sim, policy,
      {.policy = access::VotePolicy::kUnanimous,
       .voting_window = sim::sec(5)});
  negotiator.set_approvers({kAlice});

  // Carol cannot edit yet.
  EXPECT_FALSE(policy.check(kCarol, "doc", access::kWrite));

  bool accepted = false;
  sim.schedule_at(sim::sec(2), [&] {
    const auto id = negotiator.propose(
        kCarol,
        {.kind = access::ProposedChange::Kind::kAssignRole,
         .role = "author",
         .client = kCarol,
         .object = {},
         .region = {},
         .rights = 0},
        [&](bool a) {
          accepted = a;
          if (a && policy.check(kCarol, "doc", access::kWrite))
            carol.insert(0, "[carol] ");
        });
    sim.schedule_after(sim::msec(500),
                       [&negotiator, id] { negotiator.vote(id, kAlice, true); });
  });
  sim.run_until(sim::sec(30));
  EXPECT_TRUE(accepted);
  EXPECT_TRUE(policy.check(kCarol, "doc", access::kWrite));
  EXPECT_TRUE(converged());
  EXPECT_EQ(server.doc().rfind("[carol] ", 0), 0u);
}

TEST_F(CoauthoringIntegration, HyperdocumentAnnotationsTrackEditorActivity) {
  groupware::HyperDocument doc("paper");
  const auto base = doc.add_base(kAlice, kInitial);

  awareness::SpatialModel space;
  space.place(kAlice, {0, 0});
  space.place(kBob, {1, 0});
  awareness::AwarenessEngine engine(sim, space);
  int bob_notices = 0;
  engine.subscribe(kBob, [&](const awareness::ActivityEvent&, double, bool) {
    ++bob_notices;
  });
  // Every structural change to the document publishes activity.
  doc.on_change([&](const groupware::DocNode& n) {
    engine.publish({n.author, "paper", "changes", sim.now()});
  });

  sim.schedule_at(sim::sec(1), [&] {
    const auto s = doc.attach(kAlice, base, groupware::NodeKind::kSuggestion,
                              "Abstract, improved. Body. Conclusion.");
    ASSERT_NE(s, 0u);
    doc.accept_suggestion(s);
  });
  sim.run_until(sim::sec(10));
  EXPECT_EQ(doc.node(base)->content, "Abstract, improved. Body. Conclusion.");
  EXPECT_GE(bob_notices, 2);  // the suggestion and the acceptance
}

}  // namespace
}  // namespace coop
