// Tests for disconnected operation: hoarding, cache reads, the operation
// log, bulk reintegration and conflict policies.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "mobile/host.hpp"
#include "mobile/share_server.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"

namespace coop::mobile {
namespace {

constexpr net::Address kServer{100, 1};

class MobileTest : public ::testing::Test {
 protected:
  MobileTest() : sim(21), net(sim), server(net, kServer) {
    server.store().write("report", "draft v1");
    server.store().write("notes", "todo");
    server.store().write("budget", "1000");
  }

  sim::Simulator sim;
  net::Network net;
  ShareServer server;
};

TEST_F(MobileTest, ConnectedReadGoesToServerAndFillsCache) {
  MobileHost host(net, {1, 1}, kServer);
  std::optional<std::string> got;
  host.read("report", [&](bool ok, auto v) {
    EXPECT_TRUE(ok);
    got = v;
  });
  sim.run();
  EXPECT_EQ(got, "draft v1");
  EXPECT_EQ(host.cache_size(), 1u);
  EXPECT_EQ(host.stats().remote_reads, 1u);
}

TEST_F(MobileTest, ConnectedWriteReachesServer) {
  MobileHost host(net, {1, 1}, kServer);
  bool ok = false;
  host.write("report", "draft v2", [&](bool r) { ok = r; });
  sim.run();
  EXPECT_TRUE(ok);
  EXPECT_EQ(server.store().read("report"), "draft v2");
}

TEST_F(MobileTest, HoardFetchesProfileKeys) {
  MobileHost host(net, {1, 1}, kServer);
  std::size_t fetched = 0;
  host.hoard({"report", "notes", "missing"}, [&](std::size_t n) {
    fetched = n;
  });
  sim.run();
  EXPECT_EQ(fetched, 3u);  // absence is cached too
  EXPECT_EQ(host.cache_size(), 3u);
}

TEST_F(MobileTest, DisconnectedReadsServeFromCache) {
  MobileHost host(net, {1, 1}, kServer);
  host.hoard({"report", "missing"}, nullptr);
  sim.run();
  host.set_connectivity(net::Connectivity::kDisconnected);
  std::optional<std::string> got;
  bool hit = false;
  host.read("report", [&](bool ok, auto v) {
    hit = ok;
    got = v;
  });
  EXPECT_TRUE(hit);
  EXPECT_EQ(got, "draft v1");
  // Cached absence answers correctly without the network.
  host.read("missing", [&](bool ok, auto v) {
    EXPECT_TRUE(ok);
    EXPECT_FALSE(v.has_value());
  });
  // Unhoarded key: a genuine miss.
  host.read("budget", [&](bool ok, auto) { EXPECT_FALSE(ok); });
  EXPECT_EQ(host.stats().cache_misses, 1u);
  EXPECT_EQ(host.stats().cache_hits, 2u);
}

TEST_F(MobileTest, DisconnectedWritesLogAndReadYourWrites) {
  MobileHost host(net, {1, 1}, kServer);
  host.hoard({"report"}, nullptr);
  sim.run();
  host.set_connectivity(net::Connectivity::kDisconnected);
  host.write("report", "offline edit", [](bool ok) { EXPECT_TRUE(ok); });
  EXPECT_EQ(host.log_size(), 1u);
  host.read("report", [](bool ok, auto v) {
    EXPECT_TRUE(ok);
    EXPECT_EQ(v, "offline edit");
  });
  // The server is untouched while offline.
  EXPECT_EQ(server.store().read("report"), "draft v1");
}

TEST_F(MobileTest, RepeatedOfflineWritesCoalesceInLog) {
  MobileHost host(net, {1, 1}, kServer);
  host.hoard({"report"}, nullptr);
  sim.run();
  host.set_connectivity(net::Connectivity::kDisconnected);
  for (int i = 0; i < 10; ++i)
    host.write("report", "edit " + std::to_string(i), [](bool) {});
  EXPECT_EQ(host.log_size(), 1u);  // one entry, latest value
}

TEST_F(MobileTest, ReintegrationAppliesCleanLog) {
  MobileHost host(net, {1, 1}, kServer);
  host.hoard({"report", "notes"}, nullptr);
  sim.run();
  host.set_connectivity(net::Connectivity::kDisconnected);
  host.write("report", "offline report", [](bool) {});
  host.write("notes", "offline notes", [](bool) {});
  sim.run();
  host.set_connectivity(net::Connectivity::kFull);
  std::size_t applied = 0;
  std::vector<Conflict> conflicts;
  host.reintegrate([&](std::size_t a, const std::vector<Conflict>& c) {
    applied = a;
    conflicts = c;
  });
  sim.run();
  EXPECT_EQ(applied, 2u);
  EXPECT_TRUE(conflicts.empty());
  EXPECT_EQ(server.store().read("report"), "offline report");
  EXPECT_EQ(server.store().read("notes"), "offline notes");
  EXPECT_EQ(host.log_size(), 0u);
}

TEST_F(MobileTest, ConflictDetectedWhenServerChangedMeanwhile) {
  MobileHost host(net, {1, 1}, kServer);
  host.hoard({"report"}, nullptr);
  sim.run();
  host.set_connectivity(net::Connectivity::kDisconnected);
  host.write("report", "mobile version", [](bool) {});
  // A fixed-network colleague updates the same document meanwhile.
  server.store().write("report", "office version");
  host.set_connectivity(net::Connectivity::kFull);
  std::vector<Conflict> conflicts;
  host.reintegrate([&](std::size_t, const std::vector<Conflict>& c) {
    conflicts = c;
  });
  sim.run();
  ASSERT_EQ(conflicts.size(), 1u);
  EXPECT_EQ(conflicts[0].local_value, "mobile version");
  EXPECT_EQ(conflicts[0].server_value, "office version");
  // Server-wins (default): the office version stands.
  EXPECT_EQ(server.store().read("report"), "office version");
  EXPECT_EQ(server.bulk_conflicts(), 1u);
}

TEST_F(MobileTest, ClientWinsPolicyForcesLocalValue) {
  MobileHost host(net, {1, 1}, kServer, ConflictPolicy::kClientWins);
  host.hoard({"report"}, nullptr);
  sim.run();
  host.set_connectivity(net::Connectivity::kDisconnected);
  host.write("report", "mobile version", [](bool) {});
  server.store().write("report", "office version");
  host.set_connectivity(net::Connectivity::kFull);
  host.reintegrate([](std::size_t, const auto&) {});
  sim.run();
  EXPECT_EQ(server.store().read("report"), "mobile version");
}

TEST_F(MobileTest, ManualPolicySurfacesConflict) {
  MobileHost host(net, {1, 1}, kServer, ConflictPolicy::kManual);
  std::vector<Conflict> surfaced;
  host.on_conflict([&](const Conflict& c) { surfaced.push_back(c); });
  host.hoard({"report"}, nullptr);
  sim.run();
  host.set_connectivity(net::Connectivity::kDisconnected);
  host.write("report", "mobile version", [](bool) {});
  server.store().write("report", "office version");
  host.set_connectivity(net::Connectivity::kFull);
  host.reintegrate([](std::size_t, const auto&) {});
  sim.run();
  ASSERT_EQ(surfaced.size(), 1u);
  EXPECT_EQ(surfaced[0].key, "report");
  // Manual keeps the server value until the user decides.
  EXPECT_EQ(server.store().read("report"), "office version");
}

TEST_F(MobileTest, FailedReintegrationRestoresLog) {
  MobileHost host(net, {1, 1}, kServer);
  host.hoard({"report"}, nullptr);
  sim.run();
  host.set_connectivity(net::Connectivity::kDisconnected);
  host.write("report", "edit", [](bool) {});
  // Still disconnected: the bulk RPC cannot reach the server.
  host.reintegrate([](std::size_t a, const auto&) { EXPECT_EQ(a, 0u); });
  sim.run();
  EXPECT_EQ(host.log_size(), 1u);  // preserved for the next attempt
}

TEST_F(MobileTest, PartialConnectivityStillReachesServer) {
  net.set_radio_model({.latency = sim::msec(150), .jitter = sim::msec(20),
                       .bandwidth_bps = 19'200, .loss = 0.0});
  MobileHost host(net, {1, 1}, kServer);
  host.set_connectivity(net::Connectivity::kPartial);
  std::optional<std::string> got;
  host.read("report", [&](bool ok, auto v) {
    EXPECT_TRUE(ok);
    got = v;
  });
  sim.run();
  EXPECT_EQ(got, "draft v1");
  EXPECT_GT(sim.now(), sim::msec(250));  // radio latency was paid
}

TEST_F(MobileTest, EmptyLogReintegratesTrivially) {
  MobileHost host(net, {1, 1}, kServer);
  bool called = false;
  host.reintegrate([&](std::size_t a, const auto& c) {
    called = true;
    EXPECT_EQ(a, 0u);
    EXPECT_TRUE(c.empty());
  });
  EXPECT_TRUE(called);
}

}  // namespace
}  // namespace coop::mobile
