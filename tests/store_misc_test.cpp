// Small-gap coverage: the versioned object store, simulator pending
// accounting, and misc link-model behaviour not exercised elsewhere.
#include <gtest/gtest.h>

#include "ccontrol/store.hpp"
#include "net/link.hpp"
#include "sim/simulator.hpp"

namespace coop {
namespace {

TEST(ObjectStore, VersionsAdvancePerKey) {
  ccontrol::ObjectStore store;
  EXPECT_EQ(store.version("k"), 0u);
  store.write("k", "v1");
  EXPECT_EQ(store.version("k"), 1u);
  store.write("k", "v2");
  EXPECT_EQ(store.version("k"), 2u);
  store.write("other", "x");
  EXPECT_EQ(store.version("other"), 1u);  // independent counters
  EXPECT_EQ(store.read("k"), "v2");
}

TEST(ObjectStore, EraseAndKeys) {
  ccontrol::ObjectStore store;
  store.write("b", "2");
  store.write("a", "1");
  EXPECT_EQ(store.keys(), (std::vector<std::string>{"a", "b"}));
  EXPECT_TRUE(store.erase("a"));
  EXPECT_FALSE(store.erase("a"));
  EXPECT_FALSE(store.read("a").has_value());
  EXPECT_EQ(store.size(), 1u);
}

// Regression: equality used to ignore per-key versions, so two replicas
// holding equal values at diverged versions counted as "converged" even
// though the next last-writer-wins decision would differ between them.
TEST(ObjectStore, EqualityComparesVersionsToo) {
  ccontrol::ObjectStore a, b;
  a.write("k", "old");
  a.write("k", "same");  // version 2
  b.write("k", "same");  // version 1
  EXPECT_FALSE(a == b);  // equal values, diverged versions: NOT converged
  b.write("k", "same");  // version 2
  EXPECT_TRUE(a == b);
  b.write("k", "different");
  EXPECT_FALSE(a == b);
}

TEST(ObjectStore, EqualityIgnoresTombstones) {
  ccontrol::ObjectStore a, b;
  a.write("k", "v");
  b.write("k", "v");
  a.write("gone", "x");
  EXPECT_TRUE(a.erase("gone"));
  // "deleted" (a) and "never existed" (b) are the same live state.
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a.tombstones().empty());
}

TEST(ObjectStore, EraseLeavesTombstoneAboveDeletedVersion) {
  ccontrol::ObjectStore store;
  store.write("k", "v1");
  store.write("k", "v2");          // version 2
  EXPECT_TRUE(store.erase("k", 7));
  ASSERT_EQ(store.tombstones().count("k"), 1u);
  EXPECT_EQ(store.tombstones().at("k").version, 3u);
  EXPECT_EQ(store.tombstones().at("k").stamp, 7u);
  EXPECT_EQ(store.version("k"), 3u);  // monotonic across deletion
  // A re-write continues the order above the tombstone and clears it.
  store.write("k", "v3");
  EXPECT_EQ(store.version("k"), 4u);
  EXPECT_TRUE(store.tombstones().empty());
  // Erasing a never-written key leaves no tombstone (nothing to replicate).
  EXPECT_FALSE(store.erase("ghost"));
  EXPECT_TRUE(store.tombstones().empty());
}

TEST(ObjectStore, AppliesAreIdempotentAndLwwSafe) {
  ccontrol::ObjectStore store;
  store.apply_put("k", "v5", 5);
  store.apply_put("k", "v5", 5);  // replaying the same record is a no-op
  EXPECT_EQ(store.read("k"), "v5");
  EXPECT_EQ(store.version("k"), 5u);
  store.apply_erase("k", 6, 100);
  store.apply_erase("k", 6, 100);
  EXPECT_FALSE(store.read("k").has_value());
  EXPECT_EQ(store.version("k"), 6u);
  // A dominated put cannot resurrect the deleted key...
  store.apply_put("k", "stale", 4);
  store.apply_put("k", "stale", 4);
  EXPECT_EQ(store.version("k"), 6u);
  EXPECT_EQ(store.tombstones().at("k").version, 6u);
  // ...but a dominating one clears the tombstone.
  store.apply_put("k", "v7", 7);
  EXPECT_EQ(store.read("k"), "v7");
  EXPECT_TRUE(store.tombstones().empty());
}

TEST(ObjectStore, TombstoneGcHonorsTtlAndCap) {
  ccontrol::ObjectStore store;
  for (int i = 0; i < 6; ++i) {
    const std::string key = "k" + std::to_string(i);
    store.write(key, "v");
    store.erase(key, static_cast<std::uint64_t>(10 * i));  // stamps 0..50
  }
  ASSERT_EQ(store.tombstones().size(), 6u);
  // TTL: stamps below 15 (k0, k1) are collected.
  EXPECT_EQ(store.gc_tombstones(15, 100), 2u);
  EXPECT_EQ(store.tombstones().size(), 4u);
  // Cap: oldest-by-stamp go first until 2 remain.
  EXPECT_EQ(store.gc_tombstones(0, 2), 2u);
  ASSERT_EQ(store.tombstones().size(), 2u);
  EXPECT_EQ(store.tombstones().count("k4"), 1u);
  EXPECT_EQ(store.tombstones().count("k5"), 1u);
}

TEST(Simulator, PendingExcludesCancelled) {
  sim::Simulator sim;
  const auto a = sim.schedule_after(sim::msec(1), [] {});
  sim.schedule_after(sim::msec(2), [] {});
  EXPECT_EQ(sim.pending(), 2u);
  sim.cancel(a);
  EXPECT_EQ(sim.pending(), 1u);
  sim.run();
  EXPECT_EQ(sim.pending(), 0u);
}

TEST(LinkModel, RadioIsSlowAndLossy) {
  const auto radio = net::LinkModel::radio();
  // A 1 kB datagram takes ~417 ms to serialize at 19.2 kbps.
  EXPECT_GT(radio.serialize_time(1000), sim::msec(400));
  EXPECT_GT(radio.loss, 0.0);
}

TEST(LinkModel, PropagationStaysNonNegativeUnderJitter) {
  sim::Rng rng(3);
  const net::LinkModel jittery{.latency = sim::msec(1),
                               .jitter = sim::msec(10),
                               .bandwidth_bps = 0,
                               .loss = 0};
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GE(jittery.propagation(rng), 0);
  }
}

}  // namespace
}  // namespace coop
