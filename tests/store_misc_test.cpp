// Small-gap coverage: the versioned object store, simulator pending
// accounting, and misc link-model behaviour not exercised elsewhere.
#include <gtest/gtest.h>

#include "ccontrol/store.hpp"
#include "net/link.hpp"
#include "sim/simulator.hpp"

namespace coop {
namespace {

TEST(ObjectStore, VersionsAdvancePerKey) {
  ccontrol::ObjectStore store;
  EXPECT_EQ(store.version("k"), 0u);
  store.write("k", "v1");
  EXPECT_EQ(store.version("k"), 1u);
  store.write("k", "v2");
  EXPECT_EQ(store.version("k"), 2u);
  store.write("other", "x");
  EXPECT_EQ(store.version("other"), 1u);  // independent counters
  EXPECT_EQ(store.read("k"), "v2");
}

TEST(ObjectStore, EraseAndKeys) {
  ccontrol::ObjectStore store;
  store.write("b", "2");
  store.write("a", "1");
  EXPECT_EQ(store.keys(), (std::vector<std::string>{"a", "b"}));
  EXPECT_TRUE(store.erase("a"));
  EXPECT_FALSE(store.erase("a"));
  EXPECT_FALSE(store.read("a").has_value());
  EXPECT_EQ(store.size(), 1u);
}

TEST(ObjectStore, EqualityComparesValuesNotVersions) {
  ccontrol::ObjectStore a, b;
  a.write("k", "old");
  a.write("k", "same");  // version 2
  b.write("k", "same");  // version 1
  EXPECT_TRUE(a == b);
  b.write("k", "different");
  EXPECT_FALSE(a == b);
  b.write("extra", "x");
  EXPECT_FALSE(a == b);
}

TEST(Simulator, PendingExcludesCancelled) {
  sim::Simulator sim;
  const auto a = sim.schedule_after(sim::msec(1), [] {});
  sim.schedule_after(sim::msec(2), [] {});
  EXPECT_EQ(sim.pending(), 2u);
  sim.cancel(a);
  EXPECT_EQ(sim.pending(), 1u);
  sim.run();
  EXPECT_EQ(sim.pending(), 0u);
}

TEST(LinkModel, RadioIsSlowAndLossy) {
  const auto radio = net::LinkModel::radio();
  // A 1 kB datagram takes ~417 ms to serialize at 19.2 kbps.
  EXPECT_GT(radio.serialize_time(1000), sim::msec(400));
  EXPECT_GT(radio.loss, 0.0);
}

TEST(LinkModel, PropagationStaysNonNegativeUnderJitter) {
  sim::Rng rng(3);
  const net::LinkModel jittery{.latency = sim::msec(1),
                               .jitter = sim::msec(10),
                               .bandwidth_bps = 0,
                               .loss = 0};
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GE(jittery.propagation(rng), 0);
  }
}

}  // namespace
}  // namespace coop
