// Tests for the operational-transformation engine: transform correctness
// (TP1), Jupiter link behaviour, and randomized multi-client convergence.
#include <gtest/gtest.h>

#include <deque>
#include <string>
#include <vector>

#include "ccontrol/ot.hpp"
#include "sim/rng.hpp"

namespace coop::ccontrol {
namespace {

TEST(TextOp, ApplyInsert) {
  std::string doc = "hello";
  TextOp::insert(5, " world", 1).apply(doc);
  EXPECT_EQ(doc, "hello world");
  TextOp::insert(0, ">", 1).apply(doc);
  EXPECT_EQ(doc, ">hello world");
  TextOp::insert(999, "!", 1).apply(doc);  // clamps to end
  EXPECT_EQ(doc, ">hello world!");
}

TEST(TextOp, ApplyDelete) {
  std::string doc = "abc";
  TextOp::erase(1, 1).apply(doc);
  EXPECT_EQ(doc, "ac");
  TextOp::erase(99, 1).apply(doc);  // out of range: no-op
  EXPECT_EQ(doc, "ac");
}

TEST(TextOp, ApplyNoop) {
  std::string doc = "abc";
  TextOp::noop().apply(doc);
  EXPECT_EQ(doc, "abc");
}

// TP1: apply(apply(S, a), transform(b, a)) == apply(apply(S, b),
// transform(a, b)) for all single-char-delete / string-insert pairs.
TEST(Transform, Tp1HoldsExhaustivelyOnSmallDocs) {
  const std::string base = "abcdef";
  std::vector<TextOp> ops;
  for (std::size_t p = 0; p <= base.size(); ++p) {
    ops.push_back(TextOp::insert(p, "X", 1));
    ops.push_back(TextOp::insert(p, "YZ", 2));
  }
  for (std::size_t p = 0; p < base.size(); ++p) {
    ops.push_back(TextOp::erase(p, 1));
    ops.push_back(TextOp::erase(p, 2));
  }
  int checked = 0;
  for (const TextOp& a : ops) {
    for (const TextOp& b : ops) {
      if (a.site == b.site) continue;  // concurrent ops from one site
      std::string s1 = base;
      a.apply(s1);
      transform(b, a).apply(s1);
      std::string s2 = base;
      b.apply(s2);
      transform(a, b).apply(s2);
      EXPECT_EQ(s1, s2) << "a={" << static_cast<int>(a.kind) << "," << a.pos
                        << ",'" << a.text << "'} b={"
                        << static_cast<int>(b.kind) << "," << b.pos << ",'"
                        << b.text << "'}";
      ++checked;
    }
  }
  EXPECT_GT(checked, 300);
}

TEST(Transform, ConcurrentInsertsAtSamePositionUseSiteTieBreak) {
  const std::string base = "__";
  const TextOp a = TextOp::insert(1, "A", 1);
  const TextOp b = TextOp::insert(1, "B", 2);
  std::string s1 = base;
  a.apply(s1);
  transform(b, a).apply(s1);
  std::string s2 = base;
  b.apply(s2);
  transform(a, b).apply(s2);
  EXPECT_EQ(s1, s2);
  EXPECT_EQ(s1, "_AB_");  // lower site id lands first
}

TEST(Transform, DeleteSameCharacterConvergesToSingleRemoval) {
  const std::string base = "xyz";
  const TextOp a = TextOp::erase(1, 1);
  const TextOp b = TextOp::erase(1, 2);
  std::string s1 = base;
  a.apply(s1);
  transform(b, a).apply(s1);
  EXPECT_EQ(s1, "xz");
  EXPECT_TRUE(transform(b, a).is_noop());
}

TEST(OtLinkTest, AcknowledgementPrunesOutgoing) {
  OtLink a;
  a.generate(TextOp::insert(0, "x", 1));
  a.generate(TextOp::insert(1, "y", 1));
  EXPECT_EQ(a.in_flight(), 2u);
  // Peer message acknowledging our first op.
  OtLink::Message msg;
  msg.op = TextOp::insert(0, "z", 2);
  msg.sender_generated = 0;
  msg.sender_received = 1;  // peer saw our first op
  a.receive(msg);
  EXPECT_EQ(a.in_flight(), 1u);
}

// Two clients through a server, with explicit message queues that we can
// drain in adversarial orders.
struct Net2 {
  OtClient a{1}, b{2};
  OtServer server;
  std::deque<OtLink::Message> to_server_a, to_server_b;  // client -> server
  std::deque<OtLink::Message> to_a, to_b;                // server -> client

  Net2(const std::string& initial)
      : a(1, initial), b(2, initial), server(initial) {
    server.add_client(1);
    server.add_client(2);
  }

  void pump_one_server_msg(SiteId from) {
    auto& q = from == 1 ? to_server_a : to_server_b;
    if (q.empty()) return;
    auto out = server.receive(from, q.front());
    q.pop_front();
    for (auto& o : out) (o.to == 1 ? to_a : to_b).push_back(o.message);
  }
  void pump_one_client_msg(SiteId to) {
    auto& q = to == 1 ? to_a : to_b;
    if (q.empty()) return;
    (to == 1 ? a : b).receive(q.front());
    q.pop_front();
  }
  bool drained() const {
    return to_server_a.empty() && to_server_b.empty() && to_a.empty() &&
           to_b.empty();
  }
  void drain_all() {
    while (!drained()) {
      pump_one_server_msg(1);
      pump_one_server_msg(2);
      pump_one_client_msg(1);
      pump_one_client_msg(2);
    }
  }
};

TEST(Jupiter, ConcurrentInsertsConverge) {
  Net2 net("shared");
  net.to_server_a.push_back(net.a.local_insert(0, "A"));
  net.to_server_b.push_back(net.b.local_insert(6, "B"));
  net.drain_all();
  EXPECT_EQ(net.a.doc(), net.b.doc());
  EXPECT_EQ(net.a.doc(), net.server.doc());
  EXPECT_EQ(net.a.doc(), "AsharedB");
}

TEST(Jupiter, InsertVsDeleteConverge) {
  Net2 net("abc");
  net.to_server_a.push_back(net.a.local_insert(1, "X"));   // aXbc
  net.to_server_b.push_back(net.b.local_delete(2));        // ab
  net.drain_all();
  EXPECT_EQ(net.a.doc(), net.b.doc());
  EXPECT_EQ(net.a.doc(), net.server.doc());
  EXPECT_EQ(net.a.doc(), "aXb");
}

TEST(Jupiter, LocalEditsApplyImmediately) {
  Net2 net("doc");
  const auto msg = net.a.local_insert(3, "!");
  EXPECT_EQ(net.a.doc(), "doc!");  // zero response time
  (void)msg;
}

TEST(Jupiter, RapidFireFromBothSidesConverges) {
  Net2 net("0123456789");
  for (int i = 0; i < 5; ++i) {
    net.to_server_a.push_back(net.a.local_insert(
        static_cast<std::size_t>(i), "a"));
    net.to_server_b.push_back(net.b.local_delete(0));
  }
  net.drain_all();
  EXPECT_EQ(net.a.doc(), net.b.doc());
  EXPECT_EQ(net.a.doc(), net.server.doc());
}

TEST(Jupiter, DeleteRangeHelperSplitsIntoCharOps) {
  OtClient c(1, "abcdef");
  const auto msgs = c.local_delete_range(1, 3);
  EXPECT_EQ(msgs.size(), 3u);
  EXPECT_EQ(c.doc(), "aef");
}

TEST(Jupiter, RemovedClientStopsReceivingOthersContinue) {
  OtServer server("base");
  server.add_client(1);
  server.add_client(2);
  server.add_client(3);
  EXPECT_EQ(server.client_count(), 3u);
  OtClient c1(1, "base");
  auto out = server.receive(1, c1.local_insert(0, "X"));
  EXPECT_EQ(out.size(), 2u);  // fan-out to 2 and 3
  server.remove_client(3);
  out = server.receive(1, c1.local_insert(1, "Y"));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].to, 2u);
  // Messages from an unknown client are ignored.
  OtClient ghost(9, "base");
  EXPECT_TRUE(server.receive(9, ghost.local_insert(0, "Z")).empty());
  EXPECT_EQ(server.doc(), "XYbase");
}

// Property: N clients, random concurrent edits, random interleaving of
// message pumping — after draining, all replicas agree.
class OtConvergence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OtConvergence, RandomEditsConvergeAcrossThreeClients) {
  sim::Rng rng(GetParam());
  const std::string initial = "The quick brown fox";
  OtServer server(initial);
  std::vector<OtClient> clients;
  for (SiteId s = 1; s <= 3; ++s) {
    clients.emplace_back(s, initial);
    server.add_client(s);
  }
  std::vector<std::deque<OtLink::Message>> to_server(3), to_client(3);

  auto random_edit = [&](std::size_t c) {
    OtClient& cl = clients[c];
    if (!cl.doc().empty() && rng.bernoulli(0.4)) {
      const auto pos = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(cl.doc().size()) - 1));
      to_server[c].push_back(cl.local_delete(pos));
    } else {
      const auto pos = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(cl.doc().size())));
      const char ch = static_cast<char>('a' + rng.uniform_int(0, 25));
      to_server[c].push_back(cl.local_insert(pos, std::string(1, ch)));
    }
  };

  // Interleave edits and partial message pumping adversarially.
  for (int round = 0; round < 120; ++round) {
    const int action = static_cast<int>(rng.uniform_int(0, 2));
    const auto c = static_cast<std::size_t>(rng.uniform_int(0, 2));
    if (action == 0) {
      random_edit(c);
    } else if (action == 1 && !to_server[c].empty()) {
      auto out = server.receive(static_cast<SiteId>(c + 1),
                                to_server[c].front());
      to_server[c].pop_front();
      for (auto& o : out) to_client[o.to - 1].push_back(o.message);
    } else if (!to_client[c].empty()) {
      clients[c].receive(to_client[c].front());
      to_client[c].pop_front();
    }
  }
  // Drain everything (server first, then clients, repeatedly).
  bool progress = true;
  while (progress) {
    progress = false;
    for (std::size_t c = 0; c < 3; ++c) {
      while (!to_server[c].empty()) {
        auto out = server.receive(static_cast<SiteId>(c + 1),
                                  to_server[c].front());
        to_server[c].pop_front();
        for (auto& o : out) to_client[o.to - 1].push_back(o.message);
        progress = true;
      }
      while (!to_client[c].empty()) {
        clients[c].receive(to_client[c].front());
        to_client[c].pop_front();
        progress = true;
      }
    }
  }
  for (const OtClient& c : clients) {
    EXPECT_EQ(c.doc(), server.doc()) << "site " << c.site() << " diverged";
    // Note: in_flight() may be nonzero here — Jupiter acknowledgements
    // piggyback on server->client traffic, so a client whose final ops
    // drew no later server message legitimately still holds them.
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OtConvergence,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u,
                                           9u, 10u, 11u, 12u));

}  // namespace
}  // namespace coop::ccontrol
