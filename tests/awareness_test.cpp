// Tests for the spatial model (focus/nimbus) and the awareness engine
// (weighted immediate/digest/suppressed delivery).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "awareness/engine.hpp"
#include "awareness/spatial.hpp"
#include "sim/simulator.hpp"

namespace coop::awareness {
namespace {

constexpr ClientId kAlice = 1;
constexpr ClientId kBob = 2;
constexpr ClientId kCarol = 3;

TEST(Spatial, SelfAwarenessIsFull) {
  SpatialModel m;
  m.place(kAlice, {0, 0});
  EXPECT_DOUBLE_EQ(m.awareness(kAlice, kAlice), 1.0);
}

TEST(Spatial, UnknownParticipantsHaveZeroAwareness) {
  SpatialModel m;
  m.place(kAlice, {0, 0});
  EXPECT_DOUBLE_EQ(m.awareness(kAlice, kBob), 0.0);
  EXPECT_DOUBLE_EQ(m.awareness(kBob, kAlice), 0.0);
}

TEST(Spatial, AwarenessFallsOffWithDistance) {
  SpatialModel m;
  m.place(kAlice, {0, 0});
  m.place(kBob, {2, 0});
  m.place(kCarol, {8, 0});
  m.set_focus(kAlice, 10);
  m.set_nimbus(kBob, 10);
  m.set_nimbus(kCarol, 10);
  EXPECT_GT(m.awareness(kAlice, kBob), m.awareness(kAlice, kCarol));
  EXPECT_GT(m.awareness(kAlice, kCarol), 0.0);
}

TEST(Spatial, OutOfRangeIsZero) {
  SpatialModel m;
  m.place(kAlice, {0, 0});
  m.place(kBob, {100, 0});
  m.set_focus(kAlice, 10);
  m.set_nimbus(kBob, 10);
  EXPECT_DOUBLE_EQ(m.awareness(kAlice, kBob), 0.0);
}

TEST(Spatial, NimbusControlsHowObservableOneIs) {
  // Bob projects widely, Carol keeps to herself: at the same distance,
  // Alice is aware of Bob but not of Carol — the asymmetry the
  // focus/nimbus model exists to express.
  SpatialModel m;
  m.place(kAlice, {0, 0});
  m.place(kBob, {5, 0});
  m.place(kCarol, {-5, 0});
  m.set_focus(kAlice, 20);
  m.set_nimbus(kBob, 20);
  m.set_nimbus(kCarol, 1);
  EXPECT_GT(m.awareness(kAlice, kBob), 0.0);
  EXPECT_DOUBLE_EQ(m.awareness(kAlice, kCarol), 0.0);
}

TEST(Spatial, AwarenessIsAsymmetric) {
  SpatialModel m;
  m.place(kAlice, {0, 0});
  m.place(kBob, {5, 0});
  m.set_focus(kAlice, 100);  // Alice attends widely
  m.set_focus(kBob, 1);      // Bob attends narrowly
  m.set_nimbus(kAlice, 100);
  m.set_nimbus(kBob, 100);
  EXPECT_GT(m.awareness(kAlice, kBob), m.awareness(kBob, kAlice));
}

TEST(Spatial, LevelsQuantizeCorrectly) {
  SpatialModel m;
  m.place(kAlice, {0, 0});
  m.place(kBob, {1, 0});
  m.set_focus(kAlice, 10);
  m.set_nimbus(kBob, 10);
  EXPECT_EQ(m.level(kAlice, kBob), AwarenessLevel::kFull);
  m.place(kBob, {8, 0});
  EXPECT_EQ(m.level(kAlice, kBob), AwarenessLevel::kPeripheral);
  m.place(kBob, {50, 0});
  EXPECT_EQ(m.level(kAlice, kBob), AwarenessLevel::kNone);
}

TEST(Spatial, RemoveErasesParticipant) {
  SpatialModel m;
  m.place(kAlice, {0, 0});
  m.remove(kAlice);
  EXPECT_FALSE(m.position(kAlice).has_value());
  EXPECT_EQ(m.participant_count(), 0u);
}

// ------------------------------------------------------------ engine

struct Received {
  ActivityEvent event;
  double weight;
  bool via_digest;
};

class EngineTest : public ::testing::Test {
 protected:
  EngineTest() : engine(sim, space, {.full_threshold = 0.4,
                                     .digest_period = sim::sec(5),
                                     .interest_decay = sim::sec(60)}) {
    space.place(kAlice, {0, 0});
    space.place(kBob, {1, 0});
    space.place(kCarol, {9, 0});
    for (ClientId c : {kAlice, kBob, kCarol}) {
      space.set_focus(c, 10);
      space.set_nimbus(c, 10);
    }
    for (ClientId c : {kAlice, kBob, kCarol}) {
      engine.subscribe(c, [this, c](const ActivityEvent& e, double w,
                                    bool digest) {
        received[c].push_back({e, w, digest});
      });
    }
  }

  ActivityEvent edit(ClientId actor, const std::string& object) {
    return {actor, object, "edit", sim.now()};
  }

  sim::Simulator sim;
  SpatialModel space;
  AwarenessEngine engine;
  std::map<ClientId, std::vector<Received>> received;
};

TEST_F(EngineTest, NearbyObserverGetsImmediateDelivery) {
  engine.publish(edit(kAlice, "doc/sec1"));
  ASSERT_EQ(received[kBob].size(), 1u);  // close: immediate
  EXPECT_FALSE(received[kBob][0].via_digest);
  EXPECT_GE(received[kBob][0].weight, 0.4);
  EXPECT_TRUE(received[kCarol].empty());  // far: waits for digest
  EXPECT_EQ(engine.stats().immediate, 1u);
}

TEST_F(EngineTest, ActorDoesNotHearOwnActions) {
  engine.publish(edit(kAlice, "doc"));
  EXPECT_TRUE(received[kAlice].empty());
}

TEST_F(EngineTest, PeripheralObserverGetsDigest) {
  engine.publish(edit(kAlice, "doc/sec1"));
  EXPECT_TRUE(received[kCarol].empty());
  sim.run_until(sim::sec(6));  // digest flush at 5s
  ASSERT_EQ(received[kCarol].size(), 1u);
  EXPECT_TRUE(received[kCarol][0].via_digest);
  EXPECT_LT(received[kCarol][0].weight, 0.4);
  EXPECT_EQ(engine.stats().digested, 1u);
}

TEST_F(EngineTest, DigestCoalescesPerObject) {
  for (int i = 0; i < 10; ++i) engine.publish(edit(kAlice, "doc/sec1"));
  engine.publish(edit(kAlice, "doc/sec2"));
  sim.run_until(sim::sec(6));
  // Carol sees one entry per object, not eleven events.
  ASSERT_EQ(received[kCarol].size(), 2u);
  EXPECT_EQ(engine.stats().coalesced, 9u);
}

TEST_F(EngineTest, OutOfRangeObserverIsSuppressed) {
  space.place(kCarol, {1000, 1000});
  engine.publish(edit(kAlice, "doc"));
  sim.run_until(sim::sec(20));
  EXPECT_TRUE(received[kCarol].empty());
  EXPECT_GE(engine.stats().suppressed, 1u);
}

TEST_F(EngineTest, TemporalInterestOverridesDistance) {
  // Carol is out of spatial range but recently edited the same section:
  // the temporal metric must lift her weight to immediate delivery.
  space.place(kCarol, {1000, 1000});
  engine.mark_interest(kCarol, "doc/sec1");
  engine.publish(edit(kAlice, "doc/sec1"));
  ASSERT_EQ(received[kCarol].size(), 1u);
  EXPECT_FALSE(received[kCarol][0].via_digest);
  EXPECT_GE(received[kCarol][0].weight, 0.9);
}

TEST_F(EngineTest, InterestDecaysOverTime) {
  space.place(kCarol, {1000, 1000});
  engine.mark_interest(kCarol, "doc/sec1");
  sim.run_until(sim::minutes(10));  // 10 tau: interest ~ e^-10
  engine.publish(edit(kAlice, "doc/sec1"));
  sim.run_until(sim::minutes(10) + sim::sec(6));
  // Weight decayed below any delivery threshold worth acting on; event
  // arrives (if at all) via digest with near-zero weight.
  for (const Received& r : received[kCarol]) {
    EXPECT_TRUE(r.via_digest);
    EXPECT_LT(r.weight, 0.01);
  }
}

TEST_F(EngineTest, PublishingRefreshesActorInterest) {
  // Alice edits a section, then moves far away; Bob's later edit of the
  // same section still reaches her thanks to her own recent activity.
  engine.publish(edit(kAlice, "doc/sec1"));
  space.place(kAlice, {500, 500});
  engine.publish(edit(kBob, "doc/sec1"));
  ASSERT_FALSE(received[kAlice].empty());
  EXPECT_FALSE(received[kAlice][0].via_digest);
}

TEST_F(EngineTest, NotificationTimeRecordsDigestDelay) {
  engine.publish(edit(kAlice, "doc/sec1"));  // Carol: digest path
  sim.run_until(sim::sec(6));
  // One immediate (Bob, ~0) and one digested (Carol, ~5s).
  EXPECT_EQ(engine.stats().notification_time.count(), 2u);
  EXPECT_GE(engine.stats().notification_time.max(),
            static_cast<double>(sim::sec(4)));
}

TEST_F(EngineTest, UnsubscribeStopsDelivery) {
  engine.unsubscribe(kBob);
  engine.publish(edit(kAlice, "doc"));
  sim.run_until(sim::sec(10));
  EXPECT_TRUE(received[kBob].empty());
}

TEST_F(EngineTest, WeightIsCombinedSpatialTemporal) {
  const double spatial_only = engine.weight(kBob, kAlice, "nothing");
  engine.mark_interest(kBob, "doc");
  const double combined = engine.weight(kBob, kAlice, "doc");
  EXPECT_GT(combined, spatial_only);
  EXPECT_LE(combined, 1.0);
}

}  // namespace
}  // namespace coop::awareness
