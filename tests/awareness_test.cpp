// Tests for the spatial model (focus/nimbus), the uniform-grid index, and
// the awareness engine (weighted immediate/digest/suppressed delivery,
// reentrancy contract, interest GC, and index-vs-brute-force parity).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "awareness/engine.hpp"
#include "awareness/spatial.hpp"
#include "awareness/spatial_index.hpp"
#include "obs/obs.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"

namespace coop::awareness {
namespace {

constexpr ClientId kAlice = 1;
constexpr ClientId kBob = 2;
constexpr ClientId kCarol = 3;

TEST(Spatial, SelfAwarenessIsFull) {
  SpatialModel m;
  m.place(kAlice, {0, 0});
  EXPECT_DOUBLE_EQ(m.awareness(kAlice, kAlice), 1.0);
}

TEST(Spatial, UnknownParticipantsHaveZeroAwareness) {
  SpatialModel m;
  m.place(kAlice, {0, 0});
  EXPECT_DOUBLE_EQ(m.awareness(kAlice, kBob), 0.0);
  EXPECT_DOUBLE_EQ(m.awareness(kBob, kAlice), 0.0);
}

TEST(Spatial, AwarenessFallsOffWithDistance) {
  SpatialModel m;
  m.place(kAlice, {0, 0});
  m.place(kBob, {2, 0});
  m.place(kCarol, {8, 0});
  m.set_focus(kAlice, 10);
  m.set_nimbus(kBob, 10);
  m.set_nimbus(kCarol, 10);
  EXPECT_GT(m.awareness(kAlice, kBob), m.awareness(kAlice, kCarol));
  EXPECT_GT(m.awareness(kAlice, kCarol), 0.0);
}

TEST(Spatial, OutOfRangeIsZero) {
  SpatialModel m;
  m.place(kAlice, {0, 0});
  m.place(kBob, {100, 0});
  m.set_focus(kAlice, 10);
  m.set_nimbus(kBob, 10);
  EXPECT_DOUBLE_EQ(m.awareness(kAlice, kBob), 0.0);
}

TEST(Spatial, NimbusControlsHowObservableOneIs) {
  // Bob projects widely, Carol keeps to herself: at the same distance,
  // Alice is aware of Bob but not of Carol — the asymmetry the
  // focus/nimbus model exists to express.
  SpatialModel m;
  m.place(kAlice, {0, 0});
  m.place(kBob, {5, 0});
  m.place(kCarol, {-5, 0});
  m.set_focus(kAlice, 20);
  m.set_nimbus(kBob, 20);
  m.set_nimbus(kCarol, 1);
  EXPECT_GT(m.awareness(kAlice, kBob), 0.0);
  EXPECT_DOUBLE_EQ(m.awareness(kAlice, kCarol), 0.0);
}

TEST(Spatial, AwarenessIsAsymmetric) {
  SpatialModel m;
  m.place(kAlice, {0, 0});
  m.place(kBob, {5, 0});
  m.set_focus(kAlice, 100);  // Alice attends widely
  m.set_focus(kBob, 1);      // Bob attends narrowly
  m.set_nimbus(kAlice, 100);
  m.set_nimbus(kBob, 100);
  EXPECT_GT(m.awareness(kAlice, kBob), m.awareness(kBob, kAlice));
}

TEST(Spatial, LevelsQuantizeCorrectly) {
  SpatialModel m;
  m.place(kAlice, {0, 0});
  m.place(kBob, {1, 0});
  m.set_focus(kAlice, 10);
  m.set_nimbus(kBob, 10);
  EXPECT_EQ(m.level(kAlice, kBob), AwarenessLevel::kFull);
  m.place(kBob, {8, 0});
  EXPECT_EQ(m.level(kAlice, kBob), AwarenessLevel::kPeripheral);
  m.place(kBob, {50, 0});
  EXPECT_EQ(m.level(kAlice, kBob), AwarenessLevel::kNone);
}

TEST(Spatial, RemoveErasesParticipant) {
  SpatialModel m;
  m.place(kAlice, {0, 0});
  m.remove(kAlice);
  EXPECT_FALSE(m.position(kAlice).has_value());
  EXPECT_EQ(m.participant_count(), 0u);
  EXPECT_EQ(m.grid().size(), 0u);
}

// ------------------------------------------------------- spatial index

TEST(SpatialIndex, QueryMatchesLinearScan) {
  // The grid must be exact under a seeded churn of inserts, moves,
  // removals and cell-size rebuilds: every query equals the brute-force
  // distance filter.
  sim::Rng rng(7);
  UniformGridIndex grid(8.0);
  std::map<ClientId, Point> truth;
  for (int step = 0; step < 600; ++step) {
    const auto id = static_cast<ClientId>(rng.uniform_int(1, 60));
    const double roll = rng.uniform();
    if (roll < 0.70 || truth.find(id) == truth.end()) {
      const Point p{rng.uniform(-150, 150), rng.uniform(-150, 150)};
      grid.upsert(id, p);
      truth[id] = p;
    } else if (roll < 0.85) {
      grid.erase(id);
      truth.erase(id);
    } else {
      grid.set_cell_size(rng.uniform(2.0, 40.0));
    }
    const Point centre{rng.uniform(-150, 150), rng.uniform(-150, 150)};
    const double radius = rng.uniform(0.0, 60.0);
    std::vector<ClientId> got;
    grid.query(centre, radius, /*exclude=*/id, got);
    std::sort(got.begin(), got.end());
    std::vector<ClientId> want;
    for (const auto& [other, p] : truth) {
      if (other == id) continue;
      if (distance(p, centre) <= radius) want.push_back(other);
    }
    ASSERT_EQ(got, want) << "step " << step;
  }
}

TEST(SpatialIndex, CandidatesCoverEveryNonZeroSpatialWeight) {
  sim::Rng rng(11);
  SpatialModel m;
  for (ClientId id = 1; id <= 50; ++id) {
    m.place(id, {rng.uniform(0, 300), rng.uniform(0, 300)});
    m.set_focus(id, rng.uniform(5, 30));
    m.set_nimbus(id, rng.uniform(5, 30));
  }
  for (ClientId actor = 1; actor <= 50; ++actor) {
    std::vector<ClientId> cand;
    m.spatial_candidates(actor, cand);
    EXPECT_TRUE(std::is_sorted(cand.begin(), cand.end()));
    for (ClientId obs = 1; obs <= 50; ++obs) {
      if (obs == actor) continue;
      if (m.awareness(obs, actor) > 0.0) {
        EXPECT_TRUE(std::binary_search(cand.begin(), cand.end(), obs))
            << "observer " << obs << " of actor " << actor
            << " missing from candidate set";
      }
    }
  }
}

TEST(SpatialIndex, CellSizeGrowsWithLargestAura) {
  SpatialModel m;
  m.place(kAlice, {0, 0});
  const double before = m.grid().cell_size();
  m.set_nimbus(kAlice, 500.0);
  EXPECT_GE(m.grid().cell_size(), 500.0);
  EXPECT_GT(m.grid().cell_size(), before);
  // Everyone inside that huge nimbus is still found after the rebuild.
  m.place(kBob, {400, 0});
  std::vector<ClientId> cand;
  m.spatial_candidates(kAlice, cand);
  EXPECT_EQ(cand, std::vector<ClientId>{kBob});
}

// ------------------------------------------------------------ engine

struct Received {
  ActivityEvent event;
  double weight;
  bool via_digest;
};

class EngineTest : public ::testing::Test {
 protected:
  EngineTest() : engine(sim, space, {.full_threshold = 0.4,
                                     .digest_period = sim::sec(5),
                                     .interest_decay = sim::sec(60)}) {
    space.place(kAlice, {0, 0});
    space.place(kBob, {1, 0});
    space.place(kCarol, {9, 0});
    for (ClientId c : {kAlice, kBob, kCarol}) {
      space.set_focus(c, 10);
      space.set_nimbus(c, 10);
    }
    for (ClientId c : {kAlice, kBob, kCarol}) {
      engine.subscribe(c, [this, c](const ActivityEvent& e, double w,
                                    bool digest) {
        received[c].push_back({e, w, digest});
      });
    }
  }

  ActivityEvent edit(ClientId actor, const std::string& object) {
    return {actor, object, "edit", sim.now()};
  }

  sim::Simulator sim;
  SpatialModel space;
  AwarenessEngine engine;
  std::map<ClientId, std::vector<Received>> received;
};

TEST_F(EngineTest, NearbyObserverGetsImmediateDelivery) {
  engine.publish(edit(kAlice, "doc/sec1"));
  ASSERT_EQ(received[kBob].size(), 1u);  // close: immediate
  EXPECT_FALSE(received[kBob][0].via_digest);
  EXPECT_GE(received[kBob][0].weight, 0.4);
  EXPECT_TRUE(received[kCarol].empty());  // far: waits for digest
  EXPECT_EQ(engine.stats().immediate, 1u);
}

TEST_F(EngineTest, ActorDoesNotHearOwnActions) {
  engine.publish(edit(kAlice, "doc"));
  EXPECT_TRUE(received[kAlice].empty());
}

TEST_F(EngineTest, PeripheralObserverGetsDigest) {
  engine.publish(edit(kAlice, "doc/sec1"));
  EXPECT_TRUE(received[kCarol].empty());
  sim.run_until(sim::sec(6));  // digest flush at 5s
  ASSERT_EQ(received[kCarol].size(), 1u);
  EXPECT_TRUE(received[kCarol][0].via_digest);
  EXPECT_LT(received[kCarol][0].weight, 0.4);
  EXPECT_EQ(engine.stats().digested, 1u);
}

TEST_F(EngineTest, DigestCoalescesPerObject) {
  for (int i = 0; i < 10; ++i) engine.publish(edit(kAlice, "doc/sec1"));
  engine.publish(edit(kAlice, "doc/sec2"));
  sim.run_until(sim::sec(6));
  // Carol sees one entry per object, not eleven events.
  ASSERT_EQ(received[kCarol].size(), 2u);
  EXPECT_EQ(engine.stats().coalesced, 9u);
}

TEST_F(EngineTest, OutOfRangeObserverIsSuppressed) {
  space.place(kCarol, {1000, 1000});
  engine.publish(edit(kAlice, "doc"));
  sim.run_until(sim::sec(20));
  EXPECT_TRUE(received[kCarol].empty());
  EXPECT_GE(engine.stats().suppressed, 1u);
}

TEST_F(EngineTest, TemporalInterestOverridesDistance) {
  // Carol is out of spatial range but recently edited the same section:
  // the temporal metric must lift her weight to immediate delivery.
  space.place(kCarol, {1000, 1000});
  engine.mark_interest(kCarol, "doc/sec1");
  engine.publish(edit(kAlice, "doc/sec1"));
  ASSERT_EQ(received[kCarol].size(), 1u);
  EXPECT_FALSE(received[kCarol][0].via_digest);
  EXPECT_GE(received[kCarol][0].weight, 0.9);
}

TEST_F(EngineTest, InterestDecaysOverTime) {
  space.place(kCarol, {1000, 1000});
  engine.mark_interest(kCarol, "doc/sec1");
  sim.run_until(sim::minutes(10));  // 10 tau: interest ~ e^-10
  engine.publish(edit(kAlice, "doc/sec1"));
  sim.run_until(sim::minutes(10) + sim::sec(6));
  // Weight decayed below any delivery threshold worth acting on; event
  // arrives (if at all) via digest with near-zero weight.
  for (const Received& r : received[kCarol]) {
    EXPECT_TRUE(r.via_digest);
    EXPECT_LT(r.weight, 0.01);
  }
}

TEST_F(EngineTest, PublishingRefreshesActorInterest) {
  // Alice edits a section, then moves far away; Bob's later edit of the
  // same section still reaches her thanks to her own recent activity.
  engine.publish(edit(kAlice, "doc/sec1"));
  space.place(kAlice, {500, 500});
  engine.publish(edit(kBob, "doc/sec1"));
  ASSERT_FALSE(received[kAlice].empty());
  EXPECT_FALSE(received[kAlice][0].via_digest);
}

TEST_F(EngineTest, NotificationTimeRecordsDigestDelay) {
  engine.publish(edit(kAlice, "doc/sec1"));  // Carol: digest path
  sim.run_until(sim::sec(6));
  // One immediate (Bob, ~0) and one digested (Carol, ~5s).
  EXPECT_EQ(engine.stats().notification_time.count(), 2u);
  EXPECT_GE(engine.stats().notification_time.max(),
            static_cast<double>(sim::sec(4)));
}

TEST_F(EngineTest, UnsubscribeStopsDelivery) {
  engine.unsubscribe(kBob);
  engine.publish(edit(kAlice, "doc"));
  sim.run_until(sim::sec(10));
  EXPECT_TRUE(received[kBob].empty());
}

TEST_F(EngineTest, WeightIsCombinedSpatialTemporal) {
  const double spatial_only = engine.weight(kBob, kAlice, "nothing");
  engine.mark_interest(kBob, "doc");
  const double combined = engine.weight(kBob, kAlice, "doc");
  EXPECT_GT(combined, spatial_only);
  EXPECT_LE(combined, 1.0);
}

// ------------------------------------------------- reentrancy contract
//
// Parameterised over use_index so the deferred-mutation machinery *and*
// the suppressed-counter arithmetic are exercised on both publish paths
// (the indexed path once underflowed `eligible - handled` when a
// delivered observer unsubscribed in the same dispatch, which delivery
// counts alone never caught).

class ReentrancyTest : public ::testing::TestWithParam<bool> {
 protected:
  ReentrancyTest()
      : engine(sim, space, {.full_threshold = 0.4,
                            .digest_period = sim::sec(5),
                            .interest_decay = sim::sec(60),
                            .use_index = GetParam()}) {
    space.place(kAlice, {0, 0});
    space.place(kBob, {1, 0});
    space.place(kCarol, {9, 0});
    for (ClientId c : {kAlice, kBob, kCarol}) {
      space.set_focus(c, 10);
      space.set_nimbus(c, 10);
    }
    for (ClientId c : {kAlice, kBob, kCarol}) {
      engine.subscribe(c, [this, c](const ActivityEvent& e, double w,
                                    bool digest) {
        received[c].push_back({e, w, digest});
      });
    }
  }

  ActivityEvent edit(ClientId actor, const std::string& object) {
    return {actor, object, "edit", sim.now()};
  }

  sim::Simulator sim;
  SpatialModel space;
  AwarenessEngine engine;
  std::map<ClientId, std::vector<Received>> received;
};

INSTANTIATE_TEST_SUITE_P(BothPublishPaths, ReentrancyTest,
                         ::testing::Values(true, false),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "Indexed" : "BruteForce";
                         });

TEST_P(ReentrancyTest, SelfUnsubscribeInsideDeliveryIsSafe) {
  int bob_heard = 0;
  engine.subscribe(kBob, [&](const ActivityEvent&, double, bool) {
    ++bob_heard;
    engine.unsubscribe(kBob);  // reentrant: must not invalidate the walk
  });
  engine.publish(edit(kAlice, "doc"));
  engine.publish(edit(kAlice, "doc"));
  EXPECT_EQ(bob_heard, 1);
  // Bob was delivered to before unsubscribing, so he must not be counted
  // suppressed; Carol (digest band) is handled both times.  Nothing in
  // either publish weighs zero.
  EXPECT_EQ(engine.stats().immediate, 1u);
  EXPECT_EQ(engine.stats().suppressed, 0u);
  EXPECT_EQ(engine.stats().digests_dropped, 0u);
}

TEST_P(ReentrancyTest, SelfUnsubscribeCountsUnrelatedSuppressionExactly) {
  // Dave sits far outside every aura with no interest: each publish must
  // suppress exactly him — no more (Bob's mid-dispatch unsubscribe must
  // not be double-subtracted) and no fewer.
  constexpr ClientId kDave = 4;
  space.place(kDave, {1000, 1000});
  space.set_focus(kDave, 10);
  space.set_nimbus(kDave, 10);
  engine.subscribe(kDave, [&](const ActivityEvent& e, double w, bool d) {
    received[kDave].push_back({e, w, d});
  });
  engine.subscribe(kBob, [&](const ActivityEvent&, double, bool) {
    engine.unsubscribe(kBob);
  });
  engine.publish(edit(kAlice, "doc"));
  engine.publish(edit(kAlice, "doc"));
  EXPECT_TRUE(received[kDave].empty());
  EXPECT_EQ(engine.stats().immediate, 1u);   // Bob, first publish only
  EXPECT_EQ(engine.stats().suppressed, 2u);  // Dave, once per publish
  EXPECT_EQ(engine.stats().digests_dropped, 0u);
}

TEST_P(ReentrancyTest, UnsubscribingAnotherObserverMidDispatchSquelchesThem) {
  // Bob (lower id) is visited first and pulls Carol's subscription; Carol
  // must not hear the in-flight event, even via the digest she'd have
  // been queued for.
  space.place(kCarol, {2, 0});  // close enough for immediate delivery
  engine.subscribe(kBob, [&](const ActivityEvent&, double, bool) {
    engine.unsubscribe(kCarol);
  });
  engine.publish(edit(kAlice, "doc"));
  sim.run_until(sim::sec(10));
  EXPECT_TRUE(received[kCarol].empty());
  // Carol died before her visit: skipped with no stat, exactly as the
  // brute-force walk skips a dead observer.
  EXPECT_EQ(engine.stats().immediate, 1u);  // Bob only
  EXPECT_EQ(engine.stats().suppressed, 0u);
  EXPECT_EQ(engine.stats().digests_dropped, 0u);
}

TEST_P(ReentrancyTest, SubscribeDuringDispatchTakesEffectAfterwards) {
  constexpr ClientId kDave = 4;
  space.place(kDave, {1, 1});
  space.set_focus(kDave, 10);
  space.set_nimbus(kDave, 10);
  engine.subscribe(kBob, [&](const ActivityEvent& e, double w, bool d) {
    received[kBob].push_back({e, w, d});
    engine.subscribe(kDave, [&](const ActivityEvent& e2, double w2, bool d2) {
      received[kDave].push_back({e2, w2, d2});
    });
  });
  engine.publish(edit(kAlice, "doc"));
  EXPECT_TRUE(received[kDave].empty());  // not part of the running dispatch
  engine.publish(edit(kAlice, "doc"));
  EXPECT_EQ(received[kDave].size(), 1u);
}

TEST_P(ReentrancyTest, SubscribeWithEmptyCallbackDuringDispatchRegisters) {
  // Re-subscribing Carol with an empty callback mid-dispatch must mean
  // what it means outside a dispatch — register her with no deliverer —
  // not be mistaken for an unsubscribe tombstone that drops her digests.
  engine.subscribe(kBob, [&](const ActivityEvent&, double, bool) {
    engine.subscribe(kCarol, AwarenessEngine::DeliverFn{});
  });
  engine.publish(edit(kAlice, "doc"));  // Carol (digest band) queues one
  sim.run_until(sim::sec(6));
  EXPECT_EQ(engine.stats().digests_dropped, 0u);
  EXPECT_EQ(engine.stats().digested, 1u);  // counted, callback-less
  EXPECT_TRUE(received[kCarol].empty());
}

TEST_P(ReentrancyTest, MidFlushUnsubscribeDropsRemainingDigestsAndCounts) {
  // Bob and Carol both hold two-object digests; Bob's first digest
  // delivery unsubscribes Carol, so her entries are dropped, not
  // delivered to a dead callback.
  space.place(kBob, {7.5, 0});  // weight 0.0625: digest band
  engine.subscribe(kBob, [&](const ActivityEvent& e, double w, bool d) {
    received[kBob].push_back({e, w, d});
    engine.unsubscribe(kCarol);
  });
  engine.publish(edit(kAlice, "doc/a"));
  engine.publish(edit(kAlice, "doc/b"));
  sim.run_until(sim::sec(6));
  EXPECT_EQ(received[kBob].size(), 2u);
  EXPECT_TRUE(received[kCarol].empty());
  EXPECT_EQ(engine.stats().digests_dropped, 2u);
  EXPECT_EQ(engine.stats().digested, 2u);  // Bob's only
  EXPECT_EQ(engine.stats().suppressed, 0u);
}

// ------------------------------------------------- interest GC + revival

class GcEngineTest : public ::testing::Test {
 protected:
  GcEngineTest()
      : engine(sim, space,
               {.full_threshold = 0.4,
                .digest_period = sim::sec(5),
                .interest_decay = sim::sec(10),
                .interest_gc_factor = 10.0}) {
    space.place(kAlice, {0, 0});
    space.set_focus(kAlice, 10);
    space.set_nimbus(kAlice, 10);
    space.place(kCarol, {1000, 1000});  // never in spatial range
    space.set_focus(kCarol, 10);
    space.set_nimbus(kCarol, 10);
    engine.subscribe(kCarol, [this](const ActivityEvent& e, double w,
                                    bool d) {
      carol.push_back({e, w, d});
    });
  }

  sim::Simulator sim;
  SpatialModel space;
  AwarenessEngine engine;
  std::vector<Received> carol;
};

TEST_F(GcEngineTest, StaleInterestEntriesAreEvictedOnTheDigestTimer) {
  engine.mark_interest(kCarol, "doc/sec1");
  EXPECT_EQ(engine.interest_table_size(), 1u);
  sim.run_until(sim::sec(120));  // horizon = 10 tau = 100 s
  EXPECT_EQ(engine.interest_table_size(), 0u);
  EXPECT_EQ(engine.stats().interest_evicted, 1u);
  // With the entry gone the event is suppressed outright, not digested.
  engine.publish({kAlice, "doc/sec1", "edit", sim.now()});
  sim.run_until(sim::sec(130));
  EXPECT_TRUE(carol.empty());
  EXPECT_GE(engine.stats().suppressed, 1u);
}

TEST_F(GcEngineTest, MarkInterestAfterEvictionRevivesDelivery) {
  engine.mark_interest(kCarol, "doc/sec1");
  sim.run_until(sim::sec(120));
  ASSERT_EQ(engine.interest_table_size(), 0u);
  engine.mark_interest(kCarol, "doc/sec1");  // re-opens the document
  engine.publish({kAlice, "doc/sec1", "edit", sim.now()});
  ASSERT_EQ(carol.size(), 1u);
  EXPECT_FALSE(carol[0].via_digest);
  EXPECT_GE(carol[0].weight, 0.9);
}

// ------------------------------------------------- digest coalescing

TEST_F(EngineTest, CoalescedDigestCarriesTheLatestEventsOwnWeight) {
  // First event lands while Alice is near-ish Carol (weight 0.36 at
  // distance 4 of her replaced position); the second after Alice moved
  // away (weight 0.04).  The digest must deliver the *second* event with
  // the second event's weight — not a hybrid of new event + old weight.
  space.place(kCarol, {4, 0});
  engine.publish({kAlice, "doc/sec1", "first", sim.now()});
  space.place(kAlice, {-4, 0});  // distance 8 from Carol: weight 0.04
  engine.publish({kAlice, "doc/sec1", "second", sim.now()});
  sim.run_until(sim::sec(6));
  ASSERT_EQ(received[kCarol].size(), 1u);
  EXPECT_EQ(received[kCarol][0].event.verb, "second");
  EXPECT_NEAR(received[kCarol][0].weight, 0.04, 1e-9);
  EXPECT_EQ(engine.stats().coalesced, 1u);
}

// ------------------------------------------------- observability wiring

TEST(EngineObs, MetricsAndTraceAreRecorded) {
  obs::Obs obs;
  sim::Simulator sim;
  SpatialModel space;
  AwarenessEngine engine(sim, space, {}, &obs);
  space.place(kAlice, {0, 0});
  space.place(kBob, {1, 0});
  engine.subscribe(kBob, [](const ActivityEvent&, double, bool) {});
  engine.publish({kAlice, "doc", "edit", sim.now()});
  const std::string& p = engine.metric_prefix();
  EXPECT_EQ(obs.metrics.value(p + "published"), 1.0);
  EXPECT_EQ(obs.metrics.value(p + "immediate"), 1.0);
  EXPECT_EQ(obs.metrics.value(p + "observers"), 1.0);
  EXPECT_EQ(obs.metrics.value(p + "interest_table_size"), 1.0);
  EXPECT_EQ(obs.metrics.value(p + "candidate_set_size"), 1.0);
  EXPECT_TRUE(obs.metrics.contains(p + "publish_cost"));
  bool saw_publish_event = false;
  for (const auto& e : obs.tracer.snapshot()) {
    if (e.category == obs::Category::kAwareness &&
        std::string(e.name) == "awareness_publish")
      saw_publish_event = true;
  }
  EXPECT_TRUE(saw_publish_event);
}

// ------------------------------------------------- index parity

namespace {

/// Records one engine's deliveries as exact, order-sensitive lines.
struct DeliveryLog {
  std::vector<std::string> lines;

  AwarenessEngine::DeliverFn tap(sim::Simulator& sim, ClientId observer) {
    return [this, &sim, observer](const ActivityEvent& e, double w, bool d) {
      char buf[160];
      std::snprintf(buf, sizeof(buf), "t=%lld obs=%llu act=%llu o=%s w=%a d=%d",
                    static_cast<long long>(sim.now()),
                    static_cast<unsigned long long>(observer),
                    static_cast<unsigned long long>(e.actor),
                    e.object.c_str(), w, d ? 1 : 0);
      lines.emplace_back(buf);
    };
  }
};

void expect_stats_equal(const EngineStats& a, const EngineStats& b) {
  EXPECT_EQ(a.published, b.published);
  EXPECT_EQ(a.immediate, b.immediate);
  EXPECT_EQ(a.digested, b.digested);
  EXPECT_EQ(a.coalesced, b.coalesced);
  EXPECT_EQ(a.suppressed, b.suppressed);
  EXPECT_EQ(a.digests_dropped, b.digests_dropped);
  EXPECT_EQ(a.interest_evicted, b.interest_evicted);
  EXPECT_EQ(a.notification_time.count(), b.notification_time.count());
}

}  // namespace

TEST(EngineParity, IndexedEngineMatchesBruteForceExactly) {
  // Same seed, same spatial churn, same publishes: the indexed engine
  // must produce the identical delivery sequence (observer, time, event,
  // weight, path) and identical stats as the brute-force walk.
  for (std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    sim::Simulator sim;
    SpatialModel space;
    EngineConfig base{.full_threshold = 0.4,
                      .digest_period = sim::sec(5),
                      .interest_decay = sim::sec(30),
                      .interest_gc_factor = 10.0};
    EngineConfig brute_cfg = base;
    brute_cfg.use_index = false;
    AwarenessEngine indexed(sim, space, base);
    AwarenessEngine brute(sim, space, brute_cfg);

    constexpr int kParticipants = 40;
    sim::Rng rng(seed);
    DeliveryLog log_indexed, log_brute;
    for (ClientId id = 1; id <= kParticipants; ++id) {
      space.place(id, {rng.uniform(0, 250), rng.uniform(0, 250)});
      space.set_focus(id, rng.uniform(5, 30));
      space.set_nimbus(id, rng.uniform(5, 30));
      indexed.subscribe(id, log_indexed.tap(sim, id));
      brute.subscribe(id, log_brute.tap(sim, id));
    }

    for (int step = 0; step < 400; ++step) {
      const auto id = static_cast<ClientId>(
          rng.uniform_int(1, kParticipants));
      const double roll = rng.uniform();
      if (roll < 0.5) {
        // Random walk: drift within the space.
        if (auto at = space.position(id)) {
          space.place(id, {at->x + rng.uniform(-15, 15),
                           at->y + rng.uniform(-15, 15)});
        }
      } else if (roll < 0.9) {
        // Edit storm: bursts against a small hot set of objects.
        const std::string object =
            "doc/" + std::to_string(rng.uniform_int(0, 12));
        const int burst = static_cast<int>(rng.uniform_int(1, 4));
        for (int b = 0; b < burst; ++b) {
          const ActivityEvent e{id, object, "edit", sim.now()};
          indexed.publish(e);
          brute.publish(e);
        }
      } else if (roll < 0.95) {
        const std::string object =
            "doc/" + std::to_string(rng.uniform_int(0, 12));
        indexed.mark_interest(id, object);
        brute.mark_interest(id, object);
      } else {
        sim.run_for(sim::sec(static_cast<sim::Duration>(
            rng.uniform_int(1, 7))));
      }
    }
    sim.run_for(sim::sec(10));  // final digest flushes

    EXPECT_EQ(log_indexed.lines, log_brute.lines) << "seed " << seed;
    expect_stats_equal(indexed.stats(), brute.stats());
  }
}

}  // namespace
}  // namespace coop::awareness
