// Tests for classic access control (matrix/ACL/capabilities), dynamic
// fine-grained role policy, and rights negotiation.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "access/negotiation.hpp"
#include "access/rights.hpp"
#include "access/roles.hpp"
#include "sim/simulator.hpp"

namespace coop::access {
namespace {

constexpr ClientId kAlice = 1;
constexpr ClientId kBob = 2;
constexpr ClientId kCarol = 3;

// -------------------------------------------------------------- classic

TEST(Matrix, SetCheckRevoke) {
  AccessMatrix m;
  m.set(kAlice, "doc", kRead | kWrite);
  EXPECT_TRUE(m.check(kAlice, "doc", kRead));
  EXPECT_TRUE(m.check(kAlice, "doc", kWrite));
  EXPECT_FALSE(m.check(kAlice, "doc", kGrant));
  EXPECT_FALSE(m.check(kBob, "doc", kRead));
  m.revoke(kAlice, "doc", kWrite);
  EXPECT_TRUE(m.check(kAlice, "doc", kRead));
  EXPECT_FALSE(m.check(kAlice, "doc", kWrite));
  m.revoke(kAlice, "doc", kRead);
  EXPECT_EQ(m.entries(), 0u);  // empty entries are reclaimed
}

TEST(Matrix, AddAccumulates) {
  AccessMatrix m;
  m.add(kAlice, "doc", kRead);
  m.add(kAlice, "doc", kAnnotate);
  EXPECT_TRUE(m.check(kAlice, "doc", kRead));
  EXPECT_TRUE(m.check(kAlice, "doc", kAnnotate));
}

TEST(Acl, PerObjectGrantAndRevoke) {
  AccessControlList acl;
  acl.grant("doc", kAlice, kRead);
  acl.grant("doc", kBob, kRead | kWrite);
  EXPECT_TRUE(acl.check(kBob, "doc", kWrite));
  EXPECT_FALSE(acl.check(kAlice, "doc", kWrite));
  EXPECT_EQ(acl.subjects("doc").size(), 2u);
  acl.revoke("doc", kBob);
  EXPECT_FALSE(acl.check(kBob, "doc", kRead));
}

TEST(Capabilities, MintCheckRevoke) {
  CapabilityStore store;
  const auto cap = store.mint("doc", kRead | kWrite);
  EXPECT_TRUE(store.check(cap, kRead));
  EXPECT_FALSE(store.check(cap, kGrant));
  store.revoke(cap.id);
  EXPECT_FALSE(store.check(cap, kRead));
}

TEST(Capabilities, TamperedCapabilityIsRejected) {
  CapabilityStore store;
  auto cap = store.mint("doc", kRead);
  cap.rights = kRead | kWrite;  // forged amplification
  EXPECT_FALSE(store.check(cap, kWrite));
  EXPECT_FALSE(store.check(cap, kRead));  // whole token invalid
  auto cap2 = store.mint("doc", kRead);
  cap2.object = "other";  // forged retarget
  EXPECT_FALSE(store.check(cap2, kRead));
}

TEST(Capabilities, AttenuationDelegatesSubset) {
  CapabilityStore store;
  const auto cap = store.mint("doc", kRead | kWrite);
  const auto weaker = store.attenuate(cap, kRead);
  ASSERT_TRUE(weaker.has_value());
  EXPECT_TRUE(store.check(*weaker, kRead));
  EXPECT_FALSE(store.check(*weaker, kWrite));
  // Cannot attenuate to rights the parent lacks.
  EXPECT_FALSE(store.attenuate(cap, kGrant).has_value());
  // Revoking the parent does not kill the child (the classic capability
  // revocation headache the paper alludes to).
  store.revoke(cap.id);
  EXPECT_TRUE(store.check(*weaker, kRead));
}

// ----------------------------------------------------------------- roles

class RoleTest : public ::testing::Test {
 protected:
  RoleTest() {
    policy.define_role("reader");
    policy.define_role("commenter", "reader");
    policy.define_role("editor", "commenter");
    policy.grant_role("reader", "doc", kRead);
    policy.grant_role("commenter", "doc", kAnnotate);
    policy.grant_role("editor", "doc", kWrite);
  }
  RolePolicy policy;
};

TEST_F(RoleTest, InheritanceAccumulatesRights) {
  policy.assign(kAlice, "editor");
  EXPECT_TRUE(policy.check(kAlice, "doc", kRead));
  EXPECT_TRUE(policy.check(kAlice, "doc", kAnnotate));
  EXPECT_TRUE(policy.check(kAlice, "doc", kWrite));
  policy.assign(kBob, "reader");
  EXPECT_TRUE(policy.check(kBob, "doc", kRead));
  EXPECT_FALSE(policy.check(kBob, "doc", kWrite));
}

TEST_F(RoleTest, DefineRoleRejectsUnknownParent) {
  EXPECT_FALSE(policy.define_role("ghost", "no-such-role"));
  EXPECT_TRUE(policy.define_role("ok", "reader"));
}

TEST_F(RoleTest, DynamicRoleChangeMidSession) {
  policy.assign(kAlice, "reader");
  EXPECT_FALSE(policy.check(kAlice, "doc", kWrite));
  // Alice is promoted during the collaboration.
  policy.assign(kAlice, "editor");
  EXPECT_TRUE(policy.check(kAlice, "doc", kWrite));
  // And demoted again.
  policy.unassign(kAlice, "editor");
  EXPECT_FALSE(policy.check(kAlice, "doc", kWrite));
  EXPECT_TRUE(policy.check(kAlice, "doc", kRead));
}

TEST_F(RoleTest, FineGrainedRegionRights) {
  // Bob may write only the introduction (characters 0..100).
  policy.assign(kBob, "reader");
  policy.grant_client(kBob, "doc", kWrite, {0, 100});
  EXPECT_TRUE(policy.check(kBob, "doc", kWrite, 50));
  EXPECT_FALSE(policy.check(kBob, "doc", kWrite, 150));
  // Whole-object question: region-limited grant does not imply it.
  EXPECT_FALSE(policy.check(kBob, "doc", kWrite));
}

TEST_F(RoleTest, NegativeRightsOverrideAtSameSpecificity) {
  policy.assign(kAlice, "editor");
  policy.deny_role("editor", "doc", kWrite, {100, 200});
  EXPECT_TRUE(policy.check(kAlice, "doc", kWrite, 50));
  EXPECT_FALSE(policy.check(kAlice, "doc", kWrite, 150));  // frozen region
}

TEST_F(RoleTest, ClientRuleBeatsRoleRule) {
  policy.assign(kCarol, "editor");
  policy.deny_client(kCarol, "doc", kWrite);  // Carol specifically barred
  EXPECT_FALSE(policy.check(kCarol, "doc", kWrite));
  EXPECT_TRUE(policy.check(kCarol, "doc", kRead));  // reading unaffected
  // A later client-level grant on a narrower region wins over the
  // whole-object client denial.
  policy.grant_client(kCarol, "doc", kWrite, {0, 10});
  EXPECT_TRUE(policy.check(kCarol, "doc", kWrite, 5));
  EXPECT_FALSE(policy.check(kCarol, "doc", kWrite, 50));
}

TEST_F(RoleTest, DerivedRoleRuleBeatsInheritedRule) {
  // Editors are denied writing the frozen appendix even though the deny
  // is attached at "editor" and a grant exists at the same region via a
  // client rule?  No — test the role-depth rank: deny at "commenter",
  // grant at "editor" (nearer) must win for an editor.
  policy.deny_role("commenter", "doc2", kWrite);
  policy.grant_role("editor", "doc2", kWrite);
  policy.assign(kAlice, "editor");
  EXPECT_TRUE(policy.check(kAlice, "doc2", kWrite));
  policy.assign(kBob, "commenter");
  EXPECT_FALSE(policy.check(kBob, "doc2", kWrite));
}

TEST_F(RoleTest, ChangesAreVisible) {
  std::vector<std::string> changes;
  policy.on_change([&](const std::string& d) { changes.push_back(d); });
  policy.assign(kAlice, "reader");
  policy.grant_role("reader", "doc9", kRead);
  policy.unassign(kAlice, "reader");
  EXPECT_EQ(changes.size(), 3u);
  EXPECT_NE(changes[0].find("role reader"), std::string::npos);
}

TEST_F(RoleTest, ExplainListsRules) {
  const auto lines = policy.explain("doc");
  EXPECT_EQ(lines.size(), 3u);  // reader/commenter/editor grants
  policy.deny_role("editor", "doc", kWrite, {5, 9});
  const auto lines2 = policy.explain("doc");
  ASSERT_EQ(lines2.size(), 4u);
  EXPECT_NE(lines2[3].find("DENY"), std::string::npos);
  EXPECT_NE(lines2[3].find("[5,9)"), std::string::npos);
}

TEST_F(RoleTest, UnassignedClientHasNoRights) {
  EXPECT_FALSE(policy.check(kCarol, "doc", kRead));
}

// ------------------------------------------------------------ negotiation

class NegotiationTest : public ::testing::Test {
 protected:
  NegotiationTest()
      : negotiator(sim, policy,
                   {.policy = VotePolicy::kMajority,
                    .voting_window = sim::sec(30)}) {
    policy.define_role("editor");
    negotiator.set_approvers({kAlice, kBob, kCarol});
  }

  ProposedChange promote_carol() {
    return {.kind = ProposedChange::Kind::kAssignRole,
            .role = "editor",
            .client = kCarol,
            .object = {},
            .region = {},
            .rights = 0};
  }

  sim::Simulator sim;
  RolePolicy policy;
  RightsNegotiator negotiator;
};

TEST_F(NegotiationTest, MajorityApprovesAndApplies) {
  bool outcome = false;
  const auto id =
      negotiator.propose(kCarol, promote_carol(),
                         [&](bool accepted) { outcome = accepted; });
  negotiator.vote(id, kAlice, true);
  EXPECT_EQ(negotiator.open_proposals(), 1u);  // 1 of 3: not settled
  negotiator.vote(id, kBob, true);             // 2 of 3: majority
  EXPECT_TRUE(outcome);
  EXPECT_TRUE(policy.check(kCarol, "doc", kRead) == false);  // no grant yet
  EXPECT_EQ(policy.roles_of(kCarol).count("editor"), 1u);
  EXPECT_EQ(negotiator.stats().accepted, 1u);
}

TEST_F(NegotiationTest, MajorityAgainstRejects) {
  bool called = false, outcome = true;
  const auto id = negotiator.propose(kCarol, promote_carol(), [&](bool a) {
    called = true;
    outcome = a;
  });
  negotiator.vote(id, kAlice, false);
  negotiator.vote(id, kBob, false);
  EXPECT_TRUE(called);
  EXPECT_FALSE(outcome);
  EXPECT_TRUE(policy.roles_of(kCarol).empty());
}

TEST_F(NegotiationTest, DeadlineDecidesWithPartialVotes) {
  bool outcome = false;
  const auto id = negotiator.propose(kCarol, promote_carol(),
                                     [&](bool a) { outcome = a; });
  negotiator.vote(id, kAlice, true);  // 1 yes, 0 no: undecided
  sim.run_until(sim::sec(31));
  EXPECT_TRUE(outcome);  // yes > no at deadline
  EXPECT_EQ(negotiator.stats().expired, 1u);
}

TEST_F(NegotiationTest, DeadlineWithNoVotesRejects) {
  bool called = false, outcome = true;
  negotiator.propose(kCarol, promote_carol(), [&](bool a) {
    called = true;
    outcome = a;
  });
  sim.run();
  EXPECT_TRUE(called);
  EXPECT_FALSE(outcome);
}

TEST_F(NegotiationTest, NonApproverVotesIgnored) {
  bool outcome = false;
  const auto id = negotiator.propose(kCarol, promote_carol(),
                                     [&](bool a) { outcome = a; });
  negotiator.vote(id, 99, true);
  negotiator.vote(id, 98, true);
  EXPECT_EQ(negotiator.open_proposals(), 1u);
  (void)outcome;
}

TEST_F(NegotiationTest, BallotsReachAllApprovers) {
  std::vector<ClientId> balloted;
  negotiator.on_ballot([&](std::uint64_t, ClientId who,
                           const ProposedChange&) {
    balloted.push_back(who);
  });
  negotiator.propose(kCarol, promote_carol(), nullptr);
  EXPECT_EQ(balloted, (std::vector<ClientId>{kAlice, kBob, kCarol}));
}

TEST_F(NegotiationTest, UnanimousPolicyNeedsEveryone) {
  RightsNegotiator strict(sim, policy,
                          {.policy = VotePolicy::kUnanimous,
                           .voting_window = sim::sec(30)});
  strict.set_approvers({kAlice, kBob});
  bool outcome = true;
  const auto id = strict.propose(kCarol, promote_carol(),
                                 [&](bool a) { outcome = a; });
  strict.vote(id, kAlice, true);
  strict.vote(id, kBob, false);  // one veto kills it immediately
  EXPECT_FALSE(outcome);
}

TEST_F(NegotiationTest, AnyPolicyAcceptsOnFirstYes) {
  RightsNegotiator lax(sim, policy, {.policy = VotePolicy::kAny,
                                     .voting_window = sim::sec(30)});
  lax.set_approvers({kAlice, kBob, kCarol});
  bool outcome = false;
  const auto id = lax.propose(kCarol, promote_carol(),
                              [&](bool a) { outcome = a; });
  lax.vote(id, kBob, true);
  EXPECT_TRUE(outcome);
}

TEST_F(NegotiationTest, NoApproversAutoAccepts) {
  RightsNegotiator open(sim, policy, {});
  bool outcome = false;
  open.propose(kCarol, promote_carol(), [&](bool a) { outcome = a; });
  EXPECT_TRUE(outcome);
}

TEST_F(NegotiationTest, GrantProposalAppliesRegionRule) {
  bool outcome = false;
  const auto id = negotiator.propose(
      kBob,
      {.kind = ProposedChange::Kind::kGrantRole,
       .role = "editor",
       .object = "doc",
       .region = {0, 100},
       .rights = kWrite},
      [&](bool a) { outcome = a; });
  negotiator.vote(id, kAlice, true);
  negotiator.vote(id, kBob, true);
  ASSERT_TRUE(outcome);
  policy.assign(kAlice, "editor");
  EXPECT_TRUE(policy.check(kAlice, "doc", kWrite, 10));
  EXPECT_FALSE(policy.check(kAlice, "doc", kWrite, 200));
}

}  // namespace
}  // namespace coop::access
