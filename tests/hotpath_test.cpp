// Tests for the hot-message-path memory model: SmallFn inline storage,
// BlockPool recycling, shared Buf payloads, the Writer/Reader length-cap
// fixes, the Address hash spread, delivery coalescing, and the
// zero-allocation steady-state guarantee.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <new>
#include <set>
#include <string>
#include <vector>

#include "net/network.hpp"
#include "sim/simulator.hpp"
#include "sim/small_fn.hpp"
#include "util/buf.hpp"
#include "util/codec.hpp"
#include "util/pool.hpp"

// --- allocation counting hook ----------------------------------------------
//
// Replaces the global operator new/delete for this test binary with a
// counting wrapper over malloc/free.  The zero-allocation test below uses
// the counter to prove the steady-state unicast path never touches the
// heap.  Compiled out under AddressSanitizer (which must own operator new
// to poison allocations); the dependent test skips itself there.
#if defined(__SANITIZE_ADDRESS__)
#define COOP_COUNT_ALLOCS 0
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define COOP_COUNT_ALLOCS 0
#else
#define COOP_COUNT_ALLOCS 1
#endif
#else
#define COOP_COUNT_ALLOCS 1
#endif

namespace {
std::uint64_t g_alloc_count = 0;
}  // namespace

#if COOP_COUNT_ALLOCS
namespace {
void* counted_alloc(std::size_t n) {
  ++g_alloc_count;
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
}  // namespace

void* operator new(std::size_t n) { return counted_alloc(n); }
void* operator new[](std::size_t n) { return counted_alloc(n); }
void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  ++g_alloc_count;
  return std::malloc(n ? n : 1);
}
void* operator new[](std::size_t n, const std::nothrow_t&) noexcept {
  ++g_alloc_count;
  return std::malloc(n ? n : 1);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
#endif  // COOP_COUNT_ALLOCS

namespace coop {
namespace {

// --- SmallFn ---------------------------------------------------------------

TEST(SmallFnTest, EmptyIsFalsy) {
  sim::SmallFn fn;
  EXPECT_FALSE(static_cast<bool>(fn));
  sim::SmallFn null_fn(nullptr);
  EXPECT_FALSE(static_cast<bool>(null_fn));
}

TEST(SmallFnTest, CaptureAtInlineThresholdStaysInline) {
  // 48 bytes of capture: exactly kInlineBytes.
  struct Pad {
    char bytes[sim::SmallFn::kInlineBytes] = {};
  };
  static_assert(sizeof(Pad) == sim::SmallFn::kInlineBytes);
  int hits = 0;
  int* hp = &hits;
  Pad pad;
  pad.bytes[0] = 7;
  sim::SmallFn fn([pad, hp] { *hp += pad.bytes[0]; });
  // {Pad, int*} exceeds the threshold; {Pad} alone would not.  Verify the
  // exact boundary with two separate callables instead:
  sim::SmallFn at_limit([pad] { (void)pad.bytes[0]; });
  EXPECT_TRUE(at_limit.inline_stored());
  EXPECT_FALSE(fn.inline_stored());  // 48 + 8 bytes: spilled
  fn();
  EXPECT_EQ(hits, 7);
}

TEST(SmallFnTest, SmallCaptureIsInlineAndInvokes) {
  int hits = 0;
  sim::SmallFn fn([&hits] { ++hits; });
  EXPECT_TRUE(fn.inline_stored());
  fn();
  fn();
  EXPECT_EQ(hits, 2);
}

TEST(SmallFnTest, OversizedCaptureSpillsAndStillWorks) {
  struct Big {
    char bytes[96] = {};
  };
  Big big;
  big.bytes[95] = 42;
  int got = 0;
  int* gp = &got;
  sim::SmallFn fn([big, gp] { *gp = big.bytes[95]; });
  EXPECT_FALSE(fn.inline_stored());
  fn();
  EXPECT_EQ(got, 42);
}

TEST(SmallFnTest, MoveTransfersOwnership) {
  int hits = 0;
  sim::SmallFn a([&hits] { ++hits; });
  sim::SmallFn b(std::move(a));
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
  EXPECT_TRUE(static_cast<bool>(b));
  b();
  EXPECT_EQ(hits, 1);

  sim::SmallFn c;
  c = std::move(b);
  c();
  EXPECT_EQ(hits, 2);
}

TEST(SmallFnTest, ResetDestroysCapture) {
  auto token = std::make_shared<int>(5);
  std::weak_ptr<int> watch = token;
  sim::SmallFn fn([token] { (void)*token; });
  token.reset();
  EXPECT_FALSE(watch.expired());  // capture keeps it alive
  fn.reset();
  EXPECT_TRUE(watch.expired());
  EXPECT_FALSE(static_cast<bool>(fn));
}

TEST(SmallFnTest, CancelledEventNeverRunsAndReleasesItsCapture) {
  // A cancelled event must not fire, cancel() must succeed exactly once,
  // and the callable's captures must be destroyed no later than lazy
  // queue cleanup (when the dead entry is popped past).
  sim::Simulator sim;
  auto token = std::make_shared<int>(1);
  std::weak_ptr<int> watch = token;
  const sim::EventId id =
      sim.schedule_after(sim::msec(5), [token] { (void)*token; });
  token.reset();
  EXPECT_FALSE(watch.expired());
  EXPECT_TRUE(sim.cancel(id));
  EXPECT_FALSE(sim.cancel(id));  // second cancel is a clean no-op
  EXPECT_EQ(sim.pending(), 0u);
  EXPECT_EQ(sim.run(), 0u);      // the dead entry is skipped, not fired
  EXPECT_TRUE(watch.expired());  // queue drain reclaimed the capture
}

TEST(SmallFnTest, KernelRecyclesSlotsAcrossEvents) {
  // Steady-state schedule/fire cycles reuse callable slots; this is a
  // behavioural smoke test that recycling preserves per-event identity.
  sim::Simulator sim;
  std::vector<int> order;
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 4; ++i) {
      sim.schedule_after(sim::usec(round * 10 + i),
                         [&order, round, i] { order.push_back(round * 4 + i); });
    }
  }
  sim.run();
  ASSERT_EQ(order.size(), 20u);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

// --- BlockPool -------------------------------------------------------------

TEST(BlockPoolTest, RecyclesSameClassBlocks) {
  void* a = util::BlockPool::alloc(100);
  util::BlockPool::free(a, 100);
  void* b = util::BlockPool::alloc(128);  // same 128-byte class
  EXPECT_EQ(a, b);
  util::BlockPool::free(b, 128);
}

TEST(BlockPoolTest, ClassCapacityCoversRequest) {
  EXPECT_GE(util::BlockPool::class_capacity(1), std::size_t{1});
  EXPECT_GE(util::BlockPool::class_capacity(100), std::size_t{100});
  EXPECT_GE(util::BlockPool::class_capacity(65536), std::size_t{65536});
}

// --- Buf sharing -----------------------------------------------------------

TEST(BufTest, CopyShareStorageByRefcount) {
  util::Buf a("shared payload bytes");
  EXPECT_EQ(a.refs(), 1u);
  util::Buf b = a;
  util::Buf c = b;
  EXPECT_EQ(a.refs(), 3u);
  EXPECT_EQ(a.data(), b.data());  // same storage, no copy
  EXPECT_EQ(b.data(), c.data());
  c = {};
  EXPECT_EQ(a.refs(), 2u);
}

TEST(BufTest, MutateByteClonesWhenShared) {
  util::Buf a("immutable");
  util::Buf b = a;
  b.mutate_byte(0, 0xff);
  // The mutation must not leak into the sibling: b cloned first.
  EXPECT_EQ(a, "immutable");
  EXPECT_NE(b[0], 'i');
  EXPECT_NE(a.data(), b.data());
  EXPECT_EQ(a.refs(), 1u);
  EXPECT_EQ(b.refs(), 1u);
}

TEST(BufTest, MutateByteInPlaceWhenExclusive) {
  util::Buf a("x");
  const char* before = a.data();
  a.mutate_byte(0, 0x01);
  EXPECT_EQ(a.data(), before);  // sole owner: no clone
  EXPECT_EQ(a[0], 'x' ^ 0x01);
}

TEST(BufTest, MulticastFanOutSharesOnePayload) {
  // A multicast send() copies the Message per member; all copies must
  // alias one payload allocation.
  sim::Simulator sim{1};
  net::Network net{sim};
  struct Sink : net::Endpoint {
    std::vector<net::Message> got;
    void on_message(const net::Message& m) override { got.push_back(m); }
  };
  Sink sinks[3];
  for (std::uint32_t i = 0; i < 3; ++i)
    net.mcast_join(50, net::Address{i + 2, 1});
  for (std::uint32_t i = 0; i < 3; ++i)
    net.attach(net::Address{i + 2, 1}, sinks[i]);
  net.multicast(50, {.src = {1, 1}, .payload = "fan-out-payload"});
  sim.run();
  ASSERT_EQ(sinks[0].got.size(), 1u);
  ASSERT_EQ(sinks[1].got.size(), 1u);
  ASSERT_EQ(sinks[2].got.size(), 1u);
  // All three deliveries share storage (refs counts the sink-held copies).
  EXPECT_EQ(sinks[0].got[0].payload.data(), sinks[1].got[0].payload.data());
  EXPECT_EQ(sinks[1].got[0].payload.data(), sinks[2].got[0].payload.data());
  EXPECT_EQ(sinks[0].got[0].payload.refs(), 3u);
}

// --- Writer/Reader bounds --------------------------------------------------

TEST(CodecBoundsTest, WriterTakeBufIsZeroCopyAndExclusive) {
  util::Writer w;
  w.put<std::uint32_t>(7).put_string("abc");
  util::Buf b = w.take_buf();
  EXPECT_EQ(b.refs(), 1u);
  util::Reader r(b);
  EXPECT_EQ(r.get<std::uint32_t>(), 7u);
  EXPECT_EQ(r.get_string(), "abc");
  EXPECT_TRUE(r.exhausted());
}

TEST(CodecBoundsTest, OversizedStringSetsStickyFailure) {
  // A string_view longer than the 32-bit wire length cap must never be
  // written (its u32 prefix would silently truncate).  The view is
  // fabricated — length checked before any byte is dereferenced.
  const char byte = 'x';
  const std::string_view oversized(&byte,
                                   util::Writer::kMaxLength + std::size_t{7});
#ifdef NDEBUG
  util::Writer w;
  w.put<std::uint8_t>(1);
  w.put_string(oversized);
  EXPECT_TRUE(w.failed());
  w.put<std::uint32_t>(42);  // dropped: failure is sticky
  EXPECT_TRUE(w.take_buf().empty());
#else
  EXPECT_DEATH(
      {
        util::Writer w;
        w.put_string(oversized);
      },
      "exceeds the 32-bit wire cap");
#endif
}

TEST(CodecBoundsTest, OversizedVectorSetsStickyFailure) {
#ifdef NDEBUG
  // put_vector length-checks the element count, same cap as strings.
  // (Cannot materialize >4G elements; exercise via put_bytes' shared
  // check_length path with a fabricated blob is impossible for vectors,
  // so verify the cap constant wiring instead.)
  EXPECT_EQ(util::Writer::kMaxLength, 0xffffffffu);
#else
  GTEST_SKIP() << "covered by the death test above in debug builds";
#endif
}

TEST(CodecBoundsTest, ReaderGetVectorRejectsOverflowingLength) {
  // Craft a frame whose element count times sizeof(T) would overflow an
  // additive bound check: len = 2^29, T = u64 -> len*8 = 2^32.
  util::Writer w;
  w.put<std::uint32_t>(1u << 29);
  const std::string frame = w.take();
  util::Reader r(frame);
  const std::vector<std::uint64_t> v = r.get_vector<std::uint64_t>();
  EXPECT_TRUE(r.failed());
  EXPECT_TRUE(v.empty());
}

TEST(CodecBoundsTest, ReaderGetVectorAcceptsExactFit) {
  util::Writer w;
  w.put_vector(std::vector<std::uint64_t>{1, 2, 3});
  const std::string frame = w.take();
  util::Reader r(frame);
  const std::vector<std::uint64_t> v = r.get_vector<std::uint64_t>();
  EXPECT_FALSE(r.failed());
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v[2], 3u);
}

// --- Address hash spread ---------------------------------------------------

TEST(AddressHashTest, DenseIdsSpreadAcrossLowBits) {
  // Experiments allocate node ids densely from 0 with a handful of ports;
  // the hash must spread them across the low bits an unordered_map
  // actually uses.  The old (node<<16)^port kept sequential nodes in
  // sequential buckets.
  constexpr std::size_t kBuckets = 2048;
  std::set<std::size_t> hashes;
  std::set<std::size_t> buckets;
  const std::hash<net::Address> h;
  for (std::uint32_t node = 0; node < 200; ++node) {
    for (std::uint16_t port = 1; port <= 50; ++port) {
      const std::size_t v = h(net::Address{node, port});
      hashes.insert(v);
      buckets.insert(v & (kBuckets - 1));
    }
  }
  EXPECT_EQ(hashes.size(), 200u * 50u);  // no full collisions at all
  // 10000 keys into 2048 buckets: expect near-full occupancy (the old
  // hash filled well under half).
  EXPECT_GT(buckets.size(), kBuckets * 9 / 10);
}

// --- link-state bookkeeping ------------------------------------------------

TEST(LinkStateTest, PartitionDropCreatesNoLinkState) {
  sim::Simulator sim{1};
  net::Network net{sim};
  struct Sink : net::Endpoint {
    void on_message(const net::Message&) override {}
  } sink;
  net.attach({2, 1}, sink);
  net.partition({1}, {2});
  net.send({.src = {1, 1}, .dst = {2, 1}, .payload = "blocked"});
  sim.run();
  // The datagram never reached the link: no per-link counters may
  // materialize for it.
  EXPECT_EQ(net.link_state(1, 2), nullptr);
  EXPECT_EQ(net.stats().dropped_partition, 1u);
}

TEST(LinkStateTest, LossDropStillCountsOnTheLink) {
  sim::Simulator sim{1};
  net::Network net{sim};
  struct Sink : net::Endpoint {
    void on_message(const net::Message&) override {}
  } sink;
  net.attach({2, 1}, sink);
  net.set_link(1, 2, {.latency = sim::msec(1), .jitter = 0,
                      .bandwidth_bps = 0, .loss = 1.0});
  net.send({.src = {1, 1}, .dst = {2, 1}, .payload = "lost"});
  sim.run();
  const net::LinkState* ls = net.link_state(1, 2);
  ASSERT_NE(ls, nullptr);  // loss happens *on* the link
  EXPECT_EQ(ls->dropped, 1u);
}

// --- delivery coalescing ---------------------------------------------------

TEST(CoalescingTest, PreservesPerLinkOrderAndCountsBatches) {
  struct Sink : net::Endpoint {
    std::vector<std::string> got;
    void on_message(const net::Message& m) override {
      got.push_back(m.payload.str());
    }
  };
  auto run_once = [](bool coalesce, Sink& sink, std::uint64_t* coalesced) {
    sim::Simulator sim{7};
    net::Network net{sim};
    net.set_delivery_coalescing(coalesce);
    net.set_default_link({.latency = sim::msec(1), .jitter = 0,
                          .bandwidth_bps = 0, .loss = 0});
    net.attach({2, 1}, sink);
    for (int i = 0; i < 8; ++i) {
      net.send({.src = {1, 1},
                .dst = {2, 1},
                .payload = "m" + std::to_string(i)});
    }
    sim.run();
    if (coalesced != nullptr) *coalesced = net.coalesced_deliveries();
  };
  Sink plain;
  Sink batched;
  std::uint64_t coalesced = 0;
  run_once(false, plain, nullptr);
  run_once(true, batched, &coalesced);
  ASSERT_EQ(plain.got.size(), 8u);
  EXPECT_EQ(plain.got, batched.got);  // identical per-link delivery order
  EXPECT_GT(coalesced, 0u);  // same-instant datagrams shared kernel events
}

// --- zero-allocation steady state ------------------------------------------

TEST(ZeroAllocTest, SteadyStateUnicastPathDoesNotTouchTheHeap) {
#if !COOP_COUNT_ALLOCS
  GTEST_SKIP() << "allocation counting disabled under AddressSanitizer";
#else
  sim::Simulator sim{3};
  net::Network net{sim};
  struct Sink : net::Endpoint {
    std::uint64_t count = 0;
    void on_message(const net::Message&) override { ++count; }
  } sink;
  net.attach({2, 1}, sink);
  net.set_default_link({.latency = sim::msec(1), .jitter = 0,
                        .bandwidth_bps = 0, .loss = 0});
  // One payload allocated up front; every send shares it by refcount.
  const util::Buf payload("steady-state unicast datagram payload");

  // Warm-up: grow the event heap, live map, slot pools, tracer ring and
  // BlockPool freelists to steady-state capacity.  128 sends at 1 ms
  // apiece also cross a 100 ms timeseries window edge, so the window
  // archive's first chunk reservation lands here, not in the timed loop.
  for (int i = 0; i < 128; ++i) {
    net.send({.src = {1, 1}, .dst = {2, 1}, .payload = payload});
    sim.run();
  }

  const std::uint64_t before = g_alloc_count;
  for (int i = 0; i < 256; ++i) {
    net.send({.src = {1, 1}, .dst = {2, 1}, .payload = payload});
    sim.run();
  }
  const std::uint64_t allocs = g_alloc_count - before;
  EXPECT_EQ(allocs, 0u) << "steady-state unicast performed " << allocs
                        << " heap allocations across 256 deliveries";
  EXPECT_EQ(sink.count, 128u + 256u);
#endif
}

// --- determinism differential ---------------------------------------------

TEST(DeterminismTest, IdenticalSeedsProduceIdenticalDeliverySequences) {
  auto run_once = [] {
    std::uint64_t h = 1469598103934665603ULL;
    auto mix = [&h](std::uint64_t v) {
      for (int i = 0; i < 8; ++i) {
        h ^= (v >> (8 * i)) & 0xffULL;
        h *= 1099511628211ULL;
      }
    };
    sim::Simulator sim{11};
    net::Network net{sim};
    struct Sink : net::Endpoint {
      std::function<void(const net::Message&)> fn;
      void on_message(const net::Message& m) override { fn(m); }
    };
    Sink sinks[4];
    for (std::uint32_t i = 0; i < 4; ++i) {
      sinks[i].fn = [&mix, &sim](const net::Message& m) {
        mix(static_cast<std::uint64_t>(sim.now()));
        mix(m.id);
        mix(net::frame_checksum(m.payload));
      };
      net.attach({i + 1, 5}, sinks[i]);
    }
    net.set_default_link({.latency = sim::msec(2), .jitter = sim::usec(500),
                          .bandwidth_bps = 10e6, .loss = 0.05});
    for (int round = 0; round < 50; ++round) {
      sim.schedule_at(sim::usec(137) * round, [&net, round] {
        for (std::uint32_t s = 0; s < 4; ++s) {
          net.send({.src = {s + 1, 5},
                    .dst = {((s + 1) % 4) + 1, 5},
                    .payload = "round/" + std::to_string(round)});
        }
      });
    }
    sim.run();
    mix(sim.events_processed());
    return h;
  };
  const std::uint64_t first = run_once();
  const std::uint64_t second = run_once();
  EXPECT_EQ(first, second);
}

}  // namespace
}  // namespace coop
