// Tests for continuous media: sources, sinks, bindings, QoS contracts,
// monitoring, admission/re-negotiation, and real-time synchronization.
#include <gtest/gtest.h>

#include <vector>

#include "net/network.hpp"
#include "sim/simulator.hpp"
#include "streams/qos.hpp"
#include "streams/stream.hpp"
#include "streams/sync.hpp"

namespace coop::streams {
namespace {

class StreamTest : public ::testing::Test {
 protected:
  StreamTest() : sim(11), net(sim) {
    net.set_default_link({.latency = sim::msec(5), .jitter = sim::msec(1),
                          .bandwidth_bps = 10e6, .loss = 0.0});
  }
  sim::Simulator sim;
  net::Network net;
};

QosSpec video25() {
  return {.fps = 25.0,
          .frame_bytes = 4000,
          .latency_bound = sim::msec(150),
          .jitter_bound = sim::msec(30),
          .min_fps = 5.0};
}

TEST_F(StreamTest, SourceEmitsAtConfiguredRate) {
  MediaSource src(sim, 1, video25());
  int frames = 0;
  src.on_emit([&](const Frame&) { ++frames; });
  src.start();
  sim.run_until(sim::sec(2));
  EXPECT_EQ(frames, 50);  // 25 fps for 2 s
}

TEST_F(StreamTest, FrameEncodingRoundTrips) {
  const Frame f{.stream_id = 7, .seq = 42, .captured_at = sim::msec(123),
                .size = 999};
  const auto decoded = StreamBinding::decode(StreamBinding::encode(f));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->stream_id, 7u);
  EXPECT_EQ(decoded->seq, 42u);
  EXPECT_EQ(decoded->captured_at, sim::msec(123));
  EXPECT_EQ(decoded->size, 999u);
  EXPECT_FALSE(StreamBinding::decode("garbage").has_value());
}

TEST_F(StreamTest, UnicastBindingDeliversFramesWithLatency) {
  MediaSource src(sim, 1, video25());
  StreamBinding binding(net, src, {1, 1}, net::Address{2, 1});
  MediaSink sink(net, {2, 1});
  std::vector<sim::Duration> latencies;
  sink.on_frame([&](const Frame&, sim::Duration l) {
    latencies.push_back(l);
  });
  src.start();
  sim.run_until(sim::sec(1) + sim::msec(20));  // last frame still in flight at 1s
  EXPECT_EQ(sink.frames_received(), 25u);
  ASSERT_FALSE(latencies.empty());
  for (auto l : latencies) EXPECT_GE(l, sim::msec(4));
  EXPECT_EQ(binding.frames_sent(), 25u);
}

TEST_F(StreamTest, MulticastBindingReachesAllSinks) {
  MediaSource src(sim, 1, video25());
  const net::McastId group = 9;
  StreamBinding binding(net, src, {1, 1}, group);
  MediaSink sink_a(net, {2, 1});
  MediaSink sink_b(net, {3, 1});
  net.mcast_join(group, {2, 1});
  net.mcast_join(group, {3, 1});
  src.start();
  sim.run_until(sim::sec(1) + sim::msec(20));
  EXPECT_EQ(sink_a.frames_received(), 25u);
  EXPECT_EQ(sink_b.frames_received(), 25u);
}

TEST_F(StreamTest, SinkDetectsLossFromSequenceGaps) {
  net.set_default_link({.latency = sim::msec(5), .jitter = 0,
                        .bandwidth_bps = 10e6, .loss = 0.2});
  MediaSource src(sim, 1, video25());
  StreamBinding binding(net, src, {1, 1}, net::Address{2, 1});
  MediaSink sink(net, {2, 1});
  src.start();
  sim.run_until(sim::sec(4));
  EXPECT_GT(sink.frames_lost(), 0u);
  EXPECT_LT(sink.frames_received(), 100u);
}

TEST_F(StreamTest, MediaScalingChangesRate) {
  MediaSource src(sim, 1, video25());
  int frames = 0;
  src.on_emit([&](const Frame&) { ++frames; });
  src.start();
  sim.run_until(sim::sec(1));
  EXPECT_EQ(frames, 25);
  src.set_fps(10.0);
  frames = 0;
  sim.run_for(sim::sec(1));
  EXPECT_NEAR(frames, 10, 2);
  // Scaling clamps to [min_fps, contract fps].
  src.set_fps(1000.0);
  EXPECT_DOUBLE_EQ(src.fps(), 25.0);
  src.set_fps(0.1);
  EXPECT_DOUBLE_EQ(src.fps(), 5.0);
}

TEST_F(StreamTest, MonitorReportsHealthyOnGoodPath) {
  MediaSource src(sim, 1, video25());
  StreamBinding binding(net, src, {1, 1}, net::Address{2, 1});
  MediaSink sink(net, {2, 1});
  QosMonitor monitor(sim, sink, video25());
  std::vector<QosVerdict> verdicts;
  monitor.on_report([&](const QosReport& r, QosVerdict v) {
    verdicts.push_back(v);
    EXPECT_NEAR(r.achieved_fps, 25.0, 3.0);
  });
  src.start();
  sim.run_until(sim::sec(5));
  ASSERT_GE(verdicts.size(), 4u);
  for (std::size_t i = 1; i < verdicts.size(); ++i)
    EXPECT_EQ(verdicts[i], QosVerdict::kHealthy);
  EXPECT_EQ(monitor.violations(), 0u);
}

TEST_F(StreamTest, MonitorFlagsDegradationUnderCongestion) {
  // A 500 kbps link cannot carry 25 fps x 4000 B (= 800 kbps).
  net.set_link(1, 2, {.latency = sim::msec(5), .jitter = 0,
                      .bandwidth_bps = 500e3, .loss = 0.0});
  MediaSource src(sim, 1, video25());
  StreamBinding binding(net, src, {1, 1}, net::Address{2, 1});
  MediaSink sink(net, {2, 1});
  QosMonitor monitor(sim, sink, video25());
  src.start();
  sim.run_until(sim::sec(5));
  EXPECT_GT(monitor.violations(), 0u);
}

TEST_F(StreamTest, AdmissionControlRespectsCapacity) {
  QosManager mgr(2e6);  // 2 Mbps budget
  const auto a = mgr.admit(video25());  // 800 kbps
  EXPECT_TRUE(a.admitted);
  EXPECT_DOUBLE_EQ(a.granted.fps, 25.0);
  const auto b = mgr.admit(video25());  // another 800k: fits
  EXPECT_TRUE(b.admitted);
  // Third stream: only 400 kbps left -> counter-offer at 12.5 fps.
  const auto c = mgr.admit(video25());
  EXPECT_TRUE(c.admitted);
  EXPECT_LT(c.granted.fps, 25.0);
  EXPECT_GE(c.granted.fps, 5.0);
  // Fourth: nothing meaningful left.
  const auto d = mgr.admit(video25());
  EXPECT_FALSE(d.admitted);
  // Release one and admission works again.
  mgr.release(a.granted);
  EXPECT_TRUE(mgr.admit(video25()).admitted);
}

TEST_F(StreamTest, ReactScalesDownOnDegradationAndRecovers) {
  QosManager mgr(10e6);
  const QosSpec contract = video25();
  auto down = mgr.react(contract, 25.0, QosVerdict::kDegraded);
  ASSERT_TRUE(down.has_value());
  EXPECT_LT(*down, 25.0);
  // Repeated degradation floors at min_fps.
  double fps = *down;
  for (int i = 0; i < 10; ++i) {
    auto next = mgr.react(contract, fps, QosVerdict::kDegraded);
    if (next) fps = *next;
  }
  EXPECT_DOUBLE_EQ(fps, contract.min_fps);
  // Healthy windows creep back up to the contract.
  for (int i = 0; i < 50; ++i) {
    auto next = mgr.react(contract, fps, QosVerdict::kHealthy);
    if (next) fps = *next;
  }
  EXPECT_DOUBLE_EQ(fps, 25.0);
  EXPECT_FALSE(mgr.react(contract, 25.0, QosVerdict::kHealthy).has_value());
}

TEST_F(StreamTest, ClosedLoopAdaptorStabilizesCongestedStream) {
  // End-to-end: the QosAdaptor must settle the stream near the rate a
  // 500 kbps link can carry (~15.6 fps) instead of drowning the link or
  // pinning at the floor.
  net.set_link(1, 2, {.latency = sim::msec(5), .jitter = 0,
                      .bandwidth_bps = 500e3, .loss = 0.0});
  MediaSource src(sim, 1, video25());
  StreamBinding binding(net, src, {1, 1}, net::Address{2, 1});
  MediaSink sink(net, {2, 1});
  QosMonitor monitor(sim, sink, video25());
  QosManager mgr(10e6);
  QosAdaptor adaptor(monitor, mgr, src, video25());
  src.start();
  sim.run_until(sim::sec(30));
  EXPECT_GT(adaptor.rescales(), 0u);
  // AIMD oscillates around the sustainable rate; it must neither pin at
  // the 5 fps floor nor sit at the 25 fps contract.
  EXPECT_LE(src.fps(), 18.0);
  EXPECT_GT(src.fps(), 5.0);
}

TEST_F(StreamTest, AdaptorRecoversAfterCongestionClears) {
  // Congest the path for 10 s, then restore it: the adaptor must scale
  // down during congestion and probe back to the full contract after.
  net.set_link(1, 2, {.latency = sim::msec(5), .jitter = 0,
                      .bandwidth_bps = 300e3, .loss = 0.0});
  MediaSource src(sim, 1, video25());
  StreamBinding binding(net, src, {1, 1}, net::Address{2, 1});
  MediaSink sink(net, {2, 1});
  QosMonitor monitor(sim, sink, video25());
  QosManager mgr(10e6);
  QosAdaptor adaptor(monitor, mgr, src, video25());
  src.start();
  sim.run_until(sim::sec(10));
  EXPECT_LT(src.fps(), 25.0);  // scaled down under congestion
  net.set_link(1, 2, {.latency = sim::msec(5), .jitter = 0,
                      .bandwidth_bps = 10e6, .loss = 0.0});
  sim.run_until(sim::sec(40));
  EXPECT_DOUBLE_EQ(src.fps(), 25.0);  // probed back to the contract
  EXPECT_DOUBLE_EQ(adaptor.operating_fps(), 25.0);
}

TEST_F(StreamTest, PlayoutPositionAdvancesAfterPrebuffer) {
  MediaSource src(sim, 1, video25());
  StreamBinding binding(net, src, {1, 1}, net::Address{2, 1});
  MediaSink sink(net, {2, 1}, /*prebuffer=*/sim::msec(100));
  EXPECT_EQ(sink.playout_position(), -1);
  src.start();
  sim.run_until(sim::msec(50));   // first frame arrived ~45ms
  EXPECT_EQ(sink.playout_position(), -1);  // still prebuffering
  sim.run_until(sim::sec(1));
  const auto pos = sink.playout_position();
  EXPECT_GT(pos, 0);
  EXPECT_LT(pos, sim::sec(1));
}

// --------------------------------------------------------------- sync

TEST_F(StreamTest, EventSyncFiresCuesInOrder) {
  MediaSource src(sim, 1, video25());
  StreamBinding binding(net, src, {1, 1}, net::Address{2, 1});
  MediaSink sink(net, {2, 1});
  EventSync cues(sim, sink);
  std::vector<int> fired;
  cues.at(sim::msec(100), [&](std::int64_t) { fired.push_back(1); });
  cues.at(sim::msec(300), [&](std::int64_t) { fired.push_back(3); });
  cues.at(sim::msec(200), [&](std::int64_t) { fired.push_back(2); });
  src.start();
  sim.run_until(sim::sec(1));
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(cues.pending(), 0u);
  // Firing error bounded by the poll period.
  EXPECT_LE(cues.firing_error().max(),
            static_cast<double>(sim::msec(10)) + 1);
}

TEST_F(StreamTest, ContinuousSyncBoundsLipSyncSkew) {
  // Audio over a fast link, video over a much slower one: without
  // correction their playout clocks start ~85ms apart.
  net.set_link(1, 2, {.latency = sim::msec(5), .jitter = sim::msec(1),
                      .bandwidth_bps = 10e6, .loss = 0});
  net.set_link(1, 3, {.latency = sim::msec(90), .jitter = sim::msec(5),
                      .bandwidth_bps = 10e6, .loss = 0});
  QosSpec audio{.fps = 50, .frame_bytes = 320,
                .latency_bound = sim::msec(150),
                .jitter_bound = sim::msec(30), .min_fps = 50};
  MediaSource audio_src(sim, 1, audio);
  MediaSource video_src(sim, 2, video25());
  StreamBinding ab(net, audio_src, {1, 1}, net::Address{2, 1});
  StreamBinding vb(net, video_src, {1, 2}, net::Address{3, 1});
  MediaSink audio_sink(net, {2, 1});
  MediaSink video_sink(net, {3, 1});
  ContinuousSync sync(sim, audio_sink, video_sink,
                      {.check_period = sim::msec(100),
                       .skew_bound = sim::msec(80),
                       .correction_gain = 0.5});
  sync.start();
  audio_src.start();
  video_src.start();
  sim.run_until(sim::sec(10));
  EXPECT_GT(sync.corrections(), 0u);
  // After convergence the residual skew must sit within the bound.
  const auto& skew = sync.skew();
  ASSERT_GT(skew.count(), 50u);
  const auto tail = skew.samples().back();
  EXPECT_LE(std::abs(tail), static_cast<double>(sim::msec(80)));
}

TEST_F(StreamTest, ContinuousSyncWithoutRegulatorDrifts) {
  // Control experiment: same topology, no regulator -> skew persists.
  net.set_link(1, 3, {.latency = sim::msec(90), .jitter = 0,
                      .bandwidth_bps = 10e6, .loss = 0});
  QosSpec audio{.fps = 50, .frame_bytes = 320,
                .latency_bound = sim::msec(150),
                .jitter_bound = sim::msec(30), .min_fps = 50};
  MediaSource audio_src(sim, 1, audio);
  MediaSource video_src(sim, 2, video25());
  StreamBinding ab(net, audio_src, {1, 1}, net::Address{2, 1});
  StreamBinding vb(net, video_src, {1, 2}, net::Address{3, 1});
  MediaSink audio_sink(net, {2, 1});
  MediaSink video_sink(net, {3, 1});
  audio_src.start();
  video_src.start();
  sim.run_until(sim::sec(5));
  const auto skew = audio_sink.playout_position() -
                    video_sink.playout_position();
  EXPECT_GT(skew, sim::msec(60));  // uncorrected offset remains
}

}  // namespace
}  // namespace coop::streams
