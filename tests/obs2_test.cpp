// Tests for the tier-2 observability plane: head-based trace sampling
// (determinism, mask-independence, causal completeness), ring eviction
// accounting, capacity clamping, profiler overflow policy, windowed
// timeseries edges, and the SLO watchdog.
#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <set>
#include <sstream>
#include <memory>
#include <string>
#include <string_view>
#include <tuple>
#include <vector>

#include "net/network.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "obs/profiler.hpp"
#include "obs/slo.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace.hpp"
#include "rpc/rpc.hpp"
#include "sim/simulator.hpp"
#include "util/stats.hpp"

namespace coop::obs {
namespace {

// ---------------------------------------------------------------------------
// Ring eviction accounting

TEST(Tracer, EvictionIsAccountedToTheEvictedCategory) {
  Tracer t(4);
  for (int i = 0; i < 3; ++i) t.event(i, Category::kNet, "n");
  for (int i = 0; i < 7; ++i) t.event(3 + i, Category::kRpc, "r");
  // 10 records through a 4-slot ring: the oldest 6 (3 net + 3 rpc) were
  // overwritten, and each eviction lands on the evicted record's seam.
  EXPECT_EQ(t.dropped(), 6u);
  EXPECT_EQ(t.dropped_of(Category::kNet), 3u);
  EXPECT_EQ(t.dropped_of(Category::kRpc), 3u);
  EXPECT_EQ(t.dropped_of(Category::kSim), 0u);
}

// ---------------------------------------------------------------------------
// Capacity clamping

TEST(Tracer, CapacityRequestsClampToTheDocumentedMax) {
  const std::uint64_t clamps_before = Tracer::cap_clamps();
  Tracer t(Tracer::kMaxCapacity + 1);
  EXPECT_EQ(t.capacity(), Tracer::kMaxCapacity);
  EXPECT_EQ(Tracer::cap_clamps(), clamps_before + 1);

  ::setenv("COOP_TRACE_CAP", "99999999999999", 1);
  EXPECT_EQ(Tracer::default_capacity(), Tracer::kMaxCapacity);
  EXPECT_GT(Tracer::cap_clamps(), clamps_before + 1);

  ::setenv("COOP_TRACE_CAP", "4096", 1);
  EXPECT_EQ(Tracer::default_capacity(), 4096u);
  ::unsetenv("COOP_TRACE_CAP");
  EXPECT_EQ(Tracer::default_capacity(), Tracer::kDefaultCapacity);
}

// ---------------------------------------------------------------------------
// Sampling

using RecordKey = std::tuple<sim::TimePoint, std::string, std::uint64_t>;

std::multiset<RecordKey> keys_of(const Tracer& t) {
  std::multiset<RecordKey> out;
  for (const TraceEvent& e : t.snapshot())
    out.insert({e.ts, e.name, e.ctx.trace_id});
  return out;
}

/// Feeds the same mixed causal + ctx-less stream into @p t.
void feed_stream(Tracer& t) {
  for (std::uint64_t i = 1; i <= 400; ++i) {
    const CausalContext ctx{i, i, 0};
    t.event(static_cast<sim::TimePoint>(i), Category::kRpc, "call", ctx);
    t.event(static_cast<sim::TimePoint>(i), Category::kNet, "send", ctx);
    t.event(static_cast<sim::TimePoint>(i), Category::kSim, "step");
  }
}

TEST(Sampling, SameSeedAndRateSelectTheSameRecordsAcrossRuns) {
  SampleConfig cfg;
  cfg.set_all(0.2);
  cfg.seed = 77;

  Tracer a(4096), b(4096);
  a.set_sampling(cfg);
  b.set_sampling(cfg);
  feed_stream(a);
  feed_stream(b);

  EXPECT_GT(a.size(), 0u);
  EXPECT_LT(a.size(), 1200u);
  EXPECT_EQ(keys_of(a), keys_of(b));

  // clear() re-phases the ctx-less accumulator, so a reused tracer
  // selects the same set as a fresh one.
  a.clear();
  feed_stream(a);
  EXPECT_EQ(keys_of(a), keys_of(b));
}

TEST(Sampling, SampledSetIsIndependentOfCategoryMasks) {
  SampleConfig cfg;
  cfg.set_all(0.2);
  cfg.seed = 77;

  Tracer full(4096), masked(4096);
  full.set_sampling(cfg);
  masked.set_sampling(cfg);
  masked.set_category_enabled(Category::kNet, false);
  feed_stream(full);
  feed_stream(masked);

  // Per category, the kept set must match the unmasked tracer exactly —
  // filtering net must not shift what sim or rpc keep.
  std::multiset<RecordKey> full_rest, masked_all;
  for (const TraceEvent& e : full.snapshot())
    if (e.category != Category::kNet)
      full_rest.insert({e.ts, e.name, e.ctx.trace_id});
  masked_all = keys_of(masked);
  EXPECT_EQ(full_rest, masked_all);
}

TEST(Sampling, CausalRecordsFollowWouldSampleTraceConsistently) {
  SampleConfig cfg;
  cfg.set_all(0.3);
  cfg.seed = 5;
  Tracer t(8192);
  t.set_sampling(cfg);

  // Three records per trace across two categories (same rate): each
  // trace must be kept whole or dropped whole, as predicted.
  for (std::uint64_t i = 1; i <= 300; ++i) {
    const CausalContext ctx{i, i, 0};
    t.event(1, Category::kRpc, "call", ctx);
    t.span(1, 2, Category::kRpc, "rpc", ctx);
    t.event(2, Category::kNet, "deliver", ctx);
  }
  std::map<std::uint64_t, int> per_trace;
  for (const TraceEvent& e : t.snapshot()) ++per_trace[e.ctx.trace_id];
  int kept = 0;
  for (std::uint64_t i = 1; i <= 300; ++i) {
    const bool want = t.would_sample(Category::kRpc, i);
    EXPECT_EQ(per_trace.count(i) ? per_trace[i] : 0, want ? 3 : 0)
        << "trace " << i;
    kept += want ? 1 : 0;
  }
  EXPECT_GT(kept, 0);
  EXPECT_LT(kept, 300);
}

TEST(Sampling, CtxLessStratifiedRateIsAccurate) {
  SampleConfig cfg;
  cfg.set_all(0.01);
  Tracer t(4096);
  t.set_sampling(cfg);
  for (int i = 0; i < 10000; ++i) t.event(i, Category::kSim, "step");
  // The accumulator wraps once every 1/rate attempts: 10000 attempts at
  // 1% keep 100 +/- 1 (phase rounding).
  EXPECT_NEAR(static_cast<double>(t.sampled_of(Category::kSim)), 100.0, 1.0);
  EXPECT_EQ(t.sampled_of(Category::kSim) + t.unsampled_of(Category::kSim),
            10000u);
}

TEST(Sampling, RateZeroCountsAttemptsWithoutStoring) {
  SampleConfig cfg;
  cfg.set_all(0.0);
  Tracer t(64);
  t.set_sampling(cfg);
  for (int i = 0; i < 50; ++i) t.event(i, Category::kNet, "send");
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t.unsampled_of(Category::kNet), 50u);
  EXPECT_EQ(t.sampled_of(Category::kNet), 0u);
}

TEST(Sampling, ConfigParsesGlobalAndPerCategoryForms) {
  ::setenv("COOP_TRACE_SAMPLE", "0.25", 1);
  ::setenv("COOP_TRACE_SAMPLE_SEED", "123", 1);
  SampleConfig global = SampleConfig::from_env();
  EXPECT_DOUBLE_EQ(global.rate[static_cast<std::size_t>(Category::kNet)],
                   0.25);
  EXPECT_EQ(global.seed, 123u);

  ::setenv("COOP_TRACE_SAMPLE", "*=0.1,net=0.5,bogus=9,rpc=", 1);
  SampleConfig per = SampleConfig::from_env();
  EXPECT_DOUBLE_EQ(per.rate[static_cast<std::size_t>(Category::kNet)], 0.5);
  EXPECT_DOUBLE_EQ(per.rate[static_cast<std::size_t>(Category::kRpc)], 0.1);
  EXPECT_DOUBLE_EQ(per.rate[static_cast<std::size_t>(Category::kSim)], 0.1);
  ::unsetenv("COOP_TRACE_SAMPLE");
  ::unsetenv("COOP_TRACE_SAMPLE_SEED");
}

// The acceptance property, end to end: run a real RPC workload twice with
// the same sim seed — once keeping everything, once sampled — and check
// every trace the sampler kept is causally complete (its record set is
// exactly the unsampled run's set for that trace id).
TEST(Sampling, SampledTracesAreCausallyCompleteOnAnRpcWorkload) {
  const auto run = [](double rate) {
    auto obs = std::make_unique<Obs>();
    SampleConfig cfg;
    cfg.set_all(rate);
    obs->tracer.set_sampling(cfg);
    sim::Simulator sim(42);
    net::Network net(sim, obs.get());
    rpc::RpcServer server(net, {2, 1});
    server.register_method("echo", [](const std::string& req) {
      return rpc::HandlerResult::success(req);
    });
    rpc::RpcClient client(net, {1, 1});
    for (int i = 0; i < 40; ++i) {
      sim.schedule_at(i * 1000, [&client] {
        client.call({2, 1}, "echo", "x", [](const rpc::RpcResult&) {});
      });
    }
    sim.run();
    std::map<std::uint64_t, std::multiset<RecordKey>> by_trace;
    for (const TraceEvent& e : obs->tracer.snapshot())
      if (e.ctx.valid())
        by_trace[e.ctx.trace_id].insert({e.ts, e.name, e.ctx.span_id});
    return by_trace;
  };

  const auto reference = run(1.0);
  const auto sampled = run(0.25);
  ASSERT_GT(reference.size(), 0u);
  EXPECT_GT(sampled.size(), 0u);
  EXPECT_LT(sampled.size(), reference.size());
  for (const auto& [trace_id, records] : sampled) {
    ASSERT_TRUE(reference.count(trace_id)) << "trace " << trace_id;
    EXPECT_EQ(records, reference.at(trace_id))
        << "trace " << trace_id << " is incomplete";
  }
}

// ---------------------------------------------------------------------------
// Profiler overflow policy

TEST(Profiler, SiteTableOverflowIsCountedNotGrown) {
  Profiler p;
  p.set_enabled(true);
  std::vector<std::string> names;
  names.reserve(Profiler::kMaxSites + 6);
  for (std::size_t i = 0; i < Profiler::kMaxSites + 6; ++i)
    names.push_back("site." + std::to_string(i));
  for (std::size_t i = 0; i < Profiler::kMaxSites; ++i)
    EXPECT_NE(p.site(names[i].c_str(), Category::kSim), Profiler::kInvalidSite);
  for (std::size_t i = Profiler::kMaxSites; i < names.size(); ++i)
    EXPECT_EQ(p.site(names[i].c_str(), Category::kSim), Profiler::kInvalidSite);
  EXPECT_EQ(p.site_count(), Profiler::kMaxSites);
  EXPECT_EQ(p.dropped_sites(), 6u);
  // Re-registering an existing spelling is a lookup, not a drop.
  EXPECT_EQ(p.site(names[0].c_str(), Category::kSim), 0);
  EXPECT_EQ(p.dropped_sites(), 6u);
}

TEST(Profiler, DepthOverflowSkipsFramesAndStaysBalanced) {
  Profiler p;
  p.set_enabled(true);
  const Profiler::SiteId s = p.site("deep", Category::kSim);
  const std::size_t kOver = Profiler::kMaxDepth + 4;
  for (std::size_t i = 0; i < kOver; ++i) p.enter(s);
  for (std::size_t i = 0; i < kOver; ++i) p.exit(s);
  EXPECT_EQ(p.dropped_frames(), 4u);
  // Only the frames that fit were attributed; the stack fully unwound.
  EXPECT_EQ(p.calls_of(s), Profiler::kMaxDepth);
  p.enter(s);
  p.exit(s);
  EXPECT_EQ(p.calls_of(s), Profiler::kMaxDepth + 1);
}

TEST(Profiler, PathTableOverflowIsCountedAndExportsStillWork) {
  Profiler p;
  p.set_enabled(true);
  std::vector<std::string> names;
  names.reserve(24);
  std::vector<Profiler::SiteId> ids;
  for (int i = 0; i < 24; ++i) {
    names.push_back("p" + std::to_string(i));
    ids.push_back(p.site(names.back().c_str(), Category::kSim));
  }
  // 24 roots + 24*24 two-deep paths > kMaxPaths: the table must fold the
  // excess into dropped_paths() instead of growing.
  for (Profiler::SiteId a : ids) {
    for (Profiler::SiteId b : ids) {
      p.enter(a);
      p.enter(b);
      p.exit(b);
      p.exit(a);
    }
  }
  EXPECT_GT(p.dropped_paths(), 0u);
  std::ostringstream top, folded;
  p.write_top(top);
  p.write_collapsed(folded);
  EXPECT_NE(top.str().find("sim top"), std::string::npos);
  EXPECT_NE(top.str().find("paths dropped"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Timeseries edges

TEST(Timeseries, SealsWindowsWithRateAndPercentileCells) {
  Timeseries ts;
  ts.set_window(100);
  const auto lat = ts.series("lat");
  const auto ok = ts.series("ok");
  for (int i = 0; i < 50; ++i) ts.observe(lat, 10, 5.0);
  ts.count(ok, 20, 7);
  ts.count(ok, 150, 1);  // crosses the edge: seals window 0
  ts.finish();

  ASSERT_EQ(ts.windows().size(), 2u);
  const Timeseries::Window& w0 = ts.windows()[0];
  EXPECT_EQ(w0.t0, 0);
  ASSERT_EQ(w0.n_cells, 2u);
  const Timeseries::Cell& c_lat = ts.cells(w0)[lat];
  EXPECT_EQ(c_lat.count, 50u);
  EXPECT_DOUBLE_EQ(c_lat.sum, 250.0);
  EXPECT_DOUBLE_EQ(c_lat.min, 5.0);
  EXPECT_DOUBLE_EQ(c_lat.p50, 5.0);
  EXPECT_DOUBLE_EQ(c_lat.p99, 5.0);
  EXPECT_TRUE(c_lat.has_values);
  const Timeseries::Cell& c_ok = ts.cells(w0)[ok];
  EXPECT_EQ(c_ok.count, 7u);
  EXPECT_FALSE(c_ok.has_values);

  std::ostringstream out;
  ts.export_json(out);
  EXPECT_NE(out.str().find("\"window_us\":100"), std::string::npos);
  EXPECT_NE(out.str().find("\"lat\":["), std::string::npos);
  EXPECT_NE(out.str().find("\"p99\":5"), std::string::npos);
}

TEST(Timeseries, BackwardTimestampsFoldIntoTheOpenWindow) {
  Timeseries ts;
  ts.set_window(100);
  const auto s = ts.series("s");
  ts.count(s, 250, 1);
  ts.count(s, 10, 1);  // a second Platform restarting virtual time
  ts.finish();
  ASSERT_EQ(ts.windows().size(), 1u);
  EXPECT_EQ(ts.cells(ts.windows()[0])[s].count, 2u);
}

TEST(Timeseries, LongIdleGapsSealBoundedEmptyWindows) {
  Timeseries ts;
  ts.set_window(100);
  const auto s = ts.series("s");
  ts.count(s, 10, 1);
  // Jump far past the gap-seal cap: kMaxGapSeal empties seal (the SLO
  // watchdog must see idle windows), the rest are skipped and counted.
  const sim::TimePoint far =
      static_cast<sim::TimePoint>(100 * (Timeseries::kMaxGapSeal + 500));
  ts.count(s, far, 1);
  ts.finish();
  EXPECT_EQ(ts.windows().size(), 1 + Timeseries::kMaxGapSeal + 1);
  // Of the 500-window jump, one window beyond the sealed empties opens
  // for the new point; the other 499 are skipped and counted.
  EXPECT_EQ(ts.gap_skipped(), 499u);
  EXPECT_EQ(ts.dropped_windows(), 0u);
}

TEST(Timeseries, SeriesTableOverflowIsCounted) {
  Timeseries ts;
  std::vector<std::string> names;
  names.reserve(Timeseries::kMaxSeries + 3);
  for (std::size_t i = 0; i < Timeseries::kMaxSeries + 3; ++i)
    names.push_back("s" + std::to_string(i));
  for (std::size_t i = 0; i < Timeseries::kMaxSeries; ++i)
    EXPECT_NE(ts.series(names[i].c_str()), Timeseries::kInvalidSeries);
  for (std::size_t i = Timeseries::kMaxSeries; i < names.size(); ++i)
    EXPECT_EQ(ts.series(names[i].c_str()), Timeseries::kInvalidSeries);
  EXPECT_EQ(ts.dropped_series(), 3u);
  // Feeding an invalid id is a no-op, not a crash.
  ts.count(Timeseries::kInvalidSeries, 10, 1);
  ts.finish();
  EXPECT_TRUE(ts.windows().empty());
}

TEST(Timeseries, DecimationKeepsPercentilesStableOnLargeWindows) {
  Timeseries ts;
  ts.set_window(1000000);
  const auto s = ts.series("v");
  // 10k evenly spread values in one window: far beyond kMaxSamples, so
  // stride decimation kicks in; percentiles must stay near the truth.
  for (int i = 0; i < 10000; ++i)
    ts.observe(s, 10, static_cast<double>(i % 1000));
  ts.count(s, 2000000, 1);  // seal
  const Timeseries::Cell& c = ts.cells(ts.windows()[0])[s];
  EXPECT_EQ(c.count, 10000u);
  EXPECT_NEAR(c.p50, 500.0, 60.0);
  EXPECT_NEAR(c.p99, 990.0, 60.0);
}

// ---------------------------------------------------------------------------
// SLO watchdog

TEST(Slo, TripsAndRecoversWithHysteresisEmittingTraceEvents) {
  Timeseries ts;
  ts.set_window(100);
  Tracer tr(256);
  MetricsRegistry m;
  SloWatchdog dog(ts, tr, m);
  dog.add_rule({.name = "goodput",
                .series = "ok",
                .kind = SloRule::Kind::kRateFloor,
                .threshold = 5.0,  // events/sec; 1 count / 100us = 10000/s
                .trip_windows = 2,
                .recover_windows = 1,
                .allowed_breach_windows = 1});
  const auto ok = ts.series("ok");

  ts.count(ok, 10, 1);    // w0 healthy
  ts.count(ok, 110, 1);   // w1 healthy (seals w0)
  ts.count(ok, 410, 1);   // seals w1, then empty w2 + w3 breach -> trip
  ts.finish();            // seals w4 (healthy, count 1) -> recover

  ASSERT_EQ(dog.rule_count(), 1u);
  const SloWatchdog::RuleState& s = dog.state(0);
  EXPECT_EQ(s.evaluated, 5u);
  EXPECT_EQ(s.breach_windows, 2u);
  EXPECT_EQ(s.transitions, 2u);
  EXPECT_TRUE(s.healthy);
  EXPECT_EQ(dog.transitions_total(), 2u);

  bool saw_breach = false, saw_recover = false;
  for (const TraceEvent& e : tr.snapshot()) {
    if (std::string_view(e.name) == "slo_breach") saw_breach = true;
    if (std::string_view(e.name) == "slo_recovered") saw_recover = true;
  }
  EXPECT_TRUE(saw_breach);
  EXPECT_TRUE(saw_recover);
  EXPECT_DOUBLE_EQ(m.value("slo.goodput.trips"), 1.0);
  EXPECT_DOUBLE_EQ(m.value("slo.goodput.recoveries"), 1.0);
  EXPECT_DOUBLE_EQ(m.value("slo.goodput.healthy"), 1.0);

  // 2 breach windows against a budget of 1: a strict-mode violation even
  // though the rule ended healthy.
  EXPECT_EQ(dog.violations(), 1u);
  const auto msgs = dog.violation_messages();
  ASSERT_EQ(msgs.size(), 1u);
  EXPECT_NE(msgs[0].find("'goodput'"), std::string::npos);
  EXPECT_NE(msgs[0].find("2/5 breach windows"), std::string::npos);
}

TEST(Slo, PercentileRulesSkipEmptyWindowsAndRespectActiveRange) {
  Timeseries ts;
  ts.set_window(100);
  Tracer tr(64);
  MetricsRegistry m;
  SloWatchdog dog(ts, tr, m);
  dog.add_rule({.name = "rtt",
                .series = "lat",
                .kind = SloRule::Kind::kP99Ceiling,
                .threshold = 50.0,
                .active_from = 100});  // skip the warm-up window
  const auto lat = ts.series("lat");
  const auto tick = ts.series("tick");

  ts.observe(lat, 10, 900.0);   // w0: over threshold but outside range
  ts.observe(lat, 110, 10.0);   // w1: healthy
  ts.count(tick, 210, 1);       // w2: no lat samples -> skipped
  ts.observe(lat, 310, 80.0);   // w3: breach, trips immediately
  ts.finish();

  const SloWatchdog::RuleState& s = dog.state(0);
  EXPECT_EQ(s.evaluated, 2u);  // w0 out of range, w2 skipped
  EXPECT_EQ(s.breach_windows, 1u);
  EXPECT_FALSE(s.healthy);
  // Ended unhealthy: a violation under must_end_healthy.
  EXPECT_EQ(dog.violations(), 1u);
  const auto msgs = dog.violation_messages();
  ASSERT_EQ(msgs.size(), 1u);
  EXPECT_NE(msgs[0].find("ended unhealthy"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Histogram max

TEST(Histogram, TracksExactMaxAcrossBuckets) {
  util::Histogram h(0.0, 10.0, 4);
  EXPECT_DOUBLE_EQ(h.max_seen(), 0.0);  // empty: lo
  h.add(2.5);
  h.add(7.9);
  h.add(1.0);
  EXPECT_DOUBLE_EQ(h.max_seen(), 7.9);
  h.add(25.0);  // overflow bucket still updates the exact max
  EXPECT_DOUBLE_EQ(h.max_seen(), 25.0);
}

}  // namespace
}  // namespace coop::obs
