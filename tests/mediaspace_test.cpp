// Tests for the media space (§3.3.2): doors, glances, connections,
// knocking, and Portholes snapshots; plus QoS compatibility checking.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "awareness/engine.hpp"
#include "groupware/mediaspace.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"
#include "streams/qos.hpp"

namespace coop::groupware {
namespace {

constexpr ClientId kAmy = 1;
constexpr ClientId kBen = 2;
constexpr ClientId kCho = 3;

class MediaSpaceTest : public ::testing::Test {
 protected:
  MediaSpaceTest()
      : sim(71), net(sim), space(sim, net, nullptr, config()) {
    space.add_office(kAmy, 1);
    space.add_office(kBen, 2);
    space.add_office(kCho, 3);
  }

  static MediaSpaceConfig config() {
    return {.knock_timeout = sim::sec(15),
            .snapshot_period = sim::sec(60),
            .snapshot_bytes = 6000};
  }

  sim::Simulator sim;
  net::Network net;
  MediaSpace space;
};

TEST_F(MediaSpaceTest, OpenDoorAcceptsGlance) {
  EXPECT_EQ(space.glance(kAmy, kBen), AttemptResult::kAccepted);
  EXPECT_EQ(space.stats().glances, 1u);
}

TEST_F(MediaSpaceTest, ClosedDoorRefusesEverything) {
  space.set_door(kBen, DoorState::kClosed);
  EXPECT_EQ(space.glance(kAmy, kBen), AttemptResult::kRefused);
  EXPECT_EQ(space.connect(kAmy, kBen), AttemptResult::kRefused);
  EXPECT_FALSE(space.connected(kAmy, kBen));
  EXPECT_EQ(space.stats().glances_refused, 1u);
  EXPECT_EQ(space.stats().refusals, 2u);
}

TEST_F(MediaSpaceTest, OpenDoorConnectionIsImmediate) {
  EXPECT_EQ(space.connect(kAmy, kBen), AttemptResult::kAccepted);
  EXPECT_TRUE(space.connected(kAmy, kBen));
  EXPECT_TRUE(space.connected(kBen, kAmy));  // symmetric
  EXPECT_EQ(space.connections_of(kAmy), std::vector<ClientId>{kBen});
  space.disconnect(kBen, kAmy);
  EXPECT_FALSE(space.connected(kAmy, kBen));
}

TEST_F(MediaSpaceTest, KnockingDoorRingsAndAwaitsAnswer) {
  space.set_door(kBen, DoorState::kKnock);
  std::vector<std::pair<ClientId, ClientId>> rings;
  space.on_knock([&](ClientId occupant, ClientId from) {
    rings.emplace_back(occupant, from);
  });
  EXPECT_EQ(space.connect(kAmy, kBen), AttemptResult::kAwaitingAnswer);
  ASSERT_EQ(rings.size(), 1u);
  EXPECT_EQ(rings[0], (std::pair<ClientId, ClientId>{kBen, kAmy}));
  EXPECT_FALSE(space.connected(kAmy, kBen));
  space.answer(kBen, kAmy, true);
  EXPECT_TRUE(space.connected(kAmy, kBen));
}

TEST_F(MediaSpaceTest, KnockRefusalDoesNotConnect) {
  space.set_door(kBen, DoorState::kKnock);
  space.connect(kAmy, kBen);
  space.answer(kBen, kAmy, false);
  EXPECT_FALSE(space.connected(kAmy, kBen));
  EXPECT_EQ(space.stats().refusals, 1u);
  // Answering a knock that does not exist is a no-op.
  space.answer(kBen, kCho, true);
  EXPECT_FALSE(space.connected(kBen, kCho));
}

TEST_F(MediaSpaceTest, UnansweredKnockExpires) {
  space.set_door(kBen, DoorState::kKnock);
  space.connect(kAmy, kBen);
  sim.run_until(sim::sec(20));  // past the 15 s knock timeout
  EXPECT_EQ(space.stats().knock_timeouts, 1u);
  // Answering after expiry changes nothing.
  space.answer(kBen, kAmy, true);
  EXPECT_FALSE(space.connected(kAmy, kBen));
}

TEST_F(MediaSpaceTest, GlanceThroughKnockDoorNeedsConsentToo) {
  space.set_door(kBen, DoorState::kKnock);
  EXPECT_EQ(space.glance(kAmy, kBen), AttemptResult::kAwaitingAnswer);
  space.answer(kBen, kAmy, true);
  EXPECT_EQ(space.stats().glances, 1u);
  EXPECT_FALSE(space.connected(kAmy, kBen));  // a glance is not a link
}

TEST_F(MediaSpaceTest, RemoveOfficeHangsUpAndCancelsKnocks) {
  space.connect(kAmy, kBen);
  space.set_door(kCho, DoorState::kKnock);
  space.connect(kAmy, kCho);  // pending knock at Cho
  space.remove_office(kAmy);
  EXPECT_FALSE(space.connected(kAmy, kBen));
  EXPECT_EQ(space.glance(kBen, kAmy), AttemptResult::kRefused);
  sim.run();  // cancelled knock timer must not fire
  EXPECT_EQ(space.stats().knock_timeouts, 0u);
}

TEST_F(MediaSpaceTest, PortholesDistributesSnapshotsRespectingDoors) {
  std::vector<std::pair<ClientId, ClientId>> seen;  // (viewer, office)
  space.on_snapshot([&](ClientId viewer, ClientId office, sim::TimePoint) {
    seen.emplace_back(viewer, office);
  });
  space.subscribe_portholes(kAmy);
  space.subscribe_portholes(kBen);
  space.set_door(kCho, DoorState::kClosed);  // camera covered
  space.start_portholes();
  sim.run_until(sim::sec(61));
  // One tick: Amy sees Ben's office, Ben sees Amy's; nobody sees Cho's
  // (closed), and nobody sees their own office.
  EXPECT_EQ(seen.size(), 2u);
  for (const auto& [viewer, office] : seen) {
    EXPECT_NE(viewer, office);
    EXPECT_NE(office, kCho);
  }
  EXPECT_EQ(space.stats().snapshots_delivered, 2u);
  // Snapshot bytes were charged to the network.
  EXPECT_GE(net.stats().bytes_sent, 2u * 6000u);
  space.stop_portholes();
  seen.clear();
  sim.run_until(sim::sec(200));
  EXPECT_TRUE(seen.empty());
}

TEST_F(MediaSpaceTest, ActivityFlowsIntoAwareness) {
  awareness::SpatialModel model;
  model.place(kAmy, {0, 0});
  model.place(kBen, {1, 0});
  awareness::AwarenessEngine engine(sim, model);
  int ben_heard = 0;
  engine.subscribe(kBen, [&](const awareness::ActivityEvent& e, double,
                             bool) {
    EXPECT_EQ(e.actor, kAmy);
    ++ben_heard;
  });
  MediaSpace aware_space(sim, net, &engine, config());
  aware_space.add_office(kAmy, 1);
  aware_space.add_office(kBen, 2);
  aware_space.glance(kAmy, kBen);
  aware_space.connect(kAmy, kBen);
  EXPECT_EQ(ben_heard, 2);  // the glance and the connection
}

}  // namespace
}  // namespace coop::groupware

namespace coop::streams {
namespace {

QosSpec spec(double fps, sim::Duration lat, sim::Duration jit,
             double min_fps = 5) {
  return {.fps = fps, .frame_bytes = 4000, .latency_bound = lat,
          .jitter_bound = jit, .min_fps = min_fps};
}

TEST(QosCompatibility, OfferedMustMeetEveryBound) {
  const QosSpec required = spec(25, sim::msec(200), sim::msec(40));
  EXPECT_TRUE(compatible(spec(30, sim::msec(100), sim::msec(20)), required));
  EXPECT_FALSE(compatible(spec(20, sim::msec(100), sim::msec(20)),
                          required));  // too slow
  EXPECT_FALSE(compatible(spec(30, sim::msec(300), sim::msec(20)),
                          required));  // too laggy
  EXPECT_FALSE(compatible(spec(30, sim::msec(100), sim::msec(80)),
                          required));  // too jittery
}

TEST(QosCompatibility, NegotiationMeetsInTheMiddle) {
  const QosSpec offered = spec(15, sim::msec(100), sim::msec(20));
  const QosSpec required = spec(25, sim::msec(200), sim::msec(40), 10);
  const auto agreed = negotiate(offered, required);
  ASSERT_TRUE(agreed.has_value());
  EXPECT_DOUBLE_EQ(agreed->fps, 15.0);  // the lower rate
  EXPECT_EQ(agreed->latency_bound, sim::msec(200));
}

TEST(QosCompatibility, NegotiationFailsBelowIntegrityFloor) {
  const QosSpec offered = spec(8, sim::msec(100), sim::msec(20));
  const QosSpec required = spec(25, sim::msec(200), sim::msec(40),
                                /*min_fps=*/10);
  EXPECT_FALSE(negotiate(offered, required).has_value());
}

TEST(QosCompatibility, NegotiationFailsOnUnmeetableBounds) {
  const QosSpec offered = spec(30, sim::msec(300), sim::msec(20));
  const QosSpec required = spec(25, sim::msec(200), sim::msec(40));
  EXPECT_FALSE(negotiate(offered, required).has_value());
}

}  // namespace
}  // namespace coop::streams
