// Unit tests for serialization and statistics utilities.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <string>

#include "util/codec.hpp"
#include "util/stats.hpp"

namespace coop::util {
namespace {

TEST(Codec, RoundTripsPrimitives) {
  Writer w;
  w.put<std::uint32_t>(42)
      .put<std::int64_t>(-7)
      .put<double>(3.25)
      .put<std::uint8_t>(255)
      .put<bool>(true);
  const std::string buf = w.take();
  Reader r(buf);
  EXPECT_EQ(r.get<std::uint32_t>(), 42u);
  EXPECT_EQ(r.get<std::int64_t>(), -7);
  EXPECT_DOUBLE_EQ(r.get<double>(), 3.25);
  EXPECT_EQ(r.get<std::uint8_t>(), 255);
  EXPECT_TRUE(r.get<bool>());
  EXPECT_TRUE(r.exhausted());
}

TEST(Codec, RoundTripsStringsIncludingEmptyAndBinary) {
  Writer w;
  w.put_string("hello").put_string("").put_string(std::string("\0\x01", 2));
  const std::string buf = w.take();
  Reader r(buf);
  EXPECT_EQ(r.get_string(), "hello");
  EXPECT_EQ(r.get_string(), "");
  EXPECT_EQ(r.get_string(), std::string("\0\x01", 2));
  EXPECT_TRUE(r.exhausted());
}

TEST(Codec, RoundTripsVectors) {
  Writer w;
  w.put_vector<std::uint64_t>({1, 2, 3});
  w.put_vector<double>({});
  const std::string buf = w.take();
  Reader r(buf);
  EXPECT_EQ(r.get_vector<std::uint64_t>(),
            (std::vector<std::uint64_t>{1, 2, 3}));
  EXPECT_TRUE(r.get_vector<double>().empty());
  EXPECT_FALSE(r.failed());
}

TEST(Codec, RoundTripsBytes) {
  Writer w;
  w.put_bytes({0x00, 0xff, 0x10});
  const std::string buf = w.take();
  Reader r(buf);
  EXPECT_EQ(r.get_bytes(), (std::vector<std::uint8_t>{0x00, 0xff, 0x10}));
}

TEST(Codec, UnderrunSetsStickyFailureFlag) {
  Writer w;
  w.put<std::uint16_t>(1);
  const std::string buf = w.take();
  Reader r(buf);
  EXPECT_EQ(r.get<std::uint64_t>(), 0u);  // needs 8 bytes, only 2 available
  EXPECT_TRUE(r.failed());
  EXPECT_EQ(r.get<std::uint8_t>(), 0u);  // still failed even though in range
  EXPECT_TRUE(r.failed());
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(Codec, TruncatedStringFails) {
  Writer w;
  w.put<std::uint32_t>(100);  // claims a 100-byte string follows
  const std::string buf = w.take();
  Reader r(buf);
  EXPECT_EQ(r.get_string(), "");
  EXPECT_TRUE(r.failed());
}

TEST(Codec, MaliciousVectorLengthFailsInsteadOfAllocating) {
  Writer w;
  w.put<std::uint32_t>(0xffffffff);
  const std::string buf = w.take();
  Reader r(buf);
  EXPECT_TRUE(r.get_vector<std::uint64_t>().empty());
  EXPECT_TRUE(r.failed());
}

TEST(Stats, SummaryBasicMoments) {
  Summary s;
  for (double x : {1.0, 2.0, 3.0, 4.0, 5.0}) s.add(x);
  EXPECT_EQ(s.count(), 5u);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_NEAR(s.stddev(), 1.5811, 1e-3);
}

TEST(Stats, SummaryEmptyIsSafe) {
  Summary s;
  EXPECT_TRUE(s.empty());
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.percentile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
  EXPECT_DOUBLE_EQ(s.jitter(), 0.0);
}

TEST(Stats, SummaryPercentiles) {
  Summary s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_NEAR(s.p50(), 50.0, 1.0);
  EXPECT_NEAR(s.p95(), 95.0, 1.0);
  EXPECT_NEAR(s.p99(), 99.0, 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(1.0), 100.0);
}

TEST(Stats, SummaryPercentileAfterLateAdd) {
  Summary s;
  s.add(10);
  EXPECT_DOUBLE_EQ(s.p50(), 10.0);
  s.add(1);  // invalidates the sorted cache
  EXPECT_DOUBLE_EQ(s.percentile(0.0), 1.0);
}

TEST(Stats, SummaryJitterMeasuresSuccessiveDifferences) {
  Summary s;
  for (double x : {10.0, 12.0, 10.0, 12.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.jitter(), 2.0);
  Summary flat;
  for (int i = 0; i < 5; ++i) flat.add(7.0);
  EXPECT_DOUBLE_EQ(flat.jitter(), 0.0);
}

TEST(Stats, CounterIncrementsAndResets) {
  Counter c;
  c.inc();
  c.inc(4);
  EXPECT_EQ(c.value(), 5u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Stats, HistogramQuantiles) {
  Histogram h(0.0, 100.0, 100);
  for (int i = 0; i < 100; ++i) h.add(i + 0.5);
  EXPECT_EQ(h.total(), 100u);
  EXPECT_NEAR(h.quantile(0.5), 50.0, 2.0);
  EXPECT_NEAR(h.quantile(0.95), 95.0, 2.0);
}

TEST(Stats, HistogramClampsOutOfRange) {
  Histogram h(0.0, 10.0, 10);
  h.add(-5.0);
  h.add(50.0);
  EXPECT_EQ(h.total(), 2u);
  EXPECT_EQ(h.buckets().front(), 1u);
  EXPECT_EQ(h.buckets().back(), 1u);
}

TEST(Stats, HistogramClampsExtremeSamplesWithoutUB) {
  // Samples far outside [lo, hi) — including infinities — used to be cast
  // to int64 before clamping, which is undefined behaviour.  They must
  // land in the edge buckets.
  Histogram h(0.0, 10.0, 10);
  h.add(1e300);
  h.add(-1e300);
  h.add(std::numeric_limits<double>::infinity());
  h.add(-std::numeric_limits<double>::infinity());
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.buckets().front(), 2u);
  EXPECT_EQ(h.buckets().back(), 2u);
}

TEST(Stats, HistogramCountsNaNSeparately) {
  Histogram h(0.0, 10.0, 10);
  h.add(std::numeric_limits<double>::quiet_NaN());
  h.add(5.0);
  EXPECT_EQ(h.total(), 1u);  // NaN is not bucketed
  EXPECT_EQ(h.nan_count(), 1u);
  std::uint64_t bucketed = 0;
  for (std::uint64_t b : h.buckets()) bucketed += b;
  EXPECT_EQ(bucketed, 1u);
}

TEST(Stats, HistogramNormalizesDegenerateRange) {
  // hi <= lo and zero buckets must not divide by zero or crash.
  Histogram h(5.0, 5.0, 0);
  h.add(5.0);
  h.add(4.0);
  h.add(6.0);
  EXPECT_EQ(h.total(), 3u);
  EXPECT_EQ(h.buckets().size(), 1u);
  EXPECT_EQ(h.buckets().front(), 3u);
  EXPECT_GT(h.hi(), h.lo());
}

TEST(Stats, GaugeMovesBothWays) {
  Gauge g;
  g.set(10.0);
  g.add(-3.0);
  EXPECT_DOUBLE_EQ(g.value(), 7.0);
  g.max_of(5.0);
  EXPECT_DOUBLE_EQ(g.value(), 7.0);
  g.max_of(12.0);
  EXPECT_DOUBLE_EQ(g.value(), 12.0);
}

TEST(Codec, TakeEmptiesTheWriter) {
  Writer w;
  w.put<std::uint32_t>(7).put_string("x");
  EXPECT_GT(w.size(), 0u);
  const std::string wire = w.take();
  EXPECT_FALSE(wire.empty());
  // The storage moved out: a stale Writer can no longer silently
  // re-serialize its old bytes.
  EXPECT_EQ(w.size(), 0u);
}

}  // namespace
}  // namespace coop::util
