// Tests for the sharded parallel kernel: calendar-queue ordering, shard
// semantics, and the differential oracle — the sharded engine must produce
// outcomes identical to the serial Simulator across seeds, topologies,
// shard counts and thread counts (DESIGN.md §17).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "sim/calendar_queue.hpp"
#include "sim/rng.hpp"
#include "sim/shard.hpp"
#include "sim/simulator.hpp"

namespace coop::sim {
namespace {

// --- CalendarQueue ----------------------------------------------------------

std::vector<CalEntry> drain(CalendarQueue& q) {
  std::vector<CalEntry> out;
  CalEntry e;
  while (q.peek(e)) {
    q.pop();
    out.push_back(e);
  }
  return out;
}

void expect_sorted(const std::vector<CalEntry>& v) {
  for (std::size_t i = 1; i < v.size(); ++i)
    ASSERT_TRUE(CalendarQueue::before(v[i - 1], v[i]))
        << "out of order at " << i;
}

TEST(CalendarQueue, PopsInStrictWhenSeqOrder) {
  CalendarQueue q(usec(100), 16);
  Rng rng(7);
  std::vector<CalEntry> ref;
  for (std::uint64_t s = 1; s <= 5000; ++s) {
    // Cluster most timestamps near the clock, some far out, some ties.
    const TimePoint when =
        static_cast<TimePoint>(rng.next() % (rng.bernoulli(0.1) ? 10'000'000
                                                                : 50'000));
    q.push({when, s, 0});
    ref.push_back({when, s, 0});
  }
  std::sort(ref.begin(), ref.end(), CalendarQueue::before);
  const auto got = drain(q);
  ASSERT_EQ(got.size(), ref.size());
  for (std::size_t i = 0; i < ref.size(); ++i) {
    EXPECT_EQ(got[i].when, ref[i].when);
    EXPECT_EQ(got[i].seq, ref[i].seq);
  }
  EXPECT_TRUE(q.empty());
}

TEST(CalendarQueue, InterleavedPushPopKeepsOrder) {
  CalendarQueue q(usec(64), 8);
  Rng rng(11);
  std::uint64_t seq = 1;
  TimePoint clock = 0;
  TimePoint last_when = 0;
  std::uint64_t last_seq = 0;
  std::size_t popped = 0;
  for (int round = 0; round < 200; ++round) {
    for (int i = 0; i < 20; ++i) {
      q.push({clock + static_cast<TimePoint>(rng.next() % 5000), seq++, 0});
    }
    for (int i = 0; i < 15 && !q.empty(); ++i) {
      CalEntry e;
      ASSERT_TRUE(q.peek(e));
      q.pop();
      ASSERT_GE(e.when, clock);  // never pops into the past
      if (popped > 0) {
        ASSERT_TRUE(e.when > last_when ||
                    (e.when == last_when && e.seq > last_seq));
      }
      last_when = e.when;
      last_seq = e.seq;
      clock = e.when;
      ++popped;
    }
  }
  expect_sorted(drain(q));
}

TEST(CalendarQueue, GrowsUnderOccupancyAndKeepsOrder) {
  CalendarQueue q(usec(10), 8);
  const std::size_t initial = q.bucket_count();
  std::vector<CalEntry> ref;
  for (std::uint64_t s = 1; s <= 2000; ++s) {
    const TimePoint when = static_cast<TimePoint>((s * 37) % 501);
    q.push({when, s, 0});
    ref.push_back({when, s, 0});
  }
  EXPECT_GT(q.bucket_count(), initial);
  std::sort(ref.begin(), ref.end(), CalendarQueue::before);
  const auto got = drain(q);
  ASSERT_EQ(got.size(), ref.size());
  for (std::size_t i = 0; i < ref.size(); ++i)
    EXPECT_EQ(got[i].seq, ref[i].seq);
}

TEST(CalendarQueue, FarFutureClustersRebaseThroughOverflow) {
  CalendarQueue q(usec(100), 8);
  // Three clusters separated by far more than one ring revolution.
  std::vector<CalEntry> ref;
  std::uint64_t s = 1;
  for (TimePoint base : {TimePoint{0}, sec(1000), sec(2'000'000)}) {
    for (int i = 0; i < 50; ++i) {
      const auto when = base + usec(i * 37);
      q.push({when, s, 0});
      ref.push_back({when, s, 0});
      ++s;
    }
  }
  std::sort(ref.begin(), ref.end(), CalendarQueue::before);
  const auto got = drain(q);
  ASSERT_EQ(got.size(), ref.size());
  for (std::size_t i = 0; i < ref.size(); ++i)
    EXPECT_EQ(got[i].seq, ref[i].seq);
}

TEST(CalendarQueue, EndOfTimeSentinelsNeverStrand) {
  CalendarQueue q(usec(100), 8);
  q.push({kTimeMax, 1, 0});
  q.push({kTimeMax, 2, 0});
  q.push({usec(5), 3, 0});
  CalEntry e;
  ASSERT_TRUE(q.peek(e));
  EXPECT_EQ(e.seq, 3u);
  q.pop();
  ASSERT_TRUE(q.peek(e));
  EXPECT_EQ(e.when, kTimeMax);
  EXPECT_EQ(e.seq, 1u);  // FIFO among the sentinels
  q.pop();
  ASSERT_TRUE(q.peek(e));
  EXPECT_EQ(e.seq, 2u);
  q.pop();
  EXPECT_TRUE(q.empty());
}

TEST(CalendarQueue, InsertBelowHuntedCursorStaysOrdered) {
  CalendarQueue q(usec(100), 16);
  // Push one far entry so the cursor hunts ahead when we drain to it,
  // then insert below the hunted position (a barrier insert).
  q.push({usec(50), 1, 0});
  q.push({usec(1200), 2, 0});
  CalEntry e;
  ASSERT_TRUE(q.peek(e));
  EXPECT_EQ(e.seq, 1u);
  q.pop();
  ASSERT_TRUE(q.peek(e));  // cursor now parked at the 1200us bucket
  EXPECT_EQ(e.seq, 2u);
  q.push({usec(600), 3, 0});  // below the cursor's bucket start
  ASSERT_TRUE(q.peek(e));
  EXPECT_EQ(e.seq, 3u) << "rewind insert must pop before the later entry";
  q.pop();
  ASSERT_TRUE(q.peek(e));
  EXPECT_EQ(e.seq, 2u);
  q.pop();
  EXPECT_TRUE(q.empty());
}

// --- ShardSim ---------------------------------------------------------------

TEST(ShardSim, MirrorsSerialSchedulingSemantics) {
  ShardSim s(0, 42, usec(100), 8);
  std::vector<int> order;
  s.schedule_at(usec(30), [&] { order.push_back(3); });
  s.schedule_at(usec(10), [&] { order.push_back(1); });
  const EventId dead = s.schedule_at(usec(20), [&] { order.push_back(2); });
  EXPECT_TRUE(s.cancel(dead));
  EXPECT_FALSE(s.cancel(dead));  // second cancel is a clean no-op
  EXPECT_EQ(s.pending(), 2u);
  EXPECT_EQ(s.run_below(usec(30)), 1u);  // horizon is exclusive
  EXPECT_EQ(order, (std::vector<int>{1}));
  EXPECT_EQ(s.run_at(usec(30)), 1u);
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
  EXPECT_EQ(s.now(), usec(30));
  EXPECT_EQ(s.events_processed(), 2u);
}

TEST(ShardSim, PastScheduleClampsToNow) {
  ShardSim s(0, 42, usec(100), 8);
  s.schedule_at(usec(50), [&s] {
    s.schedule_at(usec(10), [] {});  // in the past: clamps to now=50us
  });
  EXPECT_EQ(s.run_below(usec(51)), 2u);
  EXPECT_EQ(s.now(), usec(50));
}

// --- Differential oracle ----------------------------------------------------
//
// One scenario, two kernels.  P participants in rooms of 4; each
// participant ticks on a room-dependent cadence, mutates commutative
// per-participant accumulators, and sends one datagram to a same-room
// neighbour (intra-shard) and one to its counterpart in the opposite room
// (inter-shard under any block assignment of rooms to shards).  All
// stochastic choices draw from per-participant rngs owned by the scenario
// — never from a kernel — so the event *content* is kernel-independent,
// and all state is insensitive to same-timestamp cross-participant
// interleaving, the only ordering freedom either kernel has.
//
// A delivery whose payload hits a rare residue cancels the receiver's
// pending tick (if still strictly in the future) — exercising cancel of
// an event across the epoch machinery.  Tick timestamps are kept even and
// delivery arrivals odd: a tick-vs-delivery timestamp collision would make
// the cancel decision depend on same-timestamp ordering, the one freedom
// the two kernels exercise differently.

struct Topology {
  Duration min_latency;   // lookahead for the sharded engine
  Duration local_jitter;  // intra-room extra delay range
  Duration remote_jitter; // cross-room extra delay range
};

constexpr Topology kWanTopology{msec(32), usec(100), msec(8)};
constexpr Topology kZeroLookahead{0, usec(100), usec(300)};

struct Participant {
  Rng rng{0};
  std::uint64_t acc = 0;
  std::uint64_t sum = 0;
  std::uint64_t xr = 0;
  std::uint64_t deliveries = 0;
  std::uint64_t arrival_sum = 0;
  std::uint64_t msg_seq = 0;
  TimePoint next_tick = 0;     // scenario-tracked pending tick time
  std::uint64_t tick_handle = 0;
};

constexpr std::size_t kRoom = 4;

/// The kernel-independent scenario.  Adapter supplies: shards(),
/// shard_of(p), schedule(p, when, fn)->handle, cancel(p, handle),
/// send(src, dst, at, payload).
template <typename Adapter>
class DiffScenario {
 public:
  DiffScenario(std::size_t participants, std::uint64_t seed, Topology topo,
               Adapter& a)
      : topo_(topo), adapter_(a), ps_(participants) {
    for (std::size_t p = 0; p < ps_.size(); ++p)
      ps_[p].rng = Rng(seed ^ (0x9e3779b97f4a7c15ULL * (p + 1)));
  }

  void start() {
    for (std::uint32_t p = 0; p < ps_.size(); ++p) {
      const TimePoint first = cadence(p) + usec((p % 7) * 26);  // even
      arm_tick(p, first);
    }
  }

  void on_delivery(std::uint32_t dst, TimePoint at, std::uint64_t payload) {
    Participant& q = ps_[dst];
    q.sum += payload;
    q.xr ^= payload * 0x2545f4914f6cdd1dULL;
    ++q.deliveries;
    q.arrival_sum += static_cast<std::uint64_t>(at);
    if (payload % 31 == 0 && q.next_tick > at) {
      // Strictly-future guard keeps the decision independent of
      // same-timestamp ordering between this delivery and the tick.
      adapter_.cancel(dst, q.tick_handle);
      q.next_tick = 0;  // chain dies; no further draws from q.rng
    }
  }

  [[nodiscard]] std::uint64_t outcome_hash() const {
    std::uint64_t h = 1469598103934665603ULL;
    auto mix = [&h](std::uint64_t v) {
      for (int i = 0; i < 8; ++i) {
        h ^= (v >> (i * 8)) & 0xff;
        h *= 1099511628211ULL;
      }
    };
    for (const Participant& p : ps_) {
      mix(p.acc);
      mix(p.sum);
      mix(p.xr);
      mix(p.deliveries);
      mix(p.arrival_sum);
    }
    return h;
  }

  [[nodiscard]] std::uint64_t total_deliveries() const {
    std::uint64_t n = 0;
    for (const Participant& p : ps_) n += p.deliveries;
    return n;
  }

 private:
  [[nodiscard]] Duration cadence(std::uint32_t p) const {
    return (p / kRoom) % 2 == 0 ? usec(5000) : usec(9000);
  }

  void arm_tick(std::uint32_t p, TimePoint when) {
    ps_[p].next_tick = when;
    ps_[p].tick_handle =
        adapter_.schedule(p, when, [this, p] { tick(p); });
  }

  void tick(std::uint32_t p) {
    Participant& me = ps_[p];
    const TimePoint t = me.next_tick;
    me.acc = me.acc * 6364136223846793005ULL + me.rng.next();

    const std::size_t nrooms = ps_.size() / kRoom;
    const std::size_t room = p / kRoom;
    const std::uint32_t partner = static_cast<std::uint32_t>(
        ((room + nrooms / 2) % nrooms) * kRoom + p % kRoom);
    const std::uint32_t neighbour =
        static_cast<std::uint32_t>(room * kRoom + (p + 1) % kRoom);

    // Fixed draw order: remote delay, remote payload, local delay,
    // local payload — identical on both kernels by construction.  The
    // | 1 makes every delay odd (cadences and offsets are even), so
    // arrivals never collide with tick timestamps.
    const auto rj = static_cast<std::uint64_t>(topo_.remote_jitter);
    const auto lj = static_cast<std::uint64_t>(topo_.local_jitter);
    const Duration rd = topo_.min_latency +
                        static_cast<Duration>(me.rng.next() % (rj + 1) | 1);
    const std::uint64_t rpay = me.rng.next();
    const Duration ld = static_cast<Duration>(me.rng.next() % (lj + 1) | 1);
    const std::uint64_t lpay = me.rng.next();
    adapter_.send(p, partner, t + rd, rpay, me.msg_seq++);
    adapter_.send(p, neighbour, t + ld, lpay, me.msg_seq++);

    arm_tick(p, t + cadence(p));
  }

  Topology topo_;
  Adapter& adapter_;
  std::vector<Participant> ps_;
};

/// Serial oracle adapter: everything on one Simulator.
class SerialAdapter {
 public:
  explicit SerialAdapter(Simulator& sim) : sim_(sim) {}

  template <typename F>
  std::uint64_t schedule(std::uint32_t, TimePoint when, F&& fn) {
    return sim_.schedule_at(when, std::forward<F>(fn));
  }
  void cancel(std::uint32_t, std::uint64_t handle) { sim_.cancel(handle); }
  void send(std::uint32_t, std::uint32_t dst, TimePoint at,
            std::uint64_t payload, std::uint64_t) {
    auto* self = this;
    sim_.schedule_at(at, [self, dst, at, payload] {
      self->deliver_(self->ctx_, dst, at, payload);
    });
  }

  void (*deliver_)(void*, std::uint32_t, TimePoint, std::uint64_t) = nullptr;
  void* ctx_ = nullptr;

 private:
  Simulator& sim_;
};

/// Sharded adapter: rooms block-assigned to shards (never straddling).
class ShardedAdapter {
 public:
  ShardedAdapter(ShardedEngine& eng, std::size_t participants)
      : eng_(eng), nrooms_(participants / kRoom) {}

  [[nodiscard]] std::uint16_t shard_of(std::uint32_t p) const {
    const std::size_t room = p / kRoom;
    return static_cast<std::uint16_t>(room * eng_.shards() / nrooms_);
  }

  template <typename F>
  std::uint64_t schedule(std::uint32_t p, TimePoint when, F&& fn) {
    return eng_.schedule_at(shard_of(p), when, std::forward<F>(fn));
  }
  void cancel(std::uint32_t p, std::uint64_t handle) {
    eng_.cancel(shard_of(p), handle);
  }
  void send(std::uint32_t src, std::uint32_t dst, TimePoint at,
            std::uint64_t payload, std::uint64_t seq) {
    eng_.send(ShardMsg{at, src, dst, shard_of(src), shard_of(dst),
                       static_cast<std::uint32_t>(seq), payload});
  }

 private:
  ShardedEngine& eng_;
  std::size_t nrooms_;
};

struct RunResult {
  std::uint64_t hash = 0;
  std::uint64_t deliveries = 0;
  std::uint64_t events = 0;
};

RunResult run_serial(std::size_t participants, std::uint64_t seed,
                     Topology topo, TimePoint horizon) {
  Simulator sim;
  SerialAdapter adapter(sim);
  DiffScenario<SerialAdapter> scen(participants, seed, topo, adapter);
  adapter.ctx_ = &scen;
  adapter.deliver_ = [](void* ctx, std::uint32_t dst, TimePoint at,
                        std::uint64_t payload) {
    static_cast<DiffScenario<SerialAdapter>*>(ctx)->on_delivery(dst, at,
                                                                payload);
  };
  scen.start();
  sim.run_until(horizon);
  return {scen.outcome_hash(), scen.total_deliveries(),
          sim.events_processed()};
}

RunResult run_sharded(std::size_t participants, std::uint64_t seed,
                      Topology topo, TimePoint horizon, std::uint32_t shards,
                      std::uint32_t threads,
                      const std::vector<TimePoint>& stops = {}) {
  ShardedConfig cfg;
  cfg.shards = shards;
  cfg.threads = threads;
  cfg.lookahead = topo.min_latency;
  cfg.seed = seed;
  ShardedEngine eng(cfg);
  ShardedAdapter adapter(eng, participants);
  DiffScenario<ShardedAdapter> scen(participants, seed, topo, adapter);
  struct Ctx {
    DiffScenario<ShardedAdapter>* scen;
  } ctx{&scen};
  eng.set_msg_handler(
      [](void* c, const ShardMsg& m) {
        static_cast<Ctx*>(c)->scen->on_delivery(m.dst, m.at, m.payload);
      },
      &ctx);
  scen.start();
  for (const TimePoint t : stops) eng.run_until(t);  // mid-epoch stops
  eng.run_until(horizon);
  EXPECT_EQ(eng.lookahead_violations(), 0u);
  return {scen.outcome_hash(), scen.total_deliveries(),
          eng.events_processed()};
}

TEST(DifferentialOracle, ShardedMatchesSerialAcrossSeedTopologyMatrix) {
  constexpr std::size_t kParticipants = 64;  // 16 rooms
  const TimePoint horizon = msec(400);
  for (const std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    for (const Topology& topo : {kWanTopology, kZeroLookahead}) {
      const RunResult serial = run_serial(kParticipants, seed, topo, horizon);
      ASSERT_GT(serial.deliveries, 0u);
      for (const std::uint32_t shards : {1u, 2u, 4u, 8u}) {
        const RunResult sharded =
            run_sharded(kParticipants, seed, topo, horizon, shards, 1);
        EXPECT_EQ(sharded.hash, serial.hash)
            << "seed=" << seed << " shards=" << shards
            << " lookahead=" << topo.min_latency;
        EXPECT_EQ(sharded.deliveries, serial.deliveries);
        EXPECT_EQ(sharded.events, serial.events)
            << "every tick and delivery is exactly one kernel event";
      }
    }
  }
}

TEST(DifferentialOracle, ThreadCountNeverChangesTheOutcome) {
  constexpr std::size_t kParticipants = 64;
  const TimePoint horizon = msec(300);
  for (const Topology& topo : {kWanTopology, kZeroLookahead}) {
    const RunResult one = run_sharded(kParticipants, 9, topo, horizon, 4, 1);
    const RunResult two = run_sharded(kParticipants, 9, topo, horizon, 4, 2);
    const RunResult four = run_sharded(kParticipants, 9, topo, horizon, 4, 4);
    EXPECT_EQ(one.hash, two.hash);
    EXPECT_EQ(one.hash, four.hash);
    EXPECT_EQ(one.events, two.events);
    EXPECT_EQ(one.events, four.events);
  }
}

TEST(DifferentialOracle, MidEpochStopResumesBitIdentically) {
  constexpr std::size_t kParticipants = 32;
  const TimePoint horizon = msec(300);
  // Stop points deliberately misaligned with both cadences and the
  // lookahead window so run_until clips epochs mid-flight.
  const std::vector<TimePoint> stops{usec(7'321), usec(41'999), msec(123)};
  for (const Topology& topo : {kWanTopology, kZeroLookahead}) {
    const RunResult straight =
        run_sharded(kParticipants, 4, topo, horizon, 4, 1);
    const RunResult stopped =
        run_sharded(kParticipants, 4, topo, horizon, 4, 1, stops);
    EXPECT_EQ(straight.hash, stopped.hash);
    EXPECT_EQ(straight.events, stopped.events);
    const RunResult serial = run_serial(kParticipants, 4, topo, horizon);
    EXPECT_EQ(stopped.hash, serial.hash);
  }
}

TEST(ShardedEngine, SameShardSendIsAnImmediateEvent) {
  ShardedConfig cfg;
  cfg.shards = 2;
  ShardedEngine eng(cfg);
  std::uint64_t got = 0;
  eng.set_msg_handler(
      [](void* ctx, const ShardMsg& m) {
        *static_cast<std::uint64_t*>(ctx) += m.payload;
      },
      &got);
  eng.send(ShardMsg{usec(10), 0, 1, 0, 0, 0, 7});
  EXPECT_EQ(eng.cross_shard_messages(), 0u);
  eng.run_until(usec(10));
  EXPECT_EQ(got, 7u);
  EXPECT_EQ(eng.now(), usec(10));
}

TEST(ShardedEngine, LookaheadViolationsAreCountedNotFatal) {
  ShardedConfig cfg;
  cfg.shards = 2;
  cfg.lookahead = msec(10);
  ShardedEngine eng(cfg);
  std::uint64_t got = 0;
  eng.set_msg_handler(
      [](void* ctx, const ShardMsg& m) {
        *static_cast<std::uint64_t*>(ctx) += m.payload;
      },
      &got);
  // Arrival violates at >= now + lookahead (now=0, at=1ms < 10ms).
  eng.send(ShardMsg{msec(1), 0, 4, 0, 1, 0, 5});
  eng.run_until(msec(20));
  EXPECT_EQ(eng.lookahead_violations(), 1u);
  EXPECT_EQ(got, 5u);  // still delivered
}

TEST(ShardedEngine, RunDrainsToQuiescence) {
  ShardedConfig cfg;
  cfg.shards = 4;
  cfg.lookahead = msec(5);
  ShardedEngine eng(cfg);
  std::uint64_t deliveries = 0;
  eng.set_msg_handler(
      [](void* ctx, const ShardMsg&) {
        ++*static_cast<std::uint64_t*>(ctx);
      },
      &deliveries);
  // Each shard ticks once and sends one cross-shard message forward.
  for (std::uint32_t s = 0; s < 4; ++s) {
    eng.schedule_at(s, usec(100), [&eng, s] {
      eng.send(ShardMsg{msec(6), s, s + 1, static_cast<std::uint16_t>(s),
                        static_cast<std::uint16_t>((s + 1) % 4), 0, 1});
    });
  }
  const std::size_t n = eng.run();
  EXPECT_EQ(n, 8u);  // 4 ticks + 4 deliveries
  EXPECT_EQ(deliveries, 4u);
  EXPECT_EQ(eng.pending(), 0u);
  EXPECT_GT(eng.epochs(), 0u);
}

}  // namespace
}  // namespace coop::sim
