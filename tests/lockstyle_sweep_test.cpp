// Cross-cutting property sweep: the qualitative ordering between lock
// styles that the paper's §4.2.1 argument rests on must hold for ANY
// contention level and seed — strict blocks at least as much as tickle,
// soft never blocks, notification locks never block readers.
#include <gtest/gtest.h>

#include <functional>
#include <string>
#include <tuple>

#include "ccontrol/locks.hpp"
#include "sim/simulator.hpp"

namespace coop::ccontrol {
namespace {

struct Outcome {
  std::uint64_t waits = 0;
  double total_wait_us = 0;
  std::uint64_t grants = 0;
  std::uint64_t conflicts = 0;
  std::uint64_t transfers = 0;
};

/// Runs a shared-document workload: `users` clients contend for
/// `resources` sections for 10 virtual minutes; 20% of holders go idle
/// for 8 s before releasing.
Outcome run_workload(LockStyle style, int users, int resources,
                     std::uint64_t seed) {
  sim::Simulator sim(seed);
  LockManager lm(sim, {.style = style,
                       .tickle_idle_timeout = sim::sec(2)});
  constexpr sim::Duration kHold = sim::msec(300);
  constexpr double kThinkMs = 400.0;

  std::function<void(int)> loop = [&](int user) {
    if (sim.now() >= sim::minutes(10)) return;
    const auto id = static_cast<ClientId>(user + 1);
    const std::string res =
        "sec" + std::to_string(sim.rng().zipf(
                    static_cast<std::size_t>(resources), 1.1));
    const LockMode mode =
        sim.rng().bernoulli(0.7) ? LockMode::kExclusive : LockMode::kShared;
    lm.acquire(res, id, mode, [&, id, res](const LockGrant& g) {
      if (!g.granted) return;
      const bool idles = sim.rng().bernoulli(0.2);
      sim.schedule_after(kHold + (idles ? sim::sec(8) : 0),
                         [&, id, res] { lm.release(res, id); });
    });
    sim.schedule_after(
        kHold + static_cast<sim::Duration>(
                    sim.rng().exponential(kThinkMs) * 1000),
        [&, user] { loop(user); });
  };
  for (int u = 0; u < users; ++u) loop(u);
  sim.run_until(sim::minutes(12));

  return {lm.stats().waits, lm.stats().wait_time.sum(),
          lm.stats().grants, lm.stats().conflicts,
          lm.stats().transfers};
}

class LockStyleSweep
    : public ::testing::TestWithParam<std::tuple<int, int, std::uint64_t>> {
};

TEST_P(LockStyleSweep, QualitativeOrderingHolds) {
  const auto [users, resources, seed] = GetParam();
  const Outcome strict = run_workload(LockStyle::kStrict, users, resources,
                                      seed);
  const Outcome tickle = run_workload(LockStyle::kTickle, users, resources,
                                      seed);
  const Outcome soft = run_workload(LockStyle::kSoft, users, resources,
                                    seed);

  // Soft locks never block, ever.
  EXPECT_EQ(soft.waits, 0u);
  // Under contention soft flags overlaps instead.
  if (strict.waits > 0) {
    EXPECT_GT(soft.conflicts, 0u)
        << "contention existed but soft flagged nothing";
  }
  // Tickle's guarantee is NOT lower total wait — dispossessing idle
  // holders lets newcomers jump the queue, which can lengthen others'
  // waits (measured unfairness, documented in LockManager).  What it
  // does guarantee: whenever strict blocking exists in a workload with
  // idle holders, tickle actually revokes some of them.
  if (strict.waits > 0) {
    EXPECT_GT(tickle.transfers, 0u)
        << "users=" << users << " resources=" << resources
        << " seed=" << seed;
  }
  // Strict never revokes anything.
  EXPECT_EQ(strict.transfers, 0u);
  // Soft grants every request eventually; the others at least progress.
  // (Exact grant counts at the window cutoff are not comparable across
  // styles — grant *timing* shifts which acquisitions land inside it.)
  EXPECT_GT(soft.grants, 0u);
  EXPECT_GT(tickle.grants, 0u);
  EXPECT_GT(strict.grants, 0u);
}

TEST_P(LockStyleSweep, NotifyLocksNeverBlockReaders) {
  const auto [users, resources, seed] = GetParam();
  sim::Simulator sim(seed);
  LockManager lm(sim, {.style = LockStyle::kNotify});
  // One writer camps on every resource...
  for (int r = 0; r < resources; ++r)
    lm.acquire("sec" + std::to_string(r), 100, LockMode::kExclusive,
               nullptr);
  // ...and every reader still gets in instantly.
  int granted = 0;
  for (int u = 0; u < users; ++u) {
    for (int r = 0; r < resources; ++r) {
      lm.acquire("sec" + std::to_string(r),
                 static_cast<ClientId>(u + 1), LockMode::kShared,
                 [&](const LockGrant& g) { granted += g.granted ? 1 : 0; });
    }
  }
  EXPECT_EQ(granted, users * resources);
  EXPECT_EQ(lm.stats().waits, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, LockStyleSweep,
    ::testing::Combine(::testing::Values(2, 4, 8),     // users
                       ::testing::Values(1, 4, 12),    // resources
                       ::testing::Values(101u, 202u)  // seeds
                       ));

}  // namespace
}  // namespace coop::ccontrol
