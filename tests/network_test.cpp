// Unit tests for the simulated network: delivery, links, faults, mobility,
// multicast and congestion.
#include <gtest/gtest.h>

#include <vector>

#include "net/network.hpp"
#include "sim/simulator.hpp"

namespace coop::net {
namespace {

// Records every delivered message with its arrival time.
class Recorder : public Endpoint {
 public:
  explicit Recorder(sim::Simulator& sim) : sim_(sim) {}
  void on_message(const Message& msg) override {
    arrivals.push_back({msg, sim_.now()});
  }
  struct Arrival {
    Message msg;
    sim::TimePoint at;
  };
  std::vector<Arrival> arrivals;

 private:
  sim::Simulator& sim_;
};

class NetworkTest : public ::testing::Test {
 protected:
  sim::Simulator sim{1};
  Network net{sim};
};

TEST_F(NetworkTest, DeliversUnicastWithLinkLatency) {
  Recorder rx(sim);
  net.attach({2, 1}, rx);
  net.set_link(1, 2, {.latency = sim::msec(10), .jitter = 0,
                      .bandwidth_bps = 0 /* infinite */, .loss = 0});
  net.send({.src = {1, 1}, .dst = {2, 1}, .payload = "hi"});
  sim.run();
  ASSERT_EQ(rx.arrivals.size(), 1u);
  EXPECT_EQ(rx.arrivals[0].msg.payload, "hi");
  EXPECT_EQ(rx.arrivals[0].at, sim::msec(10));
  EXPECT_EQ(net.stats().delivered, 1u);
}

TEST_F(NetworkTest, ChargesHeaderOverheadInWireSize) {
  Recorder rx(sim);
  net.attach({2, 1}, rx);
  net.send({.src = {1, 1}, .dst = {2, 1}, .payload = "abcd"});
  sim.run();
  ASSERT_EQ(rx.arrivals.size(), 1u);
  EXPECT_EQ(rx.arrivals[0].msg.wire_size, 4 + Message::kHeaderBytes);
}

TEST_F(NetworkTest, NoEndpointCountsAsDrop) {
  net.send({.src = {1, 1}, .dst = {9, 9}, .payload = "x"});
  sim.run();
  EXPECT_EQ(net.stats().dropped_no_endpoint, 1u);
  EXPECT_EQ(net.stats().delivered, 0u);
}

TEST_F(NetworkTest, DetachStopsDelivery) {
  Recorder rx(sim);
  net.attach({2, 1}, rx);
  net.detach({2, 1});
  net.send({.src = {1, 1}, .dst = {2, 1}, .payload = "x"});
  sim.run();
  EXPECT_TRUE(rx.arrivals.empty());
}

TEST_F(NetworkTest, LossDropsApproximatelyTheConfiguredFraction) {
  Recorder rx(sim);
  net.attach({2, 1}, rx);
  net.set_link(1, 2, {.latency = sim::usec(10), .jitter = 0,
                      .bandwidth_bps = 1e9, .loss = 0.25});
  const int n = 4000;
  for (int i = 0; i < n; ++i)
    net.send({.src = {1, 1}, .dst = {2, 1}, .payload = "x"});
  sim.run();
  const double rate = static_cast<double>(rx.arrivals.size()) / n;
  EXPECT_NEAR(rate, 0.75, 0.04);
  EXPECT_EQ(net.stats().dropped_loss + net.stats().delivered,
            static_cast<std::uint64_t>(n));
}

TEST_F(NetworkTest, BandwidthQueueingDelaysBackToBackDatagrams) {
  Recorder rx(sim);
  net.attach({2, 1}, rx);
  // 1000 bytes at 8 kbps = 1 s serialization each; zero propagation.
  net.set_link(1, 2, {.latency = 0, .jitter = 0,
                      .bandwidth_bps = 8000, .loss = 0});
  for (int i = 0; i < 3; ++i) {
    Message m{.src = {1, 1}, .dst = {2, 1}, .payload = ""};
    m.wire_size = 1000;
    net.send(std::move(m));
  }
  sim.run();
  ASSERT_EQ(rx.arrivals.size(), 3u);
  EXPECT_EQ(rx.arrivals[0].at, sim::sec(1));
  EXPECT_EQ(rx.arrivals[1].at, sim::sec(2));
  EXPECT_EQ(rx.arrivals[2].at, sim::sec(3));
}

TEST_F(NetworkTest, PartitionBlocksAcrossTheCutOnly) {
  Recorder rx2(sim), rx3(sim);
  net.attach({2, 1}, rx2);
  net.attach({3, 1}, rx3);
  net.partition({1, 2});  // {1,2} vs everyone else
  net.send({.src = {1, 1}, .dst = {2, 1}, .payload = "same side"});
  net.send({.src = {1, 1}, .dst = {3, 1}, .payload = "across"});
  sim.run();
  EXPECT_EQ(rx2.arrivals.size(), 1u);
  EXPECT_TRUE(rx3.arrivals.empty());
  net.heal_partition();
  net.send({.src = {1, 1}, .dst = {3, 1}, .payload = "healed"});
  sim.run();
  EXPECT_EQ(rx3.arrivals.size(), 1u);
}

TEST_F(NetworkTest, ExplicitTwoSidedPartition) {
  Recorder rx(sim);
  net.attach({5, 1}, rx);
  net.partition({1}, {5});
  net.send({.src = {1, 1}, .dst = {5, 1}, .payload = "x"});
  // Node 7 is in neither side: unaffected.
  Recorder rx7(sim);
  net.attach({7, 1}, rx7);
  net.send({.src = {1, 1}, .dst = {7, 1}, .payload = "y"});
  sim.run();
  EXPECT_TRUE(rx.arrivals.empty());
  EXPECT_EQ(rx7.arrivals.size(), 1u);
}

TEST_F(NetworkTest, CrashedNodeNeitherSendsNorReceives) {
  Recorder rx(sim);
  net.attach({2, 1}, rx);
  net.crash(2);
  net.send({.src = {1, 1}, .dst = {2, 1}, .payload = "to crashed"});
  sim.run();
  EXPECT_TRUE(rx.arrivals.empty());
  net.recover(2);
  net.send({.src = {1, 1}, .dst = {2, 1}, .payload = "after recover"});
  sim.run();
  EXPECT_EQ(rx.arrivals.size(), 1u);
}

TEST_F(NetworkTest, CrashDuringFlightLosesInFlightMessage) {
  Recorder rx(sim);
  net.attach({2, 1}, rx);
  net.set_link(1, 2, {.latency = sim::msec(100), .jitter = 0,
                      .bandwidth_bps = 0, .loss = 0});
  net.send({.src = {1, 1}, .dst = {2, 1}, .payload = "x"});
  sim.schedule_at(sim::msec(50), [&] { net.crash(2); });
  sim.run();
  EXPECT_TRUE(rx.arrivals.empty());
}

TEST_F(NetworkTest, RestartedNodeRejoinsWithCleanNicState) {
  Recorder rx(sim);
  net.attach({2, 1}, rx);
  // 1000 bytes at 8 kbps = 1 s serialization each: build an outbound
  // backlog on node 1, then fail-stop it mid-queue.
  net.set_link(1, 2, {.latency = 0, .jitter = 0,
                      .bandwidth_bps = 8000, .loss = 0});
  for (int i = 0; i < 3; ++i) {
    Message m{.src = {1, 1}, .dst = {2, 1}, .payload = ""};
    m.wire_size = 1000;
    net.send(std::move(m));
  }
  sim.schedule_at(sim::msec(500), [&] { net.crash(1); });
  sim.schedule_at(sim::msec(600), [&] { net.restart(1); });
  // Post-restart the NIC serializer is idle: this frame serializes from
  // "now" (arriving at 1.7s), not behind the dead incarnation's backlog
  // (which would have pushed it to 4s).
  sim.schedule_at(sim::msec(700), [&] {
    Message m{.src = {1, 1}, .dst = {2, 1}, .payload = "fresh"};
    m.wire_size = 1000;
    net.send(std::move(m));
  });
  sim.run();
  bool saw_fresh = false;
  for (const auto& a : rx.arrivals) {
    if (a.msg.payload == "fresh") {
      saw_fresh = true;
      EXPECT_EQ(a.at, sim::msec(700) + sim::sec(1));
    }
  }
  EXPECT_TRUE(saw_fresh);
}

TEST_F(NetworkTest, ChecksumIsStampedAndVerified) {
  Recorder rx(sim);
  net.attach({2, 1}, rx);
  net.send({.src = {1, 1}, .dst = {2, 1}, .payload = "payload"});
  sim.run();
  ASSERT_EQ(rx.arrivals.size(), 1u);
  EXPECT_EQ(rx.arrivals[0].msg.checksum, frame_checksum("payload"));
}

TEST_F(NetworkTest, CorruptedFrameIsDroppedBeforeTheEndpoint) {
  Recorder rx(sim);
  net.attach({2, 1}, rx);
  int frames = 0;
  net.set_inject_hook([&](const Message&) {
    ++frames;
    return InjectDecision{.corrupt = true};
  });
  net.send({.src = {1, 1}, .dst = {2, 1}, .payload = "mangled"});
  sim.run();
  EXPECT_EQ(frames, 1);
  EXPECT_TRUE(rx.arrivals.empty());
  EXPECT_EQ(net.stats().dropped_corrupt, 1u);
  EXPECT_EQ(net.stats().delivered, 0u);
}

TEST_F(NetworkTest, EmptyPayloadCorruptionStillDetected) {
  Recorder rx(sim);
  net.attach({2, 1}, rx);
  net.set_inject_hook(
      [](const Message&) { return InjectDecision{.corrupt = true}; });
  net.send({.src = {1, 1}, .dst = {2, 1}, .payload = ""});
  sim.run();
  EXPECT_TRUE(rx.arrivals.empty());
  EXPECT_EQ(net.stats().dropped_corrupt, 1u);
}

TEST_F(NetworkTest, InjectHookDuplicatesAndDelays) {
  Recorder rx(sim);
  net.attach({2, 1}, rx);
  net.set_link(1, 2, {.latency = sim::msec(10), .jitter = 0,
                      .bandwidth_bps = 0, .loss = 0});
  net.set_inject_hook([](const Message&) {
    return InjectDecision{.duplicate = true, .extra_delay = sim::msec(5)};
  });
  net.send({.src = {1, 1}, .dst = {2, 1}, .payload = "twin"});
  sim.run();
  // The original is delayed by 5ms; the duplicate re-enters transmission
  // with injection disabled (no duplicate storms) and no extra delay.
  ASSERT_EQ(rx.arrivals.size(), 2u);
  EXPECT_EQ(rx.arrivals[0].msg.payload, "twin");
  EXPECT_EQ(rx.arrivals[1].msg.payload, "twin");
  EXPECT_EQ(rx.arrivals[0].at, sim::msec(10));  // duplicate, undelayed
  EXPECT_EQ(rx.arrivals[1].at, sim::msec(15));  // original + extra_delay
}

TEST_F(NetworkTest, DisconnectedMobileNodeIsUnreachable) {
  Recorder rx(sim);
  net.attach({2, 1}, rx);
  net.set_connectivity(2, Connectivity::kDisconnected);
  net.send({.src = {1, 1}, .dst = {2, 1}, .payload = "x"});
  sim.run();
  EXPECT_TRUE(rx.arrivals.empty());
  net.set_connectivity(2, Connectivity::kFull);
  net.send({.src = {1, 1}, .dst = {2, 1}, .payload = "y"});
  sim.run();
  EXPECT_EQ(rx.arrivals.size(), 1u);
}

TEST_F(NetworkTest, PartialConnectivityAppliesRadioModel) {
  Recorder rx(sim);
  net.attach({2, 1}, rx);
  net.set_link(1, 2, {.latency = sim::usec(100), .jitter = 0,
                      .bandwidth_bps = 1e9, .loss = 0});
  net.set_radio_model({.latency = sim::msec(200), .jitter = 0,
                       .bandwidth_bps = 1e9, .loss = 0});
  net.set_connectivity(2, Connectivity::kPartial);
  net.send({.src = {1, 1}, .dst = {2, 1}, .payload = "x"});
  sim.run();
  ASSERT_EQ(rx.arrivals.size(), 1u);
  EXPECT_GE(rx.arrivals[0].at, sim::msec(200));
}

TEST_F(NetworkTest, MulticastFansOutToAllMembersExceptSender) {
  Recorder a(sim), b(sim), c(sim);
  net.attach({1, 1}, a);
  net.attach({2, 1}, b);
  net.attach({3, 1}, c);
  const McastId g = 77;
  net.mcast_join(g, {1, 1});
  net.mcast_join(g, {2, 1});
  net.mcast_join(g, {3, 1});
  EXPECT_EQ(net.mcast_size(g), 3u);
  net.multicast(g, {.src = {1, 1}, .dst = {}, .payload = "all"});
  sim.run();
  EXPECT_TRUE(a.arrivals.empty());  // sender excluded
  ASSERT_EQ(b.arrivals.size(), 1u);
  ASSERT_EQ(c.arrivals.size(), 1u);
  EXPECT_TRUE(b.arrivals[0].msg.multicast);
  EXPECT_EQ(b.arrivals[0].msg.group, g);
}

TEST_F(NetworkTest, MulticastLeaveStopsDelivery) {
  Recorder b(sim);
  net.attach({2, 1}, b);
  const McastId g = 5;
  net.mcast_join(g, {2, 1});
  net.mcast_leave(g, {2, 1});
  EXPECT_EQ(net.mcast_size(g), 0u);
  net.multicast(g, {.src = {1, 1}, .dst = {}, .payload = "x"});
  sim.run();
  EXPECT_TRUE(b.arrivals.empty());
}

TEST_F(NetworkTest, MulticastCopiesTraverseDistinctLinks) {
  Recorder near(sim), far(sim);
  net.attach({2, 1}, near);
  net.attach({3, 1}, far);
  net.set_link(1, 2, {.latency = sim::msec(1), .jitter = 0,
                      .bandwidth_bps = 0, .loss = 0});
  net.set_link(1, 3, {.latency = sim::msec(50), .jitter = 0,
                      .bandwidth_bps = 0, .loss = 0});
  const McastId g = 9;
  net.mcast_join(g, {2, 1});
  net.mcast_join(g, {3, 1});
  net.multicast(g, {.src = {1, 1}, .dst = {}, .payload = "x"});
  sim.run();
  ASSERT_EQ(near.arrivals.size(), 1u);
  ASSERT_EQ(far.arrivals.size(), 1u);
  EXPECT_EQ(near.arrivals[0].at, sim::msec(1));
  EXPECT_EQ(far.arrivals[0].at, sim::msec(50));
}

TEST_F(NetworkTest, LinkStateTracksTraffic) {
  Recorder rx(sim);
  net.attach({2, 1}, rx);
  net.send({.src = {1, 1}, .dst = {2, 1}, .payload = "abc"});
  sim.run();
  const LinkState* ls = net.link_state(1, 2);
  ASSERT_NE(ls, nullptr);
  EXPECT_EQ(ls->sent, 1u);
  EXPECT_EQ(ls->bytes, 3 + Message::kHeaderBytes);
}

TEST_F(NetworkTest, JitterReordersIndependentMessages) {
  // With large jitter, two messages sent back-to-back can arrive out of
  // order — the property the FIFO/causal layers exist to repair.
  Recorder rx(sim);
  net.attach({2, 1}, rx);
  net.set_link(1, 2, {.latency = sim::msec(10), .jitter = sim::msec(9),
                      .bandwidth_bps = 0, .loss = 0});
  bool reordered = false;
  for (int trial = 0; trial < 200 && !reordered; ++trial) {
    rx.arrivals.clear();
    char seq0 = '0';
    net.send({.src = {1, 1}, .dst = {2, 1}, .payload = std::string(1, seq0)});
    net.send({.src = {1, 1}, .dst = {2, 1},
              .payload = std::string(1, static_cast<char>(seq0 + 1))});
    sim.run();
    if (rx.arrivals.size() == 2 && rx.arrivals[0].msg.payload == "1")
      reordered = true;
  }
  EXPECT_TRUE(reordered);
}

TEST(LinkModelTest, SerializeTimeMatchesBandwidth) {
  LinkModel m{.latency = 0, .jitter = 0, .bandwidth_bps = 1e6, .loss = 0};
  EXPECT_EQ(m.serialize_time(125), sim::msec(1));  // 1000 bits at 1 Mbps
  LinkModel inf{.latency = 0, .jitter = 0, .bandwidth_bps = 0, .loss = 0};
  EXPECT_EQ(inf.serialize_time(1'000'000), 0);
}

TEST(LinkModelTest, PresetsAreOrderedByDistance) {
  EXPECT_LT(LinkModel::lan().latency, LinkModel::wan().latency);
  EXPECT_LT(LinkModel::wan().latency, LinkModel::intercontinental().latency);
  EXPECT_GT(LinkModel::lan().bandwidth_bps, LinkModel::radio().bandwidth_bps);
}

}  // namespace
}  // namespace coop::net
