// Tests for the durability plane: WAL framing and torn-tail handling,
// group-commit ack gating, checkpoint + compaction, crash-restart
// recovery, and anti-entropy replica catch-up.
#include <gtest/gtest.h>

#include <optional>
#include <set>
#include <string>

#include "core/coop.hpp"
#include "durable/anti_entropy.hpp"
#include "durable/store.hpp"
#include "durable/wal.hpp"
#include "fault/invariants.hpp"

namespace coop::durable {
namespace {

class DurableTest : public ::testing::Test {
 protected:
  DurableConfig cfg(const char* name = "s") {
    DurableConfig c;
    c.name = name;
    c.sync_interval = sim::msec(5);
    c.checkpoint_log_bytes = 0;  // manual checkpoints unless a test opts in
    return c;
  }

  sim::Simulator sim{7};
  obs::Obs obs;
  StableMedia media;
};

TEST_F(DurableTest, AckGatesOnGroupCommit) {
  DurableStore s(sim, obs, media, cfg());
  bool acked = false;
  s.put("k", "v", [&] { acked = true; });
  EXPECT_FALSE(acked);  // buffered until the sync tick
  EXPECT_EQ(media.log.size(), 0u);
  sim.run_until(sim::msec(4));
  EXPECT_FALSE(acked);
  sim.run_until(sim::msec(6));
  EXPECT_TRUE(acked);
  EXPECT_GT(media.log.size(), 0u);
  EXPECT_EQ(s.read("k"), "v");
}

TEST_F(DurableTest, CrashDropsUnsyncedTailAcksNeverLie) {
  std::optional<DurableStore> s;
  s.emplace(sim, obs, media, cfg());
  bool acked1 = false;
  bool acked2 = false;
  s->put("k1", "v1", [&] { acked1 = true; });
  sim.run_until(sim::msec(10));  // k1 synced + acked
  ASSERT_TRUE(acked1);
  s->put("k2", "v2", [&] { acked2 = true; });
  s->crash();  // before the next sync: k2 dies with the tail
  s.reset();
  EXPECT_FALSE(acked2);

  s.emplace(sim, obs, media, cfg());
  EXPECT_EQ(s->read("k1"), "v1");  // every ack survived
  EXPECT_FALSE(s->read("k2").has_value());
  EXPECT_EQ(s->recovery().replayed_records, 1u);
  EXPECT_EQ(s->recovery().truncated_bytes, 0u);  // clean crash, no torn tail
}

TEST_F(DurableTest, TornTailRecordIsDiscardedByChecksumNeverParsed) {
  std::optional<DurableStore> s;
  s.emplace(sim, obs, media, cfg());
  s->put("k1", "v1");
  s->put("k2", "v2");
  sim.run_until(sim::msec(10));  // both synced
  const std::size_t intact = media.log.size();
  s->put("doomed", "never-made-it");
  s->crash(9);  // 9 garbage bytes of the in-flight frame reach the platter
  s.reset();
  EXPECT_EQ(media.torn_writes, 1u);
  EXPECT_EQ(media.log.size(), intact + 9);

  s.emplace(sim, obs, media, cfg());
  EXPECT_EQ(s->recovery().replayed_records, 2u);
  EXPECT_EQ(s->recovery().truncated_bytes, 9u);
  EXPECT_EQ(media.log.size(), intact);  // recovery repaired the medium
  EXPECT_EQ(s->read("k1"), "v1");
  EXPECT_EQ(s->read("k2"), "v2");
  EXPECT_FALSE(s->read("doomed").has_value());

  // A torn stub shorter than a frame header is discarded the same way.
  s->put("doomed2", "x");
  s->crash(3);
  s.reset();
  s.emplace(sim, obs, media, cfg());
  EXPECT_EQ(s->recovery().truncated_bytes, 3u);
  EXPECT_FALSE(s->read("doomed2").has_value());
}

TEST_F(DurableTest, CorruptFrameTruncatesReplayAtTheDamage) {
  std::optional<DurableStore> s;
  s.emplace(sim, obs, media, cfg());
  s->put("k1", "v1");
  sim.run_until(sim::msec(10));
  s->put("k2", "v2");
  sim.run_until(sim::msec(20));
  ASSERT_GT(media.log.size(), 0u);
  media.log.back() ^= 0xff;  // bit-rot inside the last synced frame
  s->crash();
  s.reset();

  s.emplace(sim, obs, media, cfg());
  EXPECT_EQ(s->recovery().replayed_records, 1u);  // intact prefix only
  EXPECT_GT(s->recovery().truncated_bytes, 0u);
  EXPECT_EQ(s->read("k1"), "v1");
  EXPECT_FALSE(s->read("k2").has_value());
}

TEST_F(DurableTest, CheckpointPlusSuffixReplayEqualsFullLogReplay) {
  StableMedia full_media;
  std::optional<DurableStore> a;  // checkpoints mid-run
  std::optional<DurableStore> b;  // keeps the whole log
  a.emplace(sim, obs, media, cfg("a"));
  b.emplace(sim, obs, full_media, cfg("b"));
  for (int i = 0; i < 20; ++i) {
    const std::string key = "k" + std::to_string(i % 5);
    const std::string value = "v" + std::to_string(i);
    a->put(key, value);
    b->put(key, value);
    if (i == 9) {
      a->checkpoint();  // syncs, seals, truncates a's log
      ASSERT_EQ(media.log.size(), 0u);
      ASSERT_GT(media.checkpoint.size(), 0u);
    }
    if (i == 14) {
      a->erase("k1");
      b->erase("k1");
    }
  }
  a->sync();
  b->sync();
  a->crash();
  b->crash();
  a.reset();
  b.reset();

  a.emplace(sim, obs, media, cfg("a"));
  b.emplace(sim, obs, full_media, cfg("b"));
  EXPECT_TRUE(a->recovery().checkpoint_loaded);
  EXPECT_FALSE(b->recovery().checkpoint_loaded);
  EXPECT_GT(a->recovery().base_lsn, 1u);
  EXPECT_LT(a->recovery().replayed_records, b->recovery().replayed_records);
  // Same live state, per-key versions included — and the same lsn cursor,
  // so post-recovery writes continue identically.
  EXPECT_TRUE(a->store() == b->store());
  EXPECT_EQ(a->next_lsn(), b->next_lsn());
}

TEST_F(DurableTest, ReplayIsIdempotentAcrossDoubleRestart) {
  std::optional<DurableStore> s;
  s.emplace(sim, obs, media, cfg());
  for (int i = 0; i < 12; ++i) {
    s->put("k" + std::to_string(i % 4), "v" + std::to_string(i));
  }
  s->erase("k2");
  s->checkpoint();
  s->put("late", "tail-record");
  s->sync();
  s->crash();
  s.reset();

  s.emplace(sim, obs, media, cfg());
  const ccontrol::ObjectStore first = s->store();
  const std::uint64_t first_lsn = s->next_lsn();
  s->crash();  // immediately crash again: nothing new written
  s.reset();

  s.emplace(sim, obs, media, cfg());
  EXPECT_TRUE(s->store() == first);
  EXPECT_EQ(s->next_lsn(), first_lsn);
  EXPECT_EQ(s->read("late"), "tail-record");
}

TEST_F(DurableTest, CorruptCheckpointFallsBackToLogReplay) {
  std::optional<DurableStore> s;
  s.emplace(sim, obs, media, cfg());
  s->put("k", "v");
  s->checkpoint();
  s->put("k2", "v2");
  s->sync();
  s->crash();
  s.reset();
  ASSERT_GT(media.checkpoint.size(), 0u);
  media.checkpoint[media.checkpoint.size() / 2] ^= 0xff;

  s.emplace(sim, obs, media, cfg());
  EXPECT_TRUE(s->recovery().checkpoint_corrupt);
  EXPECT_FALSE(s->recovery().checkpoint_loaded);
  // Only the post-checkpoint suffix survives: the snapshot's content is
  // gone (atomic snapshot writes make this tampering-only), but the
  // replayer never parses the damaged blob.
  EXPECT_EQ(s->read("k2"), "v2");
  EXPECT_FALSE(s->read("k").has_value());
}

TEST_F(DurableTest, CheckpointBoundsLogUnderSustainedWrites) {
  DurableConfig c = cfg();
  c.checkpoint_log_bytes = 2048;
  DurableStore s(sim, obs, media, c);
  for (int i = 0; i < 400; ++i) {
    sim.schedule_at(sim::msec(2) * i, [&s, i] {
      s.put("k" + std::to_string(i % 8), std::string(32, 'x'));
    });
  }
  sim.run();
  EXPECT_GT(media.checkpoints, 1u);  // compaction ran repeatedly
  // Peak log = trigger threshold + at most one group-commit batch.
  const std::size_t slack = 1024;
  EXPECT_LE(s.max_log_bytes(), c.checkpoint_log_bytes + slack);

  fault::Invariants inv;
  inv.check_log_bounded("replica", s.max_log_bytes(),
                        c.checkpoint_log_bytes + slack);
  EXPECT_TRUE(inv.ok());
  inv.check_log_bounded("replica", c.checkpoint_log_bytes + slack + 1,
                        c.checkpoint_log_bytes + slack);
  EXPECT_FALSE(inv.ok());
}

TEST_F(DurableTest, CheckpointGcsExpiredTombstones) {
  DurableConfig c = cfg();
  c.tombstone_ttl = sim::msec(100);
  std::optional<DurableStore> s;
  s.emplace(sim, obs, media, c);
  s->put("k", "v");
  s->erase("k");  // tombstone stamped at t=0
  sim.run_until(sim::msec(200));  // past the TTL
  s->checkpoint();
  EXPECT_TRUE(s->store().tombstones().empty());
  s->crash();
  s.reset();
  s.emplace(sim, obs, media, c);
  EXPECT_TRUE(s->store().tombstones().empty());
  EXPECT_FALSE(s->read("k").has_value());
}

TEST_F(DurableTest, AntiEntropyPropagatesValuesAndDeletions) {
  StableMedia media1;
  DurableStore s0(sim, obs, media, cfg("s0"));
  DurableStore s1(sim, obs, media1, cfg("s1"));

  s0.put("k", "v1");
  s0.sync();
  auto pull = [](DurableStore& to, DurableStore& from) {
    return AntiEntropy::apply_reply(
        to, AntiEntropy::make_reply(from, AntiEntropy::encode_summary(to)));
  };
  EXPECT_EQ(pull(s1, s0), 1u);
  EXPECT_EQ(s1.read("k"), "v1");
  EXPECT_EQ(pull(s1, s0), 0u);  // already converged: reply is empty
  EXPECT_TRUE(s0.store() == s1.store());

  // Deletion travels as a tombstone, not as silence.
  s0.erase("k");
  s0.sync();
  EXPECT_EQ(pull(s1, s0), 1u);
  EXPECT_FALSE(s1.read("k").has_value());
  EXPECT_TRUE(s0.store() == s1.store());

  // Anti-resurrection: a stale replica still holding the old value cannot
  // push it back — the tombstone's version dominates in both directions.
  StableMedia media2;
  DurableStore s2(sim, obs, media2, cfg("s2"));
  s2.put("k", "stale");  // version 1, below the tombstone's 2
  s2.sync();
  EXPECT_EQ(pull(s0, s2), 0u);  // stale value refused
  EXPECT_FALSE(s0.read("k").has_value());
  EXPECT_EQ(pull(s2, s0), 1u);  // tombstone adopted; stale copy dies
  EXPECT_FALSE(s2.read("k").has_value());
}

// End-to-end over rpc/: two replicas with bidirectional periodic pullers
// converge despite a randomized partition schedule cutting them apart
// while the workload runs.
TEST(DurableAntiEntropy, ConvergesUnderRandomizedPartitionSchedule) {
  Platform plat(29);
  sim::Simulator& sim = plat.simulator();
  net::Network& net = plat.network();

  StableMedia media0, media1;
  DurableConfig c0, c1;
  c0.name = "n1";
  c1.name = "n2";
  DurableStore s0(sim, plat.obs(), media0, c0);
  DurableStore s1(sim, plat.obs(), media1, c1);
  rpc::RpcServer srv0(net, {1, 9});
  rpc::RpcServer srv1(net, {2, 9});
  AntiEntropy::serve(srv0, s0);
  AntiEntropy::serve(srv1, s1);
  AeConfig ae0c, ae1c;
  ae0c.name = "n1";
  ae1c.name = "n2";
  ae0c.period = ae1c.period = sim::msec(50);
  AntiEntropy ae0(net, {1, 10}, {2, 9}, s0, ae0c);
  AntiEntropy ae1(net, {2, 10}, {1, 9}, s1, ae1c);

  // Each key has a fixed origin replica (independent origins would assign
  // tying versions that LWW cannot order — the documented workload rule).
  for (int i = 0; i < 60; ++i) {
    sim.schedule_at(sim::msec(10) * i, [&s0, &s1, i] {
      const int key_idx = i % 7;
      DurableStore& origin = (key_idx % 2 == 0) ? s0 : s1;
      origin.put("k" + std::to_string(key_idx), "v" + std::to_string(i));
      if (i == 30) origin.erase("k" + std::to_string(key_idx));
    });
  }
  // Randomized (seeded, deterministic) partition schedule over the write
  // window: repeated cuts of varying length, all healed before quiesce.
  sim::TimePoint t = 0;
  for (int j = 0; j < 5; ++j) {
    t += sim::msec(static_cast<std::int64_t>(sim.rng().uniform_int(40, 160)));
    const auto cut =
        sim::msec(static_cast<std::int64_t>(sim.rng().uniform_int(30, 120)));
    sim.schedule_at(t, [&net] { net.partition({1}, {2}); });
    sim.schedule_at(t + cut, [&net] { net.heal_partition(); });
  }
  sim.run_until(sim::sec(3));
  ae0.stop();
  ae1.stop();
  sim.run_until(sim::sec(4));  // drain in-flight pulls

  EXPECT_GT(ae0.keys_pulled() + ae1.keys_pulled(), 0u);
  EXPECT_TRUE(s0.store() == s1.store())
      << "replicas did not converge after heal + anti-entropy";
}

}  // namespace
}  // namespace coop::durable
