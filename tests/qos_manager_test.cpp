// mgmt::QosManager control-plane tests: the E6-style congestion story
// (scale down toward the floor, probe back up, restore), teardown when the
// contract floor is unreachable, and the compare() boundary semantics the
// whole loop rests on.
#include <gtest/gtest.h>

#include <optional>
#include <string_view>

#include "core/coop.hpp"

namespace coop {
namespace {

using obs::Category;
using obs::TraceEvent;

streams::QosSpec video() {
  return {.fps = 25, .frame_bytes = 4000,
          .latency_bound = sim::msec(200),
          .jitter_bound = sim::msec(50),
          .min_fps = 5};
}

/// Minimum "fps" attribute across trace events with the given name;
/// nullopt if none were recorded.
std::optional<double> min_fps_attr(const obs::Tracer& t,
                                   std::string_view name) {
  std::optional<double> out;
  for (const TraceEvent& e : t.snapshot()) {
    if (e.category != Category::kStream || std::string_view(e.name) != name)
      continue;
    for (std::uint8_t i = 0; i < e.attr_count; ++i) {
      if (std::string_view(e.attrs[i].key) != "fps") continue;
      if (!out || e.attrs[i].value < *out) out = e.attrs[i].value;
    }
  }
  return out;
}

bool has_event(const obs::Tracer& t, std::string_view name) {
  for (const TraceEvent& e : t.snapshot()) {
    if (e.category == Category::kStream && std::string_view(e.name) == name)
      return true;
  }
  return false;
}

TEST(QosManagerPlane, ScalesDownUnderBandwidthDropAndRestores) {
  Platform platform(/*seed=*/21);
  auto& sim = platform.simulator();
  auto& net = platform.network();
  const net::LinkModel roomy{.latency = sim::msec(20),
                             .bandwidth_bps = 10e6};
  net.set_default_link(roomy);

  streams::MediaSource src(sim, 1, video());
  streams::StreamBinding binding(net, src, {1, 1}, net::Address{2, 1});
  streams::MediaSink sink(net, {2, 1});
  streams::QosMonitor monitor(sim, sink, video());

  mgmt::QosManager plane(sim, platform.obs());
  plane.manage("video", monitor, src, video());
  EXPECT_EQ(plane.managed_count(), 1u);
  EXPECT_EQ(plane.state("video"), mgmt::BindingState::kNominal);

  // t=5s..25s the access link collapses to 300 kbps — the contract's
  // 800 kbps no longer fits and only ~9 fps get through.
  sim.schedule_at(sim::sec(5), [&net] {
    net.set_default_link({.latency = sim::msec(20),
                          .bandwidth_bps = 300e3});
  });
  sim.schedule_at(sim::sec(25), [&net, roomy] {
    net.set_default_link(roomy);
  });
  mgmt::BindingState mid_state = mgmt::BindingState::kNominal;
  double mid_fps = 0;
  sim.schedule_at(sim::sec(12), [&] {
    mid_state = plane.state("video");
    mid_fps = plane.operating_fps("video");
  });

  src.start();
  platform.run_until(sim::sec(60));

  // During congestion the loop had stepped the rate down toward the
  // floor and entered the degraded state.
  EXPECT_EQ(mid_state, mgmt::BindingState::kDegraded);
  EXPECT_LT(mid_fps, video().fps);
  const auto& metrics = platform.metrics();
  EXPECT_GE(metrics.value("mgmt.qos.video.scale_downs"), 2.0);
  const auto lowest = min_fps_attr(platform.tracer(), "qos_scale_down");
  ASSERT_TRUE(lowest.has_value());
  EXPECT_LE(*lowest, video().fps / 4);         // well on the way to min_fps
  EXPECT_GE(*lowest, video().min_fps);         // but never below the floor

  // After the link recovers the loop probes back up and restores the
  // contract: nominal state, operating point back at 25 fps.
  EXPECT_EQ(plane.state("video"), mgmt::BindingState::kNominal);
  EXPECT_DOUBLE_EQ(plane.operating_fps("video"), video().fps);
  EXPECT_DOUBLE_EQ(src.fps(), video().fps);
  EXPECT_DOUBLE_EQ(metrics.value("mgmt.qos.video.operating_fps"),
                   video().fps);
  EXPECT_DOUBLE_EQ(metrics.value("mgmt.qos.video.state"), 0.0);
  EXPECT_GE(metrics.value("mgmt.qos.video.scale_ups"), 1.0);
  EXPECT_GE(metrics.value("mgmt.qos.video.restores"), 1.0);
  EXPECT_EQ(metrics.value("mgmt.qos.video.teardowns"), 0.0);

  // Every decision left a trace event behind.
  EXPECT_TRUE(has_event(platform.tracer(), "qos_scale_down"));
  EXPECT_TRUE(has_event(platform.tracer(), "qos_degraded"));
  EXPECT_TRUE(has_event(platform.tracer(), "qos_scale_up"));
  EXPECT_TRUE(has_event(platform.tracer(), "qos_restored"));
  EXPECT_FALSE(has_event(platform.tracer(), "qos_teardown"));
}

TEST(QosManagerPlane, TearsDownWhenFloorUnreachable) {
  Platform platform(/*seed=*/22);
  auto& sim = platform.simulator();
  auto& net = platform.network();
  net.set_default_link({.latency = sim::msec(20), .bandwidth_bps = 10e6});

  streams::MediaSource src(sim, 1, video());
  streams::StreamBinding binding(net, src, {1, 1}, net::Address{2, 1});
  streams::MediaSink sink(net, {2, 1});
  streams::QosMonitor monitor(sim, sink, video());

  mgmt::QosManager plane(sim, platform.obs());
  int teardowns_seen = 0;
  std::uint64_t emitted_at_teardown = 0;
  plane.manage("video", monitor, src, video(), [&] {
    ++teardowns_seen;
    emitted_at_teardown = src.frames_emitted();
  });

  // The path dies at t=3s and never comes back; achieved fps hits zero,
  // which is below the contract floor — after two such windows the
  // binding must be torn down, not kept on life support.
  sim.schedule_at(sim::sec(3), [&net] { net.partition({1}, {2}); });
  src.start();
  platform.run_until(sim::sec(10));

  EXPECT_EQ(plane.state("video"), mgmt::BindingState::kTornDown);
  EXPECT_EQ(teardowns_seen, 1);
  const auto& metrics = platform.metrics();
  EXPECT_EQ(metrics.value("mgmt.qos.video.teardowns"), 1.0);
  EXPECT_DOUBLE_EQ(metrics.value("mgmt.qos.video.state"), 2.0);
  EXPECT_TRUE(has_event(platform.tracer(), "qos_teardown"));
  // The source was stopped as part of teardown: no frames were emitted
  // after the callback ran.
  EXPECT_EQ(src.frames_emitted(), emitted_at_teardown);
  EXPECT_GT(emitted_at_teardown, 0u);
}

TEST(QosManagerPlane, ReleaseStopsManagementWithoutTeardown) {
  Platform platform(/*seed=*/23);
  auto& sim = platform.simulator();
  auto& net = platform.network();
  net.set_default_link(net::LinkModel::lan());

  streams::MediaSource src(sim, 1, video());
  streams::StreamBinding binding(net, src, {1, 1}, net::Address{2, 1});
  streams::MediaSink sink(net, {2, 1});
  streams::QosMonitor monitor(sim, sink, video());

  mgmt::QosManager plane(sim, platform.obs());
  bool tore_down = false;
  plane.manage("video", monitor, src, video(), [&] { tore_down = true; });
  plane.release("video");
  EXPECT_EQ(plane.managed_count(), 0u);

  src.start();
  platform.run_until(sim::sec(3));
  // Windows still tick (the monitor is alive) but the released binding
  // neither reacts nor tears down.
  EXPECT_FALSE(tore_down);
  EXPECT_DOUBLE_EQ(src.fps(), video().fps);
}

TEST(QosCompare, FpsBoundariesAreStrict) {
  const streams::QosSpec spec = video();
  streams::QosReport r;
  r.mean_latency_us = 0;
  r.jitter_us = 0;

  // Exactly at the tolerance-scaled contract rate: still healthy.
  r.achieved_fps = spec.fps * 0.85;
  EXPECT_EQ(streams::compare(spec, r), streams::QosVerdict::kHealthy);
  // Just below: degraded.
  r.achieved_fps = spec.fps * 0.85 - 1e-9;
  EXPECT_EQ(streams::compare(spec, r), streams::QosVerdict::kDegraded);
  // Exactly at the tolerance-scaled floor: degraded, not unacceptable.
  r.achieved_fps = spec.min_fps * 0.85;
  EXPECT_EQ(streams::compare(spec, r), streams::QosVerdict::kDegraded);
  // Just below the floor: unacceptable.
  r.achieved_fps = spec.min_fps * 0.85 - 1e-9;
  EXPECT_EQ(streams::compare(spec, r), streams::QosVerdict::kUnacceptable);
}

TEST(QosCompare, LatencyAndJitterBoundariesAreInclusive) {
  const streams::QosSpec spec = video();
  streams::QosReport r;
  r.achieved_fps = spec.fps;

  // Exactly at the latency bound is within contract (strict >).
  r.mean_latency_us = static_cast<double>(spec.latency_bound);
  EXPECT_EQ(streams::compare(spec, r), streams::QosVerdict::kHealthy);
  r.mean_latency_us = static_cast<double>(spec.latency_bound) + 1;
  EXPECT_EQ(streams::compare(spec, r), streams::QosVerdict::kDegraded);

  r.mean_latency_us = 0;
  r.jitter_us = static_cast<double>(spec.jitter_bound);
  EXPECT_EQ(streams::compare(spec, r), streams::QosVerdict::kHealthy);
  r.jitter_us = static_cast<double>(spec.jitter_bound) + 1;
  EXPECT_EQ(streams::compare(spec, r), streams::QosVerdict::kDegraded);
}

TEST(QosCompare, CustomToleranceShiftsTheFpsBoundary) {
  const streams::QosSpec spec = video();
  streams::QosReport r;
  r.achieved_fps = 20;  // 80% of contract
  EXPECT_EQ(streams::compare(spec, r, 0.85),
            streams::QosVerdict::kDegraded);
  EXPECT_EQ(streams::compare(spec, r, 0.75),
            streams::QosVerdict::kHealthy);
}

}  // namespace
}  // namespace coop
