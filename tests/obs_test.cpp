// Tests for the coop_obs layer: metrics registry, tracer ring, exporters,
// and the integration seams (Platform/Network/bench artifacts).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <string_view>

#include "core/coop.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "obs/trace.hpp"

namespace coop::obs {
namespace {

TEST(MetricsRegistry, CreatesInstrumentsOnDemand) {
  MetricsRegistry m;
  EXPECT_FALSE(m.contains("a.count"));
  util::Counter& c = m.counter("a.count");
  c.inc(3);
  EXPECT_TRUE(m.contains("a.count"));
  // Same name returns the same instrument.
  EXPECT_EQ(&m.counter("a.count"), &c);
  EXPECT_DOUBLE_EQ(m.value("a.count"), 3.0);

  m.gauge("a.gauge").set(1.5);
  EXPECT_DOUBLE_EQ(m.value("a.gauge"), 1.5);
  m.summary("a.sum").add(7.0);
  m.histogram("a.hist", 0.0, 10.0, 5).add(2.0);
  EXPECT_EQ(m.size(), 4u);
}

TEST(MetricsRegistry, PolledViewsReadThroughAndRetireFrozen) {
  MetricsRegistry m;
  double live = 10.0;
  m.expose("mod.depth", [&] { return live; });
  EXPECT_DOUBLE_EQ(m.value("mod.depth"), 10.0);
  live = 42.0;
  EXPECT_DOUBLE_EQ(m.value("mod.depth"), 42.0);

  // Retirement freezes the final value into an owned gauge, so reading
  // after the module (here: `live`) is gone stays safe and correct.
  m.retire_polled("mod.");
  live = -1.0;
  EXPECT_DOUBLE_EQ(m.value("mod.depth"), 42.0);
}

TEST(MetricsRegistry, ForEachVisitsSortedKeys) {
  MetricsRegistry m;
  m.counter("b");
  m.counter("a");
  m.counter("c");
  std::string order;
  m.for_each([&](const std::string& name, MetricKind) { order += name; });
  EXPECT_EQ(order, "abc");
}

TEST(MetricsRegistry, ToJsonSnapshotsEveryKind) {
  MetricsRegistry m;
  m.counter("n.count").inc(2);
  m.gauge("n.gauge").set(1.5);
  m.summary("n.sum").add(4.0);
  m.histogram("n.hist", 0.0, 2.0, 2).add(0.5);
  m.expose("n.view", [] { return 9.0; });
  const std::string json = m.to_json();
  EXPECT_EQ(json,
            "{\"n.count\":2,"
            "\"n.gauge\":1.5,"
            "\"n.hist\":{\"lo\":0,\"hi\":2,\"total\":1,\"nan\":0,"
            "\"p50\":0.5,\"p95\":0.5,\"p99\":0.5,\"max\":0.5,"
            "\"buckets\":[1,0]},"
            "\"n.sum\":{\"count\":1,\"mean\":4,\"min\":4,\"max\":4,"
            "\"p50\":4,\"p95\":4,\"p99\":4},"
            "\"n.view\":9}");
}

TEST(Tracer, RecordsEventsAndSpans) {
  Tracer t(16);
  t.event(100, Category::kNet, "send", {{"bytes", 64}});
  t.span(100, 250, Category::kRpc, "rpc", {{"req", 1}});
  ASSERT_EQ(t.size(), 2u);
  const auto events = t.snapshot();
  EXPECT_EQ(events[0].ts, 100);
  EXPECT_EQ(events[0].dur, 0);
  EXPECT_STREQ(events[0].name, "send");
  EXPECT_EQ(events[1].dur, 150);
  EXPECT_EQ(events[1].category, Category::kRpc);
}

TEST(Tracer, RingWrapsKeepingMostRecent) {
  Tracer t(4);
  for (int i = 0; i < 10; ++i)
    t.event(i, Category::kSim, "e", {{"i", static_cast<double>(i)}});
  EXPECT_EQ(t.size(), 4u);
  EXPECT_EQ(t.recorded(), 10u);
  EXPECT_EQ(t.dropped(), 6u);
  const auto events = t.snapshot();
  ASSERT_EQ(events.size(), 4u);
  // Oldest-first snapshot of the surviving tail: ts 6,7,8,9.
  for (int i = 0; i < 4; ++i) EXPECT_EQ(events[static_cast<size_t>(i)].ts, 6 + i);
}

TEST(Tracer, CategoryFilterSuppressesRecords) {
  Tracer t(8);
  t.set_category_enabled(Category::kNet, false);
  t.event(1, Category::kNet, "send");
  t.event(2, Category::kRpc, "call");
  EXPECT_EQ(t.size(), 1u);
  EXPECT_FALSE(t.enabled(Category::kNet));
  t.set_enabled(false);
  t.event(3, Category::kRpc, "call");
  EXPECT_EQ(t.size(), 1u);
}

TEST(Tracer, ExportsJsonl) {
  Tracer t(8);
  t.event(10, Category::kNet, "send", {{"bytes", 64}});
  t.span(20, 30, Category::kLock, "grant");
  std::ostringstream out;
  t.export_jsonl(out);
  EXPECT_EQ(out.str(),
            "{\"ts\":10,\"dur\":0,\"cat\":\"net\",\"name\":\"send\","
            "\"args\":{\"bytes\":64}}\n"
            "{\"ts\":20,\"dur\":10,\"cat\":\"lock\",\"name\":\"grant\","
            "\"args\":{}}\n");
}

TEST(Tracer, ExportsChromeTraceFormat) {
  Tracer t(8);
  t.event(10, Category::kNet, "send", {{"bytes", 64}});
  t.span(20, 30, Category::kLock, "grant");
  std::ostringstream out;
  t.export_chrome(out);
  const std::string json = out.str();
  // Structural checks: the traceEvents array form with spans as ph:"X"
  // (with dur) and instants as ph:"i".
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"dur\":10"), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
}

TEST(Obs, ScopedDefaultInstallsAndRestores) {
  EXPECT_EQ(default_obs(), nullptr);
  {
    Obs obs;
    ScopedDefaultObs ambient(&obs);
    EXPECT_EQ(default_obs(), &obs);
    {
      Obs inner;
      ScopedDefaultObs nested(&inner);
      EXPECT_EQ(default_obs(), &inner);
    }
    EXPECT_EQ(default_obs(), &obs);
  }
  EXPECT_EQ(default_obs(), nullptr);
}

TEST(Obs, PlatformRecordsNetworkMetricsAndSimTrace) {
  Platform p(/*seed=*/7);
  struct Sink : net::Endpoint {
    int got = 0;
    void on_message(const net::Message&) override { ++got; }
  } sink;
  const net::Address a{1, 1}, b{2, 1};
  p.network().attach(b, sink);
  p.network().send({.src = a, .dst = b, .payload = "hello"});
  p.run();

  EXPECT_EQ(sink.got, 1);
  EXPECT_DOUBLE_EQ(p.metrics().value("net.sent"), 1.0);
  EXPECT_DOUBLE_EQ(p.metrics().value("net.delivered"), 1.0);
  // stats() is now a view over the same registry counters.
  EXPECT_EQ(p.network().stats().sent, 1u);
  EXPECT_EQ(p.network().stats().delivered, 1u);

  // The step hook traced kernel activity; the network traced the send.
  bool saw_step = false, saw_send = false, saw_deliver = false;
  for (const TraceEvent& e : p.tracer().snapshot()) {
    if (e.category == Category::kSim) saw_step = true;
    if (e.category == Category::kNet &&
        std::string_view(e.name) == "send") saw_send = true;
    if (e.category == Category::kNet &&
        std::string_view(e.name) == "deliver") saw_deliver = true;
  }
  EXPECT_TRUE(saw_step);
  EXPECT_TRUE(saw_send);
  EXPECT_TRUE(saw_deliver);
}

TEST(Obs, PlatformsShareAmbientDefaultObs) {
  Obs shared;
  ScopedDefaultObs ambient(&shared);
  {
    Platform p1;
    p1.network().send({.src = {1, 1}, .dst = {2, 1}, .payload = "x"});
    p1.run();
  }
  {
    Platform p2;
    p2.network().send({.src = {1, 1}, .dst = {2, 1}, .payload = "y"});
    p2.run();
  }
  // Both short-lived platforms aggregated into the one ambient Obs — the
  // property the bench harness relies on.
  EXPECT_DOUBLE_EQ(shared.metrics.value("net.sent"), 2.0);
}

TEST(Obs, WriteBenchArtifactsEmitsJsonAndTrace) {
  Obs obs;
  obs.metrics.counter("x.count").inc(5);
  obs.tracer.event(1, Category::kApp, "tick");
  obs.meta.note_platform(42);
  obs.meta.knobs["tag"] = "selftest";
  ASSERT_TRUE(write_bench_artifacts(obs, "selftest", "."));

  std::ifstream metrics("BENCH_selftest.json");
  ASSERT_TRUE(metrics.good());
  std::stringstream ms;
  ms << metrics.rdbuf();
  EXPECT_NE(ms.str().find("\"x.count\":5"), std::string::npos);
  // The artifact carries run provenance and the critical-path breakdown
  // alongside the metrics snapshot.
  EXPECT_NE(ms.str().find("\"meta\":"), std::string::npos);
  EXPECT_NE(ms.str().find("\"first_seed\":42"), std::string::npos);
  EXPECT_NE(ms.str().find("\"tag\":\"selftest\""), std::string::npos);
  EXPECT_NE(ms.str().find("\"wall_ms\":"), std::string::npos);
  EXPECT_NE(ms.str().find("\"latency_breakdown\":"), std::string::npos);
  EXPECT_NE(ms.str().find("\"buckets\":"), std::string::npos);

  std::ifstream trace("BENCH_selftest.trace.json");
  ASSERT_TRUE(trace.good());
  std::stringstream ts;
  ts << trace.rdbuf();
  EXPECT_NE(ts.str().find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(ts.str().find("\"tick\""), std::string::npos);

  std::remove("BENCH_selftest.json");
  std::remove("BENCH_selftest.trace.json");
}

}  // namespace
}  // namespace coop::obs
