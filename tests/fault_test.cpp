// Tests for the deterministic chaos plane: scripted fault timelines,
// seeded chaos schedules, wire integrity, safety invariants and
// recovery-latency trace mining.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "fault/fault.hpp"
#include "fault/invariants.hpp"
#include "net/network.hpp"
#include "obs/obs.hpp"
#include "sim/simulator.hpp"

namespace coop::fault {
namespace {

class Recorder : public net::Endpoint {
 public:
  explicit Recorder(sim::Simulator& sim) : sim_(sim) {}
  void on_message(const net::Message& msg) override {
    arrivals.push_back({msg.payload.str(), sim_.now()});
  }
  std::vector<std::pair<std::string, sim::TimePoint>> arrivals;

 private:
  sim::Simulator& sim_;
};

class FaultPlanTest : public ::testing::Test {
 protected:
  FaultPlanTest() : sim(11), net(sim), rx(sim) {
    net.attach({2, 1}, rx);
    net.set_default_link({.latency = sim::msec(10), .jitter = 0,
                          .bandwidth_bps = 0 /* infinite */, .loss = 0});
  }

  void send_at(sim::TimePoint t, std::string payload) {
    sim.schedule_at(t, [this, payload] {
      net.send({.src = {1, 1}, .dst = {2, 1}, .payload = payload});
    });
  }

  sim::Simulator sim;
  net::Network net;
  Recorder rx;
};

TEST_F(FaultPlanTest, ScriptedCrashRestartLifecycle) {
  FaultPlan plan(net);
  std::vector<net::NodeId> crashed, restarted;
  plan.crash(sim::msec(100), 2, sim::msec(100))
      .on_crash([&](net::NodeId n) { crashed.push_back(n); })
      .on_restart([&](net::NodeId n) { restarted.push_back(n); });
  plan.arm();

  send_at(sim::msec(50), "before");   // delivered at 60ms
  send_at(sim::msec(150), "during");  // node down: dropped
  send_at(sim::msec(250), "after");   // delivered at 260ms
  sim.run();

  ASSERT_EQ(rx.arrivals.size(), 2u);
  EXPECT_EQ(rx.arrivals[0].first, "before");
  EXPECT_EQ(rx.arrivals[1].first, "after");
  EXPECT_EQ(crashed, std::vector<net::NodeId>{2});
  EXPECT_EQ(restarted, std::vector<net::NodeId>{2});
  EXPECT_EQ(plan.injected().crashes, 1u);
  EXPECT_EQ(plan.injected().restarts, 1u);
  EXPECT_EQ(net.obs().metrics.counter("fault.crashes").value(), 1u);
  EXPECT_EQ(net.obs().metrics.counter("fault.restarts").value(), 1u);
}

TEST_F(FaultPlanTest, OverlappingCrashWindowsForOneNodeAreCoalesced) {
  // Two crash lifecycles racing on one node would let the second restart
  // re-create protocol objects whose predecessors are still alive.  arm()
  // keeps the first window, drops the overlapping spec, and accepts a
  // back-to-back spec starting exactly at the restart instant.
  FaultPlan plan(net);
  std::vector<net::NodeId> crashed, restarted;
  plan.crash(sim::msec(100), 2, sim::msec(100))
      .crash(sim::msec(150), 2, sim::msec(100))   // inside the first window
      .crash(sim::msec(200), 2, sim::msec(50))    // back-to-back: kept
      .on_crash([&](net::NodeId n) { crashed.push_back(n); })
      .on_restart([&](net::NodeId n) { restarted.push_back(n); });
  plan.arm();
  sim.run();

  EXPECT_EQ(crashed.size(), 2u);
  EXPECT_EQ(restarted.size(), 2u);
  EXPECT_EQ(plan.injected().crashes, 2u);
  EXPECT_EQ(plan.injected().restarts, 2u);
}

TEST_F(FaultPlanTest, ScriptedPartitionBlocksOnlyDuringWindow) {
  FaultPlan plan(net);
  plan.partition(sim::msec(100), {1}, sim::msec(200));
  plan.arm();

  send_at(sim::msec(50), "before");
  send_at(sim::msec(200), "during");
  send_at(sim::msec(350), "after");
  sim.run();

  ASSERT_EQ(rx.arrivals.size(), 2u);
  EXPECT_EQ(rx.arrivals[0].first, "before");
  EXPECT_EQ(rx.arrivals[1].first, "after");
  EXPECT_EQ(plan.injected().partitions, 1u);
  EXPECT_EQ(plan.injected().heals, 1u);
  EXPECT_EQ(net.stats().dropped_partition, 1u);
}

TEST_F(FaultPlanTest, DegradeWindowAddsLossThenClears) {
  FaultPlan plan(net);
  plan.degrade(sim::msec(100), sim::msec(200),
               {.extra_loss = 1.0});  // total blackout window
  plan.arm();

  send_at(sim::msec(50), "before");
  send_at(sim::msec(200), "during");
  send_at(sim::msec(350), "after");
  sim.run();

  ASSERT_EQ(rx.arrivals.size(), 2u);
  EXPECT_EQ(net.stats().dropped_loss, 1u);
  EXPECT_EQ(plan.injected().degrade_windows, 1u);
  EXPECT_FALSE(net.disturbance().active());  // window cleaned up
}

TEST_F(FaultPlanTest, DegradeWindowAddsLatency) {
  FaultPlan plan(net);
  plan.degrade(sim::msec(100), sim::msec(100),
               {.extra_latency = sim::msec(40)});
  plan.arm();

  send_at(sim::msec(150), "slow");
  sim.run();

  ASSERT_EQ(rx.arrivals.size(), 1u);
  EXPECT_EQ(rx.arrivals[0].second, sim::msec(200));  // 10 link + 40 extra
}

TEST_F(FaultPlanTest, CorruptedFramesNeverReachTheEndpoint) {
  FaultPlan plan(net);
  plan.corrupt(sim::msec(100), sim::msec(200), 1.0);
  plan.arm();

  send_at(sim::msec(50), "clean1");
  for (int i = 0; i < 10; ++i) {
    send_at(sim::msec(150 + i), "garbled" + std::to_string(i));
  }
  send_at(sim::msec(350), "clean2");
  sim.run();

  ASSERT_EQ(rx.arrivals.size(), 2u);
  EXPECT_EQ(rx.arrivals[0].first, "clean1");
  EXPECT_EQ(rx.arrivals[1].first, "clean2");
  EXPECT_EQ(plan.injected().corrupt_frames, 10u);
  EXPECT_EQ(net.stats().dropped_corrupt, 10u);

  Invariants inv;
  inv.check_corruption_contained(net.stats(), plan.injected().corrupt_frames);
  EXPECT_TRUE(inv.ok()) << inv.violations().front();
}

TEST_F(FaultPlanTest, DuplicatedFramesArriveTwice) {
  FaultPlan plan(net);
  plan.duplicate(sim::msec(100), sim::msec(100), 1.0);
  plan.arm();

  send_at(sim::msec(150), "twin");
  sim.run();

  ASSERT_EQ(rx.arrivals.size(), 2u);
  EXPECT_EQ(rx.arrivals[0].first, "twin");
  EXPECT_EQ(rx.arrivals[1].first, "twin");
  EXPECT_EQ(plan.injected().duplicate_frames, 1u);
}

TEST_F(FaultPlanTest, DelayWindowPostponesArrival) {
  FaultPlan plan(net);
  plan.delay(sim::msec(100), sim::msec(100), 1.0, sim::msec(70));
  plan.arm();

  send_at(sim::msec(150), "late");
  sim.run();

  ASSERT_EQ(rx.arrivals.size(), 1u);
  EXPECT_EQ(rx.arrivals[0].second, sim::msec(230));  // 10 link + 70 extra
  EXPECT_EQ(plan.injected().delayed_frames, 1u);
}

TEST_F(FaultPlanTest, DuplicateOfCorruptFrameCarriesTheCleanPayload) {
  // Duplication snapshots the frame before corruption mangles it: the
  // duplicate models an independent copy on the wire, and the injection
  // hook is not re-applied to it.
  FaultPlan plan(net);
  plan.corrupt(sim::msec(100), sim::msec(100), 1.0)
      .duplicate(sim::msec(100), sim::msec(100), 1.0);
  plan.arm();

  send_at(sim::msec(150), "payload");
  sim.run();

  ASSERT_EQ(rx.arrivals.size(), 1u);  // original dropped, duplicate clean
  EXPECT_EQ(rx.arrivals[0].first, "payload");
  EXPECT_EQ(net.stats().dropped_corrupt, 1u);
}

// ------------------------------------------------------------ chaos engine

// Runs a fixed workload under an engine-generated schedule and returns a
// fingerprint of everything observable.
std::string chaos_fingerprint(std::uint64_t engine_seed) {
  sim::Simulator sim(7);
  net::Network net(sim);
  Recorder rx(sim);
  net.attach({2, 1}, rx);
  net.set_default_link({.latency = sim::msec(5), .jitter = sim::msec(2),
                        .bandwidth_bps = 10e6, .loss = 0.01});

  FaultPlan plan(net);
  ChaosProfile profile;
  profile.nodes = {1, 2, 3};
  profile.horizon = sim::sec(2);
  profile.crashes = 2;
  profile.partitions = 1;
  profile.degrade_windows = 1;
  profile.corrupt_windows = 1;
  profile.duplicate_windows = 1;
  profile.delay_windows = 1;
  ChaosEngine engine(engine_seed);
  engine.populate(plan, profile);
  plan.arm();

  for (int i = 0; i < 200; ++i) {
    sim.schedule_at(sim::msec(10 * i), [&net, i] {
      net.send({.src = {1, 1}, .dst = {2, 1},
                .payload = "m" + std::to_string(i)});
    });
  }
  sim.run();

  std::string fp;
  for (const auto& [payload, at] : rx.arrivals) {
    fp += payload + "@" + std::to_string(at) + ";";
  }
  const net::NetworkStats& s = net.stats();
  fp += "|d" + std::to_string(s.delivered) + "l" +
        std::to_string(s.dropped_loss) + "p" +
        std::to_string(s.dropped_partition) + "c" +
        std::to_string(s.dropped_corrupt) + "n" +
        std::to_string(s.dropped_no_endpoint);
  const InjectedStats& inj = plan.injected();
  fp += "|i" + std::to_string(inj.crashes) + "," +
        std::to_string(inj.partitions) + "," +
        std::to_string(inj.corrupt_frames) + "," +
        std::to_string(inj.duplicate_frames) + "," +
        std::to_string(inj.delayed_frames);
  return fp;
}

TEST(ChaosEngineTest, SameSeedReproducesTheRunExactly) {
  const std::string a = chaos_fingerprint(1234);
  const std::string b = chaos_fingerprint(1234);
  EXPECT_EQ(a, b);
}

TEST(ChaosEngineTest, DifferentSeedsProduceDifferentSchedules) {
  EXPECT_NE(chaos_fingerprint(1), chaos_fingerprint(2));
}

// -------------------------------------------------------------- invariants

TEST(InvariantsTest, CleanEvidencePasses) {
  Invariants inv;
  inv.record_execution("srv#1:op1");
  inv.record_acknowledged("op1");
  inv.record_applied("op1");
  inv.record_state("a", "digest");
  inv.record_state("b", "digest");
  inv.record_view("a", 3, 2);
  inv.record_view("b", 3, 2);
  inv.check_all();
  EXPECT_TRUE(inv.ok());
}

TEST(InvariantsTest, DoubleExecutionWithinIncarnationIsViolation) {
  Invariants inv;
  inv.record_execution("srv#1:op1");
  inv.record_execution("srv#1:op1");
  inv.check_at_most_once();
  EXPECT_FALSE(inv.ok());
  EXPECT_NE(inv.violations().front().find("at-most-once"), std::string::npos);
}

TEST(InvariantsTest, ReExecutionAcrossIncarnationsIsAllowed) {
  // The replay cache dies with the server: keying executions by
  // incarnation encodes the per-incarnation at-most-once contract.
  Invariants inv;
  inv.record_execution("srv#1:op1");
  inv.record_execution("srv#2:op1");
  inv.check_at_most_once();
  EXPECT_TRUE(inv.ok());
}

TEST(InvariantsTest, AcknowledgedButUnappliedOpIsViolation) {
  Invariants inv;
  inv.record_acknowledged("op1");
  inv.check_acknowledged_durable();
  EXPECT_FALSE(inv.ok());
}

TEST(InvariantsTest, DivergentReplicasAreViolation) {
  Invariants inv;
  inv.record_state("a", "x");
  inv.record_state("b", "y");
  inv.check_convergence();
  EXPECT_FALSE(inv.ok());
}

TEST(InvariantsTest, ViewDisagreementIsViolation) {
  Invariants inv;
  inv.record_view("a", 3, 2);
  inv.record_view("b", 4, 2);
  inv.check_view_agreement();
  EXPECT_FALSE(inv.ok());
}

TEST(InvariantsTest, CorruptionLeakIsViolation) {
  net::NetworkStats stats;
  stats.dropped_corrupt = 3;
  Invariants inv;
  inv.check_corruption_contained(stats, 5);  // 2 frames unaccounted for
  EXPECT_FALSE(inv.ok());
  inv.clear();
  stats.dropped_loss = 2;  // the missing two died of loss first
  inv.check_corruption_contained(stats, 5);
  EXPECT_TRUE(inv.ok());
}

// ---------------------------------------------------------- trace mining

TEST(RecoveryLatencyTest, PairsOutageEndsWithRecoveries) {
  std::vector<obs::TraceEvent> events;
  const auto fault_event = [&](sim::TimePoint ts, const char* name) {
    obs::TraceEvent e;
    e.ts = ts;
    e.category = obs::Category::kFault;
    e.name = name;
    events.push_back(e);
  };
  obs::TraceEvent noise;  // non-fault categories must be ignored
  noise.ts = sim::msec(1);
  noise.category = obs::Category::kNet;
  noise.name = "recovered";
  events.push_back(noise);

  fault_event(sim::msec(100), "restart");
  fault_event(sim::msec(130), "recovered");  // 30ms
  fault_event(sim::msec(200), "heal");
  fault_event(sim::msec(220), "restart");    // consecutive outage-ends:
  fault_event(sim::msec(300), "recovered");  // measured from the latest
  fault_event(sim::msec(400), "recovered");  // unpaired: ignored

  const std::vector<sim::Duration> lat = recovery_latencies(events);
  ASSERT_EQ(lat.size(), 2u);
  EXPECT_EQ(lat[0], sim::msec(30));
  EXPECT_EQ(lat[1], sim::msec(80));
}

}  // namespace
}  // namespace coop::fault
