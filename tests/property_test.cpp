// Cross-module property tests: randomized sweeps checking invariants
// against oracles — percentiles vs std::nth_element, codec robustness on
// garbage, FIFO-channel exactness under chaos, causal ordering vs true
// happened-before, and membership churn convergence.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "groups/group_channel.hpp"
#include "groups/membership.hpp"
#include "net/fifo_channel.hpp"
#include "net/network.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"
#include "util/codec.hpp"
#include "util/stats.hpp"

namespace coop {
namespace {

// --- Summary vs oracle -------------------------------------------------------

class SummaryProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SummaryProperty, PercentilesMatchNthElementOracle) {
  sim::Rng rng(GetParam());
  util::Summary s;
  std::vector<double> data;
  const int n = static_cast<int>(rng.uniform_int(1, 500));
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(100, 40);
    s.add(x);
    data.push_back(x);
  }
  for (double q : {0.0, 0.25, 0.5, 0.9, 0.99, 1.0}) {
    std::vector<double> copy = data;
    const auto rank = static_cast<std::size_t>(
        q * static_cast<double>(copy.size() - 1) + 0.5);
    const auto idx = std::min(rank, copy.size() - 1);
    std::nth_element(copy.begin(), copy.begin() + static_cast<long>(idx),
                     copy.end());
    EXPECT_DOUBLE_EQ(s.percentile(q), copy[idx]) << "q=" << q << " n=" << n;
  }
  // Mean oracle.
  double sum = 0;
  for (double x : data) sum += x;
  EXPECT_NEAR(s.mean(), sum / n, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SummaryProperty,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

// --- Codec robustness ----------------------------------------------------------

TEST(CodecProperty, RandomGarbageNeverCrashesAndAlwaysTerminates) {
  sim::Rng rng(99);
  for (int trial = 0; trial < 2000; ++trial) {
    std::string garbage;
    const int len = static_cast<int>(rng.uniform_int(0, 64));
    for (int i = 0; i < len; ++i)
      garbage.push_back(static_cast<char>(rng.uniform_int(0, 255)));
    util::Reader r(garbage);
    // Interleave reads of every kind; the reader must stay in-bounds and
    // the failure flag must be monotone.
    bool was_failed = false;
    for (int op = 0; op < 8; ++op) {
      switch (rng.uniform_int(0, 3)) {
        case 0: r.get<std::uint64_t>(); break;
        case 1: r.get_string(); break;
        case 2: r.get_bytes(); break;
        default: r.get_vector<std::uint32_t>(); break;
      }
      if (was_failed) EXPECT_TRUE(r.failed());  // sticky
      was_failed = r.failed();
    }
    EXPECT_LE(r.remaining(), garbage.size());
  }
}

TEST(CodecProperty, WriterReaderRoundTripRandomSequences) {
  sim::Rng rng(7);
  for (int trial = 0; trial < 300; ++trial) {
    util::Writer w;
    std::vector<int> kinds;
    std::vector<std::uint64_t> ints;
    std::vector<std::string> strings;
    const int ops = static_cast<int>(rng.uniform_int(1, 20));
    for (int i = 0; i < ops; ++i) {
      if (rng.bernoulli(0.5)) {
        kinds.push_back(0);
        ints.push_back(rng.next());
        w.put(ints.back());
      } else {
        kinds.push_back(1);
        std::string s;
        const int len = static_cast<int>(rng.uniform_int(0, 32));
        for (int c = 0; c < len; ++c)
          s.push_back(static_cast<char>(rng.uniform_int(0, 255)));
        strings.push_back(s);
        w.put_string(s);
      }
    }
    const std::string buf = w.take();
    util::Reader r(buf);
    std::size_t ii = 0, si = 0;
    for (int kind : kinds) {
      if (kind == 0) {
        EXPECT_EQ(r.get<std::uint64_t>(), ints[ii++]);
      } else {
        EXPECT_EQ(r.get_string(), strings[si++]);
      }
    }
    EXPECT_TRUE(r.exhausted());
  }
}

// --- FIFO channel chaos ---------------------------------------------------------

class FifoChaos : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FifoChaos, ExactlyOnceInOrderUnderLossJitterAndFlaps) {
  sim::Simulator sim(GetParam());
  net::Network net(sim);
  net.set_default_link({.latency = sim::msec(10), .jitter = sim::msec(8),
                        .bandwidth_bps = 5e6, .loss = 0.15});
  net::FifoChannel a(net, {1, 1});
  net::FifoChannel b(net, {2, 1});
  std::vector<std::string> got;
  b.on_receive([&](const net::Address&, const std::string& p) {
    got.push_back(p);
  });
  const int kMsgs = 120;
  std::vector<std::string> sent_order;
  for (int i = 0; i < kMsgs; ++i) {
    sim.schedule_at(
        static_cast<sim::TimePoint>(sim.rng().uniform_int(0, sim::sec(5))),
        [&a, &sent_order, i] {
          sent_order.push_back(std::to_string(i));
          a.send({2, 1}, std::to_string(i));
        });
  }
  // A mid-run connectivity flap.
  sim.schedule_at(sim::sec(2), [&net] { net.partition({1}, {2}); });
  sim.schedule_at(sim::sec(4), [&net] { net.heal_partition(); });
  sim.run_until(sim::sec(60));
  ASSERT_EQ(got.size(), static_cast<std::size_t>(kMsgs));
  EXPECT_EQ(got, sent_order);  // exactly once, in send order
}

INSTANTIATE_TEST_SUITE_P(Seeds, FifoChaos,
                         ::testing::Values(11u, 22u, 33u, 44u, 55u, 66u));

// --- causal order vs true happened-before ---------------------------------------

// Build a causality oracle: message ids carry (sender, seq); each member,
// on delivering m and later broadcasting m', establishes m -> m'.  The
// property: no member delivers m' before any m with m -> m'.
class CausalProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CausalProperty, DeliveryRespectsHappenedBefore) {
  sim::Simulator sim(GetParam());
  net::Network net(sim);
  net.set_default_link({.latency = sim::msec(5), .jitter = sim::msec(4),
                        .bandwidth_bps = 10e6, .loss = 0.08});
  const std::size_t n = 4;
  std::vector<net::Address> addrs;
  for (std::size_t i = 0; i < n; ++i)
    addrs.push_back({static_cast<net::NodeId>(i + 1), 10});

  groups::ChannelConfig config{.ordering = groups::Ordering::kCausal,
                               .retransmit_timeout = sim::msec(25),
                               .max_retransmits = 60,
                               .local_echo = true};
  std::vector<std::unique_ptr<groups::GroupChannel>> chans;
  for (std::size_t i = 0; i < n; ++i)
    chans.push_back(
        std::make_unique<groups::GroupChannel>(net, addrs[i], 9, config));

  using MsgId = std::pair<std::size_t, std::uint64_t>;  // (sender, seq)
  // deps[m] = set of messages delivered at m's sender before m was sent.
  std::map<MsgId, std::set<MsgId>> deps;
  std::vector<std::vector<MsgId>> delivered(n);
  std::vector<std::set<MsgId>> seen_at(n);

  for (std::size_t i = 0; i < n; ++i) {
    chans[i]->set_members(addrs);
    chans[i]->on_deliver([&, i](const groups::Delivery& d) {
      const MsgId id{d.sender, d.seq};
      delivered[i].push_back(id);
      seen_at[i].insert(id);
    });
  }

  // Random broadcasts; each new message depends on everything its sender
  // has delivered so far.
  for (int round = 0; round < 40; ++round) {
    sim.schedule_at(round * sim::msec(15), [&, round] {
      const auto who = static_cast<std::size_t>(
          sim.rng().uniform_int(0, static_cast<std::int64_t>(n) - 1));
      const std::uint64_t seq =
          chans[who]->broadcast("r" + std::to_string(round));
      // local_echo already delivered it to `who`; remove self from deps.
      std::set<MsgId> d = seen_at[who];
      d.erase({who, seq});
      deps[{who, seq}] = std::move(d);
    });
  }
  sim.run();

  // Everyone delivered everything...
  for (std::size_t i = 0; i < n; ++i)
    ASSERT_EQ(delivered[i].size(), 40u) << "member " << i;
  // ...and never before a causal predecessor.
  for (std::size_t i = 0; i < n; ++i) {
    std::set<MsgId> so_far;
    for (const MsgId& m : delivered[i]) {
      for (const MsgId& dep : deps[m]) {
        EXPECT_TRUE(so_far.count(dep) != 0)
            << "member " << i << " delivered (" << m.first << ","
            << m.second << ") before its dependency (" << dep.first << ","
            << dep.second << ")";
      }
      so_far.insert(m);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CausalProperty,
                         ::testing::Values(3u, 13u, 23u, 33u, 43u));

// --- sequencer failover agreement --------------------------------------------------

class FailoverProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FailoverProperty, SurvivorsAgreeOnPostFailoverOrder) {
  sim::Simulator sim(GetParam());
  net::Network net(sim);
  net.set_default_link({.latency = sim::msec(4), .jitter = sim::msec(3),
                        .bandwidth_bps = 10e6, .loss = 0.05});
  const std::size_t n = 5;
  std::vector<net::Address> addrs;
  for (std::size_t i = 0; i < n; ++i)
    addrs.push_back({static_cast<net::NodeId>(i + 1), 10});
  groups::ChannelConfig config{.ordering = groups::Ordering::kTotal,
                               .retransmit_timeout = sim::msec(30),
                               .max_retransmits = 40,
                               .local_echo = true};
  std::vector<std::unique_ptr<groups::GroupChannel>> chans;
  std::vector<std::vector<std::string>> logs(n);
  for (std::size_t i = 0; i < n; ++i)
    chans.push_back(
        std::make_unique<groups::GroupChannel>(net, addrs[i], 4, config));
  for (std::size_t i = 0; i < n; ++i) {
    chans[i]->set_members(addrs);
    chans[i]->on_deliver([&logs, i](const groups::Delivery& d) {
      logs[i].push_back(d.payload);
    });
  }

  // Random broadcasts before, during and after the sequencer crash.
  for (int round = 0; round < 30; ++round) {
    sim.schedule_at(
        static_cast<sim::TimePoint>(sim.rng().uniform_int(0, sim::sec(2))),
        [&, round] {
          const auto who = static_cast<std::size_t>(
              sim.rng().uniform_int(1, static_cast<std::int64_t>(n) - 1));
          chans[who]->broadcast("m" + std::to_string(round));
        });
  }
  sim.schedule_at(sim::sec(1), [&] {
    net.crash(1);
    for (std::size_t i = 1; i < n; ++i)
      chans[i]->mark_failed(addrs[0]);
  });
  sim.run();

  // Survivors delivered identical sequences (pre- and post-failover
  // combined, from the survivors' perspective).
  for (std::size_t i = 2; i < n; ++i) {
    EXPECT_EQ(logs[i], logs[1]) << "survivor " << i << " diverged, seed "
                                << GetParam();
  }
  // Liveness: messages sent comfortably after the failover all arrived.
  EXPECT_GE(logs[1].size(), 25u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FailoverProperty,
                         ::testing::Values(7u, 17u, 27u, 37u, 47u, 57u));

// --- membership churn -----------------------------------------------------------

class ChurnProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChurnProperty, ViewConvergesToLiveJoinedMembers) {
  sim::Simulator sim(GetParam());
  net::Network net(sim);
  net.set_default_link({.latency = sim::msec(3), .jitter = sim::msec(2),
                        .bandwidth_bps = 10e6, .loss = 0.05});
  groups::MembershipConfig cfg;
  cfg.failure_timeout = sim::msec(800);
  groups::MembershipCoordinator coord(net, {100, 1}, cfg);

  const int kMembers = 6;
  std::vector<std::unique_ptr<groups::MembershipMember>> members;
  std::vector<bool> wants_in(kMembers, false);
  std::vector<bool> crashed(kMembers, false);
  for (int i = 0; i < kMembers; ++i) {
    members.push_back(std::make_unique<groups::MembershipMember>(
        net, net::Address{static_cast<net::NodeId>(i + 1), 1},
        net::Address{100, 1}, cfg));
  }

  // Random churn for 20 virtual seconds: joins, leaves, crashes,
  // recoveries (recovered members re-join).
  for (int step = 0; step < 60; ++step) {
    sim.schedule_at(step * sim::msec(300), [&, step] {
      const auto i = static_cast<std::size_t>(
          sim.rng().uniform_int(0, kMembers - 1));
      const auto node = static_cast<net::NodeId>(i + 1);
      switch (sim.rng().uniform_int(0, 3)) {
        case 0:
          if (!crashed[i]) {
            members[i]->join();
            wants_in[i] = true;
          }
          break;
        case 1:
          if (!crashed[i]) {
            members[i]->leave();
            wants_in[i] = false;
          }
          break;
        case 2:
          net.crash(node);
          crashed[i] = true;
          break;
        default:
          if (crashed[i]) {
            net.recover(node);
            crashed[i] = false;
            if (wants_in[i]) members[i]->join();
          }
          break;
      }
    });
  }
  // Quiescence: let the failure detector and join-retries settle.
  sim.run_until(sim::sec(40));

  std::set<net::Address> expected;
  for (int i = 0; i < kMembers; ++i) {
    if (wants_in[i] && !crashed[i])
      expected.insert({static_cast<net::NodeId>(i + 1), 1});
  }
  std::set<net::Address> actual(coord.view().members.begin(),
                                coord.view().members.end());
  EXPECT_EQ(actual, expected);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChurnProperty,
                         ::testing::Values(5u, 15u, 25u, 35u));

// --- whole-platform determinism ------------------------------------------------

// The reproducibility contract everything else rests on: the same seed
// and scenario yield byte-identical traffic statistics and delivery logs.
TEST(DeterminismProperty, IdenticalSeedsReplayIdentically) {
  auto run_scenario = [](std::uint64_t seed) {
    sim::Simulator sim(seed);
    net::Network net(sim);
    net.set_default_link({.latency = sim::msec(5), .jitter = sim::msec(4),
                          .bandwidth_bps = 5e6, .loss = 0.1});
    std::vector<net::Address> addrs = {{1, 1}, {2, 1}, {3, 1}};
    std::vector<std::unique_ptr<groups::GroupChannel>> chans;
    for (const auto& a : addrs)
      chans.push_back(std::make_unique<groups::GroupChannel>(
          net, a, 1,
          groups::ChannelConfig{.ordering = groups::Ordering::kTotal,
                                .retransmit_timeout = sim::msec(25),
                                .max_retransmits = 30,
                                .local_echo = true}));
    std::vector<std::pair<sim::TimePoint, std::string>> trace;
    for (auto& c : chans) {
      c->set_members(addrs);
      c->on_deliver([&trace, &sim](const groups::Delivery& d) {
        trace.emplace_back(sim.now(), d.payload);
      });
    }
    for (int i = 0; i < 30; ++i) {
      sim.schedule_at(
          static_cast<sim::TimePoint>(sim.rng().uniform_int(0, sim::sec(1))),
          [&chans, &sim, i] {
            chans[static_cast<std::size_t>(
                      sim.rng().uniform_int(0, 2))]
                ->broadcast("m" + std::to_string(i));
          });
    }
    sim.run();
    return std::make_tuple(trace, net.stats().sent, net.stats().delivered,
                           net.stats().bytes_sent, sim.events_processed());
  };
  EXPECT_EQ(run_scenario(2024), run_scenario(2024));
  EXPECT_NE(std::get<4>(run_scenario(2024)),
            std::get<4>(run_scenario(2025)));
}

// --- network accounting -----------------------------------------------------------

TEST(NetworkProperty, LinkByteAccountingMatchesTraffic) {
  sim::Simulator sim(1);
  net::Network net(sim);
  struct Sink : net::Endpoint {
    void on_message(const net::Message&) override {}
  } sink;
  net.attach({2, 1}, sink);
  std::uint64_t expected = 0;
  sim::Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    net::Message m{.src = {1, 1}, .dst = {2, 1}, .payload = {}};
    m.wire_size = static_cast<std::size_t>(rng.uniform_int(40, 2000));
    expected += m.wire_size;
    net.send(std::move(m));
  }
  sim.run();
  const auto* ls = net.link_state(1, 2);
  ASSERT_NE(ls, nullptr);
  EXPECT_EQ(ls->bytes, expected);
  EXPECT_EQ(net.stats().bytes_sent, expected);
  EXPECT_EQ(net.stats().delivered + net.stats().dropped_loss, 100u);
}

}  // namespace
}  // namespace coop
