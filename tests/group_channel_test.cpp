// Tests for reliable ordered group communication, including property-style
// randomized sweeps over lossy, jittery networks.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "groups/group_channel.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"

namespace coop::groups {
namespace {

struct Member {
  std::unique_ptr<GroupChannel> chan;
  std::vector<Delivery> log;
};

/// Builds an n-member group on one mcast id with the given config.
class Harness {
 public:
  Harness(std::size_t n, ChannelConfig config, std::uint64_t seed = 1)
      : sim(seed), net(sim) {
    std::vector<net::Address> addrs;
    for (std::size_t i = 0; i < n; ++i)
      addrs.push_back({static_cast<net::NodeId>(i + 1), 10});
    for (std::size_t i = 0; i < n; ++i) {
      auto m = std::make_unique<Member>();
      m->chan = std::make_unique<GroupChannel>(net, addrs[i], 42, config);
      members.push_back(std::move(m));
    }
    for (auto& m : members) {
      m->chan->set_members(addrs);
      Member* mp = m.get();
      m->chan->on_deliver([mp](const Delivery& d) { mp->log.push_back(d); });
    }
  }

  std::vector<std::string> payloads(std::size_t member) const {
    std::vector<std::string> out;
    for (const auto& d : members[member]->log) out.push_back(d.payload);
    return out;
  }

  sim::Simulator sim;
  net::Network net;
  std::vector<std::unique_ptr<Member>> members;
};

TEST(GroupChannel, BroadcastReachesAllMembersIncludingSelf) {
  Harness h(3, {.ordering = Ordering::kFifo});
  h.members[0]->chan->broadcast("hello");
  h.sim.run();
  for (std::size_t i = 0; i < 3; ++i) {
    ASSERT_EQ(h.members[i]->log.size(), 1u) << "member " << i;
    EXPECT_EQ(h.members[i]->log[0].payload, "hello");
    EXPECT_EQ(h.members[i]->log[0].sender, 0u);
  }
}

TEST(GroupChannel, SelfIndexMatchesMemberListPosition) {
  Harness h(3, {});
  EXPECT_EQ(h.members[0]->chan->self_index(), 0u);
  EXPECT_EQ(h.members[2]->chan->self_index(), 2u);
  EXPECT_EQ(h.members[0]->chan->member_count(), 3u);
}

TEST(GroupChannel, DeliveryCarriesOriginalSendTime) {
  Harness h(2, {});
  h.sim.run_until(sim::msec(500));
  h.members[0]->chan->broadcast("x");
  h.sim.run();
  ASSERT_EQ(h.members[1]->log.size(), 1u);
  EXPECT_EQ(h.members[1]->log[0].sent_at, sim::msec(500));
}

TEST(GroupChannel, ReliableUnderHeavyLoss) {
  Harness h(3, {.ordering = Ordering::kFifo,
                .retransmit_timeout = sim::msec(20),
                .max_retransmits = 50});
  h.net.set_default_link({.latency = sim::msec(2), .jitter = sim::msec(1),
                          .bandwidth_bps = 10e6, .loss = 0.30});
  for (int i = 0; i < 20; ++i)
    h.members[0]->chan->broadcast("m" + std::to_string(i));
  h.sim.run();
  for (std::size_t m = 1; m < 3; ++m) {
    ASSERT_EQ(h.members[m]->log.size(), 20u) << "member " << m;
    for (int i = 0; i < 20; ++i)
      EXPECT_EQ(h.members[m]->log[static_cast<size_t>(i)].payload,
                "m" + std::to_string(i));
  }
  EXPECT_GT(h.members[0]->chan->stats().retransmits, 0u);
}

TEST(GroupChannel, DuplicatesAreSuppressed) {
  Harness h(2, {.ordering = Ordering::kUnordered,
                .retransmit_timeout = sim::msec(5),  // fires before acks
                .max_retransmits = 20});
  // Slow link: the ack returns long after several retransmits went out.
  h.net.set_default_link({.latency = sim::msec(30), .jitter = 0,
                          .bandwidth_bps = 10e6, .loss = 0.0});
  h.members[0]->chan->broadcast("once");
  h.sim.run();
  EXPECT_EQ(h.members[1]->log.size(), 1u);
  EXPECT_GT(h.members[1]->chan->stats().duplicates, 0u);
}

TEST(GroupChannel, FifoOrderingRepairsNetworkReorder) {
  Harness h(2, {.ordering = Ordering::kFifo}, /*seed=*/7);
  h.net.set_default_link({.latency = sim::msec(10), .jitter = sim::msec(9),
                          .bandwidth_bps = 0, .loss = 0});
  for (int i = 0; i < 50; ++i)
    h.members[0]->chan->broadcast(std::to_string(i));
  h.sim.run();
  ASSERT_EQ(h.members[1]->log.size(), 50u);
  for (int i = 0; i < 50; ++i)
    EXPECT_EQ(h.members[1]->log[static_cast<size_t>(i)].payload,
              std::to_string(i));
}

TEST(GroupChannel, UnorderedMayDeliverOutOfOrder) {
  bool reordered = false;
  for (std::uint64_t seed = 1; seed < 30 && !reordered; ++seed) {
    Harness h(2, {.ordering = Ordering::kUnordered}, seed);
    h.net.set_default_link({.latency = sim::msec(10), .jitter = sim::msec(9),
                            .bandwidth_bps = 0, .loss = 0});
    for (int i = 0; i < 20; ++i)
      h.members[0]->chan->broadcast(std::to_string(i));
    h.sim.run();
    auto got = h.payloads(1);
    std::vector<std::string> want;
    for (int i = 0; i < 20; ++i) want.push_back(std::to_string(i));
    if (got != want) reordered = true;
  }
  EXPECT_TRUE(reordered);
}

TEST(GroupChannel, CausalOrderingHonoursReplyAfterQuestion) {
  // Classic scenario: member 0 asks, member 1 replies; member 2 must never
  // see the reply before the question, whatever the link speeds.
  Harness h(3, {.ordering = Ordering::kCausal});
  // Make 0 -> 2 slow and 1 -> 2 fast so the raw network would invert them.
  h.net.set_link(1, 3, {.latency = sim::msec(80), .jitter = 0,
                        .bandwidth_bps = 0, .loss = 0});
  h.net.set_link(2, 3, {.latency = sim::msec(1), .jitter = 0,
                        .bandwidth_bps = 0, .loss = 0});
  h.members[1]->chan->on_deliver([&](const Delivery& d) {
    h.members[1]->log.push_back(d);
    if (d.payload == "question") h.members[1]->chan->broadcast("reply");
  });
  h.members[0]->chan->broadcast("question");
  h.sim.run();
  const auto got = h.payloads(2);
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0], "question");
  EXPECT_EQ(got[1], "reply");
}

TEST(GroupChannel, TotalOrderAgreesAtAllMembersUnderConcurrency) {
  Harness h(4, {.ordering = Ordering::kTotal,
                .retransmit_timeout = sim::msec(30),
                .max_retransmits = 30},
            /*seed=*/3);
  h.net.set_default_link({.latency = sim::msec(5), .jitter = sim::msec(4),
                          .bandwidth_bps = 10e6, .loss = 0.05});
  // Every member broadcasts concurrently; all must deliver identically.
  for (int round = 0; round < 10; ++round) {
    for (std::size_t m = 0; m < 4; ++m) {
      h.sim.schedule_at(sim::msec(round * 10), [&h, m, round] {
        h.members[m]->chan->broadcast("r" + std::to_string(round) + "m" +
                                      std::to_string(m));
      });
    }
  }
  h.sim.run();
  const auto reference = h.payloads(0);
  EXPECT_EQ(reference.size(), 40u);
  for (std::size_t m = 1; m < 4; ++m) {
    EXPECT_EQ(h.payloads(m), reference) << "member " << m << " diverged";
  }
  // Total sequence numbers must be strictly increasing at each member.
  for (std::size_t m = 0; m < 4; ++m) {
    for (std::size_t i = 1; i < h.members[m]->log.size(); ++i)
      EXPECT_GT(h.members[m]->log[i].total_seq,
                h.members[m]->log[i - 1].total_seq);
  }
}

TEST(GroupChannel, SequencerIsLowestLiveSlot) {
  Harness h(3, {.ordering = Ordering::kTotal});
  EXPECT_TRUE(h.members[0]->chan->is_sequencer());
  EXPECT_FALSE(h.members[1]->chan->is_sequencer());
  h.members[1]->chan->mark_failed(h.members[0]->chan->self());
  EXPECT_TRUE(h.members[1]->chan->is_sequencer());
}

TEST(GroupChannel, MarkFailedStopsRetransmissionToDeadMember) {
  Harness h(3, {.ordering = Ordering::kFifo,
                .retransmit_timeout = sim::msec(10),
                .max_retransmits = 1000});
  h.net.crash(3);  // member index 2 is node 3
  h.members[0]->chan->broadcast("x");
  h.sim.run_until(sim::msec(100));
  const auto before = h.members[0]->chan->stats().retransmits;
  EXPECT_GT(before, 0u);
  h.members[0]->chan->mark_failed({3, 10});
  h.sim.run_until(sim::msec(500));
  // One more timer may have been in flight; after that, silence.
  const auto after = h.members[0]->chan->stats().retransmits;
  h.sim.run_until(sim::sec(2));
  EXPECT_EQ(h.members[0]->chan->stats().retransmits, after);
  EXPECT_LE(after, before + 1);
}

TEST(GroupChannel, GivesUpAfterMaxRetransmits) {
  Harness h(2, {.ordering = Ordering::kFifo,
                .retransmit_timeout = sim::msec(10),
                .max_retransmits = 3});
  h.net.crash(2);
  h.members[0]->chan->broadcast("doomed");
  h.sim.run();
  EXPECT_EQ(h.members[0]->chan->stats().gave_up, 1u);
  EXPECT_EQ(h.members[0]->chan->stats().retransmits, 3u);
}

TEST(GroupChannel, SingletonGroupDeliversLocallyWithoutNetwork) {
  Harness h(1, {.ordering = Ordering::kTotal});
  h.members[0]->chan->broadcast("solo");
  h.sim.run();
  ASSERT_EQ(h.members[0]->log.size(), 1u);
  EXPECT_EQ(h.net.stats().sent, 0u);
}

TEST(GroupChannel, TotalOrderSurvivesSequencerFailover) {
  Harness h(4, {.ordering = Ordering::kTotal,
                .retransmit_timeout = sim::msec(30),
                .max_retransmits = 30},
            /*seed=*/9);
  h.net.set_default_link({.latency = sim::msec(3), .jitter = sim::msec(2),
                          .bandwidth_bps = 10e6, .loss = 0.02});
  // Pre-crash traffic from everyone.
  for (std::size_t m = 0; m < 4; ++m) {
    h.sim.schedule_at(sim::msec(10 * (m + 1)), [&h, m] {
      h.members[m]->chan->broadcast("pre" + std::to_string(m));
    });
  }
  // The sequencer (member 0) crashes; survivors detect and promote.
  h.sim.schedule_at(sim::msec(200), [&h] {
    h.net.crash(1);
    for (std::size_t m = 1; m < 4; ++m)
      h.members[m]->chan->mark_failed(h.members[0]->chan->self());
  });
  // Post-crash traffic: the new sequencer (member 1) and the others.
  for (int round = 0; round < 6; ++round) {
    for (std::size_t m = 1; m < 4; ++m) {
      h.sim.schedule_at(sim::msec(300) + round * sim::msec(20), [&h, m,
                                                                round] {
        h.members[m]->chan->broadcast("post" + std::to_string(m) + "." +
                                      std::to_string(round));
      });
    }
  }
  h.sim.run();
  EXPECT_TRUE(h.members[1]->chan->is_sequencer());
  // Every survivor delivered every post-failover message, identically.
  const auto ref = h.payloads(1);
  int post_count = 0;
  for (const auto& p : ref)
    if (p.rfind("post", 0) == 0) ++post_count;
  EXPECT_EQ(post_count, 18);
  EXPECT_EQ(h.payloads(2), ref);
  EXPECT_EQ(h.payloads(3), ref);
}

TEST(GroupChannel, InFlightRequestRereutesToNewSequencer) {
  // A non-sequencer broadcast is in flight to the sequencer when it
  // dies: after mark_failed the request must reach the promoted
  // sequencer and still deliver everywhere.
  Harness h(3, {.ordering = Ordering::kTotal,
                .retransmit_timeout = sim::msec(50),
                .max_retransmits = 30},
            /*seed=*/12);
  // Slow path to the sequencer so the request is still in flight when
  // the crash happens.
  h.net.set_link(3, 1, {.latency = sim::msec(100), .jitter = 0,
                        .bandwidth_bps = 10e6, .loss = 0});
  h.members[2]->chan->broadcast("stranded");
  h.sim.schedule_at(sim::msec(20), [&h] {
    h.net.crash(1);
    h.members[1]->chan->mark_failed(h.members[0]->chan->self());
    h.members[2]->chan->mark_failed(h.members[0]->chan->self());
  });
  h.sim.run();
  ASSERT_EQ(h.payloads(1).size(), 1u);
  EXPECT_EQ(h.payloads(1)[0], "stranded");
  EXPECT_EQ(h.payloads(2), h.payloads(1));
}

// Drives the documented kTotal loss window deterministically: member 2's
// second broadcast is acked (stashed out-of-order at the sequencer) while
// its first is still unacked in flight, then the sequencer dies.  With
// replay disabled the acked broadcast is lost and counted; with replay the
// new sequencer recovers it from the sender's retransmit buffer.
class LossWindowHarness : public Harness {
 public:
  explicit LossWindowHarness(bool replay)
      : Harness(3,
                {.ordering = Ordering::kTotal,
                 .retransmit_timeout = sim::msec(200),
                 .max_retransmits = 30,
                 .failover_replay = replay},
                /*seed=*/21) {
    // First request lost on the way to the sequencer...
    net.set_link(3, 1, {.latency = sim::msec(2), .jitter = 0,
                        .bandwidth_bps = 10e6, .loss = 1.0});
    members[2]->chan->broadcast("one");
    // ...then the link heals and the second request arrives: the
    // sequencer stashes it out of order and acks it.
    sim.schedule_at(sim::msec(5), [this] {
      net.set_link(3, 1, {.latency = sim::msec(2), .jitter = 0,
                          .bandwidth_bps = 10e6, .loss = 0.0});
      members[2]->chan->broadcast("two");
    });
    // The sequencer crashes before "one"'s retransmission can fill the
    // gap, with "two" acked but never relayed.
    sim.schedule_at(sim::msec(50), [this] {
      net.crash(1);
      members[1]->chan->mark_failed(members[0]->chan->self());
      members[2]->chan->mark_failed(members[0]->chan->self());
    });
    sim.run();
  }
};

TEST(GroupChannel, FailoverLossWindowIsCountedWithoutReplay) {
  LossWindowHarness h(/*replay=*/false);
  // "one" was never acked, so its re-route to the new sequencer saves it;
  // "two" was acked and sits in the window — gone, but accounted for.
  EXPECT_EQ(h.members[2]->chan->stats().failover_lost, 1u);
  EXPECT_EQ(h.payloads(1), std::vector<std::string>{"one"});
  EXPECT_EQ(h.payloads(2), std::vector<std::string>{"one"});
}

TEST(GroupChannel, FailoverReplayClosesTheLossWindow) {
  LossWindowHarness h(/*replay=*/true);
  const std::vector<std::string> want{"one", "two"};
  EXPECT_EQ(h.payloads(1), want);
  EXPECT_EQ(h.payloads(2), want);
  for (std::size_t m = 1; m < 3; ++m) {
    EXPECT_EQ(h.members[m]->chan->stats().failover_lost, 0u) << m;
  }
  EXPECT_GT(h.members[1]->chan->stats().failover_replayed, 0u);
}

TEST(GroupChannel, ReplayRecoveryExtendsEverySurvivorPrefix) {
  // Survivors at different delivered depths when the sequencer dies: the
  // recovery round must produce one order that extends both prefixes, so
  // nobody ever sees a message twice or in a new relative order.
  Harness h(4, {.ordering = Ordering::kTotal,
                .retransmit_timeout = sim::msec(30),
                .max_retransmits = 60},
            /*seed=*/31);
  // Member 3 lags: slow link from the sequencer to it.
  h.net.set_link(1, 4, {.latency = sim::msec(60), .jitter = 0,
                        .bandwidth_bps = 10e6, .loss = 0});
  for (int i = 0; i < 8; ++i) {
    h.sim.schedule_at(sim::msec(5 * i), [&h, i] {
      h.members[1]->chan->broadcast("m" + std::to_string(i));
    });
  }
  h.sim.schedule_at(sim::msec(70), [&h] {
    h.net.crash(1);
    for (std::size_t m = 1; m < 4; ++m)
      h.members[m]->chan->mark_failed(h.members[0]->chan->self());
  });
  h.sim.run();
  std::vector<std::string> want;
  for (int i = 0; i < 8; ++i) want.push_back("m" + std::to_string(i));
  for (std::size_t m = 1; m < 4; ++m) {
    EXPECT_EQ(h.payloads(m), want) << "member " << m;
  }
}

TEST(GroupChannel, SequencerCrashWithConcurrentSendersConverges) {
  // Chaos-flavored sweep: concurrent senders, lossy links, sequencer
  // crash mid-stream.  Replay mode must deliver every acked broadcast
  // from a surviving sender at every survivor, identically ordered.
  for (std::uint64_t seed : {101u, 202u, 303u}) {
    Harness h(4, {.ordering = Ordering::kTotal,
                  .retransmit_timeout = sim::msec(25),
                  .max_retransmits = 80},
              seed);
    h.net.set_default_link({.latency = sim::msec(4), .jitter = sim::msec(3),
                            .bandwidth_bps = 10e6, .loss = 0.05});
    for (int i = 0; i < 6; ++i) {
      for (std::size_t m = 1; m < 4; ++m) {
        h.sim.schedule_at(sim::msec(10 * i + m), [&h, m, i] {
          h.members[m]->chan->broadcast("s" + std::to_string(m) + "." +
                                        std::to_string(i));
        });
      }
    }
    h.sim.schedule_at(sim::msec(35), [&h] {
      h.net.crash(1);
      for (std::size_t m = 1; m < 4; ++m)
        h.members[m]->chan->mark_failed(h.members[0]->chan->self());
    });
    h.sim.run();
    // All 18 survivor broadcasts delivered everywhere, identically.
    const auto ref = h.payloads(1);
    EXPECT_EQ(ref.size(), 18u) << "seed " << seed;
    EXPECT_EQ(h.payloads(2), ref) << "seed " << seed;
    EXPECT_EQ(h.payloads(3), ref) << "seed " << seed;
    for (std::size_t m = 1; m < 4; ++m)
      EXPECT_EQ(h.members[m]->chan->stats().failover_lost, 0u);
  }
}

// Property sweep: for every ordering mode and several seeds, all members
// deliver exactly the full message set under loss + jitter, and the
// per-mode ordering invariant holds.
class OrderingSweep
    : public ::testing::TestWithParam<std::tuple<Ordering, std::uint64_t>> {};

TEST_P(OrderingSweep, AllMessagesDeliveredAndInvariantHolds) {
  const auto [ordering, seed] = GetParam();
  const std::size_t n = 3;
  Harness h(n,
            {.ordering = ordering,
             .retransmit_timeout = sim::msec(25),
             .max_retransmits = 60},
            seed);
  h.net.set_default_link({.latency = sim::msec(4), .jitter = sim::msec(3),
                          .bandwidth_bps = 10e6, .loss = 0.10});
  const int per_member = 15;
  for (int i = 0; i < per_member; ++i) {
    for (std::size_t m = 0; m < n; ++m) {
      h.sim.schedule_at(
          static_cast<sim::TimePoint>(
              h.sim.rng().uniform_int(0, sim::msec(200))),
          [&h, m, i] {
            h.members[m]->chan->broadcast("s" + std::to_string(m) + "." +
                                          std::to_string(i));
          });
    }
  }
  h.sim.run();
  for (std::size_t m = 0; m < n; ++m) {
    EXPECT_EQ(h.members[m]->log.size(), n * per_member)
        << "member " << m << " seed " << seed;
    // FIFO invariant (implied by causal and total as implemented): for
    // each sender, seq numbers appear in increasing order.
    if (ordering != Ordering::kUnordered) {
      std::map<std::size_t, std::uint64_t> last;
      for (const auto& d : h.members[m]->log) {
        auto it = last.find(d.sender);
        if (it != last.end()) {
          EXPECT_GT(d.seq, it->second);
        }
        last[d.sender] = d.seq;
      }
    }
  }
  if (ordering == Ordering::kTotal) {
    for (std::size_t m = 1; m < n; ++m) EXPECT_EQ(h.payloads(m), h.payloads(0));
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllOrderingsSeeds, OrderingSweep,
    ::testing::Combine(::testing::Values(Ordering::kUnordered, Ordering::kFifo,
                                         Ordering::kCausal, Ordering::kTotal),
                       ::testing::Values(11u, 22u, 33u, 44u, 55u)));

}  // namespace
}  // namespace coop::groups
