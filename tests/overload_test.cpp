// Overload control plane tests: deadline propagation and its interaction
// with retries (truncation, same-step races), retry budgets, circuit
// breakers, priority admission control with pushback, FIFO backlog
// bounding, sequencer-side expiry, and the QosManager overload window.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/coop.hpp"

namespace coop {
namespace {

class OverloadRpcTest : public ::testing::Test {
 protected:
  OverloadRpcTest() : sim(7), net(sim), server(net, {2, 1}) {
    server.register_method("echo", [](const std::string& req) {
      return rpc::HandlerResult::success(req);
    });
  }

  sim::Simulator sim;
  net::Network net;
  rpc::RpcServer server;
};

// A retry whose armed timeout would overshoot the deadline must be
// truncated to the remaining slack: with a 50 ms per-attempt timeout,
// plenty of retries, and a 120 ms deadline against a crashed server, the
// call finishes with kTimeout exactly at the deadline — 50 + 50 + 20,
// never 50 + 100 + 200 of untruncated backoff.
TEST_F(OverloadRpcTest, RetryTimeoutTruncatedAtDeadline) {
  net.crash(2);
  rpc::RpcClient client(net, {1, 1});
  rpc::RpcResult got;
  sim::TimePoint done_at = 0;
  client.call({2, 1}, "echo", "x",
              [&](const rpc::RpcResult& r) {
                got = r;
                done_at = sim.now();
              },
              {.timeout = sim::msec(50), .retries = 5, .backoff = 1.0,
               .deadline = sim::msec(120)});
  sim.run();
  EXPECT_EQ(got.status, rpc::Status::kTimeout);
  EXPECT_EQ(done_at, sim::msec(120));
}

// A reply landing in the same sim step as the deadline wins (the mirror
// of the GroupInvoker deadline race, now at the RpcClient layer).  First
// measure the deterministic round-trip with a probe, then issue a call
// whose deadline equals exactly that round-trip: the reply and the
// deadline expiry land in the same step, and the reply must win.
TEST_F(OverloadRpcTest, ReplyInSameStepAsDeadlineWins) {
  net.set_default_link({.latency = sim::msec(5), .jitter = 0,
                        .bandwidth_bps = 10e6, .loss = 0.0});
  rpc::RpcClient client(net, {1, 1});
  sim::Duration probe_rtt = 0;
  client.call({2, 1}, "echo", "probe",
              [&](const rpc::RpcResult& r) { probe_rtt = r.rtt; });
  sim.run();
  ASSERT_GT(probe_rtt, 0);

  rpc::RpcResult got;
  client.call({2, 1}, "echo", "raced",
              [&](const rpc::RpcResult& r) { got = r; },
              {.timeout = sim::sec(1), .retries = 0,
               .deadline = sim.now() + probe_rtt});
  sim.run();
  EXPECT_TRUE(got.ok()) << "reply arriving at the deadline instant lost";
  EXPECT_EQ(got.rtt, probe_rtt);
}

// ...and one microsecond less of slack flips the race: the deadline now
// precedes the reply, so the call times out at the deadline.
TEST_F(OverloadRpcTest, DeadlineOneStepBeforeReplyTimesOut) {
  net.set_default_link({.latency = sim::msec(5), .jitter = 0,
                        .bandwidth_bps = 10e6, .loss = 0.0});
  rpc::RpcClient client(net, {1, 1});
  sim::Duration probe_rtt = 0;
  client.call({2, 1}, "echo", "probe",
              [&](const rpc::RpcResult& r) { probe_rtt = r.rtt; });
  sim.run();

  rpc::RpcResult got;
  client.call({2, 1}, "echo", "raced",
              [&](const rpc::RpcResult& r) { got = r; },
              {.timeout = sim::sec(1), .retries = 0,
               .deadline = sim.now() + probe_rtt - 1});
  sim.run();
  EXPECT_EQ(got.status, rpc::Status::kTimeout);
}

// Admission control honours deadlines on dequeue: with a serial 10 ms
// service time, a burst of five calls bearing a 25 ms deadline gets
// three dequeued in time (the third's reply is already late for its
// caller) — the final two expire in the run queue and are dropped
// without burning service time (counted in rpc.expired_drops).
TEST_F(OverloadRpcTest, ServerDropsExpiredWorkOnDequeue) {
  net.set_default_link({.latency = sim::msec(1), .jitter = 0,
                        .bandwidth_bps = 10e6, .loss = 0.0});
  server.set_processing_time(sim::msec(10));
  server.set_admission({});
  rpc::RpcClient client(net, {1, 1});
  int ok = 0, timeout = 0;
  for (int i = 0; i < 5; ++i) {
    client.call({2, 1}, "echo", std::to_string(i),
                [&](const rpc::RpcResult& r) {
                  r.ok() ? ++ok : ++timeout;
                },
                {.timeout = sim::msec(200), .retries = 0,
                 .deadline = sim::msec(25)});
  }
  sim.run();
  EXPECT_EQ(ok, 2);
  EXPECT_EQ(timeout, 3);
  EXPECT_EQ(server.expired_drops(), 2u);
  EXPECT_EQ(net.obs().metrics.counter("rpc.expired_drops").value(), 2u);
}

// The retry budget caps retries: with one initial token and a crashed
// server, the first retry spends the bucket dry and the second is denied,
// failing the call early instead of fueling a retry storm.
TEST_F(OverloadRpcTest, RetryBudgetDeniesRetriesWhenDry) {
  net.crash(2);
  rpc::RpcClient client(
      net, {1, 1},
      {.budget = {.enabled = true, .ratio = 0.1, .initial = 1.0}});
  rpc::RpcResult got;
  sim::TimePoint done_at = 0;
  client.call({2, 1}, "echo", "x",
              [&](const rpc::RpcResult& r) {
                got = r;
                done_at = sim.now();
              },
              {.timeout = sim::msec(10), .retries = 5, .backoff = 1.0});
  sim.run();
  EXPECT_EQ(got.status, rpc::Status::kTimeout);
  // Attempt 1 times out at 10 ms, the budgeted retry at 20 ms; the next
  // retry is denied, ending the call there instead of at 60 ms.
  EXPECT_EQ(done_at, sim::msec(20));
  EXPECT_EQ(client.retries_denied(), 1u);
  EXPECT_LT(client.budget_tokens({2, 1}), 1.0);
}

// Circuit breaker lifecycle: consecutive timeouts open it (calls then
// fast-fail with kRejected without touching the wire), the cooldown
// half-opens it for a single probe, and a successful probe closes it.
TEST_F(OverloadRpcTest, BreakerOpensFastFailsAndRecloses) {
  net.crash(2);
  rpc::RpcClient client(
      net, {1, 1},
      {.breaker = {.enabled = true, .failure_threshold = 2,
                   .open_duration = sim::msec(100)}});
  const rpc::CallOptions quick{.timeout = sim::msec(10), .retries = 0};
  std::vector<rpc::Status> results;
  const auto record = [&](const rpc::RpcResult& r) {
    results.push_back(r.status);
  };
  client.call({2, 1}, "echo", "a", record, quick);
  sim.run();
  client.call({2, 1}, "echo", "b", record, quick);
  sim.run();
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(client.breaker_state({2, 1}), net::CircuitBreaker::State::kOpen);

  // Open: fast-fail locally, no wire traffic, no timeout burned.
  const sim::TimePoint before = sim.now();
  client.call({2, 1}, "echo", "c", record, quick);
  sim.run();
  ASSERT_EQ(results.size(), 3u);
  EXPECT_EQ(results[2], rpc::Status::kRejected);
  EXPECT_EQ(sim.now(), before);  // same step: nothing waited on the wire
  EXPECT_GE(client.rejected(), 1u);

  // After the cooldown the half-open probe goes through to the (healed)
  // server and its success recloses the breaker.
  net.restart(2);
  sim.schedule_at(before + sim::msec(150), [&] {
    client.call({2, 1}, "echo", "probe", record, quick);
  });
  sim.run();
  ASSERT_EQ(results.size(), 4u);
  EXPECT_EQ(results[3], rpc::Status::kOk);
  EXPECT_EQ(client.breaker_state({2, 1}),
            net::CircuitBreaker::State::kClosed);
}

// Priority shedding: at the background watermark the server refuses
// kBackground work with an immediate kRejected pushback while kCore work
// is still admitted up to the full queue capacity.
TEST_F(OverloadRpcTest, ServerShedsBackgroundBeforeCore) {
  net.set_default_link({.latency = sim::msec(1), .jitter = 0,
                        .bandwidth_bps = 10e6, .loss = 0.0});
  server.set_processing_time(sim::msec(10));
  server.set_admission({.queue_capacity = 8, .control_watermark = 5,
                        .background_watermark = 2});
  rpc::RpcClient client(net, {1, 1});
  int bg_ok = 0, bg_rejected = 0, core_ok = 0, core_rejected = 0;
  for (int i = 0; i < 6; ++i) {
    client.call({2, 1}, "echo", "bg",
                [&](const rpc::RpcResult& r) {
                  r.status == rpc::Status::kRejected ? ++bg_rejected
                                                     : ++bg_ok;
                },
                {.timeout = sim::sec(1), .retries = 0,
                 .priority = net::Priority::kBackground});
    client.call({2, 1}, "echo", "core",
                [&](const rpc::RpcResult& r) {
                  r.status == rpc::Status::kRejected ? ++core_rejected
                                                     : ++core_ok;
                },
                {.timeout = sim::sec(1), .retries = 0,
                 .priority = net::Priority::kCore});
  }
  sim.run();
  EXPECT_EQ(core_rejected, 0);
  EXPECT_EQ(core_ok, 6);
  EXPECT_GT(bg_rejected, 0);
  EXPECT_EQ(server.shed(net::Priority::kBackground),
            static_cast<std::uint64_t>(bg_rejected));
  EXPECT_EQ(server.shed(net::Priority::kCore), 0u);
}

// FifoChannel backlog bounding (the max_retransmits = -1 fix): toward an
// unreachable peer the unacked backlog stops at max_unacked, overflowing
// sends are counted, and the kPeerUnreachable callback fires once per
// episode instead of the queue growing forever.
TEST(OverloadFifoTest, BacklogCappedAndUnreachableReported) {
  sim::Simulator sim(11);
  net::Network net(sim);
  net.crash(2);
  net::FifoConfig cfg;
  cfg.max_unacked = 3;
  cfg.unreachable_after = 2;
  net::FifoChannel a(net, {1, 1}, cfg);
  std::vector<net::Address> unreachable;
  a.on_peer_unreachable(
      [&](const net::Address& peer) { unreachable.push_back(peer); });
  for (int i = 0; i < 10; ++i) a.send({2, 1}, "m" + std::to_string(i));
  sim.run_until(sim::sec(30));
  EXPECT_EQ(a.unacked({2, 1}), 3u);
  EXPECT_EQ(a.stats().overflow_dropped, 7u);
  ASSERT_EQ(unreachable.size(), 1u);  // once per episode, not per round
  EXPECT_EQ(unreachable[0], (net::Address{2, 1}));
  EXPECT_EQ(a.stats().unreachable_events, 1u);
}

// The FIFO retry budget bounds retransmit rounds: with a dry bucket the
// round is skipped (counted) rather than hammering a dead peer.
TEST(OverloadFifoTest, RetransmitRoundsDrawFromBudget) {
  sim::Simulator sim(12);
  net::Network net(sim);
  net.crash(2);
  net::FifoConfig cfg;
  cfg.retry_budget = {.enabled = true, .ratio = 0.1, .initial = 2.0};
  net::FifoChannel a(net, {1, 1}, cfg);
  a.send({2, 1}, "hello");
  sim.run_until(sim::sec(30));
  // Two budgeted rounds went to the wire; everything after was denied.
  EXPECT_EQ(a.stats().retransmits, 2u);
  EXPECT_GT(a.stats().budget_denied, 0u);
}

// The total-order sequencer drops expired ordering requests on dequeue:
// the request is acked (so the sender stops retransmitting) but assigned
// no slot in the total order, and nobody stalls waiting for it.
TEST(OverloadGroupTest, SequencerDropsExpiredRequests) {
  sim::Simulator sim(13);
  net::Network net(sim);
  net.set_default_link({.latency = sim::msec(5), .jitter = 0,
                        .bandwidth_bps = 10e6, .loss = 0.0});
  groups::ChannelConfig cfg;
  cfg.ordering = groups::Ordering::kTotal;
  groups::ChannelConfig dated = cfg;
  dated.broadcast_deadline = sim::msec(2);  // expires before the 5 ms hop
  const std::vector<net::Address> members{{1, 1}, {2, 1}, {3, 1}};
  groups::GroupChannel a(net, {1, 1}, 7, cfg);   // sequencer (slot 0)
  groups::GroupChannel b(net, {2, 1}, 7, dated);
  groups::GroupChannel c(net, {3, 1}, 7, cfg);
  a.set_members(members);
  b.set_members(members);
  c.set_members(members);
  int delivered = 0;
  a.on_deliver([&](const groups::Delivery&) { ++delivered; });
  b.broadcast("too-late");
  sim.run();
  EXPECT_EQ(a.stats().expired_drops, 1u);
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(net.obs().metrics.counter("rpc.expired_drops").value(), 1u);

  // The order is not wedged: an undated broadcast from another member
  // still sequences and delivers everywhere.
  c.broadcast("on-time");
  sim.run();
  EXPECT_EQ(delivered, 1);
}

// QosManager overload windows: note_overload() opens a window (counted
// once, extensions free) during which the manager reports itself in
// overload; a later signal after expiry opens a second window.
TEST(OverloadQosTest, OverloadWindowsCountedPerWindow) {
  Platform platform(17);
  auto& sim = platform.simulator();
  mgmt::QosManager plane(sim, platform.obs(),
                         {.overload_window = sim::msec(100)});
  EXPECT_FALSE(plane.in_overload_window());
  plane.note_overload();
  EXPECT_TRUE(plane.in_overload_window());
  sim.schedule_at(sim::msec(50), [&] { plane.note_overload(); });  // extends
  sim.schedule_at(sim::msec(120), [&] {
    EXPECT_TRUE(plane.in_overload_window());  // extended past 100 ms
  });
  sim.schedule_at(sim::msec(300), [&] {
    EXPECT_FALSE(plane.in_overload_window());
    plane.note_overload();  // a fresh window
  });
  sim.run();
  EXPECT_EQ(
      platform.metrics().counter("mgmt.qos.overload_windows").value(), 2u);
}

// During an overload window a healthy stream verdict is demoted to
// degraded, so media scales down on shed/pushback signals even when the
// stream's own link metrics look fine.
TEST(OverloadQosTest, OverloadWindowDemotesHealthyStream) {
  Platform platform(19);
  auto& sim = platform.simulator();
  auto& net = platform.network();
  net.set_default_link({.latency = sim::msec(20), .bandwidth_bps = 10e6});
  const streams::QosSpec spec{.fps = 25, .frame_bytes = 4000,
                              .latency_bound = sim::msec(200),
                              .jitter_bound = sim::msec(50),
                              .min_fps = 5};
  streams::MediaSource src(sim, 1, spec);
  streams::StreamBinding binding(net, src, {1, 1}, net::Address{2, 1});
  streams::MediaSink sink(net, {2, 1});
  streams::QosMonitor monitor(sim, sink, spec);
  mgmt::QosManager plane(sim, platform.obs(),
                         {.overload_window = sim::sec(5)});
  plane.manage("video", monitor, src, spec);
  src.start();

  // The link is roomy — without overload signals the stream would stay
  // nominal at the contract fps.  Repeated overload signals force it down.
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(sim::sec(1 + i), [&] { plane.note_overload(); });
  }
  double mid_fps = -1;
  sim.schedule_at(sim::sec(10), [&] {
    mid_fps = plane.operating_fps("video");
  });
  sim.run_until(sim::sec(12));  // mid-overload, before any restore probing
  EXPECT_EQ(plane.state("video"), mgmt::BindingState::kDegraded);
  EXPECT_LT(mid_fps, 25.0);
  EXPECT_GE(mid_fps, 5.0);
}

}  // namespace
}  // namespace coop
