// Tests for the strict-2PL transaction engine, including a serializability
// property check against a sequential oracle.
#include <gtest/gtest.h>

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "ccontrol/store.hpp"
#include "ccontrol/transactions.hpp"
#include "sim/simulator.hpp"

namespace coop::ccontrol {
namespace {

class TxnTest : public ::testing::Test {
 protected:
  sim::Simulator sim{3};
  ObjectStore store;
  TransactionManager tm{sim, store};
};

TEST_F(TxnTest, CommitMakesWritesVisible) {
  const TxnId t = tm.begin();
  bool ok = false;
  tm.write(t, "k", "v", [&](bool r) { ok = r; });
  EXPECT_TRUE(ok);
  EXPECT_FALSE(store.read("k").has_value());  // buffered until commit
  EXPECT_TRUE(tm.commit(t));
  EXPECT_EQ(store.read("k"), "v");
  EXPECT_EQ(tm.state(t), TxnState::kCommitted);
}

TEST_F(TxnTest, AbortDiscardsWrites) {
  const TxnId t = tm.begin();
  tm.write(t, "k", "v", [](bool) {});
  tm.abort(t);
  EXPECT_FALSE(store.read("k").has_value());
  EXPECT_EQ(tm.state(t), TxnState::kAborted);
  EXPECT_FALSE(tm.commit(t));  // cannot commit an aborted txn
}

TEST_F(TxnTest, ReadYourOwnWrites) {
  const TxnId t = tm.begin();
  tm.write(t, "k", "mine", [](bool) {});
  std::optional<std::string> got;
  tm.read(t, "k", [&](bool ok, std::optional<std::string> v) {
    EXPECT_TRUE(ok);
    got = std::move(v);
  });
  EXPECT_EQ(got, "mine");
}

TEST_F(TxnTest, SharedReadsDoNotBlockEachOther) {
  store.write("k", "v0");
  const TxnId t1 = tm.begin();
  const TxnId t2 = tm.begin();
  int reads = 0;
  tm.read(t1, "k", [&](bool ok, auto) { reads += ok; });
  tm.read(t2, "k", [&](bool ok, auto) { reads += ok; });
  EXPECT_EQ(reads, 2);
}

TEST_F(TxnTest, WriterBlocksReaderUntilCommit) {
  const TxnId writer = tm.begin();
  const TxnId reader = tm.begin();
  tm.write(writer, "k", "new", [](bool) {});
  bool read_done = false;
  std::optional<std::string> got;
  // reader is younger than writer; wait-die says it WAITS only if older.
  // reader id > writer id -> reader would die.  Use the opposite order:
  (void)reader;
  const TxnId old_reader = writer;  // placeholder to silence unused
  (void)old_reader;
  // Build the real scenario: older reader, younger writer.
  ObjectStore store2;
  TransactionManager tm2(sim, store2);
  const TxnId r = tm2.begin();   // older
  const TxnId w = tm2.begin();   // younger
  tm2.write(w, "k", "new", [](bool) {});
  tm2.read(r, "k", [&](bool ok, std::optional<std::string> v) {
    read_done = ok;
    got = std::move(v);
  });
  EXPECT_FALSE(read_done);  // r (older) waits for w
  sim.run_until(sim::msec(10));
  tm2.commit(w);
  EXPECT_TRUE(read_done);
  EXPECT_EQ(got, "new");
}

TEST_F(TxnTest, WaitDieYoungerRequesterAborts) {
  const TxnId older = tm.begin();
  const TxnId younger = tm.begin();
  tm.write(older, "k", "v1", [](bool) {});
  bool ok = true;
  tm.write(younger, "k", "v2", [&](bool r) { ok = r; });
  EXPECT_FALSE(ok);
  EXPECT_EQ(tm.state(younger), TxnState::kAborted);
  EXPECT_EQ(tm.stats().wait_die_aborts, 1u);
  // The older transaction is unaffected.
  EXPECT_TRUE(tm.commit(older));
  EXPECT_EQ(store.read("k"), "v1");
}

TEST_F(TxnTest, NoDeadlockOnCrossingWrites) {
  // T1 (older) takes A; T2 takes B; T1 wants B (waits); T2 wants A (dies).
  const TxnId t1 = tm.begin();
  const TxnId t2 = tm.begin();
  tm.write(t1, "A", "1", [](bool) {});
  tm.write(t2, "B", "2", [](bool) {});
  bool t1_got_b = false;
  tm.write(t1, "B", "1b", [&](bool r) { t1_got_b = r; });
  EXPECT_FALSE(t1_got_b);  // waiting on t2
  bool t2_got_a = true;
  tm.write(t2, "A", "2a", [&](bool r) { t2_got_a = r; });
  EXPECT_FALSE(t2_got_a);                          // t2 died
  EXPECT_EQ(tm.state(t2), TxnState::kAborted);
  EXPECT_TRUE(t1_got_b);  // t2's death released B; t1 proceeds
  EXPECT_TRUE(tm.commit(t1));
  EXPECT_EQ(store.read("B"), "1b");
}

TEST_F(TxnTest, OperationsOnFinishedTxnFail) {
  const TxnId t = tm.begin();
  tm.commit(t);
  bool write_ok = true, read_ok = true;
  tm.write(t, "k", "v", [&](bool r) { write_ok = r; });
  tm.read(t, "k", [&](bool r, auto) { read_ok = r; });
  EXPECT_FALSE(write_ok);
  EXPECT_FALSE(read_ok);
}

TEST_F(TxnTest, LockUpgradeSharedToExclusive) {
  store.write("k", "v0");
  const TxnId t = tm.begin();
  tm.read(t, "k", [](bool, auto) {});
  bool ok = false;
  tm.write(t, "k", "v1", [&](bool r) { ok = r; });
  EXPECT_TRUE(ok);
  tm.commit(t);
  EXPECT_EQ(store.read("k"), "v1");
}

TEST_F(TxnTest, BlockTimeIsRecorded) {
  ObjectStore store2;
  TransactionManager tm2(sim, store2);
  const TxnId r = tm2.begin();
  const TxnId w = tm2.begin();
  tm2.write(w, "k", "x", [](bool) {});
  tm2.read(r, "k", [](bool, auto) {});
  sim.run_until(sim::msec(250));
  tm2.commit(w);
  EXPECT_GE(tm2.stats().block_time.max(),
            static_cast<double>(sim::msec(250)));
}

// Serializability property: run a randomized contended workload; replay
// the committed transactions' write sets sequentially in commit order on a
// fresh store; the result must match, and every committed read must match
// what the sequential replay would have produced at that point.
class SerializabilityProperty : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(SerializabilityProperty, CommitOrderReplayMatches) {
  sim::Simulator sim(GetParam());
  ObjectStore store;
  TransactionManager tm(sim, store);

  const int kClients = 6;
  const int kTxnsPerClient = 25;
  const int kKeys = 4;  // few keys -> heavy contention

  // Each client runs transactions back to back: begin, 2-4 ops with
  // simulated think time, then commit.  Wait-die aborts simply move on.
  std::function<void(int, int)> run_txn = [&](int client, int remaining) {
    if (remaining == 0) return;
    const TxnId t = tm.begin();
    auto finish = [&, t, client, remaining](bool aborted) {
      if (!aborted) tm.commit(t);
      sim.schedule_after(sim.rng().uniform_int(1, 500), [&, client,
                                                         remaining] {
        run_txn(client, remaining - 1);
      });
    };
    const int ops = static_cast<int>(sim.rng().uniform_int(2, 4));
    // Chain the ops with think time between them.
    std::shared_ptr<std::function<void(int)>> step =
        std::make_shared<std::function<void(int)>>();
    // The stored lambda must not capture `step` strongly — the function
    // would own itself and the whole chain leaks.  Scheduled continuations
    // hold the strong reference; the lambda keeps only a weak one.
    std::weak_ptr<std::function<void(int)>> weak_step = step;
    *step = [&, t, ops, finish, weak_step](int i) {
      if (tm.state(t) != TxnState::kActive) {
        finish(true);
        return;
      }
      if (i == ops) {
        finish(false);
        return;
      }
      const std::string key =
          "k" + std::to_string(sim.rng().uniform_int(0, kKeys - 1));
      const bool is_write = sim.rng().bernoulli(0.5);
      // `next` is stored by the transaction manager and invoked later, so
      // it carries the strong reference that keeps the chain alive.
      auto self = weak_step.lock();
      auto next = [&, i, self, finish](bool ok) {
        if (!ok) {
          finish(true);
          return;
        }
        sim.schedule_after(sim.rng().uniform_int(1, 200),
                           [self, i] { (*self)(i + 1); });
      };
      if (is_write) {
        tm.write(t, key, "c" + std::to_string(t) + "i" + std::to_string(i),
                 next);
      } else {
        tm.read(t, key, [next](bool ok, auto) { next(ok); });
      }
    };
    (*step)(0);
  };

  for (int c = 0; c < kClients; ++c) run_txn(c, kTxnsPerClient);
  sim.run();

  EXPECT_GT(tm.stats().commits, 0u);

  // Sequential replay oracle: execute each committed transaction at its
  // commit position, mirroring the engine's write-buffer semantics — reads
  // see the transaction's own earlier writes (read-your-writes), and the
  // write set lands once per key at commit (last value wins), so per-key
  // versions advance exactly as the real store's did.  Strict 2PL
  // guarantees every recorded read matches this serial execution.
  ObjectStore oracle;
  for (const CommitRecord& rec : tm.commit_log()) {
    std::map<std::string, std::string> buffer;
    for (const CommitRecord::Op& op : rec.ops) {
      if (op.is_write) {
        buffer[op.key] = *op.value;
      } else {
        const auto it = buffer.find(op.key);
        const std::optional<std::string> expect =
            it != buffer.end() ? std::optional<std::string>(it->second)
                               : oracle.read(op.key);
        EXPECT_EQ(op.value, expect)
            << "txn " << rec.id << " read of " << op.key
            << " is not serializable at its commit position";
      }
    }
    for (const auto& [key, value] : buffer) oracle.write(key, value);
  }
  // Final states agree, per-key versions included.
  EXPECT_TRUE(store == oracle);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SerializabilityProperty,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

}  // namespace
}  // namespace coop::ccontrol
