#include "mgmt/placement.hpp"

#include <algorithm>
#include <limits>
#include <utility>

namespace coop::mgmt {

bool Domain::create_capsule(const std::string& capsule, net::NodeId node) {
  if (nodes_.find(node) == nodes_.end()) return false;
  return capsules_.try_emplace(capsule, node).second;
}

std::optional<net::NodeId> Domain::capsule_node(
    const std::string& capsule) const {
  auto it = capsules_.find(capsule);
  if (it == capsules_.end()) return std::nullopt;
  return it->second;
}

std::vector<std::string> Domain::capsule_clusters(
    const std::string& capsule) const {
  std::vector<std::string> out;
  for (const auto& [name, cluster] : clusters_) {
    if (cluster.capsule == capsule) out.push_back(name);
  }
  return out;
}

bool Domain::move_capsule(const std::string& capsule, net::NodeId to) {
  auto cit = capsules_.find(capsule);
  if (cit == capsules_.end() || nodes_.find(to) == nodes_.end())
    return false;
  for (auto& [name, cluster] : clusters_) {
    if (cluster.capsule != capsule) continue;
    auto from = nodes_.find(cluster.node);
    if (from != nodes_.end()) from->second.load -= cluster.load;
    nodes_[to].load += cluster.load;
    cluster.node = to;
  }
  cit->second = to;
  return true;
}

void Domain::create_cluster(const std::string& name, net::NodeId node,
                            double load, const std::string& capsule) {
  clusters_[name] = {name, node, load, capsule};
  auto it = nodes_.find(node);
  if (it != nodes_.end()) it->second.load += load;
}

bool Domain::move_cluster(const std::string& name, net::NodeId to) {
  auto it = clusters_.find(name);
  if (it == clusters_.end() || nodes_.find(to) == nodes_.end()) return false;
  auto from = nodes_.find(it->second.node);
  if (from != nodes_.end()) from->second.load -= it->second.load;
  nodes_[to].load += it->second.load;
  it->second.node = to;
  it->second.capsule.clear();  // independent move leaves the capsule
  return true;
}

std::optional<net::NodeId> LoadBalancingPolicy::place(
    const std::string& cluster, const Domain& domain,
    const UsageMonitor& usage) const {
  (void)cluster;
  (void)usage;
  const NodeInfo* best = nullptr;
  for (const auto& [id, info] : domain.nodes()) {
    const double headroom = info.capacity - info.load;
    if (best == nullptr ||
        headroom > best->capacity - best->load) {
      best = &info;
    }
  }
  if (best == nullptr) return std::nullopt;
  return best->id;
}

std::optional<net::NodeId> GroupAwarePolicy::place(
    const std::string& cluster, const Domain& domain,
    const UsageMonitor& usage) const {
  const auto pattern = usage.pattern(cluster);
  if (pattern.empty()) return std::nullopt;  // no data: no opinion

  const net::NodeId* best = nullptr;
  double best_score = std::numeric_limits<double>::infinity();
  for (const auto& [candidate, info] : domain.nodes()) {
    double score = 0;
    if (metric_ == Metric::kWorstCase) {
      for (const auto& [accessor, count] : pattern) {
        if (count == 0) continue;
        score = std::max(
            score, static_cast<double>(domain.latency(candidate, accessor)));
      }
    } else {
      double total = 0, weight = 0;
      for (const auto& [accessor, count] : pattern) {
        total += static_cast<double>(domain.latency(candidate, accessor)) *
                 static_cast<double>(count);
        weight += static_cast<double>(count);
      }
      score = weight > 0 ? total / weight : 0;
    }
    if (score < best_score) {
      best_score = score;
      best = &candidate;
    }
  }
  if (best == nullptr) return std::nullopt;
  return *best;
}

std::optional<net::NodeId> MigrationManager::evaluate(
    const std::string& cluster) {
  const auto current = domain_.location(cluster);
  if (!current) return std::nullopt;
  const auto proposed = policy_->place(cluster, domain_, usage_);
  if (!proposed || *proposed == *current) return std::nullopt;
  if (!domain_.move_cluster(cluster, *proposed)) return std::nullopt;
  ++migrations_;
  if (on_migrate_) on_migrate_(cluster, *current, *proposed);
  return proposed;
}

}  // namespace coop::mgmt
