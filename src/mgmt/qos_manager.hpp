// QoS management plane (§4.2.2: "Dynamic re-negotiation should also be
// supported, i.e. the alteration of quality of service parameters during
// the lifetime of the binding").
//
// Where streams::QosAdaptor is a per-binding closed loop, mgmt::QosManager
// is the *management-viewpoint* object: it supervises many bindings at
// once, owns their operating points, and makes every control decision
// observable — each transition lands in the registry ("mgmt.qos.<name>.*")
// and in the trace ring as kStream events, so an operator can replay why a
// stream was scaled or torn down.
//
// Policy per monitoring window, classified with streams::compare() against
// the binding's current *operating* spec (contract min_fps kept as the
// floor, so kUnacceptable always means "below the contract's integrity
// floor"):
//
//   kDegraded      — multiplicative decrease toward min_fps.
//   kHealthy       — after `healthy_to_restore` consecutive healthy
//                    windows, additive increase back toward the contract
//                    fps (AIMD over media rates).
//   kUnacceptable  — after `unacceptable_to_teardown` consecutive windows
//                    the binding is torn down: the source is stopped, the
//                    teardown callback runs, and a "qos_teardown" trace
//                    event records the decision.  §4.2.2-i: below the
//                    floor "the integrity of the medium is destroyed" —
//                    continuing to transmit is pure waste.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>

#include "obs/obs.hpp"
#include "sim/simulator.hpp"
#include "streams/stream.hpp"

namespace coop::mgmt {

/// Lifecycle of a managed binding.
enum class BindingState : std::uint8_t {
  kNominal = 0,   ///< operating at the contract
  kDegraded = 1,  ///< scaled below the contract, floor intact
  kTornDown = 2,  ///< below the floor too long; binding released
};

/// Stable short name used in metrics/traces ("nominal", ...).
[[nodiscard]] const char* binding_state_name(BindingState s) noexcept;

/// Control-loop tuning.
struct QosManagerConfig {
  int healthy_to_restore = 3;       ///< K healthy windows before probing up
  int unacceptable_to_teardown = 2; ///< consecutive windows before teardown
  double decrease_factor = 0.5;     ///< multiplicative decrease per window
  double increase_fraction = 0.10;  ///< additive step, as share of contract fps
  double tolerance = 0.85;          ///< compare() boundary slack
  /// How long one note_overload() keeps the manager in its overload
  /// window.  While the window is open, healthy verdicts are demoted to
  /// degraded, so media scales down in response to shed/pushback signals
  /// even when the stream's own link metrics still look fine.
  sim::Duration overload_window = sim::msec(500);
};

/// Supervises stream bindings: subscribes their monitors' windows and
/// drives source fps between the contract and its floor.
class QosManager {
 public:
  using TeardownFn = std::function<void()>;

  QosManager(sim::Simulator& sim, obs::Obs& obs, QosManagerConfig config = {});

  QosManager(const QosManager&) = delete;
  QosManager& operator=(const QosManager&) = delete;

  /// Puts a binding under management.  The manager takes over
  /// @p monitor's report subscription and keeps the monitor's spec at
  /// the binding's operating point (contract floor preserved).
  /// @p on_teardown runs once if the binding is ever torn down (release
  /// the admission reservation, close the binding object, ...).
  void manage(const std::string& name, streams::QosMonitor& monitor,
              streams::MediaSource& source, const streams::QosSpec& contract,
              TeardownFn on_teardown = {});

  /// Stops managing @p name without tearing it down (the source keeps
  /// whatever operating point it last had).
  void release(const std::string& name);

  /// Feeds an overload signal (an RPC shed/pushback, a kRejected fast-
  /// fail, a channel hold-back shed) into the control loop: opens — or
  /// extends — a window of QosManagerConfig::overload_window during which
  /// healthy stream verdicts are demoted to degraded, so supporting media
  /// yields bandwidth while the session's control plane is saturated.
  /// Each *opened* window (not each extension) counts in the global
  /// metric "mgmt.qos.overload_windows".
  void note_overload();

  /// True while the manager is inside an overload window.
  [[nodiscard]] bool in_overload_window() const noexcept {
    return sim_.now() < overload_until_;
  }

  [[nodiscard]] BindingState state(const std::string& name) const;
  [[nodiscard]] double operating_fps(const std::string& name) const;
  [[nodiscard]] std::size_t managed_count() const noexcept {
    return bindings_.size();
  }

 private:
  struct Binding {
    streams::QosMonitor* monitor = nullptr;
    streams::MediaSource* source = nullptr;
    streams::QosSpec contract;
    streams::QosSpec operating;
    TeardownFn on_teardown;
    BindingState state = BindingState::kNominal;
    int healthy_run = 0;
    int unacceptable_run = 0;
    // Registry-owned ("mgmt.qos.<name>.*"); pointers stay valid for the
    // registry's lifetime.
    util::Gauge* fps_gauge = nullptr;
    util::Gauge* state_gauge = nullptr;
    util::Counter* windows = nullptr;
    util::Counter* scale_downs = nullptr;
    util::Counter* scale_ups = nullptr;
    util::Counter* restores = nullptr;
    util::Counter* teardowns = nullptr;
  };

  void on_window(const std::string& name, const streams::QosReport& report);
  void transition(const std::string& name, Binding& b, BindingState next,
                  const char* trace_name, double fps_arg);

  sim::Simulator& sim_;
  obs::Obs& obs_;
  QosManagerConfig config_;
  std::map<std::string, Binding> bindings_;
  sim::TimePoint overload_until_ = 0;   ///< overload window end (virtual)
  util::Counter* overload_windows_;     ///< "mgmt.qos.overload_windows"
};

}  // namespace coop::mgmt
