#include "mgmt/qos_manager.hpp"

#include <algorithm>
#include <utility>

namespace coop::mgmt {

namespace {

std::string metric_key(const std::string& name, const char* leaf) {
  return "mgmt.qos." + name + "." + leaf;
}

}  // namespace

const char* binding_state_name(BindingState s) noexcept {
  switch (s) {
    case BindingState::kNominal:
      return "nominal";
    case BindingState::kDegraded:
      return "degraded";
    case BindingState::kTornDown:
      return "torn_down";
  }
  return "?";
}

QosManager::QosManager(sim::Simulator& sim, obs::Obs& obs,
                       QosManagerConfig config)
    : sim_(sim), obs_(obs), config_(config) {
  overload_windows_ = &obs_.metrics.counter("mgmt.qos.overload_windows");
}

void QosManager::note_overload() {
  const sim::TimePoint now = sim_.now();
  if (now >= overload_until_) {
    // A fresh window (not an extension of an open one).
    overload_windows_->inc();
    obs_.tracer.event(now, obs::Category::kStream, "qos_overload",
                      obs_.tracer.begin_trace(),
                      {{"until", static_cast<double>(
                                     now + config_.overload_window)}});
  }
  overload_until_ = now + config_.overload_window;
}

void QosManager::manage(const std::string& name, streams::QosMonitor& monitor,
                        streams::MediaSource& source,
                        const streams::QosSpec& contract,
                        TeardownFn on_teardown) {
  Binding b;
  b.monitor = &monitor;
  b.source = &source;
  b.contract = contract;
  b.operating = contract;
  b.on_teardown = std::move(on_teardown);
  auto& m = obs_.metrics;
  b.fps_gauge = &m.gauge(metric_key(name, "operating_fps"));
  b.state_gauge = &m.gauge(metric_key(name, "state"));
  b.windows = &m.counter(metric_key(name, "windows"));
  b.scale_downs = &m.counter(metric_key(name, "scale_downs"));
  b.scale_ups = &m.counter(metric_key(name, "scale_ups"));
  b.restores = &m.counter(metric_key(name, "restores"));
  b.teardowns = &m.counter(metric_key(name, "teardowns"));
  b.fps_gauge->set(contract.fps);
  b.state_gauge->set(0);
  monitor.set_spec(b.operating);
  bindings_[name] = std::move(b);
  // The manager becomes the monitor's subscriber; it re-classifies each
  // window itself against the operating point (the monitor's verdict used
  // its spec at evaluation time, which may lag a transition).
  monitor.on_report([this, name](const streams::QosReport& report,
                                 streams::QosVerdict /*verdict*/) {
    on_window(name, report);
  });
}

void QosManager::release(const std::string& name) { bindings_.erase(name); }

BindingState QosManager::state(const std::string& name) const {
  auto it = bindings_.find(name);
  return it == bindings_.end() ? BindingState::kTornDown : it->second.state;
}

double QosManager::operating_fps(const std::string& name) const {
  auto it = bindings_.find(name);
  return it == bindings_.end() ? 0.0 : it->second.operating.fps;
}

void QosManager::transition(const std::string& name, Binding& b,
                            BindingState next, const char* trace_name,
                            double fps_arg) {
  b.state = next;
  b.state_gauge->set(static_cast<double>(static_cast<std::uint8_t>(next)));
  // Every state transition is a management action — an entry point that
  // roots its own trace, so teardown decisions are findable by trace id.
  obs_.tracer.event(sim_.now(), obs::Category::kStream, trace_name,
                    obs_.tracer.begin_trace(), {{"fps", fps_arg}});
  (void)name;
}

void QosManager::on_window(const std::string& name,
                           const streams::QosReport& report) {
  auto it = bindings_.find(name);
  if (it == bindings_.end()) return;
  Binding& b = it->second;
  if (b.state == BindingState::kTornDown) return;
  b.windows->inc();
  // Judge against the operating point (what the loop asked the source to
  // do) — min_fps is still the contract floor, so kUnacceptable always
  // means the medium's integrity is gone.
  streams::QosVerdict verdict =
      streams::compare(b.operating, report, config_.tolerance);
  obs::Tracer& tracer = obs_.tracer;
  const sim::TimePoint now = sim_.now();

  // Overload window (note_overload): the control plane is shedding, so a
  // stream whose own link metrics look healthy must still yield — demote
  // the verdict one notch.  Media is the paper's "supporting" load; core
  // cooperative operations get the freed capacity.
  if (verdict == streams::QosVerdict::kHealthy && now < overload_until_) {
    verdict = streams::QosVerdict::kDegraded;
  }

  const auto scale_down = [&] {
    const double next = std::max(b.contract.min_fps,
                                 b.operating.fps * config_.decrease_factor);
    if (next >= b.operating.fps) return;
    b.operating.fps = next;
    b.source->set_fps(next);
    b.monitor->set_spec(b.operating);
    b.fps_gauge->set(next);
    b.scale_downs->inc();
    tracer.event(now, obs::Category::kStream, "qos_scale_down",
                 tracer.begin_trace(),
                 {{"fps", next},
                  {"achieved", report.achieved_fps}});
  };

  switch (verdict) {
    case streams::QosVerdict::kHealthy: {
      b.unacceptable_run = 0;
      ++b.healthy_run;
      if (b.healthy_run < config_.healthy_to_restore ||
          b.operating.fps >= b.contract.fps)
        break;
      // Additive increase: probe back toward the contract, one step per
      // healthy window once the K-window quarantine has passed.
      const double next =
          std::min(b.contract.fps,
                   b.operating.fps +
                       b.contract.fps * config_.increase_fraction);
      b.operating.fps = next;
      b.source->set_fps(next);
      b.monitor->set_spec(b.operating);
      b.fps_gauge->set(next);
      b.scale_ups->inc();
      tracer.event(now, obs::Category::kStream, "qos_scale_up",
                   tracer.begin_trace(), {{"fps", next}});
      if (next >= b.contract.fps) {
        b.restores->inc();
        transition(name, b, BindingState::kNominal, "qos_restored", next);
      }
      break;
    }
    case streams::QosVerdict::kDegraded: {
      b.healthy_run = 0;
      b.unacceptable_run = 0;
      scale_down();
      if (b.state == BindingState::kNominal)
        transition(name, b, BindingState::kDegraded, "qos_degraded",
                   b.operating.fps);
      break;
    }
    case streams::QosVerdict::kUnacceptable: {
      b.healthy_run = 0;
      ++b.unacceptable_run;
      scale_down();
      if (b.state == BindingState::kNominal)
        transition(name, b, BindingState::kDegraded, "qos_degraded",
                   b.operating.fps);
      if (b.unacceptable_run < config_.unacceptable_to_teardown) break;
      // Below the contract floor for too long: the medium's integrity is
      // gone, keep-alive traffic is pure waste.  Stop the source, tell
      // the owner, and leave the tombstone state in the registry.
      b.source->stop();
      b.teardowns->inc();
      transition(name, b, BindingState::kTornDown, "qos_teardown",
                 report.achieved_fps);
      if (b.on_teardown) {
        TeardownFn fn = std::move(b.on_teardown);
        fn();
      }
      break;
    }
  }
}

}  // namespace coop::mgmt
