// Engineering-viewpoint management: object placement and migration with
// group-aware policies (§4.2.1 Management).
//
// "The most important issues identified to date are that of the initial
// placement of objects (node management) and their subsequent re-location
// (cluster management). ... objects are likely to be shared by a group of
// users at geographically dispersed sites with each site requiring
// similar real-time response. ... management functions must be aware of
// the pattern of use of objects emanating from groups."
//
// The model follows the ODP engineering vocabulary: a Domain of nodes,
// each hosting capsules, each holding clusters of objects.  For placement
// purposes coop tracks the cluster (the unit of migration) and the nodes
// that access it; the UsageMonitor records who accesses what from where —
// the "mechanism" that "informs" the policies.
//
// Policies:
//   StaticPolicy       — wherever the object was created (the baseline).
//   LoadBalancingPolicy— least-loaded node, ignoring the group (classic).
//   GroupAwarePolicy   — node minimizing the worst (or mean) usage-
//                        weighted RTT across the accessing group.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "net/network.hpp"
#include "util/stats.hpp"

namespace coop::mgmt {

/// A managed node (engineering viewpoint).
struct NodeInfo {
  net::NodeId id = 0;
  double capacity = 1.0;  ///< abstract processing capacity
  double load = 0.0;      ///< current utilization in capacity units
};

/// A cluster: the unit of placement/migration, holding named objects.
struct Cluster {
  std::string name;
  net::NodeId node = 0;   ///< current placement
  double load = 0.1;      ///< capacity it consumes on its node
  std::string capsule;    ///< containing capsule ("" = standalone)
};

/// Records which node each access to each cluster comes from.
class UsageMonitor {
 public:
  void record(const std::string& cluster, net::NodeId from,
              std::uint64_t weight = 1) {
    usage_[cluster][from] += weight;
  }

  /// Per-node access counts for @p cluster.
  [[nodiscard]] std::map<net::NodeId, std::uint64_t> pattern(
      const std::string& cluster) const {
    auto it = usage_.find(cluster);
    return it == usage_.end() ? std::map<net::NodeId, std::uint64_t>{}
                              : it->second;
  }

  /// Ages all counters (multiplies by 1/2) so stale patterns fade and
  /// policies follow the group as it shifts.
  void decay() {
    for (auto& [cluster, by_node] : usage_) {
      for (auto& [node, count] : by_node) count /= 2;
    }
  }

  void forget(const std::string& cluster) { usage_.erase(cluster); }

 private:
  std::map<std::string, std::map<net::NodeId, std::uint64_t>> usage_;
};

/// The management domain, in ODP engineering-viewpoint terms: nodes host
/// *capsules* (address spaces / processes); capsules contain *clusters*
/// (the unit of migration).  Placement policies reason about clusters;
/// capsule operations move every contained cluster together (a process
/// migrating wholesale).
class Domain {
 public:
  explicit Domain(net::Network& net) : net_(net) {}

  void add_node(net::NodeId id, double capacity = 1.0) {
    nodes_[id] = {id, capacity, 0.0};
  }

  /// Creates a capsule on @p node.  Returns false if the node is unknown
  /// or the capsule already exists.
  bool create_capsule(const std::string& capsule, net::NodeId node);

  /// Moves a capsule — and every cluster inside it — to another node.
  bool move_capsule(const std::string& capsule, net::NodeId to);

  [[nodiscard]] std::optional<net::NodeId> capsule_node(
      const std::string& capsule) const;

  /// Clusters currently contained in @p capsule.
  [[nodiscard]] std::vector<std::string> capsule_clusters(
      const std::string& capsule) const;

  /// Creates a cluster on @p node.  If @p capsule is given, the cluster
  /// is placed inside it (and must share its node).
  void create_cluster(const std::string& name, net::NodeId node,
                      double load = 0.1, const std::string& capsule = {});

  /// Moves a cluster (adjusting node loads).  A cluster inside a capsule
  /// leaves it when moved independently.  Returns false if unknown.
  bool move_cluster(const std::string& name, net::NodeId to);

  [[nodiscard]] std::optional<net::NodeId> location(
      const std::string& cluster) const {
    auto it = clusters_.find(cluster);
    if (it == clusters_.end()) return std::nullopt;
    return it->second.node;
  }

  [[nodiscard]] const std::map<net::NodeId, NodeInfo>& nodes() const {
    return nodes_;
  }

  /// One-way network latency estimate between two nodes (the policies'
  /// distance metric); same-node access is free.
  [[nodiscard]] sim::Duration latency(net::NodeId a, net::NodeId b) const {
    if (a == b) return 0;
    return net_.link(a, b).latency;
  }

 private:
  net::Network& net_;
  std::map<net::NodeId, NodeInfo> nodes_;
  std::map<std::string, Cluster> clusters_;
  std::map<std::string, net::NodeId> capsules_;
};

/// Placement decision interface.
class PlacementPolicy {
 public:
  virtual ~PlacementPolicy() = default;
  /// Best node for @p cluster given current state; nullopt = no opinion.
  [[nodiscard]] virtual std::optional<net::NodeId> place(
      const std::string& cluster, const Domain& domain,
      const UsageMonitor& usage) const = 0;
  [[nodiscard]] virtual std::string name() const = 0;
};

/// Leaves objects where they are (the do-nothing baseline).
class StaticPolicy final : public PlacementPolicy {
 public:
  [[nodiscard]] std::optional<net::NodeId> place(
      const std::string&, const Domain&, const UsageMonitor&) const override {
    return std::nullopt;
  }
  [[nodiscard]] std::string name() const override { return "static"; }
};

/// Least-loaded node, group-blind.
class LoadBalancingPolicy final : public PlacementPolicy {
 public:
  [[nodiscard]] std::optional<net::NodeId> place(
      const std::string& cluster, const Domain& domain,
      const UsageMonitor& usage) const override;
  [[nodiscard]] std::string name() const override { return "load-balance"; }
};

/// Minimizes the group's response-time metric.
class GroupAwarePolicy final : public PlacementPolicy {
 public:
  enum class Metric : std::uint8_t {
    kWorstCase,  ///< minimize the maximum accessor RTT ("each site
                 ///< requiring similar real-time response")
    kMean,       ///< minimize usage-weighted mean RTT
  };

  explicit GroupAwarePolicy(Metric metric = Metric::kWorstCase)
      : metric_(metric) {}

  [[nodiscard]] std::optional<net::NodeId> place(
      const std::string& cluster, const Domain& domain,
      const UsageMonitor& usage) const override;
  [[nodiscard]] std::string name() const override { return "group-aware"; }

 private:
  Metric metric_;
};

/// Periodic migration driver: re-evaluates placements against the policy
/// and moves clusters whose improvement clears the hysteresis threshold.
class MigrationManager {
 public:
  MigrationManager(Domain& domain, UsageMonitor& usage,
                   std::unique_ptr<PlacementPolicy> policy)
      : domain_(domain), usage_(usage), policy_(std::move(policy)) {}

  /// Evaluates one cluster; migrates if the policy proposes a different
  /// node.  Returns the new node if a migration happened.
  std::optional<net::NodeId> evaluate(const std::string& cluster);

  /// Fired on each migration: (cluster, from, to).
  void on_migrate(std::function<void(const std::string&, net::NodeId,
                                     net::NodeId)>
                      fn) {
    on_migrate_ = std::move(fn);
  }

  [[nodiscard]] std::uint64_t migrations() const noexcept {
    return migrations_;
  }

 private:
  Domain& domain_;
  UsageMonitor& usage_;
  std::unique_ptr<PlacementPolicy> policy_;
  std::function<void(const std::string&, net::NodeId, net::NodeId)>
      on_migrate_;
  std::uint64_t migrations_ = 0;
};

}  // namespace coop::mgmt
