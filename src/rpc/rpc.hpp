// Request/response invocation over the simulated network — the ODP
// computational-viewpoint operation interface, engineered on datagrams.
//
// RpcClient::call provides timeout + retry with exponential backoff;
// RpcServer dedupes retried requests through a replay cache so application
// handlers observe *at-most-once* execution even though the transport is
// at-least-once.  Handlers are synchronous functions; simulated server
// processing time is modelled with a configurable delay before the reply.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <utility>

#include "net/network.hpp"
#include "sim/simulator.hpp"
#include "util/stats.hpp"

namespace coop::rpc {

/// Outcome of a call.
enum class Status : std::uint8_t {
  kOk = 0,
  kTimeout = 1,        ///< no reply within timeout after all retries
  kNoSuchMethod = 2,   ///< server has no handler for the method
  kAppError = 3,       ///< handler reported failure
};

/// What the caller's completion callback receives.
struct RpcResult {
  Status status = Status::kTimeout;
  std::string reply;
  sim::Duration rtt = 0;  ///< call issue -> completion (virtual time)

  [[nodiscard]] bool ok() const noexcept { return status == Status::kOk; }
};

/// Per-call knobs.
struct CallOptions {
  sim::Duration timeout = sim::msec(200);  ///< per-attempt timeout
  int retries = 2;                         ///< additional attempts
  double backoff = 2.0;                    ///< timeout multiplier per retry
  /// Deterministic, seeded retry jitter: each armed timeout is scaled by
  /// a uniform draw from [1 - jitter, 1 + jitter] out of the simulator's
  /// stream, decorrelating clients that timed out together (retry
  /// storms after a heal).  0 (the default) keeps exact backoff.  The
  /// "retry" trace event's `waited` attribute records the jittered wait
  /// that actually lapsed, not the nominal timeout.
  double backoff_jitter = 0.0;
  /// Causal parent of the call.  Invalid (the default) starts a fresh
  /// trace — an RPC issued directly by a user action is an entry point;
  /// one issued while servicing something else should pass that context
  /// so the whole chain shares a trace.  Retries stay inside the call's
  /// trace as child spans either way.
  obs::CausalContext parent{};
};

/// A handler returns either a reply body or an application error string.
struct HandlerResult {
  bool ok = true;
  std::string body;

  static HandlerResult success(std::string b) { return {true, std::move(b)}; }
  static HandlerResult error(std::string b) { return {false, std::move(b)}; }
};

using MethodFn = std::function<HandlerResult(const std::string& request)>;

/// Asynchronous handler: call @p reply exactly once, possibly after
/// virtual time has passed (lock waits, negotiations, floor queues).
using AsyncMethodFn = std::function<void(
    const std::string& request, std::function<void(HandlerResult)> reply)>;

/// Server side: registers named methods and answers requests.
class RpcServer : public net::Endpoint {
 public:
  RpcServer(net::Network& net, net::Address self);
  ~RpcServer() override;

  RpcServer(const RpcServer&) = delete;
  RpcServer& operator=(const RpcServer&) = delete;

  /// Registers (or replaces) the handler for @p method.
  void register_method(const std::string& method, MethodFn fn) {
    methods_[method] = std::move(fn);
  }

  /// Registers an asynchronous handler: the reply is sent whenever the
  /// handler completes it.  While a request is in progress, client
  /// retries are absorbed (neither re-executed nor answered until the
  /// first execution replies).
  void register_async_method(const std::string& method, AsyncMethodFn fn) {
    async_methods_[method] = std::move(fn);
  }

  /// Models server work: each request's reply is delayed by this much.
  void set_processing_time(sim::Duration d) noexcept { processing_ = d; }

  [[nodiscard]] net::Address address() const noexcept { return self_; }
  [[nodiscard]] std::uint64_t requests_handled() const noexcept {
    return handled_->value();
  }
  [[nodiscard]] std::uint64_t replays_served() const noexcept {
    return replays_->value();
  }

  void on_message(const net::Message& msg) override;

 private:
  void reply(const net::Address& to, std::uint64_t req_id, Status status,
             const std::string& body, const obs::CausalContext& handle_ctx,
             sim::TimePoint handle_start);

  net::Network& net_;
  net::Address self_;
  std::map<std::string, MethodFn> methods_;
  std::map<std::string, AsyncMethodFn> async_methods_;
  sim::Duration processing_ = 0;
  // Replay cache: (client address, request id) -> encoded reply.  Grants
  // at-most-once execution under client retries.
  //
  // Restart semantics: the cache is process state and dies with the
  // server — at-most-once holds *per server incarnation*.  A retry that
  // spans a crash-restart finds an empty cache and legitimately
  // re-executes; clients needing exactly-once across restarts must make
  // operations idempotent (chaos invariants key recorded executions by
  // incarnation for exactly this reason).
  std::map<std::pair<net::Address, std::uint64_t>, std::string> replay_;
  // Async requests currently executing (retries are absorbed).
  std::set<std::pair<net::Address, std::uint64_t>> in_progress_;
  // Replies delayed by processing_, cancelled on destruction so a server
  // torn down mid-request (the crash-restart lifecycle) leaves no
  // dangling timer.  Async handlers own their completion closures; an
  // application that destroys the server with async work in flight must
  // drop those closures itself.
  std::set<sim::EventId> pending_replies_;
  // Registry-owned ("rpc.server.<node>:<port>.*"); accessors are views.
  util::Counter* handled_;
  util::Counter* replays_;
};

/// Client side: issues calls and dispatches completions.
class RpcClient : public net::Endpoint {
 public:
  using Callback = std::function<void(const RpcResult&)>;

  RpcClient(net::Network& net, net::Address self);
  ~RpcClient() override;

  RpcClient(const RpcClient&) = delete;
  RpcClient& operator=(const RpcClient&) = delete;

  /// Invokes @p method on @p server.  @p done fires exactly once, either
  /// with the reply or with kTimeout after all retries lapse.
  void call(const net::Address& server, const std::string& method,
            const std::string& request, Callback done,
            CallOptions opts = {});

  [[nodiscard]] net::Address address() const noexcept { return self_; }
  [[nodiscard]] sim::Simulator& simulator() noexcept {
    return net_.simulator();
  }
  [[nodiscard]] const util::Summary& rtt_summary() const noexcept {
    return *rtts_;
  }
  [[nodiscard]] std::uint64_t timeouts() const noexcept {
    return timeouts_->value();
  }

  void on_message(const net::Message& msg) override;

 private:
  struct Outstanding {
    net::Address server;
    std::string wire;  ///< encoded request for retransmission
    Callback done;
    CallOptions opts;
    sim::TimePoint issued_at = 0;
    int attempt = 0;
    sim::Duration current_timeout = 0;  ///< nominal (pre-jitter) timeout
    sim::Duration armed_timeout = 0;    ///< jittered wait actually armed
    sim::EventId timer = sim::kInvalidEvent;
    obs::CausalContext ctx{};  ///< the call span; attempts are children
  };

  void transmit(std::uint64_t req_id, const obs::CausalContext& attempt_ctx);
  void arm_timeout(std::uint64_t req_id);
  void complete(std::uint64_t req_id, const RpcResult& result,
                const obs::CausalContext& cause);

  net::Network& net_;
  net::Address self_;
  std::map<std::uint64_t, Outstanding> outstanding_;
  std::uint64_t next_req_id_ = 1;
  // Registry-owned ("rpc.client.<node>:<port>.*"); accessors are views.
  util::Summary* rtts_;
  util::Counter* timeouts_;
};

}  // namespace coop::rpc
