// Request/response invocation over the simulated network — the ODP
// computational-viewpoint operation interface, engineered on datagrams.
//
// RpcClient::call provides timeout + retry with exponential backoff;
// RpcServer dedupes retried requests through a replay cache so application
// handlers observe *at-most-once* execution even though the transport is
// at-least-once.  Handlers are synchronous functions; simulated server
// processing time is modelled with a configurable delay before the reply.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <utility>

#include "net/network.hpp"
#include "net/overload.hpp"
#include "sim/simulator.hpp"
#include "util/stats.hpp"

namespace coop::rpc {

/// Outcome of a call.
enum class Status : std::uint8_t {
  kOk = 0,
  kTimeout = 1,        ///< no reply within timeout after all retries
  kNoSuchMethod = 2,   ///< server has no handler for the method
  kAppError = 3,       ///< handler reported failure
  /// Explicitly refused without execution: the server shed the request
  /// under admission control (pushback), or the client's own circuit
  /// breaker fast-failed the call before it touched the wire.  Unlike
  /// kTimeout this is a *cheap, immediate* signal — the overload plane's
  /// alternative to burning a full timeout discovering saturation.
  kRejected = 4,
};

/// What the caller's completion callback receives.
struct RpcResult {
  Status status = Status::kTimeout;
  std::string reply;
  sim::Duration rtt = 0;  ///< call issue -> completion (virtual time)

  [[nodiscard]] bool ok() const noexcept { return status == Status::kOk; }
};

/// Per-call knobs.
struct CallOptions {
  sim::Duration timeout = sim::msec(200);  ///< per-attempt timeout
  int retries = 2;                         ///< additional attempts
  double backoff = 2.0;                    ///< timeout multiplier per retry
  /// Absolute deadline (virtual time) for the whole call; 0 = none.
  /// Propagated in the net::Message header so servers drop already-
  /// expired work on dequeue.  Retries never extend past it: an armed
  /// timeout that would overshoot is truncated to the remaining slack,
  /// and a reply landing in the same sim step as the deadline wins.
  sim::TimePoint deadline = 0;
  /// Scheduling class stamped on the request — admission control sheds
  /// lowest-priority-first (kBackground before kControl before kCore).
  net::Priority priority = net::Priority::kCore;
  /// Deterministic, seeded retry jitter: each armed timeout is scaled by
  /// a uniform draw from [1 - jitter, 1 + jitter] out of the simulator's
  /// stream, decorrelating clients that timed out together (retry
  /// storms after a heal).  0 (the default) keeps exact backoff.  The
  /// "retry" trace event's `waited` attribute records the jittered wait
  /// that actually lapsed, not the nominal timeout.
  double backoff_jitter = 0.0;
  /// Causal parent of the call.  Invalid (the default) starts a fresh
  /// trace — an RPC issued directly by a user action is an entry point;
  /// one issued while servicing something else should pass that context
  /// so the whole chain shares a trace.  Retries stay inside the call's
  /// trace as child spans either way.
  obs::CausalContext parent{};
};

/// A handler returns either a reply body or an application error string.
struct HandlerResult {
  bool ok = true;
  std::string body;

  static HandlerResult success(std::string b) { return {true, std::move(b)}; }
  static HandlerResult error(std::string b) { return {false, std::move(b)}; }
};

using MethodFn = std::function<HandlerResult(const std::string& request)>;

/// Admission control for RpcServer: a bounded, priority-ordered run queue
/// with watermark shedding.  Without it the server model executes every
/// request on arrival — effectively infinite concurrency, the unbounded
/// queue at the heart of metastable overload.  With admission enabled the
/// server is a serial worker: requests queue, the queue is bounded, and at
/// the watermarks the server sheds lowest-priority-first, answering shed
/// requests with an immediate kRejected pushback (cheap — no service time)
/// that the client's circuit breaker consumes.
///
/// Watermarks express the paper's degradation order: awareness traffic
/// (kBackground) is refused first, floor/membership (kControl) second,
/// core cooperative operations (kCore) only when the queue is full.
struct AdmissionConfig {
  std::size_t queue_capacity = 64;        ///< hard cap (kCore watermark)
  std::size_t control_watermark = 44;     ///< depth at which kControl sheds
  std::size_t background_watermark = 24;  ///< depth at which kBackground sheds
  /// Honor message deadlines on dequeue: expired work is dropped (counted
  /// in rpc.expired_drops) instead of burning service time.
  bool drop_expired = true;
  /// Serve higher-priority classes first.  false = one global FIFO across
  /// classes — the classic overload-naive server, kept as the measurable
  /// baseline (experiment R2's "disabled" arm).
  bool priority_dequeue = true;
};

/// Asynchronous handler: call @p reply exactly once, possibly after
/// virtual time has passed (lock waits, negotiations, floor queues).
using AsyncMethodFn = std::function<void(
    const std::string& request, std::function<void(HandlerResult)> reply)>;

/// Server side: registers named methods and answers requests.
class RpcServer : public net::Endpoint {
 public:
  RpcServer(net::Network& net, net::Address self);
  ~RpcServer() override;

  RpcServer(const RpcServer&) = delete;
  RpcServer& operator=(const RpcServer&) = delete;

  /// Registers (or replaces) the handler for @p method.
  void register_method(const std::string& method, MethodFn fn) {
    methods_[method] = std::move(fn);
  }

  /// Registers an asynchronous handler: the reply is sent whenever the
  /// handler completes it.  While a request is in progress, client
  /// retries are absorbed (neither re-executed nor answered until the
  /// first execution replies).
  void register_async_method(const std::string& method, AsyncMethodFn fn) {
    async_methods_[method] = std::move(fn);
  }

  /// Models server work: each request's reply is delayed by this much.
  /// Under admission control this is also the serial service time, so
  /// 1/processing is the server's saturation throughput.
  void set_processing_time(sim::Duration d) noexcept { processing_ = d; }

  /// Switches the server to admission-controlled operation: synchronous
  /// requests flow through a bounded priority run queue serviced serially
  /// (see AdmissionConfig).  Async methods keep their own concurrency
  /// (they model lock waits and floor queues, which must interleave) and
  /// bypass the run queue.  Call before traffic arrives.
  void set_admission(const AdmissionConfig& config);

  [[nodiscard]] net::Address address() const noexcept { return self_; }
  [[nodiscard]] std::uint64_t requests_handled() const noexcept {
    return handled_->value();
  }
  [[nodiscard]] std::uint64_t replays_served() const noexcept {
    return replays_->value();
  }
  /// Requests refused by admission control, by priority class.
  [[nodiscard]] std::uint64_t shed(net::Priority p) const noexcept {
    return shed_[static_cast<std::size_t>(p)]->value();
  }
  [[nodiscard]] std::uint64_t shed_total() const noexcept {
    return shed_[0]->value() + shed_[1]->value() + shed_[2]->value();
  }
  /// Requests dropped expired on dequeue (deadline already passed).
  [[nodiscard]] std::uint64_t expired_drops() const noexcept {
    return expired_->value();
  }
  /// Current run-queue depth (0 when admission is off).
  [[nodiscard]] std::size_t queue_depth() const noexcept {
    return runq_[0].size() + runq_[1].size() + runq_[2].size();
  }

  void on_message(const net::Message& msg) override;

 private:
  /// One admitted-but-not-yet-serviced request.
  struct QueuedRequest {
    net::Address src;
    std::uint64_t req_id = 0;
    std::string method;
    std::string body;
    sim::TimePoint arrived = 0;
    sim::TimePoint deadline = 0;
    net::Priority priority = net::Priority::kCore;
    obs::CausalContext ctx{};
  };

  void reply(const net::Address& to, std::uint64_t req_id, Status status,
             const std::string& body, const obs::CausalContext& handle_ctx,
             sim::TimePoint handle_start);
  /// Immediate kRejected pushback for a shed request — deliberately NOT
  /// cached in the replay table, so a later retry may be admitted once
  /// the queue drains.
  void push_back_shed(const net::Message& msg, std::uint64_t req_id);
  void enqueue(const net::Message& msg, std::uint64_t req_id,
               std::string method, std::string body);
  /// Serial worker: dequeues highest-priority-first, drops expired work,
  /// executes the handler and schedules the reply.
  void service_next();

  net::Network& net_;
  net::Address self_;
  std::map<std::string, MethodFn> methods_;
  std::map<std::string, AsyncMethodFn> async_methods_;
  sim::Duration processing_ = 0;
  // Replay cache: (client address, request id) -> encoded reply.  Grants
  // at-most-once execution under client retries.
  //
  // Restart semantics: the cache is process state and dies with the
  // server — at-most-once holds *per server incarnation*.  A retry that
  // spans a crash-restart finds an empty cache and legitimately
  // re-executes; clients needing exactly-once across restarts must make
  // operations idempotent (chaos invariants key recorded executions by
  // incarnation for exactly this reason).
  std::map<std::pair<net::Address, std::uint64_t>, util::Buf> replay_;
  // Async requests currently executing (retries are absorbed).
  std::set<std::pair<net::Address, std::uint64_t>> in_progress_;
  // Replies delayed by processing_, cancelled on destruction so a server
  // torn down mid-request (the crash-restart lifecycle) leaves no
  // dangling timer.  Async handlers own their completion closures; an
  // application that destroys the server with async work in flight must
  // drop those closures itself.
  std::set<sim::EventId> pending_replies_;
  // Admission control (engaged by set_admission).  One FIFO per priority
  // class; service drains kCore first.  queued_ mirrors the queue's
  // (client, req id) keys so retries of queued requests are absorbed.
  std::optional<AdmissionConfig> admission_;
  std::array<std::deque<QueuedRequest>, net::kPriorityCount> runq_;
  std::set<std::pair<net::Address, std::uint64_t>> queued_;
  bool serving_ = false;
  // Registry-owned ("rpc.server.<node>:<port>.*"); accessors are views.
  util::Counter* handled_;
  util::Counter* replays_;
  util::Counter* shed_[net::kPriorityCount];
  util::Counter* expired_;
  util::Counter* expired_global_;  ///< shared "rpc.expired_drops"
  obs::Timeseries::SeriesId ts_shed_;   ///< shared "rpc.shed" trajectory
  obs::Profiler::SiteId prof_handle_;   ///< handler wall-clock attribution
};

/// Client-side overload guards (see net/overload.hpp).  One retry budget
/// and one circuit breaker are kept per destination; both default to
/// disabled, preserving the pre-overload-plane behaviour until a caller
/// opts in.
struct ClientOverloadConfig {
  net::RetryBudgetConfig budget{};
  net::CircuitBreakerConfig breaker{};
};

/// Client side: issues calls and dispatches completions.
class RpcClient : public net::Endpoint {
 public:
  using Callback = std::function<void(const RpcResult&)>;

  RpcClient(net::Network& net, net::Address self,
            ClientOverloadConfig overload = {});
  ~RpcClient() override;

  RpcClient(const RpcClient&) = delete;
  RpcClient& operator=(const RpcClient&) = delete;

  /// Invokes @p method on @p server.  @p done fires exactly once, either
  /// with the reply or with kTimeout after all retries lapse.
  void call(const net::Address& server, const std::string& method,
            const std::string& request, Callback done,
            CallOptions opts = {});

  [[nodiscard]] net::Address address() const noexcept { return self_; }
  [[nodiscard]] sim::Simulator& simulator() noexcept {
    return net_.simulator();
  }
  [[nodiscard]] const util::Summary& rtt_summary() const noexcept {
    return *rtts_;
  }
  [[nodiscard]] std::uint64_t timeouts() const noexcept {
    return timeouts_->value();
  }
  /// Calls fast-failed by an open circuit breaker (never hit the wire) or
  /// answered with a server pushback.
  [[nodiscard]] std::uint64_t rejected() const noexcept {
    return rejected_->value();
  }
  /// Retries refused because the destination's retry budget was dry.
  [[nodiscard]] std::uint64_t retries_denied() const noexcept {
    return retries_denied_->value();
  }
  /// Breaker state toward @p server (kClosed if never contacted).
  [[nodiscard]] net::CircuitBreaker::State breaker_state(
      const net::Address& server) const;
  /// Remaining retry tokens toward @p server.
  [[nodiscard]] double budget_tokens(const net::Address& server) const;

  void on_message(const net::Message& msg) override;

 private:
  struct Outstanding {
    net::Address server;
    util::Buf wire;  ///< encoded request, shared by every retransmission
    Callback done;
    CallOptions opts;
    sim::TimePoint issued_at = 0;
    int attempt = 0;
    sim::Duration current_timeout = 0;  ///< nominal (pre-jitter) timeout
    sim::Duration armed_timeout = 0;    ///< jittered wait actually armed
    bool deadline_requeued = false;  ///< expiry re-queued behind this step
    sim::EventId timer = sim::kInvalidEvent;
    obs::CausalContext ctx{};  ///< the call span; attempts are children
  };

  /// Per-destination overload guards, created lazily on first call.
  struct PeerGuards {
    net::RetryBudget budget;
    net::CircuitBreaker breaker;
  };

  PeerGuards& guards(const net::Address& server);
  void transmit(std::uint64_t req_id, const obs::CausalContext& attempt_ctx);
  void arm_timeout(std::uint64_t req_id);
  void on_timeout_expiry(std::uint64_t req_id);
  void complete(std::uint64_t req_id, const RpcResult& result,
                const obs::CausalContext& cause);

  net::Network& net_;
  net::Address self_;
  ClientOverloadConfig overload_;
  std::map<net::Address, PeerGuards> guards_;
  std::map<std::uint64_t, Outstanding> outstanding_;
  std::uint64_t next_req_id_ = 1;
  // Registry-owned ("rpc.client.<node>:<port>.*"); accessors are views.
  util::Summary* rtts_;
  util::Counter* timeouts_;
  util::Counter* rejected_;
  util::Counter* retries_denied_;
  // Shared windowed trajectories ("rpc.latency_us" / "rpc.ok" /
  // "rpc.error"): the per-window view the SLO watchdog evaluates.
  obs::Timeseries::SeriesId ts_latency_;
  obs::Timeseries::SeriesId ts_ok_;
  obs::Timeseries::SeriesId ts_error_;
};

}  // namespace coop::rpc
