#include "rpc/trader.hpp"

#include <utility>

#include "util/codec.hpp"

namespace coop::rpc {

namespace {

void encode_offer(util::Writer& w, const Offer& o) {
  w.put_string(o.service_type).put(o.provider.node).put(o.provider.port);
  w.put(static_cast<std::uint32_t>(o.properties.size()));
  for (const auto& [k, v] : o.properties) w.put_string(k).put_string(v);
}

Offer decode_offer(util::Reader& r) {
  Offer o;
  o.service_type = r.get_string();
  o.provider.node = r.get<net::NodeId>();
  o.provider.port = r.get<net::PortId>();
  const auto n = r.get<std::uint32_t>();
  for (std::uint32_t i = 0; i < n && !r.failed(); ++i) {
    std::string k = r.get_string();
    std::string v = r.get_string();
    o.properties.emplace(std::move(k), std::move(v));
  }
  return o;
}

std::map<std::string, std::string> decode_constraints(util::Reader& r) {
  std::map<std::string, std::string> c;
  const auto n = r.get<std::uint32_t>();
  for (std::uint32_t i = 0; i < n && !r.failed(); ++i) {
    std::string k = r.get_string();
    std::string v = r.get_string();
    c.emplace(std::move(k), std::move(v));
  }
  return c;
}

}  // namespace

Trader::Trader(net::Network& net, net::Address self) : server_(net, self) {
  server_.register_method("export", [this](const std::string& b) {
    return handle_export(b);
  });
  server_.register_method("withdraw", [this](const std::string& b) {
    return handle_withdraw(b);
  });
  server_.register_method("import", [this](const std::string& b) {
    return handle_import(b);
  });
}

HandlerResult Trader::handle_export(const std::string& body) {
  util::Reader r(body);
  Offer o = decode_offer(r);
  if (r.failed()) return HandlerResult::error("bad offer encoding");
  const std::uint64_t id = next_offer_id_++;
  offer_index_[id] = offers_.size();
  offers_.push_back(std::move(o));
  util::Writer w;
  w.put(id);
  return HandlerResult::success(w.take());
}

HandlerResult Trader::handle_withdraw(const std::string& body) {
  util::Reader r(body);
  const auto id = r.get<std::uint64_t>();
  if (r.failed()) return HandlerResult::error("bad withdraw encoding");
  auto it = offer_index_.find(id);
  if (it == offer_index_.end()) return HandlerResult::error("no such offer");
  const std::size_t slot = it->second;
  offer_index_.erase(it);
  // Swap-remove; patch the index entry of the offer that moved.
  if (slot != offers_.size() - 1) {
    offers_[slot] = std::move(offers_.back());
    for (auto& [oid, s] : offer_index_) {
      if (s == offers_.size() - 1) {
        s = slot;
        break;
      }
    }
  }
  offers_.pop_back();
  return HandlerResult::success("");
}

HandlerResult Trader::handle_import(const std::string& body) {
  util::Reader r(body);
  const std::string type = r.get_string();
  const auto constraints = decode_constraints(r);
  if (r.failed()) return HandlerResult::error("bad import encoding");
  util::Writer w;
  std::uint32_t count = 0;
  for (const auto& o : offers_) {
    if (o.service_type == type && o.matches(constraints)) ++count;
  }
  w.put(count);
  for (const auto& o : offers_) {
    if (o.service_type == type && o.matches(constraints)) encode_offer(w, o);
  }
  return HandlerResult::success(w.take());
}

void TraderClient::export_offer(const Offer& offer,
                                std::function<void(std::uint64_t)> done) {
  util::Writer w;
  encode_offer(w, offer);
  rpc_.call(trader_, "export", w.take(),
            [done = std::move(done)](const RpcResult& res) {
              if (!res.ok()) {
                done(0);
                return;
              }
              util::Reader r(res.reply);
              const auto id = r.get<std::uint64_t>();
              done(r.failed() ? 0 : id);
            });
}

void TraderClient::withdraw(std::uint64_t offer_id,
                            std::function<void(bool)> done) {
  util::Writer w;
  w.put(offer_id);
  rpc_.call(trader_, "withdraw", w.take(),
            [done = std::move(done)](const RpcResult& res) {
              done(res.ok());
            });
}

void TraderClient::import(
    const std::string& service_type,
    const std::map<std::string, std::string>& constraints,
    std::function<void(std::vector<Offer>)> done) {
  util::Writer w;
  w.put_string(service_type);
  w.put(static_cast<std::uint32_t>(constraints.size()));
  for (const auto& [k, v] : constraints) w.put_string(k).put_string(v);
  rpc_.call(trader_, "import", w.take(),
            [done = std::move(done)](const RpcResult& res) {
              std::vector<Offer> offers;
              if (res.ok()) {
                util::Reader r(res.reply);
                const auto n = r.get<std::uint32_t>();
                for (std::uint32_t i = 0; i < n && !r.failed(); ++i)
                  offers.push_back(decode_offer(r));
                if (r.failed()) offers.clear();
              }
              done(std::move(offers));
            });
}

}  // namespace coop::rpc
