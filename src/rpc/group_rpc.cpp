#include "rpc/group_rpc.hpp"

#include <utility>

namespace coop::rpc {

void GroupInvoker::invoke(const std::vector<net::Address>& targets,
                          const std::string& method,
                          const std::string& request, Callback done,
                          GroupCallOptions opts) {
  const std::uint64_t call_id = next_call_id_++;
  Call& call = calls_[call_id];
  call.result.replies.assign(targets.size(), {});
  call.pending = targets.size();
  call.issued_at = rpc_.simulator().now();
  call.done = std::move(done);
  switch (opts.policy) {
    case ReplyPolicy::kFirst:
      call.needed = targets.empty() ? 0 : 1;
      break;
    case ReplyPolicy::kQuorum:
      call.needed = opts.quorum;
      break;
    case ReplyPolicy::kAll:
      call.needed = targets.size();
      break;
  }

  // Propagate the group deadline into each member call so it rides the
  // message headers: servers drop the work once it is pointless instead
  // of servicing replies this invocation will never look at.  An explicit
  // per-call deadline (already absolute) wins.
  if (opts.deadline > 0 && opts.per_call.deadline == 0) {
    opts.per_call.deadline = rpc_.simulator().now() + opts.deadline;
  }

  if (opts.deadline > 0) {
    call.deadline_timer = rpc_.simulator().schedule_after(
        opts.deadline, [this, call_id] {
          // A reply landing in the same sim step as the deadline must
          // win, but this timer was scheduled at invoke time, so the
          // step's FIFO tie-break runs it *before* same-instant reply
          // deliveries.  Re-queue the expiry behind everything already
          // scheduled for this instant (zero-delay reschedule); a reply
          // that completes the call meanwhile cancels it via
          // deadline_timer.
          auto it = calls_.find(call_id);
          if (it == calls_.end() || it->second.completed) return;
          it->second.deadline_timer = rpc_.simulator().schedule_after(
              0, [this, call_id] { finish(call_id, true); });
        });
  }

  for (std::size_t i = 0; i < targets.size(); ++i) {
    rpc_.call(
        targets[i], method, request,
        [this, call_id, i](const RpcResult& res) {
          auto it = calls_.find(call_id);
          if (it == calls_.end() || it->second.completed) return;
          Call& c = it->second;
          c.result.replies[i] = res;
          if (res.ok()) ++c.result.ok_count;
          if (c.pending > 0) --c.pending;
          maybe_complete(call_id);
        },
        opts.per_call);
  }

  maybe_complete(call_id);  // empty target list completes immediately
}

void GroupInvoker::maybe_complete(std::uint64_t call_id) {
  auto it = calls_.find(call_id);
  if (it == calls_.end() || it->second.completed) return;
  Call& c = it->second;
  if (c.result.ok_count >= c.needed) {
    finish(call_id, false);
  } else if (c.pending == 0) {
    finish(call_id, false);  // everyone answered/timed out; policy unmet
  }
}

void GroupInvoker::finish(std::uint64_t call_id, bool by_deadline) {
  auto it = calls_.find(call_id);
  if (it == calls_.end() || it->second.completed) return;
  Call& c = it->second;
  c.completed = true;
  if (c.deadline_timer != sim::kInvalidEvent) {
    rpc_.simulator().cancel(c.deadline_timer);
    c.deadline_timer = sim::kInvalidEvent;
  }
  c.result.satisfied = c.result.ok_count >= c.needed;
  c.result.deadline_hit = by_deadline;
  c.result.latency = rpc_.simulator().now() - c.issued_at;
  Callback done = std::move(c.done);
  GroupResult result = std::move(c.result);
  calls_.erase(it);
  if (done) done(result);
}

}  // namespace coop::rpc
