// Group invocation with real-time bounds — §4.2.2-iv: "group RPC protocols
// are required which provide bounded real-time performance".
//
// A group call fans one request out to N servers and collects replies under
// a *reply policy* (first / quorum-k / all) and an optional *deadline*.  The
// completion callback fires exactly once: as soon as the policy is
// satisfied, or at the deadline with whatever arrived (satisfied=false) —
// the bounded-time behaviour a conference floor-change or camera-start
// group invocation needs (late stragglers are reported as misses, they do
// not stall the session).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "rpc/rpc.hpp"

namespace coop::rpc {

/// When a group call is considered complete.
enum class ReplyPolicy : std::uint8_t {
  kFirst,   ///< first successful reply wins
  kQuorum,  ///< at least `quorum` successful replies
  kAll,     ///< every target must reply
};

struct GroupCallOptions {
  ReplyPolicy policy = ReplyPolicy::kAll;
  std::size_t quorum = 0;  ///< used by kQuorum
  /// Hard real-time bound; 0 means unbounded (wait for per-call timeouts).
  sim::Duration deadline = 0;
  CallOptions per_call = {};
};

/// Aggregate outcome of one group invocation.
struct GroupResult {
  bool satisfied = false;              ///< policy met (within deadline)
  bool deadline_hit = false;           ///< completion forced by deadline
  std::vector<RpcResult> replies;      ///< indexed like the target list
  std::size_t ok_count = 0;
  sim::Duration latency = 0;           ///< issue -> completion
};

/// Issues group calls through an existing RpcClient.
class GroupInvoker {
 public:
  explicit GroupInvoker(RpcClient& rpc) : rpc_(rpc) {}

  using Callback = std::function<void(const GroupResult&)>;

  /// Fans @p method out to @p targets.  @p done fires exactly once.
  void invoke(const std::vector<net::Address>& targets,
              const std::string& method, const std::string& request,
              Callback done, GroupCallOptions opts = {});

 private:
  struct Call {
    GroupResult result;
    std::size_t pending = 0;
    std::size_t needed = 0;
    sim::TimePoint issued_at = 0;
    sim::EventId deadline_timer = sim::kInvalidEvent;
    Callback done;
    bool completed = false;
  };

  void maybe_complete(std::uint64_t call_id);
  void finish(std::uint64_t call_id, bool by_deadline);

  RpcClient& rpc_;
  std::map<std::uint64_t, Call> calls_;
  std::uint64_t next_call_id_ = 1;
};

}  // namespace coop::rpc
