// ODP trading function: service export / import by type and properties.
//
// The trader is the ODP name service through which objects discover each
// other — a session server exports "session.whiteboard" with properties
// like {"room": "ops"}, and a joining member imports by type (optionally
// constrained on properties) to obtain provider addresses.  Built on the
// coop RPC layer, so discovery traffic shares the simulated network with
// everything else.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "rpc/rpc.hpp"

namespace coop::rpc {

/// One exported service offer.
struct Offer {
  std::string service_type;
  net::Address provider;
  std::map<std::string, std::string> properties;

  [[nodiscard]] bool matches(
      const std::map<std::string, std::string>& constraints) const {
    for (const auto& [k, v] : constraints) {
      auto it = properties.find(k);
      if (it == properties.end() || it->second != v) return false;
    }
    return true;
  }
};

/// Server half: hosts the offer database.  Methods: "export", "withdraw",
/// "import".
class Trader {
 public:
  Trader(net::Network& net, net::Address self);

  [[nodiscard]] net::Address address() const noexcept {
    return server_.address();
  }
  [[nodiscard]] std::size_t offer_count() const noexcept {
    return offers_.size();
  }

 private:
  HandlerResult handle_export(const std::string& body);
  HandlerResult handle_withdraw(const std::string& body);
  HandlerResult handle_import(const std::string& body);

  RpcServer server_;
  std::vector<Offer> offers_;
  std::uint64_t next_offer_id_ = 1;
  std::map<std::uint64_t, std::size_t> offer_index_;  // id -> offers_ slot
};

/// Client half: typed wrappers over the trader's RPC methods.
class TraderClient {
 public:
  TraderClient(RpcClient& rpc, net::Address trader)
      : rpc_(rpc), trader_(trader) {}

  /// Exports an offer; @p done receives the offer id (0 on failure).
  void export_offer(const Offer& offer,
                    std::function<void(std::uint64_t)> done);

  /// Withdraws a previously exported offer.
  void withdraw(std::uint64_t offer_id, std::function<void(bool)> done);

  /// Imports all offers of @p service_type matching @p constraints.
  void import(const std::string& service_type,
              const std::map<std::string, std::string>& constraints,
              std::function<void(std::vector<Offer>)> done);

 private:
  RpcClient& rpc_;
  net::Address trader_;
};

}  // namespace coop::rpc
