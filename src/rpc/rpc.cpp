#include "rpc/rpc.hpp"

#include <algorithm>
#include <memory>
#include <utility>

#include "util/codec.hpp"

namespace coop::rpc {

namespace {

enum WireType : std::uint8_t { kRequest = 1, kReply = 2 };

/// Builds a per-instance registry key: "<base>.<node>:<port>.<leaf>".
std::string metric_key(const char* base, const net::Address& addr,
                       const char* leaf) {
  return std::string(base) + "." + std::to_string(addr.node) + ":" +
         std::to_string(addr.port) + "." + leaf;
}

}  // namespace

// ------------------------------------------------------------------- server

RpcServer::RpcServer(net::Network& net, net::Address self)
    : net_(net), self_(self) {
  auto& m = net_.obs().metrics;
  handled_ = &m.counter(metric_key("rpc.server", self_, "handled"));
  replays_ = &m.counter(metric_key("rpc.server", self_, "replays"));
  shed_[0] = &m.counter(metric_key("rpc.server", self_, "shed_core"));
  shed_[1] = &m.counter(metric_key("rpc.server", self_, "shed_control"));
  shed_[2] = &m.counter(metric_key("rpc.server", self_, "shed_background"));
  expired_ = &m.counter(metric_key("rpc.server", self_, "expired"));
  expired_global_ = &m.counter("rpc.expired_drops");
  ts_shed_ = net_.obs().series.series("rpc.shed");
  prof_handle_ = net_.obs().profiler.site("rpc.handle", obs::Category::kRpc);
  net_.attach(self_, *this);
}

RpcServer::~RpcServer() {
  for (const sim::EventId id : pending_replies_) net_.simulator().cancel(id);
  net_.detach(self_);
}

void RpcServer::set_admission(const AdmissionConfig& config) {
  admission_ = config;
}

void RpcServer::reply(const net::Address& to, std::uint64_t req_id,
                      Status status, const std::string& body,
                      const obs::CausalContext& handle_ctx,
                      sim::TimePoint handle_start) {
  // The service-time span: request arrival at the server to reply leaving
  // it (under admission: service start to reply, so run-queue wait is not
  // misattributed as service).  The critical-path analyzer buckets this as
  // "service".
  net_.obs().tracer.span(handle_start, net_.simulator().now(),
                         obs::Category::kRpc, "handle", handle_ctx,
                         {{"req", static_cast<double>(req_id)}});
  util::Writer w;
  w.put(kReply).put(req_id).put(status).put_string(body);
  // The replay cache and the outgoing datagram share one wire buffer.
  util::Buf wire = w.take_buf();
  replay_[{to, req_id}] = wire;
  net_.send({.src = self_, .dst = to, .payload = std::move(wire),
             .ctx = handle_ctx});
}

void RpcServer::push_back_shed(const net::Message& msg, std::uint64_t req_id) {
  // Pushback is the cheap path: no handler, no processing delay, and no
  // replay-cache entry — a retry after the queue drains may be admitted.
  util::Writer w;
  w.put(kReply).put(req_id).put(Status::kRejected).put_string("");
  net_.send({.src = self_, .dst = msg.src, .payload = w.take_buf(),
             .ctx = msg.ctx});
}

void RpcServer::on_message(const net::Message& msg) {
  util::Reader r(msg.payload);
  if (r.get<std::uint8_t>() != kRequest) return;
  const auto req_id = r.get<std::uint64_t>();
  const std::string method = r.get_string();
  const std::string body = r.get_string();
  if (r.failed()) return;

  obs::Tracer& tracer = net_.obs().tracer;
  const sim::TimePoint arrived = net_.simulator().now();

  // Retried request already executed: replay the cached reply verbatim.
  // The reply rides the retry's context, so the client's completion links
  // back to whichever attempt actually reached the server.
  if (auto it = replay_.find({msg.src, req_id}); it != replay_.end()) {
    replays_->inc();
    tracer.event(arrived, obs::Category::kRpc, "replay", msg.ctx,
                 {{"req", static_cast<double>(req_id)}});
    net_.send({.src = self_, .dst = msg.src, .payload = it->second,
               .ctx = msg.ctx});
    return;
  }

  const obs::CausalContext handle_ctx =
      msg.ctx.valid() ? msg.ctx.child(tracer.mint_id()) : obs::CausalContext{};

  if (auto async = async_methods_.find(method);
      async != async_methods_.end()) {
    const std::pair<net::Address, std::uint64_t> key{msg.src, req_id};
    if (!in_progress_.insert(key).second) return;  // retry while running
    handled_->inc();
    async->second(body, [this, key, handle_ctx, arrived](HandlerResult hr) {
      in_progress_.erase(key);
      reply(key.first, key.second,
            hr.ok ? Status::kOk : Status::kAppError, hr.body, handle_ctx,
            arrived);
    });
    return;
  }

  auto handler = methods_.find(method);
  if (handler == methods_.end()) {
    reply(msg.src, req_id, Status::kNoSuchMethod, method, handle_ctx,
          arrived);
    return;
  }

  if (admission_) {
    // A retry of a request still sitting in the run queue is absorbed, the
    // same contract as in_progress_ for async handlers: the queued
    // execution will answer it.
    if (queued_.count({msg.src, req_id}) != 0) return;

    const std::size_t depth = queue_depth();
    const auto pi = static_cast<std::size_t>(msg.priority);
    const std::size_t watermark =
        msg.priority == net::Priority::kCore ? admission_->queue_capacity
        : msg.priority == net::Priority::kControl
            ? admission_->control_watermark
            : admission_->background_watermark;
    if (depth >= watermark) {
      shed_[pi]->inc();
      net_.obs().series.count(ts_shed_, arrived);
      tracer.event(arrived, obs::Category::kRpc, "shed", msg.ctx,
                   {{"req", static_cast<double>(req_id)},
                    {"priority", static_cast<double>(pi)},
                    {"depth", static_cast<double>(depth)}});
      push_back_shed(msg, req_id);
      return;
    }
    enqueue(msg, req_id, method, body);
    return;
  }

  // Legacy (no admission control): execute now — state mutation is
  // immediate and exactly-once — and send the reply after the modelled
  // processing delay.  Every request is serviced concurrently, which is
  // exactly the unbounded-queue behaviour the admission path replaces.
  handled_->inc();
  HandlerResult hr;
  {
    obs::ProfScope prof(net_.obs().profiler, prof_handle_);
    hr = handler->second(body);
  }
  const Status status = hr.ok ? Status::kOk : Status::kAppError;
  if (processing_ > 0) {
    auto id_holder = std::make_shared<sim::EventId>(sim::kInvalidEvent);
    *id_holder = net_.simulator().schedule_after(
        processing_, [this, id_holder, src = msg.src, req_id, status,
                      body = hr.body, handle_ctx, arrived] {
          pending_replies_.erase(*id_holder);
          reply(src, req_id, status, body, handle_ctx, arrived);
        });
    pending_replies_.insert(*id_holder);
  } else {
    reply(msg.src, req_id, status, hr.body, handle_ctx, arrived);
  }
}

void RpcServer::enqueue(const net::Message& msg, std::uint64_t req_id,
                        std::string method, std::string body) {
  QueuedRequest q;
  q.src = msg.src;
  q.req_id = req_id;
  q.method = std::move(method);
  q.body = std::move(body);
  q.arrived = net_.simulator().now();
  q.deadline = msg.deadline;
  q.priority = msg.priority;
  q.ctx = msg.ctx.valid() ? msg.ctx.child(net_.obs().tracer.mint_id())
                          : obs::CausalContext{};
  queued_.insert({q.src, req_id});
  runq_[static_cast<std::size_t>(msg.priority)].push_back(std::move(q));
  service_next();
}

void RpcServer::service_next() {
  if (serving_) return;
  obs::Tracer& tracer = net_.obs().tracer;
  while (true) {
    std::deque<QueuedRequest>* queue = nullptr;
    if (admission_ && !admission_->priority_dequeue) {
      // Global FIFO: the earliest arrival across all classes, regardless
      // of priority (ties broken by class index, deterministically).
      for (auto& candidate : runq_) {
        if (candidate.empty()) continue;
        if (queue == nullptr ||
            candidate.front().arrived < queue->front().arrived) {
          queue = &candidate;
        }
      }
    } else {
      for (auto& candidate : runq_) {
        if (!candidate.empty()) {
          queue = &candidate;
          break;
        }
      }
    }
    if (queue == nullptr) return;
    QueuedRequest q = std::move(queue->front());
    queue->pop_front();
    // NB: q stays in queued_ until its reply is replay-cached (or the
    // request expires) — a retransmit landing mid-service must still be
    // absorbed, or the handler would run twice.
    const sim::TimePoint now = net_.simulator().now();

    // Deadline propagation pays off here: expired work is dropped at
    // dequeue, before any service time is burned on it.  The client's own
    // deadline already fired (or is firing this step), so no reply is
    // owed; silence keeps the drop free.
    if (admission_ && admission_->drop_expired && q.deadline > 0 &&
        now >= q.deadline) {
      queued_.erase({q.src, q.req_id});
      expired_->inc();
      expired_global_->inc();
      tracer.event(now, obs::Category::kRpc, "expired", q.ctx,
                   {{"req", static_cast<double>(q.req_id)},
                    {"late", static_cast<double>(now - q.deadline)}});
      continue;
    }

    // Run-queue wait span, bucketed as "queue" by the critical-path
    // analyzer (the server-side analogue of a link serializer queue).
    if (now > q.arrived) {
      tracer.span(q.arrived, now, obs::Category::kRpc, "runq", q.ctx,
                  {{"req", static_cast<double>(q.req_id)}});
    }

    handled_->inc();
    HandlerResult hr;
    {
      obs::ProfScope prof(net_.obs().profiler, prof_handle_);
      hr = methods_[q.method](q.body);
    }
    const Status status = hr.ok ? Status::kOk : Status::kAppError;
    if (processing_ > 0) {
      serving_ = true;
      auto id_holder = std::make_shared<sim::EventId>(sim::kInvalidEvent);
      *id_holder = net_.simulator().schedule_after(
          processing_, [this, id_holder, src = q.src, req_id = q.req_id,
                        status, body = hr.body, ctx = q.ctx, now] {
            pending_replies_.erase(*id_holder);
            serving_ = false;
            queued_.erase({src, req_id});
            reply(src, req_id, status, body, ctx, now);
            service_next();
          });
      pending_replies_.insert(*id_holder);
      return;
    }
    queued_.erase({q.src, q.req_id});
    reply(q.src, q.req_id, status, hr.body, q.ctx, now);
  }
}

// ------------------------------------------------------------------- client

RpcClient::RpcClient(net::Network& net, net::Address self,
                     ClientOverloadConfig overload)
    : net_(net), self_(self), overload_(overload) {
  auto& m = net_.obs().metrics;
  rtts_ = &m.summary(metric_key("rpc.client", self_, "rtt_us"));
  timeouts_ = &m.counter(metric_key("rpc.client", self_, "timeouts"));
  rejected_ = &m.counter(metric_key("rpc.client", self_, "rejected"));
  retries_denied_ =
      &m.counter(metric_key("rpc.client", self_, "retries_denied"));
  obs::Timeseries& ts = net_.obs().series;
  ts_latency_ = ts.series("rpc.latency_us");
  ts_ok_ = ts.series("rpc.ok");
  ts_error_ = ts.series("rpc.error");
  net_.attach(self_, *this);
}

RpcClient::~RpcClient() {
  for (auto& [id, o] : outstanding_) {
    if (o.timer != sim::kInvalidEvent) net_.simulator().cancel(o.timer);
  }
  net_.detach(self_);
}

RpcClient::PeerGuards& RpcClient::guards(const net::Address& server) {
  auto [it, inserted] = guards_.try_emplace(server);
  if (inserted) {
    it->second.budget = net::RetryBudget(overload_.budget);
    it->second.breaker = net::CircuitBreaker(overload_.breaker);
  }
  return it->second;
}

net::CircuitBreaker::State RpcClient::breaker_state(
    const net::Address& server) const {
  auto it = guards_.find(server);
  return it == guards_.end() ? net::CircuitBreaker::State::kClosed
                             : it->second.breaker.state();
}

double RpcClient::budget_tokens(const net::Address& server) const {
  auto it = guards_.find(server);
  return it == guards_.end() ? overload_.budget.initial
                             : it->second.budget.tokens();
}

void RpcClient::call(const net::Address& server, const std::string& method,
                     const std::string& request, Callback done,
                     CallOptions opts) {
  const std::uint64_t req_id = next_req_id_++;
  util::Writer w;
  w.put(static_cast<std::uint8_t>(1) /* kRequest */)
      .put(req_id)
      .put_string(method)
      .put_string(request);
  obs::Tracer& tracer = net_.obs().tracer;
  const sim::TimePoint now = net_.simulator().now();
  Outstanding o;
  o.server = server;
  o.wire = w.take_buf();
  o.done = std::move(done);
  o.opts = opts;
  o.issued_at = now;
  o.current_timeout = opts.timeout;
  // A call either continues the caller's trace or is itself an entry
  // point; every attempt, hop, and the server's handling descend from
  // this span.
  o.ctx = opts.parent.valid() ? opts.parent.child(tracer.mint_id())
                              : tracer.begin_trace();
  const obs::CausalContext call_ctx = o.ctx;
  outstanding_[req_id] = std::move(o);
  tracer.event(now, obs::Category::kRpc, "call", call_ctx,
               {{"req", static_cast<double>(req_id)},
                {"server", static_cast<double>(server.node)}});

  // A call issued at or past its own deadline is dead on arrival.  This
  // must precede the breaker check: a half-open breaker's probe slot is
  // only released by record_success/record_failure, and a DOA completion
  // records neither.
  if (opts.deadline > 0 && now >= opts.deadline) {
    net_.simulator().schedule_after(0, [this, req_id, call_ctx] {
      complete(req_id, {.status = Status::kTimeout, .reply = {}, .rtt = 0},
               call_ctx);
    });
    return;
  }

  // Breaker fast-fail: an open circuit answers locally with kRejected —
  // no wire traffic, no timeout burned.  Completion is deferred one step
  // so call() never re-enters the caller synchronously.
  if (!guards(server).breaker.allow(now)) {
    rejected_->inc();
    const obs::CausalContext reject_ctx = call_ctx.child(tracer.mint_id());
    tracer.event(now, obs::Category::kRpc, "rejected", reject_ctx,
                 {{"req", static_cast<double>(req_id)}});
    net_.simulator().schedule_after(0, [this, req_id, reject_ctx] {
      complete(req_id, {.status = Status::kRejected, .reply = {}, .rtt = 0},
               reject_ctx);
    });
    return;
  }

  transmit(req_id, call_ctx);
}

void RpcClient::transmit(std::uint64_t req_id,
                         const obs::CausalContext& attempt_ctx) {
  auto it = outstanding_.find(req_id);
  if (it == outstanding_.end()) return;
  net_.send({.src = self_, .dst = it->second.server,
             .payload = it->second.wire,
             .deadline = it->second.opts.deadline,
             .priority = it->second.opts.priority, .ctx = attempt_ctx});
  arm_timeout(req_id);
}

void RpcClient::arm_timeout(std::uint64_t req_id) {
  auto it = outstanding_.find(req_id);
  if (it == outstanding_.end()) return;
  Outstanding& o = it->second;
  o.armed_timeout = o.current_timeout;
  if (o.opts.backoff_jitter > 0) {
    const double scale = net_.simulator().rng().uniform(
        1.0 - o.opts.backoff_jitter, 1.0 + o.opts.backoff_jitter);
    o.armed_timeout = std::max<sim::Duration>(
        1, static_cast<sim::Duration>(static_cast<double>(o.current_timeout) *
                                      scale));
  }
  // The deadline clips every armed wait: a retry timer never extends the
  // call past it (the deadline-vs-retry truncation contract).
  if (o.opts.deadline > 0) {
    const sim::Duration remaining = o.opts.deadline - net_.simulator().now();
    o.armed_timeout = std::max<sim::Duration>(
        0, std::min(o.armed_timeout, remaining));
  }
  o.timer = net_.simulator().schedule_after(
      o.armed_timeout, [this, req_id] { on_timeout_expiry(req_id); });
}

void RpcClient::on_timeout_expiry(std::uint64_t req_id) {
  auto oit = outstanding_.find(req_id);
  if (oit == outstanding_.end()) return;
  Outstanding& out = oit->second;
  out.timer = sim::kInvalidEvent;
  obs::Tracer& tracer = net_.obs().tracer;
  const sim::TimePoint now = net_.simulator().now();

  const bool deadline_reached =
      out.opts.deadline > 0 && now >= out.opts.deadline;
  if (deadline_reached && !out.deadline_requeued) {
    // The timer was armed before any reply arriving this step was
    // scheduled, so the kernel's FIFO tie-break would run it first.  A
    // reply landing in the same sim step as the deadline must win:
    // re-queue the expiry behind everything already scheduled for this
    // instant (a reply completing the call meanwhile cancels the timer).
    out.deadline_requeued = true;
    out.timer = net_.simulator().schedule_after(
        0, [this, req_id] { on_timeout_expiry(req_id); });
    return;
  }

  const bool exhausted = out.attempt >= out.opts.retries;
  bool budget_denied = false;
  if (!exhausted && !deadline_reached) {
    budget_denied = !guards(out.server).budget.try_spend();
    if (budget_denied) {
      retries_denied_->inc();
      tracer.event(now, obs::Category::kRpc, "retry_denied",
                   out.ctx.valid() ? out.ctx.child(tracer.mint_id())
                                   : obs::CausalContext{},
                   {{"req", static_cast<double>(req_id)}});
    }
  }

  if (exhausted || deadline_reached || budget_denied) {
    timeouts_->inc();
    guards(out.server).breaker.record_failure(now);
    const obs::CausalContext timeout_ctx =
        out.ctx.valid() ? out.ctx.child(tracer.mint_id())
                        : obs::CausalContext{};
    tracer.event(now, obs::Category::kRpc, "timeout", timeout_ctx,
                 {{"req", static_cast<double>(req_id)}});
    complete(req_id,
             {.status = Status::kTimeout,
              .reply = {},
              .rtt = now - out.issued_at},
             timeout_ctx);
    return;
  }

  // Retries share the call's trace; each attempt is a child span of the
  // call.  `waited` is the (jittered) timeout that actually lapsed
  // before this attempt could fire — the critical-path analyzer's
  // "retry" bucket.
  const sim::Duration waited = out.armed_timeout;
  ++out.attempt;
  out.current_timeout = static_cast<sim::Duration>(
      static_cast<double>(out.current_timeout) * out.opts.backoff);
  const obs::CausalContext attempt_ctx =
      out.ctx.valid() ? out.ctx.child(tracer.mint_id())
                      : obs::CausalContext{};
  tracer.event(now, obs::Category::kRpc, "retry", attempt_ctx,
               {{"req", static_cast<double>(req_id)},
                {"attempt", static_cast<double>(out.attempt)},
                {"waited", static_cast<double>(waited)}});
  transmit(req_id, attempt_ctx);
}

void RpcClient::complete(std::uint64_t req_id, const RpcResult& result,
                         const obs::CausalContext& cause) {
  auto it = outstanding_.find(req_id);
  if (it == outstanding_.end()) return;
  Callback done = std::move(it->second.done);
  if (it->second.timer != sim::kInvalidEvent)
    net_.simulator().cancel(it->second.timer);
  const sim::TimePoint issued_at = it->second.issued_at;
  outstanding_.erase(it);
  const sim::TimePoint now = net_.simulator().now();
  if (result.ok()) {
    rtts_->add(static_cast<double>(result.rtt));
    net_.obs().series.observe(ts_latency_, now,
                              static_cast<double>(result.rtt));
    net_.obs().series.count(ts_ok_, now);
  } else {
    net_.obs().series.count(ts_error_, now);
  }
  obs::Tracer& tracer = net_.obs().tracer;
  // The end-to-end span: child of whatever finished the call (the reply
  // delivery, or the final timeout) so the arrowhead lands on completion.
  const obs::CausalContext rpc_ctx =
      cause.valid() ? cause.child(tracer.mint_id()) : obs::CausalContext{};
  tracer.span(issued_at, net_.simulator().now(), obs::Category::kRpc, "rpc",
              rpc_ctx,
              {{"req", static_cast<double>(req_id)},
               {"status",
                static_cast<double>(
                    static_cast<std::uint8_t>(result.status))}});
  if (done) done(result);
}

void RpcClient::on_message(const net::Message& msg) {
  util::Reader r(msg.payload);
  if (r.get<std::uint8_t>() != kReply) return;
  const auto req_id = r.get<std::uint64_t>();
  const auto status = r.get<Status>();
  std::string body = r.get_string();
  if (r.failed()) return;
  auto it = outstanding_.find(req_id);
  if (it == outstanding_.end()) return;  // late duplicate reply

  // Feed the destination's guards: any substantive reply proves the
  // server alive (breaker closes), a successful one earns retry budget,
  // and a pushback counts as a failure the breaker accumulates toward
  // fast-failing — the explicit signal that converts server overload into
  // client-side back-off without waiting out a timeout.
  PeerGuards& g = guards(it->second.server);
  if (status == Status::kRejected) {
    rejected_->inc();
    g.breaker.record_failure(net_.simulator().now());
  } else {
    if (status == Status::kOk) g.budget.on_success();
    g.breaker.record_success();
  }

  complete(req_id,
           {.status = status,
            .reply = std::move(body),
            .rtt = net_.simulator().now() - it->second.issued_at},
           msg.ctx);
}

}  // namespace coop::rpc
