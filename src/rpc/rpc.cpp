#include "rpc/rpc.hpp"

#include <algorithm>
#include <memory>
#include <utility>

#include "util/codec.hpp"

namespace coop::rpc {

namespace {

enum WireType : std::uint8_t { kRequest = 1, kReply = 2 };

/// Builds a per-instance registry key: "<base>.<node>:<port>.<leaf>".
std::string metric_key(const char* base, const net::Address& addr,
                       const char* leaf) {
  return std::string(base) + "." + std::to_string(addr.node) + ":" +
         std::to_string(addr.port) + "." + leaf;
}

}  // namespace

// ------------------------------------------------------------------- server

RpcServer::RpcServer(net::Network& net, net::Address self)
    : net_(net), self_(self) {
  auto& m = net_.obs().metrics;
  handled_ = &m.counter(metric_key("rpc.server", self_, "handled"));
  replays_ = &m.counter(metric_key("rpc.server", self_, "replays"));
  net_.attach(self_, *this);
}

RpcServer::~RpcServer() {
  for (const sim::EventId id : pending_replies_) net_.simulator().cancel(id);
  net_.detach(self_);
}

void RpcServer::reply(const net::Address& to, std::uint64_t req_id,
                      Status status, const std::string& body,
                      const obs::CausalContext& handle_ctx,
                      sim::TimePoint handle_start) {
  // The service-time span: request arrival at the server to reply leaving
  // it.  The critical-path analyzer buckets this as "service".
  net_.obs().tracer.span(handle_start, net_.simulator().now(),
                         obs::Category::kRpc, "handle", handle_ctx,
                         {{"req", static_cast<double>(req_id)}});
  util::Writer w;
  w.put(kReply).put(req_id).put(status).put_string(body);
  std::string wire = w.take();
  replay_[{to, req_id}] = wire;
  net_.send({.src = self_, .dst = to, .payload = std::move(wire),
             .ctx = handle_ctx});
}

void RpcServer::on_message(const net::Message& msg) {
  util::Reader r(msg.payload);
  if (r.get<std::uint8_t>() != kRequest) return;
  const auto req_id = r.get<std::uint64_t>();
  const std::string method = r.get_string();
  const std::string body = r.get_string();
  if (r.failed()) return;

  obs::Tracer& tracer = net_.obs().tracer;
  const sim::TimePoint arrived = net_.simulator().now();

  // Retried request already executed: replay the cached reply verbatim.
  // The reply rides the retry's context, so the client's completion links
  // back to whichever attempt actually reached the server.
  if (auto it = replay_.find({msg.src, req_id}); it != replay_.end()) {
    replays_->inc();
    tracer.event(arrived, obs::Category::kRpc, "replay", msg.ctx,
                 {{"req", static_cast<double>(req_id)}});
    net_.send({.src = self_, .dst = msg.src, .payload = it->second,
               .ctx = msg.ctx});
    return;
  }

  const obs::CausalContext handle_ctx =
      msg.ctx.valid() ? msg.ctx.child(tracer.mint_id()) : obs::CausalContext{};

  if (auto async = async_methods_.find(method);
      async != async_methods_.end()) {
    const std::pair<net::Address, std::uint64_t> key{msg.src, req_id};
    if (!in_progress_.insert(key).second) return;  // retry while running
    handled_->inc();
    async->second(body, [this, key, handle_ctx, arrived](HandlerResult hr) {
      in_progress_.erase(key);
      reply(key.first, key.second,
            hr.ok ? Status::kOk : Status::kAppError, hr.body, handle_ctx,
            arrived);
    });
    return;
  }

  auto handler = methods_.find(method);
  if (handler == methods_.end()) {
    reply(msg.src, req_id, Status::kNoSuchMethod, method, handle_ctx,
          arrived);
    return;
  }

  // Execute now (state mutation is immediate and exactly-once); the reply
  // leaves after the modelled processing delay.
  handled_->inc();
  const HandlerResult hr = handler->second(body);
  const Status status = hr.ok ? Status::kOk : Status::kAppError;
  if (processing_ > 0) {
    auto id_holder = std::make_shared<sim::EventId>(sim::kInvalidEvent);
    *id_holder = net_.simulator().schedule_after(
        processing_, [this, id_holder, src = msg.src, req_id, status,
                      body = hr.body, handle_ctx, arrived] {
          pending_replies_.erase(*id_holder);
          reply(src, req_id, status, body, handle_ctx, arrived);
        });
    pending_replies_.insert(*id_holder);
  } else {
    reply(msg.src, req_id, status, hr.body, handle_ctx, arrived);
  }
}

// ------------------------------------------------------------------- client

RpcClient::RpcClient(net::Network& net, net::Address self)
    : net_(net), self_(self) {
  auto& m = net_.obs().metrics;
  rtts_ = &m.summary(metric_key("rpc.client", self_, "rtt_us"));
  timeouts_ = &m.counter(metric_key("rpc.client", self_, "timeouts"));
  net_.attach(self_, *this);
}

RpcClient::~RpcClient() {
  for (auto& [id, o] : outstanding_) {
    if (o.timer != sim::kInvalidEvent) net_.simulator().cancel(o.timer);
  }
  net_.detach(self_);
}

void RpcClient::call(const net::Address& server, const std::string& method,
                     const std::string& request, Callback done,
                     CallOptions opts) {
  const std::uint64_t req_id = next_req_id_++;
  util::Writer w;
  w.put(static_cast<std::uint8_t>(1) /* kRequest */)
      .put(req_id)
      .put_string(method)
      .put_string(request);
  obs::Tracer& tracer = net_.obs().tracer;
  Outstanding o;
  o.server = server;
  o.wire = w.take();
  o.done = std::move(done);
  o.opts = opts;
  o.issued_at = net_.simulator().now();
  o.current_timeout = opts.timeout;
  // A call either continues the caller's trace or is itself an entry
  // point; every attempt, hop, and the server's handling descend from
  // this span.
  o.ctx = opts.parent.valid() ? opts.parent.child(tracer.mint_id())
                              : tracer.begin_trace();
  const obs::CausalContext call_ctx = o.ctx;
  outstanding_[req_id] = std::move(o);
  tracer.event(net_.simulator().now(), obs::Category::kRpc, "call", call_ctx,
               {{"req", static_cast<double>(req_id)},
                {"server", static_cast<double>(server.node)}});
  transmit(req_id, call_ctx);
}

void RpcClient::transmit(std::uint64_t req_id,
                         const obs::CausalContext& attempt_ctx) {
  auto it = outstanding_.find(req_id);
  if (it == outstanding_.end()) return;
  net_.send({.src = self_, .dst = it->second.server,
             .payload = it->second.wire, .ctx = attempt_ctx});
  arm_timeout(req_id);
}

void RpcClient::arm_timeout(std::uint64_t req_id) {
  auto it = outstanding_.find(req_id);
  if (it == outstanding_.end()) return;
  Outstanding& o = it->second;
  o.armed_timeout = o.current_timeout;
  if (o.opts.backoff_jitter > 0) {
    const double scale = net_.simulator().rng().uniform(
        1.0 - o.opts.backoff_jitter, 1.0 + o.opts.backoff_jitter);
    o.armed_timeout = std::max<sim::Duration>(
        1, static_cast<sim::Duration>(static_cast<double>(o.current_timeout) *
                                      scale));
  }
  o.timer = net_.simulator().schedule_after(o.armed_timeout, [this,
                                                              req_id] {
    auto oit = outstanding_.find(req_id);
    if (oit == outstanding_.end()) return;
    Outstanding& out = oit->second;
    out.timer = sim::kInvalidEvent;
    obs::Tracer& tracer = net_.obs().tracer;
    if (out.attempt >= out.opts.retries) {
      timeouts_->inc();
      const obs::CausalContext timeout_ctx =
          out.ctx.valid() ? out.ctx.child(tracer.mint_id())
                          : obs::CausalContext{};
      tracer.event(net_.simulator().now(), obs::Category::kRpc, "timeout",
                   timeout_ctx, {{"req", static_cast<double>(req_id)}});
      complete(req_id,
               {.status = Status::kTimeout,
                .reply = {},
                .rtt = net_.simulator().now() - out.issued_at},
               timeout_ctx);
      return;
    }
    // Retries share the call's trace; each attempt is a child span of the
    // call.  `waited` is the (jittered) timeout that actually lapsed
    // before this attempt could fire — the critical-path analyzer's
    // "retry" bucket.
    const sim::Duration waited = out.armed_timeout;
    ++out.attempt;
    out.current_timeout = static_cast<sim::Duration>(
        static_cast<double>(out.current_timeout) * out.opts.backoff);
    const obs::CausalContext attempt_ctx =
        out.ctx.valid() ? out.ctx.child(tracer.mint_id())
                        : obs::CausalContext{};
    tracer.event(net_.simulator().now(), obs::Category::kRpc, "retry",
                 attempt_ctx,
                 {{"req", static_cast<double>(req_id)},
                  {"attempt", static_cast<double>(out.attempt)},
                  {"waited", static_cast<double>(waited)}});
    transmit(req_id, attempt_ctx);
  });
}

void RpcClient::complete(std::uint64_t req_id, const RpcResult& result,
                         const obs::CausalContext& cause) {
  auto it = outstanding_.find(req_id);
  if (it == outstanding_.end()) return;
  Callback done = std::move(it->second.done);
  if (it->second.timer != sim::kInvalidEvent)
    net_.simulator().cancel(it->second.timer);
  const sim::TimePoint issued_at = it->second.issued_at;
  outstanding_.erase(it);
  if (result.ok()) rtts_->add(static_cast<double>(result.rtt));
  obs::Tracer& tracer = net_.obs().tracer;
  // The end-to-end span: child of whatever finished the call (the reply
  // delivery, or the final timeout) so the arrowhead lands on completion.
  const obs::CausalContext rpc_ctx =
      cause.valid() ? cause.child(tracer.mint_id()) : obs::CausalContext{};
  tracer.span(issued_at, net_.simulator().now(), obs::Category::kRpc, "rpc",
              rpc_ctx,
              {{"req", static_cast<double>(req_id)},
               {"status",
                static_cast<double>(
                    static_cast<std::uint8_t>(result.status))}});
  if (done) done(result);
}

void RpcClient::on_message(const net::Message& msg) {
  util::Reader r(msg.payload);
  if (r.get<std::uint8_t>() != kReply) return;
  const auto req_id = r.get<std::uint64_t>();
  const auto status = r.get<Status>();
  std::string body = r.get_string();
  if (r.failed()) return;
  auto it = outstanding_.find(req_id);
  if (it == outstanding_.end()) return;  // late duplicate reply
  complete(req_id,
           {.status = status,
            .reply = std::move(body),
            .rtt = net_.simulator().now() - it->second.issued_at},
           msg.ctx);
}

}  // namespace coop::rpc
