#include "rpc/rpc.hpp"

#include <utility>

#include "util/codec.hpp"

namespace coop::rpc {

namespace {

enum WireType : std::uint8_t { kRequest = 1, kReply = 2 };

/// Builds a per-instance registry key: "<base>.<node>:<port>.<leaf>".
std::string metric_key(const char* base, const net::Address& addr,
                       const char* leaf) {
  return std::string(base) + "." + std::to_string(addr.node) + ":" +
         std::to_string(addr.port) + "." + leaf;
}

}  // namespace

// ------------------------------------------------------------------- server

RpcServer::RpcServer(net::Network& net, net::Address self)
    : net_(net), self_(self) {
  auto& m = net_.obs().metrics;
  handled_ = &m.counter(metric_key("rpc.server", self_, "handled"));
  replays_ = &m.counter(metric_key("rpc.server", self_, "replays"));
  net_.attach(self_, *this);
}

RpcServer::~RpcServer() { net_.detach(self_); }

void RpcServer::reply(const net::Address& to, std::uint64_t req_id,
                      Status status, const std::string& body) {
  util::Writer w;
  w.put(kReply).put(req_id).put(status).put_string(body);
  std::string wire = w.take();
  replay_[{to, req_id}] = wire;
  net_.send({.src = self_, .dst = to, .payload = std::move(wire)});
}

void RpcServer::on_message(const net::Message& msg) {
  util::Reader r(msg.payload);
  if (r.get<std::uint8_t>() != kRequest) return;
  const auto req_id = r.get<std::uint64_t>();
  const std::string method = r.get_string();
  const std::string body = r.get_string();
  if (r.failed()) return;

  // Retried request already executed: replay the cached reply verbatim.
  if (auto it = replay_.find({msg.src, req_id}); it != replay_.end()) {
    replays_->inc();
    net_.obs().tracer.event(net_.simulator().now(), obs::Category::kRpc,
                            "replay", {{"req", static_cast<double>(req_id)}});
    net_.send({.src = self_, .dst = msg.src, .payload = it->second});
    return;
  }

  if (auto async = async_methods_.find(method);
      async != async_methods_.end()) {
    const std::pair<net::Address, std::uint64_t> key{msg.src, req_id};
    if (!in_progress_.insert(key).second) return;  // retry while running
    handled_->inc();
    async->second(body, [this, key](HandlerResult hr) {
      in_progress_.erase(key);
      reply(key.first, key.second,
            hr.ok ? Status::kOk : Status::kAppError, hr.body);
    });
    return;
  }

  auto handler = methods_.find(method);
  if (handler == methods_.end()) {
    reply(msg.src, req_id, Status::kNoSuchMethod, method);
    return;
  }

  // Execute now (state mutation is immediate and exactly-once); the reply
  // leaves after the modelled processing delay.
  handled_->inc();
  const HandlerResult hr = handler->second(body);
  const Status status = hr.ok ? Status::kOk : Status::kAppError;
  if (processing_ > 0) {
    net_.simulator().schedule_after(
        processing_, [this, src = msg.src, req_id, status, body = hr.body] {
          reply(src, req_id, status, body);
        });
  } else {
    reply(msg.src, req_id, status, hr.body);
  }
}

// ------------------------------------------------------------------- client

RpcClient::RpcClient(net::Network& net, net::Address self)
    : net_(net), self_(self) {
  auto& m = net_.obs().metrics;
  rtts_ = &m.summary(metric_key("rpc.client", self_, "rtt_us"));
  timeouts_ = &m.counter(metric_key("rpc.client", self_, "timeouts"));
  net_.attach(self_, *this);
}

RpcClient::~RpcClient() {
  for (auto& [id, o] : outstanding_) {
    if (o.timer != sim::kInvalidEvent) net_.simulator().cancel(o.timer);
  }
  net_.detach(self_);
}

void RpcClient::call(const net::Address& server, const std::string& method,
                     const std::string& request, Callback done,
                     CallOptions opts) {
  const std::uint64_t req_id = next_req_id_++;
  util::Writer w;
  w.put(static_cast<std::uint8_t>(1) /* kRequest */)
      .put(req_id)
      .put_string(method)
      .put_string(request);
  Outstanding o;
  o.server = server;
  o.wire = w.take();
  o.done = std::move(done);
  o.opts = opts;
  o.issued_at = net_.simulator().now();
  o.current_timeout = opts.timeout;
  outstanding_[req_id] = std::move(o);
  net_.obs().tracer.event(net_.simulator().now(), obs::Category::kRpc, "call",
                          {{"req", static_cast<double>(req_id)},
                           {"server", static_cast<double>(server.node)}});
  transmit(req_id);
}

void RpcClient::transmit(std::uint64_t req_id) {
  auto it = outstanding_.find(req_id);
  if (it == outstanding_.end()) return;
  net_.send({.src = self_, .dst = it->second.server,
             .payload = it->second.wire});
  arm_timeout(req_id);
}

void RpcClient::arm_timeout(std::uint64_t req_id) {
  auto it = outstanding_.find(req_id);
  if (it == outstanding_.end()) return;
  Outstanding& o = it->second;
  o.timer = net_.simulator().schedule_after(o.current_timeout, [this,
                                                                req_id] {
    auto oit = outstanding_.find(req_id);
    if (oit == outstanding_.end()) return;
    Outstanding& out = oit->second;
    out.timer = sim::kInvalidEvent;
    if (out.attempt >= out.opts.retries) {
      timeouts_->inc();
      net_.obs().tracer.event(net_.simulator().now(), obs::Category::kRpc,
                              "timeout",
                              {{"req", static_cast<double>(req_id)}});
      complete(req_id, {.status = Status::kTimeout,
                        .reply = {},
                        .rtt = net_.simulator().now() - out.issued_at});
      return;
    }
    ++out.attempt;
    out.current_timeout = static_cast<sim::Duration>(
        static_cast<double>(out.current_timeout) * out.opts.backoff);
    net_.obs().tracer.event(net_.simulator().now(), obs::Category::kRpc,
                            "retry",
                            {{"req", static_cast<double>(req_id)},
                             {"attempt", static_cast<double>(out.attempt)}});
    transmit(req_id);
  });
}

void RpcClient::complete(std::uint64_t req_id, const RpcResult& result) {
  auto it = outstanding_.find(req_id);
  if (it == outstanding_.end()) return;
  Callback done = std::move(it->second.done);
  if (it->second.timer != sim::kInvalidEvent)
    net_.simulator().cancel(it->second.timer);
  const sim::TimePoint issued_at = it->second.issued_at;
  outstanding_.erase(it);
  if (result.ok()) rtts_->add(static_cast<double>(result.rtt));
  net_.obs().tracer.span(issued_at, net_.simulator().now(),
                         obs::Category::kRpc, "rpc",
                         {{"req", static_cast<double>(req_id)},
                          {"status",
                           static_cast<double>(
                               static_cast<std::uint8_t>(result.status))}});
  if (done) done(result);
}

void RpcClient::on_message(const net::Message& msg) {
  util::Reader r(msg.payload);
  if (r.get<std::uint8_t>() != kReply) return;
  const auto req_id = r.get<std::uint64_t>();
  const auto status = r.get<Status>();
  std::string body = r.get_string();
  if (r.failed()) return;
  auto it = outstanding_.find(req_id);
  if (it == outstanding_.end()) return;  // late duplicate reply
  complete(req_id, {.status = status,
                    .reply = std::move(body),
                    .rtt = net_.simulator().now() - it->second.issued_at});
}

}  // namespace coop::rpc
