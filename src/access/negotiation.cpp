#include "access/negotiation.hpp"

#include <utility>

namespace coop::access {

std::uint64_t RightsNegotiator::propose(ClientId proposer,
                                        ProposedChange change,
                                        DecisionFn done) {
  (void)proposer;  // recorded implicitly: proposers vote like anyone else
  const std::uint64_t id = next_id_++;
  ++stats_.proposals;
  Proposal p;
  p.change = std::move(change);
  p.done = std::move(done);
  p.deadline = sim_.schedule_after(config_.voting_window, [this, id] {
    auto it = open_.find(id);
    if (it == open_.end()) return;
    it->second.deadline = sim::kInvalidEvent;
    ++stats_.expired;
    decide(id, tally(it->second), /*by_deadline=*/true);
  });
  if (approvers_.empty()) {
    // Nobody to consult: auto-accept.
    open_[id] = std::move(p);
    decide(id, true, false);
    return id;
  }
  if (ballot_) {
    for (ClientId a : approvers_) ballot_(id, a, p.change);
  }
  open_[id] = std::move(p);
  return id;
}

void RightsNegotiator::vote(std::uint64_t proposal_id, ClientId voter,
                            bool approve) {
  auto it = open_.find(proposal_id);
  if (it == open_.end()) return;
  if (approvers_.count(voter) == 0) return;  // only approvers vote
  it->second.votes[voter] = approve;
  if (const std::optional<bool> outcome = settled(it->second)) {
    decide(proposal_id, *outcome, /*by_deadline=*/false);
  }
}

std::optional<bool> RightsNegotiator::settled(const Proposal& p) const {
  const std::size_t n = approvers_.size();
  std::size_t yes = 0, no = 0;
  for (const auto& [who, v] : p.votes) v ? ++yes : ++no;
  const std::size_t outstanding = n - yes - no;
  switch (config_.policy) {
    case VotePolicy::kAny:
      if (yes > 0) return true;
      if (no == n) return false;
      break;
    case VotePolicy::kMajority:
      if (yes * 2 > n) return true;
      if (no * 2 >= n && yes + outstanding <= n / 2) return false;
      break;
    case VotePolicy::kUnanimous:
      if (no > 0) return false;
      if (yes == n) return true;
      break;
  }
  return std::nullopt;
}

bool RightsNegotiator::tally(const Proposal& p) const {
  std::size_t yes = 0, no = 0;
  for (const auto& [who, v] : p.votes) v ? ++yes : ++no;
  switch (config_.policy) {
    case VotePolicy::kAny:
      return yes > 0;
    case VotePolicy::kMajority:
      return yes > no && yes > 0;
    case VotePolicy::kUnanimous:
      return no == 0 && yes == approvers_.size();
  }
  return false;
}

void RightsNegotiator::apply(const ProposedChange& change) {
  switch (change.kind) {
    case ProposedChange::Kind::kGrantRole:
      policy_.grant_role(change.role, change.object, change.rights,
                         change.region);
      break;
    case ProposedChange::Kind::kDenyRole:
      policy_.deny_role(change.role, change.object, change.rights,
                        change.region);
      break;
    case ProposedChange::Kind::kAssignRole:
      policy_.assign(change.client, change.role);
      break;
    case ProposedChange::Kind::kUnassignRole:
      policy_.unassign(change.client, change.role);
      break;
  }
}

void RightsNegotiator::decide(std::uint64_t id, bool accepted,
                              bool by_deadline) {
  auto it = open_.find(id);
  if (it == open_.end()) return;
  Proposal p = std::move(it->second);
  open_.erase(it);
  if (!by_deadline && p.deadline != sim::kInvalidEvent)
    sim_.cancel(p.deadline);
  if (accepted) {
    ++stats_.accepted;
    apply(p.change);
  } else {
    ++stats_.rejected;
  }
  if (p.done) p.done(accepted);
}

}  // namespace coop::access
