// Dynamic, fine-grained, role-based access control — the scheme the CSCW
// community calls for in §4.2.1 (after Shen & Dewan, CSCW'92):
//
//   * policies are expressed over *roles*, not individuals;
//   * role occupancy is *dynamic*, changing during a collaboration;
//   * rights can be *fine-grained* — down to a character range of a
//     shared document;
//   * negative rights exist, and conflicts resolve by specificity
//     (subject-specific beats role, smaller region beats larger, and at
//     equal specificity denial wins);
//   * every change is observable (visibility requirement), feeding the
//     session's awareness machinery.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "access/rights.hpp"

namespace coop::access {

/// Roles are named; hierarchy via single inheritance ("editor" refines
/// "reader" and inherits its grants).
using Role = std::string;

/// A half-open character interval of a document; whole-object rules use
/// the unbounded region.
struct Region {
  std::size_t begin = 0;
  std::size_t end = kWholeObject;

  static constexpr std::size_t kWholeObject = ~static_cast<std::size_t>(0);

  [[nodiscard]] bool whole() const noexcept {
    return begin == 0 && end == kWholeObject;
  }
  [[nodiscard]] bool contains(std::size_t pos) const noexcept {
    return pos >= begin && pos < end;
  }
  /// Width used for specificity comparison (smaller = more specific).
  [[nodiscard]] std::size_t width() const noexcept {
    return end == kWholeObject ? kWholeObject : end - begin;
  }

  bool operator==(const Region&) const = default;
};

/// One positive or negative rule.
struct Rule {
  enum class Subject : std::uint8_t { kRole, kClient };
  Subject subject_kind = Subject::kRole;
  Role role;                 // when subject_kind == kRole
  ClientId client = 0;       // when subject_kind == kClient
  std::string object;        // exact object name
  Region region;
  RightSet rights = 0;
  bool deny = false;
};

/// The policy engine.
class RolePolicy {
 public:
  // --- roles ---------------------------------------------------------------

  /// Declares a role; @p parent (if given) must already exist.
  /// Returns false if the parent is unknown.
  bool define_role(const Role& role, std::optional<Role> parent = {});

  /// Dynamically assigns @p who to @p role (multiple roles allowed).
  void assign(ClientId who, const Role& role);

  /// Removes @p who from @p role — mid-session role change.
  void unassign(ClientId who, const Role& role);

  [[nodiscard]] std::set<Role> roles_of(ClientId who) const;

  // --- rules ---------------------------------------------------------------

  /// Grants @p rights on object/region to a role.
  void grant_role(const Role& role, const std::string& object,
                  RightSet rights, Region region = {});

  /// Denies (negative right) on object/region for a role.
  void deny_role(const Role& role, const std::string& object,
                 RightSet rights, Region region = {});

  /// Subject-specific grant (beats any role rule).
  void grant_client(ClientId who, const std::string& object,
                    RightSet rights, Region region = {});

  /// Subject-specific denial.
  void deny_client(ClientId who, const std::string& object,
                   RightSet rights, Region region = {});

  // --- checks ----------------------------------------------------------------

  /// May @p who exercise @p r on @p object at @p pos (or on the whole
  /// object when pos is nullopt)?
  ///
  /// Resolution: collect all rules matching the subject (its client rules
  /// plus rules of every held role and ancestors), the object, the
  /// position, and the right.  The most specific rule wins; at equal
  /// specificity a denial wins.  Specificity: client > role; narrower
  /// region > wider; a derived role's own rule > an inherited one.
  [[nodiscard]] bool check(ClientId who, const std::string& object, Right r,
                           std::optional<std::size_t> pos = {}) const;

  // --- visibility --------------------------------------------------------------

  /// Every rule or assignment change fires this, satisfying the paper's
  /// "access rights are both visible and easy to understand" requirement.
  void on_change(std::function<void(const std::string& description)> fn) {
    on_change_ = std::move(fn);
  }

  /// Human-readable dump of all rules affecting @p object.
  [[nodiscard]] std::vector<std::string> explain(
      const std::string& object) const;

  [[nodiscard]] std::size_t rule_count() const noexcept {
    return rules_.size();
  }

 private:
  struct Candidate {
    const Rule* rule;
    int subject_rank;  ///< 2 = client rule, then role depth (own > parent)
  };

  void add_rule(Rule rule, const std::string& description);
  void notify(const std::string& description);
  /// Role and all ancestors, nearest first.
  [[nodiscard]] std::vector<Role> chain(const Role& role) const;

  std::map<Role, std::optional<Role>> hierarchy_;
  std::map<ClientId, std::set<Role>> assignments_;
  std::vector<Rule> rules_;
  std::function<void(const std::string&)> on_change_;
};

}  // namespace coop::access
