// Negotiated access-control change — §4.2.1: "It is also likely that such
// changes will be made as a result of *negotiation* between parties
// involved."
//
// A rights change is proposed, the designated approvers vote within a
// timeout, and the decision policy (any / majority / unanimous) determines
// the outcome.  Non-votes count as abstentions; at the deadline the policy
// is evaluated over the votes received.  An accepted proposal is applied
// to the RolePolicy atomically and the change notification fires through
// the policy's visibility hook.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "access/roles.hpp"
#include "sim/simulator.hpp"

namespace coop::access {

/// What a proposal wants to change.
struct ProposedChange {
  enum class Kind : std::uint8_t {
    kGrantRole,     ///< grant `rights` on object/region to `role`
    kDenyRole,      ///< add a negative right
    kAssignRole,    ///< put `client` into `role`
    kUnassignRole,  ///< remove `client` from `role`
  };
  Kind kind = Kind::kGrantRole;
  Role role;
  ClientId client = 0;
  std::string object;
  Region region;
  RightSet rights = 0;
};

enum class VotePolicy : std::uint8_t { kAny, kMajority, kUnanimous };

struct NegotiationConfig {
  VotePolicy policy = VotePolicy::kMajority;
  sim::Duration voting_window = sim::sec(30);
};

struct NegotiationStats {
  std::uint64_t proposals = 0;
  std::uint64_t accepted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t expired = 0;  ///< decided at deadline (not by early votes)
};

/// The negotiation arbiter, colocated with the session's RolePolicy.
class RightsNegotiator {
 public:
  using DecisionFn = std::function<void(bool accepted)>;
  /// Ballot callback: approvers are asked to vote on a proposal.
  using BallotFn = std::function<void(std::uint64_t proposal_id,
                                      ClientId approver,
                                      const ProposedChange& change)>;

  RightsNegotiator(sim::Simulator& sim, RolePolicy& policy,
                   NegotiationConfig config = {})
      : sim_(sim), policy_(policy), config_(config) {}

  RightsNegotiator(const RightsNegotiator&) = delete;
  RightsNegotiator& operator=(const RightsNegotiator&) = delete;

  /// Declares who must be consulted for changes (e.g. current owners).
  void set_approvers(std::set<ClientId> approvers) {
    approvers_ = std::move(approvers);
  }

  void on_ballot(BallotFn fn) { ballot_ = std::move(fn); }

  /// Opens a proposal.  Approvers receive ballots; @p done fires once
  /// with the outcome.  A proposer who is also an approver still votes
  /// explicitly.  Returns the proposal id.
  std::uint64_t propose(ClientId proposer, ProposedChange change,
                        DecisionFn done);

  /// Records a vote.  Early decision fires as soon as the outcome is
  /// mathematically settled.
  void vote(std::uint64_t proposal_id, ClientId voter, bool approve);

  [[nodiscard]] const NegotiationStats& stats() const noexcept {
    return stats_;
  }
  [[nodiscard]] std::size_t open_proposals() const noexcept {
    return open_.size();
  }

 private:
  struct Proposal {
    ProposedChange change;
    DecisionFn done;
    std::map<ClientId, bool> votes;
    sim::EventId deadline = sim::kInvalidEvent;
  };

  void decide(std::uint64_t id, bool accepted, bool by_deadline);
  /// Evaluates the policy; nullopt = undecided (more votes could flip it).
  [[nodiscard]] std::optional<bool> settled(const Proposal& p) const;
  [[nodiscard]] bool tally(const Proposal& p) const;
  void apply(const ProposedChange& change);

  sim::Simulator& sim_;
  RolePolicy& policy_;
  NegotiationConfig config_;
  std::set<ClientId> approvers_;
  BallotFn ballot_;
  std::map<std::uint64_t, Proposal> open_;
  std::uint64_t next_id_ = 1;
  NegotiationStats stats_;
};

}  // namespace coop::access
