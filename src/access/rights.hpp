// Classic access control — the baseline the paper critiques in §4.2.1:
// "Most existing approaches to access control in distributed systems are
// based on the classic Access Matrix.  Specific mechanisms derived from
// this matrix include access control lists and capabilities."
//
// coop implements all three derivations so the role-based scheme
// (access/roles.hpp) can be compared against them in experiment E4.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "ccontrol/locks.hpp"  // ClientId

namespace coop::access {

using ClientId = ccontrol::ClientId;

/// Rights bitmask.
enum Right : std::uint8_t {
  kRead = 1u << 0,
  kWrite = 1u << 1,
  kAnnotate = 1u << 2,  ///< add comments without touching the base text
  kGrant = 1u << 3,     ///< may confer own rights on others
};

using RightSet = std::uint8_t;

[[nodiscard]] constexpr bool has_right(RightSet set, Right r) noexcept {
  return (set & r) != 0;
}

/// The full subject × object matrix (conceptual model; dense bookkeeping).
class AccessMatrix {
 public:
  void set(ClientId subject, const std::string& object, RightSet rights) {
    if (rights == 0) {
      matrix_.erase({subject, object});
    } else {
      matrix_[{subject, object}] = rights;
    }
  }

  void add(ClientId subject, const std::string& object, RightSet rights) {
    matrix_[{subject, object}] |= rights;
  }

  void revoke(ClientId subject, const std::string& object, RightSet rights) {
    auto it = matrix_.find({subject, object});
    if (it == matrix_.end()) return;
    it->second &= static_cast<RightSet>(~rights);
    if (it->second == 0) matrix_.erase(it);
  }

  [[nodiscard]] bool check(ClientId subject, const std::string& object,
                           Right r) const {
    auto it = matrix_.find({subject, object});
    return it != matrix_.end() && has_right(it->second, r);
  }

  [[nodiscard]] RightSet rights(ClientId subject,
                                const std::string& object) const {
    auto it = matrix_.find({subject, object});
    return it == matrix_.end() ? 0 : it->second;
  }

  [[nodiscard]] std::size_t entries() const noexcept {
    return matrix_.size();
  }

 private:
  std::map<std::pair<ClientId, std::string>, RightSet> matrix_;
};

/// Column view: per-object list of (subject, rights) — the ACL mechanism.
class AccessControlList {
 public:
  void grant(const std::string& object, ClientId subject, RightSet rights) {
    lists_[object][subject] |= rights;
  }

  void revoke(const std::string& object, ClientId subject) {
    auto it = lists_.find(object);
    if (it != lists_.end()) it->second.erase(subject);
  }

  [[nodiscard]] bool check(ClientId subject, const std::string& object,
                           Right r) const {
    auto it = lists_.find(object);
    if (it == lists_.end()) return false;
    auto sit = it->second.find(subject);
    return sit != it->second.end() && has_right(sit->second, r);
  }

  [[nodiscard]] std::vector<ClientId> subjects(
      const std::string& object) const {
    std::vector<ClientId> out;
    auto it = lists_.find(object);
    if (it == lists_.end()) return out;
    for (const auto& [s, rights] : it->second) out.push_back(s);
    return out;
  }

 private:
  std::map<std::string, std::map<ClientId, RightSet>> lists_;
};

/// Row view: unforgeable tokens held by subjects — the capability
/// mechanism.  Simulated unforgeability: capabilities carry an id minted
/// by the store; validation checks the id is live and unrevoked.
class CapabilityStore {
 public:
  struct Capability {
    std::uint64_t id = 0;
    std::string object;
    RightSet rights = 0;
  };

  /// Mints a capability for @p object with @p rights.
  Capability mint(const std::string& object, RightSet rights) {
    const std::uint64_t id = next_id_++;
    live_[id] = {object, rights};
    return {id, object, rights};
  }

  /// Derives a weaker capability from an existing one (delegation).
  std::optional<Capability> attenuate(const Capability& cap,
                                      RightSet subset) {
    if (!valid(cap)) return std::nullopt;
    const RightSet r = cap.rights & subset;
    if (r == 0) return std::nullopt;
    return mint(cap.object, r);
  }

  /// Checks the capability grants @p r on its object, and is unrevoked
  /// and untampered (rights/object must match the minting record).
  [[nodiscard]] bool check(const Capability& cap, Right r) const {
    return valid(cap) && has_right(cap.rights, r);
  }

  /// Revokes a capability by id.  Note the paper's complaint holds:
  /// finding *which* ids to revoke for a subject needs external indexing.
  void revoke(std::uint64_t id) { live_.erase(id); }

  [[nodiscard]] bool valid(const Capability& cap) const {
    auto it = live_.find(cap.id);
    return it != live_.end() && it->second.first == cap.object &&
           it->second.second == cap.rights;
  }

 private:
  std::uint64_t next_id_ = 1;
  std::map<std::uint64_t, std::pair<std::string, RightSet>> live_;
};

}  // namespace coop::access
