#include "access/roles.hpp"

#include <algorithm>

namespace coop::access {

bool RolePolicy::define_role(const Role& role, std::optional<Role> parent) {
  if (parent && hierarchy_.find(*parent) == hierarchy_.end()) return false;
  hierarchy_[role] = std::move(parent);
  notify("role " + role + " defined");
  return true;
}

void RolePolicy::assign(ClientId who, const Role& role) {
  assignments_[who].insert(role);
  notify("client " + std::to_string(who) + " -> role " + role);
}

void RolePolicy::unassign(ClientId who, const Role& role) {
  auto it = assignments_.find(who);
  if (it == assignments_.end()) return;
  if (it->second.erase(role) > 0)
    notify("client " + std::to_string(who) + " leaves role " + role);
}

std::set<Role> RolePolicy::roles_of(ClientId who) const {
  auto it = assignments_.find(who);
  return it == assignments_.end() ? std::set<Role>{} : it->second;
}

std::vector<Role> RolePolicy::chain(const Role& role) const {
  std::vector<Role> out;
  std::optional<Role> cur = role;
  while (cur) {
    out.push_back(*cur);
    auto it = hierarchy_.find(*cur);
    if (it == hierarchy_.end()) break;
    cur = it->second;
    if (out.size() > hierarchy_.size()) break;  // cycle guard
  }
  return out;
}

void RolePolicy::add_rule(Rule rule, const std::string& description) {
  rules_.push_back(std::move(rule));
  notify(description);
}

void RolePolicy::notify(const std::string& description) {
  if (on_change_) on_change_(description);
}

void RolePolicy::grant_role(const Role& role, const std::string& object,
                            RightSet rights, Region region) {
  add_rule({Rule::Subject::kRole, role, 0, object, region, rights, false},
           "grant role " + role + " on " + object);
}

void RolePolicy::deny_role(const Role& role, const std::string& object,
                           RightSet rights, Region region) {
  add_rule({Rule::Subject::kRole, role, 0, object, region, rights, true},
           "deny role " + role + " on " + object);
}

void RolePolicy::grant_client(ClientId who, const std::string& object,
                              RightSet rights, Region region) {
  add_rule({Rule::Subject::kClient, {}, who, object, region, rights, false},
           "grant client " + std::to_string(who) + " on " + object);
}

void RolePolicy::deny_client(ClientId who, const std::string& object,
                             RightSet rights, Region region) {
  add_rule({Rule::Subject::kClient, {}, who, object, region, rights, true},
           "deny client " + std::to_string(who) + " on " + object);
}

bool RolePolicy::check(ClientId who, const std::string& object, Right r,
                       std::optional<std::size_t> pos) const {
  // Build the subject's role closure with depth ranks: a client's own
  // role outranks rules inherited from its parents.  Rank scheme:
  // client rule = 1'000'000; role at depth d in its chain = 1000 - d.
  std::map<Role, int> role_rank;
  auto ait = assignments_.find(who);
  if (ait != assignments_.end()) {
    for (const Role& held : ait->second) {
      const std::vector<Role> c = chain(held);
      for (std::size_t d = 0; d < c.size(); ++d) {
        const int rank = 1000 - static_cast<int>(d);
        auto [it, inserted] = role_rank.try_emplace(c[d], rank);
        if (!inserted) it->second = std::max(it->second, rank);
      }
    }
  }

  const Rule* best = nullptr;
  int best_subject_rank = -1;
  std::size_t best_width = Region::kWholeObject;

  for (const Rule& rule : rules_) {
    if (rule.object != object) continue;
    if (!has_right(rule.rights, r)) continue;
    if (pos) {
      if (!rule.region.contains(*pos)) continue;
    } else {
      // Whole-object question: only whole-object rules apply.
      if (!rule.region.whole()) continue;
    }
    int subject_rank = -1;
    if (rule.subject_kind == Rule::Subject::kClient) {
      if (rule.client != who) continue;
      subject_rank = 1'000'000;
    } else {
      auto rit = role_rank.find(rule.role);
      if (rit == role_rank.end()) continue;
      subject_rank = rit->second;
    }
    const std::size_t width = rule.region.width();

    // Specificity: subject rank first, then region narrowness, then — at
    // a full tie — denial beats grant.
    bool better = false;
    if (best == nullptr) {
      better = true;
    } else if (subject_rank != best_subject_rank) {
      better = subject_rank > best_subject_rank;
    } else if (width != best_width) {
      better = width < best_width;
    } else if (rule.deny && !best->deny) {
      better = true;
    }
    if (better) {
      best = &rule;
      best_subject_rank = subject_rank;
      best_width = width;
    }
  }
  return best != nullptr && !best->deny;
}

std::vector<std::string> RolePolicy::explain(
    const std::string& object) const {
  std::vector<std::string> out;
  for (const Rule& rule : rules_) {
    if (rule.object != object) continue;
    std::string line = rule.deny ? "DENY  " : "ALLOW ";
    if (rule.subject_kind == Rule::Subject::kClient) {
      line += "client " + std::to_string(rule.client);
    } else {
      line += "role " + rule.role;
    }
    line += " rights=" + std::to_string(rule.rights);
    if (!rule.region.whole()) {
      line += " region=[" + std::to_string(rule.region.begin) + "," +
              std::to_string(rule.region.end) + ")";
    }
    out.push_back(std::move(line));
  }
  return out;
}

}  // namespace coop::access
