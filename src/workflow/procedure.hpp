// Office procedures — the Domino model from §3.2.1: cooperative work as
// items flowing between activities, routed by an explicit procedure
// definition rather than by conversation.
//
// A ProcedureDef is a DAG of steps, each assigned to a role; a
// ProcedureInstance routes a work item through it.  Completing a step
// activates its successors once *all* their predecessors are complete
// (join semantics), so both sequences and parallel branches are
// expressible.  The engine keeps an audit trail — the "public history"
// accountability the paper's ATC study highlights.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "ccontrol/locks.hpp"  // ClientId
#include "sim/simulator.hpp"
#include "util/stats.hpp"

namespace coop::workflow {

using ClientId = ccontrol::ClientId;

/// A step in a procedure, performed by anyone holding the role.
struct StepDef {
  std::string name;
  std::string role;                ///< who may complete it
  std::vector<std::string> next;   ///< successor steps
};

/// The routing graph.
class ProcedureDef {
 public:
  explicit ProcedureDef(std::string name) : name_(std::move(name)) {}

  /// Adds a step.  Returns false on duplicate name.
  bool add_step(StepDef step);

  /// Declares the entry step(s).
  void set_start(std::vector<std::string> steps) {
    start_ = std::move(steps);
  }

  /// Validates the graph: start steps exist, all successors exist, and
  /// there is no cycle.
  [[nodiscard]] bool validate() const;

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const std::map<std::string, StepDef>& steps() const {
    return steps_;
  }
  [[nodiscard]] const std::vector<std::string>& start() const {
    return start_;
  }

  /// Predecessor count of each step (join fan-in).
  [[nodiscard]] std::map<std::string, std::size_t> fan_in() const;

 private:
  std::string name_;
  std::map<std::string, StepDef> steps_;
  std::vector<std::string> start_;
};

/// One work item moving through a procedure.
class ProcedureInstance {
 public:
  ProcedureInstance(const ProcedureDef& def, std::uint64_t id,
                    sim::TimePoint started);

  /// Steps currently awaiting completion.
  [[nodiscard]] std::vector<std::string> active() const;

  /// Completes @p step if it is active and @p actor holds the step's
  /// role (checked via the role lookup the engine provides).  Activates
  /// successors whose predecessors are now all complete.
  bool complete(const std::string& step, ClientId actor,
                const std::function<bool(ClientId, const std::string&)>&
                    holds_role,
                sim::TimePoint now);

  [[nodiscard]] bool finished() const noexcept { return active_.empty(); }
  [[nodiscard]] std::uint64_t id() const noexcept { return id_; }
  [[nodiscard]] sim::TimePoint started_at() const noexcept {
    return started_;
  }

  struct AuditEntry {
    std::string step;
    ClientId actor;
    sim::TimePoint at;
  };
  [[nodiscard]] const std::vector<AuditEntry>& audit() const noexcept {
    return audit_;
  }

 private:
  const ProcedureDef& def_;
  std::uint64_t id_;
  sim::TimePoint started_;
  std::set<std::string> active_;
  std::set<std::string> completed_;
  std::map<std::string, std::size_t> remaining_preds_;
  std::vector<AuditEntry> audit_;
};

/// Runs instances, owns role assignments, gathers statistics.
class ProcedureEngine {
 public:
  explicit ProcedureEngine(sim::Simulator& sim) : sim_(sim) {}

  ProcedureEngine(const ProcedureEngine&) = delete;
  ProcedureEngine& operator=(const ProcedureEngine&) = delete;

  void assign_role(ClientId who, const std::string& role) {
    roles_[who].insert(role);
  }

  /// Starts an instance of @p def (must validate()).  Returns its id, or
  /// nullopt if the definition is invalid.
  std::optional<std::uint64_t> start(const ProcedureDef& def);

  /// Completes a step of an instance.  False if the instance is unknown,
  /// the step inactive, or the actor lacks the role.
  bool complete(std::uint64_t instance, const std::string& step,
                ClientId actor);

  [[nodiscard]] const ProcedureInstance* instance(std::uint64_t id) const;

  /// Fired when steps become active (the participants' work lists).
  void on_activate(
      std::function<void(std::uint64_t instance, const std::string& step)>
          fn) {
    on_activate_ = std::move(fn);
  }

  [[nodiscard]] std::uint64_t finished_count() const noexcept {
    return finished_;
  }
  [[nodiscard]] const util::Summary& completion_latency() const noexcept {
    return latency_;
  }

 private:
  sim::Simulator& sim_;
  std::map<ClientId, std::set<std::string>> roles_;
  std::map<std::uint64_t, ProcedureInstance> instances_;
  std::uint64_t next_id_ = 1;
  std::function<void(std::uint64_t, const std::string&)> on_activate_;
  std::uint64_t finished_ = 0;
  util::Summary latency_;
};

}  // namespace coop::workflow
