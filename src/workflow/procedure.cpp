#include "workflow/procedure.hpp"

#include <utility>

namespace coop::workflow {

bool ProcedureDef::add_step(StepDef step) {
  const std::string name = step.name;
  return steps_.emplace(name, std::move(step)).second;
}

bool ProcedureDef::validate() const {
  if (start_.empty()) return false;
  for (const std::string& s : start_) {
    if (steps_.find(s) == steps_.end()) return false;
  }
  for (const auto& [name, step] : steps_) {
    for (const std::string& n : step.next) {
      if (steps_.find(n) == steps_.end()) return false;
    }
  }
  // Cycle check: Kahn's algorithm over the whole graph.
  std::map<std::string, std::size_t> indeg;
  for (const auto& [name, step] : steps_) indeg.try_emplace(name, 0);
  for (const auto& [name, step] : steps_) {
    for (const std::string& n : step.next) ++indeg[n];
  }
  std::vector<std::string> queue;
  for (const auto& [name, d] : indeg) {
    if (d == 0) queue.push_back(name);
  }
  std::size_t visited = 0;
  while (!queue.empty()) {
    const std::string cur = std::move(queue.back());
    queue.pop_back();
    ++visited;
    for (const std::string& n : steps_.at(cur).next) {
      if (--indeg[n] == 0) queue.push_back(n);
    }
  }
  return visited == steps_.size();
}

std::map<std::string, std::size_t> ProcedureDef::fan_in() const {
  std::map<std::string, std::size_t> in;
  for (const auto& [name, step] : steps_) in.try_emplace(name, 0);
  for (const auto& [name, step] : steps_) {
    for (const std::string& n : step.next) ++in[n];
  }
  return in;
}

ProcedureInstance::ProcedureInstance(const ProcedureDef& def,
                                     std::uint64_t id,
                                     sim::TimePoint started)
    : def_(def), id_(id), started_(started) {
  remaining_preds_ = def.fan_in();
  for (const std::string& s : def.start()) active_.insert(s);
}

std::vector<std::string> ProcedureInstance::active() const {
  return {active_.begin(), active_.end()};
}

bool ProcedureInstance::complete(
    const std::string& step, ClientId actor,
    const std::function<bool(ClientId, const std::string&)>& holds_role,
    sim::TimePoint now) {
  if (active_.count(step) == 0) return false;
  const StepDef& def = def_.steps().at(step);
  if (!holds_role(actor, def.role)) return false;
  active_.erase(step);
  completed_.insert(step);
  audit_.push_back({step, actor, now});
  for (const std::string& n : def.next) {
    auto it = remaining_preds_.find(n);
    if (it == remaining_preds_.end()) continue;
    if (it->second > 0) --it->second;
    // Activate once every predecessor has completed (join), and only if
    // not already done (diamond topologies reconverge).
    if (it->second == 0 && completed_.count(n) == 0) active_.insert(n);
  }
  return true;
}

std::optional<std::uint64_t> ProcedureEngine::start(const ProcedureDef& def) {
  if (!def.validate()) return std::nullopt;
  const std::uint64_t id = next_id_++;
  instances_.emplace(id, ProcedureInstance(def, id, sim_.now()));
  if (on_activate_) {
    for (const std::string& s : instances_.at(id).active())
      on_activate_(id, s);
  }
  return id;
}

bool ProcedureEngine::complete(std::uint64_t instance,
                               const std::string& step, ClientId actor) {
  auto it = instances_.find(instance);
  if (it == instances_.end()) return false;
  const auto before = it->second.active();
  const bool ok = it->second.complete(
      step, actor,
      [this](ClientId who, const std::string& role) {
        auto rit = roles_.find(who);
        return rit != roles_.end() && rit->second.count(role) != 0;
      },
      sim_.now());
  if (!ok) return false;
  if (on_activate_) {
    const std::set<std::string> prev(before.begin(), before.end());
    for (const std::string& s : it->second.active()) {
      if (prev.count(s) == 0) on_activate_(instance, s);
    }
  }
  if (it->second.finished()) {
    ++finished_;
    latency_.add(static_cast<double>(sim_.now() - it->second.started_at()));
  }
  return true;
}

const ProcedureInstance* ProcedureEngine::instance(std::uint64_t id) const {
  auto it = instances_.find(id);
  return it == instances_.end() ? nullptr : &it->second;
}

}  // namespace coop::workflow
