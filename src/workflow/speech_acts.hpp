// Speech-act conversations — the Coordinator / Action-Workflow model the
// paper surveys in §3.2.1 (and critiques in §4.1 for its prescriptiveness;
// experiment E10 measures exactly the rigidity-vs-structure trade).
//
// A conversation for action runs the classic loop between a customer and
// a performer:
//
//   proposal:     customer REQUESTs
//   agreement:    performer PROMISEs (or COUNTERs terms, or DECLINEs)
//   performance:  performer works, then REPORTs completion
//   satisfaction: customer ACCEPTs (closing the loop) or REJECTs
//                 (sending the performer back to performance)
//
// Either party may CANCEL while the loop is open.  The state machine
// validates both the transition and the actor — a performer cannot accept
// their own work, which is precisely the "explicit and textual" structure
// Co-ordinator imposed on communication.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "ccontrol/locks.hpp"  // ClientId
#include "sim/simulator.hpp"
#include "util/stats.hpp"

namespace coop::workflow {

using ClientId = ccontrol::ClientId;
using ConversationId = std::uint64_t;

/// Phases of the action workflow loop.
enum class ConvState : std::uint8_t {
  kRequested,   ///< proposal made, awaiting agreement
  kPromised,    ///< performer committed; performance under way
  kCountered,   ///< performer proposed new terms; customer must respond
  kReported,    ///< performer declared completion; awaiting satisfaction
  kAccepted,    ///< loop closed successfully (terminal)
  kDeclined,    ///< performer refused (terminal)
  kCancelled,   ///< withdrawn by either party (terminal)
};

/// Speech acts that drive transitions.
enum class Act : std::uint8_t {
  kRequest,  ///< customer opens the loop (implicit in begin())
  kPromise,  ///< performer agrees (from kRequested or kCountered)
  kCounter,  ///< performer proposes altered terms
  kAgree,    ///< customer accepts the counter (back to promised)
  kDecline,  ///< performer refuses
  kReport,   ///< performer declares completion
  kAccept,   ///< customer declares satisfaction
  kReject,   ///< customer is unsatisfied; performer must redo
  kCancel,   ///< either party withdraws
};

/// One recorded act.
struct ActRecord {
  Act act;
  ClientId actor;
  sim::TimePoint at;
};

/// The conversation-for-action engine.
class ConversationManager {
 public:
  explicit ConversationManager(sim::Simulator& sim) : sim_(sim) {}

  ConversationManager(const ConversationManager&) = delete;
  ConversationManager& operator=(const ConversationManager&) = delete;

  /// Customer opens a loop with a performer.  Returns the id.
  ConversationId begin(ClientId customer, ClientId performer,
                       std::string description);

  /// Applies @p act by @p actor.  Returns false (and changes nothing) if
  /// the transition is invalid in the current state or the actor is the
  /// wrong party — the prescriptive structure the paper discusses.
  bool act(ConversationId id, Act a, ClientId actor);

  [[nodiscard]] std::optional<ConvState> state(ConversationId id) const;
  [[nodiscard]] std::vector<ActRecord> history(ConversationId id) const;

  /// Fired on every successful transition.
  void on_transition(
      std::function<void(ConversationId, ConvState, const ActRecord&)> fn) {
    on_transition_ = std::move(fn);
  }

  [[nodiscard]] std::size_t open_count() const;
  [[nodiscard]] std::uint64_t completed() const noexcept {
    return completed_;
  }
  [[nodiscard]] std::uint64_t rejected_acts() const noexcept {
    return rejected_acts_;
  }
  /// begin -> kAccepted latency of completed loops (virtual µs).
  [[nodiscard]] const util::Summary& completion_latency() const noexcept {
    return completion_latency_;
  }

 private:
  struct Conversation {
    ClientId customer;
    ClientId performer;
    std::string description;
    ConvState state = ConvState::kRequested;
    sim::TimePoint began;
    std::vector<ActRecord> history;
  };

  [[nodiscard]] static bool terminal(ConvState s) {
    return s == ConvState::kAccepted || s == ConvState::kDeclined ||
           s == ConvState::kCancelled;
  }

  sim::Simulator& sim_;
  std::map<ConversationId, Conversation> conversations_;
  ConversationId next_id_ = 1;
  std::function<void(ConversationId, ConvState, const ActRecord&)>
      on_transition_;
  std::uint64_t completed_ = 0;
  std::uint64_t rejected_acts_ = 0;
  util::Summary completion_latency_;
};

}  // namespace coop::workflow
