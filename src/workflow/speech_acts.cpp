#include "workflow/speech_acts.hpp"

#include <utility>

namespace coop::workflow {

ConversationId ConversationManager::begin(ClientId customer,
                                          ClientId performer,
                                          std::string description) {
  const ConversationId id = next_id_++;
  Conversation c;
  c.customer = customer;
  c.performer = performer;
  c.description = std::move(description);
  c.began = sim_.now();
  c.history.push_back({Act::kRequest, customer, sim_.now()});
  conversations_[id] = std::move(c);
  if (on_transition_)
    on_transition_(id, ConvState::kRequested,
                   conversations_[id].history.back());
  return id;
}

bool ConversationManager::act(ConversationId id, Act a, ClientId actor) {
  auto it = conversations_.find(id);
  if (it == conversations_.end()) return false;
  Conversation& c = it->second;
  if (terminal(c.state)) {
    ++rejected_acts_;
    return false;
  }

  const bool is_customer = actor == c.customer;
  const bool is_performer = actor == c.performer;
  std::optional<ConvState> next;

  switch (a) {
    case Act::kRequest:
      break;  // only valid implicitly via begin()
    case Act::kPromise:
      if (is_performer && (c.state == ConvState::kRequested))
        next = ConvState::kPromised;
      break;
    case Act::kCounter:
      if (is_performer && c.state == ConvState::kRequested)
        next = ConvState::kCountered;
      break;
    case Act::kAgree:
      if (is_customer && c.state == ConvState::kCountered)
        next = ConvState::kPromised;
      break;
    case Act::kDecline:
      if (is_performer && (c.state == ConvState::kRequested ||
                           c.state == ConvState::kCountered))
        next = ConvState::kDeclined;
      break;
    case Act::kReport:
      if (is_performer && c.state == ConvState::kPromised)
        next = ConvState::kReported;
      break;
    case Act::kAccept:
      if (is_customer && c.state == ConvState::kReported)
        next = ConvState::kAccepted;
      break;
    case Act::kReject:
      if (is_customer && c.state == ConvState::kReported)
        next = ConvState::kPromised;  // back to performance
      break;
    case Act::kCancel:
      if (is_customer || is_performer) next = ConvState::kCancelled;
      break;
  }

  if (!next) {
    ++rejected_acts_;
    return false;
  }
  c.state = *next;
  c.history.push_back({a, actor, sim_.now()});
  if (c.state == ConvState::kAccepted) {
    ++completed_;
    completion_latency_.add(static_cast<double>(sim_.now() - c.began));
  }
  if (on_transition_) on_transition_(id, c.state, c.history.back());
  return true;
}

std::optional<ConvState> ConversationManager::state(
    ConversationId id) const {
  auto it = conversations_.find(id);
  if (it == conversations_.end()) return std::nullopt;
  return it->second.state;
}

std::vector<ActRecord> ConversationManager::history(
    ConversationId id) const {
  auto it = conversations_.find(id);
  return it == conversations_.end() ? std::vector<ActRecord>{}
                                    : it->second.history;
}

std::size_t ConversationManager::open_count() const {
  std::size_t n = 0;
  for (const auto& [id, c] : conversations_) {
    if (!terminal(c.state)) ++n;
  }
  return n;
}

}  // namespace coop::workflow
