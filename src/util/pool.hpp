// Size-classed freelist allocator for hot-path blocks.
//
// The simulation kernel and the network hot path allocate the same small
// objects over and over: callable captures that spill the inline buffer,
// payload buffers, encoder scratch.  General-purpose malloc is both the
// dominant per-event cost and a source of wall-clock jitter, so those
// paths draw fixed-size blocks from per-thread freelists instead: a block
// is carved from the heap once, then recycled forever.  Steady state does
// zero heap calls — the property the allocation-counting test in
// tests/alloc_path_test.cpp pins down.
//
// Blocks are bucketed into power-of-two size classes from 64 bytes to
// 64 KiB; larger requests (rare: jumbo payloads) pass straight through to
// operator new.  Freelists are thread_local, so the pool needs no locks
// and the single-threaded determinism story of the kernel is untouched.
// Freed blocks are retained until process exit (bounded by each thread's
// peak usage); they remain reachable through the thread-local list heads,
// so leak checkers classify them as "still reachable", not leaked.
#pragma once

#include <bit>
#include <cstddef>
#include <new>

namespace coop::util {

class BlockPool {
 public:
  /// Smallest / largest pooled block. Requests above kMaxBlock go to the
  /// heap directly (and are returned there by free()).
  static constexpr std::size_t kMinBlock = 64;
  static constexpr std::size_t kMaxBlock = 64 * 1024;

  /// Returns a block of at least @p size bytes, aligned for any object.
  [[nodiscard]] static void* alloc(std::size_t size) {
    const int c = class_index(size);
    if (c < 0) return ::operator new(size);
    Lists& l = lists();
    if (void* p = l.head[static_cast<std::size_t>(c)]) {
      l.head[static_cast<std::size_t>(c)] = *static_cast<void**>(p);
      return p;
    }
    return ::operator new(kMinBlock << c);
  }

  /// Returns a block obtained from alloc(@p size).  The size must match
  /// the original request (same class), as with sized deallocation.
  static void free(void* p, std::size_t size) noexcept {
    const int c = class_index(size);
    if (c < 0) {
      ::operator delete(p);
      return;
    }
    Lists& l = lists();
    *static_cast<void**>(p) = l.head[static_cast<std::size_t>(c)];
    l.head[static_cast<std::size_t>(c)] = p;
  }

  /// Capacity of the class serving @p size (test/diagnostic aid).
  [[nodiscard]] static std::size_t class_capacity(std::size_t size) noexcept {
    const int c = class_index(size);
    return c < 0 ? size : kMinBlock << c;
  }

 private:
  static constexpr int kClasses = 11;  // 64, 128, ..., 65536

  struct Lists {
    void* head[kClasses] = {};
  };

  static Lists& lists() noexcept {
    thread_local Lists l;
    return l;
  }

  /// Index of the smallest class holding @p size bytes; -1 if too large.
  [[nodiscard]] static int class_index(std::size_t size) noexcept {
    if (size > kMaxBlock) return -1;
    if (size <= kMinBlock) return 0;
    return std::bit_width(size - 1) - 6;  // 2^6 == kMinBlock
  }
};

}  // namespace coop::util
