// Statistics accumulators used throughout the benchmark harness.
//
// Experiments report means, percentiles and jitter of simulated latencies;
// Summary collects raw samples (latencies are few enough per run to keep),
// Counter/Gauge cover event accounting, and Histogram provides fixed-bucket
// distributions for QoS monitoring windows where keeping samples would be
// too heavy.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace coop::util {

/// Collects scalar samples and answers summary queries.
class Summary {
 public:
  void add(double x) {
    samples_.push_back(x);
    sorted_ = false;
  }

  [[nodiscard]] std::size_t count() const noexcept { return samples_.size(); }
  [[nodiscard]] bool empty() const noexcept { return samples_.empty(); }

  [[nodiscard]] double sum() const {
    double s = 0;
    for (double x : samples_) s += x;
    return s;
  }

  [[nodiscard]] double mean() const {
    return samples_.empty() ? 0.0 : sum() / static_cast<double>(count());
  }

  [[nodiscard]] double min() const {
    return samples_.empty()
               ? 0.0
               : *std::min_element(samples_.begin(), samples_.end());
  }

  [[nodiscard]] double max() const {
    return samples_.empty()
               ? 0.0
               : *std::max_element(samples_.begin(), samples_.end());
  }

  /// Sample standard deviation.
  [[nodiscard]] double stddev() const {
    if (samples_.size() < 2) return 0.0;
    const double m = mean();
    double acc = 0;
    for (double x : samples_) acc += (x - m) * (x - m);
    return std::sqrt(acc / static_cast<double>(samples_.size() - 1));
  }

  /// q in [0,1]; nearest-rank percentile.
  [[nodiscard]] double percentile(double q) const {
    if (samples_.empty()) return 0.0;
    sort_if_needed();
    const auto rank = static_cast<std::size_t>(
        q * static_cast<double>(samples_.size() - 1) + 0.5);
    return samples_[std::min(rank, samples_.size() - 1)];
  }

  [[nodiscard]] double p50() const { return percentile(0.50); }
  [[nodiscard]] double p95() const { return percentile(0.95); }
  [[nodiscard]] double p99() const { return percentile(0.99); }

  /// Mean absolute successive difference — the jitter metric used by the
  /// stream QoS monitor (inter-arrival variation).
  [[nodiscard]] double jitter() const {
    if (samples_.size() < 2) return 0.0;
    double acc = 0;
    for (std::size_t i = 1; i < samples_.size(); ++i)
      acc += std::abs(samples_[i] - samples_[i - 1]);
    return acc / static_cast<double>(samples_.size() - 1);
  }

  void clear() {
    samples_.clear();
    sorted_ = false;
  }

  [[nodiscard]] const std::vector<double>& samples() const noexcept {
    return samples_;
  }

 private:
  void sort_if_needed() const {
    if (!sorted_) {
      std::sort(samples_.begin(), samples_.end());
      sorted_ = true;
    }
  }

  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
};

/// Monotonic event counter.
class Counter {
 public:
  void inc(std::uint64_t by = 1) noexcept { value_ += by; }
  [[nodiscard]] std::uint64_t value() const noexcept { return value_; }
  void reset() noexcept { value_ = 0; }

 private:
  std::uint64_t value_ = 0;
};

/// A value that can move both ways (queue depths, high-water marks,
/// operating points).
class Gauge {
 public:
  void set(double v) noexcept { value_ = v; }
  void add(double d) noexcept { value_ += d; }
  /// Keeps the maximum of the current value and @p v (high-water marks).
  void max_of(double v) noexcept { value_ = std::max(value_, v); }
  [[nodiscard]] double value() const noexcept { return value_; }

 private:
  double value_ = 0;
};

/// Fixed-bucket histogram over [lo, hi); out-of-range samples clamp to the
/// edge buckets.  Used by QoS monitors where sample retention is too heavy.
///
/// Degenerate ranges (hi <= lo) are normalized to a unit-width window so
/// add() never divides by zero; NaN samples are tallied in nan_count()
/// and never bucketed (a NaN has no meaningful bucket, and converting it
/// to an integer index would be undefined behaviour).
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets)
      : lo_(lo),
        hi_(hi > lo ? hi : lo + 1.0),
        counts_(buckets > 0 ? buckets : 1, 0) {}

  void add(double x) {
    if (std::isnan(x)) {
      ++nan_;
      return;
    }
    ++total_;
    max_seen_ = std::max(max_seen_, x);
    const double n = static_cast<double>(counts_.size());
    // Clamp in double space *before* the integer cast: a far-out-of-range
    // sample (huge latency vs a narrow QoS window, or +-inf) would make
    // the double->int64 conversion undefined behaviour.
    const double scaled =
        std::clamp((x - lo_) / (hi_ - lo_) * n, 0.0, n - 1.0);
    ++counts_[static_cast<std::size_t>(scaled)];
  }

  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }

  /// NaN samples seen (counted separately, never bucketed).
  [[nodiscard]] std::uint64_t nan_count() const noexcept { return nan_; }

  [[nodiscard]] double lo() const noexcept { return lo_; }
  [[nodiscard]] double hi() const noexcept { return hi_; }

  /// Nearest-bucket quantile (bucket midpoint).
  [[nodiscard]] double quantile(double q) const {
    if (total_ == 0) return lo_;
    const auto target = static_cast<std::uint64_t>(
        q * static_cast<double>(total_ - 1)) + 1;
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
      seen += counts_[i];
      if (seen >= target) {
        const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
        return lo_ + (static_cast<double>(i) + 0.5) * width;
      }
    }
    return hi_;
  }

  /// Largest non-NaN sample seen (exact, not bucket-quantized; lo() when
  /// empty).  Bucket clamping loses the true maximum, which the p50/p95/
  /// p99/max export quad needs for tail reporting.
  [[nodiscard]] double max_seen() const noexcept {
    return total_ == 0 ? lo_ : max_seen_;
  }

  [[nodiscard]] const std::vector<std::uint64_t>& buckets() const noexcept {
    return counts_;
  }

 private:
  double lo_;
  double hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
  std::uint64_t nan_ = 0;
  double max_seen_ = -std::numeric_limits<double>::infinity();
};

}  // namespace coop::util
