// Compact binary serialization for simulated wire messages.
//
// Every payload that crosses the simulated network is encoded with Writer
// and decoded with Reader.  The format is little-endian, length-prefixed,
// with varint-free fixed-width integers — simplicity and debuggability over
// byte count, since "bandwidth" in the simulator is an accounting number.
//
// Reader reports malformed input via a sticky error flag rather than
// exceptions, so protocol code can bail out with a single check after
// decoding a struct (the common pattern in the rpc/groups modules).
//
// Writer builds directly into the pooled block that will become the
// payload Buf: take_buf() hands the finished bytes to the network layer
// with zero copies, and the legacy take() keeps returning a std::string
// for call sites that still want one.
#pragma once

#include <cassert>
#include <cstdint>
#include <cstring>
#include <limits>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

#include "util/buf.hpp"
#include "util/pool.hpp"

namespace coop::util {

/// Serializes primitive values into a byte buffer.
class Writer {
 public:
  Writer() = default;
  ~Writer() { discard(); }

  Writer(const Writer&) = delete;
  Writer& operator=(const Writer&) = delete;

  /// Length prefixes are 32-bit on the wire; a longer string or blob
  /// cannot be represented.  Exceeding it asserts in debug builds and
  /// sets the sticky failed() flag in release (the value is not written
  /// and the eventual take()/take_buf() yields an empty wire).
  static constexpr std::size_t kMaxLength =
      std::numeric_limits<std::uint32_t>::max();

  /// Appends a fixed-width integral or floating value.
  template <typename T>
    requires(std::is_arithmetic_v<T> || std::is_enum_v<T>)
  Writer& put(T value) {
    assert(!taken_ && "Writer reused after take()");
    if (failed_) return *this;
    ensure(sizeof(T));
    std::memcpy(Buf::bytes(ctrl_) + size_, &value, sizeof(T));
    size_ += sizeof(T);
    return *this;
  }

  /// Appends a length-prefixed string.
  Writer& put_string(std::string_view s) {
    assert(!taken_ && "Writer reused after take()");
    if (!check_length(s.size())) return *this;
    put(static_cast<std::uint32_t>(s.size()));
    append(s.data(), s.size());
    return *this;
  }

  /// Appends a length-prefixed blob.
  Writer& put_bytes(const std::vector<std::uint8_t>& b) {
    assert(!taken_ && "Writer reused after take()");
    if (!check_length(b.size())) return *this;
    put(static_cast<std::uint32_t>(b.size()));
    append(b.data(), b.size());
    return *this;
  }

  /// Appends each element of a vector of arithmetic values.
  template <typename T>
    requires(std::is_arithmetic_v<T>)
  Writer& put_vector(const std::vector<T>& v) {
    if (!check_length(v.size())) return *this;
    put(static_cast<std::uint32_t>(v.size()));
    for (const T& x : v) put(x);
    return *this;
  }

  /// Finishes encoding and empties the buffer; the Writer may not be
  /// reused afterwards.  Moving the storage out (rather than copying)
  /// means a stale Writer cannot silently re-serialize its old bytes —
  /// a second take() returns an empty string, and debug builds assert.
  /// A failed() Writer yields an empty wire.
  [[nodiscard]] std::string take() {
    assert(!taken_ && "Writer::take() called twice");
    taken_ = true;
    if (failed_ || ctrl_ == nullptr) {
      discard();
      return {};
    }
    std::string out(Buf::bytes(ctrl_), size_);
    discard();
    return out;
  }

  /// Finishes encoding and hands the bytes over as a shared Buf without
  /// copying: the block the Writer filled *is* the payload storage.
  [[nodiscard]] Buf take_buf() {
    assert(!taken_ && "Writer::take() called twice");
    taken_ = true;
    if (failed_ || ctrl_ == nullptr || size_ == 0) {
      discard();
      return {};
    }
    ctrl_->size = static_cast<std::uint32_t>(size_);
    Buf out(ctrl_);
    ctrl_ = nullptr;
    size_ = 0;
    return out;
  }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }

  /// True if a length-prefixed value exceeded kMaxLength; once set,
  /// stays set and further writes are dropped.
  [[nodiscard]] bool failed() const noexcept { return failed_; }

 private:
  /// Validates a length prefix *before* any bytes are touched.
  bool check_length(std::size_t n) {
    assert(n <= kMaxLength &&
           "Writer: length-prefixed value exceeds the 32-bit wire cap");
    if (n > kMaxLength) failed_ = true;
    return !failed_;
  }

  void append(const void* data, std::size_t n) {
    if (failed_ || n == 0) return;
    ensure(n);
    std::memcpy(Buf::bytes(ctrl_) + size_, data, n);
    size_ += n;
  }

  void ensure(std::size_t need) {
    if (ctrl_ != nullptr && size_ + need <= ctrl_->cap) return;
    // Capacities stay at "pool class minus header" so every growth step
    // lands on a recyclable block size.
    std::size_t cap =
        ctrl_ != nullptr ? static_cast<std::size_t>(ctrl_->cap) * 2
                         : BlockPool::kMinBlock * 2 - sizeof(Buf::Ctrl);
    while (cap < size_ + need) cap *= 2;
    Buf::Ctrl* grown = Buf::make(cap);
    if (ctrl_ != nullptr) {
      std::memcpy(Buf::bytes(grown), Buf::bytes(ctrl_), size_);
      BlockPool::free(ctrl_, sizeof(Buf::Ctrl) + ctrl_->cap);
    }
    ctrl_ = grown;
  }

  void discard() noexcept {
    if (ctrl_ != nullptr) {
      BlockPool::free(ctrl_, sizeof(Buf::Ctrl) + ctrl_->cap);
      ctrl_ = nullptr;
    }
    size_ = 0;
  }

  Buf::Ctrl* ctrl_ = nullptr;
  std::size_t size_ = 0;
  bool taken_ = false;
  bool failed_ = false;
};

/// Deserializes values written by Writer, in the same order.
class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}

  /// A Reader only views its input; constructing one from a temporary
  /// string would dangle immediately, so that overload is forbidden.
  explicit Reader(std::string&&) = delete;

  /// Reads a fixed-width value; on underrun sets the error flag and
  /// returns a zero value.  Once failed, every further read yields zero.
  template <typename T>
    requires(std::is_arithmetic_v<T> || std::is_enum_v<T>)
  T get() {
    T value{};
    if (failed_ || pos_ + sizeof(T) > data_.size()) {
      failed_ = true;
      return value;
    }
    std::memcpy(&value, data_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return value;
  }

  /// Reads a length-prefixed string.  The bound is checked as
  /// `len > remaining` (never `pos_ + len`, which can wrap size_t).
  std::string get_string() {
    const auto len = get<std::uint32_t>();
    if (failed_ || len > data_.size() - pos_) {
      failed_ = true;
      return {};
    }
    std::string s(data_.substr(pos_, len));
    pos_ += len;
    return s;
  }

  /// Reads a length-prefixed blob.
  std::vector<std::uint8_t> get_bytes() {
    const auto len = get<std::uint32_t>();
    if (failed_ || len > data_.size() - pos_) {
      failed_ = true;
      return {};
    }
    std::vector<std::uint8_t> b(data_.begin() + static_cast<long>(pos_),
                                data_.begin() + static_cast<long>(pos_ + len));
    pos_ += len;
    return b;
  }

  /// Reads a vector of arithmetic values written by put_vector.  The
  /// element count is validated against the remaining bytes by division
  /// — `len * sizeof(T)` can wrap a 32-bit size_t and sail past an
  /// additive check, which would then reserve() an attacker-chosen
  /// length from a malformed frame.
  template <typename T>
    requires(std::is_arithmetic_v<T>)
  std::vector<T> get_vector() {
    const auto len = get<std::uint32_t>();
    std::vector<T> v;
    if (failed_ || len > (data_.size() - pos_) / sizeof(T)) {
      failed_ = true;
      return v;
    }
    v.reserve(len);
    for (std::uint32_t i = 0; i < len; ++i) v.push_back(get<T>());
    return v;
  }

  /// True if any read overran the buffer; once set, stays set.
  [[nodiscard]] bool failed() const noexcept { return failed_; }

  /// True if the whole buffer was consumed without error.
  [[nodiscard]] bool exhausted() const noexcept {
    return !failed_ && pos_ == data_.size();
  }

  [[nodiscard]] std::size_t remaining() const noexcept {
    return failed_ ? 0 : data_.size() - pos_;
  }

 private:
  std::string_view data_;
  std::size_t pos_ = 0;
  bool failed_ = false;
};

}  // namespace coop::util
