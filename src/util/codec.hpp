// Compact binary serialization for simulated wire messages.
//
// Every payload that crosses the simulated network is encoded with Writer
// and decoded with Reader.  The format is little-endian, length-prefixed,
// with varint-free fixed-width integers — simplicity and debuggability over
// byte count, since "bandwidth" in the simulator is an accounting number.
//
// Reader reports malformed input via a sticky error flag rather than
// exceptions, so protocol code can bail out with a single check after
// decoding a struct (the common pattern in the rpc/groups modules).
#pragma once

#include <cassert>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

namespace coop::util {

/// Serializes primitive values into a byte buffer.
class Writer {
 public:
  Writer() = default;

  /// Appends a fixed-width integral or floating value.
  template <typename T>
    requires(std::is_arithmetic_v<T> || std::is_enum_v<T>)
  Writer& put(T value) {
    assert(!taken_ && "Writer reused after take()");
    const auto* bytes = reinterpret_cast<const std::uint8_t*>(&value);
    buf_.insert(buf_.end(), bytes, bytes + sizeof(T));
    return *this;
  }

  /// Appends a length-prefixed string.
  Writer& put_string(std::string_view s) {
    assert(!taken_ && "Writer reused after take()");
    put(static_cast<std::uint32_t>(s.size()));
    buf_.insert(buf_.end(), s.begin(), s.end());
    return *this;
  }

  /// Appends a length-prefixed blob.
  Writer& put_bytes(const std::vector<std::uint8_t>& b) {
    assert(!taken_ && "Writer reused after take()");
    put(static_cast<std::uint32_t>(b.size()));
    buf_.insert(buf_.end(), b.begin(), b.end());
    return *this;
  }

  /// Appends each element of a vector of arithmetic values.
  template <typename T>
    requires(std::is_arithmetic_v<T>)
  Writer& put_vector(const std::vector<T>& v) {
    put(static_cast<std::uint32_t>(v.size()));
    for (const T& x : v) put(x);
    return *this;
  }

  /// Finishes encoding and empties the buffer; the Writer may not be
  /// reused afterwards.  Moving the storage out (rather than copying)
  /// means a stale Writer cannot silently re-serialize its old bytes —
  /// a second take() returns an empty string, and debug builds assert.
  [[nodiscard]] std::string take() {
    assert(!taken_ && "Writer::take() called twice");
    taken_ = true;
    std::string out(buf_.begin(), buf_.end());
    buf_.clear();
    buf_.shrink_to_fit();
    return out;
  }

  [[nodiscard]] std::size_t size() const noexcept { return buf_.size(); }

 private:
  std::vector<std::uint8_t> buf_;
  bool taken_ = false;
};

/// Deserializes values written by Writer, in the same order.
class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}

  /// A Reader only views its input; constructing one from a temporary
  /// string would dangle immediately, so that overload is forbidden.
  explicit Reader(std::string&&) = delete;

  /// Reads a fixed-width value; on underrun sets the error flag and
  /// returns a zero value.  Once failed, every further read yields zero.
  template <typename T>
    requires(std::is_arithmetic_v<T> || std::is_enum_v<T>)
  T get() {
    T value{};
    if (failed_ || pos_ + sizeof(T) > data_.size()) {
      failed_ = true;
      return value;
    }
    std::memcpy(&value, data_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return value;
  }

  /// Reads a length-prefixed string.
  std::string get_string() {
    const auto len = get<std::uint32_t>();
    if (failed_ || pos_ + len > data_.size()) {
      failed_ = true;
      return {};
    }
    std::string s(data_.substr(pos_, len));
    pos_ += len;
    return s;
  }

  /// Reads a length-prefixed blob.
  std::vector<std::uint8_t> get_bytes() {
    const auto len = get<std::uint32_t>();
    if (failed_ || pos_ + len > data_.size()) {
      failed_ = true;
      return {};
    }
    std::vector<std::uint8_t> b(data_.begin() + static_cast<long>(pos_),
                                data_.begin() + static_cast<long>(pos_ + len));
    pos_ += len;
    return b;
  }

  /// Reads a vector of arithmetic values written by put_vector.
  template <typename T>
    requires(std::is_arithmetic_v<T>)
  std::vector<T> get_vector() {
    const auto len = get<std::uint32_t>();
    std::vector<T> v;
    if (failed_ || pos_ + static_cast<std::size_t>(len) * sizeof(T) >
                       data_.size()) {
      failed_ = true;
      return v;
    }
    v.reserve(len);
    for (std::uint32_t i = 0; i < len; ++i) v.push_back(get<T>());
    return v;
  }

  /// True if any read overran the buffer; once set, stays set.
  [[nodiscard]] bool failed() const noexcept { return failed_; }

  /// True if the whole buffer was consumed without error.
  [[nodiscard]] bool exhausted() const noexcept {
    return !failed_ && pos_ == data_.size();
  }

  [[nodiscard]] std::size_t remaining() const noexcept {
    return failed_ ? 0 : data_.size() - pos_;
  }

 private:
  std::string_view data_;
  std::size_t pos_ = 0;
  bool failed_ = false;
};

}  // namespace coop::util
