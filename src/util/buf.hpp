// util::Buf — a ref-counted immutable byte buffer for message payloads.
//
// The hot message path used to deep-copy payload strings at every hand-off:
// multicast fan-out copied the payload once per member, FifoChannel kept a
// second copy per unacked frame for retransmission, and the RPC replay
// cache a third.  Buf replaces those with a single allocation shared by
// reference count: copying a Buf bumps a counter, and the bytes live in
// one BlockPool block together with the control header (so a payload costs
// one pooled allocation total, and zero once the pool is warm).
//
// Buffers are logically immutable — everyone holding a Buf sees the same
// bytes forever.  The one writer is fault injection (bit corruption on the
// wire), which goes through mutate_byte(): it clones the storage first if
// anyone else holds a reference, so corrupting one in-flight copy never
// rewrites history for the sender's backlog or the other multicast legs.
//
// Interop is by std::string_view in both directions: Buf converts
// implicitly from string-like types (one copy in) and to string_view
// (zero copy out), which keeps `msg.payload = "hello"` and
// `decode(msg.payload)` call sites working unchanged.
//
// Single-threaded by design, like the simulator that carries it: the
// refcount is not atomic.
#pragma once

#include <cassert>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

#include "util/pool.hpp"

namespace coop::util {

class Writer;

class Buf {
 public:
  Buf() = default;
  Buf(std::string_view s) { assign(s); }                       // NOLINT
  Buf(const char* s) { assign(std::string_view(s)); }          // NOLINT
  Buf(const std::string& s) { assign(std::string_view(s)); }   // NOLINT

  Buf(const Buf& other) noexcept : ctrl_(other.ctrl_) {
    if (ctrl_ != nullptr) ++ctrl_->refs;
  }
  Buf(Buf&& other) noexcept : ctrl_(other.ctrl_) { other.ctrl_ = nullptr; }
  Buf& operator=(const Buf& other) noexcept {
    if (this != &other) {
      release();
      ctrl_ = other.ctrl_;
      if (ctrl_ != nullptr) ++ctrl_->refs;
    }
    return *this;
  }
  Buf& operator=(Buf&& other) noexcept {
    if (this != &other) {
      release();
      ctrl_ = other.ctrl_;
      other.ctrl_ = nullptr;
    }
    return *this;
  }
  ~Buf() { release(); }

  [[nodiscard]] const char* data() const noexcept {
    return ctrl_ != nullptr ? bytes(ctrl_) : "";
  }
  [[nodiscard]] std::size_t size() const noexcept {
    return ctrl_ != nullptr ? ctrl_->size : 0;
  }
  [[nodiscard]] bool empty() const noexcept { return size() == 0; }
  [[nodiscard]] std::string_view view() const noexcept {
    return {data(), size()};
  }
  operator std::string_view() const noexcept { return view(); }  // NOLINT
  [[nodiscard]] std::string str() const { return std::string(view()); }
  char operator[](std::size_t i) const noexcept { return data()[i]; }

  /// Number of Buf handles sharing this storage (0 for the empty buf).
  [[nodiscard]] std::uint32_t refs() const noexcept {
    return ctrl_ != nullptr ? ctrl_->refs : 0;
  }

  /// XORs the byte at @p pos with @p mask (fault injection).  Clones the
  /// storage first when it is shared, so aliases keep the original bytes.
  void mutate_byte(std::size_t pos, unsigned char mask) {
    if (ctrl_ == nullptr || pos >= ctrl_->size) return;
    if (ctrl_->refs > 1) {
      Ctrl* clone = make(ctrl_->size);
      clone->size = ctrl_->size;
      std::memcpy(bytes(clone), bytes(ctrl_), ctrl_->size);
      --ctrl_->refs;
      ctrl_ = clone;
    }
    bytes(ctrl_)[pos] =
        static_cast<char>(static_cast<unsigned char>(bytes(ctrl_)[pos]) ^ mask);
  }

  // The single string_view overload covers Buf==Buf, Buf=="lit" and
  // Buf==std::string (each right-hand side converts); a separate
  // (Buf, Buf) overload would make literal comparisons ambiguous.
  friend bool operator==(const Buf& b, std::string_view s) noexcept {
    return b.view() == s;
  }

 private:
  friend class Writer;

  /// Header living in the same pooled block as the bytes.
  struct Ctrl {
    std::uint32_t refs;
    std::uint32_t size;
    std::uint32_t cap;  ///< data capacity after the header
    std::uint32_t pad;
  };
  static_assert(sizeof(Ctrl) == 16);
  static_assert(alignof(Ctrl) <= alignof(std::max_align_t));

  static char* bytes(Ctrl* c) noexcept { return reinterpret_cast<char*>(c + 1); }
  static const char* bytes(const Ctrl* c) noexcept {
    return reinterpret_cast<const char*>(c + 1);
  }

  /// Allocates a block for @p cap data bytes with refs=1, size=0.
  static Ctrl* make(std::size_t cap) {
    assert(cap <= UINT32_MAX - sizeof(Ctrl));
    auto* c = static_cast<Ctrl*>(BlockPool::alloc(sizeof(Ctrl) + cap));
    c->refs = 1;
    c->size = 0;
    c->cap = static_cast<std::uint32_t>(cap);
    c->pad = 0;
    return c;
  }

  void assign(std::string_view s) {
    if (s.empty()) return;
    ctrl_ = make(s.size());
    ctrl_->size = static_cast<std::uint32_t>(s.size());
    std::memcpy(bytes(ctrl_), s.data(), s.size());
  }

  void release() noexcept {
    if (ctrl_ != nullptr && --ctrl_->refs == 0) {
      BlockPool::free(ctrl_, sizeof(Ctrl) + ctrl_->cap);
    }
    ctrl_ = nullptr;
  }

  /// Adopts a finalized block (Writer::take_buf).
  explicit Buf(Ctrl* adopted) noexcept : ctrl_(adopted) {}

  Ctrl* ctrl_ = nullptr;
};

}  // namespace coop::util
