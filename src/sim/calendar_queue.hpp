// sim::CalendarQueue — the shard-local pending-event set.
//
// The serial kernel's 4-ary heap pays O(log n) per push/pop against the
// *whole* pending set; at a million simulated participants that is ~20
// levels of cache-cold sifting per event.  A calendar queue exploits what
// the heap ignores: event timestamps are clustered a bounded distance
// ahead of the clock (timer cadences, link latencies), so hashing an event
// by time into a ring of bucket "days" makes the common insert an O(1)
// append and confines ordering work to one bucket at a time.
//
// Layout: a power-of-two ring of unsorted buckets, each `bucket_width`
// wide; the bucket the clock currently occupies is kept as a small 4-ary
// min-heap (pop = heap pop, same-bucket insert = heap push); events beyond
// one ring revolution sit in an overflow min-heap and are pulled forward a
// bucket at a time as the cursor advances.  Pop order is the strict
// (when, seq) total order — identical to the serial kernel's heap, and
// independent of bucket geometry — so artifacts never depend on tuning.
//
// The ring doubles (up to kMaxBuckets) when occupancy crosses
// kGrowOccupancy, which keeps per-bucket heaps small under load; resizing
// is a function of queue content only, so runs stay deterministic.
#pragma once

#include <cassert>
#include <cstdint>
#include <vector>

#include "sim/time.hpp"

namespace coop::sim {

/// Queue entry: POD ordering data plus the callable-slot index, same shape
/// as the serial kernel's heap entry.
struct CalEntry {
  TimePoint when;
  std::uint64_t seq;   // unique, monotone; breaks timestamp ties FIFO
  std::uint32_t slot;  // owner's callable slot table index
};

class CalendarQueue {
 public:
  explicit CalendarQueue(Duration bucket_width = usec(256),
                         std::size_t buckets = 64)
      : width_(bucket_width > 0 ? bucket_width : 1) {
    std::size_t n = 8;
    while (n < buckets && n < kMaxBuckets) n <<= 1;
    ring_.resize(n);
    occupied_.resize(words_for(n), 0);
  }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

  /// Strict total order (seq is unique).
  static bool before(const CalEntry& a, const CalEntry& b) noexcept {
    return a.when != b.when ? a.when < b.when : a.seq < b.seq;
  }

  void push(const CalEntry& e) {
    assert(e.when >= 0);
    if (size_ == 0) rebase(e.when);  // keep the ring mapping tight
    place(e);
    ++size_;
    if (size_ > ring_.size() * kGrowOccupancy && ring_.size() < kMaxBuckets)
      grow();
  }

  /// Copies the minimum entry into @p out without removing it.  Returns
  /// false when empty.  May advance the internal cursor over drained
  /// buckets (structural, not logical, mutation).
  bool peek(CalEntry& out) {
    if (size_ == 0) return false;
    settle();
    out = cur_[0];
    return true;
  }

  /// Removes the minimum entry (queue must be non-empty).
  void pop() {
    assert(size_ > 0);
    settle();
    heap_pop(cur_);
    --size_;
  }

  /// Visits every queued entry in unspecified order (liveness-window
  /// compaction scans).
  template <typename F>
  void for_each(F&& f) const {
    for (const CalEntry& e : cur_) f(e);
    for (const std::vector<CalEntry>& b : ring_)
      for (const CalEntry& e : b) f(e);
    for (const CalEntry& e : over_) f(e);
  }

  /// Ring geometry (test/diagnostic hooks).
  [[nodiscard]] std::size_t bucket_count() const noexcept {
    return ring_.size();
  }
  [[nodiscard]] Duration bucket_width() const noexcept { return width_; }

 private:
  static constexpr std::size_t kMaxBuckets = std::size_t{1} << 16;
  static constexpr std::size_t kGrowOccupancy = 8;

  static std::size_t words_for(std::size_t buckets) noexcept {
    return (buckets + 63) >> 6;
  }

  // 4-ary min-heap primitives over a vector (same sift shape as the
  // serial kernel; small heaps, so the depth is typically 1-3 levels).
  static void heap_push(std::vector<CalEntry>& h, const CalEntry& e) {
    std::size_t i = h.size();
    h.push_back(e);
    while (i > 0) {
      const std::size_t parent = (i - 1) >> 2;
      if (!before(e, h[parent])) break;
      h[i] = h[parent];
      i = parent;
    }
    h[i] = e;
  }

  static void heap_pop(std::vector<CalEntry>& h) {
    const CalEntry last = h.back();
    h.pop_back();
    const std::size_t n = h.size();
    if (n == 0) return;
    std::size_t i = 0;
    for (;;) {
      const std::size_t first = (i << 2) + 1;
      if (first >= n) break;
      std::size_t best = first;
      const std::size_t end = first + 4 < n ? first + 4 : n;
      for (std::size_t c = first + 1; c < end; ++c)
        if (before(h[c], h[best])) best = c;
      if (!before(h[best], last)) break;
      h[i] = h[best];
      i = best;
    }
    h[i] = last;
  }

  static void heapify(std::vector<CalEntry>& h) {
    if (h.size() < 2) return;
    for (std::size_t i = (h.size() - 2) >> 2; i + 1 > 0; --i) {
      const CalEntry e = h[i];
      std::size_t j = i;
      const std::size_t n = h.size();
      for (;;) {
        const std::size_t first = (j << 2) + 1;
        if (first >= n) break;
        std::size_t best = first;
        const std::size_t end = first + 4 < n ? first + 4 : n;
        for (std::size_t c = first + 1; c < end; ++c)
          if (before(h[c], h[best])) best = c;
        if (!before(h[best], e)) break;
        h[j] = h[best];
        j = best;
      }
      h[j] = e;
    }
  }

  [[nodiscard]] TimePoint horizon() const noexcept {
    // End of the ring's representable window; everything at or beyond
    // waits in the overflow heap.  Saturating: near kTimeMax the ring
    // simply never admits far-future entries.
    const auto span = static_cast<std::uint64_t>(width_) * ring_.size();
    const auto limit = static_cast<std::uint64_t>(kTimeMax - cur_start_);
    return span >= limit ? kTimeMax : cur_start_ + static_cast<TimePoint>(span);
  }

  void mark_occupied(std::size_t b) noexcept {
    occupied_[b >> 6] |= std::uint64_t{1} << (b & 63);
  }
  void mark_empty(std::size_t b) noexcept {
    occupied_[b >> 6] &= ~(std::uint64_t{1} << (b & 63));
  }

  /// Files @p e into the current heap, a ring bucket, or overflow.
  /// Entries before the cursor's bucket (a rewind after the cursor
  /// hunted ahead, e.g. a barrier insert below a drained region) join
  /// the current heap, which keeps pop order exact.  When the window
  /// saturates at kTimeMax ("never" sentinels from the saturating
  /// schedule_after) the terminal bucket's range extends to the end of
  /// time, so nothing can be stranded in overflow.
  void place(const CalEntry& e) {
    const TimePoint h = horizon();
    if (h != kTimeMax && e.when >= h) {
      heap_push(over_, e);
      return;
    }
    const TimePoint cur_end = saturating_after(cur_start_, width_);
    if (e.when < cur_end || cur_end == kTimeMax) {
      heap_push(cur_, e);
      return;
    }
    auto j = static_cast<std::size_t>(
        (e.when - cur_start_) / width_);           // 1 <= j
    if (j >= ring_.size()) j = ring_.size() - 1;   // saturated window only
    const std::size_t b = (cursor_ + j) & (ring_.size() - 1);
    ring_[b].push_back(e);
    mark_occupied(b);
  }

  /// Ensures the minimum entry sits at cur_[0]: advances the cursor over
  /// empty buckets, pulls overflow entries that fell inside the window,
  /// and heapifies the bucket it lands on.  Pre: size_ > 0.
  void settle() {
    while (cur_.empty()) {
      if (ring_is_empty()) {
        // Everything pending is in overflow: jump the window there
        // instead of stepping one bucket at a time.
        assert(!over_.empty());
        rebase(over_[0].when);
        drain_overflow();
        continue;  // cur_ may still be empty if rebasing landed oddly
      }
      // Step to the next occupied bucket (bitmap scan, then move that
      // bucket's entries into the current heap).
      const std::size_t steps = next_occupied_distance();
      cursor_ = (cursor_ + steps) & (ring_.size() - 1);
      cur_start_ += static_cast<TimePoint>(steps) * width_;
      std::vector<CalEntry>& b = ring_[cursor_];
      cur_.swap(b);
      b.clear();
      mark_empty(cursor_);
      heapify(cur_);
      drain_overflow();  // window advanced: pull newly eligible entries
    }
  }

  /// Moves overflow entries now inside the ring window to their buckets.
  void drain_overflow() {
    while (!over_.empty()) {
      const TimePoint h = horizon();
      if (over_[0].when >= h && h != kTimeMax) break;
      const CalEntry e = over_[0];
      heap_pop(over_);
      place(e);  // cannot bounce back: the overflow test above excludes it
    }
  }

  [[nodiscard]] bool ring_is_empty() const noexcept {
    for (const std::uint64_t w : occupied_)
      if (w != 0) return false;
    return true;
  }

  /// Distance (in buckets, >= 1) from the cursor to the next occupied
  /// bucket.  Pre: some ring bucket is occupied.
  [[nodiscard]] std::size_t next_occupied_distance() const noexcept {
    const std::size_t n = ring_.size();
    for (std::size_t d = 1; d <= n; ++d) {
      const std::size_t b = (cursor_ + d) & (n - 1);
      if (occupied_[b >> 6] >> (b & 63) & 1) return d;
    }
    assert(false && "ring_is_empty() said otherwise");
    return 1;
  }

  /// Re-anchors the window so @p t falls in the cursor bucket.  Only
  /// valid when the ring and current heap are empty.
  void rebase(TimePoint t) {
    cursor_ = 0;
    cur_start_ = t - (t % width_);
  }

  /// Doubles the ring and re-files everything (amortized by the growth
  /// threshold; deterministic — depends only on queue content).
  void grow() {
    std::vector<CalEntry> all;
    all.reserve(size_);
    for_each([&all](const CalEntry& e) { all.push_back(e); });
    const std::size_t n = ring_.size() << 1;
    ring_.assign(n, {});
    occupied_.assign(words_for(n), 0);
    cur_.clear();
    over_.clear();
    TimePoint anchor = all.front().when;
    for (const CalEntry& e : all) anchor = e.when < anchor ? e.when : anchor;
    rebase(anchor);
    for (const CalEntry& e : all) place(e);
  }

  Duration width_;
  std::vector<std::vector<CalEntry>> ring_;  // unsorted future buckets
  std::vector<std::uint64_t> occupied_;      // one bit per ring bucket
  std::vector<CalEntry> cur_;                // 4-ary heap: cursor bucket
  std::vector<CalEntry> over_;               // 4-ary heap: beyond horizon
  std::size_t cursor_ = 0;
  TimePoint cur_start_ = 0;
  std::size_t size_ = 0;
};

}  // namespace coop::sim
