#include "sim/simulator.hpp"

#include <memory>
#include <utility>

namespace coop::sim {

EventId Simulator::schedule_at(TimePoint when, EventFn fn) {
  if (when < now_) when = now_;
  const std::uint64_t seq = next_seq_++;
  const EventId id = seq;  // seq doubles as the handle; unique per kernel
  queue_.push(Entry{when, seq, id, std::make_shared<EventFn>(std::move(fn))});
  return id;
}

bool Simulator::cancel(EventId id) {
  if (id == kInvalidEvent || id >= next_seq_) return false;
  // Lazy deletion: mark and skip when popped.  A second cancel of the same
  // id (or of an already-fired event) reports failure.
  return cancelled_.insert(id).second && true;
}

bool Simulator::step() {
  while (!queue_.empty()) {
    Entry top = queue_.top();
    queue_.pop();
    if (auto it = cancelled_.find(top.id); it != cancelled_.end()) {
      cancelled_.erase(it);
      continue;
    }
    now_ = top.when;
    ++processed_;
    (*top.fn)();
    return true;
  }
  return false;
}

std::size_t Simulator::run(std::size_t max_events) {
  std::size_t n = 0;
  while (n < max_events && step()) ++n;
  return n;
}

std::size_t Simulator::run_until(TimePoint t) {
  std::size_t n = 0;
  while (!queue_.empty()) {
    const Entry& top = queue_.top();
    if (cancelled_.count(top.id) != 0) {
      cancelled_.erase(top.id);
      queue_.pop();
      continue;
    }
    if (top.when > t) break;
    step();
    ++n;
  }
  if (now_ < t) now_ = t;
  return n;
}

void PeriodicTimer::start(Duration initial_delay) {
  stop();
  running_ = true;
  arm(initial_delay >= 0 ? initial_delay : period_);
}

void PeriodicTimer::stop() {
  if (pending_ != kInvalidEvent) {
    sim_.cancel(pending_);
    pending_ = kInvalidEvent;
  }
  running_ = false;
}

void PeriodicTimer::arm(Duration delay) {
  pending_ = sim_.schedule_after(delay, [this] {
    pending_ = kInvalidEvent;
    if (!running_) return;
    on_tick_();
    if (running_) arm(period_);  // on_tick_ may have stopped the timer
  });
}

}  // namespace coop::sim
