#include "sim/simulator.hpp"

#include <algorithm>
#include <utility>

namespace coop::sim {

void Simulator::heap_push(const Entry& e) {
  std::size_t i = heap_.size();
  heap_.push_back(e);
  while (i > 0) {
    const std::size_t parent = (i - 1) >> 2;
    if (!before(e, heap_[parent])) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = e;
}

void Simulator::heap_pop() {
  const Entry last = heap_.back();
  heap_.pop_back();
  const std::size_t n = heap_.size();
  if (n == 0) return;
  std::size_t i = 0;
  for (;;) {
    const std::size_t first = (i << 2) + 1;
    if (first >= n) break;
    std::size_t best = first;
    const std::size_t end = first + 4 < n ? first + 4 : n;
    for (std::size_t c = first + 1; c < end; ++c) {
      if (before(heap_[c], heap_[best])) best = c;
    }
    if (!before(heap_[best], last)) break;
    heap_[i] = heap_[best];
    i = best;
  }
  heap_[i] = last;
}

EventId Simulator::schedule_at(TimePoint when, EventFn fn) {
  if (when < now_) when = now_;
  const std::uint64_t seq = next_seq_++;  // doubles as the handle
  heap_push(Entry{when, seq, acquire_slot(std::move(fn))});
  live_.insert(seq);
  if (next_seq_ >= compact_check_) maybe_compact_live();
  return seq;
}

void Simulator::maybe_compact_live() {
  // Drop the dead prefix of the liveness bitmap so its memory tracks the
  // seq spread of the queue, not the total events ever scheduled.  Every
  // id the kernel will still test is in the heap, so the minimum queued
  // seq bounds the window from below.
  compact_check_ = next_seq_ + kCompactInterval;
  std::uint64_t min_seq = next_seq_;
  for (const Entry& e : heap_) min_seq = std::min(min_seq, e.seq);
  live_.compact(min_seq);
}

std::uint32_t Simulator::acquire_slot(EventFn&& fn) {
  if (free_slots_.empty()) {
    slots_.push_back(std::move(fn));
    return static_cast<std::uint32_t>(slots_.size() - 1);
  }
  const std::uint32_t slot = free_slots_.back();
  free_slots_.pop_back();
  slots_[slot] = std::move(fn);
  return slot;
}

void Simulator::release_slot(std::uint32_t slot) {
  slots_[slot].reset();
  free_slots_.push_back(slot);
}

bool Simulator::cancel(EventId id) {
  // Only genuinely pending events can be cancelled.  Clearing the
  // liveness bit (rather than accumulating a tombstone) means cancelling
  // an already-fired id is a clean no-op — the old tombstone scheme
  // reported success for fired events and skewed pending() forever
  // after.  The queue entry and its callable slot are reclaimed lazily
  // when the entry pops.
  if (id == kInvalidEvent) return false;
  return live_.erase(id);
}

void Simulator::dispatch(const Entry& top) {
  now_ = top.when;
  ++processed_;
  if (step_hook_fn_ != nullptr)
    step_hook_fn_(step_hook_ctx_, top.seq, top.when, live_.size());
  // Move the callable out and free the slot *before* invoking: the
  // callback may schedule new events (reusing this very slot) or even
  // re-enter run().
  EventFn fn = std::move(slots_[top.slot]);
  release_slot(top.slot);
  if (step_timer_fn_ != nullptr) {
    // The steady clock is read only while a timer hook is installed:
    // profiling is pay-for-use, the unprofiled path stays two branches.
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    step_timer_fn_(step_timer_ctx_,
                   static_cast<std::uint64_t>(
                       std::chrono::duration_cast<std::chrono::nanoseconds>(
                           std::chrono::steady_clock::now() - t0)
                           .count()));
  } else {
    fn();
  }
}

bool Simulator::step() {
  while (!heap_.empty()) {
    const Entry top = heap_[0];
    heap_pop();
    // Lazy deletion: a queue entry whose liveness bit is clear was
    // cancelled; free its slot (destroying the captures) and move on.
    if (!live_.erase(top.seq)) {
      release_slot(top.slot);
      continue;
    }
    dispatch(top);
    return true;
  }
  return false;
}

std::size_t Simulator::run(std::size_t max_events) {
  std::size_t n = 0;
  while (n < max_events && step()) ++n;
  return n;
}

std::size_t Simulator::run_until(TimePoint t) {
  std::size_t n = 0;
  while (!heap_.empty()) {
    const Entry top = heap_[0];
    if (top.when > t) {
      // Nothing at or before t remains: every live entry above fires
      // later, and any cancelled residue up there can stay lazy.
      break;
    }
    heap_pop();
    if (!live_.erase(top.seq)) {  // cancelled; reclaim the slot now
      release_slot(top.slot);
      continue;
    }
    dispatch(top);
    ++n;
  }
  if (now_ < t) now_ = t;
  return n;
}

void PeriodicTimer::start(Duration initial_delay) {
  stop();
  running_ = true;
  arm(initial_delay >= 0 ? initial_delay : effective_period());
}

void PeriodicTimer::stop() {
  if (pending_ != kInvalidEvent) {
    sim_.cancel(pending_);
    pending_ = kInvalidEvent;
  }
  running_ = false;
}

void PeriodicTimer::arm(Duration delay) {
  // An explicit zero initial delay ("first tick now") is fine — only the
  // repeating period needs a floor, and effective_period() supplies it at
  // every re-arm site.  The jitter path keeps the same guarantee: its
  // scale factor never rounds a positive delay below one microsecond.
  if (jitter_ > 0.0 && jitter_rng_ != nullptr && delay > 0) {
    const double f = jitter_rng_->uniform(1.0 - jitter_, 1.0 + jitter_);
    delay = std::max<Duration>(
        1, static_cast<Duration>(static_cast<double>(delay) * f));
  }
  pending_ = sim_.schedule_after(delay, [this] {
    pending_ = kInvalidEvent;
    if (!running_) return;
    on_tick_();
    // on_tick_ may have stopped the timer.  Re-arm with the clamped
    // period: a non-positive period_ would otherwise re-schedule at the
    // current timestamp forever, an event storm run() can never get past.
    if (running_) arm(effective_period());
  });
}

}  // namespace coop::sim
