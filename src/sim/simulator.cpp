#include "sim/simulator.hpp"

#include <memory>
#include <utility>

namespace coop::sim {

EventId Simulator::schedule_at(TimePoint when, EventFn fn) {
  if (when < now_) when = now_;
  const std::uint64_t seq = next_seq_++;
  const EventId id = seq;  // seq doubles as the handle; unique per kernel
  queue_.push(Entry{when, seq, id, std::make_shared<EventFn>(std::move(fn))});
  live_.insert(id);
  return id;
}

bool Simulator::cancel(EventId id) {
  // Only genuinely pending events can be cancelled.  Erasing from the live
  // set (rather than accumulating a tombstone) means cancelling an
  // already-fired id is a clean no-op — the old tombstone scheme reported
  // success for fired events and skewed pending() forever after.
  return id != kInvalidEvent && live_.erase(id) > 0;
}

bool Simulator::step() {
  while (!queue_.empty()) {
    Entry top = queue_.top();
    queue_.pop();
    // Lazy deletion: a queue entry whose id is no longer live was
    // cancelled; discard it.
    if (live_.erase(top.id) == 0) continue;
    now_ = top.when;
    ++processed_;
    if (step_hook_) step_hook_(top.id, top.when, live_.size());
    (*top.fn)();
    return true;
  }
  return false;
}

std::size_t Simulator::run(std::size_t max_events) {
  std::size_t n = 0;
  while (n < max_events && step()) ++n;
  return n;
}

std::size_t Simulator::run_until(TimePoint t) {
  std::size_t n = 0;
  while (!queue_.empty()) {
    const Entry& top = queue_.top();
    if (live_.count(top.id) == 0) {
      queue_.pop();  // cancelled; discard without advancing the clock
      continue;
    }
    if (top.when > t) break;
    step();
    ++n;
  }
  if (now_ < t) now_ = t;
  return n;
}

void PeriodicTimer::start(Duration initial_delay) {
  stop();
  running_ = true;
  arm(initial_delay >= 0 ? initial_delay : period_);
}

void PeriodicTimer::stop() {
  if (pending_ != kInvalidEvent) {
    sim_.cancel(pending_);
    pending_ = kInvalidEvent;
  }
  running_ = false;
}

void PeriodicTimer::arm(Duration delay) {
  pending_ = sim_.schedule_after(delay, [this] {
    pending_ = kInvalidEvent;
    if (!running_) return;
    on_tick_();
    if (running_) arm(period_);  // on_tick_ may have stopped the timer
  });
}

}  // namespace coop::sim
