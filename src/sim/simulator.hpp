// Discrete-event simulation kernel.
//
// The Simulator is the substrate on which every coop experiment runs: all
// "distributed" activity (message transit, timers, user think time, media
// frame clocks) is expressed as events on one virtual timeline.  The kernel
// is single-threaded and deterministic — two runs with the same seed process
// the same events in the same order — which is what lets the benchmark
// harness reproduce the paper's qualitative claims exactly.
//
// Ties are broken by insertion order (a FIFO among same-timestamp events) so
// that determinism never depends on container iteration order.
#pragma once

#include <chrono>
#include <cstdint>
#include <utility>
#include <vector>

#include "sim/id_set.hpp"
#include "sim/rng.hpp"
#include "sim/small_fn.hpp"
#include "sim/time.hpp"

namespace coop::sim {

/// Handle for a scheduled event; used to cancel timers.
using EventId = std::uint64_t;

/// Sentinel returned when no event was scheduled.
inline constexpr EventId kInvalidEvent = 0;

/// Callback executed when an event fires.  Move-only, with inline storage
/// for small captures — scheduling an event does not allocate unless the
/// capture exceeds SmallFn::kInlineBytes.
using EventFn = SmallFn;

/// Observer invoked once per executed event, just before its callback runs:
/// (context, event id, its timestamp, events still pending after this one).
/// A raw function pointer + context — not a type-erased callable — because
/// this is the hottest seam in the kernel: the test-and-call must cost one
/// predictable branch per step.  Lets an observability layer trace kernel
/// activity without the kernel depending on it.
using StepHookFn = void (*)(void* ctx, EventId id, TimePoint when,
                            std::size_t pending);

/// Observer handed the wall-clock nanoseconds an event callback took.  The
/// kernel reads the steady clock only while one is installed, so profiling
/// is strictly pay-for-use.
using StepTimerFn = void (*)(void* ctx, std::uint64_t elapsed_ns);

/// The event-driven virtual-time kernel.
///
/// Typical use:
/// @code
///   Simulator sim{/*seed=*/7};
///   sim.schedule_after(msec(10), [&] { ... });
///   sim.run();
/// @endcode
class Simulator {
 public:
  explicit Simulator(std::uint64_t seed = 42) : rng_(seed) {}

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current virtual time.
  [[nodiscard]] TimePoint now() const noexcept { return now_; }

  /// Schedules @p fn to run at absolute virtual time @p when (clamped to
  /// now() if in the past).  Returns a handle usable with cancel().
  EventId schedule_at(TimePoint when, EventFn fn);

  /// Schedules @p fn to run @p delay after the current time.  The sum
  /// saturates at kTimeMax: a huge "never" sentinel delay schedules an
  /// event at the end of simulated time instead of wrapping negative and
  /// firing immediately through the past-event clamp.
  EventId schedule_after(Duration delay, EventFn fn) {
    return schedule_at(saturating_after(now_, delay), std::move(fn));
  }

  /// Cancels a pending event.  Returns true only if the event was still
  /// pending — cancelling an already-fired, already-cancelled or invalid
  /// id returns false and leaves no residue in the kernel's accounting.
  bool cancel(EventId id);

  /// Executes the single earliest pending event.  Returns false if the
  /// queue is empty.
  bool step();

  /// Runs until no events remain.  Returns the number of events processed.
  /// @p max_events guards against runaway feedback loops in experiments.
  std::size_t run(std::size_t max_events = kNoEventLimit);

  /// Runs all events with timestamp <= @p t, then advances the clock to
  /// exactly @p t.  Returns the number of events processed.
  std::size_t run_until(TimePoint t);

  /// Runs the simulation forward by @p d (saturating at kTimeMax).
  std::size_t run_for(Duration d) { return run_until(saturating_after(now_, d)); }

  /// The kernel's deterministic random stream.
  [[nodiscard]] Rng& rng() noexcept { return rng_; }

  /// Total events executed so far (for experiment accounting).
  [[nodiscard]] std::uint64_t events_processed() const noexcept {
    return processed_;
  }

  /// Number of events currently pending.  Exact: cancelled entries still
  /// sitting in the queue (lazy deletion) are not counted.
  [[nodiscard]] std::size_t pending() const noexcept { return live_.size(); }

  /// Installs (or clears, with nullptr) the per-step observer.
  void set_step_hook(StepHookFn fn, void* ctx = nullptr) noexcept {
    step_hook_fn_ = fn;
    step_hook_ctx_ = ctx;
  }

  /// Installs (or clears, with nullptr) the per-step wall-clock timer.
  void set_step_timer(StepTimerFn fn, void* ctx = nullptr) noexcept {
    step_timer_fn_ = fn;
    step_timer_ctx_ = ctx;
  }

  static constexpr std::size_t kNoEventLimit = ~static_cast<std::size_t>(0);

 private:
  // The queue holds POD ordering data plus the index of the recycled
  // callable slot, so firing an event never has to look the slot up.
  struct Entry {
    TimePoint when;
    std::uint64_t seq;   // insertion order; breaks timestamp ties FIFO,
                         // and doubles as the EventId handle
    std::uint32_t slot;  // index into slots_
  };

  /// Strict total order (seq is unique), so the pop sequence — and with it
  /// every virtual-time artifact — is independent of the heap's internal
  /// arrangement.
  static bool before(const Entry& a, const Entry& b) noexcept {
    return a.when != b.when ? a.when < b.when : a.seq < b.seq;
  }

  // Hand-rolled 4-ary min-heap.  Versus std::priority_queue's binary heap
  // this halves the sift depth and keeps all four children of a node in
  // one or two cache lines (4 x 24 bytes), which measurably matters at
  // millions of push/pop pairs per simulated second.
  void heap_push(const Entry& e);
  void heap_pop();

  std::uint32_t acquire_slot(EventFn&& fn);
  void release_slot(std::uint32_t slot);
  void maybe_compact_live();
  void dispatch(const Entry& top);

  std::vector<Entry> heap_;
  std::vector<EventFn> slots_;         // callable storage, index-stable
  std::vector<std::uint32_t> free_slots_;
  // One liveness bit per event id.  Cancellation clears the bit (so
  // pending() and cancel()'s return value stay exact) and leaves the
  // queue entry to be skipped — and its slot released — when popped.
  // Ids are dense and monotone, so both the schedule-side set and the
  // fire-side clear land on recently touched words (L1-hot), unlike a
  // hash set whose probes each cost a cache miss at this event rate.
  LiveBits live_;
  StepHookFn step_hook_fn_ = nullptr;
  void* step_hook_ctx_ = nullptr;
  StepTimerFn step_timer_fn_ = nullptr;
  void* step_timer_ctx_ = nullptr;
  TimePoint now_ = 0;
  std::uint64_t next_seq_ = 1;
  std::uint64_t compact_check_ = kCompactInterval;
  std::uint64_t processed_ = 0;
  Rng rng_;

  // How many ids may be allocated between liveness-window compaction
  // scans (each scan is O(pending), so the amortized cost is noise).
  static constexpr std::uint64_t kCompactInterval = std::uint64_t{1} << 20;
};

/// A repeating timer bound to a Simulator.  Used for heartbeats, media frame
/// clocks and monitoring windows.  RAII: destroying (or stop()ping) the
/// timer cancels the pending tick.
///
/// A non-positive period (constructed that way, or via set_period(0)) is
/// clamped to one microsecond per re-arm: virtual time always advances
/// between ticks, so a misconfigured timer degrades to a fast-but-finite
/// cadence instead of an unbounded same-timestamp event storm that run()
/// can never get past.  An explicit start(0) is untouched — "first tick
/// now" is a one-shot and cannot storm.
class PeriodicTimer {
 public:
  /// Creates a stopped timer.  Call start().
  PeriodicTimer(Simulator& sim, Duration period, EventFn on_tick)
      : sim_(sim), period_(period), on_tick_(std::move(on_tick)) {}

  ~PeriodicTimer() { stop(); }
  PeriodicTimer(const PeriodicTimer&) = delete;
  PeriodicTimer& operator=(const PeriodicTimer&) = delete;

  /// Begins ticking; first tick fires one period from now (or after
  /// @p initial_delay if given).
  void start(Duration initial_delay = -1);

  /// Stops ticking; pending tick is cancelled.
  void stop();

  /// Changes the period; takes effect from the next tick.
  void set_period(Duration period) noexcept { period_ = period; }

  /// Applies deterministic multiplicative jitter: every armed delay is
  /// scaled by a factor drawn uniformly from [1-frac, 1+frac] out of
  /// @p rng (normally the owning Simulator's seeded rng, so runs stay
  /// reproducible).  Desynchronizes fleets of timers that share a cadence
  /// — without jitter every member of a group fires in lockstep and their
  /// traffic arrives in bursts.  frac <= 0 or a null rng disables.
  void set_jitter(double frac, Rng* rng) noexcept {
    jitter_ = frac;
    jitter_rng_ = rng;
  }

  [[nodiscard]] bool running() const noexcept { return running_; }
  [[nodiscard]] Duration period() const noexcept { return period_; }

 private:
  void arm(Duration delay);

  /// The re-arm cadence: the configured period, floored at one
  /// microsecond so a misconfigured timer cannot stall virtual time.
  [[nodiscard]] Duration effective_period() const noexcept {
    return period_ > 0 ? period_ : 1;
  }

  Simulator& sim_;
  Duration period_;
  EventFn on_tick_;
  EventId pending_ = kInvalidEvent;
  bool running_ = false;
  double jitter_ = 0.0;
  Rng* jitter_rng_ = nullptr;
};

}  // namespace coop::sim
