// sim::SmallFn — the kernel's event callable, without the per-event heap.
//
// std::function plus the shared_ptr that used to wrap it cost two heap
// allocations per scheduled event; at millions of events per second that
// was the single largest line item on the hot path.  SmallFn stores the
// capture inline when it fits (48 bytes covers every kernel-internal
// lambda: the network delivery thunk captures {this, slot-index}, timers
// capture {this}) and spills to a BlockPool block otherwise, so even the
// overflow case recycles storage instead of hitting malloc.
//
// Move-only by design: the simulator owns each callable in exactly one
// slot, moves it out to invoke, and never copies.  Moves are noexcept —
// heap-stored callables move by pointer steal, inline ones by relocating
// the capture — which is what lets the slot table grow with vector
// semantics.
#pragma once

#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>

#include "util/pool.hpp"

namespace coop::sim {

class SmallFn {
 public:
  /// Captures up to this many bytes are stored inline (no allocation).
  static constexpr std::size_t kInlineBytes = 48;

  SmallFn() = default;
  SmallFn(std::nullptr_t) noexcept {}  // NOLINT

  template <typename F>
    requires(!std::is_same_v<std::remove_cvref_t<F>, SmallFn> &&
             std::is_invocable_r_v<void, std::decay_t<F>&>)
  SmallFn(F&& f) {  // NOLINT
    using D = std::decay_t<F>;
    if constexpr (inlinable<D>) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
      ops_ = &kInlineOps<D>;
    } else {
      heap_ = util::BlockPool::alloc(sizeof(D));
      ::new (heap_) D(std::forward<F>(f));
      ops_ = &kHeapOps<D>;
    }
  }

  SmallFn(SmallFn&& other) noexcept { steal(other); }
  SmallFn& operator=(SmallFn&& other) noexcept {
    if (this != &other) {
      reset();
      steal(other);
    }
    return *this;
  }
  SmallFn& operator=(std::nullptr_t) noexcept {
    reset();
    return *this;
  }

  SmallFn(const SmallFn&) = delete;
  SmallFn& operator=(const SmallFn&) = delete;

  ~SmallFn() { reset(); }

  void operator()() { ops_->invoke(storage()); }

  explicit operator bool() const noexcept { return ops_ != nullptr; }

  /// True when the capture lives in the inline buffer (test hook).
  [[nodiscard]] bool inline_stored() const noexcept {
    return ops_ != nullptr && !ops_->heap;
  }

  /// Destroys the stored callable (and returns overflow storage to the
  /// pool); the SmallFn becomes empty.
  void reset() noexcept {
    if (ops_ == nullptr) return;
    ops_->destroy(storage());
    if (ops_->heap) util::BlockPool::free(heap_, ops_->size);
    ops_ = nullptr;
    heap_ = nullptr;
  }

 private:
  struct Ops {
    void (*invoke)(void*);
    void (*relocate)(void* src, void* dst) noexcept;  ///< inline only
    void (*destroy)(void*) noexcept;
    std::uint32_t size;  ///< sizeof the stored callable
    bool heap;
  };

  template <typename D>
  static constexpr bool inlinable =
      sizeof(D) <= kInlineBytes && alignof(D) <= alignof(std::max_align_t) &&
      std::is_nothrow_move_constructible_v<D>;

  template <typename D>
  static void do_invoke(void* p) {
    (*static_cast<D*>(p))();
  }
  template <typename D>
  static void do_relocate(void* src, void* dst) noexcept {
    ::new (dst) D(std::move(*static_cast<D*>(src)));
    static_cast<D*>(src)->~D();
  }
  template <typename D>
  static void do_destroy(void* p) noexcept {
    static_cast<D*>(p)->~D();
  }

  template <typename D>
  static constexpr Ops kInlineOps{&do_invoke<D>, &do_relocate<D>,
                                  &do_destroy<D>,
                                  static_cast<std::uint32_t>(sizeof(D)), false};
  template <typename D>
  static constexpr Ops kHeapOps{&do_invoke<D>, nullptr, &do_destroy<D>,
                                static_cast<std::uint32_t>(sizeof(D)), true};

  void* storage() noexcept {
    return ops_->heap ? heap_ : static_cast<void*>(buf_);
  }

  void steal(SmallFn& other) noexcept {
    ops_ = other.ops_;
    if (ops_ == nullptr) return;
    if (ops_->heap) {
      heap_ = other.heap_;
      other.heap_ = nullptr;
    } else {
      ops_->relocate(other.buf_, buf_);
    }
    other.ops_ = nullptr;
  }

  alignas(std::max_align_t) unsigned char buf_[kInlineBytes];
  void* heap_ = nullptr;
  const Ops* ops_ = nullptr;
};

}  // namespace coop::sim
