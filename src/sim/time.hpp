// Simulated-time primitives for the coop discrete-event kernel.
//
// All of coop models time as a signed 64-bit count of microseconds since the
// start of the simulation.  A plain integer (rather than std::chrono) keeps
// the arithmetic in experiment code trivial and makes serialized timestamps
// portable; helper constructors below give readable literals at call sites.
#pragma once

#include <cstdint>

namespace coop::sim {

/// A point in simulated time, microseconds since simulation start.
using TimePoint = std::int64_t;

/// A span of simulated time in microseconds.  May be negative in
/// intermediate arithmetic (e.g. lateness = deadline - now).
using Duration = std::int64_t;

/// Largest representable instant — the "end of simulated time".  Used as a
/// saturation bound (schedule_after clamps here instead of wrapping) and as
/// the "no pending event" sentinel in the sharded kernel.
inline constexpr TimePoint kTimeMax = INT64_MAX;

/// now + delay without signed wraparound: a "never" sentinel delay (or any
/// sum past the epoch horizon) saturates to kTimeMax instead of wrapping
/// negative.  Negative delays clamp to zero.
constexpr TimePoint saturating_after(TimePoint now, Duration delay) noexcept {
  if (delay <= 0) return now;
  return delay > kTimeMax - now ? kTimeMax : now + delay;
}

/// Duration of @p us microseconds.
constexpr Duration usec(std::int64_t us) noexcept { return us; }

/// Duration of @p ms milliseconds.
constexpr Duration msec(std::int64_t ms) noexcept { return ms * 1000; }

/// Duration of @p s seconds.
constexpr Duration sec(std::int64_t s) noexcept { return s * 1'000'000; }

/// Duration of @p m minutes.
constexpr Duration minutes(std::int64_t m) noexcept { return m * 60'000'000; }

/// Convert a duration to (fractional) milliseconds, for reporting.
constexpr double to_ms(Duration d) noexcept {
  return static_cast<double>(d) / 1000.0;
}

/// Convert a duration to (fractional) seconds, for reporting.
constexpr double to_sec(Duration d) noexcept {
  return static_cast<double>(d) / 1'000'000.0;
}

}  // namespace coop::sim
