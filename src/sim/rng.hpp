// Deterministic random-number generation for reproducible experiments.
//
// Every stochastic choice in coop (network jitter, message loss, workload
// think times) draws from a seeded Rng owned by the Simulator.  Re-running
// an experiment with the same seed replays the identical event sequence,
// which is what makes the benchmark harness comparable across machines.
#pragma once

#include <cmath>
#include <cstdint>

namespace coop::sim {

/// xoshiro256** PRNG with SplitMix64 seeding.  Small, fast, and fully
/// deterministic across platforms (unlike std::normal_distribution, whose
/// algorithm is implementation-defined); coop implements its own variate
/// transforms below so results are bit-stable everywhere.
class Rng {
 public:
  /// Seeds the generator.  Identical seeds yield identical streams.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept {
    // SplitMix64 expansion of the seed into the 256-bit state.
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  /// Next raw 64-bit value.
  std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in the inclusive range [lo, hi].
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
    if (hi <= lo) return lo;
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(next() % span);
  }

  /// Bernoulli trial: true with probability p.
  bool bernoulli(double p) noexcept { return uniform() < p; }

  /// Exponential variate with the given mean (inter-arrival times).
  double exponential(double mean) noexcept {
    return -mean * std::log(1.0 - uniform());
  }

  /// Normal variate via Box–Muller (deterministic, platform-stable).
  double normal(double mean, double stddev) noexcept {
    if (has_spare_) {
      has_spare_ = false;
      return mean + stddev * spare_;
    }
    double u = 0.0;
    while (u == 0.0) u = uniform();
    const double v = uniform();
    const double r = std::sqrt(-2.0 * std::log(u));
    const double theta = 2.0 * 3.14159265358979323846 * v;
    spare_ = r * std::sin(theta);
    has_spare_ = true;
    return mean + stddev * r * std::cos(theta);
  }

  /// Zipf-like variate over {0..n-1} with skew s (hotspot access patterns).
  /// Uses inverse-power sampling by rejection-free approximation.
  std::size_t zipf(std::size_t n, double s) noexcept {
    if (n <= 1) return 0;
    // Approximate inverse CDF for the Zipf distribution; adequate for
    // workload hotspot modelling (we need skew, not exactness).
    const double u = uniform();
    const double x =
        std::pow(static_cast<double>(n), 1.0 - s) * u + (1.0 - u);
    const double rank = std::pow(x, 1.0 / (1.0 - s));
    auto idx = static_cast<std::size_t>(rank) - 1;
    return idx < n ? idx : n - 1;
  }

  /// Derives an independent child generator (per-node streams).
  Rng fork() noexcept { return Rng(next() ^ 0xa5a5a5a55a5a5a5aULL); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
  double spare_ = 0.0;
  bool has_spare_ = false;
};

}  // namespace coop::sim
