// The sharded parallel discrete-event kernel.
//
// The serial Simulator runs every simulated node on one event queue; that
// caps experiments near 10^4 participants.  This kernel partitions nodes
// into shards, each with an independent calendar-queue scheduler and its
// own virtual clock, and exchanges cross-shard messages deterministically:
//
//   * Conservative lookahead.  When every cross-shard link has a minimum
//     latency L > 0, an epoch lets each shard run freely through the
//     window [T0, T0 + L), where T0 is the global minimum pending
//     timestamp.  Any cross-shard message sent from inside the window
//     arrives at or after its send time + L >= T0 + L, i.e. beyond the
//     window — so shards cannot affect each other mid-epoch and may run
//     on parallel worker threads.
//   * Barrier-synchronized epochs.  With zero lookahead the engine falls
//     back to lockstep timestamps: every shard processes exactly the
//     events at T0, then messages are exchanged; same-timestamp message
//     chains iterate at T0 until quiescent, exactly as the serial
//     kernel's clamp-to-now scheduling behaves.
//
// At each barrier the engine merges every shard's outbox and inserts the
// messages into their destination queues sorted by (arrival, source node,
// source sequence) — a key independent of shard count, thread count and
// epoch geometry, which is what makes a run's outcome a pure function of
// its seed.  The serial Simulator is retained, unmodified, as the
// differential oracle: a scenario whose per-node state is insensitive to
// same-timestamp cross-node interleaving (the only freedom either kernel
// has) produces byte-identical artifacts on both (DESIGN.md §17,
// bench_e13_million_users).
#pragma once

#include <cassert>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "sim/calendar_queue.hpp"
#include "sim/id_set.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace coop::sim {

/// A cross-shard message: the only way activity crosses a shard boundary.
/// The payload is an opaque word the scenario's handler interprets; the
/// (src, seq) pair must be unique per message (per-source sequence
/// numbers), because it is the deterministic same-arrival tiebreak.
struct ShardMsg {
  TimePoint at = 0;             ///< arrival time at the destination
  std::uint32_t src = 0;        ///< source node
  std::uint32_t dst = 0;        ///< destination node
  std::uint16_t src_shard = 0;  ///< shard hosting src
  std::uint16_t dst_shard = 0;  ///< shard hosting dst
  std::uint32_t seq = 0;        ///< per-source message sequence number
  std::uint64_t payload = 0;    ///< scenario-defined word
};

/// Sharded-kernel tuning.  Everything is deterministic: shard count,
/// thread count and queue geometry may change wall-clock speed but never
/// a run's virtual-time outcome.
struct ShardedConfig {
  std::uint32_t shards = 1;
  /// Worker threads for the epoch fan-out (1 = run shards inline on the
  /// caller's thread).  More threads than shards is wasted.
  std::uint32_t threads = 1;
  /// Conservative lookahead: the minimum latency of any cross-shard
  /// link (net::Network::lookahead() derives this from the topology).
  /// Zero selects barrier-synchronized timestamp epochs.
  Duration lookahead = 0;
  std::uint64_t seed = 42;
  /// Calendar-queue geometry per shard (see sim/calendar_queue.hpp).
  Duration bucket_width = usec(256);
  std::size_t buckets = 64;
};

class ShardedEngine;

/// One shard: an independent event queue, clock, rng and callable-slot
/// table.  API mirrors the serial Simulator where semantics are shared
/// (clamp-to-now, saturating schedule_after, exact lazy cancellation);
/// the run methods are epoch-bounded and only the engine calls them.
class ShardSim {
 public:
  ShardSim(std::uint32_t shard, std::uint64_t seed, Duration bucket_width,
           std::size_t buckets)
      : queue_(bucket_width, buckets), shard_(shard), rng_(seed) {}

  ShardSim(const ShardSim&) = delete;
  ShardSim& operator=(const ShardSim&) = delete;

  [[nodiscard]] std::uint32_t shard() const noexcept { return shard_; }
  [[nodiscard]] TimePoint now() const noexcept { return now_; }
  [[nodiscard]] Rng& rng() noexcept { return rng_; }
  [[nodiscard]] std::size_t pending() const noexcept { return live_.size(); }
  [[nodiscard]] std::uint64_t events_processed() const noexcept {
    return processed_;
  }

  EventId schedule_at(TimePoint when, EventFn fn);
  EventId schedule_after(Duration delay, EventFn fn) {
    return schedule_at(saturating_after(now_, delay), std::move(fn));
  }
  bool cancel(EventId id) {
    return id != kInvalidEvent && live_.erase(id);
  }

  /// Timestamp of the earliest queued entry (kTimeMax when empty).
  /// Lazy-cancelled residue counts — a dead entry only costs a no-op
  /// epoch, never correctness.
  [[nodiscard]] TimePoint next_time() {
    CalEntry top;
    return queue_.peek(top) ? top.when : kTimeMax;
  }

  /// Fires every event with timestamp < @p horizon (exclusive), including
  /// ones its own events schedule inside the window.  Returns the count.
  std::size_t run_below(TimePoint horizon);

  /// Fires every event with timestamp <= @p t; by construction only
  /// events at exactly t remain live that low.  Returns the count.
  std::size_t run_at(TimePoint t);

  /// Clock catch-up at a barrier (never moves time backwards).
  void advance_to(TimePoint t) noexcept {
    if (t > now_) now_ = t;
  }

  /// Per-shard step observer: same contract as Simulator's StepHookFn
  /// plus the shard id.  With a multi-threaded engine this fires on
  /// worker threads — the installed hook must be thread-safe, which is
  /// why Platform only wires tracing here in single-threaded mode.
  using HookFn = void (*)(void* ctx, std::uint32_t shard, EventId id,
                          TimePoint when, std::size_t pending);

 private:
  friend class ShardedEngine;

  std::uint32_t acquire_slot(EventFn&& fn);
  void release_slot(std::uint32_t slot);
  void dispatch(const CalEntry& top);
  void maybe_compact_live();

  CalendarQueue queue_;
  std::vector<EventFn> slots_;
  std::vector<std::uint32_t> free_slots_;
  LiveBits live_;
  std::vector<ShardMsg> outbox_;  ///< cross-shard sends this epoch
  HookFn hook_fn_ = nullptr;
  void* hook_ctx_ = nullptr;
  StepTimerFn timer_fn_ = nullptr;
  void* timer_ctx_ = nullptr;
  TimePoint now_ = 0;
  std::uint64_t next_seq_ = 1;
  std::uint64_t compact_check_ = std::uint64_t{1} << 20;
  std::uint64_t processed_ = 0;
  std::uint32_t shard_;
  Rng rng_;
};

/// The sharded kernel: owns the shards, drives the epoch protocol and the
/// optional worker pool, and is the single seam for cross-shard traffic.
class ShardedEngine {
 public:
  /// Message handler: invoked (on the destination shard, at the message's
  /// arrival time) for every ShardMsg.  Raw fn-ptr + ctx, like the
  /// kernel's other hot seams.
  using MsgFn = void (*)(void* ctx, const ShardMsg& m);

  /// Barrier observer: fired once per epoch on the coordinating thread
  /// with the epoch window and the number of events it executed.
  using EpochHookFn = void (*)(void* ctx, TimePoint t0, TimePoint horizon,
                               std::size_t events);

  explicit ShardedEngine(const ShardedConfig& cfg);
  ~ShardedEngine();

  ShardedEngine(const ShardedEngine&) = delete;
  ShardedEngine& operator=(const ShardedEngine&) = delete;

  [[nodiscard]] std::uint32_t shards() const noexcept {
    return static_cast<std::uint32_t>(shards_.size());
  }
  [[nodiscard]] const ShardedConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] ShardSim& shard(std::uint32_t s) noexcept {
    return *shards_[s];
  }

  /// Global virtual time: the furthest point all shards have committed.
  [[nodiscard]] TimePoint now() const noexcept;
  /// Sum of live (non-cancelled) pending events across shards.
  [[nodiscard]] std::size_t pending() const noexcept;
  /// Sum of events executed across shards.
  [[nodiscard]] std::uint64_t events_processed() const noexcept;

  /// Shard-local scheduling (timers, workload ticks).  Callable from the
  /// driver while the engine is idle, or from an event running on that
  /// same shard.  cancel() has the same locality contract.
  EventId schedule_at(std::uint32_t shard, TimePoint when, EventFn fn) {
    return shards_[shard]->schedule_at(when, std::move(fn));
  }
  EventId schedule_after(std::uint32_t shard, Duration delay, EventFn fn) {
    return shards_[shard]->schedule_after(delay, std::move(fn));
  }
  bool cancel(std::uint32_t shard, EventId id) {
    return shards_[shard]->cancel(id);
  }

  void set_msg_handler(MsgFn fn, void* ctx = nullptr) noexcept {
    msg_fn_ = fn;
    msg_ctx_ = ctx;
  }
  void set_epoch_hook(EpochHookFn fn, void* ctx = nullptr) noexcept {
    epoch_fn_ = fn;
    epoch_ctx_ = ctx;
  }
  /// Per-shard step observers (see ShardSim::HookFn thread-safety note).
  void set_step_hook(ShardSim::HookFn fn, void* ctx = nullptr) noexcept;
  void set_step_timer(StepTimerFn fn, void* ctx = nullptr) noexcept;

  /// Sends @p m.  Same-shard messages become ordinary events at once;
  /// cross-shard messages park in the source shard's outbox until the
  /// next barrier.  Must be called from m.src_shard's context (one of
  /// its events) or from the driver while the engine is idle.
  ///
  /// Lookahead contract: with lookahead L > 0 a cross-shard message must
  /// satisfy  at >= source now + L.  Violations are counted (and the
  /// message delivered no earlier than its destination's clock), but
  /// they void the determinism-vs-topology guarantee — fix the
  /// topology's declared lookahead instead.
  void send(const ShardMsg& m);

  /// Runs all events with timestamp <= @p t, then advances every clock
  /// to exactly t.  Stopping "mid-epoch" is safe: the window is clipped
  /// at t, and a later run_until continues bit-identically to a run
  /// that never stopped.  Returns events executed.
  std::size_t run_until(TimePoint t);

  /// Runs until no events (and no parked messages) remain.  The event
  /// cap is enforced at epoch granularity — a runaway-feedback guard,
  /// not an exact budget.
  std::size_t run(std::size_t max_events = Simulator::kNoEventLimit);

  // --- accounting ----------------------------------------------------------

  [[nodiscard]] std::uint64_t epochs() const noexcept { return epochs_; }
  [[nodiscard]] std::uint64_t cross_shard_messages() const noexcept {
    return cross_msgs_;
  }
  /// Cross-shard sends that broke the lookahead contract (see send()).
  [[nodiscard]] std::uint64_t lookahead_violations() const noexcept {
    return lookahead_violations_;
  }

 private:
  enum class Phase { kBelow, kAt };

  /// One epoch body: every shard runs its window, possibly on the worker
  /// pool.  Returns events executed.
  std::size_t run_phase(Phase phase, TimePoint bound);
  void run_shard(std::uint32_t s, Phase phase, TimePoint bound);
  /// Merges all outboxes into destination queues, deterministically.
  void flush_outboxes();
  void start_workers();
  void worker_loop(std::uint32_t worker);

  ShardedConfig cfg_;
  std::vector<std::unique_ptr<ShardSim>> shards_;
  std::vector<ShardMsg> scratch_;          ///< barrier merge staging
  std::vector<std::size_t> phase_counts_;  ///< per-shard events this phase
  MsgFn msg_fn_ = nullptr;
  void* msg_ctx_ = nullptr;
  EpochHookFn epoch_fn_ = nullptr;
  void* epoch_ctx_ = nullptr;
  std::uint64_t epochs_ = 0;
  std::uint64_t cross_msgs_ = 0;
  std::uint64_t lookahead_violations_ = 0;

  // Worker pool (lazily started; idle when cfg_.threads <= 1).  The
  // coordinating thread takes worker slot 0's shard set itself.
  std::vector<std::thread> workers_;
  std::mutex pool_mu_;
  std::condition_variable pool_cv_;
  std::uint64_t pool_gen_ = 0;
  std::uint32_t pool_remaining_ = 0;
  Phase pool_phase_ = Phase::kBelow;
  TimePoint pool_bound_ = 0;
  bool pool_stop_ = false;
};

}  // namespace coop::sim
