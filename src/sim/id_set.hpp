// sim::LiveBits — windowed liveness bitmap for event ids.
//
// The kernel's lazy-cancellation scheme needs one membership write per
// event on each side: mark-live at schedule time, test-and-clear at fire
// (or cancel) time.  A hash set answers that in O(1) but touches a random
// cache line per operation — at millions of events per second the two
// misses per event were the kernel's largest remaining cost.
//
// Event ids are dense, monotonically increasing sequence numbers, so
// liveness fits a bitmap indexed by `seq - base`: the schedule-side write
// always lands on the current tail word, and the fire-side clear lands on
// a recently written word (events mostly fire in roughly the order they
// were scheduled) — both L1-hot in steady state.
//
// The window is kept bounded by compact(): the simulator periodically
// scans its heap for the minimum pending sequence number and drops the
// whole words below it, so memory is O(spread between the oldest pending
// event and the newest), not O(events ever scheduled).
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace coop::sim {

class LiveBits {
 public:
  LiveBits() { words_.reserve(kInitialWords); }

  /// Marks @p seq live.  Idempotent: re-inserting a live id is a no-op
  /// rather than a silent double-increment of size() — with per-shard
  /// sequence windows an id can legitimately be offered twice, and the
  /// old behaviour skewed pending() forever.  Returns true if the id was
  /// newly marked.
  bool insert(std::uint64_t seq) {
    assert(seq >= base_);
    const std::uint64_t idx = seq - base_;
    const std::size_t w = static_cast<std::size_t>(idx >> 6);
    if (w >= words_.size()) words_.resize(w + 1, 0);
    const std::uint64_t bit = std::uint64_t{1} << (idx & 63);
    if ((words_[w] & bit) != 0) return false;  // already live
    words_[w] |= bit;
    ++size_;
    return true;
  }

  [[nodiscard]] bool contains(std::uint64_t seq) const {
    if (seq < base_) return false;
    const std::uint64_t idx = seq - base_;
    const std::size_t w = static_cast<std::size_t>(idx >> 6);
    if (w >= words_.size()) return false;
    return (words_[w] >> (idx & 63)) & 1;
  }

  /// Clears @p seq; returns false if it was not live (already fired,
  /// cancelled, or compacted away — all non-live by construction).
  bool erase(std::uint64_t seq) {
    if (seq < base_) return false;
    const std::uint64_t idx = seq - base_;
    const std::size_t w = static_cast<std::size_t>(idx >> 6);
    if (w >= words_.size()) return false;
    const std::uint64_t bit = std::uint64_t{1} << (idx & 63);
    if ((words_[w] & bit) == 0) return false;
    words_[w] &= ~bit;
    --size_;
    return true;
  }

  /// Advances the window base to (at most) @p min_live, dropping the
  /// whole words below it.  Every sequence number still live — and every
  /// future erase/contains argument — must be >= @p min_live.
  void compact(std::uint64_t min_live) {
    if (min_live <= base_) return;
    const std::size_t drop =
        static_cast<std::size_t>((min_live - base_) >> 6);
    if (drop == 0) return;
    words_.erase(words_.begin(),
                 words_.begin() + static_cast<std::ptrdiff_t>(drop));
    base_ += static_cast<std::uint64_t>(drop) << 6;  // word-aligned
  }

  /// First sequence number the window can still represent.
  [[nodiscard]] std::uint64_t base() const noexcept { return base_; }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

 private:
  // Reserved up front (8 KiB = 64 Ki ids) so the tail-word resize stays
  // allocation-free through warm-up; after that, compaction recycles the
  // vector's capacity, so steady state never reallocates either.
  static constexpr std::size_t kInitialWords = 1024;

  std::vector<std::uint64_t> words_;
  std::uint64_t base_ = 1;  // ids start at 1
  std::size_t size_ = 0;
};

}  // namespace coop::sim
