#include "sim/shard.hpp"

#include <algorithm>
#include <chrono>

namespace coop::sim {

// --- ShardSim ---------------------------------------------------------------

EventId ShardSim::schedule_at(TimePoint when, EventFn fn) {
  if (when < now_) when = now_;
  const std::uint64_t seq = next_seq_++;
  queue_.push(CalEntry{when, seq, acquire_slot(std::move(fn))});
  live_.insert(seq);
  if (next_seq_ >= compact_check_) maybe_compact_live();
  return seq;
}

void ShardSim::maybe_compact_live() {
  // Same windowed-liveness compaction as the serial kernel: the minimum
  // queued seq bounds every id the shard will still test.
  compact_check_ = next_seq_ + (std::uint64_t{1} << 20);
  std::uint64_t min_seq = next_seq_;
  queue_.for_each([&min_seq](const CalEntry& e) {
    min_seq = std::min(min_seq, e.seq);
  });
  live_.compact(min_seq);
}

std::uint32_t ShardSim::acquire_slot(EventFn&& fn) {
  if (free_slots_.empty()) {
    slots_.push_back(std::move(fn));
    return static_cast<std::uint32_t>(slots_.size() - 1);
  }
  const std::uint32_t slot = free_slots_.back();
  free_slots_.pop_back();
  slots_[slot] = std::move(fn);
  return slot;
}

void ShardSim::release_slot(std::uint32_t slot) {
  slots_[slot].reset();
  free_slots_.push_back(slot);
}

void ShardSim::dispatch(const CalEntry& top) {
  now_ = top.when;
  ++processed_;
  if (hook_fn_ != nullptr)
    hook_fn_(hook_ctx_, shard_, top.seq, top.when, live_.size());
  // Move the callable out and free the slot before invoking: the callback
  // may schedule new events, reusing this very slot.
  EventFn fn = std::move(slots_[top.slot]);
  release_slot(top.slot);
  if (timer_fn_ != nullptr) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    timer_fn_(timer_ctx_,
              static_cast<std::uint64_t>(
                  std::chrono::duration_cast<std::chrono::nanoseconds>(
                      std::chrono::steady_clock::now() - t0)
                      .count()));
  } else {
    fn();
  }
}

std::size_t ShardSim::run_below(TimePoint horizon) {
  std::size_t n = 0;
  CalEntry top;
  while (queue_.peek(top) && top.when < horizon) {
    queue_.pop();
    if (!live_.erase(top.seq)) {  // lazily cancelled
      release_slot(top.slot);
      continue;
    }
    dispatch(top);
    ++n;
  }
  return n;
}

std::size_t ShardSim::run_at(TimePoint t) {
  std::size_t n = 0;
  CalEntry top;
  // <= rather than == flushes cancelled residue below t; live entries
  // below t cannot exist (earlier epochs drained them).
  while (queue_.peek(top) && top.when <= t) {
    queue_.pop();
    if (!live_.erase(top.seq)) {
      release_slot(top.slot);
      continue;
    }
    assert(top.when == t && "live event below the barrier timestamp");
    dispatch(top);
    ++n;
  }
  return n;
}

// --- ShardedEngine ----------------------------------------------------------

ShardedEngine::ShardedEngine(const ShardedConfig& cfg) : cfg_(cfg) {
  if (cfg_.shards == 0) cfg_.shards = 1;
  if (cfg_.threads == 0) cfg_.threads = 1;
  if (cfg_.lookahead < 0) cfg_.lookahead = 0;
  // Per-shard rng streams forked off the master seed, in shard order —
  // deterministic and independent of shard count changes elsewhere.
  Rng master(cfg_.seed);
  shards_.reserve(cfg_.shards);
  for (std::uint32_t s = 0; s < cfg_.shards; ++s) {
    shards_.push_back(std::make_unique<ShardSim>(
        s, master.next() ^ 0xa5a5a5a55a5a5a5aULL, cfg_.bucket_width,
        cfg_.buckets));
  }
  phase_counts_.assign(cfg_.shards, 0);
}

ShardedEngine::~ShardedEngine() {
  if (!workers_.empty()) {
    {
      std::lock_guard<std::mutex> lk(pool_mu_);
      pool_stop_ = true;
    }
    pool_cv_.notify_all();
    for (std::thread& t : workers_) t.join();
  }
}

TimePoint ShardedEngine::now() const noexcept {
  TimePoint t = 0;
  for (const auto& s : shards_) t = std::max(t, s->now());
  return t;
}

std::size_t ShardedEngine::pending() const noexcept {
  std::size_t n = 0;
  for (const auto& s : shards_) n += s->pending();
  for (const auto& s : shards_) n += s->outbox_.size();
  return n;
}

std::uint64_t ShardedEngine::events_processed() const noexcept {
  std::uint64_t n = 0;
  for (const auto& s : shards_) n += s->events_processed();
  return n;
}

void ShardedEngine::set_step_hook(ShardSim::HookFn fn, void* ctx) noexcept {
  for (auto& s : shards_) {
    s->hook_fn_ = fn;
    s->hook_ctx_ = ctx;
  }
}

void ShardedEngine::set_step_timer(StepTimerFn fn, void* ctx) noexcept {
  for (auto& s : shards_) {
    s->timer_fn_ = fn;
    s->timer_ctx_ = ctx;
  }
}

void ShardedEngine::send(const ShardMsg& m) {
  assert(m.src_shard < shards_.size() && m.dst_shard < shards_.size());
  ShardSim& src = *shards_[m.src_shard];
  if (m.dst_shard == m.src_shard) {
    // Same shard: an ordinary event, exactly as the serial kernel would
    // schedule a delivery (clamped to the shard's clock).
    ShardedEngine* eng = this;
    const ShardMsg msg = m;
    src.schedule_at(m.at, [eng, msg] {
      if (eng->msg_fn_ != nullptr) eng->msg_fn_(eng->msg_ctx_, msg);
    });
    return;
  }
  const TimePoint floor = saturating_after(src.now(), cfg_.lookahead);
  if (m.at < floor) ++lookahead_violations_;
  src.outbox_.push_back(m);
}

void ShardedEngine::flush_outboxes() {
  scratch_.clear();
  for (auto& s : shards_) {
    if (s->outbox_.empty()) continue;
    scratch_.insert(scratch_.end(), s->outbox_.begin(), s->outbox_.end());
    s->outbox_.clear();
  }
  if (scratch_.empty()) return;
  cross_msgs_ += scratch_.size();
  // (arrival, src, seq) is unique per message, so this is a strict total
  // order: insertion sequence — and with it every FIFO tiebreak in the
  // destination queue — is independent of shard/thread geometry.
  std::sort(scratch_.begin(), scratch_.end(),
            [](const ShardMsg& a, const ShardMsg& b) {
              if (a.dst_shard != b.dst_shard) return a.dst_shard < b.dst_shard;
              if (a.at != b.at) return a.at < b.at;
              if (a.src != b.src) return a.src < b.src;
              return a.seq < b.seq;
            });
  ShardedEngine* eng = this;
  for (const ShardMsg& m : scratch_) {
    shards_[m.dst_shard]->schedule_at(m.at, [eng, m] {
      if (eng->msg_fn_ != nullptr) eng->msg_fn_(eng->msg_ctx_, m);
    });
  }
}

void ShardedEngine::run_shard(std::uint32_t s, Phase phase, TimePoint bound) {
  phase_counts_[s] = phase == Phase::kBelow ? shards_[s]->run_below(bound)
                                            : shards_[s]->run_at(bound);
}

std::size_t ShardedEngine::run_phase(Phase phase, TimePoint bound) {
  const auto n = static_cast<std::uint32_t>(shards_.size());
  const std::uint32_t nw = std::min(cfg_.threads, n);
  if (nw <= 1) {
    for (std::uint32_t s = 0; s < n; ++s) run_shard(s, phase, bound);
  } else {
    start_workers();
    {
      std::lock_guard<std::mutex> lk(pool_mu_);
      pool_phase_ = phase;
      pool_bound_ = bound;
      pool_remaining_ = nw - 1;
      ++pool_gen_;
    }
    pool_cv_.notify_all();
    // The coordinator works worker slot 0's share itself.
    for (std::uint32_t s = 0; s < n; s += nw) run_shard(s, phase, bound);
    std::unique_lock<std::mutex> lk(pool_mu_);
    pool_cv_.wait(lk, [this] { return pool_remaining_ == 0; });
  }
  std::size_t total = 0;
  for (std::uint32_t s = 0; s < n; ++s) total += phase_counts_[s];
  return total;
}

void ShardedEngine::start_workers() {
  const auto n = static_cast<std::uint32_t>(shards_.size());
  const std::uint32_t nw = std::min(cfg_.threads, n);
  if (nw <= 1 || !workers_.empty()) return;
  workers_.reserve(nw - 1);
  for (std::uint32_t w = 1; w < nw; ++w)
    workers_.emplace_back([this, w] { worker_loop(w); });
}

void ShardedEngine::worker_loop(std::uint32_t worker) {
  const auto n = static_cast<std::uint32_t>(shards_.size());
  const std::uint32_t nw = std::min(cfg_.threads, n);
  std::uint64_t seen_gen = 0;
  for (;;) {
    Phase phase;
    TimePoint bound;
    {
      std::unique_lock<std::mutex> lk(pool_mu_);
      pool_cv_.wait(lk, [this, seen_gen] {
        return pool_stop_ || pool_gen_ != seen_gen;
      });
      if (pool_stop_) return;
      seen_gen = pool_gen_;
      phase = pool_phase_;
      bound = pool_bound_;
    }
    for (std::uint32_t s = worker; s < n; s += nw)
      run_shard(s, phase, bound);
    {
      std::lock_guard<std::mutex> lk(pool_mu_);
      --pool_remaining_;
    }
    pool_cv_.notify_all();
  }
}

std::size_t ShardedEngine::run_until(TimePoint t) {
  std::size_t total = 0;
  for (;;) {
    flush_outboxes();  // also admits driver sends parked pre-run
    TimePoint t0 = kTimeMax;
    for (auto& s : shards_) t0 = std::min(t0, s->next_time());
    if (t0 > t) break;
    std::size_t n;
    TimePoint horizon;
    if (cfg_.lookahead > 0) {
      // Window [t0, t0 + L), clipped so nothing past t fires — stopping
      // mid-epoch must leave the queues exactly as a straight run would.
      horizon = saturating_after(t0, cfg_.lookahead);
      if (horizon > t) horizon = saturating_after(t, 1);
      n = run_phase(Phase::kBelow, horizon);
    } else {
      horizon = t0;
      n = run_phase(Phase::kAt, t0);
    }
    total += n;
    ++epochs_;
    if (epoch_fn_ != nullptr) epoch_fn_(epoch_ctx_, t0, horizon, n);
  }
  for (auto& s : shards_) s->advance_to(t);
  return total;
}

std::size_t ShardedEngine::run(std::size_t max_events) {
  std::size_t total = 0;
  for (;;) {
    flush_outboxes();
    TimePoint t0 = kTimeMax;
    for (auto& s : shards_) t0 = std::min(t0, s->next_time());
    if (t0 == kTimeMax) break;
    std::size_t n;
    TimePoint horizon;
    if (cfg_.lookahead > 0) {
      horizon = saturating_after(t0, cfg_.lookahead);
      n = run_phase(Phase::kBelow, horizon);
    } else {
      horizon = t0;
      n = run_phase(Phase::kAt, t0);
    }
    total += n;
    ++epochs_;
    if (epoch_fn_ != nullptr) epoch_fn_(epoch_ctx_, t0, horizon, n);
    if (total >= max_events) break;  // epoch-granular runaway guard
  }
  return total;
}

}  // namespace coop::sim
