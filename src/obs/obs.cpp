#include "obs/obs.hpp"

#include <fstream>

namespace coop::obs {

namespace {

Obs* g_default_obs = nullptr;

}  // namespace

Obs* default_obs() noexcept { return g_default_obs; }

ScopedDefaultObs::ScopedDefaultObs(Obs* obs) noexcept : prev_(g_default_obs) {
  g_default_obs = obs;
}

ScopedDefaultObs::~ScopedDefaultObs() { g_default_obs = prev_; }

bool write_bench_artifacts(const Obs& obs, const std::string& tag,
                           const std::string& dir) {
  const std::string base = dir + "/BENCH_" + tag;
  {
    std::ofstream out(base + ".json");
    if (!out) return false;
    out << obs.metrics.to_json() << '\n';
    if (!out) return false;
  }
  {
    std::ofstream out(base + ".trace.json");
    if (!out) return false;
    obs.tracer.export_chrome(out);
    if (!out) return false;
  }
  return true;
}

}  // namespace coop::obs
