#include "obs/obs.hpp"

#include <fstream>

#include "obs/critical_path.hpp"

namespace coop::obs {

namespace {

Obs* g_default_obs = nullptr;

void put_json_string(std::ostream& out, const std::string& s) {
  out << '"';
  for (const char c : s) {
    if (c == '"' || c == '\\') out << '\\';
    out << c;
  }
  out << '"';
}

void put_meta(std::ostream& out, const Obs& obs) {
  // Sim-time extent of the retained trace window; the ring may have
  // evicted earlier records (see trace_dropped).
  sim::TimePoint begin = 0;
  sim::TimePoint end = 0;
  bool any = false;
  for (const TraceEvent& e : obs.tracer.snapshot()) {
    if (!any || e.ts < begin) begin = e.ts;
    if (!any || e.ts + e.dur > end) end = e.ts + e.dur;
    any = true;
  }
  const RunMeta& m = obs.meta;
  out << "{\"platforms\":" << m.platforms
      << ",\"first_seed\":" << m.first_seed
      << ",\"last_seed\":" << m.last_seed
      << ",\"sim_span_us\":" << (any ? end - begin : 0)
      << ",\"trace_recorded\":" << obs.tracer.recorded()
      << ",\"trace_retained\":" << obs.tracer.size()
      << ",\"trace_dropped\":" << obs.tracer.dropped();
  std::uint64_t sampled = 0;
  std::uint64_t unsampled = 0;
  for (std::size_t c = 0; c < kCategoryCount; ++c) {
    sampled += obs.tracer.sampled_of(static_cast<Category>(c));
    unsampled += obs.tracer.unsampled_of(static_cast<Category>(c));
  }
  out << ",\"trace_sampled\":" << sampled
      << ",\"trace_unsampled\":" << unsampled
      << ",\"cap_clamps\":" << Tracer::cap_clamps()
      << ",\"knobs\":{";
  bool first = true;
  for (const auto& [key, value] : m.knobs) {
    if (!first) out << ',';
    first = false;
    put_json_string(out, key);
    out << ':';
    put_json_string(out, value);
  }
  // wall_ms sits alone on the final line so same-seed determinism diffs
  // can strip it (`grep -v wall_ms`) — it is the one field that varies.
  out << "},\n\"wall_ms\":" << m.wall_ms << "}";
}

}  // namespace

Obs* default_obs() noexcept { return g_default_obs; }

ScopedDefaultObs::ScopedDefaultObs(Obs* obs) noexcept : prev_(g_default_obs) {
  g_default_obs = obs;
}

ScopedDefaultObs::~ScopedDefaultObs() { g_default_obs = prev_; }

bool write_bench_artifacts(Obs& obs, const std::string& tag,
                           const std::string& dir) {
  const std::string base = dir + "/BENCH_" + tag;
  obs.series.finish();  // seal the tail window (idempotent)
  {
    std::ofstream out(base + ".json");
    if (!out) return false;
    out << "{\n\"meta\":";
    put_meta(out, obs);
    out << ",\n\"latency_breakdown\":";
    CriticalPath(obs.tracer).write_json(out);
    out << ",\n\"timeseries\":";
    obs.series.export_json(out);
    out << ",\n\"metrics\":" << obs.metrics.to_json() << "\n}\n";
    if (!out) return false;
  }
  if (obs.profiler.enabled()) {
    // Wall-clock profile: best-effort, never fails the deterministic
    // artifacts.
    std::ofstream top(base + ".prof.txt");
    if (top) obs.profiler.write_top(top);
    std::ofstream folded(base + ".folded");
    if (folded) obs.profiler.write_collapsed(folded);
  }
  {
    std::ofstream out(base + ".trace.json");
    if (!out) return false;
    obs.tracer.export_chrome(out);
    if (!out) return false;
  }
  return true;
}

bool write_trace_json(const Tracer& tracer, const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  tracer.export_chrome(out);
  return static_cast<bool>(out);
}

}  // namespace coop::obs
