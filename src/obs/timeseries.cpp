#include "obs/timeseries.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ostream>

namespace coop::obs {

namespace {

/// Same stable JSON number formatting as the metrics exporter: integral
/// values print without a fractional part, the rest as %.6g.
void put_number(std::ostream& out, double v) {
  if (std::isnan(v) || std::isinf(v)) {
    out << "null";
    return;
  }
  if (v == std::floor(v) && std::abs(v) < 9.007199254740992e15) {
    out << static_cast<long long>(v);
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  out << buf;
}

/// Nearest-rank percentile over a sorted sample vector.
double pct(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const auto rank = static_cast<std::size_t>(
      q * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(rank, sorted.size() - 1)];
}

}  // namespace

Timeseries::Timeseries() {
  if (const char* env = std::getenv("COOP_TS_WINDOW_US")) {
    char* end = nullptr;
    const long long w = std::strtoll(env, &end, 10);
    if (end != env && *end == '\0' && w > 0)
      window_us_ = static_cast<sim::Duration>(w);
  }
}

Timeseries::SeriesId Timeseries::series(const char* name) noexcept {
  const SeriesId existing = find(name);
  if (existing != kInvalidSeries) return existing;
  if (n_series_ >= kMaxSeries) {
    ++dropped_series_;
    return kInvalidSeries;
  }
  names_[n_series_] = name;
  return static_cast<SeriesId>(n_series_++);
}

Timeseries::SeriesId Timeseries::find(const char* name) const noexcept {
  for (std::size_t i = 0; i < n_series_; ++i) {
    if (names_[i] == name || std::strcmp(names_[i], name) == 0)
      return static_cast<SeriesId>(i);
  }
  return kInvalidSeries;
}

const char* Timeseries::name_of(SeriesId s) const noexcept {
  return s < n_series_ ? names_[s] : "?";
}

void Timeseries::advance(sim::TimePoint ts) {
  const std::uint64_t w =
      ts <= 0 ? 0
              : static_cast<std::uint64_t>(ts) /
                    static_cast<std::uint64_t>(window_us_);
  if (!started_) {
    started_ = true;
    cur_w_ = w;
    return;
  }
  // Late or in-window points fold into the open window: with several
  // Platforms aggregating into one ambient Obs, each restart rewinds
  // virtual time to 0 — folding keeps that case deterministic.
  if (w <= cur_w_) return;
  const std::uint64_t target = w;
  seal_window();  // the open (dirty) window
  // Empty windows in the gap seal normally up to the cap — the SLO
  // watchdog must see idle windows (a rate floor breaches on silence) —
  // then the remainder is skipped and counted.
  std::uint64_t sealed = 0;
  while (cur_w_ < target && sealed < kMaxGapSeal) {
    seal_window();
    ++sealed;
  }
  if (cur_w_ < target) {
    gap_skipped_ += target - cur_w_;
    cur_w_ = target;
  }
}

void Timeseries::seal_window() {
  Window w;
  w.t0 = static_cast<sim::TimePoint>(
      cur_w_ * static_cast<std::uint64_t>(window_us_));
  w.first = static_cast<std::uint32_t>(cell_arena_.size());
  w.n_cells = static_cast<std::uint16_t>(n_series_);
  // Chunked growth: one reservation covers the next kChunkWindows seals,
  // so a window edge crossed on the steady-state event path does not
  // touch the allocator (the zero-alloc hot-path test's warm-up absorbs
  // the chunk).
  if (windows_.size() == windows_.capacity())
    windows_.reserve(windows_.capacity() + kChunkWindows);
  if (cell_arena_.size() + n_series_ > cell_arena_.capacity()) {
    cell_arena_.reserve(cell_arena_.capacity() +
                        kChunkWindows * std::max<std::size_t>(n_series_, 1));
  }
  cell_arena_.resize(cell_arena_.size() + n_series_);
  Cell* cells = cell_arena_.data() + w.first;
  for (std::size_t i = 0; i < n_series_; ++i) {
    Active& a = active_[i];
    Cell& c = cells[i];
    c.count = a.count;
    c.sum = a.sum;
    c.min = a.min;
    c.max = a.max;
    c.has_values = a.any_value;
    if (a.any_value && !a.samples.empty()) {
      std::sort(a.samples.begin(), a.samples.end());
      c.p50 = pct(a.samples, 0.50);
      c.p95 = pct(a.samples, 0.95);
      c.p99 = pct(a.samples, 0.99);
    }
    a.reset();
  }
  dirty_ = false;
  ++cur_w_;
  if (observer_ != nullptr) observer_(observer_ctx_, *this, w);
  if (windows_.size() < kMaxWindows) {
    windows_.push_back(w);
  } else {
    cell_arena_.resize(w.first);  // the cells drop with the window
    ++dropped_windows_;
  }
}

void Timeseries::count(SeriesId s, sim::TimePoint ts, std::uint64_t n) {
  if (s >= n_series_) return;
  advance(ts);
  active_[s].count += n;
  dirty_ = true;
}

void Timeseries::observe(SeriesId s, sim::TimePoint ts, double v) {
  if (s >= n_series_) return;
  advance(ts);
  Active& a = active_[s];
  if (!a.any_value || v < a.min) a.min = v;
  if (!a.any_value || v > a.max) a.max = v;
  a.any_value = true;
  ++a.count;
  a.sum += v;
  if (a.tick++ % a.stride == 0) {
    if (a.samples.size() == kMaxSamples) {
      // Stride decimation: keep every other retained sample and double
      // the stride — bounded memory, deterministic percentile inputs.
      for (std::size_t i = 0; i * 2 < kMaxSamples; ++i)
        a.samples[i] = a.samples[i * 2];
      a.samples.resize(kMaxSamples / 2);
      a.stride *= 2;
    }
    a.samples.push_back(v);
  }
  dirty_ = true;
}

void Timeseries::finish() {
  if (started_ && dirty_) seal_window();
}

void Timeseries::export_json(std::ostream& out) const {
  out << "{\"window_us\":" << window_us_ << ",\"sealed\":" << windows_.size()
      << ",\"gap_skipped\":" << gap_skipped_
      << ",\"dropped_windows\":" << dropped_windows_
      << ",\"dropped_series\":" << dropped_series_ << ",\"series\":{";
  bool first_series = true;
  for (std::size_t s = 0; s < n_series_; ++s) {
    if (!first_series) out << ',';
    first_series = false;
    out << "\n\"" << names_[s] << "\":[";
    bool first_w = true;
    for (const Window& w : windows_) {
      if (s >= w.n_cells) continue;
      const Cell& c = cell_arena_[w.first + s];
      if (c.count == 0) continue;  // sparse: idle windows are implicit
      if (!first_w) out << ',';
      first_w = false;
      out << "\n{\"t\":" << w.t0 << ",\"n\":" << c.count << ",\"rate\":";
      put_number(out, static_cast<double>(c.count) * 1e6 /
                          static_cast<double>(window_us_));
      if (c.has_values) {
        out << ",\"mean\":";
        put_number(out, c.count > 0 ? c.sum / static_cast<double>(c.count)
                                    : 0.0);
        out << ",\"min\":";
        put_number(out, c.min);
        out << ",\"max\":";
        put_number(out, c.max);
        out << ",\"p50\":";
        put_number(out, c.p50);
        out << ",\"p95\":";
        put_number(out, c.p95);
        out << ",\"p99\":";
        put_number(out, c.p99);
      }
      out << '}';
    }
    out << "\n]";
  }
  out << "}}";
}

}  // namespace coop::obs
