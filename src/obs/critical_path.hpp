// Offline critical-path analysis over a tracer snapshot.
//
// Causal records (those carrying a CausalContext) are grouped by trace id
// and each trace's time is attributed to one of four buckets:
//
//   queue   — time spent behind a link serializer (the "queue" attribute
//             of net deliver spans),
//   link    — serialization + propagation (deliver duration minus queue),
//   service — server-side handling (rpc "handle" spans),
//   retry   — timeouts that had to lapse before a retransmission or RPC
//             retry could fire ("waited" attributes).
//
// The result answers the operator question the paper's QoS management
// story needs answered: *where* did an end-to-end latency go — congestion
// (queue), distance (link), servers (service), or loss recovery (retry)?
// Percentile distributions across traces come from util::Summary; the
// JSON emitter feeds the latency-breakdown section of BENCH_<tag>.json.
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <vector>

#include "obs/trace.hpp"
#include "util/stats.hpp"

namespace coop::obs {

/// Where a slice of a trace's time was spent.
enum class PathBucket : std::uint8_t {
  kQueue = 0,
  kLink,
  kService,
  kRetry,
};

inline constexpr std::size_t kPathBucketCount = 4;

/// Stable short name used in exports ("queue", "link", ...).
[[nodiscard]] const char* path_bucket_name(PathBucket b) noexcept;

/// One trace's accounting.
struct TraceBreakdown {
  std::uint64_t trace_id = 0;
  sim::TimePoint begin = 0;  ///< earliest record timestamp
  sim::TimePoint end = 0;    ///< latest record end (ts + dur)
  std::size_t records = 0;   ///< causal records grouped into this trace
  std::array<sim::Duration, kPathBucketCount> buckets{};

  /// First record to last record end — the trace's observed extent.
  [[nodiscard]] sim::Duration span() const noexcept { return end - begin; }
  /// Time attributed to any bucket (<= span for sequential protocols;
  /// may exceed it when hops overlap, e.g. multicast fan-out).
  [[nodiscard]] sim::Duration accounted() const noexcept {
    sim::Duration total = 0;
    for (const sim::Duration d : buckets) total += d;
    return total;
  }
};

/// Analyzes a snapshot once at construction; accessors are cheap.
class CriticalPath {
 public:
  explicit CriticalPath(const Tracer& tracer);
  explicit CriticalPath(const std::vector<TraceEvent>& events);

  /// Per-trace breakdowns, in order of each trace's first appearance in
  /// the snapshot (i.e. roughly by start time).
  [[nodiscard]] const std::vector<TraceBreakdown>& traces() const noexcept {
    return traces_;
  }

  /// Distribution of per-trace bucket totals (one sample per trace,
  /// including zeroes, so percentiles reflect the whole population).
  [[nodiscard]] const util::Summary& bucket_us(PathBucket b) const noexcept {
    return bucket_us_[static_cast<std::size_t>(b)];
  }

  /// Distribution of per-trace spans (first record to last record end).
  [[nodiscard]] const util::Summary& end_to_end_us() const noexcept {
    return end_to_end_us_;
  }

  /// Sum of a bucket across every trace.
  [[nodiscard]] sim::Duration total_us(PathBucket b) const noexcept {
    return totals_[static_cast<std::size_t>(b)];
  }

  /// The latency-breakdown JSON object: {"traces":N,"end_to_end_us":{...},
  /// "buckets":{"queue":{...},...}}.  No trailing newline.
  void write_json(std::ostream& out) const;

 private:
  void analyze(const std::vector<TraceEvent>& events);

  std::vector<TraceBreakdown> traces_;
  std::array<util::Summary, kPathBucketCount> bucket_us_;
  util::Summary end_to_end_us_;
  std::array<sim::Duration, kPathBucketCount> totals_{};
};

}  // namespace coop::obs
