#include "obs/profiler.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ostream>

namespace coop::obs {

namespace {

/// FNV-1a over a site-id sequence — the path-table hash.
std::uint64_t path_hash(const Profiler::SiteId* sites,
                        std::size_t depth) noexcept {
  std::uint64_t h = 1469598103934665603ULL;
  for (std::size_t i = 0; i < depth; ++i) {
    h ^= sites[i];
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace

bool Profiler::env_enabled() noexcept {
  const char* env = std::getenv("COOP_PROFILE");
  return env != nullptr && !(env[0] == '0' && env[1] == '\0');
}

Profiler::SiteId Profiler::site(const char* name, Category cat) noexcept {
  for (std::size_t i = 0; i < n_sites_; ++i) {
    // Same literal or same spelling: either way it is the same site.
    if (sites_[i].name == name || std::strcmp(sites_[i].name, name) == 0)
      return static_cast<SiteId>(i);
  }
  if (n_sites_ >= kMaxSites) {
    ++dropped_sites_;
    return kInvalidSite;
  }
  sites_[n_sites_].name = name;
  sites_[n_sites_].cat = cat;
  return static_cast<SiteId>(n_sites_++);
}

std::uint32_t Profiler::intern_path(SiteId s) noexcept {
  std::array<SiteId, kMaxDepth> key{};
  for (std::size_t i = 0; i < depth_; ++i) key[i] = stack_[i].site;
  key[depth_] = s;
  const std::size_t depth = depth_ + 1;
  std::size_t slot = path_hash(key.data(), depth) & (kMaxPaths - 1);
  // Short bounded probe: a full table folds new paths into the overflow
  // counter instead of evicting or allocating.
  for (std::size_t probe = 0; probe < 8; ++probe) {
    Path& p = paths_[slot];
    if (!p.used) {
      p.used = true;
      p.depth = static_cast<std::uint8_t>(depth);
      p.sites = key;
      return static_cast<std::uint32_t>(slot);
    }
    if (p.depth == depth &&
        std::memcmp(p.sites.data(), key.data(), depth * sizeof(SiteId)) == 0)
      return static_cast<std::uint32_t>(slot);
    slot = (slot + 1) & (kMaxPaths - 1);
  }
  ++dropped_paths_;
  return static_cast<std::uint32_t>(kMaxPaths);
}

void Profiler::enter(SiteId s) noexcept {
  if (!enabled_) return;
  if (depth_ >= kMaxDepth) {
    // Deeper than the frame stack: count and skip.  Anything nested in a
    // skipped scope is also deeper, so the pairing below stays LIFO.
    ++skip_depth_;
    ++dropped_frames_;
    return;
  }
  Frame& f = stack_[depth_];
  f.site = s;
  f.child_ns = 0;
  f.path = intern_path(s);
  ++depth_;
  f.start_ns = now_ns();  // last: exclude the bookkeeping above
}

void Profiler::exit(SiteId s) noexcept {
  // Deliberately not gated on enabled_: a scope that latched its enter
  // (ProfScope) must unwind even if profiling was toggled off inside it.
  if (skip_depth_ > 0) {
    --skip_depth_;
    return;
  }
  if (depth_ == 0) return;  // unbalanced exit: ignore
  (void)s;
  Frame& f = stack_[--depth_];
  const std::uint64_t end = now_ns();
  const std::uint64_t dt = end > f.start_ns ? end - f.start_ns : 0;
  const std::uint64_t self = dt > f.child_ns ? dt - f.child_ns : 0;
  if (f.site < n_sites_) {
    Site& site = sites_[f.site];
    ++site.calls;
    site.total_ns += dt;
    site.self_ns += self;
  }
  if (f.path < kMaxPaths) {
    paths_[f.path].self_ns += self;
    ++paths_[f.path].hits;
  }
  if (depth_ > 0) stack_[depth_ - 1].child_ns += dt;
}

std::uint64_t Profiler::calls_of(SiteId s) const noexcept {
  return s < n_sites_ ? sites_[s].calls : 0;
}

std::uint64_t Profiler::self_ns_of(SiteId s) const noexcept {
  return s < n_sites_ ? sites_[s].self_ns : 0;
}

std::uint64_t Profiler::total_ns_of(SiteId s) const noexcept {
  return s < n_sites_ ? sites_[s].total_ns : 0;
}

void Profiler::write_top(std::ostream& out) const {
  std::array<std::size_t, kMaxSites> order{};
  for (std::size_t i = 0; i < n_sites_; ++i) order[i] = i;
  std::sort(order.begin(), order.begin() + n_sites_,
            [this](std::size_t a, std::size_t b) {
              if (sites_[a].self_ns != sites_[b].self_ns)
                return sites_[a].self_ns > sites_[b].self_ns;
              return std::strcmp(sites_[a].name, sites_[b].name) < 0;
            });
  std::uint64_t grand_self = 0;
  for (std::size_t i = 0; i < n_sites_; ++i) grand_self += sites_[i].self_ns;

  char line[160];
  out << "sim top — wall-clock self time by site\n";
  std::snprintf(line, sizeof(line), "%-28s %-9s %12s %12s %12s %6s\n",
                "site", "cat", "calls", "self_ms", "total_ms", "self%");
  out << line;
  for (std::size_t i = 0; i < n_sites_; ++i) {
    const Site& s = sites_[order[i]];
    const double pct =
        grand_self > 0
            ? 100.0 * static_cast<double>(s.self_ns) /
                  static_cast<double>(grand_self)
            : 0.0;
    std::snprintf(line, sizeof(line), "%-28s %-9s %12llu %12.3f %12.3f %5.1f%%\n",
                  s.name, category_name(s.cat),
                  static_cast<unsigned long long>(s.calls),
                  static_cast<double>(s.self_ns) / 1e6,
                  static_cast<double>(s.total_ns) / 1e6, pct);
    out << line;
  }
  std::snprintf(line, sizeof(line),
                "kernel: %llu steps, %.3f ms dispatch wall time\n",
                static_cast<unsigned long long>(steps_),
                static_cast<double>(step_ns_) / 1e6);
  out << line;
  std::snprintf(line, sizeof(line),
                "overflow: %llu sites, %llu frames, %llu paths dropped\n",
                static_cast<unsigned long long>(dropped_sites_),
                static_cast<unsigned long long>(dropped_frames_),
                static_cast<unsigned long long>(dropped_paths_));
  out << line;
}

void Profiler::write_collapsed(std::ostream& out) const {
  // Stable order (table scan) keeps diffs small; values are wall-clock
  // and inherently non-deterministic anyway.
  for (std::size_t i = 0; i < kMaxPaths; ++i) {
    const Path& p = paths_[i];
    if (!p.used || p.self_ns == 0) continue;
    for (std::uint8_t d = 0; d < p.depth; ++d) {
      if (d > 0) out << ';';
      const SiteId s = p.sites[d];
      out << (s < n_sites_ ? sites_[s].name : "(overflow)");
    }
    out << ' ' << p.self_ns / 1000 << '\n';
  }
}

}  // namespace coop::obs
