// Windowed virtual-time timeseries: trajectories, not run-level scalars.
//
// Run-end aggregates hide transients — a 30-second goodput dip during a
// partition heal vanishes into a run-level p99.  This module buckets
// selected metrics into fixed-width virtual-time windows and seals each
// window as the clock crosses its edge, yielding per-window rate /
// min / max / p50 / p95 / p99 series that export as a "timeseries"
// section of BENCH_<tag>.json.  Everything is keyed on sim::TimePoint,
// so the output is byte-identical across same-seed runs.
//
// Cost model: feeding a point is a branch (same open window?) plus a few
// adds.  Percentile windows keep at most kMaxSamples raw values via
// deterministic stride decimation (keep every 2^k-th once full) — an
// approximation, but a reproducible one.  A sealed window notifies one
// observer (the SLO watchdog) before being archived.
//
// Edge rules: a point with a timestamp before the open window (multiple
// Platforms restarting virtual time at 0 into one ambient Obs) folds
// into the open window rather than asserting — deterministic, and the
// common aggregate-across-platforms case stays meaningful.  Long idle
// gaps seal at most kMaxGapSeal empty windows (counted beyond that) so a
// sparse day of virtual time cannot flood the archive.
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <vector>

#include "sim/time.hpp"

namespace coop::obs {

class Timeseries {
 public:
  using SeriesId = std::uint16_t;
  static constexpr SeriesId kInvalidSeries = 0xffff;

  static constexpr std::size_t kMaxSeries = 24;
  static constexpr std::size_t kMaxSamples = 256;  ///< per window, decimated
  static constexpr std::size_t kMaxWindows = 4096; ///< archived per run
  static constexpr std::size_t kMaxGapSeal = 64;   ///< empty windows per gap
  static constexpr std::size_t kChunkWindows = 64; ///< arena growth quantum
  static constexpr sim::Duration kDefaultWindow = 100000;  // 100 ms

  /// Sealed per-series per-window aggregate.
  struct Cell {
    std::uint64_t count = 0;
    double sum = 0;
    double min = 0;
    double max = 0;
    double p50 = 0;
    double p95 = 0;
    double p99 = 0;
    bool has_values = false;  ///< any observe()d values (vs bare counts)
  };

  /// Archived windows index into a shared flat cell arena (grown in
  /// kChunkWindows-sized reservations) instead of owning a vector each,
  /// so sealing a window on the hot event path does not allocate in
  /// steady state.  Read a window's cells through cells(w).
  struct Window {
    sim::TimePoint t0 = 0;      ///< inclusive start
    std::uint32_t first = 0;    ///< offset of cell 0 in the arena
    std::uint16_t n_cells = 0;  ///< series count at seal time
  };

  /// Cells of @p w, indexed by SeriesId in [0, w.n_cells).  The pointer
  /// is invalidated by the next seal; copy what outlives the callback.
  [[nodiscard]] const Cell* cells(const Window& w) const noexcept {
    return cell_arena_.data() + w.first;
  }

  /// Sealed-window observer (the SLO watchdog).  Raw fn-ptr + ctx: fires
  /// once per sealed window on the hot path's tail.
  using WindowFn = void (*)(void* ctx, const Timeseries& ts,
                            const Window& w);

  Timeseries();
  Timeseries(const Timeseries&) = delete;
  Timeseries& operator=(const Timeseries&) = delete;

  /// Window width; settable only before the first data point.
  [[nodiscard]] sim::Duration window() const noexcept { return window_us_; }
  void set_window(sim::Duration w) noexcept {
    if (!started_ && w > 0) window_us_ = w;
  }

  /// Registers (or looks up) a series by literal name.  Returns
  /// kInvalidSeries once kMaxSeries exist (counted in dropped_series()).
  SeriesId series(const char* name) noexcept;

  /// Looks up a registered series without creating it.
  [[nodiscard]] SeriesId find(const char* name) const noexcept;

  [[nodiscard]] const char* name_of(SeriesId s) const noexcept;
  [[nodiscard]] std::size_t series_count() const noexcept { return n_series_; }

  /// Adds @p n occurrences at @p ts (rate-style series).
  void count(SeriesId s, sim::TimePoint ts, std::uint64_t n = 1);

  /// Adds a valued sample at @p ts (latency-style series).
  void observe(SeriesId s, sim::TimePoint ts, double v);

  /// Seals the open window if it holds data.  Idempotent; called by the
  /// artifact writer so the tail of a run is never silently dropped.
  void finish();

  void set_observer(WindowFn fn, void* ctx) noexcept {
    observer_ = fn;
    observer_ctx_ = ctx;
  }

  [[nodiscard]] const std::vector<Window>& windows() const noexcept {
    return windows_;
  }
  [[nodiscard]] std::uint64_t gap_skipped() const noexcept {
    return gap_skipped_;
  }
  [[nodiscard]] std::uint64_t dropped_windows() const noexcept {
    return dropped_windows_;
  }
  [[nodiscard]] std::uint64_t dropped_series() const noexcept {
    return dropped_series_;
  }

  /// The "timeseries" artifact section: window metadata plus, per series,
  /// one compact JSON object per sealed window it had data in.  Output is
  /// a pure function of the fed points — deterministic.
  void export_json(std::ostream& out) const;

 private:
  /// Open-window accumulator for one series.
  struct Active {
    std::uint64_t count = 0;
    double sum = 0;
    double min = 0;
    double max = 0;
    std::vector<double> samples;  // decimated raw values
    std::uint32_t stride = 1;
    std::uint32_t tick = 0;
    bool any_value = false;

    void reset() noexcept {
      count = 0;
      sum = 0;
      min = 0;
      max = 0;
      samples.clear();
      stride = 1;
      tick = 0;
      any_value = false;
    }
  };

  /// Seals windows up to the one containing @p ts.
  void advance(sim::TimePoint ts);
  void seal_window();

  std::array<const char*, kMaxSeries> names_{};
  std::array<Active, kMaxSeries> active_{};
  std::vector<Window> windows_;
  std::vector<Cell> cell_arena_;  ///< sealed cells, windows index into it
  sim::Duration window_us_ = kDefaultWindow;
  std::uint64_t cur_w_ = 0;  ///< index (t0 / window) of the open window
  std::size_t n_series_ = 0;
  std::uint64_t gap_skipped_ = 0;
  std::uint64_t dropped_windows_ = 0;
  std::uint64_t dropped_series_ = 0;
  WindowFn observer_ = nullptr;
  void* observer_ctx_ = nullptr;
  bool started_ = false;  ///< any data point seen yet
  bool dirty_ = false;    ///< open window holds unsealed data
};

}  // namespace coop::obs
