#include "obs/critical_path.hpp"

#include <cstring>
#include <ostream>
#include <unordered_map>

namespace coop::obs {

namespace {

/// Looks up a numeric attribute by key; returns fallback when absent.
double attr_or(const TraceEvent& e, const char* key, double fallback) {
  for (std::uint8_t i = 0; i < e.attr_count; ++i) {
    if (std::strcmp(e.attrs[i].key, key) == 0) return e.attrs[i].value;
  }
  return fallback;
}

void put_summary(std::ostream& out, const util::Summary& s) {
  out << "{\"count\":" << s.count() << ",\"mean\":" << s.mean()
      << ",\"p50\":" << s.p50() << ",\"p95\":" << s.p95()
      << ",\"p99\":" << s.p99() << ",\"max\":" << s.max() << '}';
}

}  // namespace

const char* path_bucket_name(PathBucket b) noexcept {
  switch (b) {
    case PathBucket::kQueue:
      return "queue";
    case PathBucket::kLink:
      return "link";
    case PathBucket::kService:
      return "service";
    case PathBucket::kRetry:
      return "retry";
  }
  return "?";
}

CriticalPath::CriticalPath(const Tracer& tracer) { analyze(tracer.snapshot()); }

CriticalPath::CriticalPath(const std::vector<TraceEvent>& events) {
  analyze(events);
}

void CriticalPath::analyze(const std::vector<TraceEvent>& events) {
  std::unordered_map<std::uint64_t, std::size_t> index;  // trace id -> slot
  for (const TraceEvent& e : events) {
    if (!e.ctx.valid()) continue;
    auto [it, fresh] = index.emplace(e.ctx.trace_id, traces_.size());
    if (fresh) {
      traces_.push_back({.trace_id = e.ctx.trace_id,
                         .begin = e.ts,
                         .end = e.ts,
                         .records = 0,
                         .buckets = {}});
    }
    TraceBreakdown& t = traces_[it->second];
    ++t.records;
    if (e.ts < t.begin) t.begin = e.ts;
    if (e.ts + e.dur > t.end) t.end = e.ts + e.dur;

    const auto add = [&t](PathBucket b, double us) {
      if (us > 0) t.buckets[static_cast<std::size_t>(b)] +=
          static_cast<sim::Duration>(us);
    };
    if (e.category == Category::kNet && std::strcmp(e.name, "deliver") == 0) {
      const double queue = attr_or(e, "queue", 0);
      add(PathBucket::kQueue, queue);
      add(PathBucket::kLink, static_cast<double>(e.dur) - queue);
    } else if (e.category == Category::kRpc &&
               std::strcmp(e.name, "handle") == 0) {
      add(PathBucket::kService, static_cast<double>(e.dur));
    } else if (e.category == Category::kRpc &&
               std::strcmp(e.name, "runq") == 0) {
      // Admission-controlled servers: time spent waiting in the bounded
      // run queue — the server-side analogue of a link serializer queue.
      add(PathBucket::kQueue, static_cast<double>(e.dur));
    } else {
      // RPC retries and group retransmits both stamp the timeout that
      // lapsed before the resend as "waited".
      add(PathBucket::kRetry, attr_or(e, "waited", 0));
    }
  }

  for (const TraceBreakdown& t : traces_) {
    end_to_end_us_.add(static_cast<double>(t.span()));
    for (std::size_t b = 0; b < kPathBucketCount; ++b) {
      bucket_us_[b].add(static_cast<double>(t.buckets[b]));
      totals_[b] += t.buckets[b];
    }
  }
}

void CriticalPath::write_json(std::ostream& out) const {
  out << "{\"traces\":" << traces_.size() << ",\"end_to_end_us\":";
  put_summary(out, end_to_end_us_);
  out << ",\"buckets\":{";
  sim::Duration grand_total = 0;
  for (const sim::Duration t : totals_) grand_total += t;
  for (std::size_t b = 0; b < kPathBucketCount; ++b) {
    if (b > 0) out << ',';
    out << '"' << path_bucket_name(static_cast<PathBucket>(b))
        << "\":{\"total_us\":" << totals_[b] << ",\"share\":"
        << (grand_total > 0
                ? static_cast<double>(totals_[b]) /
                      static_cast<double>(grand_total)
                : 0.0)
        << ",\"per_trace\":";
    put_summary(out, bucket_us_[b]);
    out << '}';
  }
  out << "}}";
}

}  // namespace coop::obs
